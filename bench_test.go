package paraleon

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each benchmark regenerates its
// experiment at reproduction scale and reports the headline numbers as
// benchmark metrics; run with -v to see the full tables via b.Logf.
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured comparison for each.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// render captures a result's Fprint output for the bench log.
func render(fprint func(w io.Writer)) string {
	var sb strings.Builder
	fprint(&sb)
	return sb.String()
}

func BenchmarkTable2AlltoallDefaultVsExpert(b *testing.B) {
	var res *harness.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Table2(harness.QuickScale(), 6, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.AlgBwGBs["default"], "default-GB/s")
	b.ReportMetric(last.AlgBwGBs["expert"], "expert-GB/s")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig5SingleParamImpact(b *testing.B) {
	var res *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig5(harness.QuickScale(), 10*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	kmax := res.Curves["kmax"]
	b.ReportMetric(kmax[0].RTTNorm-kmax[len(kmax)-1].RTTNorm, "kmax-rtt-spread")
	hai := res.Curves["hai_rate"]
	b.ReportMetric(hai[len(hai)-1].TP-hai[0].TP, "hai-tp-spread")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig6InterParamImpact(b *testing.B) {
	var res *harness.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig6(harness.QuickScale(), 8*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Non-monotonicity score: count sign changes along the
	// "both-throughput-friendly" diagonal.
	signChanges := 0
	for i := 2; i < len(res.TP); i++ {
		d1 := res.TP[i-1][i-1] - res.TP[i-2][i-2]
		d2 := res.TP[i][i] - res.TP[i-1][i-1]
		if d1*d2 < 0 {
			signChanges++
		}
	}
	b.ReportMetric(float64(signChanges), "diag-sign-changes")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig7FBHadoopFCT(b *testing.B) {
	var res *harness.Fig7FBResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig7FB(harness.QuickScale(), harness.AllSchemes(), 0.3, 40*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: mean slowdown of the >1MB (elephant) bucket.
	eleBucket := func(name string) float64 {
		bs := res.PerScheme[name]
		return bs[len(bs)-1].Mean
	}
	b.ReportMetric(eleBucket("default"), "default-elephant-slowdown")
	b.ReportMetric(eleBucket("paraleon"), "paraleon-elephant-slowdown")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig7LLMTrainingFCT(b *testing.B) {
	var res *harness.Fig7LLMResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig7LLM(harness.QuickScale(), harness.AllSchemes(), []int{4, 6}, 1<<20, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Tails[6]["default"], "default-p99-ms")
	b.ReportMetric(res.Tails[6]["paraleon"], "paraleon-p99-ms")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig8InfluxTimeline(b *testing.B) {
	var res *harness.InfluxResult
	spec := harness.DefaultInfluxSpec()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunInflux(harness.QuickScale(), harness.AllSchemes(), spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RTTPhases["paraleon"][1], "paraleon-burst-rttnorm")
	b.ReportMetric(res.RTTPhases["default"][1], "default-burst-rttnorm")
	b.ReportMetric(res.TPPhases["paraleon"][2], "paraleon-after-tp")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig9PretrainedComparison(b *testing.B) {
	spec := harness.DefaultInfluxSpec()
	var res *harness.InfluxResult
	for i := 0; i < b.N; i++ {
		p1, p2, err := harness.PretrainedSchemes(harness.QuickScale(), spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err = harness.RunInflux(harness.QuickScale(),
			[]harness.Scheme{p1, p2, harness.ParaleonScheme()}, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RTTPhases["paraleon"][1], "paraleon-burst-rttnorm")
	b.ReportMetric(res.RTTPhases["pretrained1"][1], "pretrained1-burst-rttnorm")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig10MonitoringComparison(b *testing.B) {
	var res *harness.MonitoringResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig10(harness.QuickScale(), []float64{0.3, 0.5, 0.7}, 30*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Accuracy["paraleon"][0.3], "paraleon-accuracy")
	b.ReportMetric(res.Accuracy["netflow"][0.3], "netflow-accuracy")
	b.ReportMetric(res.Accuracy["elastic"][0.3], "elastic-accuracy")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig11MonitorInterval(b *testing.B) {
	var res *harness.MonitoringResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig11(harness.QuickScale(), []float64{1, 2, 4, 8}, 0.3, 32*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Accuracy["paraleon"][1], "paraleon-acc-1ms")
	b.ReportMetric(res.Accuracy["elastic"][1], "elastic-acc-1ms")
	b.ReportMetric(res.Accuracy["elastic"][8], "elastic-acc-8ms")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig12SAConvergence(b *testing.B) {
	var res *harness.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig12(harness.QuickScale(), 350*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SteadyUtility("paraleon"), "paraleon-steady-utility")
	b.ReportMetric(res.SteadyUtility("naive_sa"), "naive-steady-utility")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig13TestbedAlltoall(b *testing.B) {
	var res *harness.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig13(harness.QuickScale(), []int{4, 6, 8}, 1<<20, 100*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GoodputGbps[8]["default"], "default-8w-Gbps")
	b.ReportMetric(res.GoodputGbps[8]["paraleon"], "paraleon-8w-Gbps")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkFig14TestbedInflux(b *testing.B) {
	spec := harness.TestbedInfluxSpec()
	var res *harness.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig14(harness.QuickScale(), spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	from, to := spec.BurstAt, spec.BurstAt+spec.BurstLen
	b.ReportMetric(res.RTT["paraleon"].MeanOver(from, to), "paraleon-burst-rttnorm")
	b.ReportMetric(res.RTT["default"].MeanOver(from, to), "default-burst-rttnorm")
	b.Log("\n" + render(res.Fprint))
}

func BenchmarkTable4Overheads(b *testing.B) {
	var res *harness.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Table4(harness.QuickScale(), 30*eventsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SwitchToControllerBytes), "switch-to-ctrl-B")
	b.ReportMetric(float64(res.ControllerToFabricBytes), "ctrl-to-fabric-B")
	b.ReportMetric(float64(res.ProcessingPerTick.Microseconds()), "ctrl-us/tick")
	b.Log("\n" + render(res.Fprint))
}

// --- Ablations (DESIGN.md §Design choices) ---

// BenchmarkAblationGuidedRandomness isolates Optimization 1: guided vs
// unguided mutation under the same relaxed temperature schedule.
func BenchmarkAblationGuidedRandomness(b *testing.B) {
	var guided, unguided float64
	for i := 0; i < b.N; i++ {
		run := func(g bool) float64 {
			sc := harness.ParaleonScheme()
			sc.SystemCfg.SA.Guided = g
			r, err := harness.Run(harness.RunConfig{
				Net:      harness.QuickScale().Net,
				Scheme:   sc,
				Interval: eventsim.Millisecond,
				Duration: 120 * eventsim.Millisecond,
				Workload: func(n *sim.Network) error {
					_, err := workload.InstallPoisson(n, workload.PoissonConfig{
						CDF: workload.FBHadoop(), Load: 0.4,
					})
					return err
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			// Settled quality: mean delivered utility over the final third.
			vals := r.Utility.Values
			tail := vals[len(vals)*2/3:]
			var sum float64
			for _, v := range tail {
				sum += v
			}
			return sum / float64(len(tail))
		}
		guided = run(true)
		unguided = run(false)
	}
	b.ReportMetric(guided, "guided-steady-utility")
	b.ReportMetric(unguided, "unguided-steady-utility")
}

// BenchmarkAblationTemperature isolates Optimization 2: relaxed vs
// classical schedule length (both guided).
func BenchmarkAblationTemperature(b *testing.B) {
	relaxed := core.DefaultSAConfig()
	classical := core.NaiveSAConfig()
	classical.Guided = true
	for i := 0; i < b.N; i++ {
		_ = relaxed.SessionIterations()
		_ = classical.SessionIterations()
	}
	b.ReportMetric(float64(relaxed.SessionIterations()), "relaxed-session-iters")
	b.ReportMetric(float64(classical.SessionIterations()), "classical-session-iters")
}

// accuracyWith runs the FB workload and scores an agent configuration's
// FSD against ground truth.
func accuracyWith(b *testing.B, agentCfg monitor.AgentConfig) float64 {
	n, err := sim.New(harness.QuickScale().Net)
	if err != nil {
		b.Fatal(err)
	}
	var est, truth []monitor.ReportSource
	for i, tor := range n.Topo.ToRs() {
		o := monitor.NewOracle(n.Topo, tor, 1<<20, n.FlowSize)
		a := monitor.NewSwitchAgent(agentCfg, uint64(i+1))
		monitor.TapAll(n.Switch(tor), o.OnPacket, a.OnPacket)
		truth = append(truth, o)
		est = append(est, a)
	}
	if _, err := workload.InstallPoisson(n, workload.PoissonConfig{
		CDF: workload.FBHadoop(), Load: 0.4,
	}); err != nil {
		b.Fatal(err)
	}
	estCtl := monitor.NewController(0.01, est...)
	truthCtl := monitor.NewController(0.01, truth...)
	var sum float64
	ticks := 0
	for mi := 1; mi <= 30; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		e := estCtl.Tick()
		tr := truthCtl.Tick()
		if tr.TotalBytes == 0 {
			continue
		}
		sum += monitor.Accuracy(e, tr)
		ticks++
	}
	if ticks == 0 {
		return math.NaN()
	}
	return sum / float64(ticks)
}

// BenchmarkAblationInsertOnce isolates Keypoint 1: TOS insert-once vs
// overlapping sketches (ternary kept on in both arms).
func BenchmarkAblationInsertOnce(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		on := monitor.ParaleonAgentConfig()
		off := monitor.ParaleonAgentConfig()
		off.InsertOnce = false
		with = accuracyWith(b, on)
		without = accuracyWith(b, off)
	}
	b.ReportMetric(with, "insert-once-accuracy")
	b.ReportMetric(without, "overlap-accuracy")
}

// BenchmarkAblationTernaryWindow isolates Keypoint 2: sliding-window
// ternary states vs single-interval classification (insert-once kept on).
func BenchmarkAblationTernaryWindow(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		on := monitor.ParaleonAgentConfig()
		off := monitor.ParaleonAgentConfig()
		off.Ternary = false
		with = accuracyWith(b, on)
		without = accuracyWith(b, off)
	}
	b.ReportMetric(with, "ternary-accuracy")
	b.ReportMetric(without, "single-interval-accuracy")
}

// BenchmarkAblationUtilityWeights compares the operator weight presets on
// the same elephant-heavy workload: throughput weights should end with
// higher utilization, default (delay-leaning) weights with better RTT.
func BenchmarkAblationUtilityWeights(b *testing.B) {
	var tpWeighted, delayWeighted [2]float64 // {meanTP, meanRTT}
	run := func(w core.Weights) [2]float64 {
		sc := harness.ParaleonScheme()
		sc.SystemCfg.Weights = w
		r, err := harness.Run(harness.RunConfig{
			Net:      harness.QuickScale().Net,
			Scheme:   sc,
			Interval: eventsim.Millisecond,
			Duration: 100 * eventsim.Millisecond,
			Workload: func(n *sim.Network) error {
				_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
					Workers:      n.Topo.Hosts()[:6],
					MessageBytes: 2 << 20,
					OffTime:      2 * eventsim.Millisecond,
				})
				return err
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		half := 50 * eventsim.Millisecond
		return [2]float64{
			r.TP.MeanOver(half, 100*eventsim.Millisecond),
			r.RTT.MeanOver(half, 100*eventsim.Millisecond),
		}
	}
	for i := 0; i < b.N; i++ {
		tpWeighted = run(core.ThroughputWeights())
		delayWeighted = run(core.DefaultWeights())
	}
	b.ReportMetric(tpWeighted[0], "tp-weights-mean-tp")
	b.ReportMetric(delayWeighted[0], "default-weights-mean-tp")
	b.ReportMetric(tpWeighted[1], "tp-weights-mean-rttnorm")
	b.ReportMetric(delayWeighted[1], "default-weights-mean-rttnorm")
}

// BenchmarkEngineThroughput measures raw simulator speed on a saturated
// incast: events per second, time and heap allocations per event. These
// are the headline numbers the zero-allocation hot path is judged by (see
// EXPERIMENTS.md "Simulator performance").
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < b.N; i++ {
		n, err := sim.New(sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		hosts := n.Topo.Hosts()
		for j := 1; j < 8; j++ {
			n.StartFlow(hosts[j], hosts[0], 2<<20)
		}
		n.RunUntilIdle(eventsim.Second)
		events += n.Eng.Processed
	}
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(events), "allocs/event")
}

// BenchmarkEngineThroughputTimerHeavy isolates the timer subsystem the
// timing wheel was built for: a fleet of 4096 hosts × 4 QPs = 16384
// DCQCN reaction points driving the engine with nothing but recurring
// timers (alpha decay every 55 µs, rate increase every 300 µs), plus CNP
// injectors poking 10% of the QPs so cut/re-arm churn and — in the
// suppressed arm — park/unpark transitions stay on the hot path.
//
// Three arms on identical workloads:
//
//	heap           SetWheelEnabled(false): every timer through the 4-ary heap
//	wheel          the default engine (timers staged in the timing wheel)
//	wheel+suppress wheel + quiescent-QP suppression (90% of QPs park)
//
// heap and wheel process byte-identical event sequences (the wheel's
// ordering contract), so their ns/event ratio is a pure data-structure
// comparison; the CI gate requires wheel ≤ 0.75× heap. The suppressed
// arm additionally skips provably no-op fires, so its events/run drops —
// that arm's win shows up in ns of wall clock per simulated second.
func BenchmarkEngineThroughputTimerHeavy(b *testing.B) {
	const (
		hosts   = 2048
		qps     = 4 // QPs per host
		nRP     = hosts * qps
		horizon = 10 * eventsim.Millisecond
	)
	run := func(b *testing.B, wheel, suppress bool) {
		b.ReportAllocs()
		var events uint64
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			b.StopTimer() // fleet construction is identical across arms; time only the run
			eng := eventsim.NewEngine(7)
			eng.SetWheelEnabled(wheel)
			// Pre-size the slab and heap for the fleet's pending-timer
			// high-water mark so the measured region allocates nothing.
			eng.Reserve(3 * nRP)
			params := dcqcn.DefaultParams()
			// Alpha starts fully decayed: the alpha timer fires no-op decays
			// (and under suppression parks immediately), matching a fleet of
			// long-idle QPs — the workload suppression exists for.
			params.InitialAlpha = 0
			rps := make([]*dcqcn.RP, nRP)
			for j := range rps {
				rps[j] = dcqcn.NewRP(eng, func() *dcqcn.Params { return &params }, 100e9)
				rps[j].SetSuppression(suppress)
				rps[j].Start()
			}
			// CNP injectors: every 2nd QP takes a CNP roughly every 11 µs,
			// phases staggered so fires spread across wheel slots. Implemented
			// as self-rearming wheel timers — the recurring-timer pattern the
			// RearmAfter path is built for. Each CNP re-arms the victim's
			// live increase timer in place (the OnCNP cut path): O(1) in the
			// wheel, a full sift through the 2·nRP-element heap without it.
			// In the suppressed arm injected QPs also exercise park/unpark.
			const injectEvery = 11*eventsim.Microsecond + 7
			for j := 0; j < nRP; j += 2 {
				j := j
				var inject eventsim.Handler
				var ev eventsim.EventID
				inject = func() {
					rps[j].OnCNP()
					ev = eng.RearmAfter(ev, injectEvery, inject)
				}
				ev = eng.TimerAfter(eventsim.Time(j%100)*eventsim.Microsecond/100+1, inject)
			}
			b.StartTimer()
			eng.RunUntil(horizon)
			events += eng.Processed
		}
		runtime.ReadMemStats(&ms1)
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(events), "allocs/event")
	}
	b.Run("heap", func(b *testing.B) { run(b, false, false) })
	b.Run("wheel", func(b *testing.B) { run(b, true, false) })
	b.Run("wheel+suppress", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkShardedThroughput measures the multi-core win from sharded
// execution: the same pre-scheduled workload on a 16-pod fabric, run on a
// single engine shard and then spread across engine shards pinned by the
// determinism contract (identical results at every shard count — see
// internal/sim/sharded_test.go). Traffic is mostly pod-local so shards
// spend their windows working rather than waiting at the handoff barrier;
// the cross-pod fraction keeps every leaf link busy. events/sec is the
// headline: the sharded/1-shard ratio is the speedup, recorded per PR in
// BENCH_pr6.json.
func BenchmarkShardedThroughput(b *testing.B) {
	run := func(b *testing.B, shards int, timerHeavy bool) {
		var events uint64
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.Clos = topology.ClosConfig{
				NumToR: 16, NumLeaf: 4, HostsPerToR: 8,
				HostLinkBps: 10e9, FabricLinkBps: 40e9,
				PropDelay: 2 * eventsim.Microsecond,
			}
			flowBytes := int64(512 << 10)
			if timerHeavy {
				// Slow links stretch the same flows over ~80 ms of virtual
				// time, so the recurring DCQCN timers (alpha every 55 µs,
				// increase every 300 µs, per QP) outnumber packet events —
				// the inverse of the packet-dominated default. This is the
				// sharded analogue of EngineThroughputTimerHeavy: every
				// shard engine runs its own timing wheel.
				cfg.Clos.HostLinkBps = 100e6
				cfg.Clos.FabricLinkBps = 400e6
				flowBytes = 256 << 10
			}
			cfg.Shards = shards
			n, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			hosts := n.Topo.Hosts()
			per := 8 // hosts per pod
			rng := rand.New(rand.NewSource(11))
			for h, src := range hosts {
				pod := h / per
				for f := 0; f < 4; f++ {
					// 3 of 4 flows stay inside the pod; the rest cross it.
					dst := pod*per + rng.Intn(per)
					if f == 3 {
						dst = rng.Intn(len(hosts))
					}
					for hosts[dst] == src {
						dst = (dst + 1) % len(hosts)
					}
					at := eventsim.Time(rng.Int63n(int64(eventsim.Millisecond)))
					n.StartFlowAt(at, src, hosts[dst], flowBytes)
				}
			}
			n.RunUntilIdle(eventsim.Second)
			if n.ActiveFlows() != 0 {
				b.Fatalf("shards=%d: flows never drained", shards)
			}
			events += n.EventsProcessed()
		}
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { run(b, shards, false) })
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("timer/shards=%d", shards), func(b *testing.B) { run(b, shards, true) })
	}
}

// --- Extensions beyond the paper's evaluation ---

// BenchmarkExtensionPartitioned compares one homogeneous controller
// against per-rack controllers (§V) on a fabric whose racks run opposite
// workloads: the partitioned deployment should serve both masters.
func BenchmarkExtensionPartitioned(b *testing.B) {
	var homoRTT, partRTT, homoTP, partTP float64
	for i := 0; i < b.N; i++ {
		run := func(partitioned bool) (tp, rtt float64) {
			n, err := sim.New(harness.QuickScale().Net)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultSystemConfig()
			cfg.SA = core.ShortSAConfig()
			var systems []*core.System
			if partitioned {
				tors := n.Topo.ToRs()
				systems, err = core.AttachPartitioned(n, cfg, [][]topology.NodeID{{tors[0]}, {tors[1]}})
			} else {
				var s *core.System
				s, err = core.Attach(n, cfg)
				systems = []*core.System{s}
			}
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range systems {
				s.Start()
			}
			hosts := n.Topo.Hosts()
			if _, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers: hosts[:4], MessageBytes: 4 << 20, OffTime: 2 * eventsim.Millisecond,
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := workload.InstallPoisson(n, workload.PoissonConfig{
				Hosts: hosts[4:], CDF: workload.SolarRPC(), Load: 0.4,
			}); err != nil {
				b.Fatal(err)
			}
			n.Run(80 * eventsim.Millisecond)
			// Training rack throughput + RPC rack delay, each from its
			// own scope in the partitioned case.
			if partitioned {
				return systems[0].LastSample.OTP, systems[1].LastSample.ORTT
			}
			return systems[0].LastSample.OTP, systems[0].LastSample.ORTT
		}
		homoTP, homoRTT = run(false)
		partTP, partRTT = run(true)
	}
	b.ReportMetric(homoTP, "homogeneous-train-tp")
	b.ReportMetric(partTP, "partitioned-train-tp")
	b.ReportMetric(homoRTT, "homogeneous-rpc-rttnorm")
	b.ReportMetric(partRTT, "partitioned-rpc-rttnorm")
}

// BenchmarkExtensionRNICMonitoring scores the §V per-QP-counter
// monitoring mode against the sketch-based design on the same traffic.
func BenchmarkExtensionRNICMonitoring(b *testing.B) {
	run := func(mode harness.FSDMode) float64 {
		sc := harness.ParaleonScheme()
		sc.FSDMode = mode
		r, err := harness.Run(harness.RunConfig{
			Net:           harness.QuickScale().Net,
			Scheme:        sc,
			Interval:      eventsim.Millisecond,
			Duration:      30 * eventsim.Millisecond,
			TrackAccuracy: true,
			Workload: func(n *sim.Network) error {
				_, err := workload.InstallPoisson(n, workload.PoissonConfig{
					CDF: workload.FBHadoop(), Load: 0.4,
				})
				return err
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return r.MeanAccuracy()
	}
	var sketchAcc, rnicAcc float64
	for i := 0; i < b.N; i++ {
		sketchAcc = run(harness.FSDParaleon)
		rnicAcc = run(harness.FSDRNIC)
	}
	b.ReportMetric(sketchAcc, "sketch-accuracy")
	b.ReportMetric(rnicAcc, "rnic-counter-accuracy")
}
