package monitor

import (
	"sort"

	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ReportSource is anything that yields a per-interval local FSD report:
// Paraleon switch agents, the naive-Elastic variant, NetFlow, or the
// ground-truth oracle.
type ReportSource interface {
	// EndInterval closes the current monitor interval and returns its
	// local report, resetting interval state.
	EndInterval() Report
}

// AgentConfig selects which of Paraleon's two monitor keypoints an agent
// applies; disabling them yields the "naive Elastic Sketch" baseline of
// §IV-B3.
type AgentConfig struct {
	Sketch  sketch.Config
	Tracker TrackerConfig
	// InsertOnce applies Keypoint 1: skip packets whose TOS bit says a
	// previous measurement point already recorded them, and mark the bit
	// on insertion.
	InsertOnce bool
	// Ternary applies Keypoint 2: sliding-window ternary states rather
	// than single-interval elephant/mice classification.
	Ternary bool
}

// ParaleonAgentConfig is the full design: both keypoints on.
func ParaleonAgentConfig() AgentConfig {
	return AgentConfig{
		Sketch:     sketch.DefaultConfig(),
		Tracker:    DefaultTrackerConfig(),
		InsertOnce: true,
		Ternary:    true,
	}
}

// NaiveElasticConfig is the baseline: raw Elastic Sketch at every switch,
// no marking, single-interval classification.
func NaiveElasticConfig() AgentConfig {
	cfg := ParaleonAgentConfig()
	cfg.InsertOnce = false
	cfg.Ternary = false
	return cfg
}

// SwitchAgent is one ToR's measurement stack: the data-plane sketch plus
// the control-plane ternary tracker.
type SwitchAgent struct {
	cfg     AgentConfig
	sk      *sketch.Sketch
	tracker *Tracker

	// Skipped counts packets the insert-once rule declined.
	Skipped int64

	// TM, when non-nil, mirrors interval activity into the telemetry
	// registry. Updates happen at interval granularity (EndInterval), so
	// the per-packet insertion path stays untouched; many agents may
	// share one bundle and accumulate into the same families.
	TM *telemetry.SketchMetrics
	// tmSkipped is the Skipped watermark already reported to TM.
	tmSkipped int64
}

// NewSwitchAgent builds an agent; seed differentiates sketch hashing
// across switches.
func NewSwitchAgent(cfg AgentConfig, seed uint64) *SwitchAgent {
	return &SwitchAgent{
		cfg:     cfg,
		sk:      sketch.New(cfg.Sketch, seed),
		tracker: NewTracker(cfg.Tracker),
	}
}

// Attach installs the agent as one of sw's packet taps, composing with
// any tap already installed (e.g. a ground-truth oracle attached first)
// instead of silently replacing it. The existing tap keeps firing first,
// so pure observers installed earlier see packets before this agent
// marks the TOS bit.
func (a *SwitchAgent) Attach(sw *netdev.Switch) {
	TapAll(sw, a.OnPacket)
}

// OnPacket is the data-plane insertion path.
func (a *SwitchAgent) OnPacket(pkt *netdev.Packet, now eventsim.Time) {
	if pkt.Kind != netdev.KindData {
		return
	}
	if a.cfg.InsertOnce {
		if pkt.TOSMarked {
			a.Skipped++
			return
		}
		pkt.TOSMarked = true
	}
	a.sk.Insert(pkt.FlowID, int64(pkt.PayloadBytes))
}

// Sketch exposes the underlying sketch (tests, overhead accounting).
func (a *SwitchAgent) Sketch() *sketch.Sketch { return a.sk }

// EndInterval implements ReportSource: read and reset the sketch, update
// flow states, and emit the local report.
func (a *SwitchAgent) EndInterval() Report {
	heavy := a.sk.HeavyFlows()
	if a.TM != nil {
		a.TM.Reads.Inc()
		a.TM.Resets.Inc()
		a.TM.Inserts.Add(a.sk.Inserts)
		a.TM.Bytes.Add(a.sk.TotalBytes)
		a.TM.Evictions.Add(a.sk.Evictions)
		a.TM.Skipped.Add(a.Skipped - a.tmSkipped)
		a.tmSkipped = a.Skipped
		a.TM.HeavyFlows.Set(float64(len(heavy)))
	}
	// HeavyFlows folds flagged residents' Light Part residue into their
	// estimates; subtract it from the light lump or that mass counts
	// twice (once under the flow, once as unattributed mice bytes).
	light := a.sk.LightBytes() - a.sk.FlaggedResidue()
	if light < 0 {
		light = 0
	}
	a.sk.Reset()

	if a.cfg.Ternary {
		return ReportFrom(a.tracker.EndInterval(heavy), light)
	}
	// Naive single-interval classification: a flow is an elephant only
	// if it moved ≥ τ within this one interval — precisely the
	// misidentification Keypoint 2 repairs.
	var r Report
	for _, fs := range heavy {
		r.Hist[BucketFor(fs.Bytes)] += float64(fs.Bytes)
		if fs.Bytes >= a.cfg.Tracker.TauBytes {
			r.ElephantBytes += float64(fs.Bytes)
			r.ElephantFlowsW++
		} else {
			r.MiceBytes += float64(fs.Bytes)
			r.MiceFlowsW++
		}
		r.Flows++
	}
	if light > 0 {
		r.Hist[0] += float64(light)
		r.MiceBytes += float64(light)
	}
	return r
}

// Oracle is the ground-truth agent for accuracy evaluation: it counts
// exactly, dedupes by "count only at the flow's source ToR" (equivalent to
// a perfect insert-once rule but independent of the TOS bit), and
// classifies each flow by its declared total size.
type Oracle struct {
	topo   *topology.Topology
	node   topology.NodeID
	sizeOf func(flow uint64) int64
	tau    int64

	interval map[uint64]int64
}

// NewOracle builds the ground-truth agent for the ToR at node. sizeOf
// returns a flow's declared total size (sim.Network.FlowSize).
func NewOracle(topo *topology.Topology, node topology.NodeID, tau int64, sizeOf func(uint64) int64) *Oracle {
	return &Oracle{topo: topo, node: node, sizeOf: sizeOf, tau: tau, interval: map[uint64]int64{}}
}

// OnPacket counts data packets whose source hangs off this ToR.
func (o *Oracle) OnPacket(pkt *netdev.Packet, now eventsim.Time) {
	if pkt.Kind != netdev.KindData {
		return
	}
	if o.topo.ToROf(pkt.Src) != o.node {
		return
	}
	o.interval[pkt.FlowID] += int64(pkt.PayloadBytes)
}

// EndInterval implements ReportSource with perfect knowledge.
func (o *Oracle) EndInterval() Report {
	flows := make([]uint64, 0, len(o.interval))
	for id := range o.interval {
		flows = append(flows, id)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	var r Report
	for _, id := range flows {
		bytes := o.interval[id]
		size := o.sizeOf(id)
		if size <= 0 {
			size = bytes
		}
		r.Hist[BucketFor(size)] += float64(bytes)
		if size >= o.tau {
			r.ElephantBytes += float64(bytes)
			r.ElephantFlowsW++
		} else {
			r.MiceBytes += float64(bytes)
			r.MiceFlowsW++
		}
		r.Flows++
	}
	o.interval = map[uint64]int64{}
	return r
}

// TapAll fans a switch's single tap out to several observers (e.g. an
// estimator agent plus the ground-truth oracle). A tap already installed
// on the switch is kept and fires before the new observers, so repeated
// attachment calls compose instead of clobbering each other. Order
// matters: observers that mutate the TOS bit should come after pure
// observers.
func TapAll(sw *netdev.Switch, taps ...func(*netdev.Packet, eventsim.Time)) {
	if prev := sw.Tap; prev != nil {
		taps = append([]func(*netdev.Packet, eventsim.Time){prev}, taps...)
	}
	if len(taps) == 1 {
		sw.Tap = taps[0]
		return
	}
	sw.Tap = func(pkt *netdev.Packet, now eventsim.Time) {
		for _, tap := range taps {
			tap(pkt, now)
		}
	}
}
