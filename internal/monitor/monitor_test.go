package monitor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/topology"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{1, 0}, {1024, 0}, {1025, 1}, {2048, 1}, {2049, 2},
		{1 << 20, 10}, {32 << 20, 15}, {1 << 40, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketFor(c.size); got != c.want {
			t.Errorf("BucketFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestQuickBucketMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a)+1, int64(b)+1
		if x > y {
			x, y = y, x
		}
		bx, by := BucketFor(x), BucketFor(y)
		return bx <= by && bx >= 0 && by < NumBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	var a, b Report
	a.Hist[0] = 100
	a.MiceBytes = 100
	a.MiceFlowsW = 2
	a.Flows = 2
	b.Hist[10] = 900
	b.ElephantBytes = 900
	b.ElephantFlowsW = 18
	b.Flows = 1
	f := Aggregate(a, b)
	if f.TotalBytes != 1000 {
		t.Errorf("TotalBytes = %g, want 1000", f.TotalBytes)
	}
	if math.Abs(f.Hist[0]-0.1) > 1e-12 || math.Abs(f.Hist[10]-0.9) > 1e-12 {
		t.Errorf("Hist shares wrong: %v %v", f.Hist[0], f.Hist[10])
	}
	if math.Abs(f.ElephantShare-0.9) > 1e-12 {
		t.Errorf("ElephantShare = %g, want 0.9", f.ElephantShare)
	}
	if f.Flows != 3 {
		t.Errorf("Flows = %d, want 3", f.Flows)
	}
	if math.Abs(f.ElephantFlowShare-0.9) > 1e-12 {
		t.Errorf("ElephantFlowShare = %g, want 0.9", f.ElephantFlowShare)
	}
	dom, mu := f.DominantElephant()
	if !dom || mu != 0.9 {
		t.Errorf("DominantElephant = %v/%g, want true/0.9 (flow-count based)", dom, mu)
	}
}

func TestAggregateEmpty(t *testing.T) {
	f := Aggregate()
	if f.TotalBytes != 0 || f.ElephantShare != 0 {
		t.Error("empty aggregate not zero")
	}
	dom, mu := f.DominantElephant()
	if dom || mu != 1 {
		t.Errorf("empty dominance = %v/%g, want mice/1", dom, mu)
	}
}

func TestKL(t *testing.T) {
	var a Report
	a.Hist[0] = 500
	a.Hist[5] = 500
	f1 := Aggregate(a)
	if d := KL(f1, f1); d > 1e-9 {
		t.Errorf("KL(f,f) = %g, want ~0", d)
	}
	var b Report
	b.Hist[10] = 1000
	f2 := Aggregate(b)
	if d := KL(f2, f1); d < 0.1 {
		t.Errorf("KL of disjoint distributions = %g, want large", d)
	}
}

func TestQuickKLNonNegative(t *testing.T) {
	f := func(xs, ys [NumBuckets]uint16) bool {
		var a, b Report
		for i := 0; i < NumBuckets; i++ {
			a.Hist[i] = float64(xs[i])
			b.Hist[i] = float64(ys[i])
		}
		return KL(Aggregate(a), Aggregate(b)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	var a Report
	a.Hist[3] = 1000
	a.ElephantBytes = 1000
	f := Aggregate(a)
	if acc := Accuracy(f, f); math.Abs(acc-1) > 1e-12 {
		t.Errorf("self accuracy = %g, want 1", acc)
	}
	var b Report
	b.Hist[0] = 1000
	b.MiceBytes = 1000
	g := Aggregate(b)
	if acc := Accuracy(f, g); acc > 0.1 {
		t.Errorf("disjoint accuracy = %g, want ~0", acc)
	}
}

// --- Ternary tracker ---

func fs(flow uint64, b int64) sketch.FlowSize { return sketch.FlowSize{Flow: flow, Bytes: b} }

func TestTrackerImmediateElephant(t *testing.T) {
	tr := NewTracker(DefaultTrackerConfig())
	out := tr.EndInterval([]sketch.FlowSize{fs(1, 2<<20)})
	if len(out) != 1 || out[0].State != Elephant || out[0].EWeight != 1 {
		t.Errorf("big flow classified %+v, want elephant", out)
	}
}

// TestTrackerFig4F2 walks flow f2 of Fig 4: mice for two intervals,
// potential elephant once the window fills, elephant once Φ ≥ τ.
func TestTrackerFig4F2(t *testing.T) {
	cfg := DefaultTrackerConfig() // τ=1MB, δ=3
	tr := NewTracker(cfg)
	perMI := int64(160 << 10) // 160 KB per interval
	wantStates := []FlowState{Mice, Mice, PotentialElephant, PotentialElephant, PotentialElephant, PotentialElephant}
	for i, want := range wantStates {
		out := tr.EndInterval([]sketch.FlowSize{fs(2, perMI)})
		if out[0].State != want {
			t.Fatalf("MI%d: state %v, want %v", i+1, out[0].State, want)
		}
	}
	// MI7: cumulative 7×160KB = 1120KB ≥ τ → elephant.
	out := tr.EndInterval([]sketch.FlowSize{fs(2, perMI)})
	if out[0].State != Elephant {
		t.Errorf("MI7: state %v, want elephant at Φ=%d", out[0].State, out[0].Cum)
	}
}

// TestTrackerFig4F3 walks f3: becomes PE, then goes inactive and never
// becomes an elephant; eventually evicted.
func TestTrackerFig4F3(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.EvictAfter = 3
	tr := NewTracker(cfg)
	for i := 0; i < 5; i++ {
		tr.EndInterval([]sketch.FlowSize{fs(3, 50<<10)})
	}
	if tr.State(3) != PotentialElephant {
		t.Fatalf("state %v after 5 active MIs, want PE", tr.State(3))
	}
	// Flow goes quiet.
	for i := 0; i < 3; i++ {
		tr.EndInterval(nil)
	}
	if tr.Tracked() != 0 {
		t.Errorf("idle flow not evicted: %d tracked", tr.Tracked())
	}
	if tr.State(3) != Mice {
		t.Errorf("evicted flow state %v, want mice default", tr.State(3))
	}
}

func TestTrackerStreakResetByGap(t *testing.T) {
	tr := NewTracker(DefaultTrackerConfig())
	tr.EndInterval([]sketch.FlowSize{fs(1, 1000)})
	tr.EndInterval([]sketch.FlowSize{fs(1, 1000)})
	tr.EndInterval(nil) // gap resets the streak
	out := tr.EndInterval([]sketch.FlowSize{fs(1, 1000)})
	if out[0].State != Mice {
		t.Errorf("state %v after gap, want mice (streak reset)", out[0].State)
	}
}

func TestTrackerPEWeightGrows(t *testing.T) {
	tr := NewTracker(DefaultTrackerConfig())
	var prev float64
	for i := 0; i < 5; i++ {
		out := tr.EndInterval([]sketch.FlowSize{fs(1, 100<<10)})
		if out[0].State == PotentialElephant {
			if out[0].EWeight <= prev {
				t.Errorf("PE weight not growing: %g then %g", prev, out[0].EWeight)
			}
			prev = out[0].EWeight
		}
	}
	if prev == 0 {
		t.Fatal("flow never became PE")
	}
	if prev > 1 {
		t.Errorf("EWeight %g exceeds 1", prev)
	}
}

func TestTrackerDeterministicOrder(t *testing.T) {
	tr := NewTracker(DefaultTrackerConfig())
	out := tr.EndInterval([]sketch.FlowSize{fs(9, 10), fs(3, 10), fs(7, 10)})
	for i := 1; i < len(out); i++ {
		if out[i].Flow < out[i-1].Flow {
			t.Errorf("output not sorted by flow: %v", out)
		}
	}
}

func TestReportFrom(t *testing.T) {
	cls := []Classified{
		{Flow: 1, State: Elephant, Bytes: 1000, Cum: 2 << 20, EWeight: 1},
		{Flow: 2, State: PotentialElephant, Bytes: 500, Cum: 512 << 10, EWeight: 0.5},
		{Flow: 3, State: Mice, Bytes: 200, Cum: 200, EWeight: 0},
	}
	r := ReportFrom(cls, 300)
	if r.Flows != 3 {
		t.Errorf("Flows = %d, want 3", r.Flows)
	}
	wantE := 1000 + 0.5*500
	if math.Abs(r.ElephantBytes-wantE) > 1e-9 {
		t.Errorf("ElephantBytes = %g, want %g", r.ElephantBytes, wantE)
	}
	wantM := 0.5*500 + 200 + 300
	if math.Abs(r.MiceBytes-wantM) > 1e-9 {
		t.Errorf("MiceBytes = %g, want %g", r.MiceBytes, wantM)
	}
	var histTotal float64
	for _, v := range r.Hist {
		histTotal += v
	}
	if histTotal != 2000 {
		t.Errorf("hist mass = %g, want 2000", histTotal)
	}
}

// --- Agents ---

func TestInsertOnceSkipsMarkedPackets(t *testing.T) {
	a := NewSwitchAgent(ParaleonAgentConfig(), 1)
	pkt := netdev.NewDataPacket(1, 0, 1, 0, 1000, false)
	a.OnPacket(pkt, 0)
	if !pkt.TOSMarked {
		t.Fatal("agent did not mark the TOS bit")
	}
	// A second measurement point must skip it.
	b := NewSwitchAgent(ParaleonAgentConfig(), 2)
	b.OnPacket(pkt, 0)
	if b.Skipped != 1 {
		t.Errorf("second agent Skipped = %d, want 1", b.Skipped)
	}
	if got := b.Sketch().TotalBytes; got != 0 {
		t.Errorf("second agent recorded %d bytes, want 0", got)
	}
	if got := a.Sketch().TotalBytes; got != 1000 {
		t.Errorf("first agent recorded %d bytes, want 1000", got)
	}
}

func TestNaiveAgentDoubleCounts(t *testing.T) {
	a := NewSwitchAgent(NaiveElasticConfig(), 1)
	b := NewSwitchAgent(NaiveElasticConfig(), 2)
	pkt := netdev.NewDataPacket(1, 0, 1, 0, 1000, false)
	a.OnPacket(pkt, 0)
	b.OnPacket(pkt, 0)
	if a.Sketch().TotalBytes != 1000 || b.Sketch().TotalBytes != 1000 {
		t.Error("naive agents should both record the packet (the overlap bug)")
	}
}

func TestAgentIgnoresControlPackets(t *testing.T) {
	a := NewSwitchAgent(ParaleonAgentConfig(), 1)
	a.OnPacket(netdev.NewCNP(1, 0, 1), 0)
	if a.Sketch().Inserts != 0 {
		t.Error("CNP inserted into sketch")
	}
}

// TestTernaryFixesSlowElephant reproduces the §III-B motivation: an
// elephant squeezed below τ per interval is misidentified by the naive
// single-interval rule but correctly promoted by the ternary tracker.
func TestTernaryFixesSlowElephant(t *testing.T) {
	paraleon := NewSwitchAgent(ParaleonAgentConfig(), 1)
	naive := NewSwitchAgent(NaiveElasticConfig(), 1)
	// An elephant trickling 300 KB per interval (< τ = 1 MB) for 8
	// intervals: 2.4 MB total.
	var lastP, lastN Report
	for i := 0; i < 8; i++ {
		pkt := netdev.NewDataPacket(42, 0, 1, 0, 300<<10, false)
		paraleon.OnPacket(pkt, 0)
		naivePkt := netdev.NewDataPacket(42, 0, 1, 0, 300<<10, false)
		naive.OnPacket(naivePkt, 0)
		lastP = paraleon.EndInterval()
		lastN = naive.EndInterval()
	}
	fP := Aggregate(lastP)
	fN := Aggregate(lastN)
	if fP.ElephantShare < 0.99 {
		t.Errorf("paraleon elephant share = %g, want ~1 (Φ=2.4MB ≥ τ)", fP.ElephantShare)
	}
	if fN.ElephantShare > 0.01 {
		t.Errorf("naive elephant share = %g, want ~0 (single-interval misidentification)", fN.ElephantShare)
	}
}

func TestOracleCountsOnlyAtSourceToR(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		NumToR: 2, NumLeaf: 1, HostsPerToR: 2,
		HostLinkBps: 1e9, FabricLinkBps: 1e9, PropDelay: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	tors := topo.ToRs()
	sizes := map[uint64]int64{7: 4 << 20}
	sizeOf := func(id uint64) int64 { return sizes[id] }
	oSrc := NewOracle(topo, tors[0], 1<<20, sizeOf)
	oDst := NewOracle(topo, tors[1], 1<<20, sizeOf)
	pkt := netdev.NewDataPacket(7, hosts[0], hosts[2], 0, 1000, false)
	oSrc.OnPacket(pkt, 0)
	oDst.OnPacket(pkt, 0)
	rSrc, rDst := oSrc.EndInterval(), oDst.EndInterval()
	if rSrc.Flows != 1 || rSrc.ElephantBytes != 1000 {
		t.Errorf("source oracle report %+v, want 1 elephant flow of 1000B", rSrc)
	}
	if rDst.Flows != 0 {
		t.Errorf("destination oracle counted a transit packet: %+v", rDst)
	}
}

func TestOracleClassifiesByTrueSize(t *testing.T) {
	topo, _ := topology.NewClos(topology.ClosConfig{
		NumToR: 1, NumLeaf: 0, HostsPerToR: 2, HostLinkBps: 1e9,
	})
	hosts := topo.Hosts()
	sizeOf := func(id uint64) int64 {
		if id == 1 {
			return 8 << 20 // true elephant even if this interval is tiny
		}
		return 10 << 10
	}
	o := NewOracle(topo, topo.ToRs()[0], 1<<20, sizeOf)
	o.OnPacket(netdev.NewDataPacket(1, hosts[0], hosts[1], 0, 500, false), 0)
	o.OnPacket(netdev.NewDataPacket(2, hosts[0], hosts[1], 0, 500, false), 0)
	r := o.EndInterval()
	if r.ElephantBytes != 500 || r.MiceBytes != 500 {
		t.Errorf("oracle split %g/%g, want 500/500", r.ElephantBytes, r.MiceBytes)
	}
}

// --- Controller ---

type fakeSource struct{ reports []Report }

func (f *fakeSource) EndInterval() Report {
	if len(f.reports) == 0 {
		return Report{}
	}
	r := f.reports[0]
	f.reports = f.reports[1:]
	return r
}

func TestControllerTriggersOnShift(t *testing.T) {
	mice := Report{Flows: 10}
	mice.Hist[0] = 1000
	mice.MiceBytes = 1000
	mice.MiceFlowsW = 10
	eleph := Report{Flows: 2}
	eleph.Hist[12] = 1000
	eleph.ElephantBytes = 1000
	eleph.ElephantFlowsW = 2
	src := &fakeSource{reports: []Report{mice, mice, mice, eleph, eleph}}
	c := NewController(0.01, src)
	var fired []FSD
	c.OnTrigger = func(f FSD) { fired = append(fired, f) }
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	// At least two triggers: traffic onset (change from silence) and the
	// mice→elephant shift. The smoothed share converges over a couple of
	// intervals, so the shift may fire more than once — the System layer
	// ignores triggers while a session is already active.
	if c.Triggers < 2 {
		t.Errorf("Triggers = %d, want >= 2 (onset + shift)", c.Triggers)
	}
	if len(fired) < 2 {
		t.Fatalf("only %d trigger payloads", len(fired))
	}
	if fired[0].ElephantFlowShare != 0 {
		t.Errorf("onset payload share %g, want mice-dominant", fired[0].ElephantFlowShare)
	}
	last := fired[len(fired)-1]
	if last.ElephantFlowShare <= fired[0].ElephantFlowShare {
		t.Errorf("shift payloads not trending toward elephants: %v", fired)
	}
	if c.Ticks != 5 {
		t.Errorf("Ticks = %d, want 5", c.Ticks)
	}
}

func TestControllerStableNoTrigger(t *testing.T) {
	r := Report{Flows: 1}
	r.Hist[5] = 100
	r.MiceBytes = 100
	r.MiceFlowsW = 1
	src := &fakeSource{reports: []Report{r, r, r, r}}
	c := NewController(0.01, src)
	for i := 0; i < 4; i++ {
		c.Tick()
	}
	// Only the onset trigger; stable traffic must not re-fire.
	if c.Triggers != 1 {
		t.Errorf("stable traffic fired %d triggers, want 1 (onset only)", c.Triggers)
	}
}

func TestControllerIgnoresSilence(t *testing.T) {
	traffic := Report{Flows: 2}
	traffic.Hist[8] = 500
	traffic.ElephantBytes = 500
	traffic.ElephantFlowsW = 2
	// Traffic, three OFF gaps, then the same traffic again: the gaps
	// must not trigger, and neither must the resumption (same pattern).
	src := &fakeSource{reports: []Report{traffic, {}, {}, {}, traffic}}
	c := NewController(0.01, src)
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if c.Triggers != 1 {
		t.Errorf("ON/OFF gaps fired %d triggers, want 1 (onset only)", c.Triggers)
	}
}

// --- Runtime collector (integration with sim) ---

func TestRuntimeCollectorUnderTraffic(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	col := NewRuntimeCollector(n)
	col.StartProbing(200 * eventsim.Microsecond)
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 8<<20)
	}
	interval := eventsim.Millisecond
	n.Run(interval)
	s := col.Sample(interval)
	if s.OTP <= 0 || s.OTP > 1 {
		t.Errorf("OTP = %g, want in (0,1]", s.OTP)
	}
	if s.ActiveLinks == 0 {
		t.Error("no active links despite incast")
	}
	if s.ORTT <= 0 || s.ORTT > 1 {
		t.Errorf("ORTT = %g, want in (0,1]", s.ORTT)
	}
	if s.RTTSamples == 0 {
		t.Error("no RTT samples with probing on")
	}
	if s.OPFC < 0 || s.OPFC > 1 {
		t.Errorf("OPFC = %g, want in [0,1]", s.OPFC)
	}
}

func TestRuntimeCollectorIdleNetwork(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(eventsim.Millisecond)
	col := NewRuntimeCollector(n)
	n.Run(2 * eventsim.Millisecond)
	s := col.Sample(eventsim.Millisecond)
	if s.OTP != 0 {
		t.Errorf("idle OTP = %g, want 0", s.OTP)
	}
	if s.ORTT != 1 {
		t.Errorf("idle ORTT = %g, want neutral 1", s.ORTT)
	}
	if s.OPFC != 1 {
		t.Errorf("idle OPFC = %g, want 1", s.OPFC)
	}
}

func TestRuntimeCollectorSeesPFC(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Switch.BufferBytes = 300 << 10
	cfg.Params.KminBytes = 200 << 10
	cfg.Params.KmaxBytes = 260 << 10
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	for i := 1; i < 8; i++ {
		n.StartFlow(hosts[i], hosts[0], 2<<20)
	}
	col := NewRuntimeCollector(n)
	n.Run(5 * eventsim.Millisecond)
	s := col.Sample(5 * eventsim.Millisecond)
	if s.OPFC >= 1 {
		t.Errorf("OPFC = %g despite PFC storm, want < 1", s.OPFC)
	}
}

// End-to-end: sketch agents on a live network produce an FSD close to the
// oracle's.
func TestAgentsVsOracleOnLiveTraffic(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	var agents []ReportSource
	var oracles []ReportSource
	for i, tor := range n.Topo.ToRs() {
		a := NewSwitchAgent(ParaleonAgentConfig(), uint64(i+1))
		o := NewOracle(n.Topo, tor, 1<<20, n.FlowSize)
		TapAll(n.Switch(tor), o.OnPacket, a.OnPacket)
		agents = append(agents, a)
		oracles = append(oracles, o)
	}
	// Elephants plus mice.
	n.StartFlow(hosts[0], hosts[4], 8<<20)
	n.StartFlow(hosts[1], hosts[5], 8<<20)
	for i := 0; i < 10; i++ {
		n.StartFlowAt(eventsim.Time(i)*200*eventsim.Microsecond, hosts[2], hosts[6], 20<<10)
	}
	est := NewController(0.01, agents...)
	truth := NewController(0.01, oracles...)
	var acc float64
	ticks := 0
	for mi := 1; mi <= 8; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		e := est.Tick()
		tr := truth.Tick()
		if tr.TotalBytes == 0 {
			continue
		}
		acc += Accuracy(e, tr)
		ticks++
	}
	if ticks == 0 {
		t.Fatal("no intervals with traffic")
	}
	avg := acc / float64(ticks)
	if avg < 0.7 {
		t.Errorf("average FSD accuracy %g, want >= 0.7", avg)
	}
}
