package monitor

import (
	"repro/internal/rnic"
	"repro/internal/sketch"
)

// RNICAgent realizes the §V "relaxation of programmable switches"
// discussion: if RNICs expose per-QP counters, the entire flow-size
// measurement can run at the hosts with no switch sketches at all. One
// RNICAgent covers a group of hosts (typically a rack) and feeds the same
// ternary tracker the sketch agents use — but from exact per-QP byte
// counts, so there is no Light Part residue and no hash collisions.
//
// The trade-off the paper notes still holds: this mode depends on RNIC
// hardware support, whereas the sketch agents only need the ToRs.
type RNICAgent struct {
	hosts   []*rnic.Host
	tracker *Tracker
}

// NewRNICAgent builds an agent over the given hosts' per-QP counters.
func NewRNICAgent(cfg TrackerConfig, hosts []*rnic.Host) *RNICAgent {
	return &RNICAgent{hosts: hosts, tracker: NewTracker(cfg)}
}

// EndInterval implements ReportSource by draining every host's per-flow
// byte counters into the ternary tracker.
func (a *RNICAgent) EndInterval() Report {
	var sizes []sketch.FlowSize
	for _, h := range a.hosts {
		for _, fb := range h.TakeFlowBytes() {
			sizes = append(sizes, sketch.FlowSize{Flow: fb.Flow, Bytes: fb.Bytes})
		}
	}
	return ReportFrom(a.tracker.EndInterval(sizes), 0)
}
