package monitor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netdev"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/topology"
)

// evictionProneConfig is a deliberately tiny sketch so a short packet
// stream exercises Ostracism evictions and flagged residents.
func evictionProneConfig(base AgentConfig) AgentConfig {
	base.Sketch = sketch.Config{HeavyBuckets: 4, LightRows: 2, LightWidth: 64, Lambda: 4}
	return base
}

func reportTotal(r Report) float64 { return r.ElephantBytes + r.MiceBytes }

func histTotal(r Report) float64 {
	var t float64
	for _, v := range r.Hist {
		t += v
	}
	return t
}

// TestEndIntervalConservesBytes pins the flagged-residue fix: the report
// must account for every inserted byte exactly once, even after
// evictions leave flagged residents with Light Part residue. Before the
// fix that residue surfaced both inside the flows' estimates and in the
// light lump, so reports over-counted.
func TestEndIntervalConservesBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  AgentConfig
	}{
		{"naive", evictionProneConfig(NaiveElasticConfig())},
		{"ternary", evictionProneConfig(ParaleonAgentConfig())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewSwitchAgent(tc.cfg, 1)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 400; i++ {
				flow := uint64(rng.Intn(16))
				pkt := netdev.NewDataPacket(flow, 0, 1, 0, rng.Intn(1460)+1, false)
				a.OnPacket(pkt, 0)
			}
			if a.Sketch().Evictions == 0 {
				t.Fatal("scenario produced no evictions; conservation not stressed")
			}
			total := float64(a.Sketch().TotalBytes)
			r := a.EndInterval()
			if got := reportTotal(r); math.Abs(got-total) > 1e-6 {
				t.Errorf("ElephantBytes+MiceBytes = %g, want %g (inserted)", got, total)
			}
			if got := histTotal(r); math.Abs(got-total) > 1e-6 {
				t.Errorf("sum(Hist) = %g, want %g (inserted)", got, total)
			}
		})
	}
}

// TestInsertOnceConservationProperty: with insert-once on, a packet
// crossing several measurement points is recorded at exactly one of
// them, so the agents' reports sum to the true byte total — no double
// counting across hops and none inside each sketch.
func TestInsertOnceConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := NewSwitchAgent(evictionProneConfig(ParaleonAgentConfig()), 1)
		b := NewSwitchAgent(evictionProneConfig(ParaleonAgentConfig()), 2)
		rng := rand.New(rand.NewSource(seed))
		var total float64
		for i := 0; i < 300; i++ {
			flow := uint64(rng.Intn(16))
			size := rng.Intn(1460) + 1
			pkt := netdev.NewDataPacket(flow, 0, 1, 0, size, false)
			total += float64(size)
			// Each packet traverses both switches; vary which sees it
			// first so both sketches take real inserts.
			if rng.Intn(2) == 0 {
				a.OnPacket(pkt, 0)
				b.OnPacket(pkt, 0)
			} else {
				b.OnPacket(pkt, 0)
				a.OnPacket(pkt, 0)
			}
		}
		got := reportTotal(a.EndInterval()) + reportTotal(b.EndInterval())
		return math.Abs(got-total) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAttachComposesWithOracle is the tap-clobbering regression test: a
// ground-truth oracle and a switch agent must both see traffic no matter
// which attaches first.
func TestAttachComposesWithOracle(t *testing.T) {
	topo, err := topology.NewClos(sim.DefaultConfig().Clos)
	if err != nil {
		t.Fatal(err)
	}
	src := topo.Hosts()[0]
	dst := topo.Hosts()[1]
	tor := topo.ToROf(src)

	attach := func(sw *netdev.Switch, o *Oracle, a *SwitchAgent, oracleFirst bool) {
		if oracleFirst {
			TapAll(sw, o.OnPacket)
			a.Attach(sw)
		} else {
			a.Attach(sw)
			TapAll(sw, o.OnPacket)
		}
	}

	for _, oracleFirst := range []bool{true, false} {
		sw := &netdev.Switch{}
		o := NewOracle(topo, tor, 1<<20, func(uint64) int64 { return 0 })
		a := NewSwitchAgent(ParaleonAgentConfig(), 1)
		attach(sw, o, a, oracleFirst)
		pkt := netdev.NewDataPacket(9, src, dst, 0, 1000, false)
		sw.Tap(pkt, 0)
		if got := a.Sketch().TotalBytes; got != 1000 {
			t.Errorf("oracleFirst=%v: agent recorded %d bytes, want 1000", oracleFirst, got)
		}
		if got := reportTotal(o.EndInterval()); got != 1000 {
			t.Errorf("oracleFirst=%v: oracle recorded %g bytes, want 1000", oracleFirst, got)
		}
	}
}

// TestAttachTwiceComposes: two agents attached to one switch both run;
// insert-once makes the second skip, proving its tap fired.
func TestAttachTwiceComposes(t *testing.T) {
	sw := &netdev.Switch{}
	a1 := NewSwitchAgent(ParaleonAgentConfig(), 1)
	a2 := NewSwitchAgent(ParaleonAgentConfig(), 2)
	a1.Attach(sw)
	a2.Attach(sw)
	sw.Tap(netdev.NewDataPacket(1, 0, 1, 0, 1000, false), 0)
	if a1.Sketch().TotalBytes != 1000 {
		t.Error("first attached agent missed the packet")
	}
	if a2.Skipped != 1 {
		t.Error("second attached agent's tap never fired")
	}
}
