package monitor

import "testing"

// mortalSource is a scriptable ReportSource + LivenessSource.
type mortalSource struct {
	alive bool
	rep   Report
	calls int
}

func (f *mortalSource) Alive() bool { return f.alive }

func (f *mortalSource) EndInterval() Report {
	f.calls++
	return f.rep
}

func trafficReport(bytes float64) Report {
	var r Report
	r.Hist[3] = bytes
	r.ElephantBytes = bytes
	r.ElephantFlowsW = 1
	r.Flows = 1
	return r
}

// degradeEvent is one OnFault/OnRecover observation.
type degradeEvent struct {
	fault string
	agent int
	kind  string // "fault" or "recover"
}

func hookedController(theta float64, events *[]degradeEvent, sources ...ReportSource) *Controller {
	c := NewController(theta, sources...)
	c.OnFault = func(fault string, agent int) {
		*events = append(*events, degradeEvent{fault, agent, "fault"})
	}
	c.OnRecover = func(fault string, agent int) {
		*events = append(*events, degradeEvent{fault, agent, "recover"})
	}
	return c
}

// TestControllerDegradation drives alive/dead patterns through the
// controller and checks the staleness, eviction, quorum, and flagging
// machinery tick by tick.
func TestControllerDegradation(t *testing.T) {
	type step struct {
		alive        []bool
		wantFrozen   bool
		wantDegraded bool
		wantPresent  int
	}
	cases := []struct {
		name          string
		staleAfter    int
		quorumFrac    float64
		sources       int
		steps         []step
		wantEvictions int
		wantReadmits  int
	}{
		{
			// One of two agents dies: 1/2 present is not below the 0.5
			// default quorum, so tuning continues degraded; after
			// StaleAfter missed intervals the dead agent is evicted.
			name: "stale eviction without quorum loss", staleAfter: 2, sources: 2,
			steps: []step{
				{alive: []bool{true, true}, wantPresent: 2},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				// third miss > StaleAfter: evicted, membership shrinks.
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
			},
			wantEvictions: 1,
		},
		{
			// Two of three dead: 1/3 < 0.5 freezes until eviction
			// shrinks the membership back to quorum.
			name: "quorum freeze then recovery by eviction", staleAfter: 2, sources: 3,
			steps: []step{
				{alive: []bool{true, true, true}, wantPresent: 3},
				{alive: []bool{true, false, false}, wantFrozen: true, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false, false}, wantFrozen: true, wantDegraded: true, wantPresent: 1},
				// Third miss exceeds StaleAfter: both evicted, membership
				// shrinks to 1/1 and quorum is restored.
				{alive: []bool{true, false, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false, false}, wantDegraded: true, wantPresent: 1},
			},
			wantEvictions: 2,
		},
		{
			// A crashed agent that returns before eviction: no eviction,
			// no readmit, flags clear.
			name: "recovery before eviction", staleAfter: 3, sources: 2,
			steps: []step{
				{alive: []bool{true, true}, wantPresent: 2},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, true}, wantPresent: 2},
			},
		},
		{
			// An evicted agent that returns is readmitted immediately.
			name: "readmission after eviction", staleAfter: 1, sources: 2,
			steps: []step{
				{alive: []bool{true, true}, wantPresent: 2},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, false}, wantDegraded: true, wantPresent: 1}, // evicted
				{alive: []bool{true, true}, wantPresent: 2},
			},
			wantEvictions: 1,
			wantReadmits:  1,
		},
		{
			// Raised quorum: a single loss out of two freezes.
			name: "strict quorum", staleAfter: 100, quorumFrac: 0.6, sources: 2,
			steps: []step{
				{alive: []bool{true, true}, wantPresent: 2},
				{alive: []bool{true, false}, wantFrozen: true, wantDegraded: true, wantPresent: 1},
				{alive: []bool{true, true}, wantPresent: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var events []degradeEvent
			sources := make([]*mortalSource, tc.sources)
			rss := make([]ReportSource, tc.sources)
			for i := range sources {
				sources[i] = &mortalSource{alive: true, rep: trafficReport(1e6)}
				rss[i] = sources[i]
			}
			c := hookedController(0.01, &events, rss...)
			c.StaleAfter = tc.staleAfter
			c.QuorumFrac = tc.quorumFrac
			for si, st := range tc.steps {
				for i, a := range st.alive {
					sources[i].alive = a
				}
				fsd := c.Tick()
				if c.Frozen != st.wantFrozen {
					t.Errorf("step %d: Frozen=%v, want %v", si, c.Frozen, st.wantFrozen)
				}
				if c.Degraded != st.wantDegraded {
					t.Errorf("step %d: Degraded=%v, want %v", si, c.Degraded, st.wantDegraded)
				}
				if fsd.Degraded != st.wantDegraded {
					t.Errorf("step %d: FSD.Degraded=%v, want %v", si, fsd.Degraded, st.wantDegraded)
				}
				if c.PresentAgents != st.wantPresent {
					t.Errorf("step %d: PresentAgents=%d, want %d", si, c.PresentAgents, st.wantPresent)
				}
			}
			if c.Evictions != tc.wantEvictions {
				t.Errorf("Evictions=%d, want %d", c.Evictions, tc.wantEvictions)
			}
			if c.Readmits != tc.wantReadmits {
				t.Errorf("Readmits=%d, want %d", c.Readmits, tc.wantReadmits)
			}
			var evicts, readmits int
			for _, e := range events {
				switch e.fault {
				case "agent_evict":
					evicts++
				case "agent_readmit":
					readmits++
				}
			}
			if evicts != tc.wantEvictions || readmits != tc.wantReadmits {
				t.Errorf("events: evicts=%d readmits=%d, want %d/%d",
					evicts, readmits, tc.wantEvictions, tc.wantReadmits)
			}
		})
	}
}

// TestControllerPartialAggregation checks that a missing agent's flows
// drop out of the aggregate (insert-once: its flows are recorded nowhere
// else) and the result is flagged.
func TestControllerPartialAggregation(t *testing.T) {
	a := &mortalSource{alive: true, rep: trafficReport(3e6)}
	b := &mortalSource{alive: true, rep: trafficReport(1e6)}
	c := NewController(0.01, a, b)
	full := c.Tick()
	if full.Degraded {
		t.Error("full membership flagged degraded")
	}
	if full.TotalBytes != 4e6 {
		t.Errorf("full TotalBytes=%g, want 4e6", full.TotalBytes)
	}
	b.alive = false
	part := c.Tick()
	if !part.Degraded {
		t.Error("partial aggregate not flagged degraded")
	}
	if c.Raw.TotalBytes != 3e6 {
		t.Errorf("partial raw TotalBytes=%g, want 3e6", c.Raw.TotalBytes)
	}
}

// TestControllerFreezeHoldsTriggerPipeline checks that sub-quorum ticks
// neither fire the trigger nor poison the smoothed baseline.
func TestControllerFreezeHoldsTriggerPipeline(t *testing.T) {
	a := &mortalSource{alive: true, rep: trafficReport(1e6)}
	b := &mortalSource{alive: true, rep: trafficReport(1e6)}
	c := NewController(0.01, a, b)
	c.QuorumFrac = 0.9
	c.StaleAfter = 100
	c.Tick() // first traffic: one trigger
	base := c.Triggers
	baseline := c.Current

	// Shift the surviving agent's traffic to pure mice while the other is
	// down: a huge composition change, but frozen ticks must not act on
	// it.
	b.alive = false
	var mice Report
	mice.Hist[0] = 5e6
	mice.MiceBytes = 5e6
	mice.MiceFlowsW = 10
	mice.Flows = 10
	a.rep = mice
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if !c.Frozen {
		t.Fatal("controller not frozen below quorum")
	}
	if c.Triggers != base {
		t.Errorf("frozen ticks fired %d triggers", c.Triggers-base)
	}
	if c.Current != baseline {
		t.Error("frozen ticks mutated the smoothed FSD")
	}
	if c.FrozenTicks != 5 {
		t.Errorf("FrozenTicks=%d, want 5", c.FrozenTicks)
	}

	// Recovery: the pattern change is absorbed and (eventually) triggers.
	b.alive = true
	b.rep = mice
	c.Tick()
	if c.Frozen {
		t.Error("still frozen after recovery")
	}
	if c.Triggers == base {
		t.Error("post-recovery composition change never triggered")
	}
}

// TestControllerPlainSourcesUnaffected pins the zero-value behaviour:
// sources without liveness never freeze, evict, or flag anything.
func TestControllerPlainSourcesUnaffected(t *testing.T) {
	c := NewController(0.01, stubSource{}, stubSource{})
	for i := 0; i < 5; i++ {
		fsd := c.Tick()
		if c.Frozen || c.Degraded || fsd.Degraded {
			t.Fatal("degradation engaged for plain sources")
		}
	}
	if c.Evictions != 0 || c.FrozenTicks != 0 {
		t.Errorf("evictions=%d frozenTicks=%d, want 0/0", c.Evictions, c.FrozenTicks)
	}
}

// stubSource is a liveness-less ReportSource.
type stubSource struct{}

func (stubSource) EndInterval() Report { return trafficReport(1e6) }
