package monitor

import (
	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// RuntimeSample holds the three utility-function inputs of Equation (1)
// for one monitor interval, each already normalized to [0,1].
type RuntimeSample struct {
	// OTP is the mean bandwidth utilization of active host↔ToR links.
	OTP float64
	// ORTT is the mean normalized RTT (base path delay / measured RTT).
	ORTT float64
	// OPFC is 1 − mean per-device PFC pause fraction.
	OPFC float64

	// ActiveLinks is how many link directions carried data this interval.
	ActiveLinks int
	// RTTSamples is how many probe measurements contributed to ORTT.
	RTTSamples int64
}

// RuntimeCollector samples per-interval throughput, RTT, and PFC metrics
// from a simulated network — the event-driven "runtime metric collection"
// half of Fig 2. Take-style counters mean each Sample covers exactly the
// time since the previous one, and also mean a given host/port must be
// owned by exactly one collector; scoped collectors (see
// NewScopedRuntimeCollector) partition the fabric for the §V multi-cluster
// deployment.
type RuntimeCollector struct {
	net *sim.Network
	// uplinks caches (host port, tor port) pairs per host link.
	uplinks []uplink
	// hosts and switches bound the collector's scope.
	hosts    []topology.NodeID
	switches []topology.NodeID
}

type uplink struct {
	host topology.NodeID
	tor  topology.NodeID
	// torPort is the ToR's local port index facing the host.
	torPort int
}

// NewRuntimeCollector indexes every host↔ToR link of n.
func NewRuntimeCollector(n *sim.Network) *RuntimeCollector {
	return NewScopedRuntimeCollector(n, n.Topo.ToRs())
}

// NewScopedRuntimeCollector indexes only the racks under the given ToRs:
// their host↔ToR links, their hosts' RTT probes, and their devices' PFC
// pause. Scopes of distinct collectors must not overlap (the take-style
// counters would steal from each other).
func NewScopedRuntimeCollector(n *sim.Network, tors []topology.NodeID) *RuntimeCollector {
	inScope := make(map[topology.NodeID]bool, len(tors))
	for _, tor := range tors {
		inScope[tor] = true
	}
	c := &RuntimeCollector{net: n, switches: append([]topology.NodeID(nil), tors...)}
	topo := n.Topo
	for i := range topo.Links {
		l := &topo.Links[i]
		a, b := topo.Nodes[l.A], topo.Nodes[l.B]
		switch {
		case a.Kind == topology.Host && b.Kind == topology.ToRSwitch && inScope[l.B]:
			c.uplinks = append(c.uplinks, uplink{host: l.A, tor: l.B, torPort: l.BPort})
			c.hosts = append(c.hosts, l.A)
		case b.Kind == topology.Host && a.Kind == topology.ToRSwitch && inScope[l.A]:
			c.uplinks = append(c.uplinks, uplink{host: l.B, tor: l.A, torPort: l.APort})
			c.hosts = append(c.hosts, l.B)
		}
	}
	return c
}

// Hosts lists the host nodes in this collector's scope.
func (c *RuntimeCollector) Hosts() []topology.NodeID { return c.hosts }

// Sample closes the interval of the given length and returns its metrics.
func (c *RuntimeCollector) Sample(interval eventsim.Time) RuntimeSample {
	var s RuntimeSample
	seconds := interval.Seconds()
	if seconds <= 0 {
		panic("monitor: non-positive interval")
	}

	// O_TP: average utilization across active uplink directions.
	var utilSum float64
	for _, ul := range c.uplinks {
		hostPort := c.net.Host(ul.host).Port()
		torPort := c.net.Switch(ul.tor).Port(ul.torPort)
		for _, p := range []interface {
			TakeTxDataBytes() int64
			RateBps() float64
		}{hostPort, torPort} {
			bytes := p.TakeTxDataBytes()
			if bytes <= 0 {
				continue
			}
			util := float64(bytes*8) / (p.RateBps() * seconds)
			if util > 1 {
				util = 1
			}
			utilSum += util
			s.ActiveLinks++
		}
	}
	if s.ActiveLinks > 0 {
		s.OTP = utilSum / float64(s.ActiveLinks)
	}

	// O_RTT: average normalized RTT across the scope's probe samples.
	var rttSum float64
	var rttCount int64
	for _, hn := range c.hosts {
		sum, count := c.net.Host(hn).TakeRTT()
		rttSum += sum
		rttCount += count
	}
	s.RTTSamples = rttCount
	if rttCount > 0 {
		s.ORTT = rttSum / float64(rttCount)
	} else {
		// No probes landed: nothing indicates congestion.
		s.ORTT = 1
	}

	// O_PFC: 1 − average per-device pause fraction over the scope.
	var pauseFracSum float64
	devices := 0
	for _, sn := range c.switches {
		sw := c.net.Switch(sn)
		paused := sw.TakePausedTime()
		frac := float64(paused) / (float64(sw.NumPorts()) * float64(interval))
		if frac > 1 {
			frac = 1
		}
		pauseFracSum += frac
		devices++
	}
	for _, hn := range c.hosts {
		paused := c.net.Host(hn).Port().TakePausedTime()
		frac := float64(paused) / float64(interval)
		if frac > 1 {
			frac = 1
		}
		pauseFracSum += frac
		devices++
	}
	if devices > 0 {
		s.OPFC = 1 - pauseFracSum/float64(devices)
	} else {
		s.OPFC = 1
	}
	return s
}

// StartProbing arms RTT probing on the scope's hosts at the given period.
func (c *RuntimeCollector) StartProbing(every eventsim.Time) {
	for _, hn := range c.hosts {
		c.net.Host(hn).StartProbing(every)
	}
}
