package monitor

import (
	"sort"

	"repro/internal/sketch"
)

// FlowState is the ternary classification of §III-B Keypoint 2.
type FlowState int

const (
	// Mice flows have little data and have not filled the window.
	Mice FlowState = iota
	// PotentialElephant flows stay active for δ consecutive intervals
	// but have not yet crossed τ: "temporary mice likely to evolve".
	PotentialElephant
	// Elephant flows have aggregated ≥ τ bytes.
	Elephant
)

func (s FlowState) String() string {
	switch s {
	case Mice:
		return "mice"
	case PotentialElephant:
		return "potential-elephant"
	case Elephant:
		return "elephant"
	default:
		return "unknown"
	}
}

// TrackerConfig parameterizes ternary state tracking.
type TrackerConfig struct {
	// TauBytes (τ) is the elephant size threshold (paper: 1 MB).
	TauBytes int64
	// Delta (δ) is the sliding-window length in monitor intervals
	// (paper: 3).
	Delta int
	// EvictAfter evicts a flow with no traffic for this many intervals
	// (≥ Delta; finished flows must not linger in the state table).
	EvictAfter int
}

// DefaultTrackerConfig mirrors Table III (τ = 1 MB, δ = 3).
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{TauBytes: 1 << 20, Delta: 3, EvictAfter: 6}
}

// trackedFlow is per-flow sliding-window state.
type trackedFlow struct {
	cum          int64 // Φ(f): aggregated bytes since first seen
	activeStreak int   // consecutive intervals with traffic, ≤ Delta kept
	idle         int   // consecutive intervals without traffic
	state        FlowState
}

// Classified is a flow's state and interval contribution after an
// EndInterval tick.
type Classified struct {
	Flow    uint64
	State   FlowState
	Bytes   int64 // bytes observed this interval
	Cum     int64 // Φ(f)
	EWeight float64
}

// Tracker updates ternary flow states from per-interval sketch readings.
// It lives in a switch's control plane.
type Tracker struct {
	cfg   TrackerConfig
	flows map[uint64]*trackedFlow

	// Intervals counts EndInterval calls.
	Intervals int
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.TauBytes <= 0 || cfg.Delta <= 0 {
		panic("monitor: invalid tracker config")
	}
	if cfg.EvictAfter < cfg.Delta {
		cfg.EvictAfter = cfg.Delta
	}
	return &Tracker{cfg: cfg, flows: map[uint64]*trackedFlow{}}
}

// Tracked reports the number of flows currently in the state table.
func (t *Tracker) Tracked() int { return len(t.flows) }

// State returns a flow's current classification (Mice if untracked).
func (t *Tracker) State(flow uint64) FlowState {
	if f := t.flows[flow]; f != nil {
		return f.state
	}
	return Mice
}

// EndInterval ingests one monitor interval's per-flow byte counts (a
// sketch Heavy Part read) and returns each active flow's classification,
// sorted by flow ID for determinism. Flows absent from sizes go idle and
// are eventually evicted.
//
// State rules (Fig 3):
//  1. Φ(f) ≥ τ               → Elephant (sticky while the flow lives).
//  2. Φ(f) < τ, streak ≥ δ   → PotentialElephant.
//  3. otherwise              → Mice.
//
// A PE flow's EWeight — its contribution to the elephant side of the
// distribution — is Φ(f)/τ, the likelihood proxy that sharpens as more
// intervals elapse.
func (t *Tracker) EndInterval(sizes []sketch.FlowSize) []Classified {
	t.Intervals++
	seen := make(map[uint64]bool, len(sizes))
	out := make([]Classified, 0, len(sizes))

	for _, fs := range sizes {
		if fs.Bytes <= 0 {
			continue
		}
		seen[fs.Flow] = true
		f := t.flows[fs.Flow]
		if f == nil {
			f = &trackedFlow{}
			t.flows[fs.Flow] = f
		}
		f.cum += fs.Bytes
		f.activeStreak++
		f.idle = 0
		switch {
		case f.cum >= t.cfg.TauBytes:
			f.state = Elephant
		case f.activeStreak >= t.cfg.Delta:
			f.state = PotentialElephant
		default:
			f.state = Mice
		}
		c := Classified{Flow: fs.Flow, State: f.state, Bytes: fs.Bytes, Cum: f.cum}
		if f.state == PotentialElephant {
			c.EWeight = float64(f.cum) / float64(t.cfg.TauBytes)
			if c.EWeight > 1 {
				c.EWeight = 1
			}
		} else if f.state == Elephant {
			c.EWeight = 1
		}
		out = append(out, c)
	}

	// Idle bookkeeping and eviction.
	for id, f := range t.flows {
		if seen[id] {
			continue
		}
		f.activeStreak = 0
		f.idle++
		if f.idle >= t.cfg.EvictAfter {
			delete(t.flows, id)
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// ReportFrom converts a set of classifications plus unattributed
// light-part mass into this interval's Report. Light-part bytes belong to
// flows too small for the Heavy Part, so they count as mice mass in the
// smallest size class.
func ReportFrom(classified []Classified, lightBytes int64) Report {
	var r Report
	for _, c := range classified {
		r.Hist[BucketFor(c.Cum)] += float64(c.Bytes)
		r.ElephantBytes += c.EWeight * float64(c.Bytes)
		r.MiceBytes += (1 - c.EWeight) * float64(c.Bytes)
		r.ElephantFlowsW += c.EWeight
		r.MiceFlowsW += 1 - c.EWeight
		r.Flows++
	}
	if lightBytes > 0 {
		r.Hist[0] += float64(lightBytes)
		r.MiceBytes += float64(lightBytes)
	}
	return r
}
