// Package monitor implements Paraleon's Runtime Metric Monitor (§III-B):
// sketch-based per-switch measurement agents with the TOS insert-once rule,
// ternary flow-state tracking over a sliding window, controller-side
// aggregation of local flow size distributions, the KL-divergence tuning
// trigger, and the runtime metric collection (throughput, RTT, PFC) that
// feeds the utility function.
package monitor

import (
	"fmt"
	"math"
)

// NumBuckets is the number of log2 flow-size classes in a flow size
// distribution: bucket 0 holds flows up to 1 KB, bucket i flows up to
// 2^i KB, with everything ≥ 32 MB in the last bucket.
const NumBuckets = 16

// BucketFor maps a flow size in bytes to its size class.
func BucketFor(size int64) int {
	if size <= 1024 {
		return 0
	}
	b := 0
	for s := size - 1; s >= 1024; s >>= 1 {
		b++
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Report is one agent's unnormalized contribution for one monitor
// interval: byte mass per size class, plus the ternary-weighted
// elephant/mice split.
type Report struct {
	Hist          [NumBuckets]float64
	ElephantBytes float64
	MiceBytes     float64
	Flows         int
	// ElephantFlowsW / MiceFlowsW are ternary-weighted flow counts: a
	// potential elephant contributes its likelihood to the elephant side
	// and the remainder to the mice side. Dominance (the mu that guides
	// SA mutation) is computed over these counts, matching the paper's
	// narrative that mice "dominate" while many small flows are active
	// even though elephants carry most bytes.
	ElephantFlowsW float64
	MiceFlowsW     float64
}

// Add accumulates another report into r.
func (r *Report) Add(o Report) {
	for i := range r.Hist {
		r.Hist[i] += o.Hist[i]
	}
	r.ElephantBytes += o.ElephantBytes
	r.MiceBytes += o.MiceBytes
	r.Flows += o.Flows
	r.ElephantFlowsW += o.ElephantFlowsW
	r.MiceFlowsW += o.MiceFlowsW
}

// FSD is a normalized network-wide flow size distribution.
type FSD struct {
	// Hist is the byte-share per size class; sums to 1 when TotalBytes>0.
	Hist [NumBuckets]float64
	// ElephantShare is the ternary-weighted fraction of traffic (bytes)
	// attributed to elephant flows.
	ElephantShare float64
	// ElephantFlowShare is the ternary-weighted fraction of active flows
	// that are elephants; dominance uses this.
	ElephantFlowShare float64
	// TotalBytes is the observed byte mass behind the distribution.
	TotalBytes float64
	// Flows is the number of distinct tracked flows.
	Flows int
	// Degraded flags a distribution aggregated from an incomplete agent
	// set (crashed or evicted agents): with the insert-once rule every
	// flow is recorded at exactly one switch, so a missing agent silently
	// removes its flows from the histogram. Consumers should treat the
	// shape as reduced-confidence rather than ground truth.
	Degraded bool
}

// Aggregate merges local reports into the network-wide FSD — the
// controller-side "layered" aggregation step. With the insert-once rule
// each flow is recorded at exactly one switch, so summation is exact.
func Aggregate(locals ...Report) FSD {
	var sum Report
	for _, l := range locals {
		sum.Add(l)
	}
	var f FSD
	f.Flows = sum.Flows
	var total float64
	for _, v := range sum.Hist {
		total += v
	}
	f.TotalBytes = total
	if total > 0 {
		for i, v := range sum.Hist {
			f.Hist[i] = v / total
		}
	}
	if eb, mb := sum.ElephantBytes, sum.MiceBytes; eb+mb > 0 {
		f.ElephantShare = eb / (eb + mb)
	}
	if ef, mf := sum.ElephantFlowsW, sum.MiceFlowsW; ef+mf > 0 {
		f.ElephantFlowShare = ef / (ef + mf)
	}
	return f
}

// DominantElephant reports whether elephants dominate the active flow
// population, and the dominant proportion mu used by the tuner's guided
// randomness.
func (f FSD) DominantElephant() (bool, float64) {
	if f.ElephantFlowShare >= 0.5 {
		return true, f.ElephantFlowShare
	}
	return false, 1 - f.ElephantFlowShare
}

// Smoother maintains an exponentially weighted moving average of the
// network-wide FSD across monitor intervals. A single λ_MI snapshot is
// extremely volatile — a flow migrates through size buckets as its Φ
// grows, and at small scale the dominant type can flip every interval —
// so the controller compares *time-averaged* distributions, matching the
// paper's observation that workloads "exhibit a similar traffic pattern
// over tens of milliseconds". Traffic-free intervals leave the average
// untouched.
type Smoother struct {
	// Alpha is the weight of the newest interval (default 0.3).
	Alpha float64
	fsd   FSD
	has   bool
}

// Update blends raw into the average and returns the smoothed FSD. Empty
// intervals return the existing average unchanged.
func (s *Smoother) Update(raw FSD) FSD {
	if raw.TotalBytes == 0 {
		return s.fsd
	}
	a := s.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	if !s.has {
		s.fsd = raw
		s.has = true
		return s.fsd
	}
	for i := range s.fsd.Hist {
		s.fsd.Hist[i] = a*raw.Hist[i] + (1-a)*s.fsd.Hist[i]
	}
	s.fsd.ElephantShare = a*raw.ElephantShare + (1-a)*s.fsd.ElephantShare
	s.fsd.ElephantFlowShare = a*raw.ElephantFlowShare + (1-a)*s.fsd.ElephantFlowShare
	s.fsd.TotalBytes = a*raw.TotalBytes + (1-a)*s.fsd.TotalBytes
	s.fsd.Flows = raw.Flows
	return s.fsd
}

// Has reports whether any traffic has been absorbed yet.
func (s *Smoother) Has() bool { return s.has }

// klEpsilon smooths zero probabilities so KL stays finite.
const klEpsilon = 1e-6

// KL computes the Kullback–Leibler divergence KL(f‖prev) between two
// successive network-wide distributions, the paper's traffic-change
// signal.
func KL(f, prev FSD) float64 {
	var d float64
	for i := range f.Hist {
		p := f.Hist[i] + klEpsilon
		q := prev.Hist[i] + klEpsilon
		d += p * math.Log(p/q)
	}
	if d < 0 {
		d = 0 // numerical floor; KL is nonnegative
	}
	return d
}

// TriggerDivergence is the tuning trigger's change signal: the KL
// divergence between the ternary-weighted elephant/mice flow compositions
// of two (smoothed) distributions.
//
// The full histogram KL is unsuitable as a trigger at runtime: a flow
// migrates through size buckets as its Φ grows, so even a perfectly
// recurring collective looks like a brand-new distribution at every round
// start. The elephant/mice composition is stable across rounds of the
// same workload and shifts exactly when the traffic mix the tuner cares
// about shifts.
func TriggerDivergence(f, prev FSD) float64 {
	const eps = 1e-3
	clamp := func(p float64) float64 {
		if p < eps {
			return eps
		}
		if p > 1-eps {
			return 1 - eps
		}
		return p
	}
	p := clamp(f.ElephantFlowShare)
	q := clamp(prev.ElephantFlowShare)
	d := p*math.Log(p/q) + (1-p)*math.Log((1-p)/(1-q))
	if d < 0 {
		d = 0
	}
	return d
}

// Accuracy scores an estimated FSD against ground truth in [0,1]:
// the mean of histogram similarity (1 − total variation distance) and
// elephant-share agreement. This is the metric behind Fig 10(a)/11(a).
func Accuracy(est, truth FSD) float64 {
	var tv float64
	for i := range est.Hist {
		tv += math.Abs(est.Hist[i] - truth.Hist[i])
	}
	histSim := 1 - tv/2
	shareSim := 1 - math.Abs(est.ElephantShare-truth.ElephantShare)
	return (histSim + shareSim) / 2
}

func (f FSD) String() string {
	return fmt.Sprintf("FSD{elephant=%.2f flows=%d bytes=%.0f}", f.ElephantShare, f.Flows, f.TotalBytes)
}
