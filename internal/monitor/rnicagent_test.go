package monitor

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/rnic"
	"repro/internal/sim"
)

func buildNet(t *testing.T) *sim.Network {
	t.Helper()
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// rackAgents builds one RNICAgent per rack of n.
func rackAgents(n *sim.Network) []ReportSource {
	var out []ReportSource
	for _, tor := range n.Topo.ToRs() {
		var hosts []*rnic.Host
		for _, hn := range n.Topo.Hosts() {
			if n.Topo.ToROf(hn) == tor {
				hosts = append(hosts, n.Host(hn))
			}
		}
		out = append(out, NewRNICAgent(DefaultTrackerConfig(), hosts))
	}
	return out
}

func TestRNICAgentCountsExactly(t *testing.T) {
	n := buildNet(t)
	hosts := n.Topo.Hosts()
	agents := rackAgents(n)
	size := int64(3 << 20)
	n.StartFlow(hosts[0], hosts[1], size)
	var total float64
	for mi := 1; mi <= 20; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		for _, a := range agents {
			r := a.EndInterval()
			total += r.ElephantBytes + r.MiceBytes
		}
	}
	// Per-QP counters are exact: total reported mass equals flow size.
	if int64(total) != size {
		t.Errorf("RNIC agents reported %d bytes, want exactly %d", int64(total), size)
	}
}

func TestRNICAgentTernaryPromotion(t *testing.T) {
	n := buildNet(t)
	hosts := n.Topo.Hosts()
	agents := rackAgents(n)
	// An 8 MB flow transmits >1 MB within the first interval at 10 Gbps,
	// so the tracker must classify it elephant almost immediately.
	n.StartFlow(hosts[0], hosts[1], 8<<20)
	var sawElephant bool
	for mi := 1; mi <= 10; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		for _, a := range agents {
			r := a.EndInterval()
			if r.ElephantFlowsW > 0 {
				sawElephant = true
			}
		}
	}
	if !sawElephant {
		t.Error("RNIC agent never classified the 8MB flow as elephant")
	}
}

func TestRNICAgentMatchesOracleClosely(t *testing.T) {
	// Exact per-QP counters should track the oracle at least as well as
	// the sketch path on the same traffic.
	n := buildNet(t)
	hosts := n.Topo.Hosts()
	rnicCtl := NewController(0.01, rackAgents(n)...)
	var oracles []ReportSource
	for _, tor := range n.Topo.ToRs() {
		o := NewOracle(n.Topo, tor, 1<<20, n.FlowSize)
		TapAll(n.Switch(tor), o.OnPacket)
		oracles = append(oracles, o)
	}
	truthCtl := NewController(0.01, oracles...)

	n.StartFlow(hosts[0], hosts[4], 8<<20)
	n.StartFlow(hosts[1], hosts[5], 8<<20)
	for i := 0; i < 10; i++ {
		n.StartFlowAt(eventsim.Time(i)*300*eventsim.Microsecond, hosts[2], hosts[6], 30<<10)
	}
	var acc float64
	ticks := 0
	for mi := 1; mi <= 10; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		est := rnicCtl.Tick()
		tr := truthCtl.Tick()
		if tr.TotalBytes == 0 {
			continue
		}
		acc += Accuracy(est, tr)
		ticks++
	}
	if ticks == 0 {
		t.Fatal("no traffic")
	}
	// Controllers smooth their FSDs, so the estimate lags truth by a few
	// intervals even with exact counters; 0.7 still clears every
	// sketch-based arm on this traffic.
	if avg := acc / float64(ticks); avg < 0.7 {
		t.Errorf("RNIC-agent accuracy %g, want >= 0.7 (exact counters)", avg)
	}
}

func TestTakeFlowBytesResidueOnCompletion(t *testing.T) {
	n := buildNet(t)
	hosts := n.Topo.Hosts()
	h := n.Host(hosts[0])
	size := int64(100 << 10)
	n.StartFlow(hosts[0], hosts[1], size)
	// Let the flow finish entirely between takes.
	n.RunUntilIdle(eventsim.Second)
	fb := h.TakeFlowBytes()
	if len(fb) != 1 || fb[0].Bytes != size {
		t.Fatalf("residue take = %+v, want one entry of %d bytes", fb, size)
	}
	// A second take is empty.
	if got := h.TakeFlowBytes(); len(got) != 0 {
		t.Errorf("second take = %+v, want empty", got)
	}
}
