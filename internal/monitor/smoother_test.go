package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func fsdWithShare(eleFlows, miceFlows float64, bucket int, bytes float64) FSD {
	var r Report
	r.Hist[bucket] = bytes
	r.ElephantFlowsW = eleFlows
	r.MiceFlowsW = miceFlows
	r.ElephantBytes = bytes * eleFlows / math.Max(1, eleFlows+miceFlows)
	r.MiceBytes = bytes - r.ElephantBytes
	r.Flows = int(eleFlows + miceFlows)
	return Aggregate(r)
}

func TestSmootherFirstSamplePassesThrough(t *testing.T) {
	var s Smoother
	raw := fsdWithShare(3, 1, 11, 1000)
	got := s.Update(raw)
	if got != raw {
		t.Errorf("first update altered the sample: %+v vs %+v", got, raw)
	}
	if !s.Has() {
		t.Error("Has() false after first traffic")
	}
}

func TestSmootherBlends(t *testing.T) {
	s := Smoother{Alpha: 0.5}
	s.Update(fsdWithShare(0, 10, 0, 1000)) // pure mice
	got := s.Update(fsdWithShare(10, 0, 12, 1000))
	if math.Abs(got.ElephantFlowShare-0.5) > 1e-9 {
		t.Errorf("blended flow share %g, want 0.5", got.ElephantFlowShare)
	}
	if math.Abs(got.Hist[0]-0.5) > 1e-9 || math.Abs(got.Hist[12]-0.5) > 1e-9 {
		t.Errorf("blended hist %g/%g, want 0.5/0.5", got.Hist[0], got.Hist[12])
	}
}

func TestSmootherIgnoresEmptyIntervals(t *testing.T) {
	var s Smoother
	traffic := fsdWithShare(5, 5, 8, 500)
	s.Update(traffic)
	for i := 0; i < 10; i++ {
		got := s.Update(FSD{})
		if got.ElephantFlowShare != traffic.ElephantFlowShare {
			t.Fatalf("empty interval %d changed the average", i)
		}
	}
}

func TestSmootherEmptyBeforeTraffic(t *testing.T) {
	var s Smoother
	got := s.Update(FSD{})
	if s.Has() || got.TotalBytes != 0 {
		t.Error("empty update before traffic counted")
	}
}

func TestQuickSmoothedHistStaysNormalized(t *testing.T) {
	f := func(shares []uint8) bool {
		var s Smoother
		for i, raw := range shares {
			bucket := int(raw) % NumBuckets
			fsd := fsdWithShare(float64(raw%7), float64(raw%3)+1, bucket, float64(raw)+1)
			got := s.Update(fsd)
			var sum float64
			for _, v := range got.Hist {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if got.ElephantFlowShare < 0 || got.ElephantFlowShare > 1 {
				return false
			}
			_ = i
		}
		return len(shares) == 0 || s.Has()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTriggerDivergence(t *testing.T) {
	a := fsdWithShare(9, 1, 11, 1000) // 90% elephants
	if d := TriggerDivergence(a, a); d != 0 {
		t.Errorf("self divergence %g, want 0", d)
	}
	b := fsdWithShare(1, 9, 0, 1000) // 10% elephants
	if d := TriggerDivergence(a, b); d < 0.5 {
		t.Errorf("90%%→10%% shift divergence %g, want large", d)
	}
	// Small composition wobble stays under the Table III θ.
	c := fsdWithShare(87, 13, 11, 1000)
	d := fsdWithShare(90, 10, 11, 1000)
	if div := TriggerDivergence(c, d); div > 0.01 {
		t.Errorf("3%%-point wobble divergence %g, want <= theta 0.01", div)
	}
}

func TestQuickTriggerDivergenceNonNegative(t *testing.T) {
	f := func(a, b uint8) bool {
		fa := fsdWithShare(float64(a), float64(255-a)+1, 5, 100)
		fb := fsdWithShare(float64(b), float64(255-b)+1, 5, 100)
		return TriggerDivergence(fa, fb) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The bucket-migration property that motivated TriggerDivergence: a
// recurring round where flows grow through buckets must not look like a
// pattern change, even though the histogram KL between phases is large.
func TestTriggerDivergenceStableAcrossRoundPhases(t *testing.T) {
	early := fsdWithShare(4, 4, 9, 1000) // flows young: mass low-bucket
	late := fsdWithShare(4, 4, 11, 1000) // same flows, grown
	if d := TriggerDivergence(late, early); d > 0.01 {
		t.Errorf("bucket migration alone fired the trigger: %g", d)
	}
	if d := KL(late, early); d < 1 {
		t.Errorf("sanity: histogram KL across phases %g should be large", d)
	}
}
