package monitor

// Controller is the centralized aggregation point: every monitor interval
// it collects local reports from all agents, merges them into the
// network-wide FSD, and fires the tuning trigger when the KL divergence
// between successive distributions exceeds θ.
type Controller struct {
	// Agents are the per-ToR report sources.
	Agents []ReportSource
	// Theta is the KL trigger threshold (Table III: 0.01).
	Theta float64
	// OnTrigger, if set, fires when traffic changed significantly.
	OnTrigger func(FSD)

	prev     FSD
	hasPrev  bool
	smoother Smoother

	// Current is the smoothed network-wide FSD (see Smoother); Raw is
	// the latest single-interval snapshot.
	Current FSD
	Raw     FSD
	// Ticks and Triggers count intervals and trigger firings.
	Ticks    int
	Triggers int
	// LastKL is the divergence computed at the most recent tick.
	LastKL float64
}

// NewController wires agents with trigger threshold theta.
func NewController(theta float64, agents ...ReportSource) *Controller {
	return &Controller{Agents: agents, Theta: theta}
}

// Tick closes one monitor interval: gather, aggregate, compare, maybe
// trigger. It returns the fresh network-wide FSD.
//
// Traffic-free intervals (the OFF gaps of an ON/OFF workload) are not
// treated as a traffic-pattern change: silence carries no distribution to
// adapt to, and comparing against it would re-trigger tuning at every
// round boundary. The previous distribution is kept until traffic
// reappears.
func (c *Controller) Tick() FSD {
	locals := make([]Report, len(c.Agents))
	for i, a := range c.Agents {
		locals[i] = a.EndInterval()
	}
	raw := Aggregate(locals...)
	c.Ticks++
	c.LastKL = 0
	c.Raw = raw
	if raw.TotalBytes == 0 {
		c.Current = c.smoother.Update(raw) // no-op; keeps the average
		return c.Current
	}
	fsd := c.smoother.Update(raw)
	c.Current = fsd
	if c.hasPrev {
		c.LastKL = TriggerDivergence(fsd, c.prev)
		if c.LastKL > c.Theta {
			c.Triggers++
			if c.OnTrigger != nil {
				c.OnTrigger(fsd)
			}
		}
	} else {
		// First traffic ever observed: the change from silence is a
		// pattern change by definition.
		c.Triggers++
		if c.OnTrigger != nil {
			c.OnTrigger(fsd)
		}
	}
	c.prev = fsd
	c.hasPrev = true
	return fsd
}
