package monitor

import "repro/internal/telemetry"

// LivenessSource is an optional extension of ReportSource for agents
// that can fail (internal/chaos wraps agents this way): a source
// reporting !Alive() contributes nothing this interval, and the
// controller tracks its staleness instead of treating silence as an
// idle rack.
type LivenessSource interface {
	// Alive reports whether the source can produce a report right now.
	Alive() bool
}

// Degradation defaults: evict after this many consecutive missed
// intervals, and freeze tuning when fewer than this fraction of the
// current membership reported.
const (
	DefaultStaleAfter = 3
	DefaultQuorumFrac = 0.5
)

// Controller is the centralized aggregation point: every monitor interval
// it collects local reports from all agents, merges them into the
// network-wide FSD, and fires the tuning trigger when the KL divergence
// between successive distributions exceeds θ.
//
// The controller degrades gracefully when agents fail (see
// LivenessSource): a dead agent is carried as a stale member for
// StaleAfter intervals — during which, if the present fraction drops
// below QuorumFrac, the trigger pipeline freezes — and is then evicted
// from the membership so a permanently lost rack cannot freeze tuning
// forever. Aggregation continues over the partial report set with the
// resulting FSDs flagged Degraded. An evicted agent that comes back is
// readmitted on its first live interval.
type Controller struct {
	// Agents are the per-ToR report sources.
	Agents []ReportSource
	// Theta is the KL trigger threshold (Table III: 0.01).
	Theta float64
	// OnTrigger, if set, fires when traffic changed significantly.
	OnTrigger func(FSD)

	// StaleAfter is how many consecutive missed intervals a dead agent
	// stays a (stale) member before eviction; 0 means DefaultStaleAfter.
	StaleAfter int
	// QuorumFrac is the minimum present fraction of the membership below
	// which the trigger pipeline freezes; 0 means DefaultQuorumFrac.
	QuorumFrac float64
	// OnFault / OnRecover, if set, observe degradation transitions.
	// agent is the index into Agents, or -1 for controller-level events
	// (quorum). Faults: "agent_evict", "quorum_lost"; recoveries:
	// "agent_readmit", "quorum_ok".
	OnFault   func(fault string, agent int)
	OnRecover func(fault string, agent int)

	prev     FSD
	hasPrev  bool
	smoother Smoother
	missed   []int
	evicted  []bool

	// Current is the smoothed network-wide FSD (see Smoother); Raw is
	// the latest single-interval snapshot.
	Current FSD
	Raw     FSD
	// Locals retains the most recent interval's per-agent reports,
	// aligned with Agents (a zero Report for absent or evicted agents).
	// Per-switch tuning strategies consume each ToR's slice separately;
	// the network-wide aggregation above is unaffected.
	Locals []Report
	// Ticks and Triggers count intervals and trigger firings.
	Ticks    int
	Triggers int
	// LastKL is the divergence computed at the most recent tick.
	LastKL float64

	// Frozen reports that the last tick ran below quorum: the trigger
	// pipeline (smoothing, KL, OnTrigger) was held and callers should
	// hold tuning too. Degraded reports that at least one agent was
	// absent or evicted, so distributions are partial.
	Frozen   bool
	Degraded bool
	// Evictions, Readmits, and FrozenTicks count degradation activity.
	Evictions, Readmits, FrozenTicks int
	// PresentAgents is how many sources reported at the last tick.
	PresentAgents int

	// TM, when non-nil, mirrors aggregation and degradation activity
	// into the telemetry registry.
	TM *telemetry.MonitorMetrics
}

// NewController wires agents with trigger threshold theta.
func NewController(theta float64, agents ...ReportSource) *Controller {
	return &Controller{Agents: agents, Theta: theta}
}

// staleAfter / quorumFrac resolve the zero-value defaults.
func (c *Controller) staleAfter() int {
	if c.StaleAfter > 0 {
		return c.StaleAfter
	}
	return DefaultStaleAfter
}

func (c *Controller) quorumFrac() float64 {
	if c.QuorumFrac > 0 {
		return c.QuorumFrac
	}
	return DefaultQuorumFrac
}

// Evicted reports whether agent i is currently evicted from the
// membership.
func (c *Controller) Evicted(i int) bool {
	return i < len(c.evicted) && c.evicted[i]
}

// gather collects reports from live sources, advances staleness and
// eviction state, and returns the present reports plus the present and
// member counts.
func (c *Controller) gather() (locals []Report, present, members int) {
	if c.missed == nil {
		c.missed = make([]int, len(c.Agents))
		c.evicted = make([]bool, len(c.Agents))
	}
	if len(c.Locals) != len(c.Agents) {
		c.Locals = make([]Report, len(c.Agents))
	}
	for i := range c.Locals {
		c.Locals[i] = Report{}
	}
	for i, a := range c.Agents {
		alive := true
		if ls, ok := a.(LivenessSource); ok {
			alive = ls.Alive()
		}
		if alive {
			if c.evicted[i] {
				c.evicted[i] = false
				c.Readmits++
				if c.TM != nil {
					c.TM.Readmits.Inc()
				}
				if c.OnRecover != nil {
					c.OnRecover("agent_readmit", i)
				}
			}
			c.missed[i] = 0
			locals = append(locals, a.EndInterval())
			present++
			members++
			continue
		}
		if c.evicted[i] {
			continue
		}
		c.missed[i]++
		if c.missed[i] > c.staleAfter() {
			c.evicted[i] = true
			c.Evictions++
			if c.TM != nil {
				c.TM.Evictions.Inc()
			}
			if c.OnFault != nil {
				c.OnFault("agent_evict", i)
			}
			continue
		}
		members++
	}
	return locals, present, members
}

// Tick closes one monitor interval: gather, aggregate, compare, maybe
// trigger. It returns the fresh network-wide FSD.
//
// Traffic-free intervals (the OFF gaps of an ON/OFF workload) are not
// treated as a traffic-pattern change: silence carries no distribution to
// adapt to, and comparing against it would re-trigger tuning at every
// round boundary. The previous distribution is kept until traffic
// reappears.
//
// Below quorum the partial aggregate is returned (flagged Degraded) but
// neither absorbed into the smoothed baseline nor compared for a
// trigger: a half-blind snapshot says more about which agents died than
// about the traffic, and letting it poison the EWMA would fire a bogus
// trigger the moment the quorum returns.
func (c *Controller) Tick() FSD {
	locals, present, members := c.gather()
	c.PresentAgents = present
	c.Degraded = len(c.Agents) > 0 && present < len(c.Agents)

	wasFrozen := c.Frozen
	c.Frozen = len(c.Agents) > 0 &&
		(members == 0 || float64(present)/float64(members) < c.quorumFrac())
	if c.Frozen != wasFrozen {
		if c.Frozen {
			if c.OnFault != nil {
				c.OnFault("quorum_lost", -1)
			}
		} else if c.OnRecover != nil {
			c.OnRecover("quorum_ok", -1)
		}
	}

	raw := Aggregate(locals...)
	raw.Degraded = c.Degraded
	c.Ticks++
	c.LastKL = 0
	c.Raw = raw
	if c.TM != nil {
		c.TM.Ticks.Inc()
		c.TM.PresentAgents.Set(float64(present))
		c.TM.Degraded.SetBool(c.Degraded)
		c.TM.FSDFlows.Observe(float64(raw.Flows))
		c.TM.FSDBytes.Observe(raw.TotalBytes)
	}
	if c.Frozen {
		c.FrozenTicks++
		if c.TM != nil {
			c.TM.FrozenTicks.Inc()
		}
		return raw
	}
	if raw.TotalBytes == 0 {
		c.Current = c.smoother.Update(raw) // no-op; keeps the average
		return c.Current
	}
	fsd := c.smoother.Update(raw)
	fsd.Degraded = c.Degraded
	c.Current = fsd
	if c.TM != nil {
		c.TM.ElephantShare.Set(fsd.ElephantFlowShare)
	}
	if c.hasPrev {
		c.LastKL = TriggerDivergence(fsd, c.prev)
		if c.TM != nil {
			c.TM.LastKL.Set(c.LastKL)
			c.TM.KL.Observe(c.LastKL)
		}
		if c.LastKL > c.Theta {
			c.Triggers++
			if c.TM != nil {
				c.TM.Triggers.Inc()
			}
			if c.OnTrigger != nil {
				c.OnTrigger(fsd)
			}
		}
	} else {
		// First traffic ever observed: the change from silence is a
		// pattern change by definition.
		c.Triggers++
		if c.TM != nil {
			c.TM.Triggers.Inc()
		}
		if c.OnTrigger != nil {
			c.OnTrigger(fsd)
		}
	}
	c.prev = fsd
	c.hasPrev = true
	return fsd
}
