package chaos

import (
	"fmt"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topology"
)

// countingSource is a scriptable inner ReportSource.
type countingSource struct {
	calls int
	rep   monitor.Report
}

func (c *countingSource) EndInterval() monitor.Report {
	c.calls++
	return c.rep
}

func elephantReport(bytes float64) monitor.Report {
	var r monitor.Report
	r.Hist[5] = bytes
	r.ElephantBytes = bytes
	r.ElephantFlowsW = 1
	r.Flows = 1
	return r
}

func TestFlakySourceCrashRestartLosesState(t *testing.T) {
	inner := &countingSource{rep: elephantReport(1e6)}
	f := NewFlakySource(inner)
	if !f.Alive() {
		t.Fatal("fresh source not alive")
	}
	if got := f.EndInterval(); got.Flows != 1 {
		t.Fatalf("passthrough report: %+v", got)
	}
	f.Crash()
	if f.Alive() {
		t.Fatal("alive after crash")
	}
	f.Crash() // idempotent
	if f.Crashes != 1 {
		t.Errorf("Crashes=%d, want 1", f.Crashes)
	}
	if got := f.EndInterval(); got.Flows != 0 {
		t.Errorf("dead source returned data: %+v", got)
	}
	callsBefore := inner.calls
	f.Restart()
	if !f.Alive() {
		t.Fatal("not alive after restart")
	}
	// Restart must drain-and-discard the inner interval (sketch loss).
	if inner.calls != callsBefore+1 {
		t.Errorf("restart did not drain inner state (calls=%d, want %d)", inner.calls, callsBefore+1)
	}
}

func TestFlakySourceStallServesStaleReports(t *testing.T) {
	inner := &countingSource{rep: elephantReport(1e6)}
	f := NewFlakySource(inner)
	first := f.EndInterval()

	inner.rep = elephantReport(9e6) // fresh data the stall must hide
	f.Stall(2)
	for i := 0; i < 2; i++ {
		got := f.EndInterval()
		if got != first {
			t.Fatalf("stalled interval %d returned fresh data", i)
		}
	}
	if f.StaleServed != 2 {
		t.Errorf("StaleServed=%d, want 2", f.StaleServed)
	}
	if got := f.EndInterval(); got.ElephantBytes != 9e6 {
		t.Errorf("post-stall report stale: %+v", got)
	}
}

func quickNet(t *testing.T) *sim.Network {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 2, NumLeaf: 1, HostsPerToR: 2,
		HostLinkBps: 10e9, FabricLinkBps: 10e9,
		PropDelay: eventsim.Microsecond,
	}
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInjectorValidation(t *testing.T) {
	n := quickNet(t)
	inj := NewInjector(n, nil, nil)

	if err := inj.Install(Scenario{Links: []LinkFault{{A: 0, B: 1, DownFor: 1}}}); err == nil {
		t.Error("nonexistent link accepted")
	}
	tor := n.Topo.ToRs()[0]
	host := n.Topo.Hosts()[0]
	if err := inj.Install(Scenario{Links: []LinkFault{{A: host, B: tor}}}); err == nil {
		t.Error("zero DownFor accepted")
	}
	if err := inj.Install(Scenario{Agents: []AgentFault{{Agent: 0, CrashAt: 1}}}); err == nil {
		t.Error("agent fault with no sources accepted")
	}
	if err := inj.Install(Scenario{Links: []LinkFault{{A: host, B: tor, At: 1, DownFor: 10}}}); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

// recordingSink captures injected events in order.
type recordingSink struct {
	events []string
}

func (s *recordingSink) Fault(fault, target string) {
	s.events = append(s.events, "F:"+fault+":"+target)
}
func (s *recordingSink) Recover(fault, target string) {
	s.events = append(s.events, "R:"+fault+":"+target)
}

func TestInjectorLinkFlapSchedule(t *testing.T) {
	n := quickNet(t)
	sink := &recordingSink{}
	inj := NewInjector(n, nil, sink)
	host, tor := n.Topo.Hosts()[0], n.Topo.ToRs()[0]
	err := inj.Install(Scenario{
		Seed: 7,
		Links: []LinkFault{{
			A: host, B: tor,
			At:      eventsim.Millisecond,
			DownFor: eventsim.Millisecond,
			Flaps:   3,
			Every:   3 * eventsim.Millisecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20 * eventsim.Millisecond)
	var downs, ups int
	for _, e := range sink.events {
		switch e[0] {
		case 'F':
			downs++
		case 'R':
			ups++
		}
	}
	if downs != 3 || ups != 3 {
		t.Fatalf("saw %d downs / %d ups, want 3/3 (events: %v)", downs, ups, sink.events)
	}
}

func TestInjectorScheduleDeterministic(t *testing.T) {
	run := func() []string {
		n := quickNet(t)
		sink := &recordingSink{}
		inj := NewInjector(n, nil, sink)
		host, tor := n.Topo.Hosts()[0], n.Topo.ToRs()[0]
		if err := inj.Install(Scenario{
			Seed: 42,
			Links: []LinkFault{{
				A: host, B: tor,
				At: eventsim.Millisecond, DownFor: eventsim.Millisecond,
				Flaps: 5, Every: 2 * eventsim.Millisecond,
			}},
		}); err != nil {
			t.Fatal(err)
		}
		n.Run(30 * eventsim.Millisecond)
		return sink.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDegradationWindowRestores(t *testing.T) {
	n := quickNet(t)
	inj := NewInjector(n, nil, nil)
	host, tor := n.Topo.Hosts()[0], n.Topo.ToRs()[0]
	err := inj.Install(Scenario{
		Degrades: []LinkDegrade{{
			A: host, B: tor,
			At: eventsim.Millisecond, Until: 2 * eventsim.Millisecond,
			RateFactor: 0.5, ExtraDelay: eventsim.Microsecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	port := n.Host(host).Port()
	n.Run(eventsim.Millisecond + 1)
	if !port.Degraded() {
		t.Error("port not degraded inside the window")
	}
	n.Run(2*eventsim.Millisecond + 1)
	if port.Degraded() {
		t.Error("port still degraded after the window")
	}
}

// fakeDispatch records the faults and phase hooks the injector arms.
type fakeDispatch struct {
	acks  []string
	hooks map[string][]func()
}

func (f *fakeDispatch) FaultAcks(device, drop int, delay eventsim.Time) {
	f.acks = append(f.acks, fmt.Sprintf("dev%d drop=%d delay=%d", device, drop, delay))
}

func (f *fakeDispatch) OnPhaseEnter(phase string, fn func()) {
	if f.hooks == nil {
		f.hooks = map[string][]func(){}
	}
	f.hooks[phase] = append(f.hooks[phase], fn)
}

func TestInjectorDispatchValidation(t *testing.T) {
	n := quickNet(t)
	inj := NewInjector(n, nil, nil)
	if err := inj.Install(Scenario{Dispatch: []DispatchFault{{DropAcks: 1}}}); err == nil {
		t.Error("dispatch fault without BindDispatch accepted")
	}
	inj.BindDispatch(&fakeDispatch{}, nil)
	if err := inj.Install(Scenario{Dispatch: []DispatchFault{{Device: 0}}}); err == nil {
		t.Error("no-op dispatch fault accepted")
	}
	if err := inj.Install(Scenario{Dispatch: []DispatchFault{{KillAtPhase: "settle"}}}); err == nil {
		t.Error("KillAtPhase without a kill hook accepted")
	}
}

func TestInjectorDispatchFaults(t *testing.T) {
	n := quickNet(t)
	sink := &recordingSink{}
	inj := NewInjector(n, nil, sink)
	fd := &fakeDispatch{}
	kills := 0
	inj.BindDispatch(fd, func() { kills++ })
	err := inj.Install(Scenario{
		Seed: 1,
		Dispatch: []DispatchFault{
			{Device: 1, DropAcks: 2}, // arms at install
			{Device: 0, DelayAck: eventsim.Millisecond, At: 5 * eventsim.Millisecond},
			{KillAtPhase: "settle"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.acks) != 1 || fd.acks[0] != "dev1 drop=2 delay=0" {
		t.Fatalf("install-time ACK fault wrong: %v", fd.acks)
	}
	n.Run(10 * eventsim.Millisecond)
	if len(fd.acks) != 2 || fd.acks[1] != "dev0 drop=0 delay=1000000" {
		t.Fatalf("scheduled ACK fault wrong: %v", fd.acks)
	}
	hooks := fd.hooks["settle"]
	if len(hooks) != 1 {
		t.Fatalf("settle hooks = %d, want 1", len(hooks))
	}
	// The kill hook fires once, even if the pipeline re-enters the phase.
	hooks[0]()
	hooks[0]()
	if kills != 1 {
		t.Errorf("kill hook fired %d times, want 1", kills)
	}
	want := []string{
		"F:dispatch_ack:device 1",
		"F:dispatch_ack:device 0",
		"F:controller_kill:phase settle",
	}
	if fmt.Sprint(sink.events) != fmt.Sprint(want) {
		t.Errorf("sink events %v, want %v", sink.events, want)
	}
}
