package chaos

import "repro/internal/monitor"

// FlakySource wraps a monitor.ReportSource with failure modes, and
// implements monitor.LivenessSource so the controller's staleness and
// quorum machinery engages.
//
// A crashed source reports !Alive(); the wrapped agent keeps observing
// packets (the switch tap is still installed — a dead *agent process*
// does not stop the data plane), but on Restart everything it
// accumulated is discarded, modelling sketch-state loss across a
// reboot. A stalled source stays alive but serves its last pre-stall
// report verbatim, modelling a wedged agent whose liveness checks still
// pass.
type FlakySource struct {
	inner monitor.ReportSource

	alive     bool
	stallLeft int
	last      monitor.Report
	hasLast   bool

	// Crashes, Restarts, and StaleServed count injected activity.
	Crashes, Restarts, StaleServed int
}

// NewFlakySource wraps inner, initially alive.
func NewFlakySource(inner monitor.ReportSource) *FlakySource {
	return &FlakySource{inner: inner, alive: true}
}

// Alive implements monitor.LivenessSource.
func (f *FlakySource) Alive() bool { return f.alive }

// Inner exposes the wrapped source.
func (f *FlakySource) Inner() monitor.ReportSource { return f.inner }

// Crash kills the source; it stops answering until Restart.
func (f *FlakySource) Crash() {
	if !f.alive {
		return
	}
	f.alive = false
	f.Crashes++
}

// Restart revives the source with empty state: the wrapped agent's
// accumulated interval (everything since its last report, including the
// whole outage) is read and discarded.
func (f *FlakySource) Restart() {
	if f.alive {
		return
	}
	f.inner.EndInterval() // sketch-state loss: drain and drop
	f.alive = true
	f.stallLeft = 0
	f.hasLast = false
	f.Restarts++
}

// Stall makes the next n EndInterval calls return the last report the
// source produced instead of fresh data.
func (f *FlakySource) Stall(n int) {
	if n > 0 {
		f.stallLeft = n
	}
}

// EndInterval implements monitor.ReportSource.
func (f *FlakySource) EndInterval() monitor.Report {
	if !f.alive {
		// The controller never asks a !Alive() source, but be safe for
		// callers that skip the liveness check.
		return monitor.Report{}
	}
	if f.stallLeft > 0 && f.hasLast {
		f.stallLeft--
		f.StaleServed++
		return f.last
	}
	f.stallLeft = 0
	r := f.inner.EndInterval()
	f.last = r
	f.hasLast = true
	return r
}
