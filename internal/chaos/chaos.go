// Package chaos is the fault-injection subsystem: deterministic,
// seed-driven scenarios that break the simulated fabric (link outages,
// flaps, degradation), the measurement agents (crash/restart with
// sketch-state loss, stale reports), and the control-plane transport
// (dropped/duplicated/truncated/delayed frames) so the Paraleon control
// loop's graceful-degradation paths can be exercised and regression-
// tested.
//
// All in-simulation faults are scheduled on the network's event engine
// at Install time from a single seeded RNG, so a fixed Scenario.Seed
// yields a byte-identical fault schedule — and, because the engine
// itself is deterministic, a byte-identical trace.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Sink observes fault and recovery events. trace.Recorder satisfies it;
// the interface lives here so trace does not need to import chaos (nor
// vice versa).
type Sink interface {
	// Fault records that fault was injected against target.
	Fault(fault, target string)
	// Recover records that target recovered from fault.
	Recover(fault, target string)
}

// nopSink lets the injector run without a recorder.
type nopSink struct{}

func (nopSink) Fault(string, string)   {}
func (nopSink) Recover(string, string) {}

// LinkFault takes one bidirectional link down, either once or as a flap
// pattern. While down, ports hold their queues (the fabric is lossless;
// there is no link-layer retransmit to recover drops) and ECMP routes
// new packets around the outage where an alternative hop exists.
type LinkFault struct {
	// A, B name the link's endpoints (either order).
	A, B topology.NodeID
	// At is when the first outage starts.
	At eventsim.Time
	// DownFor is the length of each outage.
	DownFor eventsim.Time
	// Flaps is the number of down/up cycles; 0 or 1 means a single
	// outage.
	Flaps int
	// Every is the period between successive outage starts; 0 means
	// 2×DownFor. Periods after the first are jittered ±10% from the
	// scenario seed so flaps do not phase-lock with the monitor
	// interval.
	Every eventsim.Time
}

// LinkDegrade throttles and/or delays one bidirectional link for a
// window — a brown-out rather than an outage.
type LinkDegrade struct {
	A, B topology.NodeID
	// At and Until bound the degradation window; Until 0 means the
	// degradation persists to the end of the run.
	At, Until eventsim.Time
	// RateFactor scales the link rate, clamped to (0,1]; 0 means 1 (no
	// rate cut).
	RateFactor float64
	// ExtraDelay is added to the link's propagation delay.
	ExtraDelay eventsim.Time
}

// AgentFault breaks one measurement agent. A crash loses the agent's
// sketch state: whatever it accumulated before and during the outage is
// discarded on restart, exactly as a rebooted switch agent would come
// back empty. A stall freezes the agent's report instead — it keeps
// answering, but with the last pre-stall report, modelling a wedged
// agent whose heartbeats still pass.
type AgentFault struct {
	// Agent indexes the injector's FlakySource slice.
	Agent int
	// CrashAt, if >0, is when the agent dies; RestartAt, if >CrashAt,
	// is when it comes back (0 means it stays dead).
	CrashAt, RestartAt eventsim.Time
	// StallAt, if >0, is when the agent starts serving stale reports;
	// StallFor is for how many reports.
	StallAt  eventsim.Time
	StallFor int
}

// DispatchFault perturbs the parameter-rollout pipeline: ACK frames
// from one device can be dropped or delayed, and the controller can be
// killed the first time the pipeline enters a named phase — the
// crash-mid-rollout scenario the write-ahead intent log exists for.
type DispatchFault struct {
	// Device indexes the rollout fabric's device whose ACKs are faulted.
	Device int
	// DropAcks swallows that many consecutive ACK frames from Device.
	DropAcks int
	// DelayAck adds this much to each of Device's ACK deliveries.
	DelayAck eventsim.Time
	// At is when the ACK fault arms; 0 arms it at install time.
	At eventsim.Time
	// KillAtPhase, when non-empty, fires the injector's controller-kill
	// hook the first time the pipeline enters the named phase ("canary",
	// "settle", "promote"). ACK fields are ignored on a pure kill fault.
	KillAtPhase string
}

// Scenario is a complete declarative fault plan.
type Scenario struct {
	// Seed drives every random choice the scenario makes (flap jitter,
	// transport fault coin flips). Same seed, same faults.
	Seed int64

	Links    []LinkFault
	Degrades []LinkDegrade
	Agents   []AgentFault
	Dispatch []DispatchFault

	// Conn configures control-plane transport faults; it is not
	// scheduled by the injector (the transport runs on real TCP, outside
	// the event engine) — harnesses pass it to ConnFaults.Wrap on dialed
	// connections. Seed 0 inherits Scenario.Seed.
	Conn ConnFaults
}

// DispatchTarget is the slice of the rollout pipeline the injector
// faults. dispatch.Pipeline satisfies it; the interface lives here so
// chaos does not import dispatch (nor vice versa).
type DispatchTarget interface {
	// FaultAcks arms ACK faults on one device.
	FaultAcks(device, drop int, delay eventsim.Time)
	// OnPhaseEnter registers a hook for the pipeline entering a phase.
	OnPhaseEnter(phase string, fn func())
}

// Injector schedules a Scenario's faults onto a network's event engine.
type Injector struct {
	net     *sim.Network
	sources []*FlakySource
	sink    Sink

	dispatch DispatchTarget
	kill     func()
}

// NewInjector builds an injector over n. sources are the crashable
// agents agent faults index (may be nil when the scenario has none);
// sink observes injections (nil for none).
func NewInjector(n *sim.Network, sources []*FlakySource, sink Sink) *Injector {
	if sink == nil {
		sink = nopSink{}
	}
	return &Injector{net: n, sources: sources, sink: sink}
}

// BindDispatch attaches the rollout pipeline the scenario's dispatch
// faults act on, plus the hook a KillAtPhase fault fires (the harness
// tears the controller down there). Must be called before Install when
// the scenario carries dispatch faults.
func (inj *Injector) BindDispatch(target DispatchTarget, kill func()) {
	inj.dispatch = target
	inj.kill = kill
}

// Install validates sc and schedules all of its in-simulation faults.
// Every random draw happens here, from sc.Seed, so the resulting event
// schedule — not just its distribution — is deterministic.
func (inj *Injector) Install(sc Scenario) error {
	rng := rand.New(rand.NewSource(sc.Seed))

	// Validate links up front with no-op applications: SetLinkUp(true) /
	// DegradeLink(1, 0) leave a healthy link unchanged but fail on a
	// nonexistent one, turning a typo'd scenario into an install error
	// instead of a mid-run surprise.
	for _, lf := range sc.Links {
		if lf.DownFor <= 0 {
			return fmt.Errorf("chaos: link %d-%d: DownFor must be positive", lf.A, lf.B)
		}
		if err := inj.net.SetLinkUp(lf.A, lf.B, true); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	for _, ld := range sc.Degrades {
		if err := inj.net.DegradeLink(ld.A, ld.B, 1, 0); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	for _, af := range sc.Agents {
		if af.Agent < 0 || af.Agent >= len(inj.sources) {
			return fmt.Errorf("chaos: agent %d out of range (have %d sources)", af.Agent, len(inj.sources))
		}
	}
	for _, df := range sc.Dispatch {
		if inj.dispatch == nil {
			return fmt.Errorf("chaos: dispatch fault without BindDispatch")
		}
		if df.KillAtPhase == "" && df.DropAcks <= 0 && df.DelayAck <= 0 {
			return fmt.Errorf("chaos: dispatch fault on device %d does nothing", df.Device)
		}
		if df.KillAtPhase != "" && inj.kill == nil {
			return fmt.Errorf("chaos: KillAtPhase %q without a kill hook", df.KillAtPhase)
		}
	}

	for _, lf := range sc.Links {
		inj.installLink(lf, rng)
	}
	for _, ld := range sc.Degrades {
		inj.installDegrade(ld)
	}
	for _, af := range sc.Agents {
		inj.installAgent(af)
	}
	for _, df := range sc.Dispatch {
		inj.installDispatch(df)
	}
	return nil
}

func (inj *Injector) installLink(lf LinkFault, rng *rand.Rand) {
	a, b := lf.A, lf.B
	target := fmt.Sprintf("link %d-%d", a, b)
	flaps := lf.Flaps
	if flaps < 1 {
		flaps = 1
	}
	every := lf.Every
	if every <= 0 {
		every = 2 * lf.DownFor
	}
	at := lf.At
	for k := 0; k < flaps; k++ {
		down, up := at, at+lf.DownFor
		inj.net.Eng.Schedule(down, func() {
			inj.net.SetLinkUp(a, b, false)
			inj.sink.Fault("link_down", target)
		})
		inj.net.Eng.Schedule(up, func() {
			inj.net.SetLinkUp(a, b, true)
			inj.sink.Recover("link_down", target)
		})
		// ±10% jitter on the period keeps repeated flaps from
		// phase-locking with the monitor interval; drawn now so the
		// schedule is fixed at install time.
		jitter := eventsim.Time(float64(every) * 0.1 * (2*rng.Float64() - 1))
		step := every + jitter
		if step <= lf.DownFor {
			step = lf.DownFor + 1
		}
		at += step
	}
}

func (inj *Injector) installDegrade(ld LinkDegrade) {
	a, b := ld.A, ld.B
	target := fmt.Sprintf("link %d-%d", a, b)
	factor := ld.RateFactor
	if factor == 0 {
		factor = 1
	}
	inj.net.Eng.Schedule(ld.At, func() {
		inj.net.DegradeLink(a, b, factor, ld.ExtraDelay)
		inj.sink.Fault("link_degrade", target)
	})
	if ld.Until > ld.At {
		inj.net.Eng.Schedule(ld.Until, func() {
			inj.net.DegradeLink(a, b, 1, 0)
			inj.sink.Recover("link_degrade", target)
		})
	}
}

func (inj *Injector) installAgent(af AgentFault) {
	src := inj.sources[af.Agent]
	target := fmt.Sprintf("agent %d", af.Agent)
	if af.CrashAt > 0 {
		inj.net.Eng.Schedule(af.CrashAt, func() {
			src.Crash()
			inj.sink.Fault("agent_crash", target)
		})
		if af.RestartAt > af.CrashAt {
			inj.net.Eng.Schedule(af.RestartAt, func() {
				src.Restart()
				inj.sink.Recover("agent_crash", target)
			})
		}
	}
	if af.StallAt > 0 && af.StallFor > 0 {
		n := af.StallFor
		inj.net.Eng.Schedule(af.StallAt, func() {
			src.Stall(n)
			inj.sink.Fault("agent_stall", target)
		})
	}
}

func (inj *Injector) installDispatch(df DispatchFault) {
	if df.KillAtPhase != "" {
		phase := df.KillAtPhase
		fired := false
		inj.dispatch.OnPhaseEnter(phase, func() {
			if fired {
				return
			}
			fired = true
			inj.sink.Fault("controller_kill", "phase "+phase)
			inj.kill()
		})
		return
	}
	target := fmt.Sprintf("device %d", df.Device)
	device, drop, delay := df.Device, df.DropAcks, df.DelayAck
	arm := func() {
		inj.dispatch.FaultAcks(device, drop, delay)
		inj.sink.Fault("dispatch_ack", target)
	}
	if df.At > 0 {
		inj.net.Eng.Schedule(df.At, arm)
	} else {
		arm()
	}
}
