package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestFaultyConnDropArmsReadDeadline(t *testing.T) {
	c, s := tcpPair(t)
	fc := ConnFaults{Seed: 1, DropProb: 1, DropTimeout: 20 * time.Millisecond}.Wrap(c)

	n, err := fc.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("dropped write reported n=%d err=%v, want success", n, err)
	}
	if fc.Drops != 1 {
		t.Errorf("Drops=%d, want 1", fc.Drops)
	}
	// The peer must receive nothing…
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 8)
	if n, _ := s.Read(buf); n != 0 {
		t.Errorf("peer received %d dropped bytes", n)
	}
	// …and our pending read must time out instead of hanging.
	if _, err := fc.Read(buf); err == nil {
		t.Error("read after drop did not fail")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Errorf("read after drop failed with %v, want timeout", err)
	}
}

func TestFaultyConnDuplicatesFrames(t *testing.T) {
	c, s := tcpPair(t)
	fc := ConnFaults{Seed: 1, DupProb: 1}.Wrap(c)

	msg := []byte("frame")
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if fc.Dups != 1 {
		t.Errorf("Dups=%d, want 1", fc.Dups)
	}
	s.SetReadDeadline(time.Now().Add(time.Second))
	got := make([]byte, 2*len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte{}, msg...), msg...)) {
		t.Errorf("peer got %q, want doubled frame", got)
	}
}

func TestFaultyConnTruncatesAndCloses(t *testing.T) {
	c, s := tcpPair(t)
	fc := ConnFaults{Seed: 1, TruncProb: 1}.Wrap(c)

	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("err=%v, want ErrInjectedTruncation", err)
	}
	if n != len(msg)/2 {
		t.Errorf("wrote %d bytes, want %d", n, len(msg)/2)
	}
	if fc.Truncs != 1 {
		t.Errorf("Truncs=%d, want 1", fc.Truncs)
	}
	// The peer sees the prefix, then EOF (connection was closed).
	s.SetReadDeadline(time.Now().Add(time.Second))
	got, _ := io.ReadAll(s)
	if !bytes.Equal(got, msg[:len(msg)/2]) {
		t.Errorf("peer got %q, want %q", got, msg[:len(msg)/2])
	}
}

func TestFaultyConnCleanPassThrough(t *testing.T) {
	c, s := tcpPair(t)
	fc := ConnFaults{Seed: 1}.Wrap(c)
	msg := []byte("clean")
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	s.SetReadDeadline(time.Now().Add(time.Second))
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("peer got %q, want %q", got, msg)
	}
	if fc.Drops+fc.Dups+fc.Truncs != 0 {
		t.Error("clean config injected faults")
	}
}
