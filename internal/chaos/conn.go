package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedTruncation is returned by a FaultyConn write that was cut
// short on purpose.
var ErrInjectedTruncation = errors.New("chaos: injected frame truncation")

// DefaultDropTimeout bounds how long a request whose frame was dropped
// can hang: the drop arms a read deadline so the caller's pending
// response read fails instead of blocking forever (the ctrlrpc protocol
// is synchronous request/response with no other timeout).
const DefaultDropTimeout = 50 * time.Millisecond

// ConnFaults configures control-plane transport faults. Probabilities
// are per Write call; the ctrlrpc client flushes exactly one frame per
// Write, so these are effectively per-frame.
type ConnFaults struct {
	// Seed drives the per-connection RNG; 0 falls back to the scenario
	// seed (or 1 standalone). The transport runs on real TCP threads, so
	// unlike in-sim faults the seed fixes the fault pattern per
	// connection but not its wall-clock interleaving.
	Seed int64

	// DropProb silently discards the frame. The write reports success
	// and a read deadline of DropTimeout is armed, so the caller
	// observes a response timeout followed by reconnect.
	DropProb float64
	// DupProb writes the frame twice, desynchronizing the
	// request/response stream.
	DupProb float64
	// TruncProb writes only a prefix of the frame and then closes the
	// connection, leaving the peer a partial frame.
	TruncProb float64

	// Delay (plus uniform [0,Jitter)) is added before every write.
	Delay  time.Duration
	Jitter time.Duration

	// DropTimeout overrides DefaultDropTimeout when >0.
	DropTimeout time.Duration
}

// Enabled reports whether any fault is configured.
func (f ConnFaults) Enabled() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.TruncProb > 0 || f.Delay > 0 || f.Jitter > 0
}

// Wrap returns conn with f's faults applied to its writes.
func (f ConnFaults) Wrap(conn net.Conn) *FaultyConn {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyConn{Conn: conn, faults: f, rng: rand.New(rand.NewSource(seed))}
}

// FaultyConn is a net.Conn whose writes may be dropped, duplicated,
// truncated, or delayed. Reads pass through untouched (faulting one
// direction is enough to exercise every recovery path, and keeps cause
// and effect attributable).
type FaultyConn struct {
	net.Conn

	mu     sync.Mutex
	faults ConnFaults
	rng    *rand.Rand

	// Drops, Dups, and Truncs count injected faults.
	Drops, Dups, Truncs int
}

func (c *FaultyConn) dropTimeout() time.Duration {
	if c.faults.DropTimeout > 0 {
		return c.faults.DropTimeout
	}
	return DefaultDropTimeout
}

func (c *FaultyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	roll := c.rng.Float64()
	var sleep time.Duration
	if c.faults.Delay > 0 || c.faults.Jitter > 0 {
		sleep = c.faults.Delay
		if c.faults.Jitter > 0 {
			sleep += time.Duration(c.rng.Int63n(int64(c.faults.Jitter)))
		}
	}
	c.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}

	switch p := c.faults; {
	case roll < p.DropProb:
		c.mu.Lock()
		c.Drops++
		c.mu.Unlock()
		// Pretend the frame went out, but make sure the pending
		// response read cannot hang forever.
		c.Conn.SetReadDeadline(time.Now().Add(c.dropTimeout()))
		return len(b), nil
	case roll < p.DropProb+p.TruncProb && len(b) > 1:
		c.mu.Lock()
		c.Truncs++
		c.mu.Unlock()
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, ErrInjectedTruncation
	case roll < p.DropProb+p.TruncProb+p.DupProb:
		c.mu.Lock()
		c.Dups++
		c.mu.Unlock()
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return c.Conn.Write(b)
	}
	return c.Conn.Write(b)
}
