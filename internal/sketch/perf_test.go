package sketch

import (
	"testing"
)

// TestInsertZeroAlloc pins the per-packet cost of the data-plane hot path:
// Insert must not allocate, including the Ostracism eviction branch that
// flushes residents to the Light Part.
func TestInsertZeroAlloc(t *testing.T) {
	s := New(DefaultConfig(), 42)
	// Pre-load enough distinct flows that inserts hit every branch:
	// resident credit, challenger vote−, and evictions.
	for f := uint64(0); f < 4096; f++ {
		s.Insert(f, int64(f%1500+64))
	}
	var f uint64
	allocs := testing.AllocsPerRun(5000, func() {
		s.Insert(f, 1000)
		f++
	})
	if allocs != 0 {
		t.Fatalf("Insert allocates %.1f per call, want 0", allocs)
	}
	if s.Evictions == 0 {
		t.Fatal("workload never exercised the eviction branch")
	}
}

// TestHeavyFlowsReusesScratch pins the scratch-buffer contract: after the
// first call, per-interval reads allocate nothing.
func TestHeavyFlowsReusesScratch(t *testing.T) {
	s := New(DefaultConfig(), 42)
	for f := uint64(0); f < 2048; f++ {
		s.Insert(f, int64(f+1)*100)
	}
	s.HeavyFlows() // first call sizes the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		s.HeavyFlows()
	})
	if allocs != 0 {
		t.Fatalf("HeavyFlows allocates %.1f per call after warmup, want 0", allocs)
	}
}

// TestLightHashesDistinctRows guards the double-hashing scheme: for
// power-of-two widths the stride h2 is odd, so the per-row columns of one
// flow are all distinct — the property the count-min error bound needs.
func TestLightHashesDistinctRows(t *testing.T) {
	s := New(DefaultConfig(), 7)
	for f := uint64(0); f < 1000; f++ {
		_, h2 := s.lightHashes(f)
		if h2%2 == 0 {
			t.Fatalf("flow %d: stride %d is even", f, h2)
		}
		seen := map[int]bool{}
		for r := 0; r < s.cfg.LightRows; r++ {
			col := s.lightIndex(r, f) - r*s.cfg.LightWidth
			if col < 0 || col >= s.cfg.LightWidth {
				t.Fatalf("flow %d row %d: column %d out of range", f, r, col)
			}
			if seen[col] {
				t.Fatalf("flow %d: rows collide on column %d", f, col)
			}
			seen[col] = true
		}
	}
}

// BenchmarkSketchInsert measures the per-packet Insert cost over a mixed
// flow population (residents, challengers, evictions).
func BenchmarkSketchInsert(b *testing.B) {
	s := New(DefaultConfig(), 42)
	for f := uint64(0); f < 4096; f++ {
		s.Insert(f, int64(f%1500+64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i)&8191, 1000)
	}
}
