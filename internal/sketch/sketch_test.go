package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactForFewFlows(t *testing.T) {
	s := New(DefaultConfig(), 1)
	s.Insert(1, 1000)
	s.Insert(2, 500)
	s.Insert(1, 2000)
	if got := s.Estimate(1); got != 3000 {
		t.Errorf("Estimate(1) = %d, want 3000", got)
	}
	if got := s.Estimate(2); got != 500 {
		t.Errorf("Estimate(2) = %d, want 500", got)
	}
	if got := s.Estimate(999); got != 0 {
		t.Errorf("Estimate(unknown) = %d, want 0", got)
	}
	if s.TotalBytes != 3500 || s.Inserts != 3 {
		t.Errorf("totals = %d/%d, want 3500/3", s.TotalBytes, s.Inserts)
	}
}

func TestZeroAndNegativeInsertIgnored(t *testing.T) {
	s := New(DefaultConfig(), 1)
	s.Insert(1, 0)
	s.Insert(1, -5)
	if s.TotalBytes != 0 || s.Inserts != 0 {
		t.Error("zero/negative insert was counted")
	}
}

func TestOstracismEvictsMouseForElephant(t *testing.T) {
	// One bucket forces every flow to collide.
	s := New(Config{HeavyBuckets: 1, LightRows: 2, LightWidth: 64, Lambda: 2}, 1)
	s.Insert(1, 100) // resident mouse
	// Flow 2 hammers the bucket: vote− grows past λ·vote+ and evicts.
	for i := 0; i < 10; i++ {
		s.Insert(2, 100)
	}
	if s.Evictions == 0 {
		t.Fatal("no eviction despite challenger dominance")
	}
	heavy := s.HeavyFlows()
	if len(heavy) != 1 || heavy[0].Flow != 2 {
		t.Fatalf("heavy part holds %v, want flow 2", heavy)
	}
	// The evicted mouse's bytes survive in the light part.
	if got := s.Estimate(1); got < 100 {
		t.Errorf("evicted flow estimate %d, want >= 100", got)
	}
	// The elephant's pre-eviction bytes were vote−, flushed to light and
	// recovered via the flag.
	if got := s.Estimate(2); got < 1000 {
		t.Errorf("elephant estimate %d, want >= 1000 (flag-recovered)", got)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cfg := Config{HeavyBuckets: 8, LightRows: 3, LightWidth: 128, Lambda: 8}
	f := func(seed int64) bool {
		s := New(cfg, uint64(seed))
		rng := rand.New(rand.NewSource(seed))
		truth := map[uint64]int64{}
		for i := 0; i < 500; i++ {
			flow := uint64(rng.Intn(60))
			b := int64(rng.Intn(1400) + 1)
			truth[flow] += b
			s.Insert(flow, b)
		}
		for flow, actual := range truth {
			if s.Estimate(flow) < actual {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestElephantsSurviveMiceStorm(t *testing.T) {
	s := New(DefaultConfig(), 42)
	rng := rand.New(rand.NewSource(7))
	// 4 elephants send steadily while 2000 mice ping once each.
	elephants := []uint64{1 << 40, 2 << 40, 3 << 40, 4 << 40}
	for round := 0; round < 200; round++ {
		for _, e := range elephants {
			s.Insert(e, 10000)
		}
		for i := 0; i < 10; i++ {
			s.Insert(uint64(rng.Int63()), 200)
		}
	}
	heavy := s.HeavyFlows()
	top := map[uint64]bool{}
	for i, fs := range heavy {
		if i >= 8 {
			break
		}
		top[fs.Flow] = true
	}
	for _, e := range elephants {
		if !top[e] {
			t.Errorf("elephant %d missing from heavy part top-8", e)
		}
		if got := s.Estimate(e); got < 2_000_000*9/10 {
			t.Errorf("elephant %d estimate %d, want ~2MB", e, got)
		}
	}
}

func TestHeavyFlowsSorted(t *testing.T) {
	s := New(DefaultConfig(), 1)
	s.Insert(10, 500)
	s.Insert(20, 1500)
	s.Insert(30, 1000)
	hf := s.HeavyFlows()
	if len(hf) != 3 {
		t.Fatalf("heavy flows = %d, want 3", len(hf))
	}
	for i := 1; i < len(hf); i++ {
		if hf[i].Bytes > hf[i-1].Bytes {
			t.Errorf("not sorted: %v", hf)
		}
	}
}

func TestMassConservation(t *testing.T) {
	// Heavy vote+ plus light mass accounts for every inserted byte.
	f := func(seed int64) bool {
		s := New(Config{HeavyBuckets: 4, LightRows: 2, LightWidth: 32, Lambda: 4}, uint64(seed))
		rng := rand.New(rand.NewSource(seed))
		var total int64
		for i := 0; i < 300; i++ {
			b := int64(rng.Intn(999) + 1)
			s.Insert(uint64(rng.Intn(20)), b)
			total += b
		}
		return s.HeavyBytes()+s.LightBytes() == total && s.TotalBytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	s := New(DefaultConfig(), 1)
	s.Insert(1, 1000)
	s.Insert(2, 2000)
	s.Reset()
	if s.TotalBytes != 0 || s.Inserts != 0 || s.Evictions != 0 {
		t.Error("counters not reset")
	}
	if s.Estimate(1) != 0 || s.Estimate(2) != 0 {
		t.Error("estimates survive reset")
	}
	if len(s.HeavyFlows()) != 0 {
		t.Error("heavy part survives reset")
	}
	// Usable after reset.
	s.Insert(3, 777)
	if s.Estimate(3) != 777 {
		t.Error("sketch unusable after reset")
	}
}

func TestDifferentSeedsDifferentHashes(t *testing.T) {
	a := New(Config{HeavyBuckets: 64, LightRows: 2, LightWidth: 64, Lambda: 8}, 1)
	b := New(Config{HeavyBuckets: 64, LightRows: 2, LightWidth: 64, Lambda: 8}, 2)
	same := 0
	for f := uint64(0); f < 100; f++ {
		if a.heavyIndex(f) == b.heavyIndex(f) {
			same++
		}
	}
	if same > 30 {
		t.Errorf("%d/100 identical bucket choices across seeds; hashing not seed-sensitive", same)
	}
}

func TestBadConfigPanics(t *testing.T) {
	bad := []Config{
		{HeavyBuckets: 0, LightRows: 1, LightWidth: 1, Lambda: 1},
		{HeavyBuckets: 1, LightRows: 0, LightWidth: 1, Lambda: 1},
		{HeavyBuckets: 1, LightRows: 1, LightWidth: 0, Lambda: 1},
		{HeavyBuckets: 1, LightRows: 1, LightWidth: 1, Lambda: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg, 1)
		}()
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(DefaultConfig(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i%1000), 1048)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(DefaultConfig(), 1)
	for i := 0; i < 10000; i++ {
		s.Insert(uint64(i%1000), 1048)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate(uint64(i % 1000))
	}
}

func heavyFlowsTotal(s *Sketch) int64 {
	var total int64
	for _, fs := range s.HeavyFlows() {
		total += fs.Bytes
	}
	return total
}

func TestFlaggedResidueDeterministic(t *testing.T) {
	// One heavy bucket forces an Ostracism eviction: A:10 seats, B's 30
	// light bytes vote against it, B's next 60 evict A and seat B with
	// the flag set — B's 30 bytes remain in the Light Part.
	s := New(Config{HeavyBuckets: 1, LightRows: 2, LightWidth: 256, Lambda: 8}, 7)
	s.Insert(1, 10)
	s.Insert(2, 30)
	s.Insert(2, 60)
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if got := s.FlaggedResidue(); got < 30 {
		t.Fatalf("FlaggedResidue = %d, want ≥ 30 (B's light residue)", got)
	}
	// A naive reader summing HeavyFlows plus the whole light lump counts
	// B's residue twice — the bug the residue accessor exists to fix.
	naive := heavyFlowsTotal(s) + s.LightBytes()
	if naive <= s.TotalBytes {
		t.Fatalf("expected naive sum %d to overshoot TotalBytes %d", naive, s.TotalBytes)
	}
	if got := naive - s.FlaggedResidue(); got != s.TotalBytes {
		t.Fatalf("corrected sum %d != TotalBytes %d", got, s.TotalBytes)
	}
}

func TestFlaggedResidueConservation(t *testing.T) {
	// Reader-level identity under arbitrary collisions and evictions:
	// HeavyFlows folds flagged residue in, so subtracting FlaggedResidue
	// from the light lump restores exact byte conservation.
	f := func(seed int64) bool {
		s := New(Config{HeavyBuckets: 4, LightRows: 2, LightWidth: 32, Lambda: 4}, uint64(seed))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			s.Insert(uint64(rng.Intn(20)), int64(rng.Intn(999)+1))
		}
		return heavyFlowsTotal(s)+s.LightBytes()-s.FlaggedResidue() == s.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
