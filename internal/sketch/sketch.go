// Package sketch implements Elastic Sketch (Yang et al., SIGCOMM 2018),
// the per-flow measurement structure Paraleon deploys in every ToR data
// plane. A Heavy Part of buckets tracks elephant candidates with the
// "Ostracism" voting scheme (vote+ for the resident flow, vote− for
// challengers; a challenger evicts the resident when vote−/vote+ crosses
// λ). A Light Part — a count-min sketch — absorbs mice and evicted
// residue.
//
// Unlike the original packet-count formulation, this implementation counts
// bytes, which is what flow size distribution needs.
package sketch

import (
	"slices"

	"repro/internal/splitmix"
)

// Config sizes a sketch instance.
type Config struct {
	// HeavyBuckets is the number of Heavy Part buckets (top-k capacity).
	HeavyBuckets int
	// LightRows and LightWidth shape the count-min Light Part.
	LightRows  int
	LightWidth int
	// Lambda is the Ostracism eviction threshold: evict the resident when
	// vote− ≥ λ·vote+ (the paper uses 8).
	Lambda float64
}

// DefaultConfig is sized for a ToR observing a few thousand concurrent
// flows: 512 heavy buckets, a 4×2048 light part.
func DefaultConfig() Config {
	return Config{HeavyBuckets: 512, LightRows: 4, LightWidth: 2048, Lambda: 8}
}

type bucket struct {
	flow    uint64
	votePos int64 // bytes credited to the resident flow
	voteNeg int64 // bytes from challengers since the resident arrived
	flag    bool  // resident may have earlier bytes in the Light Part
	used    bool
}

// FlowSize pairs a flow with its estimated transferred bytes.
type FlowSize struct {
	Flow  uint64
	Bytes int64
}

// Sketch is one Elastic Sketch instance. It is not safe for concurrent
// use; in the simulation each switch owns one and the engine is
// single-threaded.
type Sketch struct {
	cfg   Config
	heavy []bucket
	light []int64 // LightRows × LightWidth
	seeds []uint64

	// scratch backs HeavyFlows so the per-interval agent read reuses one
	// buffer instead of allocating each call.
	scratch []FlowSize

	// TotalBytes counts every inserted byte (ground total for shares).
	TotalBytes int64
	// Inserts counts Insert calls (≈ packets observed).
	Inserts int64
	// Evictions counts Ostracism replacements.
	Evictions int64
}

// New builds a sketch; seed differentiates hash functions across switches.
func New(cfg Config, seed uint64) *Sketch {
	if cfg.HeavyBuckets <= 0 || cfg.LightRows <= 0 || cfg.LightWidth <= 0 {
		panic("sketch: non-positive dimension")
	}
	if cfg.Lambda <= 0 {
		panic("sketch: non-positive lambda")
	}
	s := &Sketch{
		cfg:   cfg,
		heavy: make([]bucket, cfg.HeavyBuckets),
		light: make([]int64, cfg.LightRows*cfg.LightWidth),
		seeds: make([]uint64, 2),
	}
	for i := range s.seeds {
		seed = splitmix.Next(seed)
		s.seeds[i] = seed
	}
	return s
}

func (s *Sketch) heavyIndex(flow uint64) int {
	return int(splitmix.Mix(flow^s.seeds[0]) % uint64(len(s.heavy)))
}

// lightHashes derives every Light Part row's column from one base avalanche
// via double hashing: row r probes column (h1 + r·h2) mod width. One
// avalanche per Insert instead of LightRows of them; h2 is forced odd so
// the probe stride never degenerates for power-of-two widths.
func (s *Sketch) lightHashes(flow uint64) (h1, h2 uint64) {
	base := splitmix.Mix(flow ^ s.seeds[1])
	return base, (base >> 32) | 1
}

func (s *Sketch) lightIndex(row int, flow uint64) int {
	h1, h2 := s.lightHashes(flow)
	return row*s.cfg.LightWidth + int((h1+uint64(row)*h2)%uint64(s.cfg.LightWidth))
}

// Insert credits bytes to flow.
func (s *Sketch) Insert(flow uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	s.TotalBytes += bytes
	s.Inserts++
	b := &s.heavy[s.heavyIndex(flow)]
	switch {
	case !b.used:
		*b = bucket{flow: flow, votePos: bytes, used: true}
	case b.flow == flow:
		b.votePos += bytes
	default:
		b.voteNeg += bytes
		if float64(b.voteNeg) >= s.cfg.Lambda*float64(b.votePos) {
			// Ostracize: flush the resident to the Light Part and seat
			// the challenger. Its earlier bytes (counted as vote−) live
			// in the Light Part, so flag it.
			s.lightAdd(b.flow, b.votePos)
			s.Evictions++
			*b = bucket{flow: flow, votePos: bytes, flag: true, used: true}
		} else {
			s.lightAdd(flow, bytes)
		}
	}
}

func (s *Sketch) lightAdd(flow uint64, bytes int64) {
	h1, h2 := s.lightHashes(flow)
	width := uint64(s.cfg.LightWidth)
	for r := 0; r < s.cfg.LightRows; r++ {
		s.light[r*s.cfg.LightWidth+int((h1+uint64(r)*h2)%width)] += bytes
	}
}

func (s *Sketch) lightEstimate(flow uint64) int64 {
	h1, h2 := s.lightHashes(flow)
	width := uint64(s.cfg.LightWidth)
	var min int64 = -1
	for r := 0; r < s.cfg.LightRows; r++ {
		v := s.light[r*s.cfg.LightWidth+int((h1+uint64(r)*h2)%width)]
		if min < 0 || v < min {
			min = v
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Estimate returns the byte estimate for flow. For heavy residents the
// estimate is exact up to Light Part residue; for everything else it is
// the count-min estimate (never an underestimate).
func (s *Sketch) Estimate(flow uint64) int64 {
	b := &s.heavy[s.heavyIndex(flow)]
	if b.used && b.flow == flow {
		if b.flag {
			return b.votePos + s.lightEstimate(flow)
		}
		return b.votePos
	}
	return s.lightEstimate(flow)
}

// HeavyFlows lists the Heavy Part residents with their full estimates,
// largest first. This is what the switch control plane reads every monitor
// interval. The returned slice is backed by a scratch buffer the sketch
// reuses: it stays valid only until the next HeavyFlows call, so callers
// that need the data across reads must copy it.
func (s *Sketch) HeavyFlows() []FlowSize {
	out := s.scratch[:0]
	for i := range s.heavy {
		b := &s.heavy[i]
		if !b.used {
			continue
		}
		size := b.votePos
		if b.flag {
			size += s.lightEstimate(b.flow)
		}
		out = append(out, FlowSize{Flow: b.flow, Bytes: size})
	}
	slices.SortFunc(out, func(a, b FlowSize) int {
		switch {
		case a.Bytes != b.Bytes:
			if a.Bytes > b.Bytes {
				return -1
			}
			return 1
		case a.Flow < b.Flow:
			return -1
		case a.Flow > b.Flow:
			return 1
		default:
			return 0
		}
	})
	s.scratch = out
	return out
}

// HeavyBytes sums the Heavy Part residents' vote+ bytes.
func (s *Sketch) HeavyBytes() int64 {
	var total int64
	for i := range s.heavy {
		if s.heavy[i].used {
			total += s.heavy[i].votePos
		}
	}
	return total
}

// FlaggedResidue sums the Light Part estimates of flagged Heavy Part
// residents — mass HeavyFlows already folds into those flows' sizes.
// Readers that also lump LightBytes into a total must subtract this
// residue, or the flagged bytes count twice. Count-min estimates never
// under-count, so the residue can exceed the flows' true Light Part mass
// under collisions; callers should clamp the corrected lump at zero.
func (s *Sketch) FlaggedResidue() int64 {
	var total int64
	for i := range s.heavy {
		b := &s.heavy[i]
		if b.used && b.flag {
			total += s.lightEstimate(b.flow)
		}
	}
	return total
}

// LightBytes is the total mass absorbed by the Light Part, computed as
// one row's sum (every row receives every insert).
func (s *Sketch) LightBytes() int64 {
	var total int64
	for i := 0; i < s.cfg.LightWidth; i++ {
		total += s.light[i]
	}
	return total
}

// Reset clears all state (the per-interval read-and-reset the agent does).
func (s *Sketch) Reset() {
	for i := range s.heavy {
		s.heavy[i] = bucket{}
	}
	for i := range s.light {
		s.light[i] = 0
	}
	s.TotalBytes = 0
	s.Inserts = 0
	s.Evictions = 0
}
