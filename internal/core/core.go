// Package core wires Paraleon's closed control loop together: agents
// measure, the controller aggregates and triggers, a search strategy
// from internal/tuner proposes DCQCN vectors, and the loop dispatches
// them to every RNIC and switch (directly, or through the staged
// dispatch pipeline).
//
// The utility function (Equation 1), the simulated-annealing search of
// Algorithm 1, and its configuration now live in internal/tuner; the
// aliases and constructors below keep this package's historical surface
// — core.Weights, core.SAConfig, core.Tuner, core.NewTuner — intact for
// every existing caller, byte-for-byte compatible in behaviour.
package core

import (
	"repro/internal/dcqcn"
	"repro/internal/monitor"
	"repro/internal/tuner"
)

// Weights are the operator-assigned utility weights ω_TP, ω_RTT, ω_PFC of
// Equation (1); they must be nonnegative and sum to 1.
type Weights = tuner.Weights

// DefaultWeights are the Table III settings (0.2, 0.5, 0.3).
func DefaultWeights() Weights { return tuner.DefaultWeights() }

// ThroughputWeights favor throughput-sensitive workloads such as LLM
// training (§III-C example: 0.5, 0.2, 0.3).
func ThroughputWeights() Weights { return tuner.ThroughputWeights() }

// Utility evaluates Equation (1) on one interval's runtime metrics.
func Utility(s monitor.RuntimeSample, w Weights) float64 { return tuner.Utility(s, w) }

// SAConfig parameterizes the annealing search.
type SAConfig = tuner.SAConfig

// DefaultSAConfig is Table III with both optimizations on.
func DefaultSAConfig() SAConfig { return tuner.DefaultSAConfig() }

// ShortSAConfig compresses the schedule to ~20 iterations (4 levels × 5)
// for reproduction runs of a few hundred milliseconds.
func ShortSAConfig() SAConfig { return tuner.ShortSAConfig() }

// NaiveSAConfig is the §IV-B4 ablation baseline.
func NaiveSAConfig() SAConfig { return tuner.NaiveSAConfig() }

// Tuner is the simulated-annealing search state machine of Algorithm 1
// (the "sa" strategy, tuner.SA). The System holds the strategy-agnostic
// tuner.Tuner interface instead; this alias serves callers that
// construct the annealer directly.
type Tuner = tuner.SA

// NewTuner builds an annealing tuner that searches from base. seed
// fixes mutation randomness.
func NewTuner(cfg SAConfig, weights Weights, base dcqcn.Params, seed int64) (*Tuner, error) {
	return tuner.NewSA(cfg, weights, base, seed)
}
