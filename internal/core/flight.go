package core

import (
	"fmt"
	"math"

	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/netdev"
	"repro/internal/telemetry/series"
	"repro/internal/tuner"
)

// flightSampler feeds a flight recorder from the control loop: once per
// monitor interval it appends the loop's health signals and a bounded
// set of per-ToR fabric signals into the recorder's series, and trips
// anomaly snapshots on the transitions worth a postmortem (rollback and
// dispatch aborts trip from their own code paths; this sampler owns the
// delta/transition triggers).
//
// Everything here is read-only with respect to the simulation — no
// engine events, no randomness, no take-style counter resets — so an
// attached recorder leaves event traces and goldens untouched. Every
// handle (series, switches) is resolved at construction; sample() is
// allocation-free.
type flightSampler struct {
	rec *series.Recorder

	// Control-loop series.
	otp, ortt, opfc   *series.Series
	utility, utilEWMA *series.Series
	kl                *series.Series
	fsdFlows, fsdMB   *series.Series
	temperature       *series.Series
	bestUtility       *series.Series
	regret            *series.Series
	epoch, phase      *series.Series

	// Per-ToR fabric series (bounded to maxFlightToRs switches).
	switches  []*netdev.Switch
	queue     []*series.Series
	markRate  []*series.Series
	pauseFrac []*series.Series
	prevMark  []int64
	prevTx    []int64
	prevPause []eventsim.Time

	interval eventsim.Time

	// Transition / delta state for anomaly triggers.
	prevGuardRejects int
	wasFrozen        bool
	wasDegraded      bool
}

// maxFlightToRs bounds how many scope ToRs get per-switch series; the
// first ones in scope order are recorded (deterministic), the rest are
// covered by the loop-level aggregates.
const maxFlightToRs = 4

// guardRejectBurst is the per-interval guard-reject delta that trips a
// "guard_reject_burst" anomaly: a strategy hammering the admission
// guard is misbehaving even though each reject alone is routine.
const guardRejectBurst = 3

// newFlightSampler resolves series handles and switch pointers for the
// deployment's scope. Called from Attach when SystemConfig.Flight is
// set.
func newFlightSampler(rec *series.Recorder, s *System) *flightSampler {
	set := rec.Set
	f := &flightSampler{
		rec:         rec,
		otp:         set.Series("otp", "frac"),
		ortt:        set.Series("ortt", "frac"),
		opfc:        set.Series("opfc", "frac"),
		utility:     set.Series("utility", "score"),
		utilEWMA:    set.Series("util_ewma", "score"),
		kl:          set.Series("monitor_kl", "nats"),
		fsdFlows:    set.Series("fsd_flows", "flows"),
		fsdMB:       set.Series("fsd_megabytes", "MB"),
		temperature: set.Series("tuner_temperature", ""),
		bestUtility: set.Series("tuner_best_utility", "score"),
		regret:      set.Series("tuner_regret", "score"),
		epoch:       set.Series("dispatch_epoch", ""),
		phase:       set.Series("dispatch_phase", ""),
		interval:    s.interval,
	}
	n := len(s.torScope)
	if n > maxFlightToRs {
		n = maxFlightToRs
	}
	for _, tor := range s.torScope[:n] {
		sw := s.Net.Switch(tor)
		if sw == nil {
			continue
		}
		f.switches = append(f.switches, sw)
		f.queue = append(f.queue, set.Series(fmt.Sprintf("queue_bytes_tor%d", tor), "bytes"))
		f.markRate = append(f.markRate, set.Series(fmt.Sprintf("ecn_mark_rate_tor%d", tor), "frac"))
		f.pauseFrac = append(f.pauseFrac, set.Series(fmt.Sprintf("pfc_pause_frac_tor%d", tor), "frac"))
	}
	f.prevMark = make([]int64, len(f.switches))
	f.prevTx = make([]int64, len(f.switches))
	f.prevPause = make([]eventsim.Time, len(f.switches))
	return f
}

// sample records one monitor interval. It runs on every tick — frozen
// and idle intervals included, which is exactly when a postmortem needs
// the trajectory — and must stay allocation-free.
func (f *flightSampler) sample(s *System, now eventsim.Time, sample monitor.RuntimeSample, util float64) {
	t := int64(now)
	f.otp.Append(t, sample.OTP)
	f.ortt.Append(t, sample.ORTT)
	f.opfc.Append(t, sample.OPFC)
	f.utility.Append(t, util)
	f.utilEWMA.Append(t, s.utilEWMA)
	f.kl.Append(t, s.Controller.LastKL)
	f.fsdFlows.Append(t, float64(s.Controller.Current.Flows))
	f.fsdMB.Append(t, s.Controller.Current.TotalBytes/1e6)
	if td, ok := s.Tuner.(tuner.Temperatured); ok {
		f.temperature.Append(t, td.Temperature())
	}
	// BestUtility is -Inf until a session measures something, and JSON
	// cannot carry non-finite values; skip samples until it is real.
	if best := s.Tuner.BestUtility(); !math.IsInf(best, 0) && !math.IsNaN(best) {
		f.bestUtility.Append(t, best)
	}
	f.regret.Append(t, s.TM.Regret.Value())
	if s.Dispatch != nil {
		f.epoch.Append(t, float64(s.Dispatch.Epoch()))
		f.phase.Append(t, float64(s.Dispatch.Phase()))
	}

	for i, sw := range f.switches {
		f.queue[i].Append(t, float64(sw.BufferUsed()))
		var marked, tx int64
		for p := 0; p < sw.NumPorts(); p++ {
			st := &sw.Port(p).Stats
			marked += st.ECNMarked
			tx += st.TxPackets
		}
		rate := 0.0
		if dTx := tx - f.prevTx[i]; dTx > 0 {
			rate = float64(marked-f.prevMark[i]) / float64(dTx)
		}
		f.markRate[i].Append(t, rate)
		f.prevMark[i], f.prevTx[i] = marked, tx

		paused := sw.TotalPausedTime()
		frac := 0.0
		if denom := f.interval * eventsim.Time(sw.NumPorts()); denom > 0 {
			frac = float64(paused-f.prevPause[i]) / float64(denom)
		}
		f.pauseFrac[i].Append(t, frac)
		f.prevPause[i] = paused
	}

	f.checkTransitions(s, t)
}

// checkTransitions trips the sampler-owned anomaly triggers: quorum
// freezes, FSD degradation, and guard-reject bursts. Trips are rare and
// may allocate (detail strings).
func (f *flightSampler) checkTransitions(s *System, t int64) {
	if d := s.GuardRejects - f.prevGuardRejects; d >= guardRejectBurst {
		f.rec.Trip(t, "guard_reject_burst", fmt.Sprintf("%d rejects in one interval", d))
	}
	f.prevGuardRejects = s.GuardRejects

	frozen := s.Controller.Frozen
	if frozen && !f.wasFrozen {
		f.rec.Trip(t, "quorum_freeze", fmt.Sprintf("present=%d", s.Controller.PresentAgents))
	}
	f.wasFrozen = frozen

	degraded := s.Controller.Degraded
	if degraded && !f.wasDegraded {
		f.rec.Trip(t, "fsd_degraded", fmt.Sprintf("present=%d", s.Controller.PresentAgents))
	}
	f.wasDegraded = degraded
}
