package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func TestWeights(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Errorf("default weights invalid: %v", err)
	}
	if err := ThroughputWeights().Validate(); err != nil {
		t.Errorf("throughput weights invalid: %v", err)
	}
	bad := []Weights{
		{TP: 0.5, RTT: 0.5, PFC: 0.5},
		{TP: -0.2, RTT: 0.9, PFC: 0.3},
		{},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad weights %d validated", i)
		}
	}
}

func TestUtility(t *testing.T) {
	s := monitor.RuntimeSample{OTP: 0.8, ORTT: 0.5, OPFC: 1}
	w := Weights{TP: 0.2, RTT: 0.5, PFC: 0.3}
	want := 0.2*0.8 + 0.5*0.5 + 0.3*1
	if got := Utility(s, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %g, want %g", got, want)
	}
}

func TestQuickUtilityBounded(t *testing.T) {
	w := DefaultWeights()
	f := func(a, b, c uint8) bool {
		s := monitor.RuntimeSample{
			OTP:  float64(a) / 255,
			ORTT: float64(b) / 255,
			OPFC: float64(c) / 255,
		}
		u := Utility(s, w)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSAConfigValidate(t *testing.T) {
	if err := DefaultSAConfig().Validate(); err != nil {
		t.Errorf("default SA config invalid: %v", err)
	}
	if err := NaiveSAConfig().Validate(); err != nil {
		t.Errorf("naive SA config invalid: %v", err)
	}
	bad := DefaultSAConfig()
	bad.CoolingRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("cooling rate 1.5 validated")
	}
	bad = DefaultSAConfig()
	bad.FinalTemp = 200
	if err := bad.Validate(); err == nil {
		t.Error("final > initial temperature validated")
	}
}

func TestSessionIterations(t *testing.T) {
	// 90 → 10 at 0.85: 90, 76.5, 65, … — 14 levels × 20 iterations.
	got := DefaultSAConfig().SessionIterations()
	if got < 200 || got > 320 {
		t.Errorf("default session = %d iterations, want ≈270", got)
	}
	// The relaxed schedule must be much shorter than the naive one.
	if naive := NaiveSAConfig().SessionIterations(); naive <= got {
		t.Errorf("naive session %d not longer than relaxed %d", naive, got)
	}
}

func elephantFSD() monitor.FSD {
	var r monitor.Report
	r.Hist[12] = 1000
	r.ElephantBytes = 900
	r.MiceBytes = 100
	r.ElephantFlowsW = 9
	r.MiceFlowsW = 1
	r.Flows = 10
	return monitor.Aggregate(r)
}

func miceFSD() monitor.FSD {
	var r monitor.Report
	r.Hist[0] = 1000
	r.ElephantBytes = 100
	r.MiceBytes = 900
	r.ElephantFlowsW = 1
	r.MiceFlowsW = 29
	r.Flows = 30
	return monitor.Aggregate(r)
}

func quickSA() SAConfig {
	return SAConfig{
		TotalIterNum: 3,
		CoolingRate:  0.5,
		InitialTemp:  30,
		FinalTemp:    10,
		Eta:          0.8,
		Guided:       true,
	}
}

func TestTunerIdleUntilTriggered(t *testing.T) {
	tu, err := NewTuner(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Active() {
		t.Error("new tuner active")
	}
	if _, ok := tu.Step(monitor.RuntimeSample{}, elephantFSD()); ok {
		t.Error("idle tuner produced params")
	}
}

func TestTunerSessionLifecycle(t *testing.T) {
	cfg := quickSA()
	tu, err := NewTuner(cfg, DefaultWeights(), dcqcn.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tu.Trigger(elephantFSD())
	if !tu.Active() {
		t.Fatal("tuner not active after trigger")
	}
	sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
	steps := 0
	for tu.Active() {
		p, ok := tu.Step(sample, elephantFSD())
		if !ok {
			t.Fatal("active tuner refused to step")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("dispatched invalid params at step %d: %v", steps, err)
		}
		steps++
		if steps > 1000 {
			t.Fatal("session never terminated")
		}
	}
	// Session length: first seeding step + one per iteration until the
	// temperature floor.
	want := cfg.SessionIterations()
	if steps < want || steps > want+2 {
		t.Errorf("session took %d steps, want ≈%d", steps, want)
	}
	if tu.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", tu.Rounds)
	}
}

func TestTunerBestUtilityMonotone(t *testing.T) {
	tu, _ := NewTuner(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 2)
	tu.Trigger(miceFSD())
	// Feed varying utilities; the Trace (best-so-far) must be
	// nondecreasing.
	utils := []float64{0.3, 0.8, 0.2, 0.9, 0.1, 0.5, 0.85}
	i := 0
	for tu.Active() {
		u := utils[i%len(utils)]
		i++
		tu.Step(monitor.RuntimeSample{ORTT: u / DefaultWeights().RTT * 0}, miceFSD())
		_ = u
		// Directly feed via OTP-only sample for controllable utility.
	}
	tu2, _ := NewTuner(quickSA(), Weights{TP: 1}, dcqcn.DefaultParams(), 2)
	tu2.Trigger(miceFSD())
	i = 0
	for tu2.Active() {
		tu2.Step(monitor.RuntimeSample{OTP: utils[i%len(utils)]}, miceFSD())
		i++
	}
	for j := 1; j < len(tu2.Trace); j++ {
		if tu2.Trace[j] < tu2.Trace[j-1] {
			t.Fatalf("best-so-far trace decreased at %d: %v", j, tu2.Trace)
		}
	}
	if tu2.BestUtility() != 90 {
		t.Errorf("best utility %g, want 90 (0.9 on the 0-100 scale)", tu2.BestUtility())
	}
}

func TestTunerBestParamsMatchBestUtility(t *testing.T) {
	// The params returned at session end must be the ones that were
	// live when the best utility was measured.
	tu, _ := NewTuner(quickSA(), Weights{TP: 1}, dcqcn.DefaultParams(), 3)
	tu.Trigger(elephantFSD())
	var dispatched []dcqcn.Params
	var utilsFed []float64
	u := 0.1
	var last dcqcn.Params
	for tu.Active() {
		p, _ := tu.Step(monitor.RuntimeSample{OTP: u}, elephantFSD())
		dispatched = append(dispatched, p)
		utilsFed = append(utilsFed, u)
		last = p
		u += 0.07
		if u > 0.95 {
			u = 0.11
		}
	}
	_ = dispatched
	_ = utilsFed
	// The last returned params are the session's best.
	if last != tu.Best() {
		t.Error("final dispatch is not the best setting")
	}
}

// The mutation-operator tests (guided bias, η exploration floor, naive
// ablation, validity under composition) moved to internal/tuner with the
// operator itself; see internal/tuner/sa_test.go.

func TestTunerRejectsBadInputs(t *testing.T) {
	if _, err := NewTuner(SAConfig{}, DefaultWeights(), dcqcn.DefaultParams(), 1); err == nil {
		t.Error("zero SA config accepted")
	}
	if _, err := NewTuner(quickSA(), Weights{}, dcqcn.DefaultParams(), 1); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := NewTuner(quickSA(), DefaultWeights(), dcqcn.Params{}, 1); err == nil {
		t.Error("zero params accepted")
	}
}

// --- System (closed loop on a live network) ---

func quickSystem() SystemConfig {
	cfg := DefaultSystemConfig()
	cfg.SA = quickSA()
	return cfg
}

func TestSystemClosedLoop(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Attach(n, quickSystem())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hosts := n.Topo.Hosts()
	// Long elephants keep traffic alive through the whole session.
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 64<<20)
	}
	n.Run(15 * eventsim.Millisecond)
	if s.Controller.Ticks < 10 {
		t.Errorf("only %d controller ticks in 15 ms", s.Controller.Ticks)
	}
	if s.Controller.Triggers == 0 {
		t.Error("traffic onset did not trigger tuning (KL from empty FSD)")
	}
	if s.Dispatches == 0 {
		t.Error("no parameter dispatches during an active session")
	}
	if len(s.UtilityTrace) == 0 {
		t.Error("utility trace empty")
	}
	s.Stop()
	ticksAtStop := s.Controller.Ticks
	n.Run(20 * eventsim.Millisecond)
	if s.Controller.Ticks != ticksAtStop {
		t.Error("controller kept ticking after Stop")
	}
}

func TestSystemSessionCompletes(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSystem()
	s, err := Attach(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 256<<20)
	}
	// Session needs ≈7 intervals (quickSA) plus trigger latency.
	n.Run(30 * eventsim.Millisecond)
	if s.Tuner.Stats().Sessions == 0 {
		t.Error("tuning session never completed")
	}
	if s.Tuner.Active() {
		t.Error("tuner still active after enough intervals")
	}
	best := s.Tuner.Best()
	if err := best.Validate(); err != nil {
		t.Errorf("settled params invalid: %v", err)
	}
	// The settled setting must be live on the network.
	if *n.RNICParams() != s.Tuner.Best() {
		t.Error("network params differ from the tuner's best")
	}
}

func TestPretrain(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 256<<20)
	}
	p, err := Pretrain(n, quickSystem(), 30*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("pretrained params invalid: %v", err)
	}
}

func TestSystemTunerSelection(t *testing.T) {
	for _, name := range []string{"", "sa", "bandit", "multiecn"} {
		n, err := sim.New(sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := quickSystem()
		cfg.Tuner = name
		s, err := Attach(n, cfg)
		if err != nil {
			t.Fatalf("Attach(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "sa"
		}
		if got := s.Tuner.Name(); got != want {
			t.Errorf("cfg.Tuner=%q built strategy %q", name, got)
		}
	}
	// The network's sim.Config carries the selection when the system
	// config leaves it open.
	nc := sim.DefaultConfig()
	nc.Tuner = "bandit"
	n, err := sim.New(nc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Attach(n, quickSystem())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tuner.Name(); got != "bandit" {
		t.Errorf("sim.Config.Tuner=bandit built strategy %q", got)
	}
	if _, err := Attach(n, func() SystemConfig { c := quickSystem(); c.Tuner = "nope"; return c }()); err == nil {
		t.Error("unknown strategy name accepted")
	}
}

// rogueTuner proposes a misordered vector (Kmin >= Kmax) every step; the
// System's guard must refuse to push it onto the fabric.
type rogueTuner struct {
	tuner.Tuner
	active bool
}

func (r *rogueTuner) Trigger(monitor.FSD) { r.active = true }
func (r *rogueTuner) Active() bool        { return r.active }
func (r *rogueTuner) Step(monitor.RuntimeSample, monitor.FSD) (dcqcn.Params, bool) {
	p := dcqcn.DefaultParams()
	p.KminBytes, p.KmaxBytes = p.KmaxBytes, p.KminBytes
	return p, true
}

func TestSystemGuardRejectsRogueProposals(t *testing.T) {
	base, _ := tuner.New("sa", tuner.Config{
		Weights: DefaultWeights(), Base: dcqcn.DefaultParams(), SA: quickSA(),
	}, 1)
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Attach(n, quickSystem())
	if err != nil {
		t.Fatal(err)
	}
	s.Tuner = &rogueTuner{Tuner: base}
	before := *n.RNICParams()
	s.Start()
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[1], hosts[0], 64<<20)
	s.TriggerNow()
	n.Run(10 * eventsim.Millisecond)
	if s.GuardRejects == 0 {
		t.Fatal("guard admitted misordered Kmin >= Kmax proposals")
	}
	if s.Dispatches != 0 {
		t.Errorf("%d rogue proposals dispatched", s.Dispatches)
	}
	if *n.RNICParams() != before {
		t.Error("rogue proposal reached the fabric")
	}
}

func TestSystemCustomSources(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSystem()
	cfg.Sources = []monitor.ReportSource{} // no-FSD ablation
	s, err := Attach(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Agents) != 0 {
		t.Error("sketch agents created despite custom sources")
	}
	s.Start()
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[1], hosts[0], 64<<20)
	n.Run(5 * eventsim.Millisecond)
	if s.Controller.Triggers != 0 {
		t.Error("empty sources produced a KL trigger")
	}
	// Manual trigger still drives the loop.
	s.TriggerNow()
	n.Run(10 * eventsim.Millisecond)
	if s.Dispatches == 0 {
		t.Error("no dispatches after manual trigger")
	}
}
