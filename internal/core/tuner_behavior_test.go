package core

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

// TestWarmupDiscardsFirstSample verifies the ramp-bias guard: the first
// post-trigger Step must re-dispatch the incumbent and ignore its sample,
// so a lucky idle-ish measurement cannot become the unbeatable "best".
func TestWarmupDiscardsFirstSample(t *testing.T) {
	tu, err := NewTuner(quickSA(), Weights{TP: 1}, dcqcn.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	tu.Trigger(elephantFSD())
	// A deceptively perfect first sample (idle network).
	p, ok := tu.Step(monitor.RuntimeSample{OTP: 1}, elephantFSD())
	if !ok {
		t.Fatal("warmup step refused")
	}
	if p != dcqcn.DefaultParams() {
		t.Error("warmup step did not re-dispatch the incumbent")
	}
	// Seed with a realistic sample; the best must reflect it, not the
	// warmup's perfect reading.
	tu.Step(monitor.RuntimeSample{OTP: 0.4}, elephantFSD())
	if tu.BestUtility() != 40 {
		t.Errorf("seed utility %g, want 40 (warmup sample leaked)", tu.BestUtility())
	}
}

// TestElitistRecentering verifies the drift guard: with Elitist on, the
// chain returns to the best-known setting at each temperature level.
func TestElitistRecentering(t *testing.T) {
	run := func(elitist bool) float64 {
		cfg := SAConfig{
			TotalIterNum: 4, CoolingRate: 0.5,
			InitialTemp: 80, FinalTemp: 10,
			Eta: 0.8, Guided: true, Elitist: elitist,
		}
		tu, err := NewTuner(cfg, Weights{TP: 1}, dcqcn.DefaultParams(), 3)
		if err != nil {
			t.Fatal(err)
		}
		tu.Trigger(elephantFSD())
		// Utility that punishes drift: best at the incumbent's hai_rate,
		// decaying as the setting moves away.
		base := dcqcn.DefaultParams()
		score := func(p dcqcn.Params) float64 {
			d := p.HAIRateBps / base.HAIRateBps
			if d < 1 {
				d = 1 / d
			}
			u := 1.0 / d
			return u
		}
		var lastDispatched dcqcn.Params = base
		for tu.Active() {
			p, ok := tu.Step(monitor.RuntimeSample{OTP: score(lastDispatched)}, elephantFSD())
			if !ok {
				break
			}
			lastDispatched = p
		}
		final := tu.Best()
		return score(final)
	}
	withElitist := run(true)
	withoutElitist := run(false)
	// Elitist must settle at least as close to the optimum; typically
	// much closer because guided mutation drifts hai_rate upward.
	if withElitist < withoutElitist-1e-9 {
		t.Errorf("elitist settled worse: %g vs %g", withElitist, withoutElitist)
	}
	if withElitist < 0.5 {
		t.Errorf("elitist final score %g, want near the incumbent's 1.0", withElitist)
	}
}

// TestSessionIgnoresRetriggersViaSystemGuard documents the one-session
// rule at tuner level: Trigger during an active session resets it, which
// is exactly why System gates it on !Active().
func TestTriggerResetsSession(t *testing.T) {
	tu, _ := NewTuner(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 1)
	tu.Trigger(elephantFSD())
	sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
	for i := 0; i < 3; i++ {
		tu.Step(sample, elephantFSD())
	}
	stepsBefore := tu.Steps
	tu.Trigger(miceFSD())
	if len(tu.Trace) != 0 {
		t.Error("re-trigger did not reset the trace")
	}
	if !tu.Active() {
		t.Error("tuner inactive after re-trigger")
	}
	if tu.Steps != stepsBefore {
		t.Error("Steps counter reset unexpectedly")
	}
}

// TestIdleSkipKeepsPendingCandidate documents the OFF-gap rule end to
// end at the System level: see TestSystemClosedLoop for the live loop;
// here the invariant is that a Step-less interval leaves the tuner state
// untouched.
func TestStepCountAdvancesOnlyOnStep(t *testing.T) {
	tu, _ := NewTuner(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 1)
	tu.Trigger(elephantFSD())
	before := tu.Steps
	// (No Step call — the System simply does not call Step on idle
	// intervals.)
	if tu.Steps != before {
		t.Error("steps advanced without Step")
	}
	tu.Step(monitor.RuntimeSample{}, elephantFSD())
	if tu.Steps != before+1 {
		t.Error("Step did not advance the counter")
	}
}
