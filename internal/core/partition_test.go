package core

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// partitionNet builds a 2-rack fabric and returns one-cluster-per-rack
// groupings.
func partitionNet(t *testing.T) (*sim.Network, [][]topology.NodeID) {
	t.Helper()
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tors := n.Topo.ToRs()
	clusters := [][]topology.NodeID{{tors[0]}, {tors[1]}}
	return n, clusters
}

func TestAttachPartitionedValidation(t *testing.T) {
	n, _ := partitionNet(t)
	if _, err := AttachPartitioned(n, quickSystem(), nil); err == nil {
		t.Error("empty cluster list accepted")
	}
	if _, err := AttachPartitioned(n, quickSystem(), [][]topology.NodeID{{}}); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestPartitionedHeterogeneousTuning(t *testing.T) {
	n, clusters := partitionNet(t)
	systems, err := AttachPartitioned(n, quickSystem(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 {
		t.Fatalf("%d systems, want 2", len(systems))
	}
	for _, s := range systems {
		s.Start()
	}
	hosts := n.Topo.Hosts()
	// Rack 0 (hosts 0–3): sustained elephants. Rack 1 (hosts 4–7): mice.
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 256<<20)
	}
	if _, err := workload.InstallPoisson(n, workload.PoissonConfig{
		Hosts: hosts[4:], CDF: workload.SolarRPC(), Load: 0.4,
	}); err != nil {
		t.Fatal(err)
	}
	n.Run(40 * eventsim.Millisecond)

	// Both clusters must have tuned independently.
	for i, s := range systems {
		if s.Dispatches == 0 {
			t.Errorf("cluster %d never dispatched", i)
		}
	}
	// Heterogeneous outcome: the two racks' ToRs hold different settings.
	p0 := *n.SwitchParams(clusters[0][0])
	p1 := *n.SwitchParams(clusters[1][0])
	if p0 == p1 {
		t.Error("clusters converged to identical parameters despite opposite workloads")
	}
	// Hosts carry their own cluster's setting via overrides.
	h0 := n.HostParams(hosts[0])
	h4 := n.HostParams(hosts[4])
	if h0 == nil || h4 == nil {
		t.Fatal("cluster dispatch did not install host overrides")
	}
	if *h0 == *h4 {
		t.Error("hosts of different clusters share identical overrides")
	}
	// Validity everywhere.
	for _, sn := range n.Topo.SwitchIDs() {
		if err := n.SwitchParams(sn).Validate(); err != nil {
			t.Errorf("switch %d params invalid: %v", sn, err)
		}
	}
}

func TestPartitionedScopesDoNotOverlap(t *testing.T) {
	n, clusters := partitionNet(t)
	systems, err := AttachPartitioned(n, quickSystem(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range systems {
		s.Start()
	}
	hosts := n.Topo.Hosts()
	// Traffic only in rack 0: cluster 1's collector must see nothing.
	n.StartFlow(hosts[1], hosts[0], 32<<20)
	n.Run(10 * eventsim.Millisecond)
	if systems[0].LastSample.OTP == 0 {
		t.Error("cluster 0 blind to its own traffic")
	}
	if systems[1].LastSample.OTP != 0 {
		t.Errorf("cluster 1 saw foreign traffic: OTP=%g", systems[1].LastSample.OTP)
	}
	if systems[1].Controller.Current.TotalBytes != 0 {
		t.Error("cluster 1's FSD counted rack-0 flows")
	}
}

func TestClusterApplyLeavesOthersAlone(t *testing.T) {
	n, clusters := partitionNet(t)
	before := *n.SwitchParams(clusters[1][0])
	p := *n.RNICParams()
	p.KminBytes = 123 << 10
	p.KmaxBytes = 456 << 10
	n.ApplyParamsToCluster(clusters[0], p)
	if got := n.SwitchParams(clusters[0][0]); got.KminBytes != 123<<10 {
		t.Error("target cluster switch not updated")
	}
	if got := *n.SwitchParams(clusters[1][0]); got != before {
		t.Error("foreign cluster switch modified")
	}
	hosts := n.Topo.Hosts()
	if n.HostParams(hosts[0]) == nil {
		t.Error("cluster host override missing")
	}
	if n.HostParams(hosts[7]) != nil {
		t.Error("foreign host override installed")
	}
}
