package core

import (
	"testing"

	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestSystemDispatchPipeline runs the closed loop with the staged
// rollout pipeline enabled: exploration dispatches go fabric-wide under
// fresh epochs, the session-settling dispatch walks a canary plan, and
// at least one plan commits with the whole fabric on one epoch.
func TestSystemDispatchPipeline(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSystem()
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Dispatch = dispatch.Config{Enabled: true, Canary: 1, SettleIntervals: 2}
	s, err := Attach(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dispatch == nil {
		t.Fatal("pipeline not attached")
	}
	s.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 256<<20)
	}
	n.Run(40 * eventsim.Millisecond)
	s.Stop()

	if s.Dispatches == 0 {
		t.Error("no dispatches went through the pipeline")
	}
	if s.Dispatch.Epoch() == 0 {
		t.Error("no epochs granted")
	}
	if s.Dispatch.Plans == 0 {
		t.Error("no canary plan started despite a settling session")
	}
	if s.Dispatch.Commits == 0 {
		t.Errorf("no plan committed (plans=%d aborts=%d phase=%v)",
			s.Dispatch.Plans, s.Dispatch.Aborts, s.Dispatch.Phase())
	}
	if s.Dispatch.Phase() == dispatch.PhaseIdle && !s.Dispatch.Fabric().Converged() {
		t.Errorf("idle pipeline with diverged fabric: epochs %v", s.Dispatch.Fabric().Epochs())
	}
	if committed, ok := s.Dispatch.Committed(); ok && s.Dispatch.Phase() == dispatch.PhaseIdle {
		if *n.RNICParams() != committed {
			t.Error("network params differ from the committed vector")
		}
	}
}

// TestSystemDispatchDisabledIsLegacy: the zero Dispatch config must
// leave the pipeline off entirely.
func TestSystemDispatchDisabledIsLegacy(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Attach(n, quickSystem())
	if err != nil {
		t.Fatal(err)
	}
	if s.Dispatch != nil {
		t.Fatal("pipeline attached despite zero Dispatch config")
	}
}
