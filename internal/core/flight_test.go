package core

import (
	"bytes"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
)

// TestFlightSampleZeroAlloc pins the steady-state contract of the whole
// per-tick sampling path — loop series, per-ToR fabric reads, delta
// triggers — not just Series.Append: once warm, sample() performs zero
// heap allocations.
func TestFlightSampleZeroAlloc(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSystem()
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Flight = series.NewRecorder(series.Meta{Experiment: "unit"})
	s, err := Attach(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.flight == nil {
		t.Fatal("Flight config did not attach a sampler")
	}
	s.Start()
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[1], hosts[0], 8<<20)
	n.Run(5 * eventsim.Millisecond)

	sample := s.LastSample
	util := Utility(sample, DefaultWeights())
	var tick eventsim.Time = n.Eng.Now()
	allocs := testing.AllocsPerRun(2000, func() {
		tick += s.interval
		s.flight.sample(s, tick, sample, util)
	})
	if allocs != 0 {
		t.Fatalf("flight sample allocates %g/op, want 0", allocs)
	}
}

// TestFlightRecorderCapturesLoop smoke-checks the wiring: running the
// closed loop with a recorder attached populates the loop and per-ToR
// series and produces a loadable artifact.
func TestFlightRecorderCapturesLoop(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSystem()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	rec := series.NewRecorder(series.Meta{Experiment: "unit", Seed: 3})
	cfg.Flight = rec
	s, err := Attach(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 64<<20)
	}
	n.Run(15 * eventsim.Millisecond)
	s.Stop()

	var buf bytes.Buffer
	if err := rec.WriteArtifact(&buf, int64(n.Eng.Now()), reg); err != nil {
		t.Fatal(err)
	}
	a, err := series.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"otp", "utility", "util_ewma", "monitor_kl", "queue_bytes_tor1", "ecn_mark_rate_tor1", "pfc_pause_frac_tor1"} {
		d := a.FindSeries(name)
		if d == nil {
			names := make([]string, 0, len(a.Series))
			for i := range a.Series {
				names = append(names, a.Series[i].Name)
			}
			t.Fatalf("series %q missing; have %v", name, names)
		}
		if len(d.V) == 0 {
			t.Errorf("series %q captured no samples", name)
		}
	}
	if u := a.FindSeries("utility"); int64(s.Controller.Ticks) != u.Offered {
		t.Errorf("utility offered %d samples over %d controller ticks", u.Offered, s.Controller.Ticks)
	}
	// Dispatches land in the event window (the loop dispatched at least
	// once in 15 ms of quickSA on fresh traffic).
	found := false
	for _, e := range a.Events {
		if e.Kind == "dispatch" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no dispatch events recorded (events=%d, dispatches=%d)", len(a.Events), s.Dispatches)
	}
}
