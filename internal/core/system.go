package core

import (
	"fmt"

	"repro/internal/dcqcn"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
	"repro/internal/topology"
	"repro/internal/tuner"
)

// SystemConfig wires a full Paraleon deployment onto a simulated network.
type SystemConfig struct {
	// Interval is the monitor interval λ_MI (Table III: 1 ms).
	Interval eventsim.Time
	// Theta is the KL trigger threshold (0.01).
	Theta float64
	// Weights parameterize the utility function.
	Weights Weights
	// Tuner selects the search strategy by registry name ("sa",
	// "multiecn", "bandit"; see internal/tuner). Empty falls back to the
	// network's sim.Config.Tuner, then to "sa" — the default, whose
	// behaviour is byte-identical to the pre-pluggable loop.
	Tuner string
	// SA parameterizes the "sa" search strategy.
	SA SAConfig
	// Bandit and MultiECN parameterize the respective strategies; zero
	// values mean their defaults. MultiECN.Agents defaults to the
	// deployment's scope size (one agent per ToR).
	Bandit   tuner.BanditConfig
	MultiECN tuner.MultiECNConfig
	// Agent selects the measurement design (Paraleon vs naive Elastic).
	Agent monitor.AgentConfig
	// ProbeEvery is the RTT probing period; 0 means Interval/4.
	ProbeEvery eventsim.Time
	// Seed fixes the tuner's mutation randomness.
	Seed int64
	// Sources, when non-nil, replaces the sketch agents as the
	// controller's FSD inputs (NetFlow baseline, no-FSD ablation). The
	// caller is responsible for any tap wiring they need.
	Sources []monitor.ReportSource
	// Scope, when non-nil, restricts the deployment to the racks under
	// these ToRs: agents attach only there, runtime metrics cover only
	// that scope, and dispatches go only to those devices (§V
	// multi-cluster mode; see AttachPartitioned).
	Scope []topology.NodeID
	// Degrade bounds the loop's behaviour under faults (agent crashes,
	// link outages injected by internal/chaos). The zero value keeps the
	// pre-fault-tolerance behaviour: controller defaults for staleness
	// and quorum, rollback disabled.
	Degrade DegradeConfig
	// Telemetry selects the metrics registry the deployment instruments
	// itself against; nil means telemetry.Default(), so every run a
	// binary performs lands in its -telemetry-addr / -report surface.
	Telemetry *telemetry.Registry
	// Dispatch configures the staged rollout pipeline (guardrails,
	// canary plans, epoch commit protocol, write-ahead intent log). The
	// zero value keeps the legacy direct-apply path byte-for-byte: no
	// guard, no plan events, no WAL.
	Dispatch dispatch.Config
	// Flight, when non-nil, attaches the virtual-time flight recorder:
	// the loop samples its health signals (and a bounded per-ToR fabric
	// view) into the recorder each interval and trips anomaly snapshots
	// on rollbacks, dispatch aborts, quorum freezes, FSD degradation,
	// and guard-reject bursts. Sampling is read-only and allocation-free;
	// nil (the default) changes nothing.
	Flight *series.Recorder
}

// DegradeConfig is the graceful-degradation policy of a deployment.
type DegradeConfig struct {
	// StaleAfter / QuorumFrac configure agent eviction and the tuning
	// freeze (see monitor.Controller); zero values use its defaults.
	StaleAfter int
	QuorumFrac float64
	// RollbackWindow, when > 0, enables parameter rollback: if the
	// EWMA-smoothed measured utility stays more than RollbackMargin
	// below the last-known-good utility for RollbackWindow consecutive
	// live intervals while parameters differ from the last-known-good
	// vector, the system re-dispatches that vector and aborts the
	// active tuning session. Rollback is off by default because an SA
	// session legitimately explores downhill; enable it (with a margin
	// above exploration noise) where faults are expected.
	RollbackWindow int
	RollbackMargin float64
}

// DefaultSystemConfig mirrors Table III.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Interval: eventsim.Millisecond,
		Theta:    0.01,
		Weights:  DefaultWeights(),
		SA:       DefaultSAConfig(),
		Agent:    monitor.ParaleonAgentConfig(),
		Seed:     1,
	}
}

// System is the event-driven closed loop of Fig 1: agents measure, the
// controller aggregates and triggers, the tuner searches, and new DCQCN
// parameters are dispatched to every RNIC and switch.
type System struct {
	Net        *sim.Network
	Tuner      tuner.Tuner
	Controller *monitor.Controller
	Collector  *monitor.RuntimeCollector
	Agents     []*monitor.SwitchAgent

	interval eventsim.Time
	probe    eventsim.Time
	tickEv   eventsim.EventID
	running  bool
	weights  Weights
	// scope, when non-nil, restricts dispatch to these ToRs' clusters.
	scope []topology.NodeID
	// torScope is the resolved ToR list (scope, or every ToR): agent i of
	// a per-switch strategy owns torScope[i].
	torScope []topology.NodeID
	// guard bounds-checks every proposal on the legacy direct-apply path
	// and every per-switch override, so no strategy — in-tree or
	// registered by a caller — can push an out-of-spec or misordered
	// (Kmin >= Kmax) vector onto the fabric. The pipeline path carries
	// its own, stricter guard.
	guard *dispatch.Guard
	// GuardRejects counts proposals the loop's guard refused.
	GuardRejects int

	// Dispatches counts parameter updates pushed to the network;
	// LastSample is the most recent runtime measurement.
	Dispatches int
	LastSample monitor.RuntimeSample
	// UtilityTrace records Utility(LastSample) each interval.
	UtilityTrace []float64

	// Dispatch, when non-nil, is the staged rollout pipeline every
	// parameter push goes through (SystemConfig.Dispatch.Enabled); nil
	// means the legacy direct-apply path.
	Dispatch *dispatch.Pipeline

	// Graceful degradation (see DegradeConfig).
	degrade  DegradeConfig
	current  dcqcn.Params // last dispatched (or initial) setting
	utilEWMA float64
	haveEWMA bool
	lastGood dcqcn.Params
	goodUtil float64
	haveGood bool
	regress  int
	// Rollbacks counts reversions to the last-known-good vector;
	// FrozenIntervals counts intervals held because quorum was lost.
	Rollbacks       int
	FrozenIntervals int
	// OnDispatch / OnRollback, if set, observe parameter pushes (trace
	// recording). OnRollback fires with the restored vector after it has
	// been applied.
	OnDispatch func(p dcqcn.Params)
	OnRollback func(p dcqcn.Params)
	// Trace, when non-nil, receives span-linked control-loop events: a
	// span opens at each tuning trigger, every dispatch of the session
	// carries its ID, and the span closes when the session settles or
	// aborts. trace.Recorder satisfies this.
	Trace TraceSink

	// Telemetry instrumentation (resolved from SystemConfig.Telemetry).
	reg   *telemetry.Registry
	TM    *telemetry.TunerMetrics
	vtime *telemetry.Gauge

	// flight, when non-nil, samples the loop into the configured flight
	// recorder each interval (SystemConfig.Flight).
	flight *flightSampler

	sessionSpan  uint64
	sessionStart eventsim.Time
}

// TraceSink receives span-linked control-loop trace events. It is
// satisfied by *trace.Recorder (defined structurally here so core does
// not depend on the trace package).
type TraceSink interface {
	// SpanStart opens a named span under parent (0 = root) and returns
	// its ID; SpanEnd closes it.
	SpanStart(name string, parent uint64) uint64
	SpanEnd(id uint64)
	// TriggerIn / DispatchIn / RollbackIn record loop events linked
	// into a span (0 = unlinked).
	TriggerIn(span uint64, fsd monitor.FSD)
	DispatchIn(span uint64, p dcqcn.Params)
	RollbackIn(span uint64, p dcqcn.Params)
}

// LoopStatus is the /debug/status snapshot of one control loop,
// published to the telemetry registry every monitor interval.
type LoopStatus struct {
	VirtualTimeNs int64        `json:"virtual_time_ns"`
	Params        dcqcn.Params `json:"params"`
	Tuner         string       `json:"tuner"`
	Frozen        bool         `json:"frozen"`
	Degraded      bool         `json:"degraded"`
	PresentAgents int          `json:"present_agents"`
	Triggers      int          `json:"triggers"`
	LastKL        float64      `json:"last_kl"`
	TunerActive   bool         `json:"tuner_active"`
	Temperature   float64      `json:"temperature"`
	BestUtility   float64      `json:"best_utility"`
	Iterations    int          `json:"iterations"`
	Sessions      int          `json:"sessions"`
	Aborts        int          `json:"aborts"`
	Dispatches    int          `json:"dispatches"`
	Rollbacks     int          `json:"rollbacks"`
	DispatchPhase string       `json:"dispatch_phase,omitempty"`
	DispatchEpoch uint64       `json:"dispatch_epoch,omitempty"`
}

// Attach builds a Paraleon deployment on net. The search starts from the
// network's current parameter setting.
func Attach(net *sim.Network, cfg SystemConfig) (*System, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("core: non-positive monitor interval")
	}
	// Scope resolves before the tuner is built: a per-switch strategy
	// sizes its agent set to the deployment's ToR count.
	scope := cfg.Scope
	if scope == nil {
		scope = net.Topo.ToRs()
	}
	strategy := cfg.Tuner
	if strategy == "" {
		strategy = net.Config().Tuner
	}
	mcfg := cfg.MultiECN
	if mcfg.Agents == 0 {
		mcfg.Agents = len(scope)
	}
	tun, err := tuner.New(strategy, tuner.Config{
		Weights:  cfg.Weights,
		Base:     *net.RNICParams(),
		SA:       cfg.SA,
		Bandit:   cfg.Bandit,
		MultiECN: mcfg,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &System{
		Net:      net,
		Tuner:    tun,
		interval: cfg.Interval,
		probe:    cfg.ProbeEvery,
		weights:  cfg.Weights,
		degrade:  cfg.Degrade,
		current:  *net.RNICParams(),
		guard:    dispatch.NewGuard(dispatch.GuardConfig{}),
	}
	if s.probe <= 0 {
		s.probe = cfg.Interval / 4
	}
	s.reg = cfg.Telemetry
	if s.reg == nil {
		s.reg = telemetry.Default()
	}
	s.TM = telemetry.NewTunerMetrics(s.reg)
	s.Tuner.SetMetrics(s.TM)
	s.vtime = telemetry.VirtualTime(s.reg)

	s.scope = cfg.Scope
	s.torScope = scope
	sources := cfg.Sources
	if sources == nil {
		sketchTM := telemetry.NewSketchMetrics(s.reg)
		for i, tor := range scope {
			a := monitor.NewSwitchAgent(cfg.Agent, uint64(cfg.Seed)+uint64(i)+1)
			a.TM = sketchTM
			a.Attach(net.Switch(tor))
			s.Agents = append(s.Agents, a)
			sources = append(sources, a)
		}
	}
	s.Controller = monitor.NewController(cfg.Theta, sources...)
	s.Controller.StaleAfter = cfg.Degrade.StaleAfter
	s.Controller.QuorumFrac = cfg.Degrade.QuorumFrac
	s.Controller.TM = telemetry.NewMonitorMetrics(s.reg)
	// A session runs to its temperature floor (Algorithm 1); KL spikes
	// during an active search must not restart it, or noisy FSDs would
	// pin the tuner at maximum temperature forever.
	s.Controller.OnTrigger = func(fsd monitor.FSD) {
		if !s.Tuner.Active() {
			s.beginSession(fsd)
		}
	}
	s.Collector = monitor.NewScopedRuntimeCollector(net, scope)
	// The dispatch family is registered even when the pipeline is off,
	// so every run's /metrics surface carries it for scrape checks.
	telemetry.NewDispatchMetrics(s.reg)
	if cfg.Dispatch.Enabled {
		if err := s.attachDispatch(cfg, scope); err != nil {
			return nil, err
		}
	}
	if cfg.Flight != nil {
		s.flight = newFlightSampler(cfg.Flight, s)
	}
	return s, nil
}

// attachDispatch builds the staged rollout pipeline over the scope
// ToRs: device i of the fabric is scope[i], so the canary prefix is a
// deterministic pod subset. The fabric and WAL come from the config
// when the caller needs them to survive controller restarts (the
// crash-recovery experiments); otherwise both are fresh.
func (s *System) attachDispatch(cfg SystemConfig, scope []topology.NodeID) error {
	fab := cfg.Dispatch.Fabric
	if fab == nil {
		fab = dispatch.NewFabric(len(scope))
	}
	if len(fab.Devices) != len(scope) {
		return fmt.Errorf("core: dispatch fabric has %d devices, scope has %d ToRs", len(fab.Devices), len(scope))
	}
	net, full := s.Net, s.scope == nil
	apply := func(devs []int, p dcqcn.Params) {
		if full && len(devs) == len(scope) {
			// Fabric-wide on an unscoped deployment: cover the leaf and
			// spine switches too, exactly as the legacy path did.
			net.ApplyParams(p)
			return
		}
		tors := make([]topology.NodeID, len(devs))
		for i, d := range devs {
			tors[i] = scope[d]
		}
		net.ApplyParamsToCluster(tors, p)
	}
	s.Dispatch = dispatch.New(cfg.Dispatch, net.Eng, fab, apply, s.reg)
	s.Dispatch.OnCommit = func(p dcqcn.Params) { s.current = p }
	s.Dispatch.OnAbort = func(restored dcqcn.Params, reason string) {
		// A failed canary must not poison the baseline: re-anchor the
		// last-known-good vector at what the abort restored and reset
		// the regression window, exactly as a rollback does.
		s.lastGood = restored
		s.goodUtil = s.utilEWMA
		s.haveGood = true
		s.regress = 0
		if s.flight != nil {
			s.flight.rec.Trip(int64(s.Net.Eng.Now()), "dispatch_abort", reason)
		}
	}
	return s.Dispatch.Resume(*net.RNICParams(), net.Eng.Now())
}

// beginSession starts (or restarts) a tuning session, opening its trace
// span and stamping its start for latency accounting.
func (s *System) beginSession(fsd monitor.FSD) {
	if s.Trace != nil {
		if s.Tuner.Active() && s.sessionSpan != 0 {
			// Restarted mid-session (TriggerNow): close the old span.
			s.Trace.SpanEnd(s.sessionSpan)
		}
		// "sa_session" for the default strategy, matching the historical
		// trace vocabulary (and the recorded goldens) byte-for-byte.
		s.sessionSpan = s.Trace.SpanStart(s.Tuner.Name()+"_session", 0)
		s.Trace.TriggerIn(s.sessionSpan, fsd)
	}
	s.sessionStart = s.Net.Eng.Now()
	s.Tuner.Trigger(fsd)
}

// AttachPartitioned deploys one independent Paraleon instance per cluster
// (a cluster being a group of ToRs with their racks), each tuning its own
// devices with heterogeneous parameters — the §V answer to extreme-scale
// RDMA clouds where one homogeneous setting cannot fit every cluster.
// Seeds are derived per cluster so their searches differ.
func AttachPartitioned(net *sim.Network, cfg SystemConfig, clusters [][]topology.NodeID) ([]*System, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("core: no clusters given")
	}
	systems := make([]*System, 0, len(clusters))
	for i, tors := range clusters {
		if len(tors) == 0 {
			return nil, fmt.Errorf("core: cluster %d is empty", i)
		}
		ccfg := cfg
		ccfg.Scope = tors
		ccfg.Seed = cfg.Seed + int64(i)*1001
		sys, err := Attach(net, ccfg)
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
	}
	return systems, nil
}

// Start arms probing and the recurring monitor-interval tick.
func (s *System) Start() {
	if s.running {
		return
	}
	s.running = true
	s.Collector.StartProbing(s.probe)
	s.armTick()
}

// Stop halts the loop (probing stays armed on hosts with active flows).
func (s *System) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.Net.Eng.Cancel(s.tickEv)
}

// TriggerNow force-starts a tuning session with the current FSD,
// regardless of the KL trigger (used by the no-FSD ablation and by
// pretraining runs).
func (s *System) TriggerNow() { s.beginSession(s.Controller.Current) }

func (s *System) armTick() {
	s.tickEv = s.Net.Eng.After(s.interval, func() {
		if !s.running {
			return
		}
		s.tick()
		s.armTick()
	})
}

// TickOnce runs a single monitor interval synchronously. Harnesses that
// drive the loop themselves (to interleave their own per-interval
// sampling) use this instead of Start; the two modes must not be mixed.
func (s *System) TickOnce() { s.tick() }

// StartProbingOnly arms RTT probing without the recurring tick, for
// TickOnce-driven deployments.
func (s *System) StartProbingOnly() { s.Collector.StartProbing(s.probe) }

// tick is one monitor interval: aggregate FSD (possibly triggering),
// sample runtime metrics, advance the SA search, dispatch.
func (s *System) tick() {
	fsd := s.Controller.Tick()
	sample := s.Collector.Sample(s.interval)
	s.LastSample = sample
	util := Utility(sample, s.weights)
	s.UtilityTrace = append(s.UtilityTrace, util)
	now := s.Net.Eng.Now()
	s.vtime.Set(float64(now))
	if s.flight != nil {
		s.flight.sample(s, now, sample, util)
	}
	defer s.publishStatus(now)
	// Quorum lost: the measurement substrate itself is broken, so any
	// feedback this interval is suspect. Hold parameters steady (do not
	// step the search or dispatch) until enough agents report again or
	// the dead ones are evicted from the membership.
	if s.Controller.Frozen {
		s.FrozenIntervals++
		s.regress = 0
		return
	}
	// Traffic-free intervals (OFF gaps) carry no tuning feedback: the
	// idle network's perfect RTT/PFC readings would poison the search.
	// Hold the search until traffic returns. (The no-FSD ablation has no
	// sources, so its empty distribution cannot mean idleness.) The raw
	// single-interval snapshot decides idleness; fsd itself is smoothed.
	if len(s.Controller.Agents) > 0 && s.Controller.Raw.TotalBytes == 0 {
		return
	}
	if s.checkRollback(util) {
		return
	}
	// Advance an in-flight rollout plan with this interval's health
	// signals. Frozen and idle intervals never reach here — a canary
	// must not be judged (or promoted) on readings the loop itself
	// considers suspect.
	if s.Dispatch != nil {
		s.Dispatch.Tick(dispatch.Health{
			Utility:   s.utilEWMA,
			PauseFrac: 1 - sample.OPFC,
			KL:        s.Controller.LastKL,
		}, now)
	}
	// Per-switch strategies see this interval's per-agent reports before
	// they step; agent i's slice is the report from torScope[i]'s switch.
	ps, perSwitch := s.Tuner.(tuner.PerSwitch)
	if perSwitch {
		ps.ObserveLocals(s.Controller.Locals)
	}
	wasActive := s.Tuner.Active()
	if p, ok := s.Tuner.Step(sample, fsd); ok {
		final := wasActive && !s.Tuner.Active()
		applied := true
		if s.Dispatch != nil {
			// The pipeline owns the push: exploration steps go through
			// the guard and apply fabric-wide under a fresh epoch; the
			// session-settling dispatch starts a canary rollout plan.
			if final {
				applied, _ = s.Dispatch.SubmitFinal(p, s.utilEWMA, now)
			} else {
				applied, _ = s.Dispatch.SubmitExplore(p, now)
				if applied {
					s.current = p
				}
			}
		} else if rej, _ := s.guard.Admit(&p, &s.current, now); rej != dispatch.RejectNone {
			// Legacy direct-apply path: the loop's own guard refuses any
			// strategy proposal that is out of spec bounds or misordered.
			// ("sa" proposals are clamped and repaired by construction, so
			// this check never fires on the default path — the goldens are
			// untouched.)
			applied = false
			s.GuardRejects++
			s.TM.GuardRejects.Inc()
		} else {
			s.apply(p)
		}
		if applied {
			s.Tuner.Commit(p)
			if perSwitch {
				s.applyLocalProposals(ps, now)
			}
			s.Dispatches++
			s.TM.Dispatches.Inc()
			s.TM.DispatchLatencyMs.Observe(float64(now-s.sessionStart) / 1e6)
			if s.OnDispatch != nil {
				s.OnDispatch(p)
			}
			if s.flight != nil {
				// Constant kind/detail strings: the event ring entry is a
				// value write, so recording dispatches allocates nothing.
				s.flight.rec.Event(int64(now), "dispatch", "")
			}
			if s.Trace != nil {
				s.Trace.DispatchIn(s.sessionSpan, p)
			}
		}
		if final {
			// The session settled on this dispatch.
			s.TM.SettleMs.Observe(float64(now-s.sessionStart) / 1e6)
			if s.Trace != nil && s.sessionSpan != 0 {
				s.Trace.SpanEnd(s.sessionSpan)
				s.sessionSpan = 0
			}
		}
	}
}

// applyLocalProposals overlays a per-switch strategy's local ECN
// proposals on top of the fabric-wide dispatch: agent i's (Kmin, Kmax,
// Pmax) goes to torScope[i]'s switch, after the same guard check every
// fabric-wide proposal passes (the trio substituted into the live
// vector, so bounds and Kmin<Kmax ordering hold per switch). While a
// canary rollout plan is in flight the pipeline owns the fabric and
// per-switch overrides are withheld — a half-converted fabric must stay
// exactly as the plan's epoch stamped it.
func (s *System) applyLocalProposals(ps tuner.PerSwitch, now eventsim.Time) {
	if s.Dispatch != nil && s.Dispatch.InFlight() {
		return
	}
	for _, pr := range ps.LocalProposals() {
		if pr.Agent < 0 || pr.Agent >= len(s.torScope) {
			continue
		}
		cand := s.current
		cand.KminBytes, cand.KmaxBytes, cand.PMax = pr.KminBytes, pr.KmaxBytes, pr.PMax
		if rej, _ := s.guard.Admit(&cand, &s.current, now); rej != dispatch.RejectNone {
			s.GuardRejects++
			s.TM.GuardRejects.Inc()
			continue
		}
		s.Net.ApplySwitchECN(s.torScope[pr.Agent], pr.KminBytes, pr.KmaxBytes, pr.PMax)
		ps.AgentCommitted(pr.Agent)
	}
}

// publishStatus pushes the loop's state snapshot into the registry, where
// the /debug/status endpoint and -report summaries read it. Push (rather
// than letting HTTP handlers poll the System) keeps the single-threaded
// simulation state off concurrent scrape goroutines.
func (s *System) publishStatus(now eventsim.Time) {
	var phase string
	var epoch uint64
	if s.Dispatch != nil {
		phase = s.Dispatch.Phase().String()
		epoch = s.Dispatch.Epoch()
	}
	var temp float64
	if td, ok := s.Tuner.(tuner.Temperatured); ok {
		temp = td.Temperature()
	}
	st := s.Tuner.Stats()
	s.reg.PublishStatus("control_loop", LoopStatus{
		VirtualTimeNs: int64(now),
		Params:        s.current,
		Tuner:         s.Tuner.Name(),
		Frozen:        s.Controller.Frozen,
		Degraded:      s.Controller.Degraded,
		PresentAgents: s.Controller.PresentAgents,
		Triggers:      s.Controller.Triggers,
		LastKL:        s.Controller.LastKL,
		TunerActive:   s.Tuner.Active(),
		Temperature:   temp,
		BestUtility:   s.Tuner.BestUtility(),
		Iterations:    st.Steps,
		Sessions:      st.Sessions,
		Aborts:        st.Aborts,
		Dispatches:    s.Dispatches,
		Rollbacks:     s.Rollbacks,
		DispatchPhase: phase,
		DispatchEpoch: epoch,
	})
}

// apply dispatches p to the system's scope and records it as the live
// setting. With the pipeline attached this is the rollback/restore
// path: the push still goes through it so the restore is epoch-stamped,
// journaled, and idempotent on the devices.
func (s *System) apply(p dcqcn.Params) {
	if s.Dispatch != nil {
		s.Dispatch.Restore(p, s.Net.Eng.Now())
	} else if s.scope != nil {
		s.Net.ApplyParamsToCluster(s.scope, p)
	} else {
		s.Net.ApplyParams(p)
	}
	s.current = p
}

// checkRollback maintains the last-known-good (parameter vector, EWMA
// utility) pair and reverts to it when the measured utility regresses
// persistently under the current vector. It reports true when a rollback
// happened this interval (the tuner was aborted; skip stepping it).
//
// The regression test cannot distinguish "bad parameters" from "healthy
// parameters measured through a fault" — and does not need to: in both
// cases the last vector known to deliver is the safe setting to hold
// while the search restarts on post-fault feedback.
func (s *System) checkRollback(util float64) bool {
	if !s.haveEWMA {
		s.utilEWMA = util
		s.haveEWMA = true
	} else {
		s.utilEWMA = 0.3*util + 0.7*s.utilEWMA
	}
	if s.degrade.RollbackWindow <= 0 {
		return false
	}
	if !s.haveGood || s.utilEWMA >= s.goodUtil {
		// The live vector is performing at least as well as anything
		// before it: it is the new last-known-good.
		s.lastGood = s.current
		s.goodUtil = s.utilEWMA
		s.haveGood = true
		s.regress = 0
		return false
	}
	if s.utilEWMA >= s.goodUtil-s.degrade.RollbackMargin {
		s.regress = 0
		return false
	}
	s.regress++
	if s.regress < s.degrade.RollbackWindow || s.current == s.lastGood {
		return false
	}
	s.apply(s.lastGood)
	wasActive := s.Tuner.Active()
	s.Tuner.Abort()
	s.Rollbacks++
	s.TM.Rollbacks.Inc()
	if s.flight != nil {
		s.flight.rec.Trip(int64(s.Net.Eng.Now()),
			"rollback", fmt.Sprintf("ewma %.3f below good %.3f", s.utilEWMA, s.goodUtil))
	}
	s.regress = 0
	// The regression has tainted the baseline too: re-anchor the good
	// utility at the current level so a persistent fault does not fire
	// an endless rollback storm against an unreachable pre-fault bar.
	s.goodUtil = s.utilEWMA
	if s.OnRollback != nil {
		s.OnRollback(s.lastGood)
	}
	if s.Trace != nil {
		s.Trace.RollbackIn(s.sessionSpan, s.lastGood)
		if wasActive && s.sessionSpan != 0 {
			s.Trace.SpanEnd(s.sessionSpan)
			s.sessionSpan = 0
		}
	}
	return true
}

// Pretrain runs the closed loop against whatever workload the caller has
// scheduled, for the given virtual duration, and returns the best
// parameters found — the "Pretrained" static settings of Fig 9.
func Pretrain(net *sim.Network, cfg SystemConfig, until eventsim.Time) (dcqcn.Params, error) {
	s, err := Attach(net, cfg)
	if err != nil {
		return dcqcn.Params{}, err
	}
	s.Start()
	net.Run(until)
	s.Stop()
	return s.Tuner.Best(), nil
}
