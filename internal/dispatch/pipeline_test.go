package dispatch

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/telemetry"
)

// testRig is a pipeline over a recording apply callback.
type testRig struct {
	eng    *eventsim.Engine
	fab    *Fabric
	pipe   *Pipeline
	pushes []push
}

type push struct {
	devs []int
	vec  dcqcn.Params
}

func newRig(t *testing.T, cfg Config, n int) *testRig {
	t.Helper()
	rig := &testRig{eng: eventsim.NewEngine(1), fab: cfg.Fabric}
	if rig.fab == nil {
		rig.fab = NewFabric(n)
	}
	rig.pipe = New(cfg, rig.eng, rig.fab, func(devs []int, p dcqcn.Params) {
		cp := append([]int(nil), devs...)
		rig.pushes = append(rig.pushes, push{cp, p})
	}, telemetry.NewRegistry())
	if err := rig.pipe.Resume(dcqcn.DefaultParams(), rig.eng.Now()); err != nil {
		t.Fatal(err)
	}
	return rig
}

func target() dcqcn.Params {
	p := dcqcn.DefaultParams()
	p.KminBytes = 800 << 10
	p.KmaxBytes = 3200 << 10
	return p
}

func TestPipelineCanaryPromoteCommit(t *testing.T) {
	rig := newRig(t, Config{Enabled: true, Canary: 1, SettleIntervals: 2}, 4)
	p := rig.pipe
	tgt := target()

	ok, r := p.SubmitFinal(tgt, 50, rig.eng.Now())
	if !ok {
		t.Fatalf("SubmitFinal rejected: %v", r)
	}
	if p.Phase() != PhaseCanary {
		t.Fatalf("phase = %v, want canary", p.Phase())
	}
	rig.eng.Run() // deliver canary ACKs
	if p.Phase() != PhaseSettle {
		t.Fatalf("phase = %v after ACKs, want settle", p.Phase())
	}
	// Only the canary runs the target so far.
	if rig.fab.Devices[0].Params != tgt {
		t.Fatal("canary device does not run the target")
	}
	if rig.fab.Devices[3].Params == tgt {
		t.Fatal("non-canary device updated before promote")
	}

	healthy := Health{Utility: 50, PauseFrac: 0.01}
	p.Tick(healthy, rig.eng.Now())
	if p.Phase() != PhaseSettle {
		t.Fatalf("settle ended one interval early")
	}
	p.Tick(healthy, rig.eng.Now())
	if p.Phase() != PhasePromote {
		t.Fatalf("phase = %v after settle window, want promote", p.Phase())
	}
	rig.eng.Run() // deliver fabric-wide ACKs
	if p.Phase() != PhaseIdle {
		t.Fatalf("phase = %v after promote ACKs, want idle", p.Phase())
	}
	if p.Commits != 1 {
		t.Fatalf("commits = %d, want 1", p.Commits)
	}
	if got, ok := p.Committed(); !ok || got != tgt {
		t.Fatalf("committed = %+v ok=%v", got, ok)
	}
	if !rig.fab.Converged() {
		t.Fatal("fabric did not converge after commit")
	}
	for i, d := range rig.fab.Devices {
		if d.Params != tgt {
			t.Fatalf("device %d runs %+v, want target", i, d.Params)
		}
	}
}

func TestPipelineHealthAbortRestoresCanaries(t *testing.T) {
	rig := newRig(t, Config{Enabled: true, Canary: 2, SettleIntervals: 3, MaxPauseFrac: 0.3}, 4)
	p := rig.pipe
	prev := dcqcn.DefaultParams()
	tgt := target()

	if ok, _ := p.SubmitFinal(tgt, 50, rig.eng.Now()); !ok {
		t.Fatal("SubmitFinal rejected")
	}
	rig.eng.Run()
	if p.Phase() != PhaseSettle {
		t.Fatalf("phase = %v, want settle", p.Phase())
	}
	var aborted string
	p.OnAbort = func(restored dcqcn.Params, reason string) {
		if restored != prev {
			t.Fatalf("OnAbort restored %+v, want pre-plan vector", restored)
		}
		aborted = reason
	}
	p.Tick(Health{Utility: 50, PauseFrac: 0.9}, rig.eng.Now())
	if aborted != "health_pfc" {
		t.Fatalf("abort reason = %q, want health_pfc", aborted)
	}
	if p.Phase() != PhaseIdle || p.Aborts != 1 {
		t.Fatalf("phase=%v aborts=%d after health abort", p.Phase(), p.Aborts)
	}
	// Canaries were rolled back to the pre-plan vector under a fresh
	// epoch; devices the plan never reached never changed.
	for i := 0; i < 2; i++ {
		if d := rig.fab.Devices[i]; d.Params != prev {
			t.Fatalf("canary %d runs %+v after abort, want pre-plan vector", i, d.Params)
		}
	}
	for i := 2; i < 4; i++ {
		if d := rig.fab.Devices[i]; d.Applies != 0 {
			t.Fatalf("non-canary device %d saw %d applies during an aborted canary", i, d.Applies)
		}
	}
}

func TestPipelineAckRetryThenCommit(t *testing.T) {
	rig := newRig(t, Config{Enabled: true, Canary: 1, SettleIntervals: 1, AckRetries: 2}, 3)
	p := rig.pipe
	p.FaultAcks(0, 1, 0) // drop the canary's first ACK

	if ok, _ := p.SubmitFinal(target(), 50, rig.eng.Now()); !ok {
		t.Fatal("SubmitFinal rejected")
	}
	rig.eng.Run() // first wave dropped, deadline fires, retry wave ACKs
	if p.Phase() != PhaseSettle {
		t.Fatalf("phase = %v after retry wave, want settle", p.Phase())
	}
	if p.tm.AckRetries.Value() != 1 {
		t.Fatalf("ack retries = %d, want 1", p.tm.AckRetries.Value())
	}
}

func TestPipelineAckExhaustionAborts(t *testing.T) {
	rig := newRig(t, Config{Enabled: true, Canary: 1, AckRetries: 2}, 3)
	p := rig.pipe
	p.FaultAcks(0, 10, 0) // drop every canary ACK

	if ok, _ := p.SubmitFinal(target(), 50, rig.eng.Now()); !ok {
		t.Fatal("SubmitFinal rejected")
	}
	rig.eng.Run()
	if p.Phase() != PhaseIdle || p.Aborts != 1 {
		t.Fatalf("phase=%v aborts=%d, want idle/1 after ACK exhaustion", p.Phase(), p.Aborts)
	}
	if rig.fab.Devices[0].Params != dcqcn.DefaultParams() {
		t.Fatal("canary not restored after ACK exhaustion")
	}
}

// TestPipelineCrashRecovery is the tentpole protocol property in
// miniature: kill the controller between canary-apply and promote,
// hand its WAL and fabric to a fresh incarnation, and the fabric must
// converge to exactly one committed epoch.
func TestPipelineCrashRecovery(t *testing.T) {
	wal := &MemWAL{}
	fab := NewFabric(4)
	initial := dcqcn.DefaultParams()
	cfg := Config{Enabled: true, Canary: 1, SettleIntervals: 5, WAL: wal, Fabric: fab}

	rigA := newRig(t, cfg, 4)
	tgt := target()
	if ok, _ := rigA.pipe.SubmitFinal(tgt, 50, rigA.eng.Now()); !ok {
		t.Fatal("SubmitFinal rejected")
	}
	rigA.eng.Run()
	if rigA.pipe.Phase() != PhaseSettle {
		t.Fatalf("phase = %v, want settle (mid-rollout)", rigA.pipe.Phase())
	}
	// The fabric is now forked: the canary runs the target epoch, the
	// rest run the initial one. Controller A dies here.
	if fab.Converged() {
		t.Fatal("fabric should be mid-rollout (forked)")
	}
	epochA := rigA.pipe.Epoch()

	// Controller B restarts from the same WAL against the same fabric.
	engB := eventsim.NewEngine(1)
	pipeB := New(cfg, engB, fab, nil, telemetry.NewRegistry())
	if err := pipeB.Resume(initial, engB.Now()); err != nil {
		t.Fatal(err)
	}
	if pipeB.Phase() != PhasePromote {
		t.Fatalf("recovery phase = %v, want promote (restore rollout)", pipeB.Phase())
	}
	if pipeB.Epoch() <= epochA {
		t.Fatalf("recovery epoch %d not above pre-crash %d", pipeB.Epoch(), epochA)
	}
	engB.Run() // restore-wave ACKs
	if pipeB.Phase() != PhaseIdle {
		t.Fatalf("phase = %v after recovery, want idle", pipeB.Phase())
	}
	if !fab.Converged() {
		t.Fatalf("fabric did not converge after recovery: epochs %v", fab.Epochs())
	}
	if fab.Devices[0].Params != initial {
		t.Fatalf("recovered fabric runs %+v, want the pre-plan vector", fab.Devices[0].Params)
	}
	if pipeB.CommittedEpoch() != pipeB.Epoch() {
		t.Fatalf("committed epoch %d != granted %d after recovery", pipeB.CommittedEpoch(), pipeB.Epoch())
	}
	for _, d := range fab.Devices {
		if d.Epoch != pipeB.CommittedEpoch() {
			t.Fatalf("device epochs %v, want all %d", fab.Epochs(), pipeB.CommittedEpoch())
		}
	}
}

// TestPipelineRecoveryAfterCommitIsQuiet: a WAL whose last rollout
// committed cleanly must not trigger a recovery rollout.
func TestPipelineRecoveryAfterCommitIsQuiet(t *testing.T) {
	wal := &MemWAL{}
	fab := NewFabric(2)
	cfg := Config{Enabled: true, Canary: 1, SettleIntervals: 1, WAL: wal, Fabric: fab}
	rig := newRig(t, cfg, 2)
	tgt := target()
	if ok, _ := rig.pipe.SubmitFinal(tgt, 50, rig.eng.Now()); !ok {
		t.Fatal("SubmitFinal rejected")
	}
	rig.eng.Run()
	rig.pipe.Tick(Health{Utility: 50}, rig.eng.Now())
	rig.eng.Run()
	if rig.pipe.Commits != 1 {
		t.Fatalf("commits = %d, want 1", rig.pipe.Commits)
	}
	walLen := wal.Len()

	engB := eventsim.NewEngine(1)
	pipeB := New(cfg, engB, fab, nil, telemetry.NewRegistry())
	if err := pipeB.Resume(dcqcn.DefaultParams(), engB.Now()); err != nil {
		t.Fatal(err)
	}
	if pipeB.Phase() != PhaseIdle {
		t.Fatalf("clean restart started a rollout (phase %v)", pipeB.Phase())
	}
	if wal.Len() != walLen {
		t.Fatalf("clean restart appended %d WAL records", wal.Len()-walLen)
	}
	if got, ok := pipeB.Committed(); !ok || got != tgt {
		t.Fatalf("restart lost the committed vector: %+v ok=%v", got, ok)
	}
}

func TestPipelineRejectLeavesFabricUntouched(t *testing.T) {
	rig := newRig(t, Config{Enabled: true}, 3)
	p := rig.pipe
	before := rig.fab.Epochs()

	bad := dcqcn.DefaultParams()
	bad.PMax = 2.0
	if ok, r := p.SubmitExplore(bad, rig.eng.Now()); ok || r != RejectBounds {
		t.Fatalf("out-of-bounds vector admitted (ok=%v r=%v)", ok, r)
	}
	if ok, r := p.SubmitFinal(bad, 50, rig.eng.Now()); ok || r != RejectBounds {
		t.Fatalf("out-of-bounds final admitted (ok=%v r=%v)", ok, r)
	}
	rig.eng.Run()
	if len(rig.pushes) != 0 {
		t.Fatalf("rejected vectors reached the network: %+v", rig.pushes)
	}
	for i, e := range rig.fab.Epochs() {
		if e != before[i] {
			t.Fatal("rejected vector moved a device epoch")
		}
	}
	if p.Guard().Rejects() != 2 || p.tm.Rejects.Value() != 2 {
		t.Fatalf("rejects guard=%d metric=%d, want 2/2", p.Guard().Rejects(), p.tm.Rejects.Value())
	}
}

func TestPipelineExploreAppliesDirectly(t *testing.T) {
	rig := newRig(t, Config{Enabled: true}, 3)
	p := rig.pipe
	tgt := target()
	if ok, r := p.SubmitExplore(tgt, rig.eng.Now()); !ok {
		t.Fatalf("explore rejected: %v", r)
	}
	for i, d := range rig.fab.Devices {
		if d.Params != tgt {
			t.Fatalf("device %d missed the explore dispatch", i)
		}
	}
	if len(rig.pushes) != 1 || len(rig.pushes[0].devs) != 3 {
		t.Fatalf("pushes = %+v, want one fabric-wide push", rig.pushes)
	}
	// A second explore while idle is fine; one during a plan is not.
	if ok, _ := p.SubmitFinal(target2(), 50, rig.eng.Now()); !ok {
		t.Fatal("final rejected")
	}
	if ok, r := p.SubmitExplore(tgt, rig.eng.Now()); ok || r != RejectInFlight {
		t.Fatalf("explore during plan: ok=%v r=%v, want RejectInFlight", ok, r)
	}
}

func target2() dcqcn.Params {
	p := dcqcn.DefaultParams()
	p.PMax = 0.4
	return p
}
