package dispatch

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/dcqcn"
)

// frame is one dispatch delivery in an idempotency schedule.
type frame struct {
	epoch uint64
	vec   dcqcn.Params
}

func testFrames() []frame {
	p1 := dcqcn.DefaultParams()
	p2 := dcqcn.ExpertParams()
	p3 := dcqcn.DefaultParams()
	p3.KminBytes = 800 << 10
	p3.KmaxBytes = 3200 << 10
	return []frame{{1, p1}, {2, p2}, {3, p3}}
}

// deliver runs a schedule against a fresh device and returns its final
// state plus the byte-serialized ACK stream from re-offering every
// frame once after the schedule completes. That re-ACK stream is the
// property retries depend on: whatever arrived and in whatever order,
// a retransmitted frame must earn the same answer.
func deliver(t *testing.T, schedule []frame) (*Device, []byte) {
	t.Helper()
	d := &Device{}
	for _, f := range schedule {
		d.Apply(f.epoch, f.vec)
	}
	var buf bytes.Buffer
	for _, f := range testFrames() {
		ack, _ := d.Apply(f.epoch, f.vec)
		if err := binary.Write(&buf, binary.LittleEndian, struct {
			Epoch, Hash uint64
			Applied     bool
		}{ack.Epoch, ack.Hash, ack.Applied}); err != nil {
			t.Fatal(err)
		}
	}
	return d, buf.Bytes()
}

// TestDeviceEpochIdempotency: duplicate, reordered, and stale-epoch
// dispatch frames leave the device vector and its ACK stream
// byte-identical to the in-order run.
func TestDeviceEpochIdempotency(t *testing.T) {
	f := testFrames()
	inOrder := []frame{f[0], f[1], f[2]}
	wantDev, wantAcks := deliver(t, inOrder)

	schedules := map[string][]frame{
		"duplicates":     {f[0], f[0], f[1], f[1], f[1], f[2], f[2]},
		"reordered":      {f[1], f[0], f[2]},
		"stale_tail":     {f[0], f[2], f[1], f[0]},
		"all_backwards":  {f[2], f[1], f[0]},
		"dup_and_stale":  {f[0], f[1], f[2], f[1], f[2], f[0]},
		"only_final_dup": {f[2], f[2], f[2]},
	}
	for name, schedule := range schedules {
		t.Run(name, func(t *testing.T) {
			dev, acks := deliver(t, schedule)
			if dev.Epoch != wantDev.Epoch || dev.Hash != wantDev.Hash {
				t.Fatalf("device at (epoch=%d hash=%016x), want (epoch=%d hash=%016x)",
					dev.Epoch, dev.Hash, wantDev.Epoch, wantDev.Hash)
			}
			if dev.Params != wantDev.Params {
				t.Fatalf("device vector %+v, want %+v", dev.Params, wantDev.Params)
			}
			if !bytes.Equal(acks, wantAcks) {
				t.Fatalf("ACK stream diverged from in-order run\n got: %x\nwant: %x", acks, wantAcks)
			}
		})
	}
}

func TestDeviceCountsStaleAndDup(t *testing.T) {
	f := testFrames()
	d := &Device{}
	d.Apply(f[1].epoch, f[1].vec) // fresh (epoch 2)
	d.Apply(f[1].epoch, f[1].vec) // duplicate
	d.Apply(f[0].epoch, f[0].vec) // stale (epoch 1 < 2)
	if d.Applies != 1 || d.Dups != 1 || d.Stale != 1 {
		t.Fatalf("applies/dups/stale = %d/%d/%d, want 1/1/1", d.Applies, d.Dups, d.Stale)
	}
	ack, fresh := d.Apply(f[0].epoch, f[0].vec)
	if fresh || ack.Applied {
		t.Fatal("stale frame reported as applied")
	}
	if ack.Epoch != 2 || ack.Hash != VectorHash(&f[1].vec) {
		t.Fatalf("stale re-ACK carries (epoch=%d hash=%016x), want current state", ack.Epoch, ack.Hash)
	}
}

func TestFabricConverged(t *testing.T) {
	fab := NewFabric(3)
	p := dcqcn.DefaultParams()
	for _, d := range fab.Devices {
		d.Apply(1, p)
	}
	if !fab.Converged() {
		t.Fatal("uniform fabric reported diverged")
	}
	fab.Devices[1].Apply(2, dcqcn.ExpertParams())
	if fab.Converged() {
		t.Fatal("forked fabric reported converged")
	}
}
