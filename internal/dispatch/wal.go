package dispatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/dcqcn"
)

// WAL record kinds. A rollout writes intent first, then one phase record
// per transition, then exactly one of commit or abort. Epoch grants that
// bypass the plan machinery (SA exploration dispatches, rollback
// restores) write an epoch record so a recovered controller never
// re-issues an epoch number some device has already seen.
const (
	KindIntent = "intent"
	KindPhase  = "phase"
	KindCommit = "commit"
	KindAbort  = "abort"
	KindEpoch  = "epoch"
)

// Record is one write-ahead log entry. T is virtual time (engine
// nanoseconds) — the log must replay identically across restarts, so it
// carries no wall-clock timestamps.
type Record struct {
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Epoch uint64 `json:"epoch"`
	// Phase names the phase being entered (KindPhase records).
	Phase string `json:"phase,omitempty"`
	// Params is the full target vector (KindIntent and KindCommit
	// records; epoch grants log only the hash).
	Params *dcqcn.Params `json:"params,omitempty"`
	Hash   uint64        `json:"hash,omitempty"`
	// Canary is the canary device count of the plan (KindIntent).
	Canary int `json:"canary,omitempty"`
	// Reason annotates aborts and restore-commits.
	Reason string `json:"reason,omitempty"`
}

// WAL is the journal the pipeline writes through. Append must be
// durable before it returns (to the WAL's own durability level: a
// MemWAL survives a simulated controller restart, a FileWAL survives a
// process one). Replay returns every record in append order.
type WAL interface {
	Append(Record) error
	Replay() ([]Record, error)
}

// MemWAL is the in-memory journal used by simulations: the harness
// holds it across a simulated controller kill/restart, exactly as a
// file would survive a daemon crash.
type MemWAL struct {
	mu   sync.Mutex
	recs []Record
}

// Append adds r to the log.
func (w *MemWAL) Append(r Record) error {
	w.mu.Lock()
	w.recs = append(w.recs, r)
	w.mu.Unlock()
	return nil
}

// Replay returns a copy of the log in append order.
func (w *MemWAL) Replay() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, len(w.recs))
	copy(out, w.recs)
	return out, nil
}

// Len reports the number of records appended so far.
func (w *MemWAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// FileWAL is the file-backed journal for daemon deployments: one JSON
// record per line, synced on every append. Dispatch is a per-interval
// (millisecond-scale) control-plane event, so an fsync per record is
// cheap insurance against exactly the crash the log exists for.
type FileWAL struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenFileWAL opens (creating if needed) the journal at path in append
// mode. Existing records are preserved; Replay reads them.
func OpenFileWAL(path string) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: open wal: %w", err)
	}
	return &FileWAL{path: path, f: f}, nil
}

// Append writes r as one JSON line and syncs it to stable storage.
func (w *FileWAL) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("dispatch: wal encode: %w", err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("dispatch: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dispatch: wal sync: %w", err)
	}
	return nil
}

// Replay reads every record currently in the journal. A trailing
// partial line (torn write from a crash mid-append) is skipped, not an
// error: the record it would have been was by definition not durable.
func (w *FileWAL) Replay() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, err := os.Open(w.path)
	if err != nil {
		return nil, fmt.Errorf("dispatch: wal replay: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// Torn tail: stop at the first undecodable line.
			break
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dispatch: wal replay: %w", err)
	}
	return recs, nil
}

// Close releases the journal file.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Recovery is what a restarted controller learns from its journal.
type Recovery struct {
	// Epoch is the highest epoch number granted before the crash; the
	// recovered controller resumes numbering strictly above it.
	Epoch uint64
	// Committed is the last vector that fully committed (nil if none
	// ever did), with its epoch.
	Committed      *dcqcn.Params
	CommittedEpoch uint64
	// InFlight is the intent of a rollout that neither committed nor
	// aborted — the crash caught it mid-flight — along with the last
	// phase it was known to have entered.
	InFlight      *Record
	InFlightPhase string
	// Replayed counts records read.
	Replayed int
}

// Recover replays w and folds it into the state a restarting controller
// needs: where epoch numbering left off, what the fabric last agreed
// on, and whether a rollout was orphaned mid-flight.
func Recover(w WAL) (Recovery, error) {
	recs, err := w.Replay()
	if err != nil {
		return Recovery{}, err
	}
	var rec Recovery
	rec.Replayed = len(recs)
	for i := range recs {
		r := &recs[i]
		if r.Epoch > rec.Epoch {
			rec.Epoch = r.Epoch
		}
		switch r.Kind {
		case KindIntent:
			rc := *r
			rec.InFlight = &rc
			rec.InFlightPhase = ""
		case KindPhase:
			if rec.InFlight != nil && r.Epoch == rec.InFlight.Epoch {
				rec.InFlightPhase = r.Phase
			}
		case KindCommit:
			if r.Params != nil {
				p := *r.Params
				rec.Committed = &p
				rec.CommittedEpoch = r.Epoch
			}
			if rec.InFlight != nil && r.Epoch == rec.InFlight.Epoch {
				rec.InFlight = nil
				rec.InFlightPhase = ""
			}
		case KindAbort:
			if rec.InFlight != nil && r.Epoch == rec.InFlight.Epoch {
				rec.InFlight = nil
				rec.InFlightPhase = ""
			}
		}
	}
	return rec, nil
}
