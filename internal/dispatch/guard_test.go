package dispatch

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
)

func TestGuardAdmitsDefaults(t *testing.T) {
	g := NewGuard(GuardConfig{})
	p := dcqcn.DefaultParams()
	if r, _ := g.Admit(&p, &p, 0); r != RejectNone {
		t.Fatalf("default vector rejected: %v", r)
	}
	q := dcqcn.ExpertParams()
	if r, _ := g.Admit(&q, &p, 0); r != RejectNone {
		t.Fatalf("expert vector rejected: %v", r)
	}
	if g.Admitted != 2 || g.Rejects() != 0 {
		t.Fatalf("admitted=%d rejects=%d, want 2/0", g.Admitted, g.Rejects())
	}
}

func TestGuardRejectsBounds(t *testing.T) {
	g := NewGuard(GuardConfig{})
	live := dcqcn.DefaultParams()
	bad := live
	bad.PMax = 1.5 // pmax spec max is 1
	r, spec := g.Admit(&bad, &live, 0)
	if r != RejectBounds {
		t.Fatalf("reason = %v, want RejectBounds", r)
	}
	if got := g.Explain(r, spec); got != "bounds (pmax)" {
		t.Fatalf("Explain = %q", got)
	}
	bad = live
	bad.AIRateBps = 0.5e6 // below ai_rate min 1e6
	if r, _ := g.Admit(&bad, &live, 0); r != RejectBounds {
		t.Fatalf("reason = %v, want RejectBounds", r)
	}
	if g.Rejected[RejectBounds] != 2 {
		t.Fatalf("bounds rejects = %d, want 2", g.Rejected[RejectBounds])
	}
}

func TestGuardRejectsECNOrder(t *testing.T) {
	g := NewGuard(GuardConfig{})
	live := dcqcn.DefaultParams()
	bad := live
	// Both thresholds individually in range but inverted.
	bad.KminBytes = 2000 << 10
	bad.KmaxBytes = 1000 << 10
	if r, _ := g.Admit(&bad, &live, 0); r != RejectOrder {
		t.Fatalf("reason = %v, want RejectOrder", r)
	}
}

func TestGuardRejectsRelStep(t *testing.T) {
	g := NewGuard(GuardConfig{MaxRelStep: 0.5})
	live := dcqcn.DefaultParams()
	big := live
	big.AIRateBps = live.AIRateBps * 4 // 300% jump > 50%
	r, spec := g.Admit(&big, &live, 0)
	if r != RejectStep {
		t.Fatalf("reason = %v, want RejectStep", r)
	}
	if got := g.Explain(r, spec); got != "rel_step (ai_rate)" {
		t.Fatalf("Explain = %q", got)
	}
	small := live
	small.AIRateBps = live.AIRateBps * 1.4
	if r, _ := g.Admit(&small, &live, 0); r != RejectNone {
		t.Fatalf("40%% step rejected: %v", r)
	}
}

func TestGuardRateLimit(t *testing.T) {
	g := NewGuard(GuardConfig{MinGap: eventsim.Millisecond})
	p := dcqcn.DefaultParams()
	if r, _ := g.Admit(&p, &p, 0); r != RejectNone {
		t.Fatalf("first dispatch rejected: %v", r)
	}
	if r, _ := g.Admit(&p, &p, eventsim.Millisecond/2); r != RejectRate {
		t.Fatalf("reason = %v, want RejectRate", r)
	}
	if r, _ := g.Admit(&p, &p, 2*eventsim.Millisecond); r != RejectNone {
		t.Fatalf("post-gap dispatch rejected: %v", r)
	}
}

func TestVectorHash(t *testing.T) {
	p := dcqcn.DefaultParams()
	q := dcqcn.DefaultParams()
	if VectorHash(&p) != VectorHash(&q) {
		t.Fatal("equal vectors hash differently")
	}
	q.KminBytes++
	if VectorHash(&p) == VectorHash(&q) {
		t.Fatal("one-byte Kmin change did not change the hash")
	}
	// Every field must feed the hash.
	muts := []func(*dcqcn.Params){
		func(p *dcqcn.Params) { p.AIRateBps *= 2 },
		func(p *dcqcn.Params) { p.HAIRateBps *= 2 },
		func(p *dcqcn.Params) { p.RPGTimeReset *= 2 },
		func(p *dcqcn.Params) { p.RPGByteReset *= 2 },
		func(p *dcqcn.Params) { p.RPGThreshold++ },
		func(p *dcqcn.Params) { p.RateReduceMonitorPeriod *= 2 },
		func(p *dcqcn.Params) { p.MinRateBps *= 2 },
		func(p *dcqcn.Params) { p.ClampTgtRate = !p.ClampTgtRate },
		func(p *dcqcn.Params) { p.G *= 2 },
		func(p *dcqcn.Params) { p.AlphaUpdateInterval *= 2 },
		func(p *dcqcn.Params) { p.InitialAlpha /= 2 },
		func(p *dcqcn.Params) { p.MinTimeBetweenCNPs *= 2 },
		func(p *dcqcn.Params) { p.KminBytes *= 2 },
		func(p *dcqcn.Params) { p.KmaxBytes *= 2 },
		func(p *dcqcn.Params) { p.PMax /= 2 },
	}
	base := VectorHash(&p)
	for i, mut := range muts {
		q := p
		mut(&q)
		if VectorHash(&q) == base {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}
