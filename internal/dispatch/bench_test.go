package dispatch

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
)

// BenchmarkDispatchPlan pins the per-dispatch admission cost: one full
// guardrail validation (bounds, ECN ordering, relative step, rate
// limit) plus the vector fingerprint every ACK is matched against.
// This runs on every tuner step, so it must stay allocation-free —
// benchjson.py gates allocs/op at zero.
func BenchmarkDispatchPlan(b *testing.B) {
	g := NewGuard(GuardConfig{MaxRelStep: 0.8, MinGap: eventsim.Microsecond})
	live := dcqcn.DefaultParams()
	cand := dcqcn.ExpertParams()
	now := eventsim.Time(0)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 2 * eventsim.Microsecond
		if r, _ := g.Admit(&cand, &live, now); r == RejectNone {
			sink ^= VectorHash(&cand)
		}
	}
	benchSink = sink
}

var benchSink uint64
