package dispatch

import (
	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/telemetry"
)

// Phase is the rollout plan state. Exploration dispatches never leave
// PhaseIdle; a session-settling dispatch walks Canary → Settle →
// Promote and back to Idle on commit or abort.
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseCanary
	PhaseSettle
	PhasePromote
)

// String names the phase for WAL records, traces, and chaos hooks.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseCanary:
		return "canary"
	case PhaseSettle:
		return "settle"
	case PhasePromote:
		return "promote"
	default:
		return "unknown"
	}
}

// Config parameterizes a Pipeline. The zero value means "disabled":
// core.System with a zero Dispatch config keeps its legacy direct-apply
// path, byte-identical to previous builds.
type Config struct {
	// Enabled turns the staged pipeline on.
	Enabled bool
	// Guard bounds admission (see GuardConfig); bounds and ECN-ordering
	// checks are always on once the pipeline is enabled.
	Guard GuardConfig
	// Canary is the canary prefix size in devices (scope ToRs); 0 means 1.
	Canary int
	// SettleIntervals is how many health ticks the canary must survive
	// before promotion; 0 means 3.
	SettleIntervals int
	// MaxPauseFrac aborts the plan when the fabric PFC pause fraction
	// exceeds it during settle; 0 means 0.5.
	MaxPauseFrac float64
	// UtilDropMargin aborts when utility falls more than this below the
	// plan's baseline during settle; 0 disables.
	UtilDropMargin float64
	// MaxKL aborts when the trigger divergence exceeds it during settle;
	// 0 disables.
	MaxKL float64
	// AckDelay is the simulated device ACK latency; 0 means 20 µs.
	AckDelay eventsim.Time
	// AckDeadline bounds each apply wave's wait for quorum; 0 means
	// 10 × AckDelay.
	AckDeadline eventsim.Time
	// AckRetries is how many re-apply waves follow a missed deadline
	// before the plan aborts; 0 means 2.
	AckRetries int
	// QuorumFrac is the fraction of awaited devices that must ACK for a
	// phase to commit; 0 means 1 (all).
	QuorumFrac float64
	// WAL is the intent journal; nil means a fresh MemWAL. Hand the same
	// WAL to a restarted controller to recover an in-flight rollout.
	WAL WAL
	// Fabric is the rollout target set; nil means the owner builds one.
	// Hand the same Fabric to a restarted controller: device epochs are
	// switch state and survive the controller.
	Fabric *Fabric
	// Trace, when non-nil, receives plan/phase spans and reject notes
	// (it must be set before construction so Resume-time recovery is
	// traced too). *trace.Recorder satisfies it.
	Trace TraceSink
}

func (c *Config) canary(n int) int {
	k := c.Canary
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

func (c *Config) settleIntervals() int {
	if c.SettleIntervals <= 0 {
		return 3
	}
	return c.SettleIntervals
}

func (c *Config) maxPauseFrac() float64 {
	if c.MaxPauseFrac <= 0 {
		return 0.5
	}
	return c.MaxPauseFrac
}

func (c *Config) ackDelay() eventsim.Time {
	if c.AckDelay <= 0 {
		return 20 * eventsim.Microsecond
	}
	return c.AckDelay
}

func (c *Config) ackDeadline() eventsim.Time {
	if c.AckDeadline <= 0 {
		return 10 * c.ackDelay()
	}
	return c.AckDeadline
}

func (c *Config) ackRetries() int {
	if c.AckRetries <= 0 {
		return 2
	}
	return c.AckRetries
}

func (c *Config) quorum(awaited int) int {
	frac := c.QuorumFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	need := int(frac*float64(awaited) + 0.999999)
	if need < 1 {
		need = 1
	}
	if need > awaited {
		need = awaited
	}
	return need
}

// Health is the per-interval signal set the settle window watches — all
// three already instrumented by the monitor/controller stack.
type Health struct {
	// Utility is the EWMA-smoothed utility (core.Utility scale).
	Utility float64
	// PauseFrac is the fabric PFC pause fraction in [0,1].
	PauseFrac float64
	// KL is the last trigger divergence.
	KL float64
}

// TraceSink receives pipeline trace events; *trace.Recorder satisfies
// it (declared structurally so dispatch does not import trace).
type TraceSink interface {
	SpanStart(name string, parent uint64) uint64
	SpanEnd(id uint64)
	Note(format string, args ...any)
}

// Status is the /debug/status snapshot of the pipeline, published to
// the telemetry registry on every transition and health tick.
type Status struct {
	Phase          string `json:"phase"`
	Epoch          uint64 `json:"epoch"`
	CommittedEpoch uint64 `json:"committed_epoch"`
	Plans          int    `json:"plans"`
	Commits        int    `json:"commits"`
	Aborts         int    `json:"aborts"`
	Admitted       int    `json:"admitted"`
	Rejects        int    `json:"rejects"`
	LastReject     string `json:"last_reject,omitempty"`
	SettleLeft     int    `json:"settle_left"`
	AckWave        int    `json:"ack_wave"`
	WALReplayed    int    `json:"wal_replayed"`
}

// Pipeline is the controller-side rollout driver. It is single-threaded
// by construction — every entry point runs on the simulation's event
// loop (or the daemon's tick goroutine), like the rest of the control
// loop.
type Pipeline struct {
	cfg   Config
	eng   *eventsim.Engine
	fab   *Fabric
	guard *Guard
	wal   WAL
	apply func(devs []int, p dcqcn.Params)

	reg *telemetry.Registry
	tm  *telemetry.DispatchMetrics

	// Trace, when non-nil, receives plan/phase spans and reject notes.
	Trace TraceSink
	// OnCommit fires with the vector once a plan (or recovery restore)
	// has committed fabric-wide. OnAbort fires with the restored vector
	// and the abort reason.
	OnCommit func(p dcqcn.Params)
	OnAbort  func(restored dcqcn.Params, reason string)

	epoch          uint64
	live           dcqcn.Params // last vector admitted fabric-wide
	committed      dcqcn.Params
	committedEpoch uint64
	haveCommitted  bool

	phase      Phase
	planEpoch  uint64
	target     dcqcn.Params
	targetHash uint64
	prev       dcqcn.Params // restore vector for aborts
	planStart  eventsim.Time
	planSpan   uint64
	phaseSpan  uint64
	recovering bool

	settleLeft   int
	baselineUtil float64
	haveBaseline bool

	await      []int
	acked      []bool
	ackWave    int
	deadlineEv eventsim.EventID
	haveDL     bool

	// ACK fault injection (chaos.DispatchFault).
	ackDrops   []int
	ackDelays  []eventsim.Time
	phaseHooks map[string][]func()

	// Counters mirrored into Status.
	Plans, Commits, Aborts int
	lastReject             string
	walReplayed            int
}

// New builds a pipeline over fab, recovering state from cfg.WAL if it
// holds records. apply pushes a vector to the network devices behind
// the given fabric indices. Call Resume once afterwards with the
// network's live vector to finish recovery (it may dispatch).
func New(cfg Config, eng *eventsim.Engine, fab *Fabric, apply func(devs []int, p dcqcn.Params), reg *telemetry.Registry) *Pipeline {
	if reg == nil {
		reg = telemetry.Default()
	}
	wal := cfg.WAL
	if wal == nil {
		wal = &MemWAL{}
	}
	p := &Pipeline{
		cfg:       cfg,
		eng:       eng,
		fab:       fab,
		guard:     NewGuard(cfg.Guard),
		wal:       wal,
		apply:     apply,
		reg:       reg,
		tm:        telemetry.NewDispatchMetrics(reg),
		Trace:     cfg.Trace,
		acked:     make([]bool, len(fab.Devices)),
		ackDrops:  make([]int, len(fab.Devices)),
		ackDelays: make([]eventsim.Time, len(fab.Devices)),
	}
	return p
}

// Fabric returns the rollout target set.
func (p *Pipeline) Fabric() *Fabric { return p.fab }

// Guard returns the admission guard (for tests and status probes).
func (p *Pipeline) Guard() *Guard { return p.guard }

// Epoch returns the last granted epoch number.
func (p *Pipeline) Epoch() uint64 { return p.epoch }

// CommittedEpoch returns the epoch of the last fabric-wide commit.
func (p *Pipeline) CommittedEpoch() uint64 { return p.committedEpoch }

// Committed returns the last committed vector and whether one exists.
func (p *Pipeline) Committed() (dcqcn.Params, bool) { return p.committed, p.haveCommitted }

// Phase returns the current plan phase.
func (p *Pipeline) Phase() Phase { return p.phase }

// InFlight reports whether a rollout plan is active.
func (p *Pipeline) InFlight() bool { return p.phase != PhaseIdle }

// WALReplayed reports how many journal records Resume folded.
func (p *Pipeline) WALReplayed() int { return p.walReplayed }

// Resume replays the WAL and reconciles. A clean log just seeds the
// live/committed vectors from initial. A log with an orphaned in-flight
// rollout — the controller died between phases — aborts the orphan and
// drives an ACK-confirmed restore of the last committed vector to every
// device, so a fabric left half-updated by the crash converges to
// exactly one epoch.
func (p *Pipeline) Resume(initial dcqcn.Params, now eventsim.Time) error {
	rec, err := Recover(p.wal)
	if err != nil {
		return err
	}
	p.tm.WALReplays.Inc()
	p.tm.WALReplayedRec.Add(int64(rec.Replayed))
	p.walReplayed = rec.Replayed
	p.epoch = rec.Epoch
	if rec.Committed != nil {
		p.committed = *rec.Committed
		p.committedEpoch = rec.CommittedEpoch
		p.haveCommitted = true
	} else {
		p.committed = initial
		p.haveCommitted = false
	}
	p.live = p.committed
	if rec.InFlight == nil {
		p.publish()
		return nil
	}
	// Orphaned rollout: the crash caught epoch rec.InFlight.Epoch
	// somewhere between intent and commit. Abort it in the journal,
	// then re-impose the last committed vector on the whole fabric
	// under a fresh epoch, confirmed by ACK quorum.
	if err := p.append(Record{T: int64(now), Kind: KindAbort, Epoch: rec.InFlight.Epoch, Phase: rec.InFlightPhase, Reason: "recovery"}); err != nil {
		return err
	}
	if p.Trace != nil {
		p.Trace.Note("dispatch_recovery epoch=%d phase=%s: aborting orphaned rollout", rec.InFlight.Epoch, rec.InFlightPhase)
	}
	p.recovering = true
	p.planEpoch = p.grantEpoch(now)
	p.target = p.committed
	p.targetHash = VectorHash(&p.target)
	p.prev = p.committed
	p.planStart = now
	if p.Trace != nil {
		p.planSpan = p.Trace.SpanStart("dispatch_recovery", 0)
	}
	p.enterPhase(PhasePromote, now)
	p.startWave(p.allDevices(), now)
	return nil
}

// SubmitExplore guards and applies an exploration dispatch — an SA step
// inside a session. Admitted vectors go fabric-wide immediately under a
// fresh epoch (exploration is transient by design; the canary machinery
// protects only the session-settling dispatch). Returns false with the
// reason when the guard refused.
func (p *Pipeline) SubmitExplore(cand dcqcn.Params, now eventsim.Time) (bool, RejectReason) {
	if p.phase != PhaseIdle {
		p.reject(RejectInFlight, -1)
		return false, RejectInFlight
	}
	if r, spec := p.guard.Admit(&cand, &p.live, now); r != RejectNone {
		p.reject(r, spec)
		return false, r
	}
	p.tm.Admitted.Inc()
	epoch := p.grantEpoch(now)
	p.applyTo(p.allDevices(), epoch, cand)
	p.live = cand
	p.publish()
	return true, RejectNone
}

// SubmitFinal guards a session-settling dispatch and starts its canary
// rollout plan: apply to the canary prefix, hold SettleIntervals health
// ticks, then promote fabric-wide or abort-and-restore. baselineUtil
// anchors the settle window's utility-drop check.
func (p *Pipeline) SubmitFinal(cand dcqcn.Params, baselineUtil float64, now eventsim.Time) (bool, RejectReason) {
	if p.phase != PhaseIdle {
		p.reject(RejectInFlight, -1)
		return false, RejectInFlight
	}
	if r, spec := p.guard.Admit(&cand, &p.live, now); r != RejectNone {
		p.reject(r, spec)
		return false, r
	}
	p.tm.Admitted.Inc()
	p.Plans++
	p.tm.Plans.Inc()
	p.planEpoch = p.grantEpochQuiet()
	p.target = cand
	p.targetHash = VectorHash(&cand)
	p.prev = p.live
	p.planStart = now
	p.baselineUtil = baselineUtil
	p.haveBaseline = true
	p.recovering = false
	if err := p.append(Record{T: int64(now), Kind: KindIntent, Epoch: p.planEpoch, Params: &p.target, Hash: p.targetHash, Canary: p.canarySize()}); err != nil {
		// A journal that cannot accept the intent must veto the rollout:
		// dispatching unjournaled epochs would fork state on a crash.
		p.Plans--
		p.lastReject = "wal_error"
		return false, RejectNone
	}
	if p.Trace != nil {
		p.planSpan = p.Trace.SpanStart("dispatch_plan", 0)
		p.Trace.Note("dispatch_plan epoch=%d canary=%d hash=%016x", p.planEpoch, p.canarySize(), p.targetHash)
	}
	p.enterPhase(PhaseCanary, now)
	p.startWave(p.canaryDevices(), now)
	return true, RejectNone
}

// Restore force-applies vec fabric-wide under a fresh epoch and records
// it as committed — the rollback path (core.checkRollback) re-imposing
// the last-known-good vector. An active plan is aborted first.
func (p *Pipeline) Restore(vec dcqcn.Params, now eventsim.Time) {
	if p.phase != PhaseIdle {
		p.abort("rollback", now)
	}
	epoch := p.grantEpoch(now)
	p.applyTo(p.allDevices(), epoch, vec)
	p.live = vec
	p.committed = vec
	p.committedEpoch = epoch
	p.haveCommitted = true
	p.append(Record{T: int64(now), Kind: KindCommit, Epoch: epoch, Params: &vec, Hash: VectorHash(&vec), Reason: "restore"})
	p.publish()
}

// Tick advances the settle window with this interval's health signals.
// Call it once per monitor interval on live (non-frozen, non-idle)
// ticks only: a frozen fabric's readings are exactly the kind of
// evidence a canary must not be judged on.
func (p *Pipeline) Tick(h Health, now eventsim.Time) {
	if p.phase != PhaseSettle {
		return
	}
	if h.PauseFrac > p.cfg.maxPauseFrac() {
		p.abortRestore("health_pfc", now)
		return
	}
	if p.cfg.UtilDropMargin > 0 && p.haveBaseline && h.Utility < p.baselineUtil-p.cfg.UtilDropMargin {
		p.abortRestore("health_utility", now)
		return
	}
	if p.cfg.MaxKL > 0 && h.KL > p.cfg.MaxKL {
		p.abortRestore("health_kl", now)
		return
	}
	p.settleLeft--
	if p.settleLeft > 0 {
		p.publish()
		return
	}
	// Canary survived the settle window: promote fabric-wide.
	p.tm.SettleMs.Observe(float64(now-p.planStart) / 1e6)
	p.enterPhase(PhasePromote, now)
	p.startWave(p.allDevices(), now)
}

// FaultAcks arms ACK fault injection on one device: drop its next
// `drop` ACKs and delay the rest by `delay` (chaos.DispatchFault).
func (p *Pipeline) FaultAcks(device, drop int, delay eventsim.Time) {
	if device < 0 || device >= len(p.fab.Devices) {
		return
	}
	p.ackDrops[device] += drop
	p.ackDelays[device] = delay
}

// OnPhaseEnter registers fn to run when the pipeline enters the named
// phase ("canary", "settle", "promote", "idle") — the chaos hook that
// kills a controller at a named phase.
func (p *Pipeline) OnPhaseEnter(phase string, fn func()) {
	if p.phaseHooks == nil {
		p.phaseHooks = make(map[string][]func())
	}
	p.phaseHooks[phase] = append(p.phaseHooks[phase], fn)
}

// --- internals ---

func (p *Pipeline) canarySize() int { return p.cfg.canary(len(p.fab.Devices)) }

func (p *Pipeline) canaryDevices() []int {
	n := p.canarySize()
	devs := make([]int, n)
	for i := range devs {
		devs[i] = i
	}
	return devs
}

func (p *Pipeline) allDevices() []int {
	devs := make([]int, len(p.fab.Devices))
	for i := range devs {
		devs[i] = i
	}
	return devs
}

// grantEpoch issues the next epoch number and journals the grant, so a
// recovered controller never reuses a number some device has seen.
func (p *Pipeline) grantEpoch(now eventsim.Time) uint64 {
	e := p.grantEpochQuiet()
	p.append(Record{T: int64(now), Kind: KindEpoch, Epoch: e})
	return e
}

// grantEpochQuiet issues the next epoch without its own journal record,
// for grants that are journaled as part of a larger record (intents).
func (p *Pipeline) grantEpochQuiet() uint64 {
	p.epoch++
	p.tm.Epochs.Inc()
	return p.epoch
}

func (p *Pipeline) append(r Record) error {
	err := p.wal.Append(r)
	if err == nil {
		p.tm.WALRecords.Inc()
	}
	return err
}

func (p *Pipeline) reject(r RejectReason, spec int) {
	p.tm.Rejects.Inc()
	p.lastReject = p.guard.Explain(r, spec)
	if p.Trace != nil {
		p.Trace.Note("dispatch_reject %s", p.lastReject)
	}
	p.publish()
}

// applyTo offers (epoch, vec) to each listed device and pushes the
// vector to the network for those that accepted it as fresh.
func (p *Pipeline) applyTo(devs []int, epoch uint64, vec dcqcn.Params) []Ack {
	acks := make([]Ack, 0, len(devs))
	pushed := make([]int, 0, len(devs))
	for _, i := range devs {
		ack, fresh := p.fab.Devices[i].Apply(epoch, vec)
		ack.Device = i
		acks = append(acks, ack)
		if fresh {
			pushed = append(pushed, i)
		}
	}
	if len(pushed) > 0 && p.apply != nil {
		p.apply(pushed, vec)
	}
	return acks
}

// startWave applies the plan target to devs and schedules their ACK
// deliveries plus the wave deadline. Drops and delays installed by
// FaultAcks apply here.
func (p *Pipeline) startWave(devs []int, now eventsim.Time) {
	p.await = devs
	for i := range p.acked {
		p.acked[i] = false
	}
	p.ackWave = 0
	p.sendWave(devs, now)
}

func (p *Pipeline) sendWave(devs []int, now eventsim.Time) {
	epoch := p.planEpoch
	acks := p.applyTo(devs, epoch, p.target)
	for _, ack := range acks {
		i := ack.Device
		if p.ackDrops[i] > 0 {
			p.ackDrops[i]--
			if p.Trace != nil {
				p.Trace.Note("dispatch_ack_drop device=%d epoch=%d", i, epoch)
			}
			continue
		}
		a := ack
		p.eng.Schedule(now+p.cfg.ackDelay()+p.ackDelays[i], func() {
			p.onAck(epoch, a)
		})
	}
	p.armDeadline(now)
}

func (p *Pipeline) armDeadline(now eventsim.Time) {
	p.cancelDeadline()
	epoch := p.planEpoch
	wave := p.ackWave
	p.deadlineEv = p.eng.Schedule(now+p.cfg.ackDeadline(), func() {
		p.onDeadline(epoch, wave)
	})
	p.haveDL = true
}

func (p *Pipeline) cancelDeadline() {
	if p.haveDL {
		p.eng.Cancel(p.deadlineEv)
		p.haveDL = false
	}
}

func (p *Pipeline) onAck(epoch uint64, a Ack) {
	if p.phase != PhaseCanary && p.phase != PhasePromote {
		return
	}
	if epoch != p.planEpoch || a.Epoch != p.planEpoch || a.Hash != p.targetHash {
		return
	}
	if !p.acked[a.Device] {
		p.acked[a.Device] = true
		p.tm.Acks.Inc()
	}
	got := 0
	for _, i := range p.await {
		if p.acked[i] {
			got++
		}
	}
	if got < p.cfg.quorum(len(p.await)) {
		return
	}
	p.cancelDeadline()
	now := p.eng.Now()
	switch p.phase {
	case PhaseCanary:
		p.settleLeft = p.cfg.settleIntervals()
		p.enterPhase(PhaseSettle, now)
		p.publish()
	case PhasePromote:
		p.commit(now)
	}
}

func (p *Pipeline) onDeadline(epoch uint64, wave int) {
	if (p.phase != PhaseCanary && p.phase != PhasePromote) || epoch != p.planEpoch || wave != p.ackWave {
		return
	}
	p.haveDL = false
	if p.ackWave >= p.cfg.ackRetries() {
		p.abortRestore("ack_timeout", p.eng.Now())
		return
	}
	p.ackWave++
	p.tm.AckRetries.Inc()
	missing := make([]int, 0, len(p.await))
	for _, i := range p.await {
		if !p.acked[i] {
			missing = append(missing, i)
		}
	}
	if p.Trace != nil {
		p.Trace.Note("dispatch_ack_retry wave=%d epoch=%d missing=%d", p.ackWave, p.planEpoch, len(missing))
	}
	now := p.eng.Now()
	p.sendWave(missing, now)
}

func (p *Pipeline) enterPhase(ph Phase, now eventsim.Time) {
	if p.Trace != nil {
		if p.phaseSpan != 0 {
			p.Trace.SpanEnd(p.phaseSpan)
			p.phaseSpan = 0
		}
		if ph != PhaseIdle {
			p.phaseSpan = p.Trace.SpanStart("dispatch_"+ph.String(), p.planSpan)
		}
	}
	p.phase = ph
	p.tm.Phase.Set(float64(ph))
	if ph != PhaseIdle {
		p.append(Record{T: int64(now), Kind: KindPhase, Epoch: p.planEpoch, Phase: ph.String()})
	}
	p.publish()
	for _, fn := range p.phaseHooks[ph.String()] {
		fn()
	}
}

func (p *Pipeline) commit(now eventsim.Time) {
	reason := ""
	if p.recovering {
		reason = "recovery_restore"
	}
	p.append(Record{T: int64(now), Kind: KindCommit, Epoch: p.planEpoch, Params: &p.target, Hash: p.targetHash, Reason: reason})
	p.committed = p.target
	p.committedEpoch = p.planEpoch
	p.haveCommitted = true
	p.live = p.target
	p.Commits++
	p.tm.Commits.Inc()
	if p.Trace != nil {
		p.Trace.Note("dispatch_commit epoch=%d hash=%016x%s", p.planEpoch, p.targetHash, commitSuffix(reason))
	}
	p.endPlan(now)
	if p.OnCommit != nil {
		p.OnCommit(p.committed)
	}
}

func commitSuffix(reason string) string {
	if reason == "" {
		return ""
	}
	return " reason=" + reason
}

// abortRestore aborts the active plan and re-imposes the pre-plan
// vector on every device the plan touched.
func (p *Pipeline) abortRestore(reason string, now eventsim.Time) {
	restored := p.prev
	p.abort(reason, now)
	if p.OnAbort != nil {
		p.OnAbort(restored, reason)
	}
}

// abort journals the abort and rolls the touched devices back to the
// pre-plan vector under a fresh epoch. It does not fire OnAbort (the
// Restore path aborts without wanting rollback feedback loops).
func (p *Pipeline) abort(reason string, now eventsim.Time) {
	p.append(Record{T: int64(now), Kind: KindAbort, Epoch: p.planEpoch, Phase: p.phase.String(), Reason: reason})
	p.Aborts++
	p.tm.PlanAborts.Inc()
	if p.Trace != nil {
		p.Trace.Note("dispatch_abort epoch=%d phase=%s reason=%s", p.planEpoch, p.phase, reason)
	}
	// Devices that accepted the plan epoch are running the aborted
	// vector; re-impose the pre-plan one under a fresh epoch (fresher
	// than anything dispatched, so every touched device accepts it).
	touched := make([]int, 0, len(p.fab.Devices))
	for i, d := range p.fab.Devices {
		if d.Epoch == p.planEpoch {
			touched = append(touched, i)
		}
	}
	restoreEpoch := p.grantEpoch(now)
	if len(touched) > 0 {
		p.applyTo(touched, restoreEpoch, p.prev)
	}
	p.endPlan(now)
}

func (p *Pipeline) endPlan(now eventsim.Time) {
	p.cancelDeadline()
	p.recovering = false
	p.haveBaseline = false
	p.await = nil
	p.enterPhase(PhaseIdle, now)
	if p.Trace != nil && p.planSpan != 0 {
		p.Trace.SpanEnd(p.planSpan)
		p.planSpan = 0
	}
}

func (p *Pipeline) publish() {
	p.reg.PublishStatus("dispatch", Status{
		Phase:          p.phase.String(),
		Epoch:          p.epoch,
		CommittedEpoch: p.committedEpoch,
		Plans:          p.Plans,
		Commits:        p.Commits,
		Aborts:         p.Aborts,
		Admitted:       p.guard.Admitted,
		Rejects:        p.guard.Rejects(),
		LastReject:     p.lastReject,
		SettleLeft:     p.settleLeft,
		AckWave:        p.ackWave,
		WALReplayed:    p.walReplayed,
	})
}
