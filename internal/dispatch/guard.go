// Package dispatch is the staged, guardrailed, crash-recoverable
// parameter-rollout pipeline between the tuner and the fabric.
//
// A tuned DCQCN vector is the most dangerous artifact the control loop
// produces: one bad setting, pushed fabric-wide, collapses throughput
// everywhere at once. This package makes the push the *safest* part of
// the loop instead of the most fragile:
//
//   - admission guardrails validate every candidate before it leaves the
//     controller (per-parameter bounds, Kmin<Kmax ordering, bounded
//     relative step against the live vector, dispatch-frequency rate
//     limits) — rejects are counted and traced, never silently dropped;
//   - session-settling dispatches become multi-phase canary plans: apply
//     to a deterministic canary subset, hold a settle window watching
//     health signals, then promote fabric-wide or abort-and-restore;
//   - an epoch commit protocol makes applies idempotent: every dispatch
//     carries a monotonically increasing epoch, devices ACK
//     (epoch, vector-hash), phases commit only on ACK quorum within
//     bounded retries, and stale or duplicate applies are rejected
//     idempotently so reordered and retried frames are safe;
//   - a write-ahead intent log journals intent → phase transitions →
//     commit/abort, so a controller restarted mid-rollout replays the
//     log and converges the fabric to exactly one epoch instead of
//     forking its state.
package dispatch

import (
	"fmt"
	"math"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/splitmix"
)

// RejectReason classifies why the guard refused a candidate vector.
// Reasons are small ints (not errors) so the admission check stays
// allocation-free on the dispatch hot path.
type RejectReason int

const (
	// RejectNone means the candidate was admitted.
	RejectNone RejectReason = iota
	// RejectBounds: a parameter is outside its Spec [Min, Max] range.
	RejectBounds
	// RejectOrder: the ECN thresholds violate Kmin < Kmax.
	RejectOrder
	// RejectStep: a parameter moved more than MaxRelStep relative to the
	// live vector in one dispatch.
	RejectStep
	// RejectRate: the dispatch arrived sooner than MinGap after the
	// previous admitted one.
	RejectRate
	// RejectInFlight: a rollout plan is already in flight; concurrent
	// plans would interleave epochs on the same devices.
	RejectInFlight

	numRejectReasons
)

// String names the reason for traces and status snapshots.
func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "admitted"
	case RejectBounds:
		return "bounds"
	case RejectOrder:
		return "ecn_order"
	case RejectStep:
		return "rel_step"
	case RejectRate:
		return "rate_limit"
	case RejectInFlight:
		return "plan_in_flight"
	default:
		return "unknown"
	}
}

// GuardConfig bounds what the admission guard lets through. The
// per-parameter Spec bounds and the Kmin<Kmax ordering check are always
// on; the zero value disables only the step and rate limits.
type GuardConfig struct {
	// MaxRelStep bounds how far any single parameter may move in one
	// dispatch, as a fraction of the live value (PET-style bounded ECN
	// steps, generalized to the whole vector). 0 disables the check.
	MaxRelStep float64
	// MinGap is the minimum virtual time between two admitted
	// dispatches. 0 disables the rate limit.
	MinGap eventsim.Time
}

// Guard validates candidate vectors against the live fabric setting.
// Admit is allocation-free: the Specs table is resolved once at
// construction and verdicts are (reason, spec index) pairs, with the
// human-readable rendering split into Explain off the hot path.
type Guard struct {
	cfg   GuardConfig
	specs []dcqcn.Spec

	lastAt   eventsim.Time
	haveLast bool

	// Admitted counts admissions; Rejected counts refusals by reason.
	Admitted int
	Rejected [numRejectReasons]int
}

// NewGuard builds a guard with the given limits.
func NewGuard(cfg GuardConfig) *Guard {
	return &Guard{cfg: cfg, specs: dcqcn.Specs()}
}

// Admit validates candidate against the live vector at virtual time now.
// It returns (RejectNone, -1) on admission — recording now for the rate
// limit — or the reason plus the offending Specs index (-1 when the
// reason has no single parameter).
func (g *Guard) Admit(candidate, live *dcqcn.Params, now eventsim.Time) (RejectReason, int) {
	if g.cfg.MinGap > 0 && g.haveLast && now-g.lastAt < g.cfg.MinGap {
		g.Rejected[RejectRate]++
		return RejectRate, -1
	}
	for i := range g.specs {
		sp := &g.specs[i]
		v := sp.Get(candidate)
		if v < sp.Min || v > sp.Max {
			g.Rejected[RejectBounds]++
			return RejectBounds, i
		}
		if g.cfg.MaxRelStep > 0 && live != nil {
			lv := sp.Get(live)
			scale := math.Abs(lv)
			if scale == 0 {
				// A parameter whose live value is zero (legal only for
				// floor-at-zero knobs) is measured against its span.
				scale = sp.Max - sp.Min
			}
			if math.Abs(v-lv) > g.cfg.MaxRelStep*scale {
				g.Rejected[RejectStep]++
				return RejectStep, i
			}
		}
	}
	if candidate.KmaxBytes <= candidate.KminBytes {
		g.Rejected[RejectOrder]++
		return RejectOrder, -1
	}
	g.Admitted++
	g.lastAt = now
	g.haveLast = true
	return RejectNone, -1
}

// Explain renders an Admit verdict for logs and traces. It allocates;
// call it only on the reject path.
func (g *Guard) Explain(reason RejectReason, spec int) string {
	if reason == RejectNone {
		return "admitted"
	}
	if spec >= 0 && spec < len(g.specs) {
		return fmt.Sprintf("%s (%s)", reason, g.specs[spec].Name)
	}
	return reason.String()
}

// Rejects returns the total refusal count across all reasons.
func (g *Guard) Rejects() int {
	n := 0
	for _, c := range g.Rejected {
		n += c
	}
	return n
}

// hashMix is the SplitMix64 finalizer, chained per field to fold a
// vector into one 64-bit fingerprint. Not cryptographic — it exists so
// an ACK can name the exact vector it applied and a retried frame with
// a different payload is detectable.
func hashMix(h, v uint64) uint64 {
	return splitmix.Fold(h, v)
}

// VectorHash fingerprints a parameter vector deterministically and
// allocation-free. Devices ACK (epoch, hash); the controller matches the
// hash before counting the ACK toward quorum.
func VectorHash(p *dcqcn.Params) uint64 {
	h := uint64(0x243f6a8885a308d3) // π, for want of a better constant
	h = hashMix(h, math.Float64bits(p.AIRateBps))
	h = hashMix(h, math.Float64bits(p.HAIRateBps))
	h = hashMix(h, uint64(p.RPGTimeReset))
	h = hashMix(h, uint64(p.RPGByteReset))
	h = hashMix(h, uint64(p.RPGThreshold))
	h = hashMix(h, uint64(p.RateReduceMonitorPeriod))
	h = hashMix(h, math.Float64bits(p.MinRateBps))
	if p.ClampTgtRate {
		h = hashMix(h, 1)
	} else {
		h = hashMix(h, 2)
	}
	h = hashMix(h, math.Float64bits(p.G))
	h = hashMix(h, uint64(p.AlphaUpdateInterval))
	h = hashMix(h, math.Float64bits(p.InitialAlpha))
	h = hashMix(h, uint64(p.MinTimeBetweenCNPs))
	h = hashMix(h, uint64(p.KminBytes))
	h = hashMix(h, uint64(p.KmaxBytes))
	h = hashMix(h, math.Float64bits(p.PMax))
	return h
}
