package dispatch

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dcqcn"
)

func TestMemWALRoundTrip(t *testing.T) {
	w := &MemWAL{}
	p := dcqcn.DefaultParams()
	recs := []Record{
		{T: 1, Kind: KindIntent, Epoch: 3, Params: &p, Hash: VectorHash(&p), Canary: 1},
		{T: 2, Kind: KindPhase, Epoch: 3, Phase: "canary"},
		{T: 3, Kind: KindCommit, Epoch: 3, Params: &p, Hash: VectorHash(&p)},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := w.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Epoch != recs[i].Epoch {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestFileWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	p := dcqcn.DefaultParams()
	if err := w.Append(Record{T: 1, Kind: KindIntent, Epoch: 7, Params: &p, Hash: VectorHash(&p)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{T: 2, Kind: KindAbort, Epoch: 7, Phase: "canary", Reason: "health_pfc"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Reopen, as a restarted daemon would.
	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindIntent || got[1].Reason != "health_pfc" {
		t.Fatalf("replay = %+v", got)
	}
	if got[0].Params == nil || got[0].Params.KminBytes != p.KminBytes {
		t.Fatalf("intent params did not survive the file round trip: %+v", got[0].Params)
	}
}

func TestFileWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{T: 1, Kind: KindEpoch, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate a crash mid-append: a torn, undecodable trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":2,"kind":"int`)
	f.Close()

	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("torn tail not skipped: %+v", got)
	}
}

func TestRecoverFolding(t *testing.T) {
	p := dcqcn.DefaultParams()
	q := dcqcn.ExpertParams()

	t.Run("clean_commit", func(t *testing.T) {
		w := &MemWAL{}
		w.Append(Record{T: 1, Kind: KindIntent, Epoch: 1, Params: &p})
		w.Append(Record{T: 2, Kind: KindPhase, Epoch: 1, Phase: "canary"})
		w.Append(Record{T: 3, Kind: KindCommit, Epoch: 1, Params: &p})
		rec, err := Recover(w)
		if err != nil {
			t.Fatal(err)
		}
		if rec.InFlight != nil {
			t.Fatalf("committed rollout reported in flight: %+v", rec.InFlight)
		}
		if rec.Epoch != 1 || rec.CommittedEpoch != 1 || rec.Committed == nil {
			t.Fatalf("recovery = %+v", rec)
		}
	})

	t.Run("orphaned_mid_settle", func(t *testing.T) {
		w := &MemWAL{}
		w.Append(Record{T: 1, Kind: KindCommit, Epoch: 2, Params: &p})
		w.Append(Record{T: 2, Kind: KindIntent, Epoch: 5, Params: &q})
		w.Append(Record{T: 3, Kind: KindPhase, Epoch: 5, Phase: "canary"})
		w.Append(Record{T: 4, Kind: KindPhase, Epoch: 5, Phase: "settle"})
		rec, err := Recover(w)
		if err != nil {
			t.Fatal(err)
		}
		if rec.InFlight == nil || rec.InFlight.Epoch != 5 || rec.InFlightPhase != "settle" {
			t.Fatalf("orphan not detected: %+v", rec)
		}
		if rec.Epoch != 5 {
			t.Fatalf("epoch = %d, want 5", rec.Epoch)
		}
		if rec.Committed == nil || rec.Committed.KminBytes != p.KminBytes || rec.CommittedEpoch != 2 {
			t.Fatalf("committed = %+v @%d", rec.Committed, rec.CommittedEpoch)
		}
	})

	t.Run("aborted_is_not_in_flight", func(t *testing.T) {
		w := &MemWAL{}
		w.Append(Record{T: 1, Kind: KindIntent, Epoch: 3, Params: &q})
		w.Append(Record{T: 2, Kind: KindAbort, Epoch: 3, Reason: "ack_timeout"})
		w.Append(Record{T: 3, Kind: KindEpoch, Epoch: 4})
		rec, err := Recover(w)
		if err != nil {
			t.Fatal(err)
		}
		if rec.InFlight != nil {
			t.Fatalf("aborted rollout reported in flight")
		}
		if rec.Epoch != 4 {
			t.Fatalf("epoch = %d, want 4 (epoch grants count)", rec.Epoch)
		}
	})
}
