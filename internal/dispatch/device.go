package dispatch

import "repro/internal/dcqcn"

// Ack is a device's answer to an apply: the epoch and vector hash it is
// actually running. Applied distinguishes a fresh apply from the
// idempotent re-ACK a duplicate or stale frame earns.
type Ack struct {
	Device  int
	Epoch   uint64
	Hash    uint64
	Applied bool
}

// Device is the agent-side half of the epoch commit protocol: the
// stateful applier that makes retried, duplicated, and reordered
// dispatch frames safe. It accepts an apply only when its epoch is
// strictly newer than the device's, and answers every frame — fresh,
// duplicate, or stale — with the (epoch, hash) it is actually running,
// so the controller can always tell what state the device is in.
type Device struct {
	// Epoch / Hash / Params are the last accepted apply.
	Epoch  uint64
	Hash   uint64
	Params dcqcn.Params
	seen   bool

	// Applies / Dups / Stale count fresh applies, same-epoch
	// re-deliveries, and older-epoch frames.
	Applies, Dups, Stale int
}

// Apply offers (epoch, p) to the device. The returned bool reports
// whether the vector is fresh and must be pushed to the underlying
// hardware; duplicates and stale frames return false and change
// nothing, making every delivery idempotent.
func (d *Device) Apply(epoch uint64, p dcqcn.Params) (Ack, bool) {
	switch {
	case d.seen && epoch < d.Epoch:
		d.Stale++
		return Ack{Epoch: d.Epoch, Hash: d.Hash, Applied: false}, false
	case d.seen && epoch == d.Epoch:
		d.Dups++
		return Ack{Epoch: d.Epoch, Hash: d.Hash, Applied: false}, false
	default:
		d.Epoch = epoch
		d.Hash = VectorHash(&p)
		d.Params = p
		d.seen = true
		d.Applies++
		return Ack{Epoch: epoch, Hash: d.Hash, Applied: true}, true
	}
}

// Fabric is the ordered set of rollout targets — one Device per scope
// ToR, in scope order, so "the canary subset" is a deterministic prefix.
// The harness owns the Fabric and hands it to each controller
// incarnation: device epochs are switch state and survive controller
// restarts, exactly what forces the recovery protocol to reconcile
// rather than assume.
type Fabric struct {
	Devices []*Device
}

// NewFabric builds n fresh devices.
func NewFabric(n int) *Fabric {
	f := &Fabric{Devices: make([]*Device, n)}
	for i := range f.Devices {
		f.Devices[i] = &Device{}
	}
	return f
}

// Epochs returns each device's current epoch, in device order.
func (f *Fabric) Epochs() []uint64 {
	out := make([]uint64, len(f.Devices))
	for i, d := range f.Devices {
		out[i] = d.Epoch
	}
	return out
}

// Converged reports whether every device runs the same (epoch, hash) —
// the "exactly one epoch" acceptance condition of the crash-recovery
// experiment.
func (f *Fabric) Converged() bool {
	if len(f.Devices) == 0 {
		return true
	}
	e, h := f.Devices[0].Epoch, f.Devices[0].Hash
	for _, d := range f.Devices[1:] {
		if d.Epoch != e || d.Hash != h {
			return false
		}
	}
	return true
}
