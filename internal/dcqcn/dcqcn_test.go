package dcqcn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
)

func TestDefaultAndExpertParamsValid(t *testing.T) {
	d := DefaultParams()
	if err := d.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	e := ExpertParams()
	if err := e.Validate(); err != nil {
		t.Errorf("expert params invalid: %v", err)
	}
}

func TestExpertParamsMatchTable1(t *testing.T) {
	e := ExpertParams()
	if e.AIRateBps != 50e6 {
		t.Errorf("ai_rate = %g, want 50 Mbps", e.AIRateBps)
	}
	if e.HAIRateBps != 150e6 {
		t.Errorf("hai_rate = %g, want 150 Mbps", e.HAIRateBps)
	}
	if e.RateReduceMonitorPeriod != 80*eventsim.Microsecond {
		t.Errorf("rate_reduce_monitor_period = %v, want 80us", e.RateReduceMonitorPeriod)
	}
	if e.MinTimeBetweenCNPs != 96*eventsim.Microsecond {
		t.Errorf("min_time_between_cnps = %v, want 96us", e.MinTimeBetweenCNPs)
	}
	if e.KminBytes != 1600<<10 {
		t.Errorf("Kmin = %d, want 1600KB", e.KminBytes)
	}
	if e.KmaxBytes != 6400<<10 {
		t.Errorf("Kmax = %d, want 6400KB", e.KmaxBytes)
	}
	if e.PMax != 0.2 {
		t.Errorf("Pmax = %g, want 0.2", e.PMax)
	}
}

func TestValidateCatchesEachBadField(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.AIRateBps = 0 },
		func(p *Params) { p.HAIRateBps = -1 },
		func(p *Params) { p.RPGTimeReset = 0 },
		func(p *Params) { p.RPGByteReset = 0 },
		func(p *Params) { p.RPGThreshold = 0 },
		func(p *Params) { p.RateReduceMonitorPeriod = -1 },
		func(p *Params) { p.MinRateBps = 0 },
		func(p *Params) { p.G = 0 },
		func(p *Params) { p.G = 1.5 },
		func(p *Params) { p.AlphaUpdateInterval = 0 },
		func(p *Params) { p.InitialAlpha = -0.1 },
		func(p *Params) { p.MinTimeBetweenCNPs = -1 },
		func(p *Params) { p.KmaxBytes = p.KminBytes },
		func(p *Params) { p.PMax = 0 },
		func(p *Params) { p.PMax = 1.1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestMarkProbability(t *testing.T) {
	p := DefaultParams()
	p.KminBytes = 100
	p.KmaxBytes = 200
	p.PMax = 0.5
	cases := []struct {
		q    int64
		want float64
	}{
		{0, 0}, {100, 0}, {150, 0.25}, {200, 1}, {500, 1}, {125, 0.125},
	}
	for _, c := range cases {
		if got := p.MarkProbability(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MarkProbability(%d) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuickMarkProbabilityMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint32) bool {
		qa, qb := int64(a), int64(b)
		if qa > qb {
			qa, qb = qb, qa
		}
		pa, pb := p.MarkProbability(qa), p.MarkProbability(qb)
		return pa <= pb && pa >= 0 && pb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecsCoverAllParams(t *testing.T) {
	specs := Specs()
	if len(specs) < 13 {
		t.Fatalf("only %d specs; the paper tunes 10+ parameters", len(specs))
	}
	seen := map[string]bool{}
	for i := range specs {
		s := &specs[i]
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Min >= s.Max {
			t.Errorf("%s: Min %g >= Max %g", s.Name, s.Min, s.Max)
		}
		if s.Step <= 0 {
			t.Errorf("%s: non-positive step", s.Name)
		}
		if s.ThroughputDir != IncrementForThroughput && s.ThroughputDir != DecrementForThroughput {
			t.Errorf("%s: missing throughput direction", s.Name)
		}
		// Defaults must fall inside the tunable range.
		d := DefaultParams()
		v := s.Get(&d)
		if v < s.Min || v > s.Max {
			t.Errorf("%s: default %g outside [%g,%g]", s.Name, v, s.Min, s.Max)
		}
	}
	for _, name := range []string{"ai_rate", "hai_rate", "rpg_time_reset", "rate_reduce_monitor_period", "min_time_between_cnps", "kmin", "kmax", "pmax"} {
		if !seen[name] {
			t.Errorf("missing spec %q", name)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	p := ExpertParams()
	v := Vector(&p)
	q := FromVector(DefaultParams(), v)
	if q.AIRateBps != p.AIRateBps || q.KmaxBytes != p.KmaxBytes || q.PMax != p.PMax {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestFromVectorClampsAndRepairs(t *testing.T) {
	specs := Specs()
	v := make([]float64, len(specs))
	for i := range v {
		v[i] = 1e18 // absurdly large
	}
	p := FromVector(DefaultParams(), v)
	if err := p.Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
	for i := range v {
		v[i] = -1e18
	}
	p = FromVector(DefaultParams(), v)
	// Kmin == its min, Kmax must have been repaired above Kmin.
	if p.KmaxBytes <= p.KminBytes {
		t.Errorf("Kmin/Kmax ordering not repaired: %d/%d", p.KminBytes, p.KmaxBytes)
	}
}

func TestSpecByName(t *testing.T) {
	if SpecByName("hai_rate") == nil {
		t.Error("hai_rate spec missing")
	}
	if SpecByName("no_such_param") != nil {
		t.Error("bogus name returned a spec")
	}
}

// --- RP state machine ---

func newTestRP(p Params) (*eventsim.Engine, *RP, *Params) {
	eng := eventsim.NewEngine(7)
	live := p
	rp := NewRP(eng, func() *Params { return &live }, 100e9)
	return eng, rp, &live
}

func TestRPStartsAtLineRate(t *testing.T) {
	_, rp, _ := newTestRP(DefaultParams())
	if rp.Rate() != 100e9 {
		t.Errorf("initial rate = %g, want line rate", rp.Rate())
	}
	if rp.Alpha() != 1 {
		t.Errorf("initial alpha = %g, want InitialAlpha=1", rp.Alpha())
	}
}

func TestRPCutOnCNP(t *testing.T) {
	eng, rp, _ := newTestRP(DefaultParams())
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	before := rp.Rate()
	rp.OnCNP()
	// alpha was 1 and was re-raised toward 1, so the cut is ~rc/2.
	if rp.Rate() >= before {
		t.Errorf("rate did not fall on CNP: %g -> %g", before, rp.Rate())
	}
	if rp.Rate() < before*0.45 || rp.Rate() > before*0.55 {
		t.Errorf("cut with alpha≈1 gave %g, want ≈ %g/2", rp.Rate(), before)
	}
	if rp.Cuts != 1 {
		t.Errorf("Cuts = %d, want 1", rp.Cuts)
	}
}

func TestRPRateReduceMonitorPeriodThrottlesCuts(t *testing.T) {
	p := DefaultParams()
	p.RateReduceMonitorPeriod = 100 * eventsim.Microsecond
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(10 * eventsim.Microsecond)
	rp.OnCNP()
	rp.OnCNP() // same instant: throttled
	if rp.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1 (second CNP within monitor period)", rp.Cuts)
	}
	eng.RunUntil(eng.Now() + 50*eventsim.Microsecond)
	rp.OnCNP() // still inside the period
	if rp.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1 after 50us", rp.Cuts)
	}
	eng.RunUntil(eng.Now() + 60*eventsim.Microsecond)
	rp.OnCNP() // past the period
	if rp.Cuts != 2 {
		t.Errorf("Cuts = %d, want 2 after period elapsed", rp.Cuts)
	}
}

func TestRPAlphaDecaysWithoutCNPs(t *testing.T) {
	p := DefaultParams()
	eng, rp, _ := newTestRP(p)
	rp.Start()
	a0 := rp.Alpha()
	eng.RunUntil(20 * p.AlphaUpdateInterval)
	if rp.Alpha() >= a0 {
		t.Errorf("alpha did not decay: %g -> %g", a0, rp.Alpha())
	}
	want := a0 * math.Pow(1-p.G, 20)
	if math.Abs(rp.Alpha()-want) > 1e-9 {
		t.Errorf("alpha = %g, want %g after 20 decay periods", rp.Alpha(), want)
	}
}

func TestRPAlphaRisesOnCNP(t *testing.T) {
	p := DefaultParams()
	p.InitialAlpha = 0
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	rp.OnCNP()
	if rp.Alpha() != p.G {
		t.Errorf("alpha after first CNP = %g, want g = %g", rp.Alpha(), p.G)
	}
}

func TestRPFastRecoveryClimbsTowardTarget(t *testing.T) {
	p := DefaultParams()
	p.RPGTimeReset = 10 * eventsim.Microsecond
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	rp.OnCNP()
	cut := rp.Rate()
	target := rp.TargetRate()
	// One timer elapse → one fast-recovery step: rc = (rc+rt)/2.
	eng.RunUntil(eng.Now() + p.RPGTimeReset + eventsim.Microsecond)
	want := (cut + target) / 2
	if math.Abs(rp.Rate()-want)/want > 0.01 {
		t.Errorf("after 1 fast recovery rate = %g, want %g", rp.Rate(), want)
	}
	// After many elapses the rate converges to the target.
	eng.RunUntil(eng.Now() + 20*p.RPGTimeReset)
	if rp.Rate() < target*0.99 {
		t.Errorf("rate %g did not converge to target %g", rp.Rate(), target)
	}
}

func TestRPHyperIncreaseAfterThreshold(t *testing.T) {
	p := DefaultParams()
	p.RPGThreshold = 2
	p.RPGTimeReset = 10 * eventsim.Microsecond
	p.HAIRateBps = 1e9
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	rp.OnCNP()
	rp.OnCNP() // drive the rate down hard
	// Feed byte-counter stages past threshold, and let timer stages pass
	// threshold too; then hyper increase should kick in.
	rp.OnBytesSent(3 * p.RPGByteReset)
	eng.RunUntil(eng.Now() + 5*p.RPGTimeReset)
	if rp.TargetRate() <= 50e9 {
		t.Errorf("target rate %g did not hyper-increase", rp.TargetRate())
	}
}

func TestRPByteCounterStages(t *testing.T) {
	p := DefaultParams()
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	rp.OnCNP()
	inc0 := rp.Increases
	rp.OnBytesSent(p.RPGByteReset - 1)
	if rp.Increases != inc0 {
		t.Error("increase fired before byte counter filled")
	}
	rp.OnBytesSent(1)
	if rp.Increases != inc0+1 {
		t.Errorf("Increases = %d, want %d after byte counter filled", rp.Increases, inc0+1)
	}
	// A large burst spanning several quanta yields several stages.
	rp.OnBytesSent(3 * p.RPGByteReset)
	if rp.Increases != inc0+4 {
		t.Errorf("Increases = %d, want %d after 3-quantum burst", rp.Increases, inc0+4)
	}
}

func TestRPNeverBelowMinRate(t *testing.T) {
	p := DefaultParams()
	p.RateReduceMonitorPeriod = 0
	eng, rp, _ := newTestRP(p)
	rp.Start()
	for i := 0; i < 200; i++ {
		eng.RunUntil(eng.Now() + eventsim.Microsecond)
		rp.OnCNP()
	}
	if rp.Rate() < p.MinRateBps {
		t.Errorf("rate %g fell below min rate %g", rp.Rate(), p.MinRateBps)
	}
}

func TestRPNeverAboveLineRate(t *testing.T) {
	p := DefaultParams()
	p.RPGTimeReset = 5 * eventsim.Microsecond
	p.HAIRateBps = 5e9
	eng, rp, _ := newTestRP(p)
	rp.Start()
	eng.RunUntil(10 * eventsim.Millisecond)
	if rp.Rate() > 100e9 {
		t.Errorf("rate %g exceeded line rate", rp.Rate())
	}
	if rp.TargetRate() > 100e9 {
		t.Errorf("target %g exceeded line rate", rp.TargetRate())
	}
}

func TestRPStopCancelsTimers(t *testing.T) {
	p := DefaultParams()
	eng, rp, _ := newTestRP(p)
	rp.Start()
	rp.Stop()
	if rp.Running() {
		t.Error("Running() true after Stop")
	}
	eng.RunUntil(10 * eventsim.Millisecond)
	if rp.Increases != 0 {
		t.Errorf("timer fired after Stop: %d increases", rp.Increases)
	}
	// Start again must work.
	rp.Start()
	eng.RunUntil(eng.Now() + 2*p.RPGTimeReset + eventsim.Microsecond)
	if rp.Increases == 0 {
		t.Error("no increases after restart")
	}
}

func TestRPLiveParamSwap(t *testing.T) {
	p := DefaultParams()
	p.ClampTgtRate = true // pull the target down on cuts so increases are visible
	eng, rp, live := newTestRP(p)
	rp.Start()
	eng.RunUntil(eventsim.Microsecond)
	rp.OnCNP()
	eng.RunUntil(eng.Now() + 10*eventsim.Microsecond)
	rp.OnCNP() // target now well below line rate
	if rp.TargetRate() >= 100e9 {
		t.Fatalf("setup failed: target %g still at line rate", rp.TargetRate())
	}
	// Swap in a 100x larger AI step with threshold 1; the next additive
	// increase must use the new values.
	live.AIRateBps = 500e6
	live.RPGThreshold = 1
	rtBefore := rp.TargetRate()
	eng.RunUntil(eng.Now() + 3*live.RPGTimeReset + eventsim.Microsecond)
	if rp.TargetRate() < rtBefore+400e6 {
		t.Errorf("live param swap ignored: target moved %g -> %g", rtBefore, rp.TargetRate())
	}
}

// Property: under any CNP/byte/timer interleaving, rate stays within
// [MinRate, line rate] and alpha within [0, 1].
func TestQuickRPInvariants(t *testing.T) {
	p := DefaultParams()
	f := func(ops []byte) bool {
		eng, rp, _ := newTestRP(p)
		rp.Start()
		for _, op := range ops {
			eng.RunUntil(eng.Now() + eventsim.Time(op%50)*eventsim.Microsecond)
			switch op % 3 {
			case 0:
				rp.OnCNP()
			case 1:
				rp.OnBytesSent(int64(op) * 1024)
			case 2:
				// just let timers run
			}
			if rp.Rate() < p.MinRateBps || rp.Rate() > 100e9 {
				return false
			}
			if rp.Alpha() < 0 || rp.Alpha() > 1 {
				return false
			}
			if rp.TargetRate() > 100e9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- NP state machine ---

func TestNPPacesCNPs(t *testing.T) {
	p := DefaultParams()
	p.MinTimeBetweenCNPs = 50 * eventsim.Microsecond
	np := NewNP(func() *Params { return &p })
	if !np.OnECNMarked(0) {
		t.Fatal("first marked packet must produce a CNP")
	}
	if np.OnECNMarked(10 * eventsim.Microsecond) {
		t.Error("CNP inside pacing window")
	}
	if np.OnECNMarked(49 * eventsim.Microsecond) {
		t.Error("CNP just inside pacing window")
	}
	if !np.OnECNMarked(50 * eventsim.Microsecond) {
		t.Error("CNP at window boundary suppressed")
	}
	if np.Marked != 4 || np.CNPs != 2 {
		t.Errorf("Marked/CNPs = %d/%d, want 4/2", np.Marked, np.CNPs)
	}
}

func TestNPZeroPacingSendsEveryTime(t *testing.T) {
	p := DefaultParams()
	p.MinTimeBetweenCNPs = 0
	np := NewNP(func() *Params { return &p })
	for i := 0; i < 5; i++ {
		if !np.OnECNMarked(eventsim.Time(i)) {
			t.Fatalf("CNP %d suppressed with zero pacing", i)
		}
	}
}

// Property: CNP count never exceeds marked count, and with pacing window w
// the CNP rate is bounded by elapsed/w + 1.
func TestQuickNPPacingBound(t *testing.T) {
	f := func(gaps []uint16) bool {
		p := DefaultParams()
		p.MinTimeBetweenCNPs = 30 * eventsim.Microsecond
		np := NewNP(func() *Params { return &p })
		now := eventsim.Time(0)
		for _, g := range gaps {
			now += eventsim.Time(g) * eventsim.Nanosecond
			np.OnECNMarked(now)
		}
		if np.CNPs > np.Marked {
			return false
		}
		maxCNPs := int(now/p.MinTimeBetweenCNPs) + 1
		return len(gaps) == 0 || np.CNPs <= maxCNPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
