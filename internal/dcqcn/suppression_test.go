package dcqcn

import (
	"testing"

	"repro/internal/eventsim"
)

// suppressionScript drives one RP through a scripted sequence of waits,
// CNPs, and byte credits, snapshotting (now, rc, rt, alpha) after every
// op. Two RPs fed the same script must produce identical snapshots
// whether or not suppression is on — that is the invariance contract
// SetSuppression documents.
type rpSnapshot struct {
	now        eventsim.Time
	rc, rt, al float64
	cuts       int
}

type rpOp struct {
	wait  eventsim.Time // advance virtual time before acting
	cnp   bool
	bytes int64
}

func runRPScript(p Params, suppress bool, script []rpOp) ([]rpSnapshot, *eventsim.Engine) {
	eng := eventsim.NewEngine(1)
	live := p
	rp := NewRP(eng, func() *Params { return &live }, 100e9)
	rp.SetSuppression(suppress)
	rp.Start()
	snaps := make([]rpSnapshot, 0, len(script))
	for _, op := range script {
		if op.wait > 0 {
			eng.RunUntil(eng.Now() + op.wait)
		}
		if op.cnp {
			rp.OnCNP()
		}
		if op.bytes > 0 {
			rp.OnBytesSent(op.bytes)
		}
		snaps = append(snaps, rpSnapshot{eng.Now(), rp.Rate(), rp.TargetRate(), rp.Alpha(), rp.Cuts})
	}
	return snaps, eng
}

func diffSnapshots(t *testing.T, plain, sup []rpSnapshot) {
	t.Helper()
	if len(plain) != len(sup) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(plain), len(sup))
	}
	for i := range plain {
		if plain[i] != sup[i] {
			t.Fatalf("op %d diverges:\n  plain: %+v\n  supp:  %+v", i, plain[i], sup[i])
		}
	}
}

// quiescenceScript exercises every suppression transition: congestion
// (cuts pull rc off line rate, CNPs pump alpha up), recovery back to
// line rate (increase timer parks), a long idle stretch (alpha decays
// through the snap floor to exactly 0, alpha timer parks), then a fresh
// CNP burst landing mid-grid (both timers must unpark on the schedule a
// never-parked RP would have kept), and a final idle tail.
func quiescenceScript(p Params) []rpOp {
	us := eventsim.Microsecond
	ops := []rpOp{
		{wait: 3 * us, cnp: true},
		{wait: p.RateReduceMonitorPeriod + us, cnp: true},
		{bytes: p.RPGByteReset * 2},
	}
	// Recovery + decay: long enough for rc to climb back to line rate
	// (fast recovery reaches exactly line rate in ~45 fires) and — when G
	// is large enough to decay alpha to the snap floor within the window —
	// for the alpha timer to park too.
	ops = append(ops, rpOp{wait: 600 * p.AlphaUpdateInterval})
	// CNP at an instant that is NOT a multiple of either timer interval:
	// the unpark grid replay has to get the phase right, not just "soon".
	ops = append(ops,
		rpOp{wait: p.AlphaUpdateInterval/3 + 7, cnp: true},
		rpOp{wait: p.AlphaUpdateInterval / 2},
		rpOp{wait: p.RateReduceMonitorPeriod + us, cnp: true},
		rpOp{bytes: p.RPGByteReset},
		// Second quiescence window, then a last CNP to re-check unpark.
		rpOp{wait: 600 * p.AlphaUpdateInterval},
		rpOp{wait: 13, cnp: true},
		rpOp{wait: 20 * p.AlphaUpdateInterval},
	)
	return ops
}

func TestRPSuppressionTraceInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Params)
	}{
		{"default", func(p *Params) {}},
		// InitialAlpha 0 parks both timers at Start (the common case for
		// fleet-scale idle QPs) — the whole point of suppression.
		{"initial-alpha-0", func(p *Params) { p.InitialAlpha = 0 }},
		{"clamp-tgt", func(p *Params) { p.ClampTgtRate = true }},
		// G=1/2 decays alpha to the snap floor in ~70 intervals, so the
		// script's idle stretches exercise decay-to-zero parking and the
		// mid-grid CNP unpark — default G (1/256) would need ~11k
		// intervals to get there.
		{"fast-decay", func(p *Params) { p.G = 0.5; p.InitialAlpha = 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			script := quiescenceScript(p)
			plain, _ := runRPScript(p, false, script)
			sup, _ := runRPScript(p, true, script)
			diffSnapshots(t, plain, sup)
		})
	}
}

// The invariance must hold under arbitrary interleavings, not just the
// handcrafted script: random waits (including long quiescent stretches),
// CNPs, and byte credits.
func TestRPSuppressionInvariantRandomized(t *testing.T) {
	p := DefaultParams()
	p.InitialAlpha = 0
	p.G = 0.5 // fast decay: long gaps actually re-park the alpha timer
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 20; trial++ {
		script := make([]rpOp, 0, 40)
		for i := 0; i < 40; i++ {
			r := next()
			op := rpOp{wait: eventsim.Time(r % uint64(5*p.AlphaUpdateInterval))}
			if r%7 == 0 {
				// Occasional long idle gap to force a park.
				op.wait = eventsim.Time(500+r%200) * p.AlphaUpdateInterval
			}
			switch r % 3 {
			case 0:
				op.cnp = true
			case 1:
				op.bytes = int64(r % uint64(2*p.RPGByteReset))
			}
			script = append(script, op)
		}
		plain, _ := runRPScript(p, false, script)
		sup, _ := runRPScript(p, true, script)
		diffSnapshots(t, plain, sup)
	}
}

// Suppression must actually remove work: an idle QP parked at line rate
// with alpha decayed schedules nothing, so the engine drains.
func TestRPSuppressionParksTimers(t *testing.T) {
	p := DefaultParams()
	p.InitialAlpha = 0
	// Fast alpha decay so the post-CNP re-quiescing fits in a short run
	// (default G would take ~11k intervals to reach the snap floor).
	p.G = 0.5
	eng := eventsim.NewEngine(1)
	rp := NewRP(eng, func() *Params { return &p }, 100e9)
	rp.SetSuppression(true)
	rp.Start()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("quiescent RP armed %d timers at Start, want 0 (parked)", got)
	}
	// A CNP wakes both timers...
	eng.RunUntil(5 * eventsim.Microsecond)
	rp.OnCNP()
	if got := eng.Pending(); got != 2 {
		t.Fatalf("Pending = %d after CNP, want 2 (both timers live)", got)
	}
	// ...and a long quiet run parks them again.
	eng.RunUntil(eng.Now() + 600*p.AlphaUpdateInterval)
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Pending = %d after re-quiescing, want 0", got)
	}
	if rp.Rate() != 100e9 || rp.Alpha() != 0 {
		t.Fatalf("parked state rc=%g alpha=%g, want line rate / 0", rp.Rate(), rp.Alpha())
	}
	// Disabling suppression mid-park must re-arm both timers.
	rp.SetSuppression(false)
	if got := eng.Pending(); got != 2 {
		t.Fatalf("Pending = %d after SetSuppression(false), want 2", got)
	}
	rp.Stop()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Stop, want 0", got)
	}
}

// The alpha unpark replays the original fire grid: a CNP landing between
// two would-be fires re-arms at the NEXT grid point, not now+interval.
func TestRPSuppressionAlphaGridPhase(t *testing.T) {
	p := DefaultParams()
	p.InitialAlpha = 0
	i := p.AlphaUpdateInterval
	eng := eventsim.NewEngine(1)
	rp := NewRP(eng, func() *Params { return &p }, 100e9)
	rp.SetSuppression(true)
	rp.Start() // parks immediately; alphaAnchor = 0
	// CNP at 2.5 intervals in: the grid a never-parked RP keeps is
	// {i, 2i, 3i, ...}, so the next decay must land at exactly 3i.
	at := 2*i + i/2
	eng.RunUntil(at)
	rp.OnCNP()
	alphaAfterCNP := rp.Alpha()
	if alphaAfterCNP != p.G {
		t.Fatalf("alpha after CNP = %g, want G = %g", alphaAfterCNP, p.G)
	}
	if next, ok := eng.NextEventTime(); !ok || next != 3*i {
		t.Fatalf("alpha re-armed at %v (ok=%v), want grid point %v", next, ok, 3*i)
	}
	// The 3i fire sees cnpSinceAlpha and skips the decay; the 4i fire —
	// still on the original grid — applies it.
	eng.RunUntil(3 * i)
	if rp.Alpha() != alphaAfterCNP {
		t.Fatalf("alpha after cnp-flagged fire = %g, want unchanged %g", rp.Alpha(), alphaAfterCNP)
	}
	eng.RunUntil(4 * i)
	want := alphaAfterCNP * (1 - p.G)
	if rp.Alpha() != want {
		t.Fatalf("alpha after grid fire = %g, want %g", rp.Alpha(), want)
	}
}
