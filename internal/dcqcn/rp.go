package dcqcn

import (
	"math"

	"repro/internal/eventsim"
)

// RP is the Reaction Point state machine for one QP: the sender-side AIMD
// loop of DCQCN. It owns two recurring timers (the rate-increase timer and
// the alpha-decay timer) on the simulation engine while started.
//
// Parameters are read through a func so that a centralized tuner can swap
// the live Params without touching every QP: the next timer or CNP simply
// observes the new values.
type RP struct {
	eng    *eventsim.Engine
	params func() *Params

	lineRateBps float64

	rc, rt float64 // current and target rate, bps
	alpha  float64

	bcStage, tStage int   // byte-counter and timer stages since last cut
	byteCounter     int64 // bytes toward the next byte-counter stage
	hyperCount      int   // consecutive hyper-increase events

	lastCut           eventsim.Time
	everCut           bool
	cnpSinceAlpha     bool
	increasedSinceCut bool

	// timerFn and alphaFn are the persistent timer handlers, built once in
	// NewRP so each re-arm schedules without allocating a closure.
	timerFn, alphaFn eventsim.Handler
	timerEv, alphaEv eventsim.EventID
	running          bool

	// Quiescent-timer suppression (SetSuppression). A QP pinned at line
	// rate with alpha fully decayed changes no observable state on timer
	// fires, so the timers park instead of re-arming and unpark lazily on
	// the next CNP. timerParked/alphaParked record the parked timers;
	// alphaAnchor is the virtual time of the alpha timer's last fire, the
	// grid origin the lazy re-arm replays from.
	suppress    bool
	timerParked bool
	alphaParked bool
	alphaAnchor eventsim.Time

	// Cuts and Increases count rate-decrease and rate-increase events;
	// exported for tests and overhead accounting.
	Cuts, Increases int
}

// alphaSnapFloor is the decay threshold below which alpha snaps to
// exactly 0. The snap is float-exact for every observable computation:
// below 1e-21, alpha is under half an ulp of any tunable G (Specs() floors
// g at 1/1024, ulp(2^-10)/2 ≈ 1.1e-19), so the CNP update
// (1-G)*alpha + G rounds to the same double either way, and the cut
// factor 1 - alpha/2 rounds to exactly 1.0. Snapping therefore changes
// no trace — it only gives "fully decayed" a representable fixed point
// the suppression path can park on.
const alphaSnapFloor = 1e-21

// NewRP returns a reaction point sending at line rate with alpha seeded
// from the current parameters. params must never return nil.
func NewRP(eng *eventsim.Engine, params func() *Params, lineRateBps float64) *RP {
	p := params()
	rp := &RP{
		eng:         eng,
		params:      params,
		lineRateBps: lineRateBps,
		rc:          lineRateBps,
		rt:          lineRateBps,
		alpha:       p.InitialAlpha,
	}
	rp.timerFn = func() {
		if !rp.running {
			return
		}
		rp.tStage++
		rp.increaseEvent()
		// Park once the QP is pinned at line rate: every further fire
		// would only bump stage counters that the next cut resets before
		// anything reads them, so skipping the fires is trace-invariant
		// (see SetSuppression). OnCNP re-arms on the cut path.
		if rp.suppress && rp.rc >= rp.lineRateBps && rp.rt >= rp.lineRateBps {
			rp.timerParked = true
			return
		}
		rp.armIncreaseTimer()
	}
	rp.alphaFn = func() {
		if !rp.running {
			return
		}
		if !rp.cnpSinceAlpha {
			rp.alpha *= 1 - rp.params().G
			if rp.alpha < alphaSnapFloor {
				rp.alpha = 0
			}
		}
		rp.cnpSinceAlpha = false
		// Fully decayed: further decays are no-ops, so park and let the
		// next CNP replay the fire grid from this anchor.
		if rp.suppress && rp.alpha == 0 {
			rp.alphaParked = true
			rp.alphaAnchor = rp.eng.Now()
			return
		}
		rp.armAlphaTimer()
	}
	return rp
}

// SetSuppression enables quiescent-QP timer suppression: when the QP
// sits at line rate (increase timer) or alpha has fully decayed to 0
// (alpha timer), the timer parks instead of re-arming, and the next CNP
// re-arms it lazily. Parking is trace-invariant: a parked timer's fires
// would only have touched state that is either invisible until the next
// cut resets it (tStage, hyperCount at clamped line rate) or already at
// its fixed point (alpha 0), and event ordering is purely comparative,
// so removing the fires shifts no surviving event relative to another.
// The only observable divergence is the Increases statistics counter,
// which stops counting clamped no-op increases while parked. The alpha
// re-arm replays the original fire grid from the last fire, exact as
// long as alpha_update_interval is not retuned mid-park (a retune
// re-phases the grid by less than one interval once).
func (rp *RP) SetSuppression(on bool) {
	rp.suppress = on
	if !on && rp.running {
		if rp.timerParked {
			rp.timerParked = false
			rp.armIncreaseTimer()
		}
		if rp.alphaParked {
			rp.unparkAlpha()
		}
	}
}

// Rate reports the current sending rate in bps.
func (rp *RP) Rate() float64 { return rp.rc }

// TargetRate reports the target rate in bps.
func (rp *RP) TargetRate() float64 { return rp.rt }

// Alpha reports the congestion estimate.
func (rp *RP) Alpha() float64 { return rp.alpha }

// Running reports whether the RP timers are armed.
func (rp *RP) Running() bool { return rp.running }

// Start arms the increase and alpha timers. It is idempotent. Under
// suppression a QP that is already quiescent (line rate, alpha at 0 —
// e.g. InitialAlpha 0) parks its timers immediately instead of arming
// them: every skipped fire would have been a no-op, and the unpark
// paths restore the exact schedules a never-parked QP would have.
func (rp *RP) Start() {
	if rp.running {
		return
	}
	rp.running = true
	if rp.suppress && rp.rc >= rp.lineRateBps && rp.rt >= rp.lineRateBps {
		rp.timerParked = true
	} else {
		rp.armIncreaseTimer()
	}
	if rp.suppress && rp.alpha == 0 {
		rp.alphaParked = true
		rp.alphaAnchor = rp.eng.Now()
	} else {
		rp.armAlphaTimer()
	}
}

// Stop cancels the timers; the QP went idle or its flow finished.
func (rp *RP) Stop() {
	if !rp.running {
		return
	}
	rp.running = false
	rp.eng.Cancel(rp.timerEv)
	rp.eng.Cancel(rp.alphaEv)
	rp.timerParked = false
	rp.alphaParked = false
}

// The arm helpers rearm through the timing wheel: on the fire path the
// old id is stale and this schedules afresh; on the OnCNP restart path
// the live timer is rescheduled in place, O(1) instead of heap churn.
func (rp *RP) armIncreaseTimer() {
	rp.timerEv = rp.eng.RearmAfter(rp.timerEv, rp.params().RPGTimeReset, rp.timerFn)
}

func (rp *RP) armAlphaTimer() {
	rp.alphaEv = rp.eng.RearmAfter(rp.alphaEv, rp.params().AlphaUpdateInterval, rp.alphaFn)
}

// unparkAlpha re-arms a parked alpha timer on the fire grid it would
// have kept had it never parked: the first multiple of the update
// interval strictly after now, counted from the last fire. Strictly
// after, because a fire scheduled at the CNP's own instant would have
// run before the CNP (it was scheduled far earlier) and re-armed +I.
func (rp *RP) unparkAlpha() {
	rp.alphaParked = false
	i := rp.params().AlphaUpdateInterval
	k := (rp.eng.Now()-rp.alphaAnchor)/i + 1
	rp.alphaEv = rp.eng.RearmAt(rp.alphaEv, rp.alphaAnchor+k*i, rp.alphaFn)
}

// OnCNP handles a congestion notification from the NP. The alpha estimate
// rises immediately; the multiplicative cut is throttled by
// rate_reduce_monitor_period.
func (rp *RP) OnCNP() {
	p := rp.params()
	rp.cnpSinceAlpha = true
	rp.alpha = (1-p.G)*rp.alpha + p.G
	// Alpha is no longer at its decayed fixed point: resume the decay
	// grid before the throttle can swallow the rest of this CNP.
	if rp.alphaParked && rp.running {
		rp.unparkAlpha()
	}
	now := rp.eng.Now()
	if rp.everCut && now-rp.lastCut < p.RateReduceMonitorPeriod {
		return
	}
	// Cut. clamp_tgt_rate pulls the target down every time; otherwise the
	// target only resets if the rate has climbed since the last cut, so a
	// stable flow can spring back to its old target quickly.
	if p.ClampTgtRate || rp.increasedSinceCut {
		rp.rt = rp.rc
	}
	rp.rc = math.Max(p.MinRateBps, rp.rc*(1-rp.alpha/2))
	rp.lastCut = now
	rp.everCut = true
	rp.increasedSinceCut = false
	rp.bcStage, rp.tStage = 0, 0
	rp.byteCounter = 0
	rp.hyperCount = 0
	rp.Cuts++
	// The DCQCN increase timer restarts on a cut: one reschedule-in-place
	// (or a fresh schedule when it was parked at line rate) instead of
	// the historical Cancel+After pair — same one sequence number, no
	// heap churn.
	if rp.running {
		rp.timerParked = false
		rp.armIncreaseTimer()
	}
}

// OnBytesSent credits transmitted bytes toward byte-counter stages. The
// caller invokes it per packet.
func (rp *RP) OnBytesSent(n int64) {
	p := rp.params()
	rp.byteCounter += n
	for rp.byteCounter >= p.RPGByteReset {
		rp.byteCounter -= p.RPGByteReset
		rp.bcStage++
		rp.increaseEvent()
	}
}

// increaseEvent applies one DCQCN rate-increase step: fast recovery while
// both stage counters are below F, hyper increase once both are at or
// beyond F, additive increase otherwise.
func (rp *RP) increaseEvent() {
	p := rp.params()
	f := p.RPGThreshold
	switch {
	case rp.bcStage < f && rp.tStage < f:
		// Fast recovery: halve toward the target.
	case rp.bcStage >= f && rp.tStage >= f:
		rp.hyperCount++
		rp.rt += float64(rp.hyperCount) * p.HAIRateBps
	default:
		rp.rt += p.AIRateBps
	}
	if rp.rt > rp.lineRateBps {
		rp.rt = rp.lineRateBps
	}
	rp.rc = (rp.rc + rp.rt) / 2
	if rp.rc > rp.lineRateBps {
		rp.rc = rp.lineRateBps
	}
	if rp.rc < p.MinRateBps {
		rp.rc = p.MinRateBps
	}
	rp.increasedSinceCut = true
	rp.Increases++
}
