package dcqcn

import (
	"math"

	"repro/internal/eventsim"
)

// RP is the Reaction Point state machine for one QP: the sender-side AIMD
// loop of DCQCN. It owns two recurring timers (the rate-increase timer and
// the alpha-decay timer) on the simulation engine while started.
//
// Parameters are read through a func so that a centralized tuner can swap
// the live Params without touching every QP: the next timer or CNP simply
// observes the new values.
type RP struct {
	eng    *eventsim.Engine
	params func() *Params

	lineRateBps float64

	rc, rt float64 // current and target rate, bps
	alpha  float64

	bcStage, tStage int   // byte-counter and timer stages since last cut
	byteCounter     int64 // bytes toward the next byte-counter stage
	hyperCount      int   // consecutive hyper-increase events

	lastCut           eventsim.Time
	everCut           bool
	cnpSinceAlpha     bool
	increasedSinceCut bool

	// timerFn and alphaFn are the persistent timer handlers, built once in
	// NewRP so each re-arm schedules without allocating a closure.
	timerFn, alphaFn eventsim.Handler
	timerEv, alphaEv eventsim.EventID
	running          bool

	// Cuts and Increases count rate-decrease and rate-increase events;
	// exported for tests and overhead accounting.
	Cuts, Increases int
}

// NewRP returns a reaction point sending at line rate with alpha seeded
// from the current parameters. params must never return nil.
func NewRP(eng *eventsim.Engine, params func() *Params, lineRateBps float64) *RP {
	p := params()
	rp := &RP{
		eng:         eng,
		params:      params,
		lineRateBps: lineRateBps,
		rc:          lineRateBps,
		rt:          lineRateBps,
		alpha:       p.InitialAlpha,
	}
	rp.timerFn = func() {
		if !rp.running {
			return
		}
		rp.tStage++
		rp.increaseEvent()
		rp.armIncreaseTimer()
	}
	rp.alphaFn = func() {
		if !rp.running {
			return
		}
		if !rp.cnpSinceAlpha {
			rp.alpha *= 1 - rp.params().G
		}
		rp.cnpSinceAlpha = false
		rp.armAlphaTimer()
	}
	return rp
}

// Rate reports the current sending rate in bps.
func (rp *RP) Rate() float64 { return rp.rc }

// TargetRate reports the target rate in bps.
func (rp *RP) TargetRate() float64 { return rp.rt }

// Alpha reports the congestion estimate.
func (rp *RP) Alpha() float64 { return rp.alpha }

// Running reports whether the RP timers are armed.
func (rp *RP) Running() bool { return rp.running }

// Start arms the increase and alpha timers. It is idempotent.
func (rp *RP) Start() {
	if rp.running {
		return
	}
	rp.running = true
	rp.armIncreaseTimer()
	rp.armAlphaTimer()
}

// Stop cancels the timers; the QP went idle or its flow finished.
func (rp *RP) Stop() {
	if !rp.running {
		return
	}
	rp.running = false
	rp.eng.Cancel(rp.timerEv)
	rp.eng.Cancel(rp.alphaEv)
}

func (rp *RP) armIncreaseTimer() {
	rp.timerEv = rp.eng.After(rp.params().RPGTimeReset, rp.timerFn)
}

func (rp *RP) armAlphaTimer() {
	rp.alphaEv = rp.eng.After(rp.params().AlphaUpdateInterval, rp.alphaFn)
}

// OnCNP handles a congestion notification from the NP. The alpha estimate
// rises immediately; the multiplicative cut is throttled by
// rate_reduce_monitor_period.
func (rp *RP) OnCNP() {
	p := rp.params()
	rp.cnpSinceAlpha = true
	rp.alpha = (1-p.G)*rp.alpha + p.G
	now := rp.eng.Now()
	if rp.everCut && now-rp.lastCut < p.RateReduceMonitorPeriod {
		return
	}
	// Cut. clamp_tgt_rate pulls the target down every time; otherwise the
	// target only resets if the rate has climbed since the last cut, so a
	// stable flow can spring back to its old target quickly.
	if p.ClampTgtRate || rp.increasedSinceCut {
		rp.rt = rp.rc
	}
	rp.rc = math.Max(p.MinRateBps, rp.rc*(1-rp.alpha/2))
	rp.lastCut = now
	rp.everCut = true
	rp.increasedSinceCut = false
	rp.bcStage, rp.tStage = 0, 0
	rp.byteCounter = 0
	rp.hyperCount = 0
	rp.Cuts++
	// The DCQCN increase timer restarts on a cut.
	if rp.running {
		rp.eng.Cancel(rp.timerEv)
		rp.armIncreaseTimer()
	}
}

// OnBytesSent credits transmitted bytes toward byte-counter stages. The
// caller invokes it per packet.
func (rp *RP) OnBytesSent(n int64) {
	p := rp.params()
	rp.byteCounter += n
	for rp.byteCounter >= p.RPGByteReset {
		rp.byteCounter -= p.RPGByteReset
		rp.bcStage++
		rp.increaseEvent()
	}
}

// increaseEvent applies one DCQCN rate-increase step: fast recovery while
// both stage counters are below F, hyper increase once both are at or
// beyond F, additive increase otherwise.
func (rp *RP) increaseEvent() {
	p := rp.params()
	f := p.RPGThreshold
	switch {
	case rp.bcStage < f && rp.tStage < f:
		// Fast recovery: halve toward the target.
	case rp.bcStage >= f && rp.tStage >= f:
		rp.hyperCount++
		rp.rt += float64(rp.hyperCount) * p.HAIRateBps
	default:
		rp.rt += p.AIRateBps
	}
	if rp.rt > rp.lineRateBps {
		rp.rt = rp.lineRateBps
	}
	rp.rc = (rp.rc + rp.rt) / 2
	if rp.rc > rp.lineRateBps {
		rp.rc = rp.lineRateBps
	}
	if rp.rc < p.MinRateBps {
		rp.rc = p.MinRateBps
	}
	rp.increasedSinceCut = true
	rp.Increases++
}
