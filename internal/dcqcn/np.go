package dcqcn

import "repro/internal/eventsim"

// NP is the Notification Point state for one flow at the receiver RNIC: it
// converts ECN-marked data packets into CNPs, pacing them so at most one
// CNP per min_time_between_cnps leaves for a given flow.
type NP struct {
	params func() *Params

	lastCNP eventsim.Time
	everCNP bool

	// Marked counts ECN-marked packets observed; CNPs counts
	// notifications actually emitted.
	Marked, CNPs int
}

// NewNP returns a notification point reading live parameters via params.
func NewNP(params func() *Params) *NP {
	return &NP{params: params}
}

// OnECNMarked records an ECN-marked arrival at virtual time now and
// reports whether a CNP should be sent back to the flow's RP.
func (np *NP) OnECNMarked(now eventsim.Time) bool {
	np.Marked++
	p := np.params()
	if np.everCNP && now-np.lastCNP < p.MinTimeBetweenCNPs {
		return false
	}
	np.lastCNP = now
	np.everCNP = true
	np.CNPs++
	return true
}
