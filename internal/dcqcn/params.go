// Package dcqcn implements the DCQCN congestion-control algorithm
// (Zhu et al., SIGCOMM 2015) as deployed on RoCEv2 RNICs and switches,
// together with the full parameter surface that Paraleon tunes.
//
// DCQCN has three parties. The Congestion Point (CP) is the switch, which
// ECN-marks packets probabilistically between the Kmin and Kmax queue
// thresholds. The Notification Point (NP) is the receiver RNIC, which
// converts marked packets into Congestion Notification Packets (CNPs),
// pacing them by min_time_between_cnps. The Reaction Point (RP) is the
// sender RNIC, which multiplicatively cuts its rate on CNPs and otherwise
// climbs back through fast recovery, additive increase, and hyper increase
// stages.
package dcqcn

import (
	"fmt"
	"math"

	"repro/internal/eventsim"
)

// Params is the complete DCQCN parameter vector: eleven RNIC-side knobs
// plus the three switch-side ECN thresholds. This is the search space of
// Paraleon's tuner; the paper's "10+ parameters at RNICs and switches".
type Params struct {
	// --- RNIC: rate increase ---

	// AIRateBps (ai_rate) is the additive-increase step added to the
	// target rate on each additive increase event.
	AIRateBps float64
	// HAIRateBps (hai_rate) is the hyper-increase step; after both the
	// byte counter and the timer pass RPGThreshold, the target rate grows
	// by i·HAIRateBps on the i-th consecutive hyper event.
	HAIRateBps float64
	// RPGTimeReset (rpg_time_reset) is the period of the rate-increase
	// timer: every elapse without a CNP counts one timer stage.
	RPGTimeReset eventsim.Time
	// RPGByteReset (rpg_byte_reset) is the transmitted-byte quantum that
	// counts one byte-counter stage.
	RPGByteReset int64
	// RPGThreshold (rpg_threshold, "F") is the number of fast-recovery
	// stages before increase becomes additive, then hyper.
	RPGThreshold int

	// --- RNIC: rate decrease ---

	// RateReduceMonitorPeriod (rate_reduce_monitor_period) lower-bounds
	// the interval between two successive multiplicative cuts.
	RateReduceMonitorPeriod eventsim.Time
	// MinRateBps (rpg_min_rate) floors the sending rate.
	MinRateBps float64
	// ClampTgtRate (clamp_tgt_rate): when true the target rate is pulled
	// down to the current rate on every cut; when false it is clamped
	// only on the first CNP after an increase, allowing faster recovery.
	ClampTgtRate bool

	// --- RNIC: alpha update ---

	// G (dce_tcp_g) is the EWMA gain of the congestion estimate alpha.
	G float64
	// AlphaUpdateInterval (dce_tcp_rtt) is the alpha-decay timer period:
	// every elapse without a CNP, alpha ← (1−G)·alpha.
	AlphaUpdateInterval eventsim.Time
	// InitialAlpha (dce_alpha) seeds alpha when a QP starts.
	InitialAlpha float64

	// --- NP (receiver RNIC) ---

	// MinTimeBetweenCNPs (min_time_between_cnps) paces CNP generation
	// per flow.
	MinTimeBetweenCNPs eventsim.Time

	// --- CP (switch ECN thresholds) ---

	// KminBytes and KmaxBytes bound the probabilistic ECN marking ramp;
	// PMax is the marking probability at KmaxBytes.
	KminBytes int64
	KmaxBytes int64
	PMax      float64
}

// DefaultParams returns the NVIDIA default setting used as the paper's
// "default" baseline (Table II, [21]).
func DefaultParams() Params {
	return Params{
		AIRateBps:               5e6,
		HAIRateBps:              50e6,
		RPGTimeReset:            300 * eventsim.Microsecond,
		RPGByteReset:            32767,
		RPGThreshold:            5,
		RateReduceMonitorPeriod: 4 * eventsim.Microsecond,
		MinRateBps:              100e6,
		ClampTgtRate:            false,
		G:                       1.0 / 256.0,
		AlphaUpdateInterval:     55 * eventsim.Microsecond,
		InitialAlpha:            1,
		MinTimeBetweenCNPs:      4 * eventsim.Microsecond,
		KminBytes:               400 << 10,
		KmaxBytes:               1600 << 10,
		PMax:                    0.2,
	}
}

// ExpertParams returns the expert-tuned setting of Table I. Parameters the
// table leaves unspecified keep their defaults.
func ExpertParams() Params {
	p := DefaultParams()
	p.AIRateBps = 50e6
	p.HAIRateBps = 150e6
	p.RateReduceMonitorPeriod = 80 * eventsim.Microsecond
	p.MinTimeBetweenCNPs = 96 * eventsim.Microsecond
	p.KminBytes = 1600 << 10
	p.KmaxBytes = 6400 << 10
	p.PMax = 0.2
	return p
}

// Validate reports the first structurally invalid field, if any.
func (p *Params) Validate() error {
	switch {
	case p.AIRateBps <= 0 || p.HAIRateBps <= 0:
		return fmt.Errorf("dcqcn: non-positive increase rate (ai=%g hai=%g)", p.AIRateBps, p.HAIRateBps)
	case p.RPGTimeReset <= 0:
		return fmt.Errorf("dcqcn: rpg_time_reset = %v, need > 0", p.RPGTimeReset)
	case p.RPGByteReset <= 0:
		return fmt.Errorf("dcqcn: rpg_byte_reset = %d, need > 0", p.RPGByteReset)
	case p.RPGThreshold < 1:
		return fmt.Errorf("dcqcn: rpg_threshold = %d, need >= 1", p.RPGThreshold)
	case p.RateReduceMonitorPeriod < 0:
		return fmt.Errorf("dcqcn: negative rate_reduce_monitor_period")
	case p.MinRateBps <= 0:
		return fmt.Errorf("dcqcn: min rate = %g, need > 0", p.MinRateBps)
	case p.G <= 0 || p.G > 1:
		return fmt.Errorf("dcqcn: g = %g, need in (0,1]", p.G)
	case p.AlphaUpdateInterval <= 0:
		return fmt.Errorf("dcqcn: alpha update interval = %v, need > 0", p.AlphaUpdateInterval)
	case p.InitialAlpha < 0 || p.InitialAlpha > 1:
		return fmt.Errorf("dcqcn: initial alpha = %g, need in [0,1]", p.InitialAlpha)
	case p.MinTimeBetweenCNPs < 0:
		return fmt.Errorf("dcqcn: negative min_time_between_cnps")
	case p.KminBytes < 0 || p.KmaxBytes <= p.KminBytes:
		return fmt.Errorf("dcqcn: ECN thresholds Kmin=%d Kmax=%d, need 0 <= Kmin < Kmax", p.KminBytes, p.KmaxBytes)
	case p.PMax <= 0 || p.PMax > 1:
		return fmt.Errorf("dcqcn: Pmax = %g, need in (0,1]", p.PMax)
	}
	return nil
}

// MarkProbability is the CP's ECN marking law: 0 below Kmin, a linear ramp
// to PMax at Kmax, and 1 beyond Kmax (the DCTCP/RED convention DCQCN
// inherits).
func (p *Params) MarkProbability(queueBytes int64) float64 {
	switch {
	case queueBytes <= p.KminBytes:
		return 0
	case queueBytes >= p.KmaxBytes:
		return 1
	default:
		frac := float64(queueBytes-p.KminBytes) / float64(p.KmaxBytes-p.KminBytes)
		return frac * p.PMax
	}
}

// Direction is the sign convention for "friendly" tuning directions
// (§III-C): +1 means incrementing the parameter favors throughput, −1
// means decrementing it does.
type Direction int

const (
	// IncrementForThroughput marks parameters whose increase is
	// throughput-friendly (e.g. hai_rate).
	IncrementForThroughput Direction = +1
	// DecrementForThroughput marks parameters whose decrease is
	// throughput-friendly (e.g. rpg_time_reset).
	DecrementForThroughput Direction = -1
)

// Spec describes one tunable parameter: how to read and write it on a
// Params value, its legal range, the empirical step s_p the tuner scales,
// and its throughput-friendly direction.
type Spec struct {
	Name string
	// Get and Set map the parameter to the float vector the search runs
	// over. Times are in nanoseconds, rates in bps, sizes in bytes.
	Get func(*Params) float64
	Set func(*Params, float64)
	// Min and Max bound the search.
	Min, Max float64
	// Step is the empirical per-iteration step s_p (§III-C Optimization 1).
	Step float64
	// ThroughputDir is the throughput-friendly direction.
	ThroughputDir Direction
	// Log indicates the parameter is best mutated multiplicatively
	// (its useful range spans orders of magnitude).
	Log bool
}

// Clamp forces v into the spec's legal range.
func (s *Spec) Clamp(v float64) float64 {
	return math.Min(s.Max, math.Max(s.Min, v))
}

// Specs returns the canonical tunable-parameter table. The slice is fresh
// on each call so callers may reorder or filter it.
func Specs() []Spec {
	us := float64(eventsim.Microsecond)
	kb := float64(1 << 10)
	return []Spec{
		{
			Name: "ai_rate",
			Get:  func(p *Params) float64 { return p.AIRateBps },
			Set:  func(p *Params, v float64) { p.AIRateBps = v },
			Min:  1e6, Max: 1e9, Step: 10e6,
			ThroughputDir: IncrementForThroughput, Log: true,
		},
		{
			Name: "hai_rate",
			Get:  func(p *Params) float64 { return p.HAIRateBps },
			Set:  func(p *Params, v float64) { p.HAIRateBps = v },
			Min:  10e6, Max: 5e9, Step: 50e6,
			ThroughputDir: IncrementForThroughput, Log: true,
		},
		{
			Name: "rpg_time_reset",
			Get:  func(p *Params) float64 { return float64(p.RPGTimeReset) },
			Set:  func(p *Params, v float64) { p.RPGTimeReset = eventsim.Time(v) },
			Min:  10 * us, Max: 1500 * us, Step: 50 * us,
			ThroughputDir: DecrementForThroughput,
		},
		{
			Name: "rpg_byte_reset",
			Get:  func(p *Params) float64 { return float64(p.RPGByteReset) },
			Set:  func(p *Params, v float64) { p.RPGByteReset = int64(v) },
			Min:  1 * kb, Max: 4096 * kb, Step: 16 * kb,
			ThroughputDir: DecrementForThroughput, Log: true,
		},
		{
			Name: "rpg_threshold",
			Get:  func(p *Params) float64 { return float64(p.RPGThreshold) },
			Set:  func(p *Params, v float64) { p.RPGThreshold = int(math.Round(v)) },
			Min:  1, Max: 20, Step: 1,
			ThroughputDir: DecrementForThroughput,
		},
		{
			Name: "rate_reduce_monitor_period",
			Get:  func(p *Params) float64 { return float64(p.RateReduceMonitorPeriod) },
			Set:  func(p *Params, v float64) { p.RateReduceMonitorPeriod = eventsim.Time(v) },
			Min:  1 * us, Max: 500 * us, Step: 10 * us,
			ThroughputDir: IncrementForThroughput,
		},
		{
			Name: "min_rate",
			Get:  func(p *Params) float64 { return p.MinRateBps },
			Set:  func(p *Params, v float64) { p.MinRateBps = v },
			Min:  10e6, Max: 10e9, Step: 100e6,
			ThroughputDir: IncrementForThroughput, Log: true,
		},
		{
			Name: "g",
			Get:  func(p *Params) float64 { return p.G },
			Set:  func(p *Params, v float64) { p.G = v },
			Min:  1.0 / 1024, Max: 0.5, Step: 1.0 / 256,
			ThroughputDir: DecrementForThroughput, Log: true,
		},
		{
			Name: "alpha_update_interval",
			Get:  func(p *Params) float64 { return float64(p.AlphaUpdateInterval) },
			Set:  func(p *Params, v float64) { p.AlphaUpdateInterval = eventsim.Time(v) },
			Min:  1 * us, Max: 1000 * us, Step: 10 * us,
			ThroughputDir: DecrementForThroughput,
		},
		{
			Name: "min_time_between_cnps",
			Get:  func(p *Params) float64 { return float64(p.MinTimeBetweenCNPs) },
			Set:  func(p *Params, v float64) { p.MinTimeBetweenCNPs = eventsim.Time(v) },
			Min:  0, Max: 500 * us, Step: 10 * us,
			ThroughputDir: IncrementForThroughput,
		},
		{
			Name: "kmin",
			Get:  func(p *Params) float64 { return float64(p.KminBytes) },
			Set:  func(p *Params, v float64) { p.KminBytes = int64(v) },
			Min:  10 * kb, Max: 4000 * kb, Step: 100 * kb,
			ThroughputDir: IncrementForThroughput, Log: true,
		},
		{
			Name: "kmax",
			Get:  func(p *Params) float64 { return float64(p.KmaxBytes) },
			Set:  func(p *Params, v float64) { p.KmaxBytes = int64(v) },
			Min:  40 * kb, Max: 10000 * kb, Step: 400 * kb,
			ThroughputDir: IncrementForThroughput, Log: true,
		},
		{
			Name: "pmax",
			Get:  func(p *Params) float64 { return p.PMax },
			Set:  func(p *Params, v float64) { p.PMax = v },
			Min:  0.01, Max: 1, Step: 0.05,
			ThroughputDir: DecrementForThroughput,
		},
	}
}

// SpecByName returns the spec with the given name, or nil.
func SpecByName(name string) *Spec {
	specs := Specs()
	for i := range specs {
		if specs[i].Name == name {
			return &specs[i]
		}
	}
	return nil
}

// Vector flattens p onto the Specs() axes, in order.
func Vector(p *Params) []float64 {
	specs := Specs()
	v := make([]float64, len(specs))
	for i := range specs {
		v[i] = specs[i].Get(p)
	}
	return v
}

// FromVector writes the vector back onto a copy of base, clamping each
// coordinate into its legal range and repairing Kmin < Kmax ordering.
func FromVector(base Params, v []float64) Params {
	specs := Specs()
	if len(v) != len(specs) {
		panic(fmt.Sprintf("dcqcn: vector length %d, want %d", len(v), len(specs)))
	}
	p := base
	for i := range specs {
		specs[i].Set(&p, specs[i].Clamp(v[i]))
	}
	if p.KmaxBytes <= p.KminBytes {
		p.KmaxBytes = p.KminBytes + (64 << 10)
	}
	return p
}
