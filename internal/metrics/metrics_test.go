package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.8, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=1.5 did not panic")
		}
	}()
	Percentile([]float64{1}, 1.5)
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(pRaw) / 255
		got := Percentile(raw, p)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestBucketizeSlowdowns(t *testing.T) {
	sl := []Slowdown{
		{Size: 5 << 10, Value: 2},
		{Size: 8 << 10, Value: 4},
		{Size: 50 << 10, Value: 3},
		{Size: 10 << 20, Value: 10},
	}
	stats := BucketizeSlowdowns(sl, DefaultSizeBuckets())
	if len(stats) != 5 {
		t.Fatalf("%d buckets", len(stats))
	}
	if stats[0].Count != 2 || stats[0].Mean != 3 {
		t.Errorf("bucket 0: %+v", stats[0])
	}
	if stats[2].Count != 1 || stats[2].Mean != 3 {
		t.Errorf("bucket <=120KB: %+v", stats[2])
	}
	if last := stats[len(stats)-1]; last.Count != 1 || last.Mean != 10 {
		t.Errorf("catch-all bucket: %+v", last)
	}
	if stats[0].Label != "<=10KB" {
		t.Errorf("label %q", stats[0].Label)
	}
	if got := stats[len(stats)-1].Label; got != ">1MB" {
		t.Errorf("tail label %q", got)
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	pts := CDF(vals, 4)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 0.25 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[3].X != 4 || pts[3].P != 1 {
		t.Errorf("last point %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
	if CDF(nil, 5) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(eventsim.Time(i)*eventsim.Millisecond, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	m := s.MeanOver(2*eventsim.Millisecond, 5*eventsim.Millisecond)
	if m != 3 {
		t.Errorf("MeanOver = %g, want 3 (mean of 2,3,4)", m)
	}
	if !math.IsNaN(s.MeanOver(100*eventsim.Millisecond, 200*eventsim.Millisecond)) {
		t.Error("empty window mean not NaN")
	}
}

func TestSlowdownsAndSummarize(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	// Uncontended flow → slowdown ≈ 1; incast → slowdowns > 1.
	n.StartFlow(hosts[0], hosts[1], 1<<20)
	n.RunUntilIdle(eventsim.Second)
	for i := 2; i <= 5; i++ {
		n.StartFlow(hosts[i], hosts[6], 1<<20)
	}
	n.RunUntilIdle(5 * eventsim.Second)
	sl := Slowdowns(n, n.Completed)
	if len(sl) != 5 {
		t.Fatalf("%d slowdowns, want 5", len(sl))
	}
	for _, s := range sl {
		if s.Value < 1 {
			t.Errorf("slowdown %g < 1", s.Value)
		}
	}
	if sl[0].Value > 1.15 {
		t.Errorf("uncontended slowdown %g, want ≈1", sl[0].Value)
	}
	incastMax := 0.0
	for _, s := range sl[1:] {
		if s.Value > incastMax {
			incastMax = s.Value
		}
	}
	if incastMax < 1.5 {
		t.Errorf("4:1 incast max slowdown %g, want > 1.5", incastMax)
	}
	sum := Summarize(n, n.Completed)
	if sum.Count != 5 || sum.MeanSlowdown < 1 || sum.P999Slowdown < sum.MeanSlowdown {
		t.Errorf("summary %+v inconsistent", sum)
	}
	if sum.TailFCT < sum.MeanFCT {
		t.Errorf("tail FCT %v < mean %v", sum.TailFCT, sum.MeanFCT)
	}
}
