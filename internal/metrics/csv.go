package metrics

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Sentinel errors for WriteSeriesCSV input validation; wrapped errors
// carry the offending series, so callers branch with errors.Is.
var (
	// ErrNoSeries means WriteSeriesCSV was called with nothing to write.
	ErrNoSeries = errors.New("metrics: no series")
	// ErrMisaligned means the series disagree on length or sample times
	// and cannot share one time column.
	ErrMisaligned = errors.New("metrics: series misaligned")
)

// WriteSeriesCSV exports one or more time series as CSV with a shared
// time column (milliseconds). Series must be aligned: same length and
// sample times (which the harness guarantees for series from one run);
// violations are reported as errors wrapping ErrMisaligned.
func WriteSeriesCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return ErrNoSeries
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("%w: series %q has %d samples, want %d", ErrMisaligned, s.Name, s.Len(), n)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "t_ms")
	for i, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series%d", i)
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].Times[i].Millis(), 'f', 3, 64)
		for j, s := range series {
			if s.Times[i] != series[0].Times[i] {
				return fmt.Errorf("%w: series %q at sample %d", ErrMisaligned, s.Name, i)
			}
			row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV exports an empirical CDF.
func WriteCDFCSV(w io.Writer, points []CDFPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "p"}); err != nil {
		return err
	}
	for _, pt := range points {
		if err := cw.Write([]string{
			strconv.FormatFloat(pt.X, 'g', -1, 64),
			strconv.FormatFloat(pt.P, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
