// Package metrics turns raw simulation outputs (flow records, runtime
// samples) into the statistics the paper reports: FCT slowdowns bucketed
// by flow size with tail percentiles (Fig 7a/b), FCT CDFs (Fig 7c/d),
// throughput/RTT time series (Figs 8, 9, 14), and summary aggregates.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of values using
// nearest-rank on a sorted copy. It returns NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %g outside [0,1]", p))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Slowdown is one flow's FCT normalized by its uncontended ideal.
type Slowdown struct {
	Size  int64
	Value float64
}

// Slowdowns computes per-flow slowdowns against the network's ideal FCT
// model. Values are clamped at ≥ 1 (a flow cannot beat physics; sub-1
// artifacts would only reflect model rounding).
func Slowdowns(n *sim.Network, records []sim.FlowRecord) []Slowdown {
	out := make([]Slowdown, 0, len(records))
	for _, r := range records {
		ideal := n.IdealFCT(r.Src, r.Dst, r.Size)
		if ideal <= 0 {
			continue
		}
		v := float64(r.FCT()) / float64(ideal)
		if v < 1 {
			v = 1
		}
		out = append(out, Slowdown{Size: r.Size, Value: v})
	}
	return out
}

// BucketStat summarizes slowdowns of flows up to a size boundary.
type BucketStat struct {
	// UpTo is the bucket's inclusive upper size bound; the last bucket
	// of a set holds everything larger than the previous bound.
	UpTo  int64
	Label string
	Count int
	Mean  float64
	P50   float64
	P99   float64
	P999  float64
}

// DefaultSizeBuckets are the flow-size classes used for Fig 7(a,b).
func DefaultSizeBuckets() []int64 {
	return []int64{10 << 10, 30 << 10, 120 << 10, 1 << 20, math.MaxInt64}
}

func bucketLabel(lo, hi int64) string {
	human := func(b int64) string {
		switch {
		case b >= 1<<20:
			return fmt.Sprintf("%dMB", b>>20)
		case b >= 1<<10:
			return fmt.Sprintf("%dKB", b>>10)
		default:
			return fmt.Sprintf("%dB", b)
		}
	}
	if hi == math.MaxInt64 {
		return fmt.Sprintf(">%s", human(lo))
	}
	return fmt.Sprintf("<=%s", human(hi))
}

// BucketizeSlowdowns groups slowdowns by flow size and summarizes each
// group. bounds must be ascending; flows above the last bound are
// dropped (use MaxInt64 as a catch-all).
func BucketizeSlowdowns(sl []Slowdown, bounds []int64) []BucketStat {
	groups := make([][]float64, len(bounds))
	for _, s := range sl {
		for i, b := range bounds {
			if s.Size <= b {
				groups[i] = append(groups[i], s.Value)
				break
			}
		}
	}
	out := make([]BucketStat, len(bounds))
	var lo int64
	for i, b := range bounds {
		out[i] = BucketStat{
			UpTo:  b,
			Label: bucketLabel(lo, b),
			Count: len(groups[i]),
			Mean:  Mean(groups[i]),
			P50:   Percentile(groups[i], 0.50),
			P99:   Percentile(groups[i], 0.99),
			P999:  Percentile(groups[i], 0.999),
		}
		lo = b
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns up to points evenly spaced quantiles of values.
func CDF(values []float64, points int) []CDFPoint {
	if len(values) == 0 || points <= 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if points > len(sorted) {
		points = len(sorted)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		p := float64(i) / float64(points)
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		out = append(out, CDFPoint{X: sorted[idx], P: p})
	}
	return out
}

// Series is a virtual-time series (throughput, RTT, utility…).
type Series struct {
	Name   string
	Times  []eventsim.Time
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(at eventsim.Time, v float64) {
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// Len reports the sample count.
func (s *Series) Len() int { return len(s.Values) }

// MeanOver averages samples with from ≤ t < to.
func (s *Series) MeanOver(from, to eventsim.Time) float64 {
	var sum float64
	var n int
	for i, t := range s.Times {
		if t >= from && t < to {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// FCTSummary is an overall flow-completion summary.
type FCTSummary struct {
	Count            int
	MeanSlowdown     float64
	P99Slowdown      float64
	P999Slowdown     float64
	MeanFCT, TailFCT eventsim.Time
}

// Summarize computes an overall FCT summary for records.
func Summarize(n *sim.Network, records []sim.FlowRecord) FCTSummary {
	sl := Slowdowns(n, records)
	vals := make([]float64, len(sl))
	var fctSum eventsim.Time
	var tail eventsim.Time
	for i, s := range sl {
		vals[i] = s.Value
	}
	for _, r := range records {
		fctSum += r.FCT()
		if r.FCT() > tail {
			tail = r.FCT()
		}
	}
	out := FCTSummary{Count: len(records)}
	if len(records) > 0 {
		out.MeanFCT = fctSum / eventsim.Time(len(records))
		out.TailFCT = tail
		out.MeanSlowdown = Mean(vals)
		out.P99Slowdown = Percentile(vals, 0.99)
		out.P999Slowdown = Percentile(vals, 0.999)
	}
	return out
}
