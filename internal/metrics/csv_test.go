package metrics

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/eventsim"
)

// failAfter errors once limit bytes have been written — a disk-full
// stand-in to verify flush errors propagate to the caller.
type failAfter struct {
	limit   int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		return 0, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteSeriesCSVPropagatesWriteError(t *testing.T) {
	s := &Series{Name: "tp"}
	for i := 1; i <= 1000; i++ {
		s.Append(eventsim.Time(i)*eventsim.Millisecond, float64(i))
	}
	// Fail at various depths: header, mid-body, and at the final flush.
	for _, limit := range []int{0, 64, 4096} {
		if err := WriteSeriesCSV(&failAfter{limit: limit}, s); !errors.Is(err, errDiskFull) {
			t.Errorf("limit %d: err=%v, want errDiskFull", limit, err)
		}
	}
}

func TestWriteCDFCSVPropagatesWriteError(t *testing.T) {
	points := make([]CDFPoint, 1000)
	for i := range points {
		points[i] = CDFPoint{X: float64(i), P: float64(i) / 1000}
	}
	for _, limit := range []int{0, 64, 4096} {
		if err := WriteCDFCSV(&failAfter{limit: limit}, points); !errors.Is(err, errDiskFull) {
			t.Errorf("limit %d: err=%v, want errDiskFull", limit, err)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := &Series{Name: "tp"}
	b := &Series{Name: "rtt"}
	for i := 1; i <= 3; i++ {
		at := eventsim.Time(i) * eventsim.Millisecond
		a.Append(at, float64(i)/10)
		b.Append(at, 1-float64(i)/10)
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header+3", len(lines))
	}
	if lines[0] != "t_ms,tp,rtt" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000,0.1,0.9") {
		t.Errorf("row 1 %q", lines[1])
	}
}

func TestWriteSeriesCSVValidation(t *testing.T) {
	if err := WriteSeriesCSV(&bytes.Buffer{}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("no series: err=%v, want ErrNoSeries", err)
	}
	a := &Series{Name: "a"}
	a.Append(eventsim.Millisecond, 1)
	b := &Series{Name: "b"}
	if err := WriteSeriesCSV(&bytes.Buffer{}, a, b); !errors.Is(err, ErrMisaligned) {
		t.Errorf("length mismatch: err=%v, want ErrMisaligned", err)
	} else if !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("length mismatch error %v does not name the offending series", err)
	}
	c := &Series{Name: "c"}
	c.Append(2*eventsim.Millisecond, 1)
	if err := WriteSeriesCSV(&bytes.Buffer{}, a, c); !errors.Is(err, ErrMisaligned) {
		t.Errorf("time misalignment: err=%v, want ErrMisaligned", err)
	}
	// Sentinels must stay distinguishable from each other and from
	// unrelated errors.
	if errors.Is(ErrMisaligned, ErrNoSeries) || errors.Is(ErrNoSeries, ErrMisaligned) {
		t.Error("sentinel errors alias each other")
	}
}

func TestWriteCDFCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCDFCSV(&buf, []CDFPoint{{X: 1.5, P: 0.5}, {X: 2, P: 1}}); err != nil {
		t.Fatal(err)
	}
	want := "x,p\n1.5,0.5\n2,1\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}
