package splitmix

import (
	"testing"
	"testing/quick"
)

// The consolidation contract: every caller that used to carry a private
// SplitMix64 copy must see bit-identical values from this package, or
// seeded goldens across the repo would silently shift. These reference
// implementations are verbatim transcriptions of the five former copies.

func refDeriveArmSeed(base int64, arm int) int64 { // harness/parallel.go
	z := uint64(base) + uint64(arm+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

func refSketchMix(z uint64) uint64 { // sketch/sketch.go mix()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func refCtrlrpcSplitmix(x uint64) uint64 { // ctrlrpc/reconnect.go splitmix64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func refHashMix(h, v uint64) uint64 { // dispatch/guard.go hashMix()
	h ^= v
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func refEcmpHash(flow, salt uint64) uint64 { // netdev/packet.go ecmpHash()
	z := flow + salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestMixMatchesSketch(t *testing.T) {
	f := func(z uint64) bool { return Mix(z) == refSketchMix(z) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextMatchesCtrlrpc(t *testing.T) {
	f := func(x uint64) bool { return Next(x) == refCtrlrpcSplitmix(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextMatchesEcmpHash(t *testing.T) {
	f := func(flow, salt uint64) bool { return Next(flow+salt) == refEcmpHash(flow, salt) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldMatchesDispatchHashMix(t *testing.T) {
	f := func(h, v uint64) bool { return Fold(h, v) == refHashMix(h, v) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveMatchesDeriveArmSeed(t *testing.T) {
	f := func(base int64, arm uint16) bool {
		return Derive(base, int(arm)) == refDeriveArmSeed(base, int(arm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Pin a few absolute values so a rewrite of both sides in lockstep
	// still trips the gate.
	if got := Derive(1, 0); got != refDeriveArmSeed(1, 0) || got <= 0 {
		t.Errorf("Derive(1,0) = %d", got)
	}
}

func TestDeriveNonNegativeAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for stream := 0; stream < 4096; stream++ {
		s := Derive(42, stream)
		if s < 0 {
			t.Fatalf("Derive(42,%d) = %d, want non-negative", stream, s)
		}
		if seen[s] {
			t.Fatalf("Derive(42,%d) collides", stream)
		}
		seen[s] = true
	}
}

func TestMixIsBijectionSample(t *testing.T) {
	// A finalizer that collides on a small dense range would be a
	// transcription bug; Mix is a bijection so none may appear.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1<<16; i++ {
		m := Mix(i)
		if seen[m] {
			t.Fatalf("Mix collision at %d", i)
		}
		seen[m] = true
	}
}
