// Package splitmix is the repository's single home for the SplitMix64
// mixing primitives. Five subsystems need a fast, deterministic, well-
// distributed 64-bit mix — sketch row hashing, ECMP path selection,
// dispatch vector fingerprints, reconnect-jitter seeding, and per-arm /
// per-agent RNG stream derivation — and each used to carry a private
// copy of the same constants. One copy means one place to audit the
// constants and one guarantee that derived streams never collide across
// subsystems by construction drift.
//
// All helpers are pure functions of their arguments: no process state,
// no allocation, safe for concurrent use.
package splitmix

// Golden is the SplitMix64 increment (the 64-bit golden ratio).
const Golden uint64 = 0x9e3779b97f4a7c15

// Mix is the SplitMix64 finalizer: a full-avalanche bijection over
// uint64 (Steele, Lea & Flood 2014, as in Java's SplittableRandom).
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next advances a SplitMix64 state by one step and finalizes it:
// Mix(x + Golden). Chaining seed = Next(seed) walks the generator's
// output sequence.
func Next(x uint64) uint64 {
	return Mix(x + Golden)
}

// Fold absorbs one word into a running hash: Next(h ^ v). Used by the
// dispatch vector fingerprint, where each parameter word perturbs the
// state before the avalanche so any single-field change flips the hash.
func Fold(h, v uint64) uint64 {
	return Next(h ^ v)
}

// Derive maps a base seed and a stream index to an independent,
// non-negative RNG seed: Mix(base + (stream+1)·Golden) with the sign
// bit cleared so derived seeds read naturally in logs and configs. It
// is a pure function of its arguments — never of scheduling — so
// stream i of a run is reproducible regardless of worker count or
// completion order. Harness experiment arms and multiecn per-agent
// streams both draw from it.
func Derive(base int64, stream int) int64 {
	z := Mix(uint64(base) + uint64(stream+1)*Golden)
	return int64(z &^ (1 << 63))
}
