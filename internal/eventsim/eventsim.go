// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of timestamped events, and
// seeded random-number streams that components can split off so that runs
// are reproducible regardless of scheduling order.
//
// The engine is deliberately single-threaded: determinism matters more than
// parallelism for a congestion-control study, where a one-packet reordering
// changes every downstream measurement.
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Nanosecond granularity is sufficient for 100–400 Gbps
// links, where even a minimum-size frame takes tens of nanoseconds to
// serialize.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts t to a standard library duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return t.Duration().String() }

// Handler is the callback invoked when an event fires. It runs at the
// event's scheduled virtual time.
type Handler func()

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant: earlier-scheduled events fire first, which keeps
// runs deterministic.
type event struct {
	at      Time
	seq     uint64
	fn      Handler
	stopped bool
	index   int
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// progress reporting and overhead accounting.
	Processed uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns a new deterministic random stream for a component. Each call
// returns an independent generator seeded from the engine's master stream,
// so adding a component does not perturb the draws seen by others created
// before it.
func (e *Engine) Rand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past is a
// programming error and panics: silently reordering time corrupts every
// queue model downstream.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return EventID{ev}
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired, or cancelling twice, is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev == nil || id.ev.stopped || id.ev.index < 0 {
		if id.ev != nil {
			id.ev.stopped = true
		}
		return
	}
	id.ev.stopped = true
	heap.Remove(&e.heap, id.ev.index)
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*event)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to exactly deadline. Events scheduled beyond deadline remain queued
// so the simulation can be resumed.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= deadline {
		if !e.Step() {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}
