// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of timestamped events, and
// seeded random-number streams that components can split off so that runs
// are reproducible regardless of scheduling order.
//
// The engine is deliberately single-threaded: determinism matters more than
// parallelism for a congestion-control study, where a one-packet reordering
// changes every downstream measurement. Parallelism comes from running
// several engines side by side — see the shard subpackage, which
// synchronizes one engine per fabric partition under conservative time
// windows without giving up the same-seed-same-trace contract.
//
// The scheduler is allocation-free in steady state: events live in a
// slab whose slots are recycled through an intrusive free-list, and the
// priority queue is an indexed 4-ary heap of slot numbers rather than a
// container/heap of boxed pointers. Cancellation stays safe without
// retaining pointers because every EventID carries the slot's generation
// counter, which is bumped each time the slot fires or is cancelled.
//
// # Timer wheel ordering contract
//
// Recurring, frequently cancelled timers (TimerAfter / RearmAfter /
// RearmAt) take a second path: a hierarchical timing wheel with O(1)
// schedule, cancel, and reschedule-in-place. The wheel is a staging area,
// never an ordering authority — before any pop the engine flushes every
// wheel slot that could contain an event at or before the heap's head
// into the heap, where the single structural (at, key, seq) comparator
// decides the final order. A timer therefore fires in exactly the
// position it would have occupied had it been heap-scheduled all along:
// the merged pop stream is byte-identical to a heap-only engine's, which
// is what lets the chaos/dispatch/sharded golden traces stay frozen
// while the timer population moves off the heap. Every rearm consumes
// exactly one sequence number, the same budget as the Cancel+After pair
// it replaces, so tie-break order downstream of a rearm is unchanged
// too. The win is structural: timers that are cancelled or re-armed
// before firing (the per-CNP DCQCN churn) never touch the heap at all,
// and the thousands that merely sit pending stop inflating the heap
// that packet events have to sift through.
package eventsim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Nanosecond granularity is sufficient for 100–400 Gbps
// links, where even a minimum-size frame takes tens of nanoseconds to
// serialize.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts t to a standard library duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return t.Duration().String() }

// Handler is the callback invoked when an event fires. It runs at the
// event's scheduled virtual time.
type Handler func()

// event is one slab slot: a scheduled callback plus the bookkeeping that
// lets the slot be found in the heap and recycled. seq breaks ties between
// events scheduled for the same instant: earlier-scheduled events fire
// first, which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  Handler

	// key is an optional structural ordering key that ranks between at and
	// seq. Events scheduled with plain Schedule carry key 0, so their
	// relative order is pure (at, seq) — identical to the engine's historic
	// behavior. Sharded simulations schedule link deliveries with a key
	// derived from the sending (node, port, emission count), making
	// same-timestamp arrival order a function of the traffic itself rather
	// than of which engine scheduled it first; that is what keeps a run
	// byte-identical across shard counts.
	key uint64

	// gen is the slot's generation; it increments every time the slot is
	// released (fire or cancel), so EventIDs issued for earlier occupants
	// can never cancel the current one.
	gen uint32
	// heapIdx is the slot's position in the heap, -1 while unqueued, or
	// wheelQueued while the event is parked in the timing wheel.
	heapIdx int32
	// link is the slot's intrusive next pointer, serving double duty: the
	// free-list chain while released, the wheel slot's doubly linked list
	// while heapIdx == wheelQueued.
	link int32
	// wprev is the wheel list's back pointer (-1 at the head); only
	// meaningful while heapIdx == wheelQueued.
	wprev int32
	// wslot packs the wheel (level, slot) the event is parked in as
	// level*wheelSlots+slot; only meaningful while heapIdx == wheelQueued.
	wslot int16
}

// EventID identifies a scheduled event so it can be cancelled. It is a
// value (slot number plus generation), not a pointer: holding one keeps
// nothing alive, and a stale ID — the event fired, was cancelled, or the
// slot was reused — safely no-ops in Cancel. The zero EventID is invalid
// and cancels nothing.
type EventID struct {
	slot int32
	gen  uint32
}

// Timing-wheel geometry. Six levels of 64 slots at a 1.024 µs base tick
// cover horizons up to 2^36 ticks (~19 hours of virtual time); anything
// beyond falls back to the heap. Level l slot widths are 2^(10+6l) ns, so
// the DCQCN timer range (microseconds to milliseconds) lands in levels
// 0–2.
const (
	wheelTickShift = 10 // ns per tick = 1 << wheelTickShift
	wheelBits      = 6  // slots per level = 1 << wheelBits
	wheelSlots     = 1 << wheelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 6

	// wheelQueued is the heapIdx sentinel marking an event parked in the
	// wheel rather than the heap.
	wheelQueued = -2
)

// wheelLevel is one ring of the hierarchical wheel: a 64-bit occupancy
// bitmap plus the head of each slot's intrusive event list. head[i] is
// only meaningful while bit i of occupied is set, so no -1 initialization
// is needed.
type wheelLevel struct {
	occupied uint64
	head     [wheelSlots]int32
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now Time
	seq uint64

	// slots is the event slab; freeHead chains released slots (-1 = none).
	slots    []event
	freeHead int32
	// heap is a 4-ary min-heap of slot numbers ordered by (at, seq). A
	// 4-ary layout halves the tree depth of a binary heap and keeps the
	// children of a node in one cache line of slot indices.
	heap []int32

	// wheel stages timer events (TimerAfter/RearmAfter/RearmAt) until
	// they are due; wheelTick is the level-0 tick the wheel is anchored
	// at, wheelCount the events currently parked. See the package
	// comment's ordering contract. wheelOff (SetWheelEnabled) forces
	// every timer onto the heap — the differential-testing baseline.
	wheel      [wheelLevels]wheelLevel
	wheelTick  int64
	wheelCount int
	wheelOff   bool

	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// progress reporting and overhead accounting.
	Processed uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), freeHead: -1}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Reserve grows the event slab and heap storage so at least n events can
// be pending at once without either slice reallocating. Purely a
// capacity hint for benchmarks and latency-sensitive callers that want
// the steady state allocation-free from the first event; scheduling
// beyond n still works and grows as usual.
func (e *Engine) Reserve(n int) {
	if cap(e.slots) < n {
		slots := make([]event, len(e.slots), n)
		copy(slots, e.slots)
		e.slots = slots
	}
	if cap(e.heap) < n {
		heap := make([]int32, len(e.heap), n)
		copy(heap, e.heap)
		e.heap = heap
	}
}

// Rand returns a new deterministic random stream for a component. Each call
// returns an independent generator seeded from the engine's master stream,
// so adding a component does not perturb the draws seen by others created
// before it.
func (e *Engine) Rand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past is a
// programming error and panics: silently reordering time corrupts every
// queue model downstream.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.ScheduleKeyed(at, 0, fn)
}

// ScheduleKeyed runs fn at absolute virtual time at, ordered among
// same-timestamp events by key before insertion sequence. Key 0 (what
// Schedule uses) sorts before all nonzero keys with the same timestamp,
// preserving the historic (at, seq) order for unkeyed events. Nonzero keys
// give same-timestamp events a structural total order that is independent
// of which engine — or how many engines — scheduled them; the sharded
// runtime relies on this for its determinism contract.
func (e *Engine) ScheduleKeyed(at Time, key uint64, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", at, e.now))
	}
	slot := e.alloc()
	ev := &e.slots[slot]
	ev.at = at
	ev.key = key
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.heapPush(slot)
	return EventID{slot: slot, gen: ev.gen}
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// TimerAfter runs fn after delay d, routed through the timing wheel: use
// it for recurring or frequently cancelled timers, whose schedule and
// cancel then cost O(1) instead of a heap sift. Ordering is identical to
// After (key 0, next sequence number) — see the package comment's
// ordering contract.
func (e *Engine) TimerAfter(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.timerAt(e.now+d, fn)
}

// RearmAfter reschedules a live timer to fire after delay d, replacing
// the Cancel + After pair with one O(1) reschedule-in-place: the event
// keeps its slot and EventID. A stale id (the timer fired, was cancelled,
// or was never armed) schedules fn afresh via TimerAfter, so callers can
// rearm unconditionally from inside the timer's own handler. Either way
// exactly one sequence number is consumed — the same as Cancel+After —
// keeping same-timestamp tie order byte-identical to the churn path it
// replaces.
func (e *Engine) RearmAfter(id EventID, d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.RearmAt(id, e.now+d, fn)
}

// RearmAt is RearmAfter with an absolute deadline.
func (e *Engine) RearmAt(id EventID, at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: rearm at %v before now %v", at, e.now))
	}
	if id.gen != 0 && int(id.slot) < len(e.slots) {
		ev := &e.slots[id.slot]
		if ev.gen == id.gen {
			// Live: detach from wherever it is queued and reinsert in
			// place. The slot and generation survive, so id stays valid.
			if ev.heapIdx == wheelQueued {
				e.wheelUnlink(id.slot)
			} else {
				e.removeAt(int(ev.heapIdx))
			}
			ev.at = at
			ev.key = 0
			ev.seq = e.seq
			ev.fn = fn
			e.seq++
			e.wheelInsert(id.slot)
			return id
		}
	}
	return e.timerAt(at, fn)
}

// timerAt allocates a fresh timer event and parks it in the wheel (or the
// heap, when the wheel is off or the deadline is due or out of range).
func (e *Engine) timerAt(at Time, fn Handler) EventID {
	slot := e.alloc()
	ev := &e.slots[slot]
	ev.at = at
	ev.key = 0
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.wheelInsert(slot)
	return EventID{slot: slot, gen: ev.gen}
}

// alloc takes a slot from the free-list, growing the slab when empty.
func (e *Engine) alloc() int32 {
	slot := e.freeHead
	if slot >= 0 {
		e.freeHead = e.slots[slot].link
		return slot
	}
	// Grow the slab. Generations start at 1 so the zero EventID never
	// matches a live slot.
	e.slots = append(e.slots, event{gen: 1})
	return int32(len(e.slots) - 1)
}

// heapPush appends slot to the heap and restores the heap property.
func (e *Engine) heapPush(slot int32) {
	i := len(e.heap)
	e.heap = append(e.heap, slot)
	e.slots[slot].heapIdx = int32(i)
	e.siftUp(i)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired, cancelling twice, or cancelling the zero EventID is a
// no-op: the generation check rejects stale IDs even after slot reuse.
func (e *Engine) Cancel(id EventID) {
	if id.gen == 0 || int(id.slot) >= len(e.slots) {
		return
	}
	ev := &e.slots[id.slot]
	if ev.gen != id.gen || ev.heapIdx == -1 {
		return
	}
	if ev.heapIdx == wheelQueued {
		e.wheelUnlink(id.slot)
	} else {
		e.removeAt(int(ev.heapIdx))
	}
	e.release(id.slot)
}

// release returns a slot to the free-list, dropping its handler so the
// engine does not pin the closure (and whatever it captures) until reuse.
func (e *Engine) release(slot int32) {
	ev := &e.slots[slot]
	ev.fn = nil
	ev.gen++
	ev.link = e.freeHead
	e.freeHead = slot
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetWheelEnabled turns the timing-wheel path on (the default) or off.
// With the wheel off, TimerAfter/RearmAfter/RearmAt route through the
// heap — behaviorally identical by the ordering contract, just slower
// under timer churn. Disabling drains any parked timers into the heap
// first, so the switch is safe at any quiescent point. This exists for
// differential tests and heap-only benchmark baselines.
func (e *Engine) SetWheelEnabled(on bool) {
	if !on && e.wheelCount > 0 {
		for l := range e.wheel {
			w := &e.wheel[l]
			for w.occupied != 0 {
				idx := bits.TrailingZeros64(w.occupied)
				w.occupied &^= 1 << uint(idx)
				for s := w.head[idx]; s >= 0; {
					next := e.slots[s].link
					e.wheelCount--
					e.heapPush(s)
					s = next
				}
			}
		}
	}
	e.wheelOff = !on
}

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) + e.wheelCount }

// NextEventTime reports the timestamp of the earliest pending event, and
// false when the queue is empty. The sharded coordinator uses it to size
// conservative time windows (skip ahead when every shard is idle); the
// reported time is exact — wheel slots that could precede the heap head
// are flushed first — so window sizing is identical to a heap-only run.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.wheelCount > 0 {
		e.syncWheel()
	}
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// wheelInsert parks an already-filled event slot in the wheel, or pushes
// it onto the heap when the wheel is off, the deadline is not strictly
// beyond the wheel's current tick, or the horizon exceeds the wheel's
// range.
func (e *Engine) wheelInsert(slot int32) {
	if e.wheelOff {
		e.heapPush(slot)
		return
	}
	if e.wheelCount == 0 {
		// Empty wheel: re-anchor at the present so a long-idle engine
		// doesn't file near-term timers into far-out levels.
		if t := int64(e.now) >> wheelTickShift; t > e.wheelTick {
			e.wheelTick = t
		}
	}
	ev := &e.slots[slot]
	tick := int64(ev.at) >> wheelTickShift
	if tick <= e.wheelTick {
		e.heapPush(slot)
		return
	}
	lvl := (bits.Len64(uint64(tick^e.wheelTick)) - 1) / wheelBits
	if lvl >= wheelLevels {
		e.heapPush(slot)
		return
	}
	idx := int(tick>>(uint(lvl)*wheelBits)) & wheelMask
	w := &e.wheel[lvl]
	if w.occupied&(1<<uint(idx)) != 0 {
		head := w.head[idx]
		ev.link = head
		e.slots[head].wprev = slot
	} else {
		ev.link = -1
		w.occupied |= 1 << uint(idx)
	}
	ev.wprev = -1
	w.head[idx] = slot
	ev.wslot = int16(lvl*wheelSlots + idx)
	ev.heapIdx = wheelQueued
	e.wheelCount++
}

// wheelUnlink removes a parked event from its wheel slot list in O(1).
func (e *Engine) wheelUnlink(slot int32) {
	ev := &e.slots[slot]
	lvl, idx := int(ev.wslot)/wheelSlots, int(ev.wslot)%wheelSlots
	w := &e.wheel[lvl]
	if ev.wprev >= 0 {
		e.slots[ev.wprev].link = ev.link
	} else if ev.link >= 0 {
		w.head[idx] = ev.link
	} else {
		w.occupied &^= 1 << uint(idx)
	}
	if ev.link >= 0 {
		e.slots[ev.link].wprev = ev.wprev
	}
	ev.heapIdx = -1
	e.wheelCount--
}

// wheelEarliest locates the wheel's earliest occupied slot and the first
// level-0 tick its range covers. Slot starts are strictly layered by
// level (all level-l slot ranges precede every level-(l+1) slot start,
// given inserts anchored at wheelTick), so the first non-empty level owns
// the global minimum; within a level the next occupied slot at or after
// wheelTick's position falls out of one rotate + trailing-zeros.
func (e *Engine) wheelEarliest() (lvl, idx int, startTick int64) {
	for l := 0; l < wheelLevels; l++ {
		occ := e.wheel[l].occupied
		if occ == 0 {
			continue
		}
		shift := uint(l) * wheelBits
		cur := e.wheelTick >> shift
		base := int(cur) & wheelMask
		d := bits.TrailingZeros64(bits.RotateLeft64(occ, -base))
		return l, (base + d) & wheelMask, (cur + int64(d)) << shift
	}
	panic("eventsim: wheelEarliest on empty wheel")
}

// syncWheel flushes wheel slots into the heap until the heap's head is
// strictly earlier than every parked timer — the point at which popping
// from the heap alone is provably identical to a heap-only engine.
// Level-0 slots flush straight to the heap; higher slots cascade their
// events down a level (or to the heap once due). wheelTick only ever
// advances, and never past an occupied slot's start.
func (e *Engine) syncWheel() {
	for e.wheelCount > 0 {
		lvl, idx, startTick := e.wheelEarliest()
		if len(e.heap) > 0 && e.slots[e.heap[0]].at < Time(startTick<<wheelTickShift) {
			return
		}
		if startTick > e.wheelTick {
			e.wheelTick = startTick
		}
		w := &e.wheel[lvl]
		head := w.head[idx]
		w.occupied &^= 1 << uint(idx)
		for s := head; s >= 0; {
			next := e.slots[s].link
			e.wheelCount--
			if lvl == 0 {
				e.heapPush(s)
			} else {
				e.wheelInsert(s)
			}
			s = next
		}
	}
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if e.wheelCount > 0 {
		e.syncWheel()
	}
	if len(e.heap) == 0 {
		return false
	}
	slot := e.popMin()
	ev := &e.slots[slot]
	e.now = ev.at
	fn := ev.fn
	// Release before invoking: the handler may reschedule into the same
	// slot, and by then its own EventID must already be stale.
	e.release(slot)
	e.Processed++
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// peek reports the earliest pending timestamp across heap and wheel,
// flushing due wheel slots so the answer is exact.
func (e *Engine) peek() (Time, bool) {
	if e.wheelCount > 0 {
		e.syncWheel()
	}
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to exactly deadline. Events scheduled beyond deadline remain queued
// so the simulation can be resumed.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		t, ok := e.peek()
		if !ok || t > deadline {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before horizon, then
// advances the clock to exactly horizon. This is the window-execution
// primitive of the sharded runtime: events at horizon itself stay queued,
// so cross-shard arrivals landing exactly on a window boundary can still
// be merged ahead of (or behind) them in structural-key order before the
// next window runs.
func (e *Engine) RunBefore(horizon Time) {
	e.stopped = false
	for !e.stopped {
		t, ok := e.peek()
		if !ok || t >= horizon {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// less orders slots by (time, key, sequence): the unique deterministic
// total order every heap layout must realize. All-zero keys reduce this to
// the historic (time, sequence) order.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.slots[a], &e.slots[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.key != eb.key {
		return ea.key < eb.key
	}
	return ea.seq < eb.seq
}

// popMin removes and returns the root slot.
func (e *Engine) popMin() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	moved := e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.heap[0] = moved
		e.slots[moved].heapIdx = 0
		e.siftDown(0)
	}
	e.slots[top].heapIdx = -1
	return top
}

// removeAt deletes the heap entry at position i (indexed removal for
// Cancel): the last element takes its place and sifts whichever way the
// ordering demands.
func (e *Engine) removeAt(i int) {
	last := len(e.heap) - 1
	slot := e.heap[i]
	moved := e.heap[last]
	e.heap = e.heap[:last]
	if i < last {
		e.heap[i] = moved
		e.slots[moved].heapIdx = int32(i)
		if !e.siftUp(i) {
			e.siftDown(i)
		}
	}
	e.slots[slot].heapIdx = -1
}

// siftUp restores the heap property from position i toward the root and
// reports whether anything moved.
func (e *Engine) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		e.slots[e.heap[i]].heapIdx = int32(i)
		e.slots[e.heap[parent]].heapIdx = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

// siftDown restores the heap property from position i toward the leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], e.heap[i]) {
			return
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		e.slots[e.heap[i]].heapIdx = int32(i)
		e.slots[e.heap[best]].heapIdx = int32(best)
		i = best
	}
}
