// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of timestamped events, and
// seeded random-number streams that components can split off so that runs
// are reproducible regardless of scheduling order.
//
// The engine is deliberately single-threaded: determinism matters more than
// parallelism for a congestion-control study, where a one-packet reordering
// changes every downstream measurement. Parallelism comes from running
// several engines side by side — see the shard subpackage, which
// synchronizes one engine per fabric partition under conservative time
// windows without giving up the same-seed-same-trace contract.
//
// The scheduler is allocation-free in steady state: events live in a
// slab whose slots are recycled through an intrusive free-list, and the
// priority queue is an indexed 4-ary heap of slot numbers rather than a
// container/heap of boxed pointers. Cancellation stays safe without
// retaining pointers because every EventID carries the slot's generation
// counter, which is bumped each time the slot fires or is cancelled.
package eventsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Nanosecond granularity is sufficient for 100–400 Gbps
// links, where even a minimum-size frame takes tens of nanoseconds to
// serialize.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts t to a standard library duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return t.Duration().String() }

// Handler is the callback invoked when an event fires. It runs at the
// event's scheduled virtual time.
type Handler func()

// event is one slab slot: a scheduled callback plus the bookkeeping that
// lets the slot be found in the heap and recycled. seq breaks ties between
// events scheduled for the same instant: earlier-scheduled events fire
// first, which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  Handler

	// key is an optional structural ordering key that ranks between at and
	// seq. Events scheduled with plain Schedule carry key 0, so their
	// relative order is pure (at, seq) — identical to the engine's historic
	// behavior. Sharded simulations schedule link deliveries with a key
	// derived from the sending (node, port, emission count), making
	// same-timestamp arrival order a function of the traffic itself rather
	// than of which engine scheduled it first; that is what keeps a run
	// byte-identical across shard counts.
	key uint64

	// gen is the slot's generation; it increments every time the slot is
	// released (fire or cancel), so EventIDs issued for earlier occupants
	// can never cancel the current one.
	gen uint32
	// heapIdx is the slot's position in the heap, or -1 while unqueued.
	heapIdx int32
	// nextFree links released slots into the engine's free-list.
	nextFree int32
}

// EventID identifies a scheduled event so it can be cancelled. It is a
// value (slot number plus generation), not a pointer: holding one keeps
// nothing alive, and a stale ID — the event fired, was cancelled, or the
// slot was reused — safely no-ops in Cancel. The zero EventID is invalid
// and cancels nothing.
type EventID struct {
	slot int32
	gen  uint32
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now Time
	seq uint64

	// slots is the event slab; freeHead chains released slots (-1 = none).
	slots    []event
	freeHead int32
	// heap is a 4-ary min-heap of slot numbers ordered by (at, seq). A
	// 4-ary layout halves the tree depth of a binary heap and keeps the
	// children of a node in one cache line of slot indices.
	heap []int32

	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// progress reporting and overhead accounting.
	Processed uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), freeHead: -1}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns a new deterministic random stream for a component. Each call
// returns an independent generator seeded from the engine's master stream,
// so adding a component does not perturb the draws seen by others created
// before it.
func (e *Engine) Rand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past is a
// programming error and panics: silently reordering time corrupts every
// queue model downstream.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.ScheduleKeyed(at, 0, fn)
}

// ScheduleKeyed runs fn at absolute virtual time at, ordered among
// same-timestamp events by key before insertion sequence. Key 0 (what
// Schedule uses) sorts before all nonzero keys with the same timestamp,
// preserving the historic (at, seq) order for unkeyed events. Nonzero keys
// give same-timestamp events a structural total order that is independent
// of which engine — or how many engines — scheduled them; the sharded
// runtime relies on this for its determinism contract.
func (e *Engine) ScheduleKeyed(at Time, key uint64, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", at, e.now))
	}
	slot := e.freeHead
	if slot >= 0 {
		e.freeHead = e.slots[slot].nextFree
	} else {
		// Grow the slab. Generations start at 1 so the zero EventID never
		// matches a live slot.
		e.slots = append(e.slots, event{gen: 1})
		slot = int32(len(e.slots) - 1)
	}
	ev := &e.slots[slot]
	ev.at = at
	ev.key = key
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	i := len(e.heap)
	e.heap = append(e.heap, slot)
	ev.heapIdx = int32(i)
	e.siftUp(i)
	return EventID{slot: slot, gen: ev.gen}
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired, cancelling twice, or cancelling the zero EventID is a
// no-op: the generation check rejects stale IDs even after slot reuse.
func (e *Engine) Cancel(id EventID) {
	if id.gen == 0 || int(id.slot) >= len(e.slots) {
		return
	}
	ev := &e.slots[id.slot]
	if ev.gen != id.gen || ev.heapIdx < 0 {
		return
	}
	e.removeAt(int(ev.heapIdx))
	e.release(id.slot)
}

// release returns a slot to the free-list, dropping its handler so the
// engine does not pin the closure (and whatever it captures) until reuse.
func (e *Engine) release(slot int32) {
	ev := &e.slots[slot]
	ev.fn = nil
	ev.gen++
	ev.nextFree = e.freeHead
	e.freeHead = slot
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// NextEventTime reports the timestamp of the earliest pending event, and
// false when the queue is empty. The sharded coordinator uses it to size
// conservative time windows (skip ahead when every shard is idle).
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.popMin()
	ev := &e.slots[slot]
	e.now = ev.at
	fn := ev.fn
	// Release before invoking: the handler may reschedule into the same
	// slot, and by then its own EventID must already be stale.
	e.release(slot)
	e.Processed++
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to exactly deadline. Events scheduled beyond deadline remain queued
// so the simulation can be resumed.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
		if !e.Step() {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before horizon, then
// advances the clock to exactly horizon. This is the window-execution
// primitive of the sharded runtime: events at horizon itself stay queued,
// so cross-shard arrivals landing exactly on a window boundary can still
// be merged ahead of (or behind) them in structural-key order before the
// next window runs.
func (e *Engine) RunBefore(horizon Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.slots[e.heap[0]].at < horizon {
		if !e.Step() {
			break
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// less orders slots by (time, key, sequence): the unique deterministic
// total order every heap layout must realize. All-zero keys reduce this to
// the historic (time, sequence) order.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.slots[a], &e.slots[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.key != eb.key {
		return ea.key < eb.key
	}
	return ea.seq < eb.seq
}

// popMin removes and returns the root slot.
func (e *Engine) popMin() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	moved := e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.heap[0] = moved
		e.slots[moved].heapIdx = 0
		e.siftDown(0)
	}
	e.slots[top].heapIdx = -1
	return top
}

// removeAt deletes the heap entry at position i (indexed removal for
// Cancel): the last element takes its place and sifts whichever way the
// ordering demands.
func (e *Engine) removeAt(i int) {
	last := len(e.heap) - 1
	slot := e.heap[i]
	moved := e.heap[last]
	e.heap = e.heap[:last]
	if i < last {
		e.heap[i] = moved
		e.slots[moved].heapIdx = int32(i)
		if !e.siftUp(i) {
			e.siftDown(i)
		}
	}
	e.slots[slot].heapIdx = -1
}

// siftUp restores the heap property from position i toward the root and
// reports whether anything moved.
func (e *Engine) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		e.slots[e.heap[i]].heapIdx = int32(i)
		e.slots[e.heap[parent]].heapIdx = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

// siftDown restores the heap property from position i toward the leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], e.heap[i]) {
			return
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		e.slots[e.heap[i]].heapIdx = int32(i)
		e.slots[e.heap[best]].heapIdx = int32(best)
		i = best
	}
}
