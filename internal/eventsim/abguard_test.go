package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the determinism A/B guard for the pooled engine: a verbatim
// copy of the pre-pool container/heap scheduler (the "old-order
// semantics") is driven side by side with the production Engine on
// identical randomized workloads — interleaved schedules, cancels, and
// handler-driven reschedules — and both must fire the exact same events at
// the exact same times in the exact same order. The harness-level
// TestChaosTraceGolden extends this to a full seeded chaos experiment.

// refEvent / refEngine: the engine as it was before the slab + indexed
// 4-ary heap rewrite. Kept only as the ordering oracle for this test.
type refEvent struct {
	at      Time
	seq     uint64
	fn      Handler
	stopped bool
	index   int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now       Time
	seq       uint64
	heap      refHeap
	processed uint64
}

func (e *refEngine) schedule(at Time, fn Handler) *refEvent {
	if at < e.now {
		panic("ref: schedule in the past")
	}
	ev := &refEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

func (e *refEngine) cancel(ev *refEvent) {
	if ev == nil || ev.stopped || ev.index < 0 {
		if ev != nil {
			ev.stopped = true
		}
		return
	}
	ev.stopped = true
	heap.Remove(&e.heap, ev.index)
}

func (e *refEngine) run() {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*refEvent)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
	}
}

// abWorkload drives one scheduler through a seeded random script of
// schedules, cancels, and in-handler reschedules, recording every firing
// as "time/tag". schedule and cancel abstract over the two engines.
func abWorkload(seed int64, schedule func(at Time, fn Handler) int, cancel func(handle int)) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var handles []int
	tag := 0
	var spawn func(depth int) Handler
	spawn = func(depth int) Handler {
		id := tag
		tag++
		return func() {
			log = append(log, fmt.Sprintf("%d/%d", rng.Int63n(1000), id))
			if depth < 3 && rng.Intn(3) == 0 {
				// Handler-driven reschedule: the common "timer re-arms
				// itself" pattern, where slot reuse bugs would surface.
				handles = append(handles, schedule(Time(rng.Intn(50)+1), spawn(depth+1)))
			}
			if len(handles) > 0 && rng.Intn(4) == 0 {
				cancel(handles[rng.Intn(len(handles))])
			}
		}
	}
	for i := 0; i < 400; i++ {
		handles = append(handles, schedule(Time(rng.Intn(200)), spawn(0)))
	}
	for i := 0; i < 60; i++ {
		cancel(handles[rng.Intn(len(handles))])
	}
	return log
}

// The workload's spawned handlers consume rng draws at firing time and the
// firing log embeds them, so any divergence in firing order — not just in
// which events fire — diverges the logs. relative Schedule times are
// issued against each engine's own clock via the closure over `eng`.
func TestPooledEngineMatchesOldOrderSemantics(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		// A: reference old-order engine.
		ref := &refEngine{}
		var refEvs []*refEvent
		refLog := abWorkload(seed,
			func(at Time, fn Handler) int {
				refEvs = append(refEvs, ref.schedule(ref.now+at, fn))
				return len(refEvs) - 1
			},
			func(h int) { ref.cancel(refEvs[h]) },
		)
		ref.run()
		refLog = append(refLog, fmt.Sprintf("end@%d", ref.now))

		// B: production pooled engine.
		eng := NewEngine(1)
		var ids []EventID
		newLog := abWorkload(seed,
			func(at Time, fn Handler) int {
				ids = append(ids, eng.Schedule(eng.Now()+at, fn))
				return len(ids) - 1
			},
			func(h int) { eng.Cancel(ids[h]) },
		)
		eng.Run()
		newLog = append(newLog, fmt.Sprintf("end@%d", eng.Now()))

		if len(refLog) != len(newLog) {
			t.Fatalf("seed %d: fired %d events on old semantics, %d on pooled engine",
				seed, len(refLog), len(newLog))
		}
		for i := range refLog {
			if refLog[i] != newLog[i] {
				t.Fatalf("seed %d: firing %d diverges: old=%q pooled=%q", seed, i, refLog[i], newLog[i])
			}
		}
		if ref.processed != eng.Processed {
			t.Fatalf("seed %d: processed %d vs %d", seed, ref.processed, eng.Processed)
		}
	}
}

// Stale EventIDs from a fired event must never cancel the slot's next
// occupant — the generation counter is what makes pointer-free Cancel safe.
func TestCancelStaleIDAfterSlotReuse(t *testing.T) {
	e := NewEngine(1)
	first := e.Schedule(1, func() {})
	e.Run() // fires; slot returns to the free-list
	fired := false
	second := e.Schedule(2, func() { fired = true }) // reuses the slot
	e.Cancel(first)                                  // stale: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("cancelling a stale EventID killed the slot's new occupant")
	}
	e.Cancel(second) // cancel-after-fire stays a no-op too
	e.Cancel(EventID{})
}

func TestScheduleStepZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the slab and heap to their steady-state footprint.
	for i := 0; i < 1024; i++ {
		e.After(Time(i%97+1), fn)
	}
	for e.Step() {
	}
	// Keep a standing backlog so Schedule and Step exercise real heap
	// depth, then measure the schedule-one / fire-one steady state.
	for i := 0; i < 256; i++ {
		e.After(Time(i%61+1), fn)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		e.After(37, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocates %.1f per op in steady state, want 0", allocs)
	}
}

// BenchmarkSchedule measures the schedule-one / fire-one steady state: the
// per-event cost every simulated packet pays at least once.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Time(i%97+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i&63+1), fn)
		e.Step()
	}
}
