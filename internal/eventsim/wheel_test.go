package eventsim

import (
	"fmt"
	"testing"
)

// wheelRec replays one scripted op sequence on a fresh engine and returns
// the full pop stream as "time/tag" strings plus the final engine state.
// The same script drives a wheel-enabled and a heap-only engine in
// TestWheelMatchesHeap / FuzzWheelVsHeap; any divergence in the streams
// breaks the ordering contract.
type wheelRec struct {
	eng   *Engine
	log   []string
	ids   []EventID // every id ever issued, for cancel/rearm targets
	tag   int
	steps int
}

// op codes for the differential script. Each op consumes a few bytes of
// the fuzz input; values are decoded modulo small ranges so every byte
// string is a valid script.
const (
	opSchedule = iota // heap path, key 0
	opKeyed           // heap path, nonzero key (cross-ordering vs timers)
	opAfter           // heap path, relative
	opTimer           // wheel path
	opRearm           // wheel path, live-or-stale rearm
	opCancel
	opStepN // interleave: pop a few events mid-script
	opCount
)

func (r *wheelRec) fire(tag int, at Time) {
	r.log = append(r.log, fmt.Sprintf("%d/%d@%d", at, tag, r.eng.Now()))
}

// apply decodes and applies one op, returning the number of script bytes
// consumed. Handlers capture only the recorder and a tag, so the two
// engines execute identical logic.
func (r *wheelRec) apply(script []byte) int {
	if len(script) < 4 {
		return len(script)
	}
	op := int(script[0]) % opCount
	a, b2, c := int(script[1]), int(script[2]), int(script[3])
	now := r.eng.Now()
	tag := r.tag
	r.tag++
	switch op {
	case opSchedule:
		at := now + Time(a)*Microsecond/4
		r.ids = append(r.ids, r.eng.Schedule(at, func() { r.fire(tag, at) }))
	case opKeyed:
		at := now + Time(a)*Microsecond/4
		key := uint64(b2%5) + 1
		r.ids = append(r.ids, r.eng.ScheduleKeyed(at, key, func() { r.fire(tag, at) }))
	case opAfter:
		d := Time(a) * Microsecond / 8
		at := now + d
		r.ids = append(r.ids, r.eng.After(d, func() { r.fire(tag, at) }))
	case opTimer:
		// Spread delays across wheel levels: sub-tick to multi-millisecond.
		d := Time(a) * Time(b2+1) * Microsecond / 16
		at := now + d
		r.ids = append(r.ids, r.eng.TimerAfter(d, func() { r.fire(tag, at) }))
	case opRearm:
		d := Time(a) * Microsecond / 4
		at := now + d
		var id EventID
		if len(r.ids) > 0 {
			id = r.ids[b2%len(r.ids)]
		}
		r.ids = append(r.ids, r.eng.RearmAfter(id, d, func() { r.fire(tag, at) }))
	case opCancel:
		if len(r.ids) > 0 {
			r.eng.Cancel(r.ids[a%len(r.ids)])
		}
	case opStepN:
		for i := 0; i < c%4; i++ {
			if !r.eng.Step() {
				break
			}
			r.steps++
		}
	}
	return 4
}

// runScript drives a full differential arm: apply every op, then drain.
func runScript(script []byte, wheel bool) *wheelRec {
	r := &wheelRec{eng: NewEngine(42)}
	r.eng.SetWheelEnabled(wheel)
	for len(script) > 0 {
		script = script[r.apply(script):]
	}
	r.eng.Run()
	return r
}

// diffScripts asserts the two arms produced identical pop streams and
// identical final state.
func diffScripts(t *testing.T, script []byte) {
	t.Helper()
	w := runScript(script, true)
	h := runScript(script, false)
	if len(w.log) != len(h.log) {
		t.Fatalf("pop stream length: wheel %d, heap %d", len(w.log), len(h.log))
	}
	for i := range w.log {
		if w.log[i] != h.log[i] {
			t.Fatalf("pop %d: wheel %q, heap %q", i, w.log[i], h.log[i])
		}
	}
	if w.eng.Now() != h.eng.Now() {
		t.Fatalf("final time: wheel %v, heap %v", w.eng.Now(), h.eng.Now())
	}
	if w.eng.Processed != h.eng.Processed {
		t.Fatalf("processed: wheel %d, heap %d", w.eng.Processed, h.eng.Processed)
	}
}

// TestWheelMatchesHeap replays deterministic pseudo-random scripts — a
// seeded version of the fuzz target — so the differential check always
// runs in plain `go test`.
func TestWheelMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		eng := NewEngine(seed + 1000)
		rng := eng.Rand()
		script := make([]byte, 400+rng.Intn(400))
		rng.Read(script)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			diffScripts(t, script)
		})
	}
}

// FuzzWheelVsHeap is the open-ended form: arbitrary byte strings decode
// to op scripts, and the wheel-enabled engine must pop byte-identically
// to the heap-only engine on every one.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 0, 3, 200, 1, 0, 4, 50, 0, 0, 6, 0, 0, 3})
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		diffScripts(t, script)
	})
}

// TestWheelCrossOrdering pins the merged order at a single contended
// timestamp: keyed deliveries, plain schedules, and wheel timers all
// landing at the same instant must pop in (key, seq) order regardless of
// which structure staged them.
func TestWheelCrossOrdering(t *testing.T) {
	eng := NewEngine(1)
	at := 100 * Microsecond
	var got []string
	rec := func(s string) func() { return func() { got = append(got, s) } }
	// Interleave the three kinds so sequence numbers alternate across
	// structures: timers get seq 0,3; keyed get 1,4; plain get 2,5.
	eng.TimerAfter(at, rec("t0"))
	eng.ScheduleKeyed(at, 7, rec("k1"))
	eng.Schedule(at, rec("p2"))
	eng.TimerAfter(at, rec("t3"))
	eng.ScheduleKeyed(at, 3, rec("k4"))
	eng.Schedule(at, rec("p5"))
	eng.Run()
	want := []string{"t0", "p2", "t3", "p5", "k4", "k1"} // key 0 seq-order, then key 3, key 7
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestRearmAfterSemantics covers the live and stale branches explicitly.
func TestRearmAfterSemantics(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	fn := func() { fired++ }

	// Stale (zero) id schedules afresh.
	id := eng.RearmAfter(EventID{}, 5*Microsecond, fn)
	// Live id reschedules in place: same id, old deadline gone.
	id2 := eng.RearmAfter(id, 10*Microsecond, fn)
	if id2 != id {
		t.Fatalf("live rearm changed id: %v -> %v", id, id2)
	}
	eng.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1 (old deadline must be replaced)", fired)
	}
	if eng.Now() != 10*Microsecond {
		t.Fatalf("fired at %v, want 10µs", eng.Now())
	}

	// After firing the id is stale; rearming it schedules afresh.
	id3 := eng.RearmAfter(id, 3*Microsecond, fn)
	if id3 == id {
		t.Fatalf("stale rearm reused dead id %v", id)
	}
	eng.Cancel(id3)
	if eng.Step() {
		t.Fatal("cancelled rearm still fired")
	}
}

// TestWheelLongHorizon exercises multi-level cascades: timers spanning
// every wheel level (plus beyond-range heap fallback) must fire in
// deadline order.
func TestWheelLongHorizon(t *testing.T) {
	eng := NewEngine(1)
	var got []Time
	// Delays from sub-tick to beyond the wheel range (~19.5h virtual).
	delays := []Time{
		500 * Nanosecond, 3 * Microsecond, 90 * Microsecond,
		2 * Millisecond, 170 * Millisecond, 9 * Second,
		800 * Second, 90000 * Second,
	}
	for _, d := range delays {
		d := d
		eng.TimerAfter(d, func() { got = append(got, eng.Now()) })
	}
	eng.Run()
	if len(got) != len(delays) {
		t.Fatalf("fired %d of %d timers", len(got), len(delays))
	}
	for i, d := range delays {
		if got[i] != d {
			t.Fatalf("timer %d fired at %v, want %v", i, got[i], d)
		}
	}
}

// TestWheelOpsZeroAlloc pins the wheel hot path allocation-free in steady
// state: schedule, cancel, rearm, and a fire/re-arm cycle must not
// allocate once the slab has warmed up.
func TestWheelOpsZeroAlloc(t *testing.T) {
	eng := NewEngine(1)
	fn := func() {}
	// Warm the slab and the heap backing array.
	var warm []EventID
	for i := 0; i < 64; i++ {
		warm = append(warm, eng.TimerAfter(Time(i+1)*Microsecond, fn))
	}
	for _, id := range warm {
		eng.Cancel(id)
	}

	if a := testing.AllocsPerRun(200, func() {
		id := eng.TimerAfter(40*Microsecond, fn)
		eng.Cancel(id)
	}); a != 0 {
		t.Fatalf("TimerAfter+Cancel allocates %v/op, want 0", a)
	}

	id := eng.TimerAfter(50*Microsecond, fn)
	if a := testing.AllocsPerRun(200, func() {
		id = eng.RearmAfter(id, 50*Microsecond, fn)
	}); a != 0 {
		t.Fatalf("RearmAfter allocates %v/op, want 0", a)
	}
	eng.Cancel(id)

	// Self-re-arming timer driven through Step: the recurring-timer
	// steady state of a DCQCN RP.
	var tick func()
	var tickID EventID
	tick = func() { tickID = eng.RearmAfter(tickID, 30*Microsecond, tick) }
	tickID = eng.TimerAfter(30*Microsecond, tick)
	if a := testing.AllocsPerRun(200, func() {
		if !eng.Step() {
			t.Fatal("recurring timer vanished")
		}
	}); a != 0 {
		t.Fatalf("recurring fire+rearm allocates %v/op, want 0", a)
	}
}

// BenchmarkTimerWheel measures the wheel's O(1) primitives against the
// heap path under a realistic pending population. The benchjson gate
// pins all sub-benches at 0 allocs/op.
func BenchmarkTimerWheel(b *testing.B) {
	fn := func() {}
	// pending timers forming the background population a DCQCN fabric
	// carries: two timers per QP across thousands of QPs.
	const pending = 32768
	build := func(wheel bool) (*Engine, []EventID) {
		eng := NewEngine(1)
		eng.SetWheelEnabled(wheel)
		ids := make([]EventID, pending)
		for i := range ids {
			ids[i] = eng.TimerAfter(Time(i%4096+1)*Microsecond, fn)
		}
		return eng, ids
	}
	for _, arm := range []struct {
		name  string
		wheel bool
	}{{"wheel", true}, {"heap", false}} {
		eng, ids := build(arm.wheel)
		b.Run("rearm/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id := ids[i%pending]
				ids[i%pending] = eng.RearmAfter(id, Time(i%4096+1)*Microsecond, fn)
			}
		})
		eng2, ids2 := build(arm.wheel)
		b.Run("cancel+schedule/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng2.Cancel(ids2[i%pending])
				ids2[i%pending] = eng2.TimerAfter(Time(i%4096+1)*Microsecond, fn)
			}
		})
	}
}
