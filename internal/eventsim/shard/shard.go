// Package shard runs several eventsim.Engines in parallel under a
// conservative time-window protocol, the classic "null-message-free"
// synchronous variant of parallel discrete-event simulation.
//
// The model: the fabric is partitioned into shards, each owning one
// engine driven by its own worker goroutine, plus one global engine owned
// by the coordinator thread for everything that spans shards (workload
// arrivals, fault injection, flow-completion bookkeeping). Time advances
// in windows [T, E): every shard may execute its events with timestamps
// strictly below E without synchronizing, because the earliest possible
// cross-shard influence generated inside the window arrives no earlier
// than m + W, where m is the minimum pending-event time across shards at
// the window start and W — the lookahead — is the minimum link
// propagation delay of the fabric. The coordinator picks
//
//	E = min(deadline, nextGlobalEvent, m + W)
//
// so every cross-shard handoff produced inside a window lands at or after
// the window's end and can be merged at the barrier before anyone runs
// past it.
//
// Determinism contract: a fixed seed produces byte-identical traces
// regardless of shard count. Three properties carry it:
//
//  1. Window boundaries are shard-count-invariant: E depends only on the
//     union of pending events across all engines, which is a function of
//     the simulation state, not of how nodes are grouped.
//  2. Handoffs are merged in a structural order — sorted by (arrival
//     time, key), where the key encodes (source node, source port,
//     per-port emission number) — and injected with
//     Engine.ScheduleKeyed, so same-timestamp arrivals order identically
//     whether they crossed a shard boundary or not.
//  3. Event handlers touch only their own node's state; everything
//     cross-node flows through keyed link deliveries or through the
//     global engine, which only runs at barriers while every worker is
//     parked.
package shard

import (
	"repro/internal/eventsim"
)

// Coordinator drives a set of shard engines plus one global engine
// through conservative time windows. It is not safe for concurrent use;
// exactly one goroutine (the owner of the global engine) may call its
// methods.
type Coordinator struct {
	global  *eventsim.Engine
	engines []*eventsim.Engine
	// lookahead is W: the minimum cross-shard propagation delay. Window
	// length is bounded by it, so it must be positive.
	lookahead eventsim.Time
	// barrier runs at every window boundary with all workers parked: the
	// owner drains cross-shard handoff queues into destination engines
	// and schedules deferred completion callbacks onto the global engine.
	barrier func()
}

// New builds a coordinator over the given engines. lookahead must be
// positive — with zero lookahead no window can make progress. barrier may
// be nil.
func New(global *eventsim.Engine, engines []*eventsim.Engine, lookahead eventsim.Time, barrier func()) *Coordinator {
	if lookahead <= 0 {
		panic("shard: non-positive lookahead")
	}
	if len(engines) == 0 {
		panic("shard: no shard engines")
	}
	if barrier == nil {
		barrier = func() {}
	}
	return &Coordinator{global: global, engines: engines, lookahead: lookahead, barrier: barrier}
}

// Engines exposes the shard engines (indexed by shard).
func (c *Coordinator) Engines() []*eventsim.Engine { return c.engines }

// Now reports the global virtual clock. Between RunUntil calls every
// shard engine agrees with it.
func (c *Coordinator) Now() eventsim.Time { return c.global.Now() }

// Pending sums scheduled events across the global and all shard engines.
func (c *Coordinator) Pending() int {
	n := c.global.Pending()
	for _, e := range c.engines {
		n += e.Pending()
	}
	return n
}

// Processed sums executed events across the global and all shard engines.
func (c *Coordinator) Processed() uint64 {
	n := c.global.Processed
	for _, e := range c.engines {
		n += e.Processed
	}
	return n
}

// windowEnd picks the next safe synchronization horizon: the earliest of
// the caller's deadline, the next global event (which must run with all
// shards parked at exactly its time), and m + lookahead. Guaranteed to
// exceed the current global time whenever deadline does.
func (c *Coordinator) windowEnd(deadline eventsim.Time) eventsim.Time {
	end := deadline
	if g, ok := c.global.NextEventTime(); ok && g < end {
		end = g
	}
	first := true
	var m eventsim.Time
	for _, e := range c.engines {
		if t, ok := e.NextEventTime(); ok && (first || t < m) {
			m, first = t, false
		}
	}
	if !first && m+c.lookahead < end {
		end = m + c.lookahead
	}
	return end
}

// RunUntil advances the whole sharded simulation to absolute virtual time
// deadline, inclusive: like eventsim.Engine.RunUntil it also executes
// events timestamped exactly at deadline, so callers can sample state "at
// t" between calls. Workers are spawned per call and joined before it
// returns; between calls every engine is quiescent and owned by the
// caller's goroutine.
func (c *Coordinator) RunUntil(deadline eventsim.Time) {
	nw := len(c.engines)
	cmd := make([]chan eventsim.Time, nw)
	done := make(chan struct{}, nw)
	for i := range c.engines {
		cmd[i] = make(chan eventsim.Time)
		go func(e *eventsim.Engine, in <-chan eventsim.Time) {
			for horizon := range in {
				e.RunBefore(horizon)
				done <- struct{}{}
			}
		}(c.engines[i], cmd[i])
	}

	for {
		// Flush global events due exactly now; their handlers may touch
		// shard state (starting flows, flipping links) — safe, since every
		// worker is parked and shard clocks equal the global clock.
		c.global.RunUntil(c.global.Now())
		t := c.global.Now()
		if t >= deadline {
			break
		}
		end := c.windowEnd(deadline)
		for _, ch := range cmd {
			ch <- end
		}
		for range cmd {
			<-done
		}
		// Barrier: merge handoffs (arrivals are all ≥ end by the lookahead
		// argument) and schedule deferred callbacks, then run global events
		// strictly before the boundary at their exact times.
		c.barrier()
		c.global.RunBefore(end)
	}
	for _, ch := range cmd {
		close(ch)
	}

	// Inclusive pass: run events timestamped exactly at the deadline.
	// Cross-shard arrivals at the deadline were injected at the final
	// barrier above, so they merge with intra-shard peers in key order;
	// anything these events emit lands strictly later (sends pay at least
	// the lookahead, or serialization, beyond now).
	for _, e := range c.engines {
		e.RunUntil(deadline)
	}
	c.barrier()
	c.global.RunUntil(deadline)
}
