package shard_test

import (
	"sort"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/eventsim/shard"
)

const us = eventsim.Microsecond

// crossing is one simulated cross-shard message for the protocol tests:
// produced by a source shard's handler, carried through an outbox, and
// injected into the destination engine at the barrier.
type crossing struct {
	at  eventsim.Time
	key uint64
	dst int
}

// harness wires two engines to a coordinator with outbox/barrier plumbing
// shaped like the real sharded runtime, minus the packets.
type harness struct {
	global  *eventsim.Engine
	engines []*eventsim.Engine
	coord   *shard.Coordinator

	out [][]crossing // per-source-shard outboxes, drained at the barrier

	// delivered[s] is filled by shard s's handlers in execution order.
	// Like all per-node state in the real runtime it has a single writer
	// (its shard's worker); the coordinator's join makes it safe to read
	// once RunUntil returns.
	delivered [][]crossing
}

func newHarness(t *testing.T, lookahead eventsim.Time) *harness {
	t.Helper()
	h := &harness{
		global:  eventsim.NewEngine(1),
		engines: []*eventsim.Engine{eventsim.NewEngine(2), eventsim.NewEngine(3)},
	}
	h.out = make([][]crossing, len(h.engines))
	h.delivered = make([][]crossing, len(h.engines))
	h.coord = shard.New(h.global, h.engines, lookahead, h.barrier)
	return h
}

// send runs on shard src's worker: it emits a crossing that arrives at
// the other shard after the link delay.
func (h *harness) send(src int, delay eventsim.Time, key uint64) {
	e := h.engines[src]
	h.out[src] = append(h.out[src], crossing{at: e.Now() + delay, key: key, dst: 1 - src})
}

func (h *harness) barrier() {
	var all []crossing
	for s := range h.out {
		all = append(all, h.out[s]...)
		h.out[s] = h.out[s][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].key < all[j].key
	})
	for _, c := range all {
		c := c
		h.engines[c.dst].ScheduleKeyed(c.at, c.key, func() {
			h.delivered[c.dst] = append(h.delivered[c.dst], c)
		})
	}
}

// TestWindowedHandoffDelivery drives cross-shard messages through the
// coordinator and checks the protocol's observable promises: everything
// arrives, each destination executes its arrivals in structural
// (time, key) order, and all clocks agree with the deadline afterwards.
func TestWindowedHandoffDelivery(t *testing.T) {
	const lookahead = 2 * us
	h := newHarness(t, lookahead)

	// Shard 0 fires at staggered times; each event sends a crossing that
	// arrives exactly lookahead later — the tightest arrival the
	// conservative window permits. Several land on identical timestamps
	// with distinct keys to exercise the merge order.
	for i := 0; i < 8; i++ {
		i := i
		at := eventsim.Time(i/2) * us // pairs share a timestamp
		h.engines[0].Schedule(at, func() {
			h.send(0, lookahead, uint64(10+i))
		})
		h.engines[1].Schedule(at, func() {
			h.send(1, lookahead, uint64(20+i))
		})
	}
	deadline := 50 * us
	h.coord.RunUntil(deadline)

	total := 0
	for dst := range h.delivered {
		seq := h.delivered[dst]
		total += len(seq)
		for i := 1; i < len(seq); i++ {
			a, b := seq[i-1], seq[i]
			if b.at < a.at || (b.at == a.at && b.key < a.key) {
				t.Fatalf("shard %d delivery %d out of structural order: %+v before %+v", dst, i, a, b)
			}
		}
	}
	if total != 16 {
		t.Fatalf("%d crossings delivered, want 16", total)
	}
	if h.coord.Now() != deadline {
		t.Fatalf("Now() = %v, want %v", h.coord.Now(), deadline)
	}
	for s, e := range h.coord.Engines() {
		if e.Now() != deadline {
			t.Fatalf("shard %d clock = %v, want %v", s, e.Now(), deadline)
		}
	}
	if h.coord.Pending() != 0 {
		t.Fatalf("%d events still pending", h.coord.Pending())
	}
	if h.coord.Processed() == 0 {
		t.Fatal("Processed() = 0 after a run")
	}
}

// TestGlobalEventsRunAtExactTimes checks the coordinator's second job:
// global events (workload arrivals, fault flips) run on the coordinator
// thread at their exact virtual times, interleaved with shard windows, and
// may schedule into shard engines for the same instant.
func TestGlobalEventsRunAtExactTimes(t *testing.T) {
	h := newHarness(t, 2*us)

	var order []string
	// A shard event well before the global one, and one well after it,
	// seeded by the global handler itself.
	h.engines[0].Schedule(1*us, func() { order = append(order, "shard-early") })
	h.global.Schedule(10*us, func() {
		order = append(order, "global")
		if now := h.global.Now(); now != 10*us {
			t.Errorf("global handler at %v, want 10µs", now)
		}
		// Shard clocks have been advanced exactly to the global event's
		// time — scheduling "now" into a shard is legal.
		h.engines[1].Schedule(10*us, func() { order = append(order, "shard-seeded") })
	})
	h.coord.RunUntil(20 * us)

	want := []string{"shard-early", "global", "shard-seeded"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestInclusiveDeadline pins RunUntil's "inclusive" semantics: events
// timestamped exactly at the deadline execute, matching
// eventsim.Engine.RunUntil, so callers can sample state "at t".
func TestInclusiveDeadline(t *testing.T) {
	h := newHarness(t, 2*us)
	ran := 0
	h.engines[0].Schedule(10*us, func() { ran++ })
	h.engines[1].Schedule(10*us, func() { ran++ })
	h.global.Schedule(10*us, func() { ran++ })
	h.coord.RunUntil(10 * us)
	if ran != 3 {
		t.Fatalf("%d deadline-timestamped events ran, want 3", ran)
	}
}

// TestRepeatedRunUntil checks that back-to-back RunUntil calls (the
// harness's per-interval ticking pattern) compose: no event runs twice,
// none is lost at a call boundary.
func TestRepeatedRunUntil(t *testing.T) {
	h := newHarness(t, 2*us)
	var got []eventsim.Time
	for i := 1; i <= 10; i++ {
		at := eventsim.Time(i) * us
		h.engines[i%2].Schedule(at, func() { got = append(got, at) })
	}
	for i := 1; i <= 5; i++ {
		h.coord.RunUntil(eventsim.Time(i*2) * us)
	}
	if len(got) != 10 {
		t.Fatalf("%d events ran, want 10", len(got))
	}
	for i := range got {
		if got[i] != eventsim.Time(i+1)*us {
			t.Fatalf("event order %v", got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	g := eventsim.NewEngine(1)
	e := eventsim.NewEngine(2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { shard.New(g, []*eventsim.Engine{e}, 0, nil) })
	mustPanic("no engines", func() { shard.New(g, nil, us, nil) })
}
