package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestAfterAccumulatesTime(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.After(10, func() {
		e.After(15, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 25 {
		t.Errorf("nested After fired at %v, want 25", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	id := e.Schedule(10, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling again must be a no-op.
	e.Cancel(id)
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	var id EventID
	id = e.Schedule(10, func() {})
	e.Run()
	e.Cancel(id) // must not panic
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var got []int
	ids := make([]EventID, 5)
	for i := 0; i < 5; i++ {
		i := i
		ids[i] = e.Schedule(Time(i+1), func() { got = append(got, i) })
	}
	e.Cancel(ids[2])
	e.Run()
	for _, v := range got {
		if v == 2 {
			t.Fatalf("cancelled event 2 fired: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %d events, want 4", len(got))
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending() = %d, want 7", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now() = %v, want 12 after RunUntil(12)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("resume fired %v, want all 4", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("Now() = %v, want 500 on idle engine", e.Now())
	}
}

func TestDeterministicRandStreams(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	ra, rb := a.Rand(), b.Rand()
	for i := 0; i < 100; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatal("same-seed engines produced different component streams")
		}
	}
	// A second stream must be independent of the first.
	ra2 := a.Rand()
	same := true
	for i := 0; i < 20; i++ {
		if ra2.Int63() != rb.Int63() {
			same = false
		}
	}
	if same {
		t.Error("second component stream identical to first")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed)
	}
}

func TestTimeConversions(t *testing.T) {
	if Millisecond.Micros() != 1000 {
		t.Errorf("Millisecond.Micros() = %v", Millisecond.Micros())
	}
	if Second.Millis() != 1000 {
		t.Errorf("Second.Millis() = %v", Second.Millis())
	}
	if (2 * Second).Seconds() != 2 {
		t.Errorf("(2s).Seconds() = %v", (2 * Second).Seconds())
	}
	if Microsecond.Duration().Nanoseconds() != 1000 {
		t.Errorf("Microsecond.Duration() = %v", Microsecond.Duration())
	}
}

// Property: regardless of insertion order, events fire in nondecreasing
// time order and the engine processes exactly as many events as scheduled.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		e := NewEngine(seed)
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		e := NewEngine(1)
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		firedCount := 0
		ids := make([]EventID, count)
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			ids[i] = e.Schedule(Time(rng.Intn(100)+1), func() { firedCount++ })
		}
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		e.Run()
		return firedCount == count-len(cancelled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j), func() {})
		}
		e.Run()
	}
}
