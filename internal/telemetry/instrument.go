package telemetry

// Subsystem metric bundles. Each bundle resolves its families from a
// registry exactly once, so the instrumented components hold direct
// handles and never touch the registry's mutex on their update paths.
// Constructors are get-or-create: many components (parallel experiment
// arms, one agent per ToR) can share one registry and accumulate into
// the same families.

// Metric name constants, exported so tests and scrape checks don't
// drift from the instrumentation.
const (
	// VirtualTimeGauge is the simulator's virtual clock in nanoseconds,
	// published by whichever control loop ticked last.
	VirtualTimeGauge = "paraleon_virtual_time_ns"
)

// SketchMetrics covers the data-plane measurement structure: insert /
// read / reset activity and Ostracism evictions, accumulated at
// interval granularity so the per-packet path stays untouched.
type SketchMetrics struct {
	Inserts    *Counter // sketch insert operations (≈ packets recorded)
	Bytes      *Counter // bytes credited to flows
	Evictions  *Counter // Ostracism replacements
	Reads      *Counter // interval-end heavy-part reads
	Resets     *Counter // interval-end resets
	Skipped    *Counter // packets declined by the insert-once rule
	HeavyFlows *Gauge   // heavy-part residents at the last read
}

// NewSketchMetrics resolves the sketch family set from r.
func NewSketchMetrics(r *Registry) *SketchMetrics {
	return &SketchMetrics{
		Inserts:    r.Counter("paraleon_sketch_inserts_total", "Sketch insert operations across all agents."),
		Bytes:      r.Counter("paraleon_sketch_bytes_total", "Bytes inserted into sketches across all agents."),
		Evictions:  r.Counter("paraleon_sketch_evictions_total", "Ostracism evictions from sketch heavy parts."),
		Reads:      r.Counter("paraleon_sketch_reads_total", "Interval-end sketch reads."),
		Resets:     r.Counter("paraleon_sketch_resets_total", "Interval-end sketch resets."),
		Skipped:    r.Counter("paraleon_sketch_skipped_total", "Packets skipped by the TOS insert-once rule."),
		HeavyFlows: r.Gauge("paraleon_sketch_heavy_flows", "Heavy-part residents at the most recent interval read."),
	}
}

// MonitorMetrics covers controller-side aggregation: interval ticks,
// per-interval FSD sizes, KL trigger values and firings, and the
// degradation ledger (quorum freezes, evictions, readmissions).
type MonitorMetrics struct {
	Ticks       *Counter
	Triggers    *Counter
	FrozenTicks *Counter
	Evictions   *Counter
	Readmits    *Counter

	PresentAgents *Gauge
	Degraded      *Gauge // 1 when the last FSD aggregated an incomplete agent set
	ElephantShare *Gauge // ternary-weighted elephant flow share of the current FSD
	LastKL        *Gauge

	KL       *Histogram // per-interval trigger divergence
	FSDFlows *Histogram // per-interval distinct tracked flows
	FSDBytes *Histogram // per-interval aggregated byte mass
}

// NewMonitorMetrics resolves the monitor family set from r.
func NewMonitorMetrics(r *Registry) *MonitorMetrics {
	return &MonitorMetrics{
		Ticks:         r.Counter("paraleon_monitor_ticks_total", "Monitor intervals closed by the controller."),
		Triggers:      r.Counter("paraleon_monitor_triggers_total", "KL trigger firings."),
		FrozenTicks:   r.Counter("paraleon_monitor_frozen_ticks_total", "Intervals held below quorum."),
		Evictions:     r.Counter("paraleon_monitor_evictions_total", "Stale agents evicted from the membership."),
		Readmits:      r.Counter("paraleon_monitor_readmits_total", "Evicted agents readmitted on recovery."),
		PresentAgents: r.Gauge("paraleon_monitor_present_agents", "Agents that reported at the last tick."),
		Degraded:      r.Gauge("paraleon_monitor_degraded", "1 when the current FSD is aggregated from a partial agent set."),
		ElephantShare: r.Gauge("paraleon_monitor_elephant_share", "Ternary-weighted elephant flow share of the current FSD."),
		LastKL:        r.Gauge("paraleon_monitor_last_kl", "Trigger divergence computed at the most recent tick."),
		KL:            r.Histogram("paraleon_monitor_kl", "Per-interval KL trigger divergence.", BucketsKL),
		FSDFlows:      r.Histogram("paraleon_monitor_fsd_flows", "Per-interval distinct flows in the network-wide FSD.", BucketsFlows),
		FSDBytes:      r.Histogram("paraleon_monitor_fsd_bytes", "Per-interval byte mass behind the network-wide FSD.", BucketsBytes),
	}
}

// TunerMetrics covers the pluggable search strategies and the dispatch
// path: proposal / iteration / acceptance counts, session lifecycle,
// best utility, bandit regret, per-agent commits, and
// virtual-time-denominated dispatch latencies. One bundle serves every
// strategy; gauges a strategy does not drive simply stay put.
type TunerMetrics struct {
	Iterations *Counter
	Accepts    *Counter
	Rejects    *Counter
	Sessions   *Counter // sessions run to completion
	Aborts     *Counter
	Dispatches *Counter
	Rollbacks  *Counter
	// Proposals counts vectors the strategy handed out for dispatch;
	// GuardRejects counts proposals the admission guard refused before
	// they touched the fabric; AgentCommits counts per-switch local ECN
	// commits (the multiecn strategy).
	Proposals    *Counter
	GuardRejects *Counter
	AgentCommits *Counter

	Active      *Gauge
	Temperature *Gauge
	BestUtility *Gauge
	// Regret accumulates the bandit strategy's shortfall against the
	// best reward seen so far.
	Regret *Gauge

	// DispatchLatencyMs measures trigger→dispatch in virtual
	// milliseconds for every dispatch of a session; SettleMs measures
	// trigger→session-completion.
	DispatchLatencyMs *Histogram
	SettleMs          *Histogram
}

// NewTunerMetrics resolves the tuner family set from r.
func NewTunerMetrics(r *Registry) *TunerMetrics {
	return &TunerMetrics{
		Iterations:        r.Counter("paraleon_tuner_iterations_total", "SA iterations consumed."),
		Accepts:           r.Counter("paraleon_tuner_accepts_total", "Metropolis acceptances."),
		Rejects:           r.Counter("paraleon_tuner_rejects_total", "Metropolis rejections."),
		Sessions:          r.Counter("paraleon_tuner_sessions_total", "Tuning sessions run to completion."),
		Aborts:            r.Counter("paraleon_tuner_aborts_total", "Tuning sessions aborted."),
		Dispatches:        r.Counter("paraleon_tuner_dispatches_total", "Parameter vectors dispatched to the fabric."),
		Rollbacks:         r.Counter("paraleon_tuner_rollbacks_total", "Reversion dispatches to the last-known-good vector."),
		Proposals:         r.Counter("paraleon_tuner_proposals_total", "Parameter vectors proposed by the search strategy."),
		GuardRejects:      r.Counter("paraleon_tuner_guard_rejects_total", "Proposals refused by the dispatch admission guard."),
		AgentCommits:      r.Counter("paraleon_tuner_agent_commits_total", "Per-switch local ECN commits (multiecn strategy)."),
		Active:            r.Gauge("paraleon_tuner_active", "1 while a tuning session is in progress."),
		Temperature:       r.Gauge("paraleon_tuner_temperature", "Current annealing temperature."),
		BestUtility:       r.Gauge("paraleon_tuner_best_utility", "Best utility found in the current or last session (0-100 scale)."),
		Regret:            r.Gauge("paraleon_tuner_regret", "Cumulative reward shortfall vs best-seen (bandit strategy)."),
		DispatchLatencyMs: r.Histogram("paraleon_tuner_dispatch_latency_ms", "Trigger-to-dispatch latency in virtual milliseconds.", BucketsLatencyMs),
		SettleMs:          r.Histogram("paraleon_tuner_settle_ms", "Trigger-to-session-completion latency in virtual milliseconds.", BucketsLatencyMs),
	}
}

// RPCMetrics covers the TCP control plane: frame and byte flow, report
// and tick traffic, redial attempts and successful reconnects.
type RPCMetrics struct {
	FramesIn   *Counter
	FramesOut  *Counter
	BytesIn    *Counter
	BytesOut   *Counter
	Reports    *Counter
	Ticks      *Counter
	Retries    *Counter // redial attempts (including failed ones)
	Reconnects *Counter // successful redials after a broken call
}

// NewRPCMetrics resolves the ctrlrpc family set from r.
func NewRPCMetrics(r *Registry) *RPCMetrics {
	return &RPCMetrics{
		FramesIn:   r.Counter("paraleon_ctrlrpc_frames_in_total", "Control-plane frames received."),
		FramesOut:  r.Counter("paraleon_ctrlrpc_frames_out_total", "Control-plane frames sent."),
		BytesIn:    r.Counter("paraleon_ctrlrpc_bytes_in_total", "Control-plane bytes received."),
		BytesOut:   r.Counter("paraleon_ctrlrpc_bytes_out_total", "Control-plane bytes sent."),
		Reports:    r.Counter("paraleon_ctrlrpc_reports_total", "Agent interval reports processed."),
		Ticks:      r.Counter("paraleon_ctrlrpc_ticks_total", "Controller interval ticks processed."),
		Retries:    r.Counter("paraleon_ctrlrpc_retries_total", "Redial attempts by reconnecting clients."),
		Reconnects: r.Counter("paraleon_ctrlrpc_reconnects_total", "Successful redials after broken calls."),
	}
}

// ChaosMetrics covers fault injection and the system's response to it.
type ChaosMetrics struct {
	Faults    *Counter
	Recovers  *Counter
	Rollbacks *Counter
}

// NewChaosMetrics resolves the chaos family set from r.
func NewChaosMetrics(r *Registry) *ChaosMetrics {
	return &ChaosMetrics{
		Faults:    r.Counter("paraleon_chaos_faults_total", "Injected or detected faults."),
		Recovers:  r.Counter("paraleon_chaos_recovers_total", "Recoveries from faults."),
		Rollbacks: r.Counter("paraleon_chaos_rollbacks_total", "Parameter rollbacks observed under chaos."),
	}
}

// DispatchMetrics covers the safe-dispatch pipeline: guardrail
// admissions/rejections, rollout plan lifecycle (phase, commits,
// aborts), the epoch commit protocol (epochs granted, ACKs, retries),
// canary settle latency, and write-ahead-log activity.
type DispatchMetrics struct {
	Admitted   *Counter // vectors admitted by the guard
	Rejects    *Counter // vectors refused by the guard (any reason)
	Plans      *Counter // canary rollout plans started
	Commits    *Counter // plans promoted and committed fabric-wide
	PlanAborts *Counter // plans aborted (health or ACK exhaustion)
	Epochs     *Counter // epoch numbers granted
	Acks       *Counter // device ACKs accepted toward quorum
	AckRetries *Counter // re-apply waves after an ACK deadline

	Phase *Gauge // current plan phase (0 idle, 1 canary, 2 settle, 3 promote)

	// SettleMs is the canary settle latency: plan start to promote
	// decision, in virtual milliseconds, for plans that promoted.
	SettleMs *Histogram

	WALRecords     *Counter // records appended to the intent log
	WALReplays     *Counter // recovery replays performed
	WALReplayedRec *Counter // records read back during replays
}

// NewDispatchMetrics resolves the dispatch family set from r.
func NewDispatchMetrics(r *Registry) *DispatchMetrics {
	return &DispatchMetrics{
		Admitted:       r.Counter("paraleon_dispatch_admitted_total", "Parameter vectors admitted by the dispatch guard."),
		Rejects:        r.Counter("paraleon_dispatch_rejects_total", "Parameter vectors refused by the dispatch guard."),
		Plans:          r.Counter("paraleon_dispatch_plans_total", "Canary rollout plans started."),
		Commits:        r.Counter("paraleon_dispatch_commits_total", "Rollout plans promoted and committed fabric-wide."),
		PlanAborts:     r.Counter("paraleon_dispatch_plan_aborts_total", "Rollout plans aborted by health signals or ACK exhaustion."),
		Epochs:         r.Counter("paraleon_dispatch_epochs_total", "Dispatch epoch numbers granted."),
		Acks:           r.Counter("paraleon_dispatch_acks_total", "Device ACKs accepted toward phase quorum."),
		AckRetries:     r.Counter("paraleon_dispatch_ack_retries_total", "Re-apply waves sent after an ACK deadline expired."),
		Phase:          r.Gauge("paraleon_dispatch_phase", "Current rollout phase (0 idle, 1 canary, 2 settle, 3 promote)."),
		SettleMs:       r.Histogram("paraleon_dispatch_canary_settle_ms", "Canary settle latency (plan start to promote) in virtual milliseconds.", BucketsLatencyMs),
		WALRecords:     r.Counter("paraleon_dispatch_wal_records_total", "Records appended to the write-ahead intent log."),
		WALReplays:     r.Counter("paraleon_dispatch_wal_replays_total", "Write-ahead-log recovery replays performed."),
		WALReplayedRec: r.Counter("paraleon_dispatch_wal_replayed_records_total", "Records read back during write-ahead-log replays."),
	}
}

// SimMetrics covers workload-level outcomes of a simulation run.
// Populated opportunistically (flow-completion hooks are composable),
// so harnesses attach it only when a consumer — the flight recorder,
// a report — wants the distribution.
type SimMetrics struct {
	FCTMs *Histogram
}

// NewSimMetrics resolves the sim family set from r.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		FCTMs: r.Histogram("paraleon_sim_fct_ms", "Flow completion times in virtual milliseconds.", BucketsFCTMs),
	}
}

// VirtualTime returns the virtual-clock gauge; control loops set it to
// the engine's current time (nanoseconds) each tick so scrapers can
// correlate wall-clock scrape times with virtual-time trace events.
func VirtualTime(r *Registry) *Gauge {
	return r.Gauge(VirtualTimeGauge, "Simulator virtual clock in nanoseconds at the last control-loop tick.")
}
