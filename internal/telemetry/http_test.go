package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHTTPServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("paraleon_test_total", "A test counter.").Add(3)
	r.PublishStatus("control_loop", map[string]any{"triggers": 2})
	VirtualTime(r).Set(1.5e6)

	srv, err := Serve(nil, "127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "paraleon_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	code, body, hdr = get(t, base+"/debug/status")
	if code != http.StatusOK {
		t.Fatalf("/debug/status status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/status content type %q", ct)
	}
	var payload struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		VirtualTimeNs int64          `json:"virtual_time_ns"`
		Sections      map[string]any `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/debug/status not JSON: %v\n%s", err, body)
	}
	if payload.VirtualTimeNs != 1500000 {
		t.Errorf("virtual_time_ns = %d, want 1500000", payload.VirtualTimeNs)
	}
	if payload.Sections["control_loop"] == nil {
		t.Error("/debug/status missing control_loop section")
	}

	if code, _, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestShutdownNoGoroutineLeak verifies graceful shutdown reaps the serve
// and watcher goroutines — an operator toggling -telemetry-addr across
// many runs must not accumulate listeners.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		srv, err := Serve(ctx, "127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if code, _, _ := get(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusOK {
			t.Fatalf("iteration %d: /metrics status %d", i, code)
		}
		if i%2 == 0 {
			// Direct shutdown.
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Fatalf("iteration %d: shutdown: %v", i, err)
			}
			// Second call must be a safe no-op.
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Fatalf("iteration %d: repeat shutdown: %v", i, err)
			}
		} else {
			// Context-cancel shutdown.
			cancel()
			deadline := time.Now().Add(2 * time.Second)
			for {
				if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err != nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("iteration %d: server still serving after ctx cancel", i)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		cancel()
	}
	// Goroutine counts are noisy (http keep-alive reapers, test runtime);
	// poll until we are back near the baseline.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve(nil, "256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}

// Example of correlating a scrape with virtual time: the gauge moves as
// the loop ticks, and /debug/status reports the same clock.
func ExampleVirtualTime() {
	r := NewRegistry()
	VirtualTime(r).Set(2e6)
	fmt.Println(int64(VirtualTime(r).Value()))
	// Output: 2000000
}
