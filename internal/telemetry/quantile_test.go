package telemetry

import (
	"math"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 observations: 5 in (0,1], 3 in (1,2], 2 in (2,4].
	cum := []int64{5, 8, 10, 10}
	if got := Quantile(bounds, cum, 0.50); got != 1 {
		t.Errorf("p50=%g, want 1 (rank 5 lands exactly on the first bound)", got)
	}
	// Rank 8 closes the (1,2] bucket.
	if got := Quantile(bounds, cum, 0.80); got != 2 {
		t.Errorf("p80=%g, want 2", got)
	}
	// Rank 9 is halfway through the (2,4] bucket: 2 + 2*(9-8)/2 = 3.
	if got := Quantile(bounds, cum, 0.90); got != 3 {
		t.Errorf("p90=%g, want 3", got)
	}
	// +Inf bucket clamps to the last finite bound.
	over := []int64{0, 0, 0, 10}
	if got := Quantile(bounds, over, 0.99); got != 4 {
		t.Errorf("overflow p99=%g, want clamp to 4", got)
	}
	if got := Quantile(bounds, []int64{0, 0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile=%g, want NaN", got)
	}
	if got := Quantile(bounds, []int64{1, 2}, 0.5); !math.IsNaN(got) {
		t.Errorf("misaligned counts quantile=%g, want NaN", got)
	}
}

func TestRegistryHistogramsSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("paraleon_sim_fct_ms", "test", BucketsFCTMs)
	r.Histogram("paraleon_monitor_kl", "never observed", BucketsKL)
	h.Observe(0.3)
	h.Observe(7)
	snaps := r.Histograms()
	if len(snaps) != 1 {
		t.Fatalf("Histograms()=%d families, want only the observed one", len(snaps))
	}
	s := snaps[0]
	if s.Name != "paraleon_sim_fct_ms" || s.Count != 2 || s.Sum != 7.3 {
		t.Fatalf("snapshot %+v", s)
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("counts/bounds misaligned: %d vs %d", len(s.Counts), len(s.Bounds))
	}
	if q := s.Quantile(0.95); q <= 0.3 || math.IsNaN(q) {
		t.Fatalf("p95=%g", q)
	}
}
