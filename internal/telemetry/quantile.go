package telemetry

import "math"

// HistogramSnapshot is a point-in-time copy of one histogram family:
// its fixed bucket bounds, cumulative counts (the +Inf bucket last),
// and sum/count. Flight-recorder artifacts embed these so offline
// analysis can recompute any quantile without the live registry.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	// Counts is cumulative and aligned with Bounds plus a final +Inf
	// entry, exactly as /metrics exposes it.
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
	Count  int64   `json:"count"`
}

// Quantile returns QuantileOf(s, q) for the snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return Quantile(s.Bounds, s.Counts, q)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a fixed-bucket
// histogram from its ascending bucket bounds and cumulative counts
// (len(cum) == len(bounds)+1, the last entry being the +Inf bucket).
// The estimate interpolates linearly within the bucket holding the
// rank, like Prometheus's histogram_quantile; ranks landing in the
// +Inf bucket clamp to the highest finite bound. An empty histogram
// yields NaN.
func Quantile(bounds []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(bounds)+1 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := 0
	for i < len(cum)-1 && float64(cum[i]) < rank {
		i++
	}
	if i == len(bounds) {
		// Rank falls past the last finite bound: the true value is
		// unbounded above; report the best lower bound we have.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lo := 0.0
	var below int64
	if i > 0 {
		lo = bounds[i-1]
		below = cum[i-1]
	}
	hi := bounds[i]
	inBucket := cum[i] - below
	if inBucket <= 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(below))/float64(inBucket)
}

// Histograms snapshots every histogram family that has recorded at
// least one observation, in name order. Bounds and counts are copies:
// callers may retain them across further Observe traffic.
func (r *Registry) Histograms() []HistogramSnapshot {
	var out []HistogramSnapshot
	for _, f := range r.sortedFamilies() {
		if f.kind != kindHistogram || f.h.Count() == 0 {
			continue
		}
		out = append(out, HistogramSnapshot{
			Name:   f.name,
			Bounds: append([]float64(nil), f.h.bounds...),
			Counts: f.h.snapshot(),
			Sum:    f.h.Sum(),
			Count:  f.h.Count(),
		})
	}
	return out
}

// Names returns every registered family name in sorted order (the
// metric-name lint test walks this against the README table).
func (r *Registry) Names() []string {
	fams := r.sortedFamilies()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.name
	}
	return out
}
