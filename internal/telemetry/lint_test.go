package telemetry

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// metricNameRe is the project's naming contract: every runtime metric
// is lowercase snake_case under the paraleon_ prefix. The registry's
// own nameRe is looser (it allows anything Prometheus allows); this
// test pins the stricter house style.
var metricNameRe = regexp.MustCompile(`^paraleon_[a-z0-9_]+$`)

// registerAll instantiates every metric family the binaries can
// register at runtime, so Names() below is the complete inventory.
func registerAll(r *Registry) {
	NewSketchMetrics(r)
	NewMonitorMetrics(r)
	NewTunerMetrics(r)
	NewRPCMetrics(r)
	NewChaosMetrics(r)
	NewDispatchMetrics(r)
	NewSimMetrics(r)
	VirtualTime(r)
}

// TestMetricNamesLint fails when a runtime-registered metric name is
// malformed or missing from the README metrics inventory table — an
// undocumented metric is a doc bug, and a renamed metric must rename
// its documentation in the same change.
func TestMetricNamesLint(t *testing.T) {
	r := NewRegistry()
	registerAll(r)
	names := r.Names()
	if len(names) < 50 {
		t.Fatalf("only %d metric families registered; registerAll is missing a constructor", len(names))
	}

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	doc := string(readme)

	for _, name := range names {
		if !metricNameRe.MatchString(name) {
			t.Errorf("metric %q does not match %s", name, metricNameRe)
		}
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %q is not documented in README.md's metrics table", name)
		}
	}
}
