package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// HTTPServer serves a registry's introspection endpoints:
//
//	/metrics        Prometheus text exposition
//	/debug/status   JSON snapshot (clocks + published status sections)
//	/debug/pprof/   net/http/pprof profiles
//
// The listener is guarded with a ReadHeaderTimeout so a stalled scraper
// cannot pin an accept slot, and shuts down gracefully — on Shutdown or
// on cancellation of the context passed to Serve — without leaking its
// serve goroutine.
type HTTPServer struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener

	shutOnce sync.Once
	shutErr  error
	done     chan struct{} // closed when the serve loop exits
}

// statusPayload is the /debug/status document.
type statusPayload struct {
	// WallTime is the scrape instant; UptimeSeconds counts from registry
	// creation.
	WallTime      time.Time `json:"wall_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// VirtualTimeNs is the simulator clock at the last control-loop
	// tick (see VirtualTimeGauge); zero when nothing has ticked.
	VirtualTimeNs int64 `json:"virtual_time_ns"`
	// Sections holds the latest PublishStatus snapshot per section
	// (e.g. control_loop: current parameter vector, quorum state, last
	// trigger, SA progress).
	Sections map[string]any `json:"sections"`
	// Histograms summarizes every histogram family with at least one
	// observation: p50/p95/p99 interpolated from the fixed buckets
	// (see Quantile), in name order.
	Histograms []histogramStatus `json:"histograms,omitempty"`
}

// histogramStatus is one /debug/status histogram summary line.
type histogramStatus struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Serve starts the introspection server on addr (use "127.0.0.1:0" for
// an ephemeral port). If ctx is non-nil, its cancellation triggers a
// graceful shutdown; Shutdown can also be called directly.
func Serve(ctx context.Context, addr string, reg *Registry) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{reg: reg, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/status", s.handleStatus)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{
		Handler: mux,
		// Header read is bounded so half-open scrapers cannot hold
		// connections; no WriteTimeout, because pprof profile captures
		// legitimately stream for tens of seconds.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(shutCtx)
			case <-s.done:
			}
		}()
	}
	return s, nil
}

// Addr reports the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes, in-flight
// requests get until ctx's deadline to finish, and the serve goroutine
// exits before Shutdown returns. Safe to call more than once.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.shutErr = s.srv.Shutdown(ctx)
		<-s.done
	})
	return s.shutErr
}

func (s *HTTPServer) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *HTTPServer) handleStatus(w http.ResponseWriter, req *http.Request) {
	now := time.Now()
	payload := statusPayload{
		WallTime:      now,
		UptimeSeconds: now.Sub(s.reg.Started()).Seconds(),
		VirtualTimeNs: int64(VirtualTime(s.reg).Value()),
		Sections:      s.reg.Status(),
	}
	for _, h := range s.reg.Histograms() {
		payload.Histograms = append(payload.Histograms, histogramStatus{
			Name:  h.Name,
			Count: h.Count,
			Sum:   h.Sum,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}
