package series

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Offline analysis over black-box artifacts: percentile summaries,
// ASCII sparklines, and the two-run diff with a regression verdict.
// cmd/paraleon-analyze is a thin shell over these.

// Stats returns min/mean/max of the dump's values (NaNs if empty).
func (d *SeriesDump) Stats() (min, mean, max float64) {
	if len(d.V) == 0 {
		n := math.NaN()
		return n, n, n
	}
	min, max = d.V[0], d.V[0]
	sum := 0.0
	for _, v := range d.V {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, sum / float64(len(d.V)), max
}

// Mean returns the mean of the dump's values (NaN if empty).
func (d *SeriesDump) Mean() float64 {
	_, m, _ := d.Stats()
	return m
}

// Percentile returns the p-th percentile (0–100, nearest-rank) of the
// dump's values, NaN if empty. It sorts a copy; dumps are offline
// artifacts, not hot-path state.
func (d *SeriesDump) Percentile(p float64) float64 {
	if len(d.V) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), d.V...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// sparkBlocks are the eight-level bar glyphs sparklines draw with.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width block-glyph strip,
// resampling by bucket mean when len(v) > width. A flat series draws
// at the lowest level; an empty one returns "".
func Sparkline(v []float64, width int) string {
	if len(v) == 0 || width <= 0 {
		return ""
	}
	if len(v) < width {
		width = len(v)
	}
	cells := make([]float64, width)
	for i := range cells {
		lo := i * len(v) / width
		hi := (i + 1) * len(v) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range v[lo:hi] {
			sum += x
		}
		cells[i] = sum / float64(hi-lo)
	}
	min, max := cells[0], cells[0]
	for _, c := range cells {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for _, c := range cells {
		level := 0
		if max > min {
			level = int((c - min) / (max - min) * float64(len(sparkBlocks)-1))
		}
		b.WriteRune(sparkBlocks[level])
	}
	return b.String()
}

// WriteSummary renders an artifact for humans: identity, the anomaly
// timeline, per-series percentile lines with sparklines, and
// histogram quantiles.
func WriteSummary(w io.Writer, a *Artifact) {
	fmt.Fprintf(w, "artifact: %s", a.Meta.Experiment)
	if a.Meta.Tuner != "" {
		fmt.Fprintf(w, " tuner=%s", a.Meta.Tuner)
	}
	fmt.Fprintf(w, " seed=%d", a.Meta.Seed)
	if a.Meta.Scale != "" {
		fmt.Fprintf(w, " scale=%s", a.Meta.Scale)
	}
	if a.Meta.IntervalNs > 0 {
		fmt.Fprintf(w, " interval=%.3gms", float64(a.Meta.IntervalNs)/1e6)
	}
	fmt.Fprintf(w, " end=%.3gms\n", float64(a.EndT)/1e6)

	fmt.Fprintf(w, "anomalies (%d):\n", len(a.Anomalies))
	for _, an := range a.Anomalies {
		snap := ""
		if an.Snapshot >= 0 {
			snap = fmt.Sprintf(" [snapshot %d]", an.Snapshot)
		}
		fmt.Fprintf(w, "  t=%-9.3fms %-22s %s%s\n", float64(an.T)/1e6, an.Kind, an.Detail, snap)
	}
	if len(a.Events) > 0 {
		fmt.Fprintf(w, "events: %d recorded", len(a.Events))
		if a.EventsDropped > 0 {
			fmt.Fprintf(w, " (%d older dropped)", a.EventsDropped)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "series (%d):\n", len(a.Series))
	for i := range a.Series {
		d := &a.Series[i]
		min, mean, max := d.Stats()
		fmt.Fprintf(w, "  %-28s n=%-4d min=%-10.4g mean=%-10.4g max=%-10.4g p50=%-10.4g p95=%-10.4g p99=%.4g\n",
			d.Name, len(d.V), min, mean, max,
			d.Percentile(50), d.Percentile(95), d.Percentile(99))
		if line := Sparkline(d.V, 64); line != "" {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}

	if len(a.Histograms) > 0 {
		fmt.Fprintf(w, "histograms (%d):\n", len(a.Histograms))
		for _, h := range a.Histograms {
			fmt.Fprintf(w, "  %-42s count=%-7d p50=%-10.4g p95=%-10.4g p99=%.4g\n",
				h.Name, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
}

// Polarity classifies a signal for the diff verdict: +1 higher is
// better, -1 lower is better, 0 informational only.
func Polarity(name string) int {
	switch name {
	case "utility", "util_ewma", "otp", "ortt", "opfc", "tuner_best_utility":
		return +1
	}
	switch {
	case strings.HasPrefix(name, "pfc_pause_frac"):
		return -1
	case strings.HasSuffix(name, "_fct_ms"), strings.HasSuffix(name, "_latency_ms"),
		strings.HasSuffix(name, "_settle_ms"):
		return -1
	}
	return 0
}

// DiffLine is one compared signal.
type DiffLine struct {
	Name     string
	Stat     string // "mean" for series, "p95" for histograms
	A, B     float64
	Polarity int
	// Verdict is "ok", "better", "worse", or "info".
	Verdict string
}

// DiffResult is a two-artifact comparison.
type DiffResult struct {
	Lines []DiffLine
	// Regressions counts judged signals where B is worse than A
	// beyond tolerance.
	Regressions int
}

// Clean reports whether no judged signal regressed.
func (d *DiffResult) Clean() bool { return d.Regressions == 0 }

// Diff compares two artifacts signal by signal: the mean of every
// series present in both, and the p95 of every histogram present in
// both. A judged signal (Polarity ≠ 0) is a regression when B is
// worse than A by more than tol relatively AND by an absolute floor
// of 5% of the signal's scale — the floor keeps near-zero signals
// (a pause fraction of 0.001 vs 0.002) from tripping on noise.
func Diff(a, b *Artifact, tol float64) *DiffResult {
	res := &DiffResult{}
	judge := func(name, stat string, va, vb float64) {
		pol := Polarity(name)
		line := DiffLine{Name: name, Stat: stat, A: va, B: vb, Polarity: pol, Verdict: "info"}
		if pol != 0 && !math.IsNaN(va) && !math.IsNaN(vb) {
			scale := math.Max(math.Abs(va), math.Abs(vb))
			delta := float64(pol) * (vb - va) // >0 improved, <0 worsened
			switch {
			case -delta > tol*scale && -delta > 0.05*math.Max(1, scale):
				line.Verdict = "worse"
				res.Regressions++
			case delta > tol*scale && delta > 0.05*math.Max(1, scale):
				line.Verdict = "better"
			default:
				line.Verdict = "ok"
			}
		}
		res.Lines = append(res.Lines, line)
	}
	for i := range a.Series {
		da := &a.Series[i]
		db := b.FindSeries(da.Name)
		if db == nil {
			continue
		}
		judge(da.Name, "mean", da.Mean(), db.Mean())
	}
	for _, ha := range a.Histograms {
		hb := b.FindHistogram(ha.Name)
		if hb == nil {
			continue
		}
		judge(ha.Name, "p95", ha.Quantile(0.95), hb.Quantile(0.95))
	}
	return res
}

// WriteDiff renders a diff with its verdict line (the last line is
// always "verdict: ...", which CI greps).
func WriteDiff(w io.Writer, a, b *Artifact, d *DiffResult) {
	fmt.Fprintf(w, "diff: A=%s seed=%d tuner=%s  vs  B=%s seed=%d tuner=%s\n",
		a.Meta.Experiment, a.Meta.Seed, a.Meta.Tuner,
		b.Meta.Experiment, b.Meta.Seed, b.Meta.Tuner)
	fmt.Fprintf(w, "  %-42s %-5s %12s %12s %8s  %s\n", "signal", "stat", "A", "B", "delta%", "verdict")
	for _, l := range d.Lines {
		deltaPct := math.NaN()
		if scale := math.Max(math.Abs(l.A), math.Abs(l.B)); scale > 0 {
			deltaPct = (l.B - l.A) / scale * 100
		}
		fmt.Fprintf(w, "  %-42s %-5s %12.5g %12.5g %+7.1f%%  %s\n",
			l.Name, l.Stat, l.A, l.B, deltaPct, l.Verdict)
	}
	fmt.Fprintf(w, "  anomalies: A=%d B=%d\n", len(a.Anomalies), len(b.Anomalies))
	if d.Clean() {
		fmt.Fprintln(w, "verdict: NO REGRESSION")
	} else {
		fmt.Fprintf(w, "verdict: REGRESSION (%d signal(s) worse)\n", d.Regressions)
	}
}
