// Package series is the virtual-time time-series layer under the
// flight recorder: fixed-capacity ring buffers sampled once per
// monitor interval (queue depth, ECN mark rate, PFC pause fraction,
// KL, utility, dispatch phase, ...), plus the Recorder that snapshots
// them into self-contained, deterministic JSON black-box artifacts
// when an anomaly trips.
//
// Design constraints, in order:
//
//  1. Steady-state sampling allocates nothing. Every Series is sized
//     at attach time and Append never grows it; overflow is handled by
//     in-place 2× downsampling.
//  2. Artifacts are deterministic: a fixed seed yields byte-identical
//     JSON at any shard count. Nothing here reads wall clocks, draws
//     randomness, or iterates a map when building output.
//  3. The layer is read-only with respect to the simulation: it never
//     schedules engine events, so enabling it leaves event traces (and
//     the recorded goldens) untouched.
package series

import "fmt"

// Series is a fixed-capacity time series over (virtual time, value)
// samples. When the buffer fills, it halves itself in place — keeping
// every second sample — and doubles its acceptance stride, so a series
// of capacity C holds at most C uniformly spaced samples covering the
// whole run regardless of length. Capacity must be even for the kept
// samples to stay on-grid after compaction.
type Series struct {
	name string
	unit string
	t    []int64
	v    []float64
	n    int
	// stride is how many offered samples map to one stored sample;
	// skip counts offers remaining until the next store.
	stride  int
	skip    int
	offered int64
}

// newSeries builds a series with the given even capacity (≥ 2).
func newSeries(name, unit string, capacity int) *Series {
	if capacity < 2 || capacity%2 != 0 {
		panic(fmt.Sprintf("series: capacity %d must be even and >= 2", capacity))
	}
	return &Series{
		name:   name,
		unit:   unit,
		t:      make([]int64, capacity),
		v:      make([]float64, capacity),
		stride: 1,
	}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Unit returns the unit label ("bytes", "frac", ...; may be empty).
func (s *Series) Unit() string { return s.unit }

// Len reports the number of stored samples.
func (s *Series) Len() int { return s.n }

// Stride reports how many offered samples one stored sample stands
// for (1 until the first overflow, then 2, 4, ...).
func (s *Series) Stride() int { return s.stride }

// Offered reports the total samples offered via Append, stored or not.
func (s *Series) Offered() int64 { return s.offered }

// At returns the i-th stored sample.
func (s *Series) At(i int) (t int64, v float64) { return s.t[i], s.v[i] }

// Append offers one sample at virtual time t. It is allocation-free:
// on overflow the buffer compacts in place (keeping samples at even
// indices, which stay uniformly spaced because capacity is even) and
// the stride doubles, after which only every stride-th offered sample
// is stored.
func (s *Series) Append(t int64, v float64) {
	s.offered++
	if s.skip > 0 {
		s.skip--
		return
	}
	if s.n == len(s.t) {
		half := s.n / 2
		for i := 1; i < half; i++ {
			s.t[i] = s.t[2*i]
			s.v[i] = s.v[2*i]
		}
		s.n = half
		s.stride *= 2
	}
	s.t[s.n] = t
	s.v[s.n] = v
	s.n++
	s.skip = s.stride - 1
}

// dump copies the stored samples into a SeriesDump. The slices are
// never nil so an empty series serializes as [], not null — artifact
// consumers can index without a null check.
func (s *Series) dump() SeriesDump {
	return SeriesDump{
		Name:    s.name,
		Unit:    s.unit,
		Stride:  s.stride,
		Offered: s.offered,
		T:       append([]int64{}, s.t[:s.n]...),
		V:       append([]float64{}, s.v[:s.n]...),
	}
}

// Set is an ordered, get-or-create collection of same-capacity series.
// Lookup by name is for construction time only; samplers resolve
// *Series handles once and append through them directly.
type Set struct {
	byName map[string]*Series
	order  []*Series
	cap    int
}

// NewSet builds a set whose series each hold capacity samples.
// Capacity must be even; 0 means DefaultCapacity.
func NewSet(capacity int) *Set {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	return &Set{byName: map[string]*Series{}, cap: capacity}
}

// DefaultCapacity bounds each series to 512 samples (~8 KB): a 512-
// interval run at full resolution, arbitrarily long runs downsampled.
const DefaultCapacity = 512

// Series returns the named series, creating it (with the set's
// capacity) on first use. Creation order is preserved for output, so
// callers that construct deterministically get deterministic dumps.
func (st *Set) Series(name, unit string) *Series {
	if s, ok := st.byName[name]; ok {
		return s
	}
	s := newSeries(name, unit, st.cap)
	st.byName[name] = s
	st.order = append(st.order, s)
	return s
}

// Len reports how many series exist.
func (st *Set) Len() int { return len(st.order) }

// All returns the series in creation order.
func (st *Set) All() []*Series { return st.order }

// dump snapshots every series in creation order.
func (st *Set) dump() []SeriesDump {
	out := make([]SeriesDump, len(st.order))
	for i, s := range st.order {
		out[i] = s.dump()
	}
	return out
}
