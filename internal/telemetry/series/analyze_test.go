package series

import (
	"math"
	"strings"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	d := &SeriesDump{V: []float64{5, 1, 4, 2, 3}}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {95, 5}, {100, 5}, {20, 1}, {40, 2},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%g)=%g, want %g", c.p, got, c.want)
		}
	}
	empty := &SeriesDump{}
	if !math.IsNaN(empty.Percentile(50)) {
		t.Error("empty Percentile not NaN")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline %q", got)
	}
	flat := Sparkline([]float64{2, 2, 2}, 10)
	if flat != "▁▁▁" {
		t.Errorf("flat sparkline %q", flat)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline %q", ramp)
	}
	// Longer than width: resampled, still width glyphs.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 64); len([]rune(got)) != 64 {
		t.Errorf("resampled sparkline has %d glyphs, want 64", len([]rune(got)))
	}
}

func TestPolarity(t *testing.T) {
	cases := map[string]int{
		"utility":                            +1,
		"tuner_best_utility":                 +1,
		"otp":                                +1,
		"pfc_pause_frac_tor0":                -1,
		"paraleon_sim_fct_ms":                -1,
		"paraleon_tuner_dispatch_latency_ms": -1,
		"paraleon_tuner_settle_ms":           -1,
		"queue_bytes_tor0":                   0,
		"dispatch_epoch":                     0,
	}
	for name, want := range cases {
		if got := Polarity(name); got != want {
			t.Errorf("Polarity(%q)=%d, want %d", name, got, want)
		}
	}
}

func mkArtifact(utility, pause float64) *Artifact {
	return &Artifact{
		Version: ArtifactVersion,
		Meta:    Meta{Experiment: "unit"},
		Series: []SeriesDump{
			{Name: "utility", V: []float64{utility, utility}},
			{Name: "pfc_pause_frac_tor0", V: []float64{pause, pause}},
			{Name: "dispatch_epoch", V: []float64{1, 2}},
		},
		Anomalies: []Anomaly{},
	}
}

func TestDiffVerdicts(t *testing.T) {
	a := mkArtifact(60, 0.30)

	clean := Diff(a, mkArtifact(60, 0.30), 0.05)
	if !clean.Clean() {
		t.Fatalf("identical runs judged regressed: %+v", clean.Lines)
	}

	// Utility collapse: judged signal, large relative and absolute drop.
	worse := Diff(a, mkArtifact(20, 0.30), 0.05)
	if worse.Clean() || worse.Regressions != 1 {
		t.Fatalf("utility collapse not flagged: %+v", worse.Lines)
	}

	// Pause fraction is lower-is-better: B pausing much more regresses,
	// but a near-zero absolute move does not (the 5%-of-scale floor).
	pause := Diff(mkArtifact(60, 0.30), mkArtifact(60, 0.90), 0.05)
	if pause.Clean() {
		t.Fatalf("pause blow-up not flagged: %+v", pause.Lines)
	}
	noise := Diff(mkArtifact(60, 0.001), mkArtifact(60, 0.002), 0.05)
	if !noise.Clean() {
		t.Fatalf("near-zero pause noise flagged as regression: %+v", noise.Lines)
	}

	// Informational signals never regress, whatever they do.
	for _, l := range worse.Lines {
		if l.Name == "dispatch_epoch" && l.Verdict != "info" {
			t.Fatalf("dispatch_epoch judged %q, want info", l.Verdict)
		}
	}
}

func TestWriteDiffVerdictLine(t *testing.T) {
	a := mkArtifact(60, 0.30)
	for _, c := range []struct {
		b    *Artifact
		want string
	}{
		{mkArtifact(60, 0.30), "verdict: NO REGRESSION"},
		{mkArtifact(20, 0.30), "verdict: REGRESSION (1 signal(s) worse)"},
	} {
		var sb strings.Builder
		d := Diff(a, c.b, 0.05)
		WriteDiff(&sb, a, c.b, d)
		lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
		if got := lines[len(lines)-1]; got != c.want {
			t.Errorf("last diff line %q, want %q", got, c.want)
		}
	}
}
