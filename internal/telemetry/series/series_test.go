package series

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// TestSeriesDownsample drives a small ring far past capacity and checks
// the overflow contract: stride doubles, stored samples stay uniformly
// spaced on the offered grid, and the series spans the whole run.
func TestSeriesDownsample(t *testing.T) {
	const capacity = 8
	s := newSeries("q", "bytes", capacity)
	const n = 100
	for i := 0; i < n; i++ {
		s.Append(int64(i), float64(i))
	}
	if s.Offered() != n {
		t.Fatalf("Offered=%d, want %d", s.Offered(), n)
	}
	if s.Len() > capacity {
		t.Fatalf("Len=%d exceeds capacity %d", s.Len(), capacity)
	}
	if s.Stride() != 16 {
		// 100 offers into 8 slots: stride doubles 1→2→4→8→16.
		t.Fatalf("Stride=%d, want 16", s.Stride())
	}
	// Times are the values we appended, so spacing is directly visible.
	stride := int64(s.Stride())
	for i := 0; i < s.Len(); i++ {
		tm, v := s.At(i)
		if tm != int64(i)*stride {
			t.Fatalf("sample %d at t=%d, want uniform grid t=%d", i, tm, int64(i)*stride)
		}
		if v != float64(tm) {
			t.Fatalf("sample %d: value %g diverged from its time %d", i, v, tm)
		}
	}
	// The last stored sample must be within one stride of the run's end:
	// downsampling keeps coverage of the whole run, not just its start.
	last, _ := s.At(s.Len() - 1)
	if n-last > int64(s.Stride()) {
		t.Fatalf("last stored sample t=%d is more than one stride before the end %d", last, n)
	}
}

// TestSeriesAppendZeroAlloc pins the steady-state sampling contract:
// Append never allocates, including across overflow compactions.
func TestSeriesAppendZeroAlloc(t *testing.T) {
	s := newSeries("q", "bytes", 64)
	var tick int64
	allocs := testing.AllocsPerRun(10000, func() {
		tick++
		s.Append(tick, float64(tick))
	})
	if allocs != 0 {
		t.Fatalf("Series.Append allocates %g/op, want 0", allocs)
	}
}

// TestRecorderSampleZeroAlloc pins the same contract one level up: a
// full per-tick sampling round over resolved handles (the shape of
// core's flight sampler) stays allocation-free.
func TestRecorderSampleZeroAlloc(t *testing.T) {
	rec := NewRecorder(Meta{Experiment: "test"})
	handles := []*Series{
		rec.Set.Series("utility", "score"),
		rec.Set.Series("queue_bytes_tor0", "bytes"),
		rec.Set.Series("pfc_pause_frac_tor0", "frac"),
		rec.Set.Series("monitor_kl", "nats"),
	}
	var tick int64
	allocs := testing.AllocsPerRun(10000, func() {
		tick++
		for _, h := range handles {
			h.Append(tick, float64(tick%7))
		}
	})
	if allocs != 0 {
		t.Fatalf("sampling round allocates %g/op, want 0", allocs)
	}
}

func TestSetCreationOrder(t *testing.T) {
	st := NewSet(4)
	a := st.Series("b_second", "")
	b := st.Series("a_first", "")
	if st.Series("b_second", "") != a {
		t.Fatal("Series is not get-or-create")
	}
	all := st.All()
	if len(all) != 2 || all[0] != a || all[1] != b {
		t.Fatalf("creation order not preserved: %v", all)
	}
}

func TestRecorderTripSnapshotBudget(t *testing.T) {
	rec := NewRecorder(Meta{Experiment: "test", Seed: 1})
	s := rec.Set.Series("utility", "score")
	for i := 0; i < 10; i++ {
		s.Append(int64(i), float64(i))
	}
	for i := 0; i < 6; i++ {
		rec.Trip(int64(100+i), "rollback", "test")
	}
	a := rec.Artifact(200, nil)
	if len(a.Anomalies) != 6 {
		t.Fatalf("anomalies=%d, want 6", len(a.Anomalies))
	}
	if len(a.Snapshots) != 4 {
		t.Fatalf("snapshots=%d, want budget of 4", len(a.Snapshots))
	}
	for i, an := range a.Anomalies {
		want := i
		if i >= 4 {
			want = -1 // budget exhausted: anomaly recorded, no snapshot
		}
		if an.Snapshot != want {
			t.Fatalf("anomaly %d snapshot=%d, want %d", i, an.Snapshot, want)
		}
	}
	if got := a.Snapshots[0].Series[0].Name; got != "utility" {
		t.Fatalf("snapshot series name %q", got)
	}
	if n := len(a.Snapshots[0].Series[0].V); n != 10 {
		t.Fatalf("snapshot froze %d samples, want 10", n)
	}
}

func TestRecorderEventRingDropsOldest(t *testing.T) {
	rec := NewRecorder(Meta{})
	for i := 0; i < 300; i++ {
		rec.Event(int64(i), "dispatch", "")
	}
	a := rec.Artifact(300, nil)
	if len(a.Events) != 256 {
		t.Fatalf("events=%d, want ring size 256", len(a.Events))
	}
	if a.EventsDropped != 44 {
		t.Fatalf("dropped=%d, want 44", a.EventsDropped)
	}
	if a.Events[0].T != 44 || a.Events[255].T != 299 {
		t.Fatalf("ring window [%d, %d], want [44, 299]", a.Events[0].T, a.Events[255].T)
	}
}

// TestArtifactRoundTrip writes an artifact (with embedded histograms)
// and loads it back, checking WriteArtifact/Load agree and the bytes
// are deterministic across repeated writes.
func TestArtifactRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("paraleon_sim_fct_ms", "test", telemetry.BucketsFCTMs)
	for _, v := range []float64{0.2, 0.7, 3, 40} {
		h.Observe(v)
	}
	rec := NewRecorder(Meta{Experiment: "unit", Seed: 7})
	s := rec.Set.Series("utility", "score")
	for i := 0; i < 20; i++ {
		s.Append(int64(i), float64(i)*0.1)
	}
	rec.Trip(15, "rollback", "ewma below good")

	var buf1, buf2 bytes.Buffer
	if err := rec.WriteArtifact(&buf1, 20, reg); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteArtifact(&buf2, 20, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated WriteArtifact calls are not byte-identical")
	}

	a, err := Load(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta.Experiment != "unit" || a.Meta.Seed != 7 {
		t.Fatalf("meta round trip: %+v", a.Meta)
	}
	if d := a.FindSeries("utility"); d == nil || len(d.V) != 20 {
		t.Fatalf("utility series lost in round trip: %+v", d)
	}
	hs := a.FindHistogram("paraleon_sim_fct_ms")
	if hs == nil || hs.Count != 4 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}
	if q := hs.Quantile(0.50); q <= 0 {
		t.Fatalf("histogram p50=%g after round trip", q)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"version": 99}`))); err == nil {
		t.Fatal("Load accepted version 99")
	}
}
