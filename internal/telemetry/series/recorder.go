package series

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// ArtifactVersion stamps the black-box schema; paraleon-analyze
// refuses artifacts with a different major version.
const ArtifactVersion = 1

// Meta identifies the run an artifact came from. It deliberately
// excludes anything the determinism contract says must not matter
// (shard count, worker count, wall-clock timestamps): two runs that
// should be byte-identical produce byte-identical Meta.
type Meta struct {
	Experiment string `json:"experiment"`
	Tuner      string `json:"tuner,omitempty"`
	Seed       int64  `json:"seed"`
	Scale      string `json:"scale,omitempty"`
	IntervalNs int64  `json:"interval_ns,omitempty"`
	HorizonNs  int64  `json:"horizon_ns,omitempty"`
}

// Event is one control-plane occurrence worth keeping around an
// anomaly: a dispatch, a fault, a recovery, a span boundary.
type Event struct {
	T      int64  `json:"t"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Anomaly is one tripped trigger. Snapshot indexes into
// Artifact.Snapshots when the trip captured one (-1 otherwise: the
// per-artifact snapshot budget was exhausted, but the anomaly is
// still on record and visible in the final series).
type Anomaly struct {
	T        int64  `json:"t"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	Snapshot int    `json:"snapshot"`
}

// SeriesDump is one series' stored samples.
type SeriesDump struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	// Stride is the offered-samples-per-stored-sample factor at dump
	// time; Offered the total offered, so readers can tell how much
	// resolution downsampling cost.
	Stride  int       `json:"stride"`
	Offered int64     `json:"offered"`
	T       []int64   `json:"t"`
	V       []float64 `json:"v"`
}

// Snapshot is the trailing window of every series frozen at the
// moment anomaly Anomaly tripped.
type Snapshot struct {
	Anomaly int          `json:"anomaly"`
	T       int64        `json:"t"`
	Series  []SeriesDump `json:"series"`
}

// Artifact is the self-contained black box: run identity, the anomaly
// ledger, the recent-event window, per-anomaly series snapshots, the
// end-of-run series, and histogram snapshots from the telemetry
// registry. Everything in it derives from virtual-time state, so a
// fixed seed yields byte-identical artifacts at any shard count.
type Artifact struct {
	Version       int                           `json:"version"`
	Meta          Meta                          `json:"meta"`
	EndT          int64                         `json:"end_t"`
	Anomalies     []Anomaly                     `json:"anomalies"`
	Events        []Event                       `json:"events,omitempty"`
	EventsDropped int64                         `json:"events_dropped,omitempty"`
	Snapshots     []Snapshot                    `json:"snapshots,omitempty"`
	Series        []SeriesDump                  `json:"series"`
	Histograms    []telemetry.HistogramSnapshot `json:"histograms,omitempty"`
}

// FindSeries returns the named end-of-run series, or nil.
func (a *Artifact) FindSeries(name string) *SeriesDump {
	for i := range a.Series {
		if a.Series[i].Name == name {
			return &a.Series[i]
		}
	}
	return nil
}

// FindHistogram returns the named histogram snapshot, or nil.
func (a *Artifact) FindHistogram(name string) *telemetry.HistogramSnapshot {
	for i := range a.Histograms {
		if a.Histograms[i].Name == name {
			return &a.Histograms[i]
		}
	}
	return nil
}

// Recorder is the flight recorder: a Set of series being sampled by
// the control loop, a bounded ring of recent control-plane events,
// and the anomaly ledger. Anomaly trips (Trip) freeze a snapshot of
// every series — the trailing window around the trigger at full
// available resolution — up to a fixed per-run snapshot budget.
//
// Sampling (Series handles + Append) is allocation-free; Event and
// Trip may allocate and are expected to be rare.
type Recorder struct {
	Set  *Set
	meta Meta

	events  []Event // ring storage
	evHead  int     // index of the oldest event
	evLen   int
	dropped int64

	anomalies []Anomaly
	snapshots []Snapshot
	maxSnaps  int
}

// NewRecorder builds a recorder with DefaultCapacity series, a
// 256-event window, and a budget of 4 anomaly snapshots.
func NewRecorder(meta Meta) *Recorder {
	return &Recorder{
		Set:      NewSet(0),
		meta:     meta,
		events:   make([]Event, 256),
		maxSnaps: 4,
	}
}

// Meta returns the recorder's run identity.
func (r *Recorder) Meta() Meta { return r.meta }

// SetMeta replaces the run identity (harnesses fill fields they only
// learn after construction, e.g. the resolved tuner name).
func (r *Recorder) SetMeta(m Meta) { r.meta = m }

// Anomalies reports how many trips have fired.
func (r *Recorder) Anomalies() int { return len(r.anomalies) }

// Event records a control-plane event into the bounded window; when
// full, the oldest event is dropped (and counted).
func (r *Recorder) Event(t int64, kind, detail string) {
	if r.evLen == len(r.events) {
		r.events[r.evHead] = Event{T: t, Kind: kind, Detail: detail}
		r.evHead = (r.evHead + 1) % len(r.events)
		r.dropped++
		return
	}
	r.events[(r.evHead+r.evLen)%len(r.events)] = Event{T: t, Kind: kind, Detail: detail}
	r.evLen++
}

// Trip records an anomaly and, while the snapshot budget lasts,
// freezes the trailing window of every series at this instant. The
// anomaly is also mirrored into the event window so it sits in
// sequence with the dispatches and faults around it.
func (r *Recorder) Trip(t int64, kind, detail string) {
	idx := -1
	if len(r.snapshots) < r.maxSnaps {
		idx = len(r.snapshots)
		r.snapshots = append(r.snapshots, Snapshot{
			Anomaly: len(r.anomalies),
			T:       t,
			Series:  r.Set.dump(),
		})
	}
	r.anomalies = append(r.anomalies, Anomaly{T: t, Kind: kind, Detail: detail, Snapshot: idx})
	r.Event(t, "anomaly:"+kind, detail)
}

// Artifact assembles the black box as of virtual time endT, embedding
// histogram snapshots from reg (nil skips them).
func (r *Recorder) Artifact(endT int64, reg *telemetry.Registry) *Artifact {
	a := &Artifact{
		Version:       ArtifactVersion,
		Meta:          r.meta,
		EndT:          endT,
		Anomalies:     r.anomalies,
		EventsDropped: r.dropped,
		Snapshots:     r.snapshots,
		Series:        r.Set.dump(),
	}
	if a.Anomalies == nil {
		a.Anomalies = []Anomaly{}
	}
	for i := 0; i < r.evLen; i++ {
		a.Events = append(a.Events, r.events[(r.evHead+i)%len(r.events)])
	}
	if reg != nil {
		a.Histograms = reg.Histograms()
	}
	return a
}

// WriteArtifact renders the artifact as indented JSON. Field order is
// fixed by the struct definitions and no map is serialized, so the
// bytes are a pure function of the recorded virtual-time state.
func (r *Recorder) WriteArtifact(w io.Writer, endT int64, reg *telemetry.Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Artifact(endT, reg))
}

// Load parses an artifact and checks its schema version.
func Load(rd io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("series: parse artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("series: artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	return &a, nil
}
