package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// MetricSummary is one family's value in a Report. Counters and gauges
// fill Value; histograms fill Count/Sum/Mean.
type MetricSummary struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Value float64 `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
}

// Report is a run summary: every family that recorded activity, plus
// the published status sections. The harness and cmd/paraleon-sim emit
// one after each run (-report), giving batch runs the same ledger the
// daemons expose live over /metrics.
type Report struct {
	VirtualTimeNs int64           `json:"virtual_time_ns"`
	Metrics       []MetricSummary `json:"metrics"`
	Status        map[string]any  `json:"status,omitempty"`
}

// BuildReport snapshots the registry. Families that never moved (zero
// counters, zero-count histograms, zero gauges) are omitted so the
// summary reads as "what happened", not the full schema.
func (r *Registry) BuildReport() Report {
	rep := Report{
		VirtualTimeNs: int64(VirtualTime(r).Value()),
		Status:        r.Status(),
	}
	for _, f := range r.sortedFamilies() {
		switch f.kind {
		case kindCounter:
			if v := f.c.Value(); v != 0 {
				rep.Metrics = append(rep.Metrics, MetricSummary{Name: f.name, Type: "counter", Value: float64(v)})
			}
		case kindGauge:
			if v := f.g.Value(); v != 0 {
				rep.Metrics = append(rep.Metrics, MetricSummary{Name: f.name, Type: "gauge", Value: v})
			}
		case kindHistogram:
			if n := f.h.Count(); n != 0 {
				sum := f.h.Sum()
				rep.Metrics = append(rep.Metrics, MetricSummary{
					Name: f.name, Type: "histogram",
					Count: n, Sum: sum, Mean: sum / float64(n),
				})
			}
		}
	}
	return rep
}

// Empty reports whether no family recorded any activity.
func (rep Report) Empty() bool { return len(rep.Metrics) == 0 }

// Fprint renders the report as an aligned text table.
func (rep Report) Fprint(w io.Writer) {
	fmt.Fprintln(w, "telemetry report")
	if rep.VirtualTimeNs > 0 {
		fmt.Fprintf(w, "  virtual time: %.3f ms\n", float64(rep.VirtualTimeNs)/1e6)
	}
	if rep.Empty() {
		fmt.Fprintln(w, "  (no activity recorded)")
		return
	}
	for _, m := range rep.Metrics {
		switch m.Type {
		case "histogram":
			fmt.Fprintf(w, "  %-42s count=%d sum=%.4g mean=%.4g\n", m.Name, m.Count, m.Sum, m.Mean)
		default:
			fmt.Fprintf(w, "  %-42s %.6g\n", m.Name, m.Value)
		}
	}
	if len(rep.Status) > 0 {
		sections := make([]string, 0, len(rep.Status))
		for k := range rep.Status {
			sections = append(sections, k)
		}
		sort.Strings(sections)
		for _, k := range sections {
			fmt.Fprintf(w, "  status %s: %+v\n", k, rep.Status[k])
		}
	}
}
