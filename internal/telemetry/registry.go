// Package telemetry is Paraleon's runtime observability layer: a
// low-overhead metrics registry (counters, gauges, fixed-bucket
// histograms), an HTTP introspection server (Prometheus text-format
// /metrics, net/http/pprof, a JSON /debug/status snapshot), and a
// run-summary Report generator.
//
// The closed loop the paper describes — monitor intervals feeding
// KL-divergence triggers, triggers driving an SA search, the search
// dispatching parameter vectors — reacts to traffic shifts within
// milliseconds; an operator cannot debug it from post-hoc CSVs alone.
// Every subsystem (sketch, monitor, tuner, ctrlrpc, chaos) publishes
// into one registry so simulation runs and the real agent/controller
// daemons share a single instrumentation surface.
//
// Design constraints: all metric updates are safe for concurrent use
// and allocation-free (atomic operations only; metric handles are
// resolved once at construction, never on the hot path). The registry
// is aware of both clocks that matter here — wall time (daemons,
// pprof) and the simulator's virtual clock, which components publish
// through the virtual-time gauge and virtual-time-denominated
// histograms.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the registry's family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a programming error and panic, because
// a counter that goes down silently corrupts every rate() computed on it.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("telemetry: counter add %d < 0", n))
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways. All methods
// are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into a fixed bucket layout chosen at
// registration. Observe is safe for concurrent use and allocation-free:
// the bounds slice is fixed, bucket counts and the sum are atomics.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Fixed bucket layouts. Chosen once so dashboards are comparable across
// runs; histograms never grow or rebalance buckets at runtime.
var (
	// BucketsKL covers KL-divergence trigger values around the paper's
	// θ = 0.01 threshold.
	BucketsKL = []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05, 0.1, 0.5, 1}
	// BucketsLatencyMs covers control-loop latencies in (virtual)
	// milliseconds: trigger→dispatch and trigger→settle distances at a
	// 1 ms monitor interval.
	BucketsLatencyMs = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 250, 500, 1000}
	// BucketsFlows covers per-interval FSD flow counts.
	BucketsFlows = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	// BucketsBytes covers per-interval byte masses (1 KB … 1 GB).
	BucketsBytes = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	// BucketsFCTMs covers flow completion times in virtual milliseconds,
	// finer than BucketsLatencyMs at the sub-millisecond end where mice
	// flows live.
	BucketsFCTMs = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100}
)

// family is one named metric with its metadata.
type family struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families and status sections. Metric lookups
// (Counter/Gauge/Histogram) are get-or-create: asking for an existing
// name returns the existing metric, so independent components can share
// families without coordination. Lookups take a mutex — resolve handles
// once at construction, not per update.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	started  time.Time

	// status maps section name → latest published snapshot. Values are
	// whole snapshots stored atomically (PublishStatus), so readers never
	// see a half-updated struct.
	status sync.Map
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, started: time.Now()}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry. Components instrument
// against it when no explicit registry is configured, which is how one
// `-report` / `-telemetry-addr` surface covers every experiment a
// binary runs without per-experiment plumbing.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) lookup(name, help string, kind metricKind) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		f.c = &Counter{}
	case kindGauge:
		f.g = &Gauge{}
	}
	r.families[name] = f
	return f
}

// Counter returns the counter named name, creating it if absent.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the gauge named name, creating it if absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the histogram named name with the given fixed bucket
// bounds, creating it if absent. Bounds must be ascending; they are
// fixed for the registry's lifetime (an existing histogram keeps its
// original layout).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kindHistogram {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as histogram", name, f.kind))
		}
		return f.h
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.families[name] = &family{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

// PublishStatus stores a snapshot under section for /debug/status and
// Report. The value should be a self-contained copy (a plain struct or
// map): it is read from HTTP goroutines while the producer keeps
// running, so it must not alias mutable state.
func (r *Registry) PublishStatus(section string, v any) {
	r.status.Store(section, v)
}

// Status returns the latest snapshot of every published section.
func (r *Registry) Status() map[string]any {
	out := map[string]any{}
	r.status.Range(func(k, v any) bool {
		out[k.(string)] = v
		return true
	})
	return out
}

// Started reports when the registry was created (process uptime anchor).
func (r *Registry) Started() time.Time { return r.started }

// sortedFamilies snapshots the family set in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comments, one `name value` line per
// scalar, and the cumulative `_bucket{le=...}`/`_sum`/`_count` triple
// for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		switch f.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			cum := f.h.snapshot()
			for i, b := range f.h.bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(f.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", f.name, f.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
