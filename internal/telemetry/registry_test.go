package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdatesExact hammers one registry from parallel
// goroutines and asserts the exact final values — run under -race this
// is the registry's concurrency contract.
func TestConcurrentUpdatesExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_lat", "lat", []float64{1, 10, 100})

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix get-or-create lookups in to exercise the registry map
			// under contention, not just the atomics.
			c2 := r.Counter("test_ops_total", "ops")
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c2.Add(1)
				}
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Each worker observes 0..199 fifty times: sum = 50 * 199*200/2.
	wantSum := float64(workers) * float64(perWorker/200) * 199 * 200 / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	// Bucket layout {1,10,100}: per worker, values 0,1 → le=1 (2 of every
	// 200), 2..10 → le=10 (9), 11..100 → le=100 (90), 101..199 → +Inf (99).
	cum := h.snapshot()
	per := int64(workers * perWorker / 200)
	wantCum := []int64{2 * per, 11 * per, 101 * per, 200 * per}
	for i, want := range wantCum {
		if cum[i] != want {
			t.Errorf("cumulative bucket %d = %d, want %d", i, cum[i], want)
		}
	}
}

// TestHotPathAllocationFree asserts the update paths never allocate —
// the property that lets the per-interval control loop run instrumented
// without touching the garbage collector.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	g := r.Gauge("test_gauge", "")
	h := r.Histogram("test_hist", "", BucketsLatencyMs)
	for name, fn := range map[string]func(){
		"counter inc":       func() { c.Inc() },
		"counter add":       func() { c.Add(3) },
		"gauge set":         func() { g.Set(42.5) },
		"gauge add":         func() { g.Add(1.5) },
		"histogram observe": func() { h.Observe(7) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestGetOrCreateAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "first")
	b := r.Counter("shared_total", "second registration reuses the first")
	if a != b {
		t.Error("get-or-create returned distinct counters for one name")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared counter handles do not share state")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("shared_total", "wrong kind")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("bad name with spaces", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter add did not panic")
			}
		}()
		a.Add(-1)
	}()
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_ops_total", "Demo ops.").Add(7)
	r.Gauge("demo_temp", "Demo temperature.").Set(36.5)
	h := r.Histogram("demo_ms", "Demo latency.", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP demo_ops_total Demo ops.\n",
		"# TYPE demo_ops_total counter\n",
		"demo_ops_total 7\n",
		"# TYPE demo_temp gauge\n",
		"demo_temp 36.5\n",
		"# TYPE demo_ms histogram\n",
		"demo_ms_bucket{le=\"1\"} 1\n",
		"demo_ms_bucket{le=\"5\"} 2\n",
		"demo_ms_bucket{le=\"+Inf\"} 3\n",
		"demo_ms_sum 103.5\n",
		"demo_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be exactly `name value`.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestGaugeSetBool(t *testing.T) {
	var g Gauge
	g.SetBool(true)
	if g.Value() != 1 {
		t.Errorf("true = %g, want 1", g.Value())
	}
	g.SetBool(false)
	if g.Value() != 0 {
		t.Errorf("false = %g, want 0", g.Value())
	}
}

func TestBuildReport(t *testing.T) {
	r := NewRegistry()
	if rep := r.BuildReport(); !rep.Empty() {
		t.Errorf("fresh registry report not empty: %+v", rep.Metrics)
	}
	r.Counter("idle_total", "never moves")
	r.Counter("busy_total", "moves").Add(5)
	h := r.Histogram("lat_ms", "", BucketsLatencyMs)
	h.Observe(2)
	h.Observe(4)
	r.PublishStatus("loop", map[string]int{"ticks": 9})

	rep := r.BuildReport()
	if rep.Empty() {
		t.Fatal("active registry report is empty")
	}
	names := map[string]MetricSummary{}
	for _, m := range rep.Metrics {
		names[m.Name] = m
	}
	if _, ok := names["idle_total"]; ok {
		t.Error("zero-activity family not omitted from report")
	}
	if m := names["busy_total"]; m.Value != 5 {
		t.Errorf("busy_total = %+v, want value 5", m)
	}
	if m := names["lat_ms"]; m.Count != 2 || math.Abs(m.Mean-3) > 1e-12 {
		t.Errorf("lat_ms = %+v, want count 2 mean 3", m)
	}
	if rep.Status["loop"] == nil {
		t.Error("published status section missing from report")
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "busy_total") || !strings.Contains(sb.String(), "status loop") {
		t.Errorf("report text missing content:\n%s", sb.String())
	}
}

// BenchmarkCounterInc documents the counter hot path; run with -benchmem
// to confirm 0 allocs/op.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve documents the histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_ms", "", BucketsLatencyMs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
