package baselines

import (
	"math/rand"
	"sort"

	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/netdev"
	"repro/internal/topology"
)

// NetFlowConfig matches the paper's comparison setup: 1:100 packet
// sampling and a 1-second export interval.
type NetFlowConfig struct {
	// SampleRate is the sampling denominator (100 → 1:100).
	SampleRate int
	// Interval is the export period.
	Interval eventsim.Time
	// MonitorInterval is the controller's λ_MI; the agent flushes every
	// Interval/MonitorInterval controller ticks and serves a stale
	// report in between.
	MonitorInterval eventsim.Time
	// TauBytes classifies elephants by scaled sampled bytes.
	TauBytes int64
	// Seed fixes the sampling coin.
	Seed int64
}

// DefaultNetFlowConfig is the §IV-B3 configuration.
func DefaultNetFlowConfig() NetFlowConfig {
	return NetFlowConfig{
		SampleRate:      100,
		Interval:        eventsim.Second,
		MonitorInterval: eventsim.Millisecond,
		TauBytes:        1 << 20,
		Seed:            1,
	}
}

// NetFlowAgent is a sampled flow monitor on one ToR. It implements
// monitor.ReportSource, but unlike the sketch agents its content only
// refreshes once per export interval — both the sampling loss and the
// staleness degrade the FSD the tuner sees (Fig 10).
type NetFlowAgent struct {
	cfg  NetFlowConfig
	topo *topology.Topology
	node topology.NodeID
	rng  *rand.Rand

	samples map[uint64]int64
	current monitor.Report

	ticksPerFlush int
	tick          int

	// Sampled counts packets actually recorded.
	Sampled int64
}

// NewNetFlowAgent builds the agent for the ToR at node.
func NewNetFlowAgent(cfg NetFlowConfig, topo *topology.Topology, node topology.NodeID) *NetFlowAgent {
	if cfg.SampleRate < 1 {
		cfg.SampleRate = 1
	}
	ticks := int(cfg.Interval / cfg.MonitorInterval)
	if ticks < 1 {
		ticks = 1
	}
	return &NetFlowAgent{
		cfg:           cfg,
		topo:          topo,
		node:          node,
		rng:           rand.New(rand.NewSource(cfg.Seed + int64(node))),
		samples:       map[uint64]int64{},
		ticksPerFlush: ticks,
	}
}

// Attach installs the agent as one of sw's packet taps, composing with
// any tap already installed (e.g. a ground-truth oracle) instead of
// silently replacing it.
func (a *NetFlowAgent) Attach(sw *netdev.Switch) { monitor.TapAll(sw, a.OnPacket) }

// OnPacket samples 1-in-SampleRate data packets at the flow's source ToR.
func (a *NetFlowAgent) OnPacket(pkt *netdev.Packet, now eventsim.Time) {
	if pkt.Kind != netdev.KindData {
		return
	}
	if a.topo.ToROf(pkt.Src) != a.node {
		return
	}
	if a.rng.Intn(a.cfg.SampleRate) != 0 {
		return
	}
	a.samples[pkt.FlowID] += int64(pkt.PayloadBytes)
	a.Sampled++
}

// EndInterval implements monitor.ReportSource. The returned report only
// changes when an export interval elapses.
func (a *NetFlowAgent) EndInterval() monitor.Report {
	a.tick++
	if a.tick < a.ticksPerFlush {
		return a.current
	}
	a.tick = 0
	a.current = a.flush()
	return a.current
}

func (a *NetFlowAgent) flush() monitor.Report {
	ids := make([]uint64, 0, len(a.samples))
	for id := range a.samples {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var r monitor.Report
	for _, id := range ids {
		est := a.samples[id] * int64(a.cfg.SampleRate) // scale up
		r.Hist[monitor.BucketFor(est)] += float64(est)
		if est >= a.cfg.TauBytes {
			r.ElephantBytes += float64(est)
			r.ElephantFlowsW++
		} else {
			r.MiceBytes += float64(est)
			r.MiceFlowsW++
		}
		r.Flows++
	}
	a.samples = map[uint64]int64{}
	return r
}
