package baselines

import (
	"math"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// DCQCNPlusConfig parameterizes the ICNP'18 scheme. DCQCN+ adapts two
// things to the runtime incast scale N (the number of concurrently
// congested flows at a receiver): the NP stretches its per-flow CNP
// interval ∝ N so the aggregate CNP rate stays bounded, and the RPs —
// told N via a field piggybacked on CNPs — shrink their rate-increase
// steps and stretch their increase timers so the aggregate injection ramp
// stays constant.
//
// In this reproduction the piggyback channel is a zero-latency bookkeeping
// step run each Interval (the real signal rides CNPs that deliver within
// microseconds, far below the adjustment period).
type DCQCNPlusConfig struct {
	// Interval is the adaptation period.
	Interval eventsim.Time
	// MaxScale caps the incast scale factor.
	MaxScale int
}

// DefaultDCQCNPlusConfig adapts every 500 µs with scale capped at 64.
func DefaultDCQCNPlusConfig() DCQCNPlusConfig {
	return DCQCNPlusConfig{Interval: 500 * eventsim.Microsecond, MaxScale: 64}
}

// DCQCNPlus is the installed scheme.
type DCQCNPlus struct {
	net  *sim.Network
	cfg  DCQCNPlusConfig
	base dcqcn.Params

	// rxScale is each receiver's current congested-inbound-flow count.
	rxScale map[topology.NodeID]int
	// overrides holds the per-host parameter structs we installed.
	overrides map[topology.NodeID]*dcqcn.Params

	ev     eventsim.EventID
	tickFn eventsim.Handler
	on     bool

	// Adjustments counts parameter rewrites.
	Adjustments int
}

// InstallDCQCNPlus prepares the scheme on n, adapting from the network's
// current shared RNIC setting.
func InstallDCQCNPlus(n *sim.Network, cfg DCQCNPlusConfig) *DCQCNPlus {
	return &DCQCNPlus{
		net:       n,
		cfg:       cfg,
		base:      *n.RNICParams(),
		rxScale:   map[topology.NodeID]int{},
		overrides: map[topology.NodeID]*dcqcn.Params{},
	}
}

// Start arms the adaptation loop.
func (d *DCQCNPlus) Start() {
	if d.on {
		return
	}
	d.on = true
	d.arm()
}

// Stop halts adaptation and removes the per-host overrides.
func (d *DCQCNPlus) Stop() {
	if !d.on {
		return
	}
	d.on = false
	d.net.Eng.Cancel(d.ev)
	for node := range d.overrides {
		d.net.SetHostParams(node, nil)
	}
	d.overrides = map[topology.NodeID]*dcqcn.Params{}
}

// arm (re)schedules the adaptation tick through the timing wheel with a
// persistent handler — one event slot recycled tick after tick.
func (d *DCQCNPlus) arm() {
	if d.tickFn == nil {
		d.tickFn = func() {
			if !d.on {
				return
			}
			d.step()
			d.arm()
		}
	}
	d.ev = d.net.Eng.RearmAfter(d.ev, d.cfg.Interval, d.tickFn)
}

// scaleFor is the sender-side incast factor: the worst congested-receiver
// scale among its active destinations.
func (d *DCQCNPlus) scaleFor(host topology.NodeID) int {
	h := d.net.Host(host)
	scale := 1
	for _, dst := range h.ActiveDestinations() {
		if s := d.rxScale[dst]; s > scale {
			scale = s
		}
	}
	if scale > d.cfg.MaxScale {
		scale = d.cfg.MaxScale
	}
	return scale
}

func (d *DCQCNPlus) step() {
	// NP side: refresh each receiver's congested flow count and stretch
	// its CNP pacing proportionally.
	for _, node := range d.net.Topo.Hosts() {
		h := d.net.Host(node)
		n := h.TakeCongestedInbound()
		if n < 1 {
			n = 1
		}
		if n > d.cfg.MaxScale {
			n = d.cfg.MaxScale
		}
		d.rxScale[node] = n
	}
	// RP+NP side: rewrite each host's setting from its scale.
	for _, node := range d.net.Topo.Hosts() {
		rxN := d.rxScale[node]
		txN := d.scaleFor(node)
		if rxN == 1 && txN == 1 {
			if d.overrides[node] != nil {
				d.net.SetHostParams(node, nil)
				delete(d.overrides, node)
				d.Adjustments++
			}
			continue
		}
		p := d.overrides[node]
		if p == nil {
			cp := d.base
			p = &cp
			d.overrides[node] = p
			d.net.SetHostParams(node, p)
		}
		// NP: one CNP per flow per base·N interval.
		p.MinTimeBetweenCNPs = d.base.MinTimeBetweenCNPs * eventsim.Time(rxN)
		// RP: divide the per-flow ramp by N; stretch the timer by √N so
		// aggregate increase stays roughly constant without freezing
		// individual flows.
		p.AIRateBps = math.Max(1e6, d.base.AIRateBps/float64(txN))
		p.HAIRateBps = math.Max(10e6, d.base.HAIRateBps/float64(txN))
		p.RPGTimeReset = eventsim.Time(float64(d.base.RPGTimeReset) * math.Sqrt(float64(txN)))
		d.Adjustments++
	}
}
