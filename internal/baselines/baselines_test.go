package baselines

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newNet(t *testing.T) *sim.Network {
	t.Helper()
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// --- ACC ---

func TestACCActionBounds(t *testing.T) {
	kmin, kmax, pmax := int64(10<<10), int64(80<<10), 0.02
	for action := 0; action < accActions; action++ {
		k1, k2, p := applyACCAction(action, kmin, kmax, pmax)
		if k1 < 10<<10 || k1 > 4000<<10 {
			t.Errorf("action %d: kmin %d out of range", action, k1)
		}
		if k2 <= k1 {
			t.Errorf("action %d: kmax %d <= kmin %d", action, k2, k1)
		}
		if p < 0.01 || p > 1 {
			t.Errorf("action %d: pmax %g out of range", action, p)
		}
	}
	// Extreme shrink must still respect ordering.
	k1, k2, _ := applyACCAction(4, 4000<<10, 70<<10, 0.5)
	if k2 <= k1 {
		t.Errorf("ordering repair failed: %d <= %d", k2, k1)
	}
}

func TestACCAdjustsECNUnderLoad(t *testing.T) {
	n := newNet(t)
	cfg := DefaultACCConfig()
	cfg.Interval = eventsim.Millisecond
	acc := InstallACC(n, cfg)
	acc.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 5; i++ {
		n.StartFlow(hosts[i], hosts[0], 32<<20)
	}
	before := *n.SwitchParams(n.Topo.SwitchIDs()[0])
	n.Run(20 * eventsim.Millisecond)
	if acc.Decisions() == 0 {
		t.Fatal("no ACC decisions in 20 ms at 1 ms cadence")
	}
	changed := false
	for _, sn := range n.Topo.SwitchIDs() {
		p := n.SwitchParams(sn)
		if p.KminBytes != before.KminBytes || p.KmaxBytes != before.KmaxBytes || p.PMax != before.PMax {
			changed = true
		}
		if err := p.Validate(); err != nil {
			t.Errorf("switch %d params invalid after ACC: %v", sn, err)
		}
	}
	if !changed {
		t.Error("ACC never moved any ECN threshold")
	}
	// ACC must not touch RNIC-side parameters.
	if n.RNICParams().AIRateBps != before.AIRateBps {
		t.Error("ACC modified RNIC parameters")
	}
	acc.Stop()
	d := acc.Decisions()
	n.Run(40 * eventsim.Millisecond)
	if acc.Decisions() != d {
		t.Error("ACC kept deciding after Stop")
	}
}

func TestACCPerSwitchIndependence(t *testing.T) {
	n := newNet(t)
	cfg := DefaultACCConfig()
	cfg.Interval = eventsim.Millisecond
	acc := InstallACC(n, cfg)
	acc.Start()
	hosts := n.Topo.Hosts()
	// Congest only rack 0.
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 32<<20)
	}
	n.Run(30 * eventsim.Millisecond)
	// All switches decide (they're independent agents), but validity
	// holds everywhere.
	for _, sn := range n.Topo.SwitchIDs() {
		if err := n.SwitchParams(sn).Validate(); err != nil {
			t.Errorf("switch %d invalid: %v", sn, err)
		}
	}
}

// --- DCQCN+ ---

func TestDCQCNPlusScalesWithIncast(t *testing.T) {
	n := newNet(t)
	base := *n.RNICParams()
	dp := InstallDCQCNPlus(n, DefaultDCQCNPlusConfig())
	dp.Start()
	hosts := n.Topo.Hosts()
	// 6:1 incast onto hosts[0] (some cross-rack).
	for i := 1; i <= 6; i++ {
		n.StartFlow(hosts[i], hosts[0], 16<<20)
	}
	n.Run(10 * eventsim.Millisecond)
	// The receiver must have a stretched CNP interval.
	rx := n.HostParams(hosts[0])
	if rx == nil {
		t.Fatal("no override installed at the incast receiver")
	}
	if rx.MinTimeBetweenCNPs <= base.MinTimeBetweenCNPs {
		t.Errorf("receiver CNP interval %v not stretched from %v", rx.MinTimeBetweenCNPs, base.MinTimeBetweenCNPs)
	}
	// Senders must have shrunken increase steps.
	foundSender := false
	for i := 1; i <= 6; i++ {
		if p := n.HostParams(hosts[i]); p != nil {
			foundSender = true
			if p.AIRateBps >= base.AIRateBps {
				t.Errorf("sender %d ai_rate %g not reduced from %g", i, p.AIRateBps, base.AIRateBps)
			}
			if p.RPGTimeReset <= base.RPGTimeReset {
				t.Errorf("sender %d timer %v not stretched", i, p.RPGTimeReset)
			}
		}
	}
	if !foundSender {
		t.Error("no sender-side adjustment")
	}
	if dp.Adjustments == 0 {
		t.Error("Adjustments counter stuck at 0")
	}
}

func TestDCQCNPlusRelaxesWhenCalm(t *testing.T) {
	n := newNet(t)
	dp := InstallDCQCNPlus(n, DefaultDCQCNPlusConfig())
	dp.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 6; i++ {
		n.StartFlow(hosts[i], hosts[0], 4<<20)
	}
	n.RunUntilIdle(2 * eventsim.Second)
	// Let several calm intervals elapse after the incast drains.
	n.Run(n.Eng.Now() + 10*eventsim.Millisecond)
	for _, hn := range n.Topo.Hosts() {
		if p := n.HostParams(hn); p != nil {
			t.Errorf("host %d still overridden after traffic drained", hn)
		}
	}
}

func TestDCQCNPlusStopRemovesOverrides(t *testing.T) {
	n := newNet(t)
	dp := InstallDCQCNPlus(n, DefaultDCQCNPlusConfig())
	dp.Start()
	hosts := n.Topo.Hosts()
	for i := 1; i <= 6; i++ {
		n.StartFlow(hosts[i], hosts[0], 16<<20)
	}
	n.Run(5 * eventsim.Millisecond)
	dp.Stop()
	for _, hn := range n.Topo.Hosts() {
		if n.HostParams(hn) != nil {
			t.Fatalf("override on host %d survives Stop", hn)
		}
	}
}

// --- NetFlow ---

func TestNetFlowSamplesAndScales(t *testing.T) {
	n := newNet(t)
	cfg := DefaultNetFlowConfig()
	cfg.Interval = 10 * eventsim.Millisecond // fast export for the test
	tors := n.Topo.ToRs()
	agents := make([]*NetFlowAgent, len(tors))
	var sources []monitor.ReportSource
	for i, tor := range tors {
		agents[i] = NewNetFlowAgent(cfg, n.Topo, tor)
		agents[i].Attach(n.Switch(tor))
		sources = append(sources, agents[i])
	}
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[1], 20<<20) // elephant: ~20k packets, ~200 samples
	ctl := monitor.NewController(0.01, sources...)
	var lastFSD monitor.FSD
	for mi := 1; mi <= 15; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		lastFSD = ctl.Tick()
	}
	var sampled int64
	for _, a := range agents {
		sampled += a.Sampled
	}
	if sampled == 0 {
		t.Fatal("NetFlow sampled nothing from a 20 MB flow")
	}
	// ~20k data packets at 1:100 → roughly 200 samples.
	if sampled < 50 || sampled > 800 {
		t.Errorf("sampled %d packets, want ≈200", sampled)
	}
	if lastFSD.TotalBytes == 0 {
		t.Error("no FSD mass after export interval")
	}
	if lastFSD.ElephantShare < 0.9 {
		t.Errorf("elephant share %g for a pure-elephant workload", lastFSD.ElephantShare)
	}
}

func TestNetFlowStaleBetweenExports(t *testing.T) {
	n := newNet(t)
	cfg := DefaultNetFlowConfig() // 1 s export, 1 ms λ_MI
	a := NewNetFlowAgent(cfg, n.Topo, n.Topo.ToRs()[0])
	a.Attach(n.Switch(n.Topo.ToRs()[0]))
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[1], 8<<20)
	n.Run(5 * eventsim.Millisecond)
	// 5 controller ticks within one export window: all identical (zero)
	// reports despite live traffic.
	for i := 0; i < 5; i++ {
		r := a.EndInterval()
		if r.Flows != 0 {
			t.Fatalf("tick %d returned fresh data inside the export window", i)
		}
	}
}

func TestNetFlowMissesMice(t *testing.T) {
	// 1:100 sampling loses most flows of a mice-heavy workload —
	// exactly why Fig 10 shows NetFlow's FSD accuracy lagging.
	n := newNet(t)
	cfg := DefaultNetFlowConfig()
	cfg.Interval = 20 * eventsim.Millisecond
	tors := n.Topo.ToRs()
	var sources []monitor.ReportSource
	for _, tor := range tors {
		a := NewNetFlowAgent(cfg, n.Topo, tor)
		a.Attach(n.Switch(tor))
		sources = append(sources, a)
	}
	g, err := workload.InstallPoisson(n, workload.PoissonConfig{
		CDF:  workload.SolarRPC(),
		Load: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := monitor.NewController(0.01, sources...)
	var fsd monitor.FSD
	for mi := 1; mi <= 25; mi++ {
		n.Run(eventsim.Time(mi) * eventsim.Millisecond)
		fsd = ctl.Tick()
	}
	if g.Launched < 50 {
		t.Fatalf("only %d mice flows launched", g.Launched)
	}
	if fsd.Flows >= g.Launched/2 {
		t.Errorf("NetFlow saw %d of %d mice flows; 1:100 sampling should miss most", fsd.Flows, g.Launched)
	}
}

// Paraleon's sketch agent beats NetFlow on FSD accuracy for the same
// traffic — the Fig 10(a) direction.
func TestParaleonBeatsNetFlowAccuracy(t *testing.T) {
	run := func(useNetFlow bool) float64 {
		n := newNet(t)
		tors := n.Topo.ToRs()
		var est []monitor.ReportSource
		var oracles []monitor.ReportSource
		for i, tor := range tors {
			o := monitor.NewOracle(n.Topo, tor, 1<<20, n.FlowSize)
			oracles = append(oracles, o)
			if useNetFlow {
				cfg := DefaultNetFlowConfig()
				a := NewNetFlowAgent(cfg, n.Topo, tor)
				monitor.TapAll(n.Switch(tor), o.OnPacket, a.OnPacket)
				est = append(est, a)
			} else {
				a := monitor.NewSwitchAgent(monitor.ParaleonAgentConfig(), uint64(i+1))
				monitor.TapAll(n.Switch(tor), o.OnPacket, a.OnPacket)
				est = append(est, a)
			}
		}
		if _, err := workload.InstallPoisson(n, workload.PoissonConfig{
			CDF: workload.FBHadoop(), Load: 0.3,
		}); err != nil {
			t.Fatal(err)
		}
		estCtl := monitor.NewController(0.01, est...)
		truthCtl := monitor.NewController(0.01, oracles...)
		var accSum float64
		ticks := 0
		for mi := 1; mi <= 30; mi++ {
			n.Run(eventsim.Time(mi) * eventsim.Millisecond)
			e := estCtl.Tick()
			tr := truthCtl.Tick()
			if tr.TotalBytes == 0 {
				continue
			}
			accSum += monitor.Accuracy(e, tr)
			ticks++
		}
		if ticks == 0 {
			t.Fatal("no traffic intervals")
		}
		return accSum / float64(ticks)
	}
	paraleon := run(false)
	netflow := run(true)
	if paraleon <= netflow {
		t.Errorf("paraleon accuracy %g <= netflow %g", paraleon, netflow)
	}
}
