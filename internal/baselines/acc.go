// Package baselines implements the comparison schemes of §IV: ACC
// (per-switch reinforcement-learning ECN tuning, SIGCOMM 2021), DCQCN+
// (incast-scale-adaptive CNP intervals and rate-increase steps, ICNP
// 2018), and NetFlow-style sampled flow monitoring. Static baselines
// (NVIDIA default, expert, pretrained) need no code beyond
// dcqcn.DefaultParams/ExpertParams and core.Pretrain.
package baselines

import (
	"math/rand"

	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/sim"
)

// ACCConfig parameterizes the per-switch RL agents. ACC's published
// design runs a DQN per switch over local port statistics and actuates
// only the ECN thresholds; a tabular Q-learner over the same discretized
// observations preserves that interface at reproduction scale.
type ACCConfig struct {
	// Interval is the agent decision period.
	Interval eventsim.Time
	// Epsilon is the exploration rate; Alpha the learning rate; Gamma
	// the discount.
	Epsilon, Alpha, Gamma float64
	// Seed fixes exploration randomness.
	Seed int64
}

// DefaultACCConfig uses a 10 ms decision period (ACC reports O(10 ms)
// agent latency).
func DefaultACCConfig() ACCConfig {
	return ACCConfig{
		Interval: 10 * eventsim.Millisecond,
		Epsilon:  0.1,
		Alpha:    0.3,
		Gamma:    0.8,
		Seed:     1,
	}
}

// accActions are the per-step threshold adjustments.
const accActions = 7

// applyACCAction mutates (kmin, kmax, pmax) per the chosen action, keeping
// the setting sane.
func applyACCAction(action int, kmin, kmax int64, pmax float64) (int64, int64, float64) {
	switch action {
	case 0: // no-op
	case 1:
		kmin = kmin * 3 / 2
	case 2:
		kmin = kmin * 2 / 3
	case 3:
		kmax = kmax * 3 / 2
	case 4:
		kmax = kmax * 2 / 3
	case 5:
		pmax += 0.05
	case 6:
		pmax -= 0.05
	}
	if kmin < 10<<10 {
		kmin = 10 << 10
	}
	if kmin > 4000<<10 {
		kmin = 4000 << 10
	}
	if kmax < kmin+(64<<10) {
		kmax = kmin + (64 << 10)
	}
	if kmax > 10000<<10 {
		kmax = 10000 << 10
	}
	if pmax < 0.01 {
		pmax = 0.01
	}
	if pmax > 1 {
		pmax = 1
	}
	return kmin, kmax, pmax
}

// accAgent is one switch's Q-learner.
type accAgent struct {
	sw  *netdev.Switch
	net *sim.Network
	rng *rand.Rand
	cfg ACCConfig

	q map[int][accActions]float64

	prevState  int
	prevAction int
	havePrev   bool

	// Deltas for observation.
	lastTxBytes map[int]int64
	lastMarked  int64
	lastPkts    int64
	lastPFC     int64

	Decisions int
}

// ACC is the installed multi-agent system.
type ACC struct {
	agents []*accAgent
	net    *sim.Network
	cfg    ACCConfig
	ev     eventsim.EventID
	tickFn eventsim.Handler
	on     bool
}

// InstallACC attaches one agent to every switch of n.
func InstallACC(n *sim.Network, cfg ACCConfig) *ACC {
	a := &ACC{net: n, cfg: cfg}
	for _, sw := range n.Switches {
		a.agents = append(a.agents, &accAgent{
			sw: sw, net: n, cfg: cfg,
			rng:         rand.New(rand.NewSource(cfg.Seed + int64(sw.NodeID()))),
			q:           map[int][accActions]float64{},
			lastTxBytes: map[int]int64{},
		})
	}
	return a
}

// Start arms the decision loop.
func (a *ACC) Start() {
	if a.on {
		return
	}
	a.on = true
	a.arm()
}

// Stop halts the decision loop.
func (a *ACC) Stop() {
	if !a.on {
		return
	}
	a.on = false
	a.net.Eng.Cancel(a.ev)
}

// arm (re)schedules the decision tick through the timing wheel: the
// persistent handler is built once, and each tick's re-arm recycles the
// previous event's slot.
func (a *ACC) arm() {
	if a.tickFn == nil {
		a.tickFn = func() {
			if !a.on {
				return
			}
			for _, ag := range a.agents {
				ag.step()
			}
			a.arm()
		}
	}
	a.ev = a.net.Eng.RearmAfter(a.ev, a.cfg.Interval, a.tickFn)
}

// Decisions sums decisions across agents.
func (a *ACC) Decisions() int {
	total := 0
	for _, ag := range a.agents {
		total += ag.Decisions
	}
	return total
}

// observe builds the discretized local state and the reward for the
// elapsed period.
func (ag *accAgent) observe() (state int, reward float64) {
	sw := ag.sw
	seconds := ag.cfg.Interval.Seconds()

	// Port utilization: mean over ports, from tx byte deltas.
	var utilSum float64
	var maxQueue int64
	for i := 0; i < sw.NumPorts(); i++ {
		p := sw.Port(i)
		tx := p.Stats.TxBytes
		d := tx - ag.lastTxBytes[i]
		ag.lastTxBytes[i] = tx
		utilSum += float64(d*8) / (p.RateBps() * seconds)
		if q := p.QueueBytes(netdev.ClassData); q > maxQueue {
			maxQueue = q
		}
	}
	util := utilSum / float64(sw.NumPorts())
	if util > 1 {
		util = 1
	}

	// ECN marking rate over the period.
	var marked, pkts int64
	for i := 0; i < sw.NumPorts(); i++ {
		marked += sw.Port(i).Stats.ECNMarked
		pkts += sw.Port(i).Stats.TxPackets
	}
	dMarked, dPkts := marked-ag.lastMarked, pkts-ag.lastPkts
	ag.lastMarked, ag.lastPkts = marked, pkts
	markRate := 0.0
	if dPkts > 0 {
		markRate = float64(dMarked) / float64(dPkts)
	}

	pfc := sw.Stats.PFCTriggers
	dPFC := pfc - ag.lastPFC
	ag.lastPFC = pfc

	// Discretize: 5 utilization levels × 4 mark levels × 4 queue levels.
	uL := int(util * 4.999)
	mL := int(markRate * 3.999)
	qFrac := float64(maxQueue) / float64(2<<20) // 2 MB scale
	if qFrac > 1 {
		qFrac = 1
	}
	qL := int(qFrac * 3.999)
	state = uL*16 + mL*4 + qL

	// Reward: high utilization, shallow queues, no PFC — ACC's
	// throughput/latency balance.
	reward = util - 0.5*qFrac
	if dPFC > 0 {
		reward -= 1
	}
	return state, reward
}

func (ag *accAgent) step() {
	state, reward := ag.observe()

	if ag.havePrev {
		next := ag.q[state]
		best := next[0]
		for _, v := range next[1:] {
			if v > best {
				best = v
			}
		}
		qRow := ag.q[ag.prevState]
		old := qRow[ag.prevAction]
		qRow[ag.prevAction] = old + ag.cfg.Alpha*(reward+ag.cfg.Gamma*best-old)
		ag.q[ag.prevState] = qRow
	}

	// ε-greedy action selection.
	var action int
	if ag.rng.Float64() < ag.cfg.Epsilon {
		action = ag.rng.Intn(accActions)
	} else {
		row := ag.q[state]
		action = 0
		for i := 1; i < accActions; i++ {
			if row[i] > row[action] {
				action = i
			}
		}
	}

	p := ag.net.SwitchParams(ag.sw.NodeID())
	kmin, kmax, pmax := applyACCAction(action, p.KminBytes, p.KmaxBytes, p.PMax)
	ag.net.ApplySwitchECN(ag.sw.NodeID(), kmin, kmax, pmax)

	ag.prevState, ag.prevAction, ag.havePrev = state, action, true
	ag.Decisions++
}
