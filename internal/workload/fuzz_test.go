package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadTrace: arbitrary CSV input must never panic, and anything that
// loads must survive a save/load round trip unchanged.
func FuzzLoadTrace(f *testing.F) {
	f.Add("start_ns,src,dst,bytes\n1000,0,1,5000\n")
	f.Add("start_ns,src,dst,bytes\n")
	f.Add("garbage")
	f.Add("start_ns,src,dst,bytes\n1,0,1,100\n2,1,0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		flows, err := LoadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, fl := range flows {
			if fl.Bytes <= 0 || fl.SrcIndex == fl.DstIndex || fl.StartNs < 0 {
				t.Fatalf("invalid flow passed validation: %+v", fl)
			}
		}
		var buf bytes.Buffer
		if err := SaveTrace(&buf, flows); err != nil {
			t.Fatalf("save of loaded trace failed: %v", err)
		}
		again, err := LoadTrace(&buf)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(again) != len(flows) {
			t.Fatalf("round trip lost flows: %d vs %d", len(again), len(flows))
		}
	})
}
