// Package workload generates the traffic patterns of the paper's
// evaluation: the FB_Hadoop datacenter workload (heavy-tailed flow sizes,
// Poisson arrivals at a target load), the ON/OFF LLM-training alltoall
// collective, the all-mice SolarRPC distribution, and the workload-influx
// compositions of §IV-B2 and §IV-C.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// cdfPoint anchors a piecewise-linear CDF: Frac of flows are ≤ Size bytes.
type cdfPoint struct {
	Frac float64
	Size float64
}

// SizeCDF is an invertible flow-size distribution.
type SizeCDF struct {
	name   string
	points []cdfPoint
}

// NewSizeCDF builds a distribution from (fraction, size) anchors. The
// fractions must be strictly increasing and end at 1; sizes must be
// nondecreasing and positive.
func NewSizeCDF(name string, anchors map[float64]int64) (SizeCDF, error) {
	pts := make([]cdfPoint, 0, len(anchors))
	for f, s := range anchors {
		pts = append(pts, cdfPoint{Frac: f, Size: float64(s)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Frac < pts[j].Frac })
	if len(pts) < 2 {
		return SizeCDF{}, fmt.Errorf("workload: CDF %q needs >= 2 anchors", name)
	}
	if pts[0].Frac != 0 {
		return SizeCDF{}, fmt.Errorf("workload: CDF %q must start at fraction 0", name)
	}
	if pts[len(pts)-1].Frac != 1 {
		return SizeCDF{}, fmt.Errorf("workload: CDF %q must end at fraction 1", name)
	}
	for i := range pts {
		if pts[i].Size <= 0 {
			return SizeCDF{}, fmt.Errorf("workload: CDF %q has non-positive size", name)
		}
		if i > 0 && pts[i].Size < pts[i-1].Size {
			return SizeCDF{}, fmt.Errorf("workload: CDF %q sizes not monotone", name)
		}
	}
	return SizeCDF{name: name, points: pts}, nil
}

func mustCDF(name string, anchors map[float64]int64) SizeCDF {
	c, err := NewSizeCDF(name, anchors)
	if err != nil {
		panic(err)
	}
	return c
}

// Name identifies the distribution.
func (c SizeCDF) Name() string { return c.name }

// Sample draws one flow size by inverse-transform sampling with
// log-linear interpolation between anchors (flow sizes span orders of
// magnitude, so linear interpolation would skew the tail).
func (c SizeCDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := c.points
	for i := 1; i < len(pts); i++ {
		if u <= pts[i].Frac {
			lo, hi := pts[i-1], pts[i]
			if hi.Frac == lo.Frac || hi.Size == lo.Size {
				return int64(hi.Size)
			}
			t := (u - lo.Frac) / (hi.Frac - lo.Frac)
			size := math.Exp(math.Log(lo.Size) + t*(math.Log(hi.Size)-math.Log(lo.Size)))
			if size < 1 {
				size = 1
			}
			return int64(size)
		}
	}
	return int64(pts[len(pts)-1].Size)
}

// MeanBytes numerically estimates the distribution mean (used to convert
// a load fraction into a Poisson arrival rate).
func (c SizeCDF) MeanBytes() float64 {
	// Integrate piecewise: E[X] = Σ (segment probability) × (segment
	// log-mean). The log-linear segment mean is (hi−lo)/(ln hi − ln lo).
	var mean float64
	pts := c.points
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		p := hi.Frac - lo.Frac
		if p <= 0 {
			continue
		}
		var segMean float64
		if hi.Size == lo.Size {
			segMean = hi.Size
		} else {
			segMean = (hi.Size - lo.Size) / (math.Log(hi.Size) - math.Log(lo.Size))
		}
		mean += p * segMean
	}
	return mean
}

// FBHadoop is a synthetic reconstruction of the Facebook Hadoop workload
// shape (Roy et al., SIGCOMM 2015) used in §IV-B: the majority of flows
// are mice of a few KB while the majority of bytes ride multi-MB
// elephants.
func FBHadoop() SizeCDF {
	return mustCDF("FB_Hadoop", map[float64]int64{
		0:    80,
		0.1:  200,
		0.2:  355,
		0.3:  556,
		0.5:  1059,
		0.6:  2 << 10,
		0.7:  5 << 10,
		0.8:  20 << 10,
		0.9:  100 << 10,
		0.95: 500 << 10,
		0.99: 10 << 20,
		1:    30 << 20,
	})
}

// SolarRPC is the all-mice compute-to-storage RPC distribution (Miao et
// al., SIGCOMM 2022): every message below 128 KB.
func SolarRPC() SizeCDF {
	return mustCDF("SolarRPC", map[float64]int64{
		0:    64,
		0.3:  512,
		0.5:  2 << 10,
		0.8:  16 << 10,
		0.95: 64 << 10,
		1:    128 << 10,
	})
}

// WebSearch is the DCTCP web-search distribution, a common third workload
// for FCT studies.
func WebSearch() SizeCDF {
	return mustCDF("WebSearch", map[float64]int64{
		0:    6 << 10,
		0.15: 10 << 10,
		0.2:  13 << 10,
		0.3:  19 << 10,
		0.4:  33 << 10,
		0.53: 53 << 10,
		0.6:  133 << 10,
		0.7:  667 << 10,
		0.8:  1461 << 10,
		0.9:  3 << 20,
		0.97: 10 << 20,
		1:    30 << 20,
	})
}
