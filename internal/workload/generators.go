package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PoissonConfig drives an open-loop datacenter workload: flows arrive as a
// Poisson process at an aggregate rate chosen so the participating hosts'
// links run at the target load, with sizes drawn from a CDF and endpoints
// drawn uniformly (src ≠ dst).
type PoissonConfig struct {
	// Hosts participate as sources and destinations; nil means all.
	Hosts []topology.NodeID
	// CDF is the flow-size distribution.
	CDF SizeCDF
	// Load is the target average utilization of each host's uplink
	// (paper default: 0.3).
	Load float64
	// Start and Duration bound the arrival process; Duration 0 means
	// run forever.
	Start    eventsim.Time
	Duration eventsim.Time
}

// PoissonGen is an installed Poisson workload.
type PoissonGen struct {
	net  *sim.Network
	cfg  PoissonConfig
	rate float64 // arrivals per second, aggregate
	rng  *rand.Rand

	// FlowIDs records every flow this generator launched.
	FlowIDs map[uint64]bool
	// Launched counts arrivals so far.
	Launched int
}

// InstallPoisson schedules the workload on n and returns its handle.
func InstallPoisson(n *sim.Network, cfg PoissonConfig) (*PoissonGen, error) {
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("workload: load %g outside (0,1]", cfg.Load)
	}
	if cfg.Hosts == nil {
		cfg.Hosts = n.Topo.Hosts()
	}
	if len(cfg.Hosts) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 hosts, have %d", len(cfg.Hosts))
	}
	mean := cfg.CDF.MeanBytes()
	if mean <= 0 {
		return nil, fmt.Errorf("workload: CDF %q has non-positive mean", cfg.CDF.Name())
	}
	g := &PoissonGen{
		net:     n,
		cfg:     cfg,
		FlowIDs: map[uint64]bool{},
		rng:     n.Eng.Rand(),
		// Aggregate bits/sec target divided by mean flow size.
		rate: cfg.Load * n.HostLinkBps() * float64(len(cfg.Hosts)) / (mean * 8),
	}
	n.Eng.Schedule(cfg.Start, g.arrive)
	return g, nil
}

// arrive launches one flow and schedules the next arrival.
func (g *PoissonGen) arrive() {
	now := g.net.Eng.Now()
	if g.cfg.Duration > 0 && now >= g.cfg.Start+g.cfg.Duration {
		return
	}
	g.launchOne()
	gap := eventsim.Time(g.rng.ExpFloat64() / g.rate * 1e9)
	if gap < 1 {
		gap = 1
	}
	g.net.Eng.After(gap, g.arrive)
}

func (g *PoissonGen) launchOne() {
	rng := g.rng
	hosts := g.cfg.Hosts
	si := rng.Intn(len(hosts))
	di := rng.Intn(len(hosts) - 1)
	if di >= si {
		di++
	}
	size := g.cfg.CDF.Sample(rng)
	id := g.net.StartFlow(hosts[si], hosts[di], size)
	g.FlowIDs[id] = true
	g.Launched++
}

// AlltoallConfig drives the LLM-training collective of §IV-B: during the
// ON period every worker sends MessageBytes to every other worker; when
// the whole round completes, the workers "update the model" for OffTime
// before the next round.
type AlltoallConfig struct {
	Workers []topology.NodeID
	// MessageBytes per worker pair per round (paper: 12 MB at 20
	// workers).
	MessageBytes int64
	// OffTime is the model-update gap between rounds (paper: 20 ms).
	OffTime eventsim.Time
	// Rounds bounds the workload; 0 means run until the simulation ends.
	Rounds int
	// Start is the first round's launch time.
	Start eventsim.Time
	// QPsPerPair splits each pair's message across this many parallel
	// QPs (NCCL's NCCL_IB_QPS_PER_CONNECTION; the paper's testbed uses
	// 1). 0 means 1.
	QPsPerPair int
}

// AlltoallGen is an installed collective workload.
type AlltoallGen struct {
	net *sim.Network
	cfg AlltoallConfig

	pending map[uint64]bool
	inRound bool
	roundAt eventsim.Time
	stopped bool
	// FlowIDs records all flows launched across rounds.
	FlowIDs map[uint64]bool

	// RoundDurations records each completed round's elapsed time;
	// RoundEnds the virtual time each round finished.
	RoundDurations []eventsim.Time
	RoundEnds      []eventsim.Time
	// RoundsDone counts completed rounds.
	RoundsDone int
}

// InstallAlltoall schedules the collective on n.
func InstallAlltoall(n *sim.Network, cfg AlltoallConfig) (*AlltoallGen, error) {
	if len(cfg.Workers) < 2 {
		return nil, fmt.Errorf("workload: alltoall needs >= 2 workers")
	}
	if cfg.MessageBytes <= 0 {
		return nil, fmt.Errorf("workload: non-positive alltoall message size")
	}
	g := &AlltoallGen{
		net:     n,
		cfg:     cfg,
		pending: map[uint64]bool{},
		FlowIDs: map[uint64]bool{},
	}
	n.AddFlowCompleteHook(g.onComplete)
	n.Eng.Schedule(cfg.Start, g.startRound)
	return g, nil
}

// Stop prevents further rounds from starting.
func (g *AlltoallGen) Stop() { g.stopped = true }

// InRound reports whether a round is currently in flight (the ON period).
func (g *AlltoallGen) InRound() bool { return g.inRound }

// AggregateGoodputBps reports a completed round's goodput: total payload
// bits moved divided by the round duration.
func (g *AlltoallGen) AggregateGoodputBps(round int) float64 {
	d := g.RoundDurations[round]
	if d <= 0 {
		return 0
	}
	n := int64(len(g.cfg.Workers))
	totalBits := float64(n * (n - 1) * g.cfg.MessageBytes * 8)
	return totalBits / d.Seconds()
}

func (g *AlltoallGen) startRound() {
	if g.stopped {
		return
	}
	if g.cfg.Rounds > 0 && g.RoundsDone >= g.cfg.Rounds {
		return
	}
	g.inRound = true
	g.roundAt = g.net.Eng.Now()
	qps := g.cfg.QPsPerPair
	if qps < 1 {
		qps = 1
	}
	for _, src := range g.cfg.Workers {
		for _, dst := range g.cfg.Workers {
			if src == dst {
				continue
			}
			// Split the pair's bytes across QPs, front-loading the
			// remainder so every QP moves at least one byte.
			base := g.cfg.MessageBytes / int64(qps)
			rem := g.cfg.MessageBytes % int64(qps)
			for q := 0; q < qps; q++ {
				size := base
				if int64(q) < rem {
					size++
				}
				if size <= 0 {
					continue
				}
				id := g.net.StartFlow(src, dst, size)
				g.pending[id] = true
				g.FlowIDs[id] = true
			}
		}
	}
}

func (g *AlltoallGen) onComplete(rec sim.FlowRecord) {
	if !g.pending[rec.ID] {
		return
	}
	delete(g.pending, rec.ID)
	if len(g.pending) > 0 {
		return
	}
	// Round finished: record and enter the OFF period.
	g.inRound = false
	g.RoundDurations = append(g.RoundDurations, g.net.Eng.Now()-g.roundAt)
	g.RoundEnds = append(g.RoundEnds, g.net.Eng.Now())
	g.RoundsDone++
	if g.stopped || (g.cfg.Rounds > 0 && g.RoundsDone >= g.cfg.Rounds) {
		return
	}
	g.net.Eng.After(g.cfg.OffTime, g.startRound)
}

// InfluxConfig composes the §IV-B2 scenario: an alltoall training workload
// runs as background traffic, and a burst of FB_Hadoop (or RPC) traffic
// arrives partway through and competes for the fabric.
type InfluxConfig struct {
	Background AlltoallConfig
	// Burst arrives at Burst.Start for Burst.Duration.
	Burst PoissonConfig
}

// Influx is an installed influx scenario.
type Influx struct {
	Background *AlltoallGen
	Burst      *PoissonGen
}

// InstallInflux schedules both components.
func InstallInflux(n *sim.Network, cfg InfluxConfig) (*Influx, error) {
	bg, err := InstallAlltoall(n, cfg.Background)
	if err != nil {
		return nil, err
	}
	burst, err := InstallPoisson(n, cfg.Burst)
	if err != nil {
		return nil, err
	}
	return &Influx{Background: bg, Burst: burst}, nil
}
