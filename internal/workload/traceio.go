package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

// TraceFlow is one flow of a recorded or hand-written trace. Endpoints
// are host *indices* (position in Topology.Hosts()), not node IDs, so a
// trace replays on any fabric with at least as many hosts.
type TraceFlow struct {
	StartNs  int64
	SrcIndex int
	DstIndex int
	Bytes    int64
}

// traceHeader is the CSV schema.
var traceHeader = []string{"start_ns", "src", "dst", "bytes"}

// SaveTrace writes flows as CSV (sorted by start time) for later replay
// or external analysis.
func SaveTrace(w io.Writer, flows []TraceFlow) error {
	sorted := append([]TraceFlow(nil), flows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartNs < sorted[j].StartNs })
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	for _, f := range sorted {
		rec := []string{
			strconv.FormatInt(f.StartNs, 10),
			strconv.Itoa(f.SrcIndex),
			strconv.Itoa(f.DstIndex),
			strconv.FormatInt(f.Bytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadTrace parses a CSV trace written by SaveTrace (or by hand).
func LoadTrace(r io.Reader) ([]TraceFlow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: trace: empty file")
	}
	for i, name := range traceHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("workload: trace: header %v, want %v", rows[0], traceHeader)
		}
	}
	out := make([]TraceFlow, 0, len(rows)-1)
	for line, row := range rows[1:] {
		var f TraceFlow
		var errs [4]error
		f.StartNs, errs[0] = strconv.ParseInt(row[0], 10, 64)
		f.SrcIndex, errs[1] = strconv.Atoi(row[1])
		f.DstIndex, errs[2] = strconv.Atoi(row[2])
		f.Bytes, errs[3] = strconv.ParseInt(row[3], 10, 64)
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", line+2, e)
			}
		}
		if f.StartNs < 0 || f.Bytes <= 0 || f.SrcIndex < 0 || f.DstIndex < 0 || f.SrcIndex == f.DstIndex {
			return nil, fmt.Errorf("workload: trace line %d: invalid flow %+v", line+2, f)
		}
		out = append(out, f)
	}
	return out, nil
}

// RecordTrace converts a finished simulation's flow records back into a
// replayable trace.
func RecordTrace(n *sim.Network, records []sim.FlowRecord) []TraceFlow {
	index := map[int]int{}
	for i, h := range n.Topo.Hosts() {
		index[int(h)] = i
	}
	out := make([]TraceFlow, 0, len(records))
	for _, r := range records {
		out = append(out, TraceFlow{
			StartNs:  int64(r.Start),
			SrcIndex: index[int(r.Src)],
			DstIndex: index[int(r.Dst)],
			Bytes:    r.Size,
		})
	}
	return out
}

// InstallReplay schedules a trace on n, offset so the first flow starts
// at `start`. It fails if the trace references hosts the fabric lacks.
func InstallReplay(n *sim.Network, flows []TraceFlow, start eventsim.Time) error {
	if len(flows) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	hosts := n.Topo.Hosts()
	base := flows[0].StartNs
	for _, f := range flows {
		if f.StartNs < base {
			base = f.StartNs
		}
		if f.SrcIndex >= len(hosts) || f.DstIndex >= len(hosts) {
			return fmt.Errorf("workload: trace references host %d/%d, fabric has %d",
				f.SrcIndex, f.DstIndex, len(hosts))
		}
	}
	for _, f := range flows {
		at := start + eventsim.Time(f.StartNs-base)
		n.StartFlowAt(at, hosts[f.SrcIndex], hosts[f.DstIndex], f.Bytes)
	}
	return nil
}
