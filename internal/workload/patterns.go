package workload

import (
	"fmt"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// IncastConfig drives the classic partition/aggregate pattern: FanIn
// senders each push MessageBytes to one aggregator, Repeat times with
// Gap between waves. Incast is the scenario DCQCN+ targets and the
// stress case for PFC.
type IncastConfig struct {
	// Aggregator receives; nil Senders means every other host sends.
	Aggregator topology.NodeID
	Senders    []topology.NodeID
	// FanIn bounds the sender count (0 = all senders).
	FanIn        int
	MessageBytes int64
	Repeat       int
	Gap          eventsim.Time
	Start        eventsim.Time
}

// IncastGen is an installed incast workload.
type IncastGen struct {
	net *sim.Network
	cfg IncastConfig

	pending map[uint64]bool
	// FlowIDs records all launched flows; WaveDurations each wave's
	// completion time.
	FlowIDs       map[uint64]bool
	WaveDurations []eventsim.Time
	waveAt        eventsim.Time
	wavesLeft     int
}

// InstallIncast schedules the workload on n.
func InstallIncast(n *sim.Network, cfg IncastConfig) (*IncastGen, error) {
	if cfg.Senders == nil {
		for _, h := range n.Topo.Hosts() {
			if h != cfg.Aggregator {
				cfg.Senders = append(cfg.Senders, h)
			}
		}
	}
	if cfg.FanIn > 0 && cfg.FanIn < len(cfg.Senders) {
		cfg.Senders = cfg.Senders[:cfg.FanIn]
	}
	if len(cfg.Senders) == 0 {
		return nil, fmt.Errorf("workload: incast with no senders")
	}
	for _, s := range cfg.Senders {
		if s == cfg.Aggregator {
			return nil, fmt.Errorf("workload: aggregator %d among senders", cfg.Aggregator)
		}
	}
	if cfg.MessageBytes <= 0 {
		return nil, fmt.Errorf("workload: non-positive incast message")
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 1
	}
	g := &IncastGen{
		net: n, cfg: cfg,
		pending:   map[uint64]bool{},
		FlowIDs:   map[uint64]bool{},
		wavesLeft: cfg.Repeat,
	}
	n.AddFlowCompleteHook(g.onComplete)
	n.Eng.Schedule(cfg.Start, g.wave)
	return g, nil
}

// WavesDone reports completed waves.
func (g *IncastGen) WavesDone() int { return len(g.WaveDurations) }

func (g *IncastGen) wave() {
	if g.wavesLeft <= 0 {
		return
	}
	g.wavesLeft--
	g.waveAt = g.net.Eng.Now()
	for _, s := range g.cfg.Senders {
		id := g.net.StartFlow(s, g.cfg.Aggregator, g.cfg.MessageBytes)
		g.pending[id] = true
		g.FlowIDs[id] = true
	}
}

func (g *IncastGen) onComplete(rec sim.FlowRecord) {
	if !g.pending[rec.ID] {
		return
	}
	delete(g.pending, rec.ID)
	if len(g.pending) > 0 {
		return
	}
	g.WaveDurations = append(g.WaveDurations, g.net.Eng.Now()-g.waveAt)
	if g.wavesLeft > 0 {
		g.net.Eng.After(g.cfg.Gap, g.wave)
	}
}

// PermutationConfig drives a permutation workload: each host sends one
// flow to a distinct peer (a cyclic shift), the canonical pattern for
// measuring a fabric's bisection behaviour without incast.
type PermutationConfig struct {
	// Hosts participate; nil means all. Shift is the cyclic distance
	// (default 1; must not be a multiple of the host count).
	Hosts []topology.NodeID
	Shift int
	Bytes int64
	Start eventsim.Time
}

// PermutationGen is an installed permutation workload; FlowIDs fills
// (in host order) when the start event fires.
type PermutationGen struct {
	FlowIDs  []uint64
	Launched bool
}

// InstallPermutation schedules the workload.
func InstallPermutation(n *sim.Network, cfg PermutationConfig) (*PermutationGen, error) {
	hosts := cfg.Hosts
	if hosts == nil {
		hosts = n.Topo.Hosts()
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: permutation needs >= 2 hosts")
	}
	shift := cfg.Shift
	if shift == 0 {
		shift = 1
	}
	if shift%len(hosts) == 0 {
		return nil, fmt.Errorf("workload: shift %d maps hosts to themselves", shift)
	}
	if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("workload: non-positive permutation size")
	}
	g := &PermutationGen{}
	n.Eng.Schedule(cfg.Start, func() {
		for i, src := range hosts {
			dst := hosts[(i+shift)%len(hosts)]
			g.FlowIDs = append(g.FlowIDs, n.StartFlow(src, dst, cfg.Bytes))
		}
		g.Launched = true
	})
	return g, nil
}
