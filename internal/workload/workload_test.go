package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewSizeCDF("one-point", map[float64]int64{0: 100}); err == nil {
		t.Error("single-anchor CDF accepted")
	}
	if _, err := NewSizeCDF("no-zero", map[float64]int64{0.5: 100, 1: 200}); err == nil {
		t.Error("CDF not starting at 0 accepted")
	}
	if _, err := NewSizeCDF("no-one", map[float64]int64{0: 100, 0.5: 200}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewSizeCDF("nonmono", map[float64]int64{0: 500, 1: 100}); err == nil {
		t.Error("non-monotone sizes accepted")
	}
	if _, err := NewSizeCDF("zero-size", map[float64]int64{0: 0, 1: 100}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBuiltinCDFs(t *testing.T) {
	for _, c := range []SizeCDF{FBHadoop(), SolarRPC(), WebSearch()} {
		if c.Name() == "" {
			t.Error("unnamed CDF")
		}
		if c.MeanBytes() <= 0 {
			t.Errorf("%s mean %g", c.Name(), c.MeanBytes())
		}
	}
}

func TestQuickSampleWithinBounds(t *testing.T) {
	cdf := FBHadoop()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			s := cdf.Sample(rng)
			if s < 80 || s > 30<<20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFBHadoopShape(t *testing.T) {
	// Most flows mice, most bytes from elephants — the property §II
	// leans on.
	rng := rand.New(rand.NewSource(1))
	cdf := FBHadoop()
	const n = 20000
	var mice, total int
	var miceBytes, totalBytes int64
	for i := 0; i < n; i++ {
		s := cdf.Sample(rng)
		total++
		totalBytes += s
		if s < 100<<10 {
			mice++
			miceBytes += s
		}
	}
	if frac := float64(mice) / float64(total); frac < 0.8 {
		t.Errorf("mice flow fraction %g, want >= 0.8", frac)
	}
	if frac := float64(miceBytes) / float64(totalBytes); frac > 0.4 {
		t.Errorf("mice byte fraction %g, want minority of bytes", frac)
	}
}

func TestSolarRPCAllMice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cdf := SolarRPC()
	for i := 0; i < 5000; i++ {
		if s := cdf.Sample(rng); s > 128<<10 {
			t.Fatalf("SolarRPC sample %d exceeds 128KB", s)
		}
	}
}

func TestSampleMedianNearAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cdf := FBHadoop()
	var below int
	const n = 40000
	for i := 0; i < n; i++ {
		if cdf.Sample(rng) <= 1059 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("P(X <= median anchor) = %g, want ≈0.5", frac)
	}
}

func TestMeanBytesMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cdf := SolarRPC()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(cdf.Sample(rng))
	}
	emp := sum / n
	analytic := cdf.MeanBytes()
	ratio := emp / analytic
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("empirical mean %g vs analytic %g (ratio %g)", emp, analytic, ratio)
	}
}

// --- Generators on a live network ---

func newNet(t *testing.T) *sim.Network {
	t.Helper()
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPoissonLoadCalibration(t *testing.T) {
	n := newNet(t)
	g, err := InstallPoisson(n, PoissonConfig{
		CDF:  SolarRPC(), // bounded sizes make short-run load stable
		Load: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon := 50 * eventsim.Millisecond
	n.Run(horizon)
	if g.Launched == 0 {
		t.Fatal("no arrivals")
	}
	// Offered load: bytes launched / capacity across hosts.
	var offered int64
	for id := range g.FlowIDs {
		offered += n.FlowSize(id)
	}
	capacity := n.HostLinkBps() * float64(len(n.Topo.Hosts())) * horizon.Seconds() / 8
	load := float64(offered) / capacity
	if load < 0.15 || load > 0.45 {
		t.Errorf("offered load %g, want ≈0.3", load)
	}
}

func TestPoissonRespectsWindow(t *testing.T) {
	n := newNet(t)
	g, err := InstallPoisson(n, PoissonConfig{
		CDF:      SolarRPC(),
		Load:     0.3,
		Start:    10 * eventsim.Millisecond,
		Duration: 5 * eventsim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(8 * eventsim.Millisecond)
	if g.Launched != 0 {
		t.Error("arrivals before Start")
	}
	n.Run(30 * eventsim.Millisecond)
	launched := g.Launched
	if launched == 0 {
		t.Fatal("no arrivals inside window")
	}
	n.Run(60 * eventsim.Millisecond)
	if g.Launched != launched {
		t.Error("arrivals after the window closed")
	}
}

func TestPoissonRejectsBadConfig(t *testing.T) {
	n := newNet(t)
	if _, err := InstallPoisson(n, PoissonConfig{CDF: SolarRPC(), Load: 0}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := InstallPoisson(n, PoissonConfig{CDF: SolarRPC(), Load: 2}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := InstallPoisson(n, PoissonConfig{CDF: SolarRPC(), Load: 0.3, Hosts: n.Topo.Hosts()[:1]}); err == nil {
		t.Error("single host accepted")
	}
}

func TestAlltoallRounds(t *testing.T) {
	n := newNet(t)
	workers := n.Topo.Hosts()[:4]
	g, err := InstallAlltoall(n, AlltoallConfig{
		Workers:      workers,
		MessageBytes: 256 << 10,
		OffTime:      2 * eventsim.Millisecond,
		Rounds:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(5 * eventsim.Second)
	if g.RoundsDone != 3 {
		t.Fatalf("RoundsDone = %d, want 3", g.RoundsDone)
	}
	if len(g.RoundDurations) != 3 {
		t.Fatalf("RoundDurations = %d entries", len(g.RoundDurations))
	}
	// 4 workers × 3 peers × 3 rounds flows.
	if want := 4 * 3 * 3; len(g.FlowIDs) != want {
		t.Errorf("launched %d flows, want %d", len(g.FlowIDs), want)
	}
	for r := 0; r < 3; r++ {
		bw := g.AggregateGoodputBps(r)
		if bw <= 0 {
			t.Errorf("round %d goodput %g", r, bw)
		}
		// Goodput cannot exceed aggregate access capacity.
		if bw > float64(len(workers))*n.HostLinkBps() {
			t.Errorf("round %d goodput %g exceeds capacity", r, bw)
		}
	}
	if g.InRound() {
		t.Error("InRound true after final round")
	}
}

func TestAlltoallOffGapsSeparateRounds(t *testing.T) {
	n := newNet(t)
	workers := n.Topo.Hosts()[:3]
	off := 5 * eventsim.Millisecond
	g, err := InstallAlltoall(n, AlltoallConfig{
		Workers:      workers,
		MessageBytes: 64 << 10,
		OffTime:      off,
		Rounds:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(eventsim.Second)
	if g.RoundsDone != 2 {
		t.Fatalf("RoundsDone = %d, want 2", g.RoundsDone)
	}
	// Starts of round-2 flows must come ≥ OffTime after the last
	// completion of round 1.
	var round1End, round2Start eventsim.Time
	for i, rec := range n.Completed {
		if i < len(workers)*(len(workers)-1) {
			if rec.End > round1End {
				round1End = rec.End
			}
		} else if round2Start == 0 || rec.Start < round2Start {
			round2Start = rec.Start
		}
	}
	if round2Start < round1End+off {
		t.Errorf("round 2 started %v after round 1 end %v; want gap >= %v", round2Start, round1End, off)
	}
}

func TestAlltoallStop(t *testing.T) {
	n := newNet(t)
	g, err := InstallAlltoall(n, AlltoallConfig{
		Workers:      n.Topo.Hosts()[:3],
		MessageBytes: 64 << 10,
		OffTime:      eventsim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20 * eventsim.Millisecond)
	g.Stop()
	rounds := g.RoundsDone
	n.RunUntilIdle(eventsim.Second)
	if g.RoundsDone > rounds+1 {
		t.Errorf("rounds kept starting after Stop: %d -> %d", rounds, g.RoundsDone)
	}
}

func TestInfluxComposition(t *testing.T) {
	n := newNet(t)
	hosts := n.Topo.Hosts()
	flux, err := InstallInflux(n, InfluxConfig{
		Background: AlltoallConfig{
			Workers:      hosts[:4],
			MessageBytes: 1 << 20,
			OffTime:      2 * eventsim.Millisecond,
		},
		Burst: PoissonConfig{
			Hosts:    hosts[4:],
			CDF:      SolarRPC(),
			Load:     0.4,
			Start:    5 * eventsim.Millisecond,
			Duration: 10 * eventsim.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(30 * eventsim.Millisecond)
	if flux.Background.RoundsDone == 0 && !flux.Background.InRound() {
		t.Error("background collective never ran")
	}
	if flux.Burst.Launched == 0 {
		t.Error("burst never arrived")
	}
	// Flow ID sets are disjoint.
	for id := range flux.Burst.FlowIDs {
		if flux.Background.FlowIDs[id] {
			t.Fatalf("flow %d claimed by both generators", id)
		}
	}
}

func TestAlltoallRejectsBadConfig(t *testing.T) {
	n := newNet(t)
	if _, err := InstallAlltoall(n, AlltoallConfig{Workers: n.Topo.Hosts()[:1], MessageBytes: 1}); err == nil {
		t.Error("single worker accepted")
	}
	if _, err := InstallAlltoall(n, AlltoallConfig{Workers: n.Topo.Hosts()[:2], MessageBytes: 0}); err == nil {
		t.Error("zero message accepted")
	}
}

func TestAlltoallMultiQP(t *testing.T) {
	n := newNet(t)
	workers := n.Topo.Hosts()[:3]
	g, err := InstallAlltoall(n, AlltoallConfig{
		Workers:      workers,
		MessageBytes: 100<<10 + 1, // odd size exercises the remainder split
		QPsPerPair:   4,
		Rounds:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(eventsim.Second)
	if g.RoundsDone != 1 {
		t.Fatalf("round incomplete")
	}
	wantFlows := 3 * 2 * 4
	if len(g.FlowIDs) != wantFlows {
		t.Errorf("launched %d flows, want %d (pairs x QPs)", len(g.FlowIDs), wantFlows)
	}
	// Total bytes conserved across the QP split.
	var total int64
	for _, rec := range n.Completed {
		total += rec.Size
	}
	if want := int64(3*2) * (100<<10 + 1); total != want {
		t.Errorf("moved %d bytes, want %d", total, want)
	}
	// Goodput accounting still based on the logical message size.
	if bw := g.AggregateGoodputBps(0); bw <= 0 {
		t.Errorf("goodput %g", bw)
	}
}
