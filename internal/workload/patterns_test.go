package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eventsim"
)

// --- Incast ---

func TestIncastWaves(t *testing.T) {
	n := newNet(t)
	hosts := n.Topo.Hosts()
	g, err := InstallIncast(n, IncastConfig{
		Aggregator:   hosts[0],
		FanIn:        4,
		MessageBytes: 256 << 10,
		Repeat:       3,
		Gap:          eventsim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(2 * eventsim.Second)
	if g.WavesDone() != 3 {
		t.Fatalf("WavesDone = %d, want 3", g.WavesDone())
	}
	if len(g.FlowIDs) != 12 {
		t.Errorf("launched %d flows, want 12 (4 senders × 3 waves)", len(g.FlowIDs))
	}
	for w, d := range g.WaveDurations {
		if d <= 0 {
			t.Errorf("wave %d duration %v", w, d)
		}
	}
	// All flows land on the aggregator.
	for _, rec := range n.Completed {
		if rec.Dst != hosts[0] {
			t.Errorf("flow %d went to %d, want aggregator", rec.ID, rec.Dst)
		}
	}
}

func TestIncastDefaultsToAllSenders(t *testing.T) {
	n := newNet(t)
	hosts := n.Topo.Hosts()
	g, err := InstallIncast(n, IncastConfig{
		Aggregator:   hosts[0],
		MessageBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(eventsim.Second)
	if len(g.FlowIDs) != len(hosts)-1 {
		t.Errorf("launched %d flows, want %d", len(g.FlowIDs), len(hosts)-1)
	}
}

func TestIncastRejectsBadConfig(t *testing.T) {
	n := newNet(t)
	hosts := n.Topo.Hosts()
	if _, err := InstallIncast(n, IncastConfig{
		Aggregator: hosts[0], Senders: hosts[:0], MessageBytes: 1,
	}); err == nil {
		t.Error("empty sender list accepted")
	}
	if _, err := InstallIncast(n, IncastConfig{
		Aggregator: hosts[0], Senders: hosts[:1], MessageBytes: 1,
	}); err == nil {
		t.Error("aggregator-as-sender accepted")
	}
	if _, err := InstallIncast(n, IncastConfig{
		Aggregator: hosts[0], Senders: hosts[1:2], MessageBytes: 0,
	}); err == nil {
		t.Error("zero message accepted")
	}
}

// --- Permutation ---

func TestPermutation(t *testing.T) {
	n := newNet(t)
	g, err := InstallPermutation(n, PermutationConfig{Bytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle(eventsim.Second)
	hosts := n.Topo.Hosts()
	if !g.Launched || len(g.FlowIDs) != len(hosts) {
		t.Fatalf("launched=%v flows=%d, want %d", g.Launched, len(g.FlowIDs), len(hosts))
	}
	if len(n.Completed) != len(hosts) {
		t.Fatalf("completed %d, want %d", len(n.Completed), len(hosts))
	}
	// Every host sends exactly once and receives exactly once.
	srcSeen := map[int]int{}
	dstSeen := map[int]int{}
	for _, rec := range n.Completed {
		srcSeen[int(rec.Src)]++
		dstSeen[int(rec.Dst)]++
	}
	for _, h := range hosts {
		if srcSeen[int(h)] != 1 || dstSeen[int(h)] != 1 {
			t.Errorf("host %d: sent %d received %d, want 1/1", h, srcSeen[int(h)], dstSeen[int(h)])
		}
	}
}

func TestPermutationRejectsSelfMapping(t *testing.T) {
	n := newNet(t)
	hosts := n.Topo.Hosts()
	if _, err := InstallPermutation(n, PermutationConfig{
		Hosts: hosts[:4], Shift: 4, Bytes: 1,
	}); err == nil {
		t.Error("self-mapping shift accepted")
	}
}

// --- Trace record/replay ---

func TestTraceRoundTrip(t *testing.T) {
	flows := []TraceFlow{
		{StartNs: 3000, SrcIndex: 1, DstIndex: 2, Bytes: 5000},
		{StartNs: 1000, SrcIndex: 0, DstIndex: 3, Bytes: 1 << 20},
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d flows", len(got))
	}
	// Saved sorted by start.
	if got[0].StartNs != 1000 || got[1].StartNs != 3000 {
		t.Errorf("not sorted: %+v", got)
	}
	if got[0].Bytes != 1<<20 || got[1].SrcIndex != 1 {
		t.Errorf("fields lost: %+v", got)
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"a,b,c,d\n1,0,1,100\n",                 // bad header
		"start_ns,src,dst,bytes\nx,0,1,100\n",  // bad int
		"start_ns,src,dst,bytes\n1,0,0,100\n",  // src == dst
		"start_ns,src,dst,bytes\n1,0,1,0\n",    // zero bytes
		"start_ns,src,dst,bytes\n-5,0,1,100\n", // negative time
		"start_ns,src,dst,bytes\n1,0,1\n",      // wrong arity
	}
	for i, c := range cases {
		if _, err := LoadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	// Run a workload, record it, replay it on a fresh fabric: the same
	// flows (sizes, endpoints, relative starts) must appear.
	n1 := newNet(t)
	if _, err := InstallPoisson(n1, PoissonConfig{
		CDF: SolarRPC(), Load: 0.2, Duration: 5 * eventsim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	n1.RunUntilIdle(eventsim.Second)
	if len(n1.Completed) == 0 {
		t.Fatal("no flows to record")
	}
	tr := RecordTrace(n1, n1.Completed)

	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	n2 := newNet(t)
	if err := InstallReplay(n2, loaded, eventsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n2.RunUntilIdle(eventsim.Second)
	if len(n2.Completed) != len(n1.Completed) {
		t.Fatalf("replay completed %d flows, original %d", len(n2.Completed), len(n1.Completed))
	}
	// Total bytes identical.
	var b1, b2 int64
	for _, r := range n1.Completed {
		b1 += r.Size
	}
	for _, r := range n2.Completed {
		b2 += r.Size
	}
	if b1 != b2 {
		t.Errorf("replay moved %d bytes, original %d", b2, b1)
	}
}

func TestReplayRejectsOversizedTrace(t *testing.T) {
	n := newNet(t)
	err := InstallReplay(n, []TraceFlow{{SrcIndex: 0, DstIndex: 99, Bytes: 1}}, 0)
	if err == nil {
		t.Error("trace with host 99 accepted on an 8-host fabric")
	}
	if err := InstallReplay(n, nil, 0); err == nil {
		t.Error("empty trace accepted")
	}
}
