package ctrlrpc

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/dcqcn"
	"repro/internal/telemetry"
)

// Client is one agent's (or the tick driver's) connection to the
// controller. Calls are synchronous request/response; a Client is not
// safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Timeout, when > 0, bounds each frame write and each response read
	// with a connection deadline, so a hung controller fails the call
	// instead of wedging the agent's dispatch loop forever. 0 keeps the
	// pre-deadline behaviour (block indefinitely).
	Timeout time.Duration

	// BytesIn and BytesOut count wire traffic for overhead accounting.
	BytesIn, BytesOut int64

	// TM, when non-nil, mirrors frame and byte flow into the telemetry
	// registry.
	TM *telemetry.RPCMetrics
}

// Dial connects to a controller with a sane timeout.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection — the hook fault injectors
// use to interpose a faulty transport under the protocol layer.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(typ byte, msg any) (byte, []byte, error) {
	if c.Timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	}
	n, err := WriteFrame(c.bw, typ, msg)
	if err != nil {
		return 0, nil, err
	}
	c.BytesOut += int64(n)
	if c.TM != nil {
		c.TM.FramesOut.Inc()
		c.TM.BytesOut.Add(int64(n))
	}
	if c.Timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.Timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	rtyp, payload, rn, err := ReadFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	c.BytesIn += int64(rn)
	if c.TM != nil {
		c.TM.FramesIn.Inc()
		c.TM.BytesIn.Add(int64(rn))
	}
	return rtyp, payload, nil
}

// SendReport uploads one interval report and waits for the ack.
func (c *Client) SendReport(r Report) error {
	typ, _, err := c.roundTrip(TypeReport, &r)
	if err != nil {
		return err
	}
	if typ != TypeAck {
		return fmt.Errorf("ctrlrpc: report answered with type %d, want ack", typ)
	}
	return nil
}

// TickResult is the controller's answer to a tick: the parameter
// vector to run, the epoch stamped on it, and whether this interval
// changed it (Changed) after a KL trigger (Triggered).
type TickResult struct {
	Params    dcqcn.Params
	Epoch     uint64
	Changed   bool
	Triggered bool
}

// Tick closes interval seq and returns the controller's parameter
// decision.
func (c *Client) Tick(seq uint64, interval time.Duration) (TickResult, error) {
	typ, payload, err := c.roundTrip(TypeTick, &TickMsg{Seq: seq, IntervalNanos: interval.Nanoseconds()})
	if err != nil {
		return TickResult{}, err
	}
	if typ != TypeParams {
		return TickResult{}, fmt.Errorf("ctrlrpc: tick answered with type %d, want params", typ)
	}
	var resp ParamsMsg
	if err := Decode(payload, &resp); err != nil {
		return TickResult{}, err
	}
	return TickResult{
		Params:    FromWire(resp.Params),
		Epoch:     resp.Epoch,
		Changed:   resp.Changed,
		Triggered: resp.Triggered,
	}, nil
}

// SendApplyAck reports that this agent applied (or idempotently
// rejected) a dispatched epoch and waits for the controller's ack.
func (c *Client) SendApplyAck(a AckMsg) error {
	typ, _, err := c.roundTrip(TypeApplyAck, &a)
	if err != nil {
		return err
	}
	if typ != TypeAck {
		return fmt.Errorf("ctrlrpc: apply-ack answered with type %d, want ack", typ)
	}
	return nil
}
