package ctrlrpc

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

func TestWireParamsRoundTrip(t *testing.T) {
	for _, p := range []dcqcn.Params{dcqcn.DefaultParams(), dcqcn.ExpertParams()} {
		got := FromWire(ToWire(p))
		if got != p {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	r := Report{AgentID: 7, Seq: 42, ElephantBytes: 1000, Flows: 3}
	r.Hist[5] = 123.5
	n, err := WriteFrame(bw, TypeReport, &r)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Errorf("reported %d bytes, buffer has %d", n, buf.Len())
	}
	typ, payload, rn, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeReport || rn != n {
		t.Errorf("type %d size %d, want %d/%d", typ, rn, TypeReport, n)
	}
	var got Report
	if err := Decode(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("decoded %+v, want %+v", got, r)
	}
}

func TestBodylessFrame(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := WriteFrame(bw, TypeAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeAck || len(payload) != 0 {
		t.Errorf("ack frame: type %d payload %d bytes", typ, len(payload))
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var raw [5]byte
	raw[0] = 0xFF
	raw[1] = 0xFF
	raw[2] = 0xFF // ~16MB
	_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw[:])))
	if err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestQuickWireParamsRoundTrip(t *testing.T) {
	f := func(ai, hai, g, pmax float64, kmin, kmax int64) bool {
		p := dcqcn.DefaultParams()
		p.AIRateBps, p.HAIRateBps, p.G, p.PMax = ai, hai, g, pmax
		p.KminBytes, p.KmaxBytes = kmin, kmax
		return FromWire(ToWire(p)) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func quickServer(t *testing.T) *Server {
	t.Helper()
	cfg := DefaultServerConfig()
	cfg.SA = core.SAConfig{
		TotalIterNum: 3, CoolingRate: 0.5,
		InitialTemp: 30, FinalTemp: 10, Eta: 0.8, Guided: true,
	}
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func elephantReport(agent uint32, seq uint64) Report {
	r := Report{
		AgentID: agent, Seq: seq,
		ElephantBytes: 9000, MiceBytes: 1000, Flows: 4,
		UtilSum: 0.8, ActiveLinks: 1,
		RTTNormSum: 0.9, RTTCount: 1,
		PauseFracSum: 0, Devices: 2,
	}
	r.Hist[12] = 9000
	r.Hist[0] = 1000
	return r
}

func TestServerReportAndTick(t *testing.T) {
	s := quickServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SendReport(elephantReport(1, 1)); err != nil {
		t.Fatal(err)
	}
	tick, err := c.Tick(1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !tick.Triggered {
		t.Error("first interval with traffic did not trigger tuning")
	}
	if err := tick.Params.Validate(); err != nil {
		t.Errorf("returned params invalid: %v", err)
	}
	st := s.Stats()
	if st.Reports != 1 || st.Ticks != 1 || st.Triggers != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Error("byte accounting empty")
	}
	if st.Processing <= 0 {
		t.Error("processing time not recorded")
	}
}

func TestServerSessionConverges(t *testing.T) {
	s := quickServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var changes int
	for seq := uint64(1); seq <= 20; seq++ {
		if err := c.SendReport(elephantReport(1, seq)); err != nil {
			t.Fatal(err)
		}
		tick, err := c.Tick(seq, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if tick.Changed {
			changes++
			if tick.Epoch != uint64(changes) {
				t.Errorf("dispatch %d carried epoch %d", changes, tick.Epoch)
			}
		}
	}
	// quickServer's session is ~7 iterations; dispatches must have
	// happened and then stopped.
	if changes < 5 {
		t.Errorf("only %d parameter changes across a session", changes)
	}
	st := s.Stats()
	if st.Dispatches != int64(changes) {
		t.Errorf("server dispatches %d, client saw %d", st.Dispatches, changes)
	}
}

func TestServerMultipleAgents(t *testing.T) {
	s := quickServer(t)
	const agents = 4
	clients := make([]*Client, agents)
	for i := range clients {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	driver, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		for i, c := range clients {
			if err := c.SendReport(elephantReport(uint32(i), seq)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := driver.Tick(seq, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reports != agents*3 {
		t.Errorf("Reports = %d, want %d", st.Reports, agents*3)
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	s := quickServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A giant bogus length must close the connection, not crash the
	// server.
	conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a garbage frame")
	}
	conn.Close()
	// Server still serves legitimate clients.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendReport(elephantReport(1, 1)); err != nil {
		t.Errorf("server unusable after garbage: %v", err)
	}
}

func TestReportMonitorReport(t *testing.T) {
	r := elephantReport(1, 1)
	m := r.MonitorReport()
	if m.ElephantBytes != 9000 || m.MiceBytes != 1000 || m.Flows != 4 {
		t.Errorf("conversion lost fields: %+v", m)
	}
	fsd := monitor.Aggregate(m)
	if fsd.ElephantShare != 0.9 {
		t.Errorf("elephant share %g", fsd.ElephantShare)
	}
}
