package ctrlrpc

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/dispatch"
)

// TestClientTimeoutOnStalledServer: a server that accepts but never
// answers must fail the client's call within its Timeout, not hang the
// dispatch loop forever.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // hold the conn open, read nothing, answer nothing
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err = c.Tick(1, time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("tick against a mute server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline not armed", elapsed)
	}
	if conn := <-accepted; conn != nil {
		conn.Close()
	}
}

// TestClientNoTimeoutByDefault documents that the zero value keeps the
// old blocking behaviour: the deadline machinery must be strictly
// opt-in so chaos fault injectors can arm their own conn deadlines.
func TestClientNoTimeoutByDefault(t *testing.T) {
	var c Client
	if c.Timeout != 0 {
		t.Error("zero Client has a non-zero Timeout")
	}
}

// TestServerTimeoutOnStalledClient: a client that opens a connection and
// sends half a frame must be cut loose by the server's ReadTimeout —
// the handler goroutine exits instead of pinning the partial read.
func TestServerTimeoutOnStalledClient(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.ReadTimeout = 50 * time.Millisecond
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header promising 100 bytes, then silence.
	conn.Write([]byte{100, 0, 0, 0, TypeReport})

	// The server must hang up on its own; detect it by the read
	// unblocking with EOF/reset rather than our own deadline firing.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("server answered a half frame")
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		t.Error("server still holding the stalled connection after its ReadTimeout")
	}
}

// TestServerApplyAckQuorum drives the epoch/ACK protocol end to end:
// a dispatch bumps the epoch, agents ACK (epoch, hash), and the server
// credits only matching ACKs toward the quorum.
func TestServerApplyAckQuorum(t *testing.T) {
	s := quickServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var last TickResult
	for seq := uint64(1); seq <= 10 && !last.Changed; seq++ {
		if err := c.SendReport(elephantReport(1, seq)); err != nil {
			t.Fatal(err)
		}
		last, err = c.Tick(seq, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !last.Changed {
		t.Fatal("tuner never dispatched")
	}
	if last.Epoch == 0 || last.Epoch != s.Epoch() {
		t.Fatalf("dispatch epoch %d, server epoch %d", last.Epoch, s.Epoch())
	}

	hash := dispatch.VectorHash(&last.Params)
	for id := uint32(0); id < 3; id++ {
		if err := c.SendApplyAck(AckMsg{AgentID: id, Epoch: last.Epoch, VectorHash: hash, Applied: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Stale epoch and wrong hash are counted but not credited.
	if err := c.SendApplyAck(AckMsg{AgentID: 9, Epoch: last.Epoch - 1, VectorHash: hash}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendApplyAck(AckMsg{AgentID: 8, Epoch: last.Epoch, VectorHash: hash + 1}); err != nil {
		t.Fatal(err)
	}
	if got := s.EpochAcks(); got != 3 {
		t.Errorf("EpochAcks = %d, want 3", got)
	}
	if st := s.Stats(); st.ApplyAcks != 5 {
		t.Errorf("ApplyAcks = %d, want 5", st.ApplyAcks)
	}
}

// TestServerGuardRejectsTunerOutput: with a zero-width rate limit the
// guard vetoes every second dispatch; the wire must keep carrying the
// previous vector under the unchanged epoch.
func TestServerGuardRejectsTunerOutput(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SA.TotalIterNum = 3
	cfg.SA.CoolingRate = 0.5
	cfg.SA.InitialTemp = 30
	cfg.SA.FinalTemp = 10
	cfg.SA.Eta = 0.8
	cfg.SA.Guided = true
	// A one-hour MinGap (wall clock) admits only the first dispatch.
	cfg.Guard.MinGap = 3600 * 1e9
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var changes int
	for seq := uint64(1); seq <= 20; seq++ {
		if err := c.SendReport(elephantReport(1, seq)); err != nil {
			t.Fatal(err)
		}
		tick, err := c.Tick(seq, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if tick.Changed {
			changes++
		}
	}
	st := s.Stats()
	if changes != 1 {
		t.Errorf("rate-limited server changed params %d times, want 1", changes)
	}
	if st.Rejects == 0 {
		t.Error("guard rejections not counted")
	}
	if s.Epoch() != 1 {
		t.Errorf("epoch %d after one admitted dispatch", s.Epoch())
	}
}

// TestServerWALRestart: a controller restarted with the same WAL resumes
// from the last committed vector and keeps granting fresh epochs.
func TestServerWALRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/controller.wal"
	open := func() *dispatch.FileWAL {
		w, err := dispatch.OpenFileWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	cfg := DefaultServerConfig()
	cfg.SA = core.SAConfig{
		TotalIterNum: 3, CoolingRate: 0.5,
		InitialTemp: 30, FinalTemp: 10, Eta: 0.8, Guided: true,
	}
	w1 := open()
	cfg.WAL = w1
	s1, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var dispatched dcqcn.Params
	var epoch uint64
	for seq := uint64(1); seq <= 10; seq++ {
		if err := c.SendReport(elephantReport(1, seq)); err != nil {
			t.Fatal(err)
		}
		tick, err := c.Tick(seq, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if tick.Changed {
			dispatched, epoch = tick.Params, tick.Epoch
		}
	}
	if epoch == 0 {
		t.Fatal("no dispatch before the crash")
	}
	c.Close()
	s1.Close()
	w1.Close()

	w2 := open()
	defer w2.Close()
	cfg.WAL = w2
	s2, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != epoch {
		t.Errorf("restarted epoch %d, want %d", s2.Epoch(), epoch)
	}
	if s2.Current() != dispatched {
		t.Error("restarted controller lost the committed vector")
	}

	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), `"kind":"commit"`) {
		t.Errorf("wal missing commit records (err=%v)", err)
	}
}
