package ctrlrpc

import (
	"testing"
	"time"
)

func TestReconnClientSurvivesControllerRestart(t *testing.T) {
	cfg := DefaultServerConfig()
	s1, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()

	c, err := DialReconnecting(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.BaseDelay = 5 * time.Millisecond
	c.MaxDelay = 20 * time.Millisecond
	c.MaxRetries = 25
	c.SeedBackoff(1)

	if err := c.SendReport(elephantReport(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tick(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Crash the controller, then bring a new one up on the same address.
	s1.Close()
	s2, err := Serve(addr, cfg)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer s2.Close()

	// The next calls must go through via redial.
	if err := c.SendReport(elephantReport(1, 2)); err != nil {
		t.Fatalf("report after restart: %v", err)
	}
	tick, err := c.Tick(2, time.Millisecond)
	if err != nil {
		t.Fatalf("tick after restart: %v", err)
	}
	if err := tick.Params.Validate(); err != nil {
		t.Errorf("params after restart invalid: %v", err)
	}
	if c.Reconnects == 0 {
		t.Error("Reconnects counter never incremented")
	}
	if st := s2.Stats(); st.Reports == 0 {
		t.Error("restarted controller saw no reports")
	}
}

func TestReconnClientGivesUpEventually(t *testing.T) {
	s, err := Serve("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c, err := DialReconnecting(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 2
	c.BaseDelay = 5 * time.Millisecond
	c.SeedBackoff(1)
	s.Close() // nothing will listen again
	if err := c.SendReport(elephantReport(1, 1)); err == nil {
		t.Error("report to a dead controller succeeded")
	}
}

func TestReconnClientAggregatesBytes(t *testing.T) {
	s, err := Serve("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialReconnecting(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendReport(elephantReport(1, 1)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if c.BytesOut == 0 || c.BytesIn == 0 {
		t.Errorf("byte aggregation lost: in=%d out=%d", c.BytesIn, c.BytesOut)
	}
}
