package ctrlrpc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/splitmix"
	"repro/internal/telemetry"
)

// Backoff defaults: redial attempts are spaced BaseDelay, 2×, 4×, …
// capped at MaxDelay, each multiplied by a jitter factor in [0.5, 1.0).
const (
	DefaultMaxRetries = 5
	DefaultBaseDelay  = 20 * time.Millisecond
	DefaultMaxDelay   = 500 * time.Millisecond
)

// ReconnClient wraps Client with automatic redial: controller restarts
// (upgrades, crashes) must not take the monitoring agents down with
// them. A failed call is retried once per fresh connection, up to
// MaxRetries dials spaced by capped exponential backoff with jitter —
// a fixed retry delay synchronizes every agent's redial into a thundering
// herd against a restarting controller; jittered backoff spreads them.
//
// Retrying is safe by protocol design: reports are idempotent
// accumulation (a lost report degrades one interval's FSD), and a tick
// that reaches a freshly restarted controller simply aggregates whatever
// reports arrived since.
type ReconnClient struct {
	addr string
	c    *Client

	// MaxRetries bounds dial attempts per call (0 means
	// DefaultMaxRetries). BaseDelay seeds the exponential backoff and
	// MaxDelay caps it (0 means the defaults).
	MaxRetries int
	BaseDelay  time.Duration
	MaxDelay   time.Duration

	// Timeout is copied onto every dialed Client: per-frame I/O
	// deadlines so a stalled controller turns into a retriable error
	// instead of a hang. 0 disables deadlines.
	Timeout time.Duration

	// Dial overrides how connections are established (fault injectors
	// wrap the raw conn here); nil means the package Dial.
	Dial func(addr string) (*Client, error)

	// Reconnects counts successful redials; BytesIn/BytesOut aggregate
	// across connections.
	Reconnects        int
	BytesIn, BytesOut int64

	// TM, when non-nil, mirrors retry/reconnect activity (and, via the
	// wrapped Client, frame and byte flow) into the telemetry registry.
	TM *telemetry.RPCMetrics

	rngMu sync.Mutex
	rng   *rand.Rand
}

// DialReconnecting connects to addr, verifying the controller is
// reachable once.
func DialReconnecting(addr string) (*ReconnClient, error) {
	return DialReconnectingWith(addr, 0, 0, 0, nil)
}

// DialReconnectingWith connects with explicit retry/backoff settings and
// an optional dial hook (nil means the package Dial); zero settings fall
// back to the defaults.
func DialReconnectingWith(addr string, maxRetries int, base, max time.Duration, dial func(string) (*Client, error)) (*ReconnClient, error) {
	r := &ReconnClient{addr: addr, MaxRetries: maxRetries, BaseDelay: base, MaxDelay: max, Dial: dial}
	if err := r.redial(); err != nil {
		return nil, err
	}
	return r, nil
}

// SeedBackoff fixes the jitter RNG, making the backoff sequence
// reproducible. Unseeded clients get a per-client stream split off the
// address hash so distinct agents spread out by default.
func (r *ReconnClient) SeedBackoff(seed int64) {
	r.rngMu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.rngMu.Unlock()
}

// reconnSeq distinguishes unseeded clients dialing the same address. The
// address hash alone would hand every agent of one controller the same
// jitter stream — their redials would land in lockstep, resurrecting the
// thundering herd the jitter exists to break.
var reconnSeq atomic.Uint64

// fallbackSeed derives the jitter seed for a client that never called
// SeedBackoff: the address hash mixed with a process-wide counter, put
// through one SplitMix64 step so consecutive clients don't start their
// backoff streams near each other.
func fallbackSeed(addr string) int64 {
	var h uint64
	for _, b := range []byte(addr) {
		h = h*131 + uint64(b)
	}
	return int64(splitmix.Next(h + reconnSeq.Add(1)))
}

// backoffDelay returns the pause before dial attempt k (k ≥ 1):
// min(BaseDelay << (k-1), MaxDelay) scaled by jitter in [0.5, 1.0).
func (r *ReconnClient) backoffDelay(k int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := r.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	d := base
	for i := 1; i < k && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	r.rngMu.Lock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(fallbackSeed(r.addr)))
	}
	jitter := 0.5 + 0.5*r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

func (r *ReconnClient) maxRetries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return DefaultMaxRetries
}

func (r *ReconnClient) dial() (*Client, error) {
	if r.Dial != nil {
		return r.Dial(r.addr)
	}
	return Dial(r.addr)
}

func (r *ReconnClient) redial() error {
	if r.c != nil {
		r.BytesIn += r.c.BytesIn
		r.BytesOut += r.c.BytesOut
		r.c.Close()
		r.c = nil
	}
	var lastErr error
	for attempt := 0; attempt < r.maxRetries(); attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoffDelay(attempt))
		}
		if r.TM != nil {
			r.TM.Retries.Inc()
		}
		c, err := r.dial()
		if err == nil {
			c.TM = r.TM
			c.Timeout = r.Timeout
			r.c = c
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("ctrlrpc: redial %s: %w", r.addr, lastErr)
}

// Close tears down the current connection.
func (r *ReconnClient) Close() error {
	if r.c == nil {
		return nil
	}
	r.BytesIn += r.c.BytesIn
	r.BytesOut += r.c.BytesOut
	err := r.c.Close()
	r.c = nil
	return err
}

// SendReport uploads a report, redialing once on failure.
func (r *ReconnClient) SendReport(rep Report) error {
	if r.c == nil {
		if err := r.redial(); err != nil {
			return err
		}
	}
	r.c.TM = r.TM // TM may have been set after the initial dial
	if err := r.c.SendReport(rep); err == nil {
		return nil
	}
	if err := r.redial(); err != nil {
		return err
	}
	r.Reconnects++
	if r.TM != nil {
		r.TM.Reconnects.Inc()
	}
	return r.c.SendReport(rep)
}

// Tick closes an interval, redialing once on failure.
func (r *ReconnClient) Tick(seq uint64, interval time.Duration) (TickResult, error) {
	if r.c == nil {
		if err := r.redial(); err != nil {
			return TickResult{}, err
		}
	}
	r.c.TM = r.TM // TM may have been set after the initial dial
	r.c.Timeout = r.Timeout
	res, err := r.c.Tick(seq, interval)
	if err == nil {
		return res, nil
	}
	if err := r.redial(); err != nil {
		return TickResult{}, err
	}
	r.Reconnects++
	if r.TM != nil {
		r.TM.Reconnects.Inc()
	}
	return r.c.Tick(seq, interval)
}

// SendApplyAck reports an applied epoch, redialing once on failure.
func (r *ReconnClient) SendApplyAck(a AckMsg) error {
	if r.c == nil {
		if err := r.redial(); err != nil {
			return err
		}
	}
	r.c.TM = r.TM // TM may have been set after the initial dial
	r.c.Timeout = r.Timeout
	if err := r.c.SendApplyAck(a); err == nil {
		return nil
	}
	if err := r.redial(); err != nil {
		return err
	}
	r.Reconnects++
	if r.TM != nil {
		r.TM.Reconnects.Inc()
	}
	return r.c.SendApplyAck(a)
}
