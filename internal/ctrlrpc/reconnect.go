package ctrlrpc

import (
	"fmt"
	"time"

	"repro/internal/dcqcn"
)

// ReconnClient wraps Client with automatic redial: controller restarts
// (upgrades, crashes) must not take the monitoring agents down with
// them. A failed call is retried once per fresh connection, up to
// MaxRetries dials with RetryDelay between attempts.
//
// Retrying is safe by protocol design: reports are idempotent
// accumulation (a lost report degrades one interval's FSD), and a tick
// that reaches a freshly restarted controller simply aggregates whatever
// reports arrived since.
type ReconnClient struct {
	addr string
	c    *Client

	// MaxRetries bounds dial attempts per call (default 5); RetryDelay
	// spaces them (default 100 ms).
	MaxRetries int
	RetryDelay time.Duration

	// Reconnects counts successful redials; BytesIn/BytesOut aggregate
	// across connections.
	Reconnects        int
	BytesIn, BytesOut int64
}

// DialReconnecting connects to addr, verifying the controller is
// reachable once.
func DialReconnecting(addr string) (*ReconnClient, error) {
	r := &ReconnClient{addr: addr, MaxRetries: 5, RetryDelay: 100 * time.Millisecond}
	if err := r.redial(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *ReconnClient) redial() error {
	if r.c != nil {
		r.BytesIn += r.c.BytesIn
		r.BytesOut += r.c.BytesOut
		r.c.Close()
		r.c = nil
	}
	var lastErr error
	for attempt := 0; attempt < r.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(r.RetryDelay)
		}
		c, err := Dial(r.addr)
		if err == nil {
			r.c = c
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("ctrlrpc: redial %s: %w", r.addr, lastErr)
}

// Close tears down the current connection.
func (r *ReconnClient) Close() error {
	if r.c == nil {
		return nil
	}
	r.BytesIn += r.c.BytesIn
	r.BytesOut += r.c.BytesOut
	err := r.c.Close()
	r.c = nil
	return err
}

// SendReport uploads a report, redialing once on failure.
func (r *ReconnClient) SendReport(rep Report) error {
	if r.c == nil {
		if err := r.redial(); err != nil {
			return err
		}
	}
	if err := r.c.SendReport(rep); err == nil {
		return nil
	}
	if err := r.redial(); err != nil {
		return err
	}
	r.Reconnects++
	return r.c.SendReport(rep)
}

// Tick closes an interval, redialing once on failure.
func (r *ReconnClient) Tick(seq uint64, interval time.Duration) (dcqcn.Params, bool, bool, error) {
	if r.c == nil {
		if err := r.redial(); err != nil {
			return dcqcn.Params{}, false, false, err
		}
	}
	p, changed, trig, err := r.c.Tick(seq, interval)
	if err == nil {
		return p, changed, trig, nil
	}
	if err := r.redial(); err != nil {
		return dcqcn.Params{}, false, false, err
	}
	r.Reconnects++
	return r.c.Tick(seq, interval)
}
