package ctrlrpc

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic and never allocate beyond MaxFrame.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame and near-miss corruptions.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	r := Report{AgentID: 1, Seq: 2}
	if _, err := WriteFrame(bw, TypeReport, &r); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, TypeAck})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, TypeTick})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 6 {
		corrupt[5] ^= 0xFF
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("payload %d exceeds MaxFrame", len(payload))
		}
		if n != len(payload)+5 {
			t.Fatalf("byte accounting wrong: n=%d payload=%d", n, len(payload))
		}
		// Decoding into the matching struct must not panic either.
		switch typ {
		case TypeReport:
			var r Report
			_ = Decode(payload, &r)
		case TypeTick:
			var tk TickMsg
			_ = Decode(payload, &tk)
		case TypeParams:
			var p ParamsMsg
			_ = Decode(payload, &p)
		}
	})
}

// FuzzDecode hammers the payload decoder directly (below the framing
// layer) with arbitrary bytes against every message type: it must never
// panic, and a payload that decodes as a Report must re-encode stably
// (encode→decode→encode is a fixed point).
func FuzzDecode(f *testing.F) {
	seed := func(typ byte, msg any) {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if _, err := WriteFrame(bw, typ, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[5:]) // payload only, header stripped
	}
	seed(TypeReport, &Report{AgentID: 1, Seq: 7, Flows: 3})
	seed(TypeTick, &TickMsg{Seq: 9, IntervalNanos: 1e6})
	seed(TypeParams, &ParamsMsg{Changed: true, Params: ToWire(FromWire(WireParams{}))})
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, payload []byte) {
		var tk TickMsg
		_ = Decode(payload, &tk)
		var pm ParamsMsg
		_ = Decode(payload, &pm)
		var r Report
		if err := Decode(payload, &r); err != nil {
			return
		}
		// Fixed-point check, NaN-safe: compare re-encodings, not structs.
		encode := func(msg *Report) []byte {
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if _, err := WriteFrame(bw, TypeReport, msg); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			return buf.Bytes()
		}
		first := encode(&r)
		var r2 Report
		if err := Decode(first[5:], &r2); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(first, encode(&r2)) {
			t.Fatal("encode→decode→encode not a fixed point")
		}
	})
}

// FuzzWireParamsRoundTrip checks that any finite parameter vector
// survives the wire encoding bit-exactly.
func FuzzWireParamsRoundTrip(f *testing.F) {
	f.Add(5e6, 50e6, 0.00390625, 0.2, int64(400<<10), int64(1600<<10), int64(300000), true)
	f.Fuzz(func(t *testing.T, ai, hai, g, pmax float64, kmin, kmax, timeReset int64, clamp bool) {
		p := FromWire(WireParams{
			AIRateBps: ai, HAIRateBps: hai, G: g, PMax: pmax,
			KminBytes: kmin, KmaxBytes: kmax, RPGTimeResetNs: timeReset,
			ClampTgtRate: clamp,
		})
		got := FromWire(ToWire(p))
		if got != p {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
		}
	})
}
