// Package ctrlrpc is the real control plane of the Paraleon prototype:
// switch/RNIC agents upload per-interval metrics to the centralized
// controller and receive DCQCN parameter updates back, over TCP with a
// compact length-prefixed binary framing (the paper uses gRPC over TCP;
// a hand-rolled frame keeps the reproduction dependency-free and makes
// the Table IV byte accounting exact).
//
// Framing: uint32 little-endian payload length, one type byte, then the
// fixed-layout payload encoded with encoding/binary. Payloads are capped
// at MaxFrame to bound memory against misbehaving peers.
package ctrlrpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/monitor"
)

// MaxFrame bounds a frame payload.
const MaxFrame = 64 << 10

// Message types.
const (
	// TypeReport carries one agent's interval metrics (agent → controller).
	TypeReport byte = 1
	// TypeAck confirms a report (controller → agent).
	TypeAck byte = 2
	// TypeTick closes an interval and asks for parameters (driver →
	// controller).
	TypeTick byte = 3
	// TypeParams answers a tick (controller → driver).
	TypeParams byte = 4
	// TypeApplyAck reports that an agent applied a dispatched epoch
	// (agent → controller); answered with TypeAck.
	TypeApplyAck byte = 5
)

// Report is one agent's contribution for one monitor interval: its local
// flow-size distribution plus raw runtime-metric sums the controller
// aggregates into Equation (1)'s inputs.
type Report struct {
	AgentID uint32
	Seq     uint64

	// Local FSD (mirrors monitor.Report).
	Hist           [monitor.NumBuckets]float64
	ElephantBytes  float64
	MiceBytes      float64
	ElephantFlowsW float64
	MiceFlowsW     float64
	Flows          int32

	// Runtime metric contributions for this agent's scope.
	UtilSum      float64
	ActiveLinks  int32
	RTTNormSum   float64
	RTTCount     int64
	PauseFracSum float64
	Devices      int32
}

// MonitorReport converts the wire FSD fields back to a monitor.Report.
func (r *Report) MonitorReport() monitor.Report {
	var m monitor.Report
	m.Hist = r.Hist
	m.ElephantBytes = r.ElephantBytes
	m.MiceBytes = r.MiceBytes
	m.ElephantFlowsW = r.ElephantFlowsW
	m.MiceFlowsW = r.MiceFlowsW
	m.Flows = int(r.Flows)
	return m
}

// TickMsg closes interval Seq; IntervalNanos is λ_MI for rate math.
type TickMsg struct {
	Seq           uint64
	IntervalNanos int64
}

// ParamsMsg answers a tick with the setting to dispatch. Epoch is the
// monotonically increasing number of the current vector: agents ACK
// (epoch, vector-hash) after applying, and an agent that sees an epoch
// at or below its own treats the frame as a duplicate — retries and
// reordered deliveries are idempotent by construction.
type ParamsMsg struct {
	Changed   bool
	Triggered bool
	Epoch     uint64
	Params    WireParams
}

// AckMsg is an agent's apply acknowledgement: the epoch it applied and
// the hash of the vector it is now running (dispatch.VectorHash).
// Applied is false when the frame was a duplicate or stale and the
// agent kept what it had — the ACK then names that retained state.
type AckMsg struct {
	AgentID    uint32
	Epoch      uint64
	VectorHash uint64
	Applied    bool
}

// WireParams is dcqcn.Params with fixed-width fields for binary encoding.
type WireParams struct {
	AIRateBps               float64
	HAIRateBps              float64
	RPGTimeResetNs          int64
	RPGByteReset            int64
	RPGThreshold            int64
	RateReduceMonitorNs     int64
	MinRateBps              float64
	ClampTgtRate            bool
	G                       float64
	AlphaUpdateIntervalNs   int64
	InitialAlpha            float64
	MinTimeBetweenCNPsNanos int64
	KminBytes               int64
	KmaxBytes               int64
	PMax                    float64
}

// ToWire converts engine-typed params to the wire layout.
func ToWire(p dcqcn.Params) WireParams {
	return WireParams{
		AIRateBps:               p.AIRateBps,
		HAIRateBps:              p.HAIRateBps,
		RPGTimeResetNs:          int64(p.RPGTimeReset),
		RPGByteReset:            p.RPGByteReset,
		RPGThreshold:            int64(p.RPGThreshold),
		RateReduceMonitorNs:     int64(p.RateReduceMonitorPeriod),
		MinRateBps:              p.MinRateBps,
		ClampTgtRate:            p.ClampTgtRate,
		G:                       p.G,
		AlphaUpdateIntervalNs:   int64(p.AlphaUpdateInterval),
		InitialAlpha:            p.InitialAlpha,
		MinTimeBetweenCNPsNanos: int64(p.MinTimeBetweenCNPs),
		KminBytes:               p.KminBytes,
		KmaxBytes:               p.KmaxBytes,
		PMax:                    p.PMax,
	}
}

// FromWire converts back to engine-typed params.
func FromWire(w WireParams) dcqcn.Params {
	return dcqcn.Params{
		AIRateBps:               w.AIRateBps,
		HAIRateBps:              w.HAIRateBps,
		RPGTimeReset:            eventsim.Time(w.RPGTimeResetNs),
		RPGByteReset:            w.RPGByteReset,
		RPGThreshold:            int(w.RPGThreshold),
		RateReduceMonitorPeriod: eventsim.Time(w.RateReduceMonitorNs),
		MinRateBps:              w.MinRateBps,
		ClampTgtRate:            w.ClampTgtRate,
		G:                       w.G,
		AlphaUpdateInterval:     eventsim.Time(w.AlphaUpdateIntervalNs),
		InitialAlpha:            w.InitialAlpha,
		MinTimeBetweenCNPs:      eventsim.Time(w.MinTimeBetweenCNPsNanos),
		KminBytes:               w.KminBytes,
		KmaxBytes:               w.KmaxBytes,
		PMax:                    w.PMax,
	}
}

// WriteFrame encodes msg (a fixed-layout struct, or nil for bodyless
// types) and writes one frame. It returns the bytes written.
func WriteFrame(w *bufio.Writer, typ byte, msg any) (int, error) {
	var body bytes.Buffer
	if msg != nil {
		if err := binary.Write(&body, binary.LittleEndian, msg); err != nil {
			return 0, fmt.Errorf("ctrlrpc: encode type %d: %w", typ, err)
		}
	}
	if body.Len() > MaxFrame {
		return 0, fmt.Errorf("ctrlrpc: frame of %d bytes exceeds max %d", body.Len(), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(body.Len()))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return 0, err
	}
	return len(hdr) + body.Len(), w.Flush()
}

// ReadFrame reads one frame and returns its type and raw payload. The
// returned byte count includes the header.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, n int, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size > MaxFrame {
		return 0, nil, 0, fmt.Errorf("ctrlrpc: frame of %d bytes exceeds max %d", size, MaxFrame)
	}
	payload = make([]byte, size)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, err
	}
	return hdr[4], payload, len(hdr) + int(size), nil
}

// Decode unmarshals a fixed-layout payload into out.
func Decode(payload []byte, out any) error {
	return binary.Read(bytes.NewReader(payload), binary.LittleEndian, out)
}
