package ctrlrpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
	"repro/internal/tuner"
)

// ServerConfig parameterizes the centralized controller.
type ServerConfig struct {
	// Theta is the KL trigger threshold.
	Theta float64
	// Weights and SA configure the tuner.
	Weights core.Weights
	SA      core.SAConfig
	// Tuner selects the search strategy by registry name (see
	// internal/tuner); empty means "sa", preserving the historical
	// behaviour exactly. Bandit and MultiECN parameterize those
	// strategies when selected; zero values mean their defaults.
	Tuner    string
	Bandit   tuner.BanditConfig
	MultiECN tuner.MultiECNConfig
	// Base is the initial parameter setting.
	Base dcqcn.Params
	// Seed fixes the tuner's randomness.
	Seed int64
	// Logger receives connection errors; nil silences them.
	Logger *log.Logger
	// Telemetry selects the metrics registry the server instruments
	// itself against; nil means telemetry.Default().
	Telemetry *telemetry.Registry
	// ReadTimeout and WriteTimeout, when > 0, bound each frame read and
	// each response write on agent connections, so one stalled agent
	// (half-open TCP, wedged peer) cannot pin a handler goroutine
	// forever. 0 disables the deadline, matching the previous behaviour.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Guard bounds what tuner output is allowed onto the wire: Spec
	// bounds and Kmin<Kmax are always enforced; MaxRelStep/MinGap are
	// opt-in. A rejected vector keeps the current one and is counted.
	Guard dispatch.GuardConfig
	// WAL, when non-nil, journals every dispatched epoch so a restarted
	// controller resumes from the last committed vector instead of
	// re-announcing the base setting under already-used epochs.
	WAL dispatch.WAL
	// Flight, when non-nil, attaches the flight recorder: each tick the
	// server samples its aggregated health signals into the recorder's
	// series (time axis: tick index, since the wall-clock daemon has no
	// virtual clock) and records dispatches and guard rejects as events.
	// The caller owns writing the artifact out (paraleon-controller's
	// -blackbox flag does it on shutdown).
	Flight *series.Recorder
}

// DefaultServerConfig mirrors Table III.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Theta:   0.01,
		Weights: core.DefaultWeights(),
		SA:      core.DefaultSAConfig(),
		Base:    dcqcn.DefaultParams(),
		Seed:    1,
	}
}

// ServerStats is Table IV's raw material.
type ServerStats struct {
	BytesIn, BytesOut int64
	Reports           int64
	Ticks             int64
	Triggers          int64
	Dispatches        int64
	// Rejects counts tuner outputs the admission guard refused.
	Rejects int64
	// ApplyAcks counts agent apply acknowledgements.
	ApplyAcks int64
	// Processing is wall-clock time spent in KL computation and SA
	// tuning — the controller CPU overhead.
	Processing time.Duration
}

// Server is the centralized controller: it accepts agent connections,
// collects per-interval reports, aggregates the network-wide FSD, runs
// the KL trigger and the SA tuner, and answers ticks with parameters.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	pending  []Report
	prev     monitor.FSD
	hasPrev  bool
	smoother monitor.Smoother
	tuner    tuner.Tuner
	current  dcqcn.Params
	guard    *dispatch.Guard
	epoch    uint64
	// acks maps an epoch to the set of agents that acknowledged it with
	// a matching vector hash. Only the current epoch's set is kept live.
	acks  map[uint32]bool
	stats ServerStats

	wg     sync.WaitGroup
	conns  map[net.Conn]bool
	closed bool

	reg *telemetry.Registry
	tm  *telemetry.RPCMetrics
	mm  *telemetry.MonitorMetrics
	dm  *telemetry.DispatchMetrics
	ttm *telemetry.TunerMetrics

	// Flight-recorder series handles (nil unless cfg.Flight is set).
	flight                    *series.Recorder
	fOTP, fORTT, fOPFC, fUtil *series.Series
	fKL, fBest, fEpoch        *series.Series
}

// controllerStatus is the server's /debug/status section.
type controllerStatus struct {
	Params      dcqcn.Params `json:"params"`
	Ticks       int64        `json:"ticks"`
	Reports     int64        `json:"reports"`
	Triggers    int64        `json:"triggers"`
	Dispatches  int64        `json:"dispatches"`
	Rejects     int64        `json:"rejects"`
	Epoch       uint64       `json:"epoch"`
	EpochAcks   int          `json:"epoch_acks"`
	TunerActive bool         `json:"tuner_active"`
	BestUtility float64      `json:"best_utility"`
}

// Serve starts a controller on addr (e.g. "127.0.0.1:0") and returns once
// it is listening.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	tun, err := tuner.New(cfg.Tuner, tuner.Config{
		Weights:  cfg.Weights,
		Base:     cfg.Base,
		SA:       cfg.SA,
		Bandit:   cfg.Bandit,
		MultiECN: cfg.MultiECN,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, ln: ln, tuner: tun, current: cfg.Base,
		guard: dispatch.NewGuard(cfg.Guard),
		acks:  map[uint32]bool{},
		conns: map[net.Conn]bool{},
	}
	s.reg = cfg.Telemetry
	if s.reg == nil {
		s.reg = telemetry.Default()
	}
	s.tm = telemetry.NewRPCMetrics(s.reg)
	s.mm = telemetry.NewMonitorMetrics(s.reg)
	s.dm = telemetry.NewDispatchMetrics(s.reg)
	s.ttm = telemetry.NewTunerMetrics(s.reg)
	s.tuner.SetMetrics(s.ttm)
	if cfg.Flight != nil {
		s.flight = cfg.Flight
		set := s.flight.Set
		s.fOTP = set.Series("otp", "frac")
		s.fORTT = set.Series("ortt", "frac")
		s.fOPFC = set.Series("opfc", "frac")
		s.fUtil = set.Series("utility", "score")
		s.fKL = set.Series("monitor_kl", "nats")
		s.fBest = set.Series("tuner_best_utility", "score")
		s.fEpoch = set.Series("dispatch_epoch", "")
		m := s.flight.Meta()
		m.Tuner = s.tuner.Name()
		s.flight.SetMeta(m)
	}
	if cfg.WAL != nil {
		rec, err := dispatch.Recover(cfg.WAL)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("ctrlrpc: wal replay: %w", err)
		}
		s.epoch = rec.Epoch
		if rec.Committed != nil {
			s.current = *rec.Committed
		}
		s.dm.WALReplays.Inc()
		s.dm.WALReplayedRec.Add(int64(rec.Replayed))
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the controller counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Current returns the parameters the controller currently stands behind.
func (s *Server) Current() dcqcn.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Close stops the listener, closes every live connection, and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("ctrlrpc: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		typ, payload, n, err := ReadFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("ctrlrpc: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.mu.Lock()
		s.stats.BytesIn += int64(n)
		s.mu.Unlock()
		s.tm.FramesIn.Inc()
		s.tm.BytesIn.Add(int64(n))

		var out int
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		switch typ {
		case TypeReport:
			var r Report
			if err := Decode(payload, &r); err != nil {
				s.logf("ctrlrpc: bad report: %v", err)
				return
			}
			s.mu.Lock()
			s.pending = append(s.pending, r)
			s.stats.Reports++
			s.mu.Unlock()
			s.tm.Reports.Inc()
			out, err = WriteFrame(bw, TypeAck, nil)
		case TypeTick:
			var t TickMsg
			if err := Decode(payload, &t); err != nil {
				s.logf("ctrlrpc: bad tick: %v", err)
				return
			}
			resp := s.tick(t)
			out, err = WriteFrame(bw, TypeParams, &resp)
		case TypeApplyAck:
			var a AckMsg
			if err := Decode(payload, &a); err != nil {
				s.logf("ctrlrpc: bad apply-ack: %v", err)
				return
			}
			s.applyAck(a)
			out, err = WriteFrame(bw, TypeAck, nil)
		default:
			s.logf("ctrlrpc: unknown frame type %d", typ)
			return
		}
		if err != nil {
			s.logf("ctrlrpc: write to %v: %v", conn.RemoteAddr(), err)
			return
		}
		s.mu.Lock()
		s.stats.BytesOut += int64(out)
		s.mu.Unlock()
		s.tm.FramesOut.Inc()
		s.tm.BytesOut.Add(int64(out))
	}
}

// tick is the controller's per-interval brain: aggregate, trigger, tune.
func (s *Server) tick(t TickMsg) ParamsMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	defer func() { s.stats.Processing += time.Since(start) }()

	reports := s.pending
	s.pending = nil
	s.stats.Ticks++
	s.tm.Ticks.Inc()
	s.mm.Ticks.Inc()
	defer func() {
		s.reg.PublishStatus("controller", controllerStatus{
			Params:      s.current,
			Ticks:       s.stats.Ticks,
			Reports:     s.stats.Reports,
			Triggers:    s.stats.Triggers,
			Dispatches:  s.stats.Dispatches,
			Rejects:     s.stats.Rejects,
			Epoch:       s.epoch,
			EpochAcks:   len(s.acks),
			TunerActive: s.tuner.Active(),
			BestUtility: s.tuner.BestUtility(),
		})
	}()

	locals := make([]monitor.Report, 0, len(reports))
	sample := monitor.RuntimeSample{ORTT: 1, OPFC: 1}
	var utilSum, pauseSum float64
	var links, devices int32
	var rttSum float64
	var rttCount int64
	for i := range reports {
		r := &reports[i]
		locals = append(locals, r.MonitorReport())
		utilSum += r.UtilSum
		links += r.ActiveLinks
		rttSum += r.RTTNormSum
		rttCount += r.RTTCount
		pauseSum += r.PauseFracSum
		devices += r.Devices
	}
	if links > 0 {
		sample.OTP = utilSum / float64(links)
		sample.ActiveLinks = int(links)
	}
	if rttCount > 0 {
		sample.ORTT = rttSum / float64(rttCount)
		sample.RTTSamples = rttCount
	}
	if devices > 0 {
		sample.OPFC = 1 - pauseSum/float64(devices)
	}
	if s.flight != nil {
		// Deferred so the epoch/best-utility samples see this tick's
		// dispatch decision; runs under s.mu like the rest of tick.
		defer func() {
			tk := s.stats.Ticks
			s.fOTP.Append(tk, sample.OTP)
			s.fORTT.Append(tk, sample.ORTT)
			s.fOPFC.Append(tk, sample.OPFC)
			s.fUtil.Append(tk, core.Utility(sample, s.cfg.Weights))
			// BestUtility is -Inf until a session measures something,
			// and JSON cannot carry non-finite values.
			if best := s.tuner.BestUtility(); !math.IsInf(best, 0) && !math.IsNaN(best) {
				s.fBest.Append(tk, best)
			}
			s.fEpoch.Append(tk, float64(s.epoch))
		}()
	}

	raw := monitor.Aggregate(locals...)
	resp := ParamsMsg{Epoch: s.epoch, Params: ToWire(s.current)}
	if raw.TotalBytes == 0 {
		// Traffic-free interval: no distribution to compare, no feedback
		// worth feeding the search (see monitor.Controller.Tick).
		return resp
	}
	s.mm.FSDFlows.Observe(float64(raw.Flows))
	s.mm.FSDBytes.Observe(raw.TotalBytes)
	// Compare time-averaged distributions (see monitor.Smoother).
	fsd := s.smoother.Update(raw)
	s.mm.ElephantShare.Set(fsd.ElephantFlowShare)
	triggered := false
	if s.hasPrev {
		kl := monitor.TriggerDivergence(fsd, s.prev)
		s.mm.LastKL.Set(kl)
		s.mm.KL.Observe(kl)
		if s.flight != nil {
			s.fKL.Append(s.stats.Ticks, kl)
		}
		if kl > s.cfg.Theta && !s.tuner.Active() {
			s.tuner.Trigger(fsd)
			s.stats.Triggers++
			s.mm.Triggers.Inc()
			triggered = true
		}
	} else {
		// First interval with traffic: treat as a change from nothing.
		s.tuner.Trigger(fsd)
		s.stats.Triggers++
		s.mm.Triggers.Inc()
		triggered = true
	}
	s.prev = fsd
	s.hasPrev = true

	if p, ok := s.tuner.Step(sample, fsd); ok {
		if reason, spec := s.guard.Admit(&p, &s.current, eventsim.Time(time.Now().UnixNano())); reason != dispatch.RejectNone {
			// A vector the guard refuses never reaches the wire: the
			// fabric keeps running s.current under the unchanged epoch.
			s.stats.Rejects++
			s.dm.Rejects.Inc()
			s.ttm.GuardRejects.Inc()
			if s.flight != nil {
				s.flight.Event(s.stats.Ticks, "guard_reject", s.guard.Explain(reason, spec))
			}
			s.logf("ctrlrpc: dispatch rejected: %s", s.guard.Explain(reason, spec))
		} else {
			s.epoch++
			s.current = p
			s.acks = map[uint32]bool{}
			s.stats.Dispatches++
			s.tuner.Commit(p)
			s.ttm.Dispatches.Inc()
			s.dm.Epochs.Inc()
			if s.flight != nil {
				s.flight.Event(s.stats.Ticks, "dispatch", "")
			}
			resp.Changed = true
			resp.Epoch = s.epoch
			resp.Params = ToWire(p)
			if s.cfg.WAL != nil {
				rec := dispatch.Record{
					T: time.Now().UnixNano(), Kind: dispatch.KindCommit,
					Epoch: s.epoch, Params: &p, Hash: dispatch.VectorHash(&p),
				}
				if err := s.cfg.WAL.Append(rec); err != nil {
					s.logf("ctrlrpc: wal append: %v", err)
				} else {
					s.dm.WALRecords.Inc()
				}
			}
		}
	}
	resp.Triggered = triggered
	return resp
}

// applyAck records an agent's acknowledgement of the current epoch. An
// ACK for a superseded epoch, or one whose vector hash does not match
// the current vector, is counted but not credited toward the quorum —
// the agent will learn the newer vector on its next tick.
func (s *Server) applyAck(a AckMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ApplyAcks++
	s.dm.Acks.Inc()
	if a.Epoch == s.epoch && a.VectorHash == dispatch.VectorHash(&s.current) {
		s.acks[a.AgentID] = true
	}
}

// Epoch returns the epoch of the currently dispatched vector.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// EpochAcks returns how many distinct agents have acknowledged the
// current epoch with a matching vector hash.
func (s *Server) EpochAcks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.acks)
}

// String describes the server.
func (s *Server) String() string {
	return fmt.Sprintf("ctrlrpc.Server(%s)", s.Addr())
}
