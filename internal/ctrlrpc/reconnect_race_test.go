package ctrlrpc

import (
	"sync"
	"testing"
	"time"
)

// TestReconnClientsConcurrentRestart drives several reconnecting clients
// from separate goroutines through a controller kill+restart, so every
// client's redial/backoff path runs at the same time. Under -race this
// pins the jitter RNG down as a per-client stream: a shared or lazily
// initialized global stream shows up as a data race the moment two
// clients back off together.
func TestReconnClientsConcurrentRestart(t *testing.T) {
	cfg := DefaultServerConfig()
	s1, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()

	const nClients = 6
	clients := make([]*ReconnClient, nClients)
	for i := range clients {
		c, err := DialReconnecting(addr)
		if err != nil {
			t.Fatal(err)
		}
		c.BaseDelay = 2 * time.Millisecond
		c.MaxDelay = 20 * time.Millisecond
		c.MaxRetries = 50
		// Half the clients stay unseeded: the fallback-seed path must be
		// just as race-free as the explicit one.
		if i%2 == 0 {
			c.SeedBackoff(int64(i + 1))
		}
		clients[i] = c
		defer c.Close()
	}

	// Kill the controller while everyone is mid-traffic, then restart it
	// on the same address after the clients have piled into backoff.
	var wg sync.WaitGroup
	errs := make([]error, nClients)
	start := make(chan struct{})
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for seq := uint64(1); seq <= 5; seq++ {
				if err := c.SendReport(elephantReport(uint32(i), seq)); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	s1.Close()
	var s2 *Server
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		var err error
		s2, err = Serve(addr, cfg)
		restarted <- err
	}()
	close(start)
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer s2.Close()

	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d never recovered: %v", i, err)
		}
	}
	if st := s2.Stats(); st.Reports == 0 {
		t.Error("restarted controller saw no reports")
	}
}

// TestReconnFallbackSeedsDiverge checks the herd property directly: two
// unseeded clients dialing the same controller must not share a jitter
// stream. Before the split-off counter, the address-hash seed made their
// backoff sequences identical, synchronizing every agent's redial.
func TestReconnFallbackSeedsDiverge(t *testing.T) {
	s, err := Serve("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	jitterSeq := func() []time.Duration {
		c, err := DialReconnecting(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.BaseDelay = time.Millisecond
		c.MaxDelay = 256 * time.Millisecond
		seq := make([]time.Duration, 8)
		for k := range seq {
			seq[k] = c.backoffDelay(k + 1)
		}
		return seq
	}
	a, b := jitterSeq(), jitterSeq()
	same := true
	for k := range a {
		if a[k] != b[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two unseeded clients produced the identical backoff sequence %v — thundering herd is back", a)
	}

	// SeedBackoff must stay reproducible: same seed, same sequence.
	c1, err := DialReconnecting(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialReconnecting(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c1.SeedBackoff(42)
	c2.SeedBackoff(42)
	for k := 1; k <= 8; k++ {
		if d1, d2 := c1.backoffDelay(k), c2.backoffDelay(k); d1 != d2 {
			t.Fatalf("SeedBackoff(42) diverged at attempt %d: %v vs %v", k, d1, d2)
		}
	}
}
