// Package trace records simulation events as JSON Lines for offline
// analysis: flow starts and completions, parameter dispatches, monitor
// samples, and PFC activity. A production operator's first question when
// a tuner misbehaves is "what exactly did it do, when?" — this is that
// audit log.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Event kinds.
const (
	KindFlowStart    = "flow_start"
	KindFlowComplete = "flow_complete"
	KindDispatch     = "dispatch"
	KindSample       = "sample"
	KindTrigger      = "trigger"
	KindNote         = "note"
	// KindFault / KindRecover bracket injected faults and the system's
	// recovery from them (internal/chaos and the controller's
	// degradation logic emit these); KindRollback records a reversion to
	// the last-known-good parameter vector.
	KindFault    = "fault"
	KindRecover  = "recover"
	KindRollback = "rollback"
)

// Event is one recorded occurrence. Unused fields are omitted from the
// encoding.
type Event struct {
	// T is virtual time in nanoseconds.
	T    int64  `json:"t"`
	Kind string `json:"kind"`

	FlowID *uint64 `json:"flow,omitempty"`
	Src    *int    `json:"src,omitempty"`
	Dst    *int    `json:"dst,omitempty"`
	Size   *int64  `json:"size,omitempty"`
	FCTNs  *int64  `json:"fct_ns,omitempty"`

	Params *dcqcn.Params `json:"params,omitempty"`

	OTP  *float64 `json:"otp,omitempty"`
	ORTT *float64 `json:"ortt,omitempty"`
	OPFC *float64 `json:"opfc,omitempty"`

	ElephantShare *float64 `json:"elephant_share,omitempty"`

	// Fault names what went wrong or recovered (e.g. "link_down",
	// "agent_crash", "quorum_lost"); Target names the affected entity
	// (e.g. "link 2-6", "agent 1").
	Fault  string `json:"fault,omitempty"`
	Target string `json:"target,omitempty"`

	Note string `json:"note,omitempty"`
}

// Recorder streams events to a writer as JSON Lines. It is not safe for
// concurrent use; the simulation is single-threaded.
type Recorder struct {
	eng *eventsim.Engine
	bw  *bufio.Writer
	enc *json.Encoder

	// Events counts records written; Err holds the first write error
	// (subsequent writes are dropped).
	Events int
	Err    error
}

// NewRecorder builds a recorder stamping events with eng's clock.
func NewRecorder(eng *eventsim.Engine, w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{eng: eng, bw: bw, enc: json.NewEncoder(bw)}
}

// AttachNetwork subscribes to n's flow lifecycle.
func (r *Recorder) AttachNetwork(n *sim.Network) {
	n.AddFlowStartHook(func(id uint64, src, dst topology.NodeID, size int64) {
		s, d := int(src), int(dst)
		r.emit(Event{Kind: KindFlowStart, FlowID: &id, Src: &s, Dst: &d, Size: &size})
	})
	n.AddFlowCompleteHook(func(rec sim.FlowRecord) {
		s, d := int(rec.Src), int(rec.Dst)
		size := rec.Size
		fct := int64(rec.FCT())
		id := rec.ID
		r.emit(Event{Kind: KindFlowComplete, FlowID: &id, Src: &s, Dst: &d, Size: &size, FCTNs: &fct})
	})
}

// Dispatch records a parameter update pushed to the fabric.
func (r *Recorder) Dispatch(p dcqcn.Params) {
	r.emit(Event{Kind: KindDispatch, Params: &p})
}

// Sample records one monitor interval's runtime metrics.
func (r *Recorder) Sample(s monitor.RuntimeSample) {
	otp, ortt, opfc := s.OTP, s.ORTT, s.OPFC
	r.emit(Event{Kind: KindSample, OTP: &otp, ORTT: &ortt, OPFC: &opfc})
}

// Trigger records a tuning trigger with the firing distribution.
func (r *Recorder) Trigger(fsd monitor.FSD) {
	share := fsd.ElephantFlowShare
	r.emit(Event{Kind: KindTrigger, ElephantShare: &share})
}

// Fault records an injected or detected fault against a target; it
// implements half of chaos.Sink.
func (r *Recorder) Fault(fault, target string) {
	r.emit(Event{Kind: KindFault, Fault: fault, Target: target})
}

// Recover records recovery from a fault; the other half of chaos.Sink.
func (r *Recorder) Recover(fault, target string) {
	r.emit(Event{Kind: KindRecover, Fault: fault, Target: target})
}

// Rollback records a reversion to the last-known-good parameter vector.
func (r *Recorder) Rollback(p dcqcn.Params) {
	r.emit(Event{Kind: KindRollback, Params: &p})
}

// Note records a free-form annotation.
func (r *Recorder) Note(format string, args ...any) {
	r.emit(Event{Kind: KindNote, Note: fmt.Sprintf(format, args...)})
}

func (r *Recorder) emit(e Event) {
	if r.Err != nil {
		return
	}
	e.T = int64(r.eng.Now())
	if err := r.enc.Encode(&e); err != nil {
		r.Err = err
		return
	}
	r.Events++
}

// Flush drains buffered output; call before reading the destination.
func (r *Recorder) Flush() error {
	if r.Err != nil {
		return r.Err
	}
	return r.bw.Flush()
}

// Read parses a JSON Lines event stream back into memory.
func Read(rd io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(rd)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: record %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Filter returns the events of one kind.
func Filter(events []Event, kind string) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
