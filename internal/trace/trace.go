// Package trace records simulation events as JSON Lines for offline
// analysis: flow starts and completions, parameter dispatches, monitor
// samples, and PFC activity. A production operator's first question when
// a tuner misbehaves is "what exactly did it do, when?" — this is that
// audit log.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Event kinds.
const (
	KindFlowStart    = "flow_start"
	KindFlowComplete = "flow_complete"
	KindDispatch     = "dispatch"
	KindSample       = "sample"
	KindTrigger      = "trigger"
	KindNote         = "note"
	// KindFault / KindRecover bracket injected faults and the system's
	// recovery from them (internal/chaos and the controller's
	// degradation logic emit these); KindRollback records a reversion to
	// the last-known-good parameter vector.
	KindFault    = "fault"
	KindRecover  = "recover"
	KindRollback = "rollback"
	// KindSpanStart / KindSpanEnd bracket a control-loop span (e.g. one
	// SA tuning session) in virtual time. Events produced inside the
	// span carry its SpanID, linking a trigger through its search to the
	// resulting dispatches.
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
)

// Event is one recorded occurrence. Unused fields are omitted from the
// encoding.
type Event struct {
	// T is virtual time in nanoseconds.
	T    int64  `json:"t"`
	Kind string `json:"kind"`

	FlowID *uint64 `json:"flow,omitempty"`
	Src    *int    `json:"src,omitempty"`
	Dst    *int    `json:"dst,omitempty"`
	Size   *int64  `json:"size,omitempty"`
	FCTNs  *int64  `json:"fct_ns,omitempty"`

	Params *dcqcn.Params `json:"params,omitempty"`

	OTP  *float64 `json:"otp,omitempty"`
	ORTT *float64 `json:"ortt,omitempty"`
	OPFC *float64 `json:"opfc,omitempty"`

	ElephantShare *float64 `json:"elephant_share,omitempty"`

	// Fault names what went wrong or recovered (e.g. "link_down",
	// "agent_crash", "quorum_lost"); Target names the affected entity
	// (e.g. "link 2-6", "agent 1").
	Fault  string `json:"fault,omitempty"`
	Target string `json:"target,omitempty"`

	// Span names the span a span_start opens (e.g. "sa_session");
	// SpanID identifies it. On non-span events a nonzero SpanID links
	// the event into that span; Parent links nested spans.
	Span   string `json:"span,omitempty"`
	SpanID uint64 `json:"span_id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`

	Note string `json:"note,omitempty"`
}

// Recorder streams events to a writer as JSON Lines. It is not safe for
// concurrent use; the simulation is single-threaded.
type Recorder struct {
	eng *eventsim.Engine
	bw  *bufio.Writer
	enc *json.Encoder

	// Events counts records written; Err holds the first write error
	// (subsequent writes are dropped).
	Events int
	Err    error

	// spanSeq hands out span IDs; purely sequential, so a fixed event
	// order yields a byte-identical trace.
	spanSeq uint64
}

// NewRecorder builds a recorder stamping events with eng's clock.
func NewRecorder(eng *eventsim.Engine, w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{eng: eng, bw: bw, enc: json.NewEncoder(bw)}
}

// AttachNetwork subscribes to n's flow lifecycle.
func (r *Recorder) AttachNetwork(n *sim.Network) {
	n.AddFlowStartHook(func(id uint64, src, dst topology.NodeID, size int64) {
		s, d := int(src), int(dst)
		r.emit(Event{Kind: KindFlowStart, FlowID: &id, Src: &s, Dst: &d, Size: &size})
	})
	n.AddFlowCompleteHook(func(rec sim.FlowRecord) {
		s, d := int(rec.Src), int(rec.Dst)
		size := rec.Size
		fct := int64(rec.FCT())
		id := rec.ID
		r.emit(Event{Kind: KindFlowComplete, FlowID: &id, Src: &s, Dst: &d, Size: &size, FCTNs: &fct})
	})
}

// Dispatch records a parameter update pushed to the fabric.
func (r *Recorder) Dispatch(p dcqcn.Params) {
	r.emit(Event{Kind: KindDispatch, Params: &p})
}

// Sample records one monitor interval's runtime metrics.
func (r *Recorder) Sample(s monitor.RuntimeSample) {
	otp, ortt, opfc := s.OTP, s.ORTT, s.OPFC
	r.emit(Event{Kind: KindSample, OTP: &otp, ORTT: &ortt, OPFC: &opfc})
}

// Trigger records a tuning trigger with the firing distribution.
func (r *Recorder) Trigger(fsd monitor.FSD) {
	share := fsd.ElephantFlowShare
	r.emit(Event{Kind: KindTrigger, ElephantShare: &share})
}

// Fault records an injected or detected fault against a target; it
// implements half of chaos.Sink.
func (r *Recorder) Fault(fault, target string) {
	r.emit(Event{Kind: KindFault, Fault: fault, Target: target})
}

// Recover records recovery from a fault; the other half of chaos.Sink.
func (r *Recorder) Recover(fault, target string) {
	r.emit(Event{Kind: KindRecover, Fault: fault, Target: target})
}

// Rollback records a reversion to the last-known-good parameter vector.
func (r *Recorder) Rollback(p dcqcn.Params) {
	r.emit(Event{Kind: KindRollback, Params: &p})
}

// SpanStart opens a named span (parent 0 for a root span) and returns
// its ID. The span is measured in virtual time: its extent is the T
// distance between the span_start and span_end events.
func (r *Recorder) SpanStart(name string, parent uint64) uint64 {
	r.spanSeq++
	id := r.spanSeq
	r.emit(Event{Kind: KindSpanStart, Span: name, SpanID: id, Parent: parent})
	return id
}

// SpanEnd closes a span opened with SpanStart.
func (r *Recorder) SpanEnd(id uint64) {
	r.emit(Event{Kind: KindSpanEnd, SpanID: id})
}

// TriggerIn records a tuning trigger linked into a span.
func (r *Recorder) TriggerIn(span uint64, fsd monitor.FSD) {
	share := fsd.ElephantFlowShare
	r.emit(Event{Kind: KindTrigger, SpanID: span, ElephantShare: &share})
}

// DispatchIn records a parameter dispatch linked into a span.
func (r *Recorder) DispatchIn(span uint64, p dcqcn.Params) {
	r.emit(Event{Kind: KindDispatch, SpanID: span, Params: &p})
}

// RollbackIn records a last-known-good reversion linked into a span
// (span 0 when no session was active).
func (r *Recorder) RollbackIn(span uint64, p dcqcn.Params) {
	r.emit(Event{Kind: KindRollback, SpanID: span, Params: &p})
}

// Note records a free-form annotation.
func (r *Recorder) Note(format string, args ...any) {
	r.emit(Event{Kind: KindNote, Note: fmt.Sprintf(format, args...)})
}

func (r *Recorder) emit(e Event) {
	if r.Err != nil {
		return
	}
	e.T = int64(r.eng.Now())
	if err := r.enc.Encode(&e); err != nil {
		r.Err = err
		return
	}
	r.Events++
}

// Flush drains buffered output; call before reading the destination.
func (r *Recorder) Flush() error {
	if r.Err != nil {
		return r.Err
	}
	return r.bw.Flush()
}

// Read parses a JSON Lines event stream back into memory.
func Read(rd io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(rd)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: record %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Span is one reconstructed span: its extent in virtual time plus the
// events linked into it.
type Span struct {
	ID     uint64
	Name   string
	Parent uint64
	// StartT / EndT are the span's virtual-time extent; EndT is -1 for a
	// span never closed (e.g. a session still running at trace end).
	StartT, EndT int64
	// Events are the non-span events carrying this span's ID, in order.
	Events []Event
}

// Spans reconstructs spans from an event stream, in start order.
func Spans(events []Event) []Span {
	byID := map[uint64]*Span{}
	var order []uint64
	for _, e := range events {
		switch e.Kind {
		case KindSpanStart:
			byID[e.SpanID] = &Span{ID: e.SpanID, Name: e.Span, Parent: e.Parent, StartT: e.T, EndT: -1}
			order = append(order, e.SpanID)
		case KindSpanEnd:
			if s, ok := byID[e.SpanID]; ok {
				s.EndT = e.T
			}
		default:
			if s, ok := byID[e.SpanID]; ok && e.SpanID != 0 {
				s.Events = append(s.Events, e)
			}
		}
	}
	out := make([]Span, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// Filter returns the events of one kind.
func Filter(events []Event, kind string) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
