package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestRecorderFlowLifecycle(t *testing.T) {
	n, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := NewRecorder(n.Eng, &buf)
	r.AttachNetwork(n)
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[1], 100<<10)
	n.StartFlow(hosts[2], hosts[3], 50<<10)
	n.RunUntilIdle(eventsim.Second)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	starts := Filter(events, KindFlowStart)
	completes := Filter(events, KindFlowComplete)
	if len(starts) != 2 || len(completes) != 2 {
		t.Fatalf("starts=%d completes=%d, want 2/2", len(starts), len(completes))
	}
	if *starts[0].Size != 100<<10 || *starts[0].Src != int(hosts[0]) {
		t.Errorf("first start event wrong: %+v", starts[0])
	}
	for _, c := range completes {
		if c.FCTNs == nil || *c.FCTNs <= 0 {
			t.Errorf("completion without FCT: %+v", c)
		}
		if c.T <= 0 {
			t.Errorf("unstamped event: %+v", c)
		}
	}
	// Timestamps nondecreasing.
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("event %d out of order", i)
		}
	}
}

func TestRecorderOtherKinds(t *testing.T) {
	eng := eventsim.NewEngine(1)
	var buf bytes.Buffer
	r := NewRecorder(eng, &buf)
	p := dcqcn.ExpertParams()
	r.Dispatch(p)
	r.Sample(monitor.RuntimeSample{OTP: 0.5, ORTT: 0.9, OPFC: 1})
	r.Trigger(monitor.FSD{ElephantFlowShare: 0.7})
	r.Note("burst started at %d", 42)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 || r.Events != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	if events[0].Params == nil || events[0].Params.KminBytes != p.KminBytes {
		t.Error("dispatch params lost")
	}
	if *events[1].OTP != 0.5 || *events[1].ORTT != 0.9 {
		t.Error("sample fields lost")
	}
	if *events[2].ElephantShare != 0.7 {
		t.Error("trigger share lost")
	}
	if events[3].Note != "burst started at 42" {
		t.Errorf("note %q", events[3].Note)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	return 0, &writeErr{}
}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestRecorderStopsAfterWriteError(t *testing.T) {
	eng := eventsim.NewEngine(1)
	r := NewRecorder(eng, &failingWriter{})
	// Overflow the bufio buffer to force the underlying error.
	for i := 0; i < 5000; i++ {
		r.Note("padding padding padding padding padding")
	}
	if r.Err == nil {
		t.Fatal("write error never surfaced")
	}
	if err := r.Flush(); err == nil {
		t.Error("Flush did not report the error")
	}
}

func TestFilterEmpty(t *testing.T) {
	if got := Filter(nil, KindNote); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
}
