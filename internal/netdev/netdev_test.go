package netdev

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/topology"
)

// sink records arrivals for assertions.
type sink struct {
	pkts  []*Packet
	times []eventsim.Time
	ports []int
	eng   *eventsim.Engine
}

func (s *sink) Receive(pkt *Packet, inPort int) {
	s.pkts = append(s.pkts, pkt)
	s.ports = append(s.ports, inPort)
	if s.eng != nil {
		s.times = append(s.times, s.eng.Now())
	}
}

func TestFIFO(t *testing.T) {
	var q fifo
	if !q.empty() {
		t.Error("new fifo not empty")
	}
	for i := 0; i < 100; i++ {
		q.push(queueEntry{pkt: &Packet{WireBytes: 10, Seq: int64(i)}})
	}
	if q.bytes != 1000 {
		t.Errorf("bytes = %d, want 1000", q.bytes)
	}
	for i := 0; i < 100; i++ {
		e, ok := q.pop()
		if !ok || e.pkt.Seq != int64(i) {
			t.Fatalf("pop %d: ok=%v seq=%d", i, ok, e.pkt.Seq)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("pop on empty fifo succeeded")
	}
	if q.bytes != 0 {
		t.Errorf("bytes = %d after drain, want 0", q.bytes)
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q fifo
	next := int64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.push(queueEntry{pkt: &Packet{WireBytes: 1, Seq: int64(round*3 + i)}})
		}
		for i := 0; i < 2; i++ {
			e, ok := q.pop()
			if !ok || e.pkt.Seq != next {
				t.Fatalf("round %d: got seq %d, want %d", round, e.pkt.Seq, next)
			}
			next++
		}
	}
}

func newPort(t *testing.T, rate float64, prop eventsim.Time) (*eventsim.Engine, *EgressPort, *sink) {
	t.Helper()
	eng := eventsim.NewEngine(3)
	p := NewEgressPort(eng, rate, prop, eng.Rand())
	dst := &sink{eng: eng}
	p.SetPeer(dst, 7)
	return eng, p, dst
}

func TestPortSerializationAndPropagation(t *testing.T) {
	// 1 Gbps, 1 µs propagation: a 1250-byte packet serializes in 10 µs.
	eng, p, dst := newPort(t, 1e9, eventsim.Microsecond)
	pkt := &Packet{Kind: KindData, Class: ClassData, WireBytes: 1250}
	p.Enqueue(pkt, -1)
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	want := 11 * eventsim.Microsecond
	if dst.times[0] != want {
		t.Errorf("arrival at %v, want %v", dst.times[0], want)
	}
	if dst.ports[0] != 7 {
		t.Errorf("arrival port %d, want 7", dst.ports[0])
	}
}

func TestPortBackToBackPacing(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, 0)
	for i := 0; i < 3; i++ {
		p.Enqueue(&Packet{Class: ClassData, WireBytes: 1250, Seq: int64(i)}, -1)
	}
	eng.Run()
	if len(dst.times) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.times))
	}
	for i, want := range []eventsim.Time{10, 20, 30} {
		if dst.times[i] != want*eventsim.Microsecond {
			t.Errorf("packet %d at %v, want %vus", i, dst.times[i], want)
		}
	}
}

func TestPortStrictPriority(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, 0)
	// Fill data queue, then a control packet: control must overtake the
	// queued data (but not the in-flight packet).
	for i := 0; i < 3; i++ {
		p.Enqueue(&Packet{Kind: KindData, Class: ClassData, WireBytes: 1250, Seq: int64(i)}, -1)
	}
	p.Enqueue(&Packet{Kind: KindCNP, Class: ClassCtrl, WireBytes: 64}, -1)
	eng.Run()
	if dst.pkts[0].Kind != KindData || dst.pkts[0].Seq != 0 {
		t.Errorf("first delivery %v seq %d, want in-flight data 0", dst.pkts[0].Kind, dst.pkts[0].Seq)
	}
	if dst.pkts[1].Kind != KindCNP {
		t.Errorf("second delivery %v, want CNP overtaking queued data", dst.pkts[1].Kind)
	}
}

func TestPortPauseResume(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, 0)
	p.SetPaused(ClassData, true)
	p.Enqueue(&Packet{Class: ClassData, WireBytes: 1250}, -1)
	eng.RunUntil(100 * eventsim.Microsecond)
	if len(dst.pkts) != 0 {
		t.Fatal("paused port transmitted")
	}
	// Control traffic still flows while data is paused.
	p.Enqueue(&Packet{Kind: KindCNP, Class: ClassCtrl, WireBytes: 64}, -1)
	eng.RunUntil(200 * eventsim.Microsecond)
	if len(dst.pkts) != 1 || dst.pkts[0].Kind != KindCNP {
		t.Fatalf("control did not bypass data pause: %d delivered", len(dst.pkts))
	}
	p.SetPaused(ClassData, false)
	eng.Run()
	if len(dst.pkts) != 2 {
		t.Fatalf("data not released after resume: %d delivered", len(dst.pkts))
	}
	paused := p.TakePausedTime()
	if paused != 200*eventsim.Microsecond {
		t.Errorf("TakePausedTime = %v, want 200us", paused)
	}
	if p.TakePausedTime() != 0 {
		t.Error("TakePausedTime did not reset")
	}
}

func TestPortPausedTimeWhileStillPaused(t *testing.T) {
	eng, p, _ := newPort(t, 1e9, 0)
	p.SetPaused(ClassData, true)
	eng.RunUntil(50 * eventsim.Microsecond)
	if got := p.TakePausedTime(); got != 50*eventsim.Microsecond {
		t.Errorf("mid-pause TakePausedTime = %v, want 50us", got)
	}
	eng.RunUntil(80 * eventsim.Microsecond)
	p.SetPaused(ClassData, false)
	if got := p.TakePausedTime(); got != 30*eventsim.Microsecond {
		t.Errorf("second TakePausedTime = %v, want 30us", got)
	}
}

func TestPortECNMarking(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, 0)
	p.SetMarker(func(depth int64) float64 {
		if depth > 2000 {
			return 1
		}
		return 0
	})
	// Four packets enqueued at once. The first is popped immediately with
	// an empty queue behind it (depth 1250, unmarked); the second departs
	// with two still queued (depth 3750, marked); the third with one
	// queued (depth 2500, marked); the last with an empty queue (1250,
	// unmarked).
	for i := 0; i < 4; i++ {
		p.Enqueue(&Packet{Kind: KindData, Class: ClassData, WireBytes: 1250}, -1)
	}
	eng.Run()
	if dst.pkts[0].ECNMarked {
		t.Error("first packet marked despite empty queue")
	}
	if !dst.pkts[1].ECNMarked || !dst.pkts[2].ECNMarked {
		t.Error("deep-queue packets not marked")
	}
	if dst.pkts[3].ECNMarked {
		t.Error("shallow-queue packet marked")
	}
	if p.Stats.ECNMarked != 2 {
		t.Errorf("ECNMarked = %d, want 2", p.Stats.ECNMarked)
	}
}

func TestPortPFCBypassesQueue(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, 0)
	// Saturate with data, then a PFC frame must still arrive promptly.
	for i := 0; i < 100; i++ {
		p.Enqueue(&Packet{Class: ClassData, WireBytes: 1250}, -1)
	}
	p.SendPFC(true, ClassData)
	eng.RunUntil(2 * eventsim.Microsecond)
	var sawPFC bool
	for _, pkt := range dst.pkts {
		if pkt.Kind == KindPFC {
			sawPFC = true
		}
	}
	if !sawPFC {
		t.Error("PFC frame did not bypass the data queue")
	}
}

func TestPortTakeTxDataBytes(t *testing.T) {
	eng, p, _ := newPort(t, 1e9, 0)
	p.Enqueue(&Packet{Class: ClassData, WireBytes: 1000}, -1)
	p.Enqueue(&Packet{Kind: KindCNP, Class: ClassCtrl, WireBytes: 64}, -1)
	eng.Run()
	if got := p.TakeTxDataBytes(); got != 1000 {
		t.Errorf("TakeTxDataBytes = %d, want 1000 (control excluded)", got)
	}
	if p.TakeTxDataBytes() != 0 {
		t.Error("TakeTxDataBytes did not reset")
	}
}

// --- Switch ---

func defaultParamsPtr() *dcqcn.Params {
	p := dcqcn.DefaultParams()
	return &p
}

// testFabric builds a 2-host/1-ToR fabric with the hosts replaced by
// sinks, returning the switch and the sinks by host index.
func testFabric(t *testing.T, cfg SwitchConfig, params *dcqcn.Params) (*eventsim.Engine, *topology.Topology, *Switch, []*sink) {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		NumToR: 1, NumLeaf: 0, HostsPerToR: 2,
		HostLinkBps: 1e9, PropDelay: eventsim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := eventsim.NewEngine(5)
	sw := NewSwitch(eng, topo, topo.ToRs()[0], cfg, func() *dcqcn.Params { return params })
	sinks := make([]*sink, 2)
	for i, h := range topo.Hosts() {
		sinks[i] = &sink{eng: eng}
		// Host h connects on its port 0; find the switch-side port.
		l := topo.LinkAt(h, 0)
		_, swPort := l.Peer(h)
		sw.WirePort(swPort, sinks[i], 0)
	}
	return eng, topo, sw, sinks
}

func TestSwitchForwardsToHost(t *testing.T) {
	eng, topo, sw, sinks := testFabric(t, DefaultSwitchConfig(), defaultParamsPtr())
	hosts := topo.Hosts()
	pkt := NewDataPacket(1, hosts[0], hosts[1], 0, 1000, true)
	sw.Receive(pkt, 0) // arrives on the port toward host 0
	eng.Run()
	if len(sinks[1].pkts) != 1 {
		t.Fatalf("host1 received %d packets, want 1", len(sinks[1].pkts))
	}
	if len(sinks[0].pkts) != 0 {
		t.Error("packet echoed to source host")
	}
	if sw.Stats.RxPackets != 1 {
		t.Errorf("RxPackets = %d, want 1", sw.Stats.RxPackets)
	}
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer not released: %d bytes", sw.BufferUsed())
	}
}

func TestSwitchDropsWhenBufferFull(t *testing.T) {
	cfg := DefaultSwitchConfig()
	cfg.BufferBytes = 3000
	cfg.PFCAlpha = 1000 // effectively disable PFC so the drop path triggers
	eng, topo, sw, _ := testFabric(t, cfg, defaultParamsPtr())
	hosts := topo.Hosts()
	for i := 0; i < 5; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	if sw.Stats.Drops == 0 {
		t.Error("no drops with oversubscribed 3 KB buffer")
	}
	eng.Run()
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer leak: %d bytes after drain", sw.BufferUsed())
	}
}

func TestSwitchPFCTriggerAndResume(t *testing.T) {
	cfg := DefaultSwitchConfig()
	cfg.BufferBytes = 100 << 10
	cfg.PFCAlpha = 0.05 // threshold ≈ 5 KB when empty
	eng, topo, sw, sinks := testFabric(t, cfg, defaultParamsPtr())
	hosts := topo.Hosts()
	for i := 0; i < 20; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	if sw.Stats.PFCTriggers == 0 {
		t.Fatal("PFC never triggered despite ingress over threshold")
	}
	eng.Run()
	// The PAUSE frame goes out the ingress port toward host 0.
	var pauses, resumes int
	for _, pkt := range sinks[0].pkts {
		if pkt.Kind == KindPFC {
			if pkt.Pause {
				pauses++
			} else {
				resumes++
			}
		}
	}
	if pauses == 0 {
		t.Error("no PAUSE frame reached the upstream host")
	}
	if resumes == 0 {
		t.Error("no RESUME after the queue drained")
	}
}

func TestSwitchHandlesPFCFrame(t *testing.T) {
	eng, _, sw, _ := testFabric(t, DefaultSwitchConfig(), defaultParamsPtr())
	sw.Receive(&Packet{Kind: KindPFC, Pause: true, PauseClass: ClassData}, 1)
	if !sw.Port(1).Paused(ClassData) {
		t.Error("PAUSE frame did not pause egress port")
	}
	sw.Receive(&Packet{Kind: KindPFC, Pause: false, PauseClass: ClassData}, 1)
	if sw.Port(1).Paused(ClassData) {
		t.Error("RESUME frame did not unpause egress port")
	}
	if sw.Stats.PFCReceived != 2 {
		t.Errorf("PFCReceived = %d, want 2", sw.Stats.PFCReceived)
	}
	eng.Run()
}

func TestSwitchECNMarksUnderCongestion(t *testing.T) {
	params := dcqcn.DefaultParams()
	params.KminBytes = 2000
	params.KmaxBytes = 4000
	params.PMax = 1
	eng, topo, sw, sinks := testFabric(t, DefaultSwitchConfig(), &params)
	hosts := topo.Hosts()
	// Pile 20 packets onto one egress: later departures see deep queues.
	for i := 0; i < 20; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	eng.Run()
	var marked int
	for _, pkt := range sinks[1].pkts {
		if pkt.ECNMarked {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no ECN marks despite queue over Kmax")
	}
	if marked == len(sinks[1].pkts) {
		t.Error("every packet marked; shallow-queue departures should escape")
	}
}

func TestSwitchECNThresholdsLiveUpdate(t *testing.T) {
	params := dcqcn.DefaultParams()
	params.KminBytes = 1 << 30 // effectively never mark
	params.KmaxBytes = 2 << 30
	eng, topo, sw, sinks := testFabric(t, DefaultSwitchConfig(), &params)
	hosts := topo.Hosts()
	for i := 0; i < 10; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	eng.Run()
	for _, pkt := range sinks[1].pkts {
		if pkt.ECNMarked {
			t.Fatal("marked despite huge thresholds")
		}
	}
	// Lower the thresholds live; new congestion must mark.
	params.KminBytes = 1000
	params.KmaxBytes = 2000
	params.PMax = 1
	for i := 0; i < 10; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	eng.Run()
	var marked int
	for _, pkt := range sinks[1].pkts {
		if pkt.ECNMarked {
			marked++
		}
	}
	if marked == 0 {
		t.Error("live-updated thresholds not observed by marker")
	}
}

func TestSwitchTapSeesAdmittedPackets(t *testing.T) {
	eng, topo, sw, _ := testFabric(t, DefaultSwitchConfig(), defaultParamsPtr())
	hosts := topo.Hosts()
	var tapped int
	sw.Tap = func(pkt *Packet, now eventsim.Time) { tapped++ }
	for i := 0; i < 5; i++ {
		sw.Receive(NewDataPacket(1, hosts[0], hosts[1], int64(i)*1000, 1000, false), 0)
	}
	// Control packets must not hit the tap.
	sw.Receive(NewCNP(1, hosts[0], hosts[1]), 0)
	eng.Run()
	if tapped != 5 {
		t.Errorf("tap saw %d packets, want 5 (data only)", tapped)
	}
}

func TestECMPHashConsistency(t *testing.T) {
	// Same flow+salt always picks the same value; different flows spread.
	a := ecmpHash(42, 7)
	if ecmpHash(42, 7) != a {
		t.Error("ecmpHash not deterministic")
	}
	buckets := map[uint64]int{}
	for f := uint64(0); f < 1000; f++ {
		buckets[ecmpHash(f, 7)%4]++
	}
	for b, n := range buckets {
		if n < 150 {
			t.Errorf("ECMP bucket %d has %d/1000 flows; distribution too skewed", b, n)
		}
	}
}
