package netdev

import (
	"testing"

	"repro/internal/eventsim"
)

func TestPortLinkDownHoldsThenResumes(t *testing.T) {
	// 1 Gbps, 1 µs propagation: one 1250 B packet takes 10 µs + 1 µs.
	eng, p, dst := newPort(t, 1e9, eventsim.Microsecond)

	p.SetLinkUp(false)
	if p.LinkUp() {
		t.Fatal("LinkUp after SetLinkUp(false)")
	}
	p.Enqueue(&Packet{Kind: KindData, Class: ClassData, WireBytes: 1250}, -1)
	eng.RunUntil(50 * eventsim.Microsecond)
	if len(dst.pkts) != 0 {
		t.Fatalf("delivered %d packets across a down link", len(dst.pkts))
	}
	if p.QueueBytes(ClassData) == 0 {
		t.Error("down link dropped instead of holding")
	}

	p.SetLinkUp(true)
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets after link restore, want 1", len(dst.pkts))
	}
	if p.Stats.LinkDowns != 1 {
		t.Errorf("LinkDowns=%d, want 1", p.Stats.LinkDowns)
	}
}

func TestPortLinkDownStillSendsPFC(t *testing.T) {
	// PFC control frames must cross a "down" link: the outage model holds
	// data, but losing a RESUME would deadlock the upstream queue forever.
	eng, p, dst := newPort(t, 1e9, eventsim.Microsecond)
	p.SetLinkUp(false)
	p.SendPFC(true, ClassData)
	eng.Run()
	if len(dst.pkts) != 1 || dst.pkts[0].Kind != KindPFC {
		t.Fatalf("PFC frame did not cross the down link (got %d pkts)", len(dst.pkts))
	}
}

func TestPortDegradationSlowsAndDelays(t *testing.T) {
	eng, p, dst := newPort(t, 1e9, eventsim.Microsecond)
	// Half rate doubles serialization (10→20 µs); +4 µs propagation.
	p.SetDegradation(0.5, 4*eventsim.Microsecond)
	if !p.Degraded() {
		t.Fatal("Degraded() false after SetDegradation")
	}
	p.Enqueue(&Packet{Kind: KindData, Class: ClassData, WireBytes: 1250}, -1)
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	want := 25 * eventsim.Microsecond // 20 serialization + 1 prop + 4 extra
	if dst.times[0] != want {
		t.Errorf("arrival at %v, want %v", dst.times[0], want)
	}
	p.SetDegradation(1, 0)
	if p.Degraded() {
		t.Error("Degraded() true after reset")
	}
}

func TestPortDegradationClamps(t *testing.T) {
	eng, p, _ := newPort(t, 1e9, eventsim.Microsecond)
	_ = eng
	p.SetDegradation(-2, -eventsim.Microsecond)
	if p.Degraded() {
		t.Error("negative inputs should clamp to healthy")
	}
	p.SetDegradation(7, 0)
	if p.Degraded() {
		t.Error("factor > 1 should clamp to 1")
	}
}
