// Package netdev models the RoCEv2 data plane: packets, rate-limited
// egress ports with priority queues, PFC PAUSE/RESUME, and shared-buffer
// switches that ECN-mark per the DCQCN CP law.
//
// Modeling conventions (matching common NS-3 RDMA models):
//
//   - Two traffic classes share each link: class 0 carries RDMA data and
//     is lossless (PFC-protected, ECN-marked); class 1 carries CNPs and
//     probe replies with strict priority and is neither marked nor paused.
//   - PFC frames are MAC control frames: they bypass egress queues and
//     occupy the wire only for their 64-byte serialization.
//   - ECN marking happens at dequeue against the instantaneous class-0
//     egress queue depth.
package netdev

import (
	"repro/internal/eventsim"
	"repro/internal/splitmix"
	"repro/internal/topology"
)

// Traffic classes.
const (
	// ClassData is lossless RDMA traffic: PFC-paused and ECN-marked.
	ClassData = 0
	// ClassCtrl is strict-priority control traffic (CNPs, probe replies).
	ClassCtrl = 1
	// NumClasses is the number of per-port queues.
	NumClasses = 2
)

// Kind discriminates packet roles.
type Kind uint8

const (
	// KindData is a segment of an RDMA message.
	KindData Kind = iota
	// KindCNP is a DCQCN congestion notification (NP → RP).
	KindCNP
	// KindProbe is an RTT probe riding the data class.
	KindProbe
	// KindProbeReply answers a probe on the control class.
	KindProbeReply
	// KindPFC is a PAUSE/RESUME control frame.
	KindPFC
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCNP:
		return "cnp"
	case KindProbe:
		return "probe"
	case KindProbeReply:
		return "probe-reply"
	case KindPFC:
		return "pfc"
	default:
		return "unknown"
	}
}

// Wire sizes in bytes.
const (
	// HeaderBytes is the per-packet overhead (Ethernet + IP + UDP + BTH).
	HeaderBytes = 48
	// DefaultMTU is the RoCE payload size per data packet.
	DefaultMTU = 1000
	// CtrlFrameBytes is the wire size of CNPs, probes, and PFC frames.
	CtrlFrameBytes = 64
)

// Packet is one frame in flight, created per segment and passed by
// pointer; devices must not retain one after forwarding it. Packets are
// recycled through a PacketPool when the terminating device has one, so a
// sunk or dropped packet's memory may be reused by an unrelated later
// packet.
type Packet struct {
	Kind   Kind
	FlowID uint64
	Src    topology.NodeID
	Dst    topology.NodeID

	// Seq is the first payload byte's offset within the message.
	Seq int64
	// PayloadBytes is the RDMA payload carried; WireBytes includes headers.
	PayloadBytes int
	WireBytes    int

	Class int

	// ECNMarked is the CE codepoint set by a congested switch.
	ECNMarked bool
	// TOSMarked is Paraleon's "inserted into a sketch already" bit
	// (Keypoint 1, §III-B).
	TOSMarked bool
	// Last marks the final segment of a message.
	Last bool

	// SentAt is stamped by the sender for RTT measurement.
	SentAt eventsim.Time

	// PFC fields (KindPFC only): pause or resume for PauseClass.
	Pause      bool
	PauseClass int
}

// maxPooledPackets bounds a PacketPool's free-list so a transient burst
// cannot pin an unbounded number of dead packets.
const maxPooledPackets = 1 << 16

// PacketPool is a LIFO free-list of packets. Devices that terminate a
// packet's life — a host sinking it, a switch dropping it — return it with
// Put, and every construction path (data segments, CNPs, probes, PFC
// frames) draws from Get, so the per-packet forward path allocates nothing
// in steady state.
//
// The pool is intentionally not safe for concurrent use: a simulation is
// single-threaded per engine, and each sim.Network owns one pool, so
// parallel experiment arms never share one. A nil *PacketPool is valid
// everywhere and degrades to plain allocation (Get) and dropping (Put),
// which keeps hand-wired test setups working unchanged.
type PacketPool struct {
	free []*Packet

	// Recycled and Fresh count Get calls served from the free-list and by
	// allocation; their ratio is the pool hit rate.
	Recycled, Fresh int64
	// Puts counts packets returned to the pool (whether or not the
	// free-list had room to keep them). The leak invariant every Get must
	// eventually balance is Fresh+Recycled == Puts + packets still in
	// flight; sim.Network.CheckPoolInvariant walks the fabric to count the
	// in-flight term.
	Puts int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, recycling a dead one when available.
func (p *PacketPool) Get() *Packet {
	if p == nil || len(p.free) == 0 {
		if p != nil {
			p.Fresh++
		}
		return &Packet{}
	}
	n := len(p.free) - 1
	pkt := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	p.Recycled++
	return pkt
}

// Put recycles a packet whose life ended. The packet is zeroed here, so a
// late use-after-Put reads zeroes rather than another packet's fields.
// Callers must not retain pkt afterwards.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	p.Puts++
	*pkt = Packet{}
	if len(p.free) >= maxPooledPackets {
		return
	}
	p.free = append(p.free, pkt)
}

// NewDataPacket builds a data segment of a flow from the pool.
func (p *PacketPool) NewDataPacket(flow uint64, src, dst topology.NodeID, seq int64, payload int, last bool) *Packet {
	pkt := p.Get()
	pkt.Kind, pkt.FlowID, pkt.Src, pkt.Dst = KindData, flow, src, dst
	pkt.Seq, pkt.PayloadBytes, pkt.WireBytes = seq, payload, payload+HeaderBytes
	pkt.Class, pkt.Last = ClassData, last
	return pkt
}

// NewCNP builds a congestion notification for flow from the pool, sent
// from the NP back to the RP (src is the NP's host).
func (p *PacketPool) NewCNP(flow uint64, src, dst topology.NodeID) *Packet {
	pkt := p.Get()
	pkt.Kind, pkt.FlowID, pkt.Src, pkt.Dst = KindCNP, flow, src, dst
	pkt.WireBytes, pkt.Class = CtrlFrameBytes, ClassCtrl
	return pkt
}

// NewDataPacket builds a data segment of a flow without a pool.
func NewDataPacket(flow uint64, src, dst topology.NodeID, seq int64, payload int, last bool) *Packet {
	return (*PacketPool)(nil).NewDataPacket(flow, src, dst, seq, payload, last)
}

// NewCNP builds a pool-less congestion notification for flow, sent from
// the NP back to the RP (src is the NP's host).
func NewCNP(flow uint64, src, dst topology.NodeID) *Packet {
	return (*PacketPool)(nil).NewCNP(flow, src, dst)
}

// Device is anything that terminates a link: a switch or a host RNIC.
// Receive is invoked by the engine when a packet fully arrives on the
// device's local port inPort.
type Device interface {
	Receive(pkt *Packet, inPort int)
}

// ecmpHash mixes a flow ID into a uniform 64-bit value (splitmix64 final
// avalanche), used to pick among equal-cost next hops so a flow sticks to
// one path.
func ecmpHash(flow uint64, salt uint64) uint64 {
	return splitmix.Next(flow + salt)
}
