// Package netdev models the RoCEv2 data plane: packets, rate-limited
// egress ports with priority queues, PFC PAUSE/RESUME, and shared-buffer
// switches that ECN-mark per the DCQCN CP law.
//
// Modeling conventions (matching common NS-3 RDMA models):
//
//   - Two traffic classes share each link: class 0 carries RDMA data and
//     is lossless (PFC-protected, ECN-marked); class 1 carries CNPs and
//     probe replies with strict priority and is neither marked nor paused.
//   - PFC frames are MAC control frames: they bypass egress queues and
//     occupy the wire only for their 64-byte serialization.
//   - ECN marking happens at dequeue against the instantaneous class-0
//     egress queue depth.
package netdev

import (
	"repro/internal/eventsim"
	"repro/internal/topology"
)

// Traffic classes.
const (
	// ClassData is lossless RDMA traffic: PFC-paused and ECN-marked.
	ClassData = 0
	// ClassCtrl is strict-priority control traffic (CNPs, probe replies).
	ClassCtrl = 1
	// NumClasses is the number of per-port queues.
	NumClasses = 2
)

// Kind discriminates packet roles.
type Kind uint8

const (
	// KindData is a segment of an RDMA message.
	KindData Kind = iota
	// KindCNP is a DCQCN congestion notification (NP → RP).
	KindCNP
	// KindProbe is an RTT probe riding the data class.
	KindProbe
	// KindProbeReply answers a probe on the control class.
	KindProbeReply
	// KindPFC is a PAUSE/RESUME control frame.
	KindPFC
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCNP:
		return "cnp"
	case KindProbe:
		return "probe"
	case KindProbeReply:
		return "probe-reply"
	case KindPFC:
		return "pfc"
	default:
		return "unknown"
	}
}

// Wire sizes in bytes.
const (
	// HeaderBytes is the per-packet overhead (Ethernet + IP + UDP + BTH).
	HeaderBytes = 48
	// DefaultMTU is the RoCE payload size per data packet.
	DefaultMTU = 1000
	// CtrlFrameBytes is the wire size of CNPs, probes, and PFC frames.
	CtrlFrameBytes = 64
)

// Packet is one frame in flight. Packets are allocated per segment and
// passed by pointer; devices must not retain them after forwarding.
type Packet struct {
	Kind   Kind
	FlowID uint64
	Src    topology.NodeID
	Dst    topology.NodeID

	// Seq is the first payload byte's offset within the message.
	Seq int64
	// PayloadBytes is the RDMA payload carried; WireBytes includes headers.
	PayloadBytes int
	WireBytes    int

	Class int

	// ECNMarked is the CE codepoint set by a congested switch.
	ECNMarked bool
	// TOSMarked is Paraleon's "inserted into a sketch already" bit
	// (Keypoint 1, §III-B).
	TOSMarked bool
	// Last marks the final segment of a message.
	Last bool

	// SentAt is stamped by the sender for RTT measurement.
	SentAt eventsim.Time

	// PFC fields (KindPFC only): pause or resume for PauseClass.
	Pause      bool
	PauseClass int
}

// NewDataPacket builds a data segment of a flow.
func NewDataPacket(flow uint64, src, dst topology.NodeID, seq int64, payload int, last bool) *Packet {
	return &Packet{
		Kind: KindData, FlowID: flow, Src: src, Dst: dst,
		Seq: seq, PayloadBytes: payload, WireBytes: payload + HeaderBytes,
		Class: ClassData, Last: last,
	}
}

// NewCNP builds a congestion notification for flow, sent from the NP back
// to the RP (src is the NP's host).
func NewCNP(flow uint64, src, dst topology.NodeID) *Packet {
	return &Packet{
		Kind: KindCNP, FlowID: flow, Src: src, Dst: dst,
		WireBytes: CtrlFrameBytes, Class: ClassCtrl,
	}
}

// Device is anything that terminates a link: a switch or a host RNIC.
// Receive is invoked by the engine when a packet fully arrives on the
// device's local port inPort.
type Device interface {
	Receive(pkt *Packet, inPort int)
}

// ecmpHash mixes a flow ID into a uniform 64-bit value (splitmix64 final
// avalanche), used to pick among equal-cost next hops so a flow sticks to
// one path.
func ecmpHash(flow uint64, salt uint64) uint64 {
	z := flow + salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
