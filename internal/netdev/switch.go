package netdev

import (
	"fmt"
	"math/rand"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/topology"
)

// SwitchConfig sets the buffer-management behaviour shared by all ports of
// a switch.
type SwitchConfig struct {
	// BufferBytes is the shared packet buffer (paper: 12 MB).
	BufferBytes int64
	// PFCAlpha is the dynamic-threshold α: an ingress port may occupy up
	// to α·(free buffer) before PAUSE is sent upstream (§V: typically 1/8).
	PFCAlpha float64
	// PFCResumeOffset is the hysteresis below the pause threshold before
	// RESUME is sent.
	PFCResumeOffset int64
}

// DefaultSwitchConfig mirrors the paper's simulation setup.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{
		BufferBytes:     12 << 20,
		PFCAlpha:        1.0 / 8.0,
		PFCResumeOffset: 2 * (DefaultMTU + HeaderBytes),
	}
}

// SwitchStats are cumulative device-level counters.
type SwitchStats struct {
	RxPackets   int64
	Drops       int64
	PFCTriggers int64
	PFCReceived int64
}

// Switch is a shared-buffer output-queued switch with per-port DCQCN ECN
// marking (the CP) and ingress-based PFC flow control. ECN thresholds are
// read live through the params func, so a tuner can retarget Kmin/Kmax/Pmax
// for this switch without reconstructing it.
type Switch struct {
	eng  *eventsim.Engine
	topo *topology.Topology
	node topology.NodeID
	cfg  SwitchConfig

	params func() *dcqcn.Params

	ports        []*EgressPort
	ingressBytes []int64
	pauseSent    []bool
	totalUsed    int64

	// pool recycles packets this switch terminates (drops, sunk PFC
	// frames) and supplies its ports' control frames. May be nil.
	pool *PacketPool

	rng *rand.Rand

	// Tap, if set, observes every admitted class-0 data packet at
	// ingress. Paraleon's sketch measurement points attach here.
	Tap func(pkt *Packet, now eventsim.Time)

	Stats SwitchStats
}

// NewSwitch builds the device model for node within topo. Egress ports are
// created per the node's topology ports but remain unwired; call WirePort
// for each once the peer devices exist.
func NewSwitch(eng *eventsim.Engine, topo *topology.Topology, node topology.NodeID, cfg SwitchConfig, params func() *dcqcn.Params) *Switch {
	return NewSwitchSeeded(eng, eng, topo, node, cfg, params)
}

// NewSwitchSeeded is NewSwitch with the device's random streams drawn
// from seedSrc instead of the scheduling engine. The sharded runtime
// draws every device's streams from the one global engine in
// construction order, so the streams — and therefore ECN coin flips —
// are identical no matter which shard engine drives the device, or how
// many shards exist. NewSwitch passes eng for both.
func NewSwitchSeeded(eng, seedSrc *eventsim.Engine, topo *topology.Topology, node topology.NodeID, cfg SwitchConfig, params func() *dcqcn.Params) *Switch {
	n := &topo.Nodes[node]
	s := &Switch{
		eng: eng, topo: topo, node: node, cfg: cfg,
		params:       params,
		ingressBytes: make([]int64, len(n.Ports)),
		pauseSent:    make([]bool, len(n.Ports)),
		rng:          seedSrc.Rand(),
	}
	s.ports = make([]*EgressPort, len(n.Ports))
	for i, lid := range n.Ports {
		l := &topo.Links[lid]
		p := NewEgressPort(eng, l.RateBps, l.PropDelay, seedSrc.Rand())
		p.SetMarker(func(depth int64) float64 { return s.params().MarkProbability(depth) })
		p.SetOnDeparted(s.released)
		s.ports[i] = p
	}
	return s
}

// SetPacketPool installs the free-list dead packets return to; it also
// covers every egress port of the switch.
func (s *Switch) SetPacketPool(pool *PacketPool) {
	s.pool = pool
	for _, p := range s.ports {
		p.SetPacketPool(pool)
	}
}

// NodeID reports which topology node this switch realizes.
func (s *Switch) NodeID() topology.NodeID { return s.node }

// Port returns the egress port at local index i.
func (s *Switch) Port(i int) *EgressPort { return s.ports[i] }

// NumPorts reports the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// WirePort connects local port i to the peer device's port.
func (s *Switch) WirePort(i int, peer Device, peerPort int) {
	s.ports[i].SetPeer(peer, peerPort)
}

// BufferUsed reports the class-0 bytes currently buffered.
func (s *Switch) BufferUsed() int64 { return s.totalUsed }

// Receive implements Device: route, admit, and enqueue.
func (s *Switch) Receive(pkt *Packet, inPort int) {
	if pkt.Kind == KindPFC {
		s.Stats.PFCReceived++
		s.ports[inPort].SetPaused(pkt.PauseClass, pkt.Pause)
		s.pool.Put(pkt)
		return
	}
	s.Stats.RxPackets++
	out := s.routePort(pkt)
	if pkt.Class == ClassData {
		wire := int64(pkt.WireBytes)
		if s.totalUsed+wire > s.cfg.BufferBytes {
			// Lossless fabrics should pause before this point; a drop
			// here means PFC headroom was exhausted.
			s.Stats.Drops++
			s.pool.Put(pkt)
			return
		}
		s.totalUsed += wire
		s.ingressBytes[inPort] += wire
		s.maybePause(inPort)
		if s.Tap != nil {
			s.Tap(pkt, s.eng.Now())
		}
		s.ports[out].Enqueue(pkt, inPort)
		return
	}
	// Control class: tiny strict-priority traffic, not buffer-accounted.
	s.ports[out].Enqueue(pkt, -1)
}

// routePort picks the ECMP next hop for pkt. Next hops whose link is
// down are excluded — the switch reroutes over the surviving members of
// the ECMP group, as a fabric with BFD/LACP link detection would. When
// every next hop is down the packet still queues on its hashed port and
// waits out the outage (the fabric is lossless; see EgressPort.SetLinkUp).
func (s *Switch) routePort(pkt *Packet) int {
	hops := s.topo.NextHops(s.node, pkt.Dst)
	if len(hops) == 0 {
		panic(fmt.Sprintf("netdev: switch %d has no route to %d", s.node, pkt.Dst))
	}
	if len(hops) == 1 {
		return hops[0]
	}
	var alive [8]int
	live := alive[:0]
	for _, h := range hops {
		if s.ports[h].LinkUp() {
			live = append(live, h)
		}
	}
	if len(live) == 0 {
		live = hops
	}
	return live[ecmpHash(pkt.FlowID, uint64(s.node))%uint64(len(live))]
}

// pauseThreshold is the dynamic threshold α·(B − used).
func (s *Switch) pauseThreshold() int64 {
	free := s.cfg.BufferBytes - s.totalUsed
	if free < 0 {
		free = 0
	}
	return int64(s.cfg.PFCAlpha * float64(free))
}

func (s *Switch) maybePause(inPort int) {
	if s.pauseSent[inPort] {
		return
	}
	if s.ingressBytes[inPort] >= s.pauseThreshold() {
		s.pauseSent[inPort] = true
		s.Stats.PFCTriggers++
		s.ports[inPort].SendPFC(true, ClassData)
	}
}

// released is the per-port departure hook: free shared buffer, release
// ingress accounting, and send RESUME when occupancy falls far enough.
func (s *Switch) released(pkt *Packet, inPort int) {
	if pkt.Class != ClassData || inPort < 0 {
		return
	}
	wire := int64(pkt.WireBytes)
	s.totalUsed -= wire
	s.ingressBytes[inPort] -= wire
	if s.pauseSent[inPort] {
		thr := s.pauseThreshold() - s.cfg.PFCResumeOffset
		if thr < 0 {
			thr = 0
		}
		if s.ingressBytes[inPort] <= thr {
			s.pauseSent[inPort] = false
			s.ports[inPort].SendPFC(false, ClassData)
		}
	}
}

// InFlightPackets sums in-flight packets over the switch's ports (pool
// leak accounting).
func (s *Switch) InFlightPackets() int {
	n := 0
	for _, p := range s.ports {
		n += p.InFlightPackets()
	}
	return n
}

// TakePausedTime sums and resets TakePausedTime over all ports: the
// λ_xoff numerator of the O_PFC utility term for this device.
func (s *Switch) TakePausedTime() eventsim.Time {
	var total eventsim.Time
	for _, p := range s.ports {
		total += p.TakePausedTime()
	}
	return total
}

// TotalPausedTime sums the ports' cumulative pause durations without
// resetting anything (flight-recorder sampling; see
// EgressPort.TotalPausedTime).
func (s *Switch) TotalPausedTime() eventsim.Time {
	var total eventsim.Time
	for _, p := range s.ports {
		total += p.TotalPausedTime()
	}
	return total
}
