package netdev

import (
	"math/rand"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/telemetry"
)

// poolSink terminates packets the way a host RNIC does: count, bump a
// telemetry counter (the forward path must stay zero-alloc with the
// instrumentation that production devices run per packet), and recycle.
type poolSink struct {
	pool     *PacketPool
	counter  *telemetry.Counter
	received int64
	bytes    int64
}

func (s *poolSink) Receive(pkt *Packet, inPort int) {
	s.received++
	s.bytes += int64(pkt.WireBytes)
	if s.counter != nil {
		s.counter.Inc()
	}
	s.pool.Put(pkt)
}

// forwardRig is a minimal one-hop data path: pooled packets enqueued on an
// egress port, serialized, propagated, and sunk back into the pool.
type forwardRig struct {
	eng  *eventsim.Engine
	pool *PacketPool
	port *EgressPort
	sink *poolSink
}

func newForwardRig(counter *telemetry.Counter) *forwardRig {
	eng := eventsim.NewEngine(1)
	pool := NewPacketPool()
	port := NewEgressPort(eng, 100e9, 1000, rand.New(rand.NewSource(1)))
	port.SetPacketPool(pool)
	sink := &poolSink{pool: pool, counter: counter}
	port.SetPeer(sink, 0)
	return &forwardRig{eng: eng, pool: pool, port: port, sink: sink}
}

// sendOne pushes one pooled data packet through the whole path: Enqueue →
// transmit → txDone → delivery → sink → pool.Put.
func (r *forwardRig) sendOne(seq int64) {
	pkt := r.pool.NewDataPacket(1, 0, 1, seq, DefaultMTU, false)
	r.port.Enqueue(pkt, -1)
	r.eng.Run()
}

// TestPortForwardZeroAlloc pins the acceptance criterion for the packet
// free-lists: once the pool, the port's delivery slab, and the engine's
// event slab are warm, forwarding a data packet — including the per-packet
// telemetry counter increment — allocates nothing.
func TestPortForwardZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	rig := newForwardRig(reg.Counter("test_rx_packets_total", "packets sunk by the test rig"))
	for i := int64(0); i < 256; i++ {
		rig.sendOne(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rig.sendOne(0)
	})
	if allocs != 0 {
		t.Fatalf("data-packet forward path allocates %.1f per packet in steady state, want 0", allocs)
	}
	if rig.pool.Recycled == 0 {
		t.Fatal("pool never recycled a packet; sink is not returning them")
	}
}

// TestPacketPoolRecycles checks the pool contract: Put zeroes, Get reuses
// LIFO, nil pools degrade to plain allocation.
func TestPacketPoolRecycles(t *testing.T) {
	pool := NewPacketPool()
	a := pool.NewDataPacket(7, 1, 2, 100, DefaultMTU, true)
	pool.Put(a)
	if a.FlowID != 0 || a.WireBytes != 0 || a.Last {
		t.Fatal("Put did not zero the packet")
	}
	b := pool.Get()
	if b != a {
		t.Fatal("Get did not reuse the recycled packet")
	}
	if pool.Recycled != 1 || pool.Fresh != 1 {
		t.Fatalf("Recycled=%d Fresh=%d, want 1/1", pool.Recycled, pool.Fresh)
	}
	var nilPool *PacketPool
	if nilPool.Get() == nil {
		t.Fatal("nil pool Get returned nil")
	}
	nilPool.Put(&Packet{}) // must not panic
}

// BenchmarkPortForward measures the full per-packet data-path cost — queue,
// serialize, propagate, sink, recycle — which is two engine events plus the
// pool round-trip per packet.
func BenchmarkPortForward(b *testing.B) {
	rig := newForwardRig(nil)
	for i := int64(0); i < 256; i++ {
		rig.sendOne(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sendOne(int64(i))
	}
	b.StopTimer()
	b.ReportMetric(float64(rig.sink.bytes)/b.Elapsed().Seconds()/1e9, "simGB/s")
}
