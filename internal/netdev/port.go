package netdev

import (
	"math/rand"

	"repro/internal/eventsim"
	"repro/internal/topology"
)

// queueEntry holds a queued packet plus the ingress port it came in on, so
// the owning switch can release ingress PFC accounting when it leaves.
type queueEntry struct {
	pkt    *Packet
	inPort int
}

// fifo is a slice-backed FIFO with O(1) amortized operations and byte
// accounting.
type fifo struct {
	entries []queueEntry
	head    int
	bytes   int64
}

func (q *fifo) push(e queueEntry) {
	q.entries = append(q.entries, e)
	q.bytes += int64(e.pkt.WireBytes)
}

func (q *fifo) pop() (queueEntry, bool) {
	if q.head >= len(q.entries) {
		return queueEntry{}, false
	}
	e := q.entries[q.head]
	q.entries[q.head] = queueEntry{}
	q.head++
	q.bytes -= int64(e.pkt.WireBytes)
	if q.head == len(q.entries) {
		q.entries = q.entries[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.entries) {
		n := copy(q.entries, q.entries[q.head:])
		q.entries = q.entries[:n]
		q.head = 0
	}
	return e, true
}

func (q *fifo) empty() bool { return q.head >= len(q.entries) }

// PortStats are cumulative egress counters.
type PortStats struct {
	TxPackets, TxBytes   int64 // all classes
	TxDataBytes          int64 // class 0 only
	ECNMarked            int64
	PFCSent, PFCReceived int64
	// LinkDowns counts SetLinkUp(false) transitions (fault injection).
	LinkDowns int64
}

// deliverySlot holds one packet in flight on the wire (serialized, not yet
// arrived). Each slot owns a persistent closure created when the slot is
// first needed, so scheduling a delivery allocates nothing once the port's
// in-flight high-water mark is reached.
type deliverySlot struct {
	pkt  *Packet
	next int32 // free-list link
	fn   eventsim.Handler
}

// EgressPort is one direction of a link: priority queues, a transmitter
// that serializes at line rate, optional ECN marking, and PFC pause state.
// Both switches and host RNICs transmit through EgressPorts.
type EgressPort struct {
	eng     *eventsim.Engine
	rateBps float64
	prop    eventsim.Time
	rng     *rand.Rand

	peer     Device
	peerPort int

	queues [NumClasses]fifo
	busy   bool
	paused [NumClasses]bool

	// pool recycles packets this port originates (PFC frames). May be nil.
	pool *PacketPool

	// Transmitter state for the persistent serialization-done handler:
	// exactly one packet serializes at a time, so its queue entry, class,
	// and the delivery delay captured at transmit start live in fields
	// instead of a per-packet closure. txDoneEv is the last serialization
	// timer; it has always fired by the next transmit (the transmitter is
	// strictly one-at-a-time), so re-arming it through RearmAfter just
	// recycles the same wheel slot run after run.
	txDoneFn   eventsim.Handler
	txDoneEv   eventsim.EventID
	inflight   queueEntry
	inflightCl int
	inflightDl eventsim.Time

	// deliveries is the slab of packets crossing the wire; delivFree heads
	// its free-list (-1 = none). Several can overlap: serialization of the
	// next packet starts while earlier ones are still propagating.
	deliveries []deliverySlot
	delivFree  int32

	// keyBase, when nonzero, switches the port to keyed deliveries: every
	// packet put on the wire is scheduled with structural key
	// keyBase | emitSeq, so same-timestamp arrivals at the far end order
	// by (source node, source port, emission number) instead of by engine
	// insertion order. The sharded runtime keys every port; keyBase 0 is
	// the legacy single-engine behavior, bit for bit.
	keyBase uint64
	emitSeq uint32
	// remote, when set, intercepts deliveries instead of scheduling them
	// on the local engine: the packet's arrival time and structural key
	// are handed to the sharded runtime, which batches them per shard
	// pair and injects them into the destination engine at the next
	// window boundary.
	remote func(pkt *Packet, arrival eventsim.Time, key uint64)

	// Link fault state (internal/chaos). A down link holds its queues —
	// the sim has no link-layer retransmit, so dropping in-queue lossless
	// traffic would strand flows forever; holding models an outage that
	// upper layers experience as unbounded delay while ECMP routes new
	// traffic around the port. rateFactor < 1 and extraDelay model a
	// degraded (flapping, mis-negotiated) link that still passes traffic.
	up         bool
	rateFactor float64
	extraDelay eventsim.Time

	// marker returns the ECN mark probability for a class-0 queue depth;
	// nil disables marking (host ports).
	marker func(queueBytes int64) float64

	// onDeparted, if set, is called when a packet finishes serializing
	// and leaves the device, with the ingress port it was admitted on
	// (−1 for locally generated traffic). Switches release shared-buffer
	// and ingress accounting here; hosts restart their flow scheduler.
	onDeparted func(pkt *Packet, inPort int)
	// onResume, if set, is called when a PFC RESUME unpauses a class
	// (host RNICs restart their flow scheduler here).
	onResume func(class int)

	// pause-duration accounting for the O_PFC utility term.
	// pausedAccum is take-style (owned by the runtime collector);
	// pausedTotal accumulates the same closed intervals forever so
	// read-only consumers (the flight recorder) can take deltas
	// without stealing from the collector.
	pausedSince  eventsim.Time
	pausedAccum  eventsim.Time
	pausedTotal  eventsim.Time
	pauseCounted bool

	Stats PortStats
}

// NewEgressPort builds a port transmitting at rateBps over a link with
// one-way propagation delay prop. Wire the destination with SetPeer before
// the first Enqueue.
func NewEgressPort(eng *eventsim.Engine, rateBps float64, prop eventsim.Time, rng *rand.Rand) *EgressPort {
	if rateBps <= 0 {
		panic("netdev: non-positive port rate")
	}
	p := &EgressPort{eng: eng, rateBps: rateBps, prop: prop, rng: rng, up: true, rateFactor: 1, delivFree: -1}
	p.txDoneFn = p.txDone
	return p
}

// SetPacketPool installs the free-list this port recycles its locally
// generated control frames through. Devices install their shared pool on
// every port they own.
func (p *EgressPort) SetPacketPool(pool *PacketPool) { p.pool = pool }

// LinkUp reports whether the link out of this port is up.
func (p *EgressPort) LinkUp() bool { return p.up }

// SetLinkUp raises or cuts the link. While down the port transmits
// nothing (queued traffic is held, not dropped); restoring the link
// restarts the transmitter. PFC control frames still cross the wire so
// pause state cannot deadlock across an outage.
func (p *EgressPort) SetLinkUp(up bool) {
	if p.up == up {
		return
	}
	p.up = up
	if !up {
		p.Stats.LinkDowns++
		return
	}
	p.kick()
}

// SetDegradation installs a link-quality fault: the effective line rate
// becomes rateFactor·rateBps and every packet pays extraDelay on top of
// propagation. rateFactor is clamped to (0, 1]; pass (1, 0) to heal.
func (p *EgressPort) SetDegradation(rateFactor float64, extraDelay eventsim.Time) {
	if rateFactor <= 0 || rateFactor > 1 {
		rateFactor = 1
	}
	if extraDelay < 0 {
		extraDelay = 0
	}
	p.rateFactor = rateFactor
	p.extraDelay = extraDelay
}

// Degraded reports whether a degradation fault is active.
func (p *EgressPort) Degraded() bool { return p.rateFactor != 1 || p.extraDelay != 0 }

// SetPeer wires the far end of the link: packets arrive at dev.Receive
// with inPort = port.
func (p *EgressPort) SetPeer(dev Device, port int) {
	p.peer = dev
	p.peerPort = port
}

// SetMarker installs the ECN marking law (switch CP behaviour). The
// function is consulted at dequeue with the class-0 queue depth in bytes.
func (p *EgressPort) SetMarker(m func(queueBytes int64) float64) { p.marker = m }

// SetDeliveryKeying enables keyed deliveries for the port of the given
// source node: wire arrivals carry DeliveryKey(node, port, emission#) so
// their order among same-timestamp events is structural. Must be set
// before the first transmission; the sharded runtime keys every port.
func (p *EgressPort) SetDeliveryKeying(node topology.NodeID, port int) {
	p.keyBase = DeliveryKey(node, port, 0)
}

// SetRemoteHandoff diverts this port's deliveries away from the local
// engine: fn receives each departing packet with its computed arrival
// time and structural key. The sharded runtime installs this on ports
// whose link crosses a shard boundary. Requires keyed deliveries.
func (p *EgressPort) SetRemoteHandoff(fn func(pkt *Packet, arrival eventsim.Time, key uint64)) {
	if p.keyBase == 0 {
		panic("netdev: SetRemoteHandoff requires SetDeliveryKeying")
	}
	p.remote = fn
}

// DeliveryKey packs (source node, source port, per-port emission number)
// into the structural ordering key used for keyed deliveries. node+1
// keeps every key nonzero, so keyed deliveries always rank after the
// key-0 node-local events at the same timestamp. 20 bits of node, 12 of
// port, 32 of emission number cover a million-node fabric with 4096-port
// switches; the emission counter wrapping after 4G packets per port
// could only perturb tie order between two same-arrival-instant packets
// of the same port 4 billion emissions apart, which serialization
// spacing rules out.
func DeliveryKey(node topology.NodeID, port int, emission uint32) uint64 {
	return (uint64(node)+1)<<44 | uint64(port)<<32 | uint64(emission)
}

// SetOnDeparted installs the departure hook.
func (p *EgressPort) SetOnDeparted(fn func(pkt *Packet, inPort int)) { p.onDeparted = fn }

// SetOnResume installs the PFC-resume hook.
func (p *EgressPort) SetOnResume(fn func(class int)) { p.onResume = fn }

// Busy reports whether a packet is currently serializing.
func (p *EgressPort) Busy() bool { return p.busy }

// RateBps reports the configured line rate.
func (p *EgressPort) RateBps() float64 { return p.rateBps }

// QueueBytes reports the current depth of the given class queue.
func (p *EgressPort) QueueBytes(class int) int64 { return p.queues[class].bytes }

// serialization returns the wire time of n bytes at the effective line
// rate (degradation faults cut it by rateFactor).
func (p *EgressPort) serialization(n int) eventsim.Time {
	return eventsim.Time(float64(n*8) / (p.rateBps * p.rateFactor) * 1e9)
}

// Enqueue appends a packet (tagged with its ingress port, −1 for locally
// generated traffic) and kicks the transmitter.
func (p *EgressPort) Enqueue(pkt *Packet, inPort int) {
	p.queues[pkt.Class].push(queueEntry{pkt: pkt, inPort: inPort})
	p.kick()
}

// Paused reports the PFC pause state of a class.
func (p *EgressPort) Paused(class int) bool { return p.paused[class] }

// SetPaused applies a PFC PAUSE (true) or RESUME (false) for a class, as
// commanded by the downstream device. Pause takes effect between packets.
func (p *EgressPort) SetPaused(class int, paused bool) {
	if p.paused[class] == paused {
		return
	}
	p.paused[class] = paused
	if class == ClassData {
		if paused {
			p.pausedSince = p.eng.Now()
			p.pauseCounted = true
		} else if p.pauseCounted {
			d := p.eng.Now() - p.pausedSince
			p.pausedAccum += d
			p.pausedTotal += d
			p.pauseCounted = false
		}
	}
	if !paused {
		p.kick()
		if p.onResume != nil {
			p.onResume(class)
		}
	}
}

// TakePausedTime returns the class-0 pause duration accumulated since the
// previous call and resets the accumulator. A port paused across the call
// contributes its elapsed pause so far.
func (p *EgressPort) TakePausedTime() eventsim.Time {
	if p.pauseCounted {
		now := p.eng.Now()
		p.pausedAccum += now - p.pausedSince
		p.pausedTotal += now - p.pausedSince
		p.pausedSince = now
	}
	v := p.pausedAccum
	p.pausedAccum = 0
	return v
}

// TotalPausedTime reports the cumulative class-0 pause duration since
// construction, without resetting anything: closed pause intervals
// plus the elapsed portion of a pause still in progress. Safe to read
// alongside TakePausedTime — the two never double- or under-count.
func (p *EgressPort) TotalPausedTime() eventsim.Time {
	if p.pauseCounted {
		return p.pausedTotal + (p.eng.Now() - p.pausedSince)
	}
	return p.pausedTotal
}

// TakeTxDataBytes returns class-0 bytes transmitted since the previous
// call and resets the counter (monitor-interval throughput sampling).
func (p *EgressPort) TakeTxDataBytes() int64 {
	v := p.Stats.TxDataBytes
	p.Stats.TxDataBytes = 0
	return v
}

// SendPFC emits a PAUSE or RESUME control frame to the peer. PFC frames
// bypass the queues; they only pay serialization plus propagation.
func (p *EgressPort) SendPFC(pause bool, class int) {
	if p.peer == nil {
		panic("netdev: SendPFC before SetPeer")
	}
	frame := p.pool.Get()
	frame.Kind, frame.WireBytes = KindPFC, CtrlFrameBytes
	frame.Class, frame.Pause, frame.PauseClass = ClassCtrl, pause, class
	p.Stats.PFCSent++
	p.scheduleDelivery(frame, p.serialization(CtrlFrameBytes)+p.prop)
}

// kick starts the transmitter if idle and eligible traffic is queued.
func (p *EgressPort) kick() {
	if p.busy {
		return
	}
	e, class, ok := p.next()
	if !ok {
		return
	}
	p.transmit(e, class)
}

// next picks the highest-priority eligible entry: control first, then
// unpaused data. A down link serves nothing.
func (p *EgressPort) next() (queueEntry, int, bool) {
	if !p.up {
		return queueEntry{}, 0, false
	}
	if !p.paused[ClassCtrl] && !p.queues[ClassCtrl].empty() {
		e, _ := p.queues[ClassCtrl].pop()
		return e, ClassCtrl, true
	}
	if !p.paused[ClassData] && !p.queues[ClassData].empty() {
		e, _ := p.queues[ClassData].pop()
		return e, ClassData, true
	}
	return queueEntry{}, 0, false
}

func (p *EgressPort) transmit(e queueEntry, class int) {
	if p.peer == nil {
		panic("netdev: transmit before SetPeer")
	}
	pkt := e.pkt
	if class == ClassData && p.marker != nil && pkt.Kind != KindPFC {
		// Mark against the depth including the departing packet: the
		// packet experienced this queue.
		depth := p.queues[ClassData].bytes + int64(pkt.WireBytes)
		if prob := p.marker(depth); prob > 0 && p.rng.Float64() < prob {
			pkt.ECNMarked = true
			p.Stats.ECNMarked++
		}
	}
	p.busy = true
	p.inflight = e
	p.inflightCl = class
	// The delivery delay is captured now, not at serialization end, so a
	// degradation fault applied mid-flight leaves this packet's arrival
	// where the pre-change semantics put it.
	p.inflightDl = p.prop + p.extraDelay
	p.txDoneEv = p.eng.RearmAfter(p.txDoneEv, p.serialization(pkt.WireBytes), p.txDoneFn)
}

// txDone is the persistent serialization-complete handler: account the
// departure, hand the packet to the wire, and restart the transmitter.
func (p *EgressPort) txDone() {
	e, class := p.inflight, p.inflightCl
	p.inflight = queueEntry{}
	pkt := e.pkt
	p.Stats.TxPackets++
	p.Stats.TxBytes += int64(pkt.WireBytes)
	if class == ClassData {
		p.Stats.TxDataBytes += int64(pkt.WireBytes)
	}
	p.scheduleDelivery(pkt, p.inflightDl)
	// Clear busy before the departure hook: hosts re-enter their flow
	// scheduler from it and must see the port as free.
	p.busy = false
	if p.onDeparted != nil {
		p.onDeparted(e.pkt, e.inPort)
	}
	p.kick()
}

// scheduleDelivery puts pkt on the wire: after delay it arrives at the
// peer. Slots are recycled, and each slot's closure is built exactly once,
// so the steady-state cost is one event and zero allocations.
func (p *EgressPort) scheduleDelivery(pkt *Packet, delay eventsim.Time) {
	if p.keyBase != 0 {
		key := p.keyBase | uint64(p.emitSeq)
		p.emitSeq++
		if p.remote != nil {
			p.remote(pkt, p.eng.Now()+delay, key)
			return
		}
		slot := p.delivSlot(pkt)
		p.eng.ScheduleKeyed(p.eng.Now()+delay, key, p.deliveries[slot].fn)
		return
	}
	slot := p.delivSlot(pkt)
	p.eng.After(delay, p.deliveries[slot].fn)
}

// delivSlot takes a delivery slot for pkt from the free-list, growing the
// slab (and building the slot's persistent closure) on first use.
func (p *EgressPort) delivSlot(pkt *Packet) int32 {
	slot := p.delivFree
	if slot >= 0 {
		p.delivFree = p.deliveries[slot].next
	} else {
		slot = int32(len(p.deliveries))
		p.deliveries = append(p.deliveries, deliverySlot{})
		i := slot
		p.deliveries[i].fn = func() { p.deliver(i) }
	}
	p.deliveries[slot].pkt = pkt
	return slot
}

// InFlightPackets counts packets this port currently owns: queued in a
// class FIFO, mid-serialization, or crossing the wire in a delivery slot.
// sim.Network sums this over every port to check the packet-pool leak
// invariant Fresh+Recycled == Puts + in-flight.
func (p *EgressPort) InFlightPackets() int {
	n := 0
	for c := range p.queues {
		n += len(p.queues[c].entries) - p.queues[c].head
	}
	if p.inflight.pkt != nil {
		n++
	}
	for i := range p.deliveries {
		if p.deliveries[i].pkt != nil {
			n++
		}
	}
	return n
}

// deliver releases delivery slot i and hands its packet to the peer.
func (p *EgressPort) deliver(i int32) {
	s := &p.deliveries[i]
	pkt := s.pkt
	s.pkt = nil
	s.next = p.delivFree
	p.delivFree = i
	p.peer.Receive(pkt, p.peerPort)
}
