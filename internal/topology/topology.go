// Package topology describes the physical fabric a simulation runs on:
// nodes (hosts and switches), point-to-point links with rate and
// propagation delay, and ECMP routing tables computed over shortest paths.
//
// The package is pure data — it knows nothing about queues, packets, or
// congestion control. internal/netdev and internal/sim instantiate device
// models from these descriptions.
package topology

import (
	"encoding/binary"
	"fmt"

	"repro/internal/eventsim"
)

// NodeID identifies a node within one Topology.
type NodeID int

// Kind distinguishes traffic endpoints from forwarding devices.
type Kind int

const (
	// Host is a server with an RNIC; the source and sink of RDMA flows.
	Host Kind = iota
	// ToRSwitch is a top-of-rack switch: the first hop for hosts and the
	// measurement point where Paraleon's sketches run.
	ToRSwitch
	// LeafSwitch is a second-tier (spine) switch interconnecting ToRs.
	LeafSwitch
)

func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case ToRSwitch:
		return "tor"
	case LeafSwitch:
		return "leaf"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one device in the fabric.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Ports lists this node's attached links; Ports[i] is the link on
	// local port i.
	Ports []LinkID
}

// LinkID identifies a link within one Topology.
type LinkID int

// Link is a full-duplex point-to-point cable between two node ports.
type Link struct {
	ID LinkID
	// A and B are the endpoints; APort/BPort are the port indices on each.
	A, B         NodeID
	APort, BPort int
	// RateBps is the line rate in bits per second (both directions).
	RateBps float64
	// PropDelay is the one-way propagation delay.
	PropDelay eventsim.Time
}

// Peer reports the node on the other end of the link from n, along with
// the remote port index.
func (l *Link) Peer(n NodeID) (NodeID, int) {
	if n == l.A {
		return l.B, l.BPort
	}
	if n == l.B {
		return l.A, l.APort
	}
	panic(fmt.Sprintf("topology: node %d not on link %d", n, l.ID))
}

// Topology is an immutable fabric description plus derived routing state.
type Topology struct {
	Nodes []Node
	Links []Link

	// Routing tables are flat [src*n+dst] arenas rather than nested
	// slices: at thousands of nodes the n² slice headers alone run to
	// hundreds of megabytes and every GC cycle walks them. nhIndex holds
	// 1+index into nhSets (0 = no route / src == dst); the port sets
	// themselves are interned, since a node has only a handful of
	// distinct ECMP groups no matter how many destinations it routes.
	nhIndex []uint32
	// nhSets are the interned next-hop port lists: the local ports at src
	// on a shortest path toward dst, ascending. ECMP picks among them by
	// flow hash; callers must not mutate (sets are shared across pairs).
	nhSets [][]int
	// hopCount[src*n+dst] is the number of links on a shortest path, -1
	// if unreachable.
	hopCount []int32
	// pathDelay[src*n+dst] is the summed propagation delay along a
	// shortest path (Swift-style "base path delay" numerator, before
	// adding serialization).
	pathDelay []eventsim.Time

	hosts []NodeID
}

// AddNode appends a node of the given kind and returns its ID.
func (t *Topology) AddNode(kind Kind, name string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name})
	if kind == Host {
		t.hosts = append(t.hosts, id)
	}
	return id
}

// AddLink connects a and b with a full-duplex link and returns its ID.
// Port numbers are assigned in call order on each node.
func (t *Topology) AddLink(a, b NodeID, rateBps float64, prop eventsim.Time) LinkID {
	if rateBps <= 0 {
		panic("topology: non-positive link rate")
	}
	id := LinkID(len(t.Links))
	na, nb := &t.Nodes[a], &t.Nodes[b]
	l := Link{
		ID: id, A: a, B: b,
		APort: len(na.Ports), BPort: len(nb.Ports),
		RateBps: rateBps, PropDelay: prop,
	}
	t.Links = append(t.Links, l)
	na.Ports = append(na.Ports, id)
	nb.Ports = append(nb.Ports, id)
	t.nhIndex = nil // invalidate routing
	return id
}

// Hosts returns the IDs of all host nodes, in creation order.
func (t *Topology) Hosts() []NodeID { return t.hosts }

// SwitchIDs returns the IDs of all switch nodes (ToR and leaf).
func (t *Topology) SwitchIDs() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind != Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// ToRs returns the IDs of all ToR switches.
func (t *Topology) ToRs() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind == ToRSwitch {
			out = append(out, n.ID)
		}
	}
	return out
}

// ComputeRoutes (re)builds shortest-path ECMP tables for every node pair.
// It must be called after the last AddLink and before NextHops, HopCount,
// or BasePathDelay.
func (t *Topology) ComputeRoutes() {
	n := len(t.Nodes)
	t.nhIndex = make([]uint32, n*n)
	t.hopCount = make([]int32, n*n)
	t.pathDelay = make([]eventsim.Time, n*n)
	t.nhSets = nil

	// setIDs interns the port lists by content: the lookup key is the
	// varint-encoded list, built in a reused buffer (map lookups with a
	// string(bytes) key don't allocate; only the rare insert does).
	setIDs := map[string]uint32{}
	var keyBuf []byte
	var ports []int

	// BFS from every destination over the unweighted link graph; hop
	// count is the routing metric (links are homogeneous within a tier,
	// and DC fabrics route on hops). Propagation delay accumulates along
	// one arbitrary shortest path; with symmetric CLOS wiring all
	// shortest paths have equal delay.
	dist := make([]int32, n)
	delay := make([]eventsim.Time, n)
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = -1
			delay[i] = 0
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, lid := range t.Nodes[cur].Ports {
				l := &t.Links[lid]
				peer, _ := l.Peer(NodeID(cur))
				if dist[peer] == -1 {
					dist[peer] = dist[cur] + 1
					delay[peer] = delay[cur] + l.PropDelay
					queue = append(queue, int32(peer))
				}
			}
		}
		for src := 0; src < n; src++ {
			idx := src*n + dst
			t.hopCount[idx] = dist[src]
			t.pathDelay[idx] = delay[src]
			if src == dst || dist[src] <= 0 {
				continue
			}
			// Ports iterate in ascending index order, so the ECMP set
			// comes out sorted without an explicit sort.
			ports = ports[:0]
			for portIdx, lid := range t.Nodes[src].Ports {
				l := &t.Links[lid]
				peer, _ := l.Peer(NodeID(src))
				if dist[peer] >= 0 && dist[peer] == dist[src]-1 {
					ports = append(ports, portIdx)
				}
			}
			if len(ports) == 0 {
				continue
			}
			keyBuf = keyBuf[:0]
			for _, p := range ports {
				keyBuf = binary.AppendUvarint(keyBuf, uint64(p))
			}
			id, ok := setIDs[string(keyBuf)]
			if !ok {
				t.nhSets = append(t.nhSets, append([]int(nil), ports...))
				id = uint32(len(t.nhSets))
				setIDs[string(keyBuf)] = id
			}
			t.nhIndex[idx] = id
		}
	}
}

// NextHops returns the ECMP port set at src toward dst. Empty means
// unreachable (or src == dst). The slice is shared routing state — do
// not mutate.
func (t *Topology) NextHops(src, dst NodeID) []int {
	t.mustRouted()
	id := t.nhIndex[int(src)*len(t.Nodes)+int(dst)]
	if id == 0 {
		return nil
	}
	return t.nhSets[id-1]
}

// HopCount returns the number of links on a shortest path from src to dst,
// or -1 if unreachable.
func (t *Topology) HopCount(src, dst NodeID) int {
	t.mustRouted()
	return int(t.hopCount[int(src)*len(t.Nodes)+int(dst)])
}

// BasePathDelay returns the summed one-way propagation delay on a shortest
// path from src to dst. This is the n·d term of Swift's base path delay
// used to normalize RTT in the Paraleon utility function.
func (t *Topology) BasePathDelay(src, dst NodeID) eventsim.Time {
	t.mustRouted()
	return t.pathDelay[int(src)*len(t.Nodes)+int(dst)]
}

func (t *Topology) mustRouted() {
	if t.nhIndex == nil {
		panic("topology: ComputeRoutes not called (or topology modified since)")
	}
}

// LinkAt returns the link attached to the given local port of node n.
func (t *Topology) LinkAt(n NodeID, port int) *Link {
	return &t.Links[t.Nodes[n].Ports[port]]
}

// ClosConfig parameterizes a two-tier CLOS fabric: hostsPerToR hosts under
// each of NumToR ToR switches, with every ToR wired to every one of
// NumLeaf leaf switches.
type ClosConfig struct {
	NumToR      int
	NumLeaf     int
	HostsPerToR int
	// HostLinkBps and FabricLinkBps are the line rates of host↔ToR and
	// ToR↔leaf links. With equal rates the over-subscription ratio is
	// HostsPerToR : NumLeaf.
	HostLinkBps   float64
	FabricLinkBps float64
	// PropDelay is the one-way propagation delay of every link.
	PropDelay eventsim.Time
}

// Validate reports whether the configuration is structurally sound.
func (c ClosConfig) Validate() error {
	switch {
	case c.NumToR <= 0:
		return fmt.Errorf("clos: NumToR = %d, need > 0", c.NumToR)
	case c.NumLeaf < 0:
		return fmt.Errorf("clos: NumLeaf = %d, need >= 0", c.NumLeaf)
	case c.NumLeaf == 0 && c.NumToR > 1:
		return fmt.Errorf("clos: %d ToRs but no leaves to connect them", c.NumToR)
	case c.HostsPerToR <= 0:
		return fmt.Errorf("clos: HostsPerToR = %d, need > 0", c.HostsPerToR)
	case c.HostLinkBps <= 0 || (c.FabricLinkBps <= 0 && c.NumLeaf > 0):
		return fmt.Errorf("clos: non-positive link rate")
	case c.PropDelay < 0:
		return fmt.Errorf("clos: negative propagation delay")
	}
	return nil
}

// Oversubscription reports the ToR downlink:uplink capacity ratio.
func (c ClosConfig) Oversubscription() float64 {
	if c.NumLeaf == 0 {
		return 0
	}
	return (float64(c.HostsPerToR) * c.HostLinkBps) / (float64(c.NumLeaf) * c.FabricLinkBps)
}

// PaperClosConfig is the NS-3 topology from §IV-B: 8 ToRs, 4 leaves,
// 128 servers, all links 100 Gbps with 5 µs propagation delay (4:1
// over-subscribed).
func PaperClosConfig() ClosConfig {
	return ClosConfig{
		NumToR:        8,
		NumLeaf:       4,
		HostsPerToR:   16,
		HostLinkBps:   100e9,
		FabricLinkBps: 100e9,
		PropDelay:     5 * eventsim.Microsecond,
	}
}

// NewClos builds a two-tier CLOS per cfg, computes routes, and returns the
// topology. Host i lives under ToR i/HostsPerToR.
func NewClos(cfg ClosConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{}
	tors := make([]NodeID, cfg.NumToR)
	for i := range tors {
		tors[i] = t.AddNode(ToRSwitch, fmt.Sprintf("tor%d", i))
	}
	leaves := make([]NodeID, cfg.NumLeaf)
	for i := range leaves {
		leaves[i] = t.AddNode(LeafSwitch, fmt.Sprintf("leaf%d", i))
	}
	for ti, tor := range tors {
		for hi := 0; hi < cfg.HostsPerToR; hi++ {
			h := t.AddNode(Host, fmt.Sprintf("h%d", ti*cfg.HostsPerToR+hi))
			t.AddLink(h, tor, cfg.HostLinkBps, cfg.PropDelay)
		}
		for _, leaf := range leaves {
			t.AddLink(tor, leaf, cfg.FabricLinkBps, cfg.PropDelay)
		}
	}
	t.ComputeRoutes()
	return t, nil
}

// PodPartition splits the fabric into at most want shards along pod
// boundaries and returns the node→shard assignment plus the number of
// shards actually used. A pod — one ToR and the hosts under it — never
// splits: its intra-pod links are the hottest (host↔ToR), so keeping them
// shard-local minimizes cross-shard handoffs. Pods and leaf switches
// distribute round-robin in ID order. want is clamped to [1, #ToRs]; the
// result is a pure function of the topology and want, which the sharded
// runtime's determinism contract depends on.
func (t *Topology) PodPartition(want int) ([]int, int) {
	tors := t.ToRs()
	n := want
	if n < 1 {
		n = 1
	}
	if len(tors) > 0 && n > len(tors) {
		n = len(tors)
	}
	part := make([]int, len(t.Nodes))
	for i := range part {
		part[i] = 0
	}
	for i, tor := range tors {
		part[tor] = i % n
	}
	leaf := 0
	for _, node := range t.Nodes {
		switch node.Kind {
		case Host:
			if tor := t.ToROf(node.ID); tor >= 0 {
				part[node.ID] = part[tor]
			}
		case LeafSwitch:
			part[node.ID] = leaf % n
			leaf++
		}
	}
	return part, n
}

// MinPropDelay reports the smallest link propagation delay in the fabric,
// or 0 for a linkless topology. This is the sharded runtime's lookahead:
// no influence crosses any link — shard boundary or not — faster than
// this, and using the fabric-wide minimum (rather than the cross-shard
// minimum) keeps window boundaries identical across shard counts.
func (t *Topology) MinPropDelay() eventsim.Time {
	var min eventsim.Time
	for i := range t.Links {
		if d := t.Links[i].PropDelay; i == 0 || d < min {
			min = d
		}
	}
	return min
}

// ToROf returns the ToR switch a host hangs off, or -1 if n is not a host
// or has no switch neighbor.
func (t *Topology) ToROf(n NodeID) NodeID {
	if t.Nodes[n].Kind != Host {
		return -1
	}
	for _, lid := range t.Nodes[n].Ports {
		peer, _ := t.Links[lid].Peer(n)
		if t.Nodes[peer].Kind == ToRSwitch {
			return peer
		}
	}
	return -1
}
