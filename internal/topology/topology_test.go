package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
)

func smallClos(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewClos(ClosConfig{
		NumToR: 4, NumLeaf: 2, HostsPerToR: 4,
		HostLinkBps: 100e9, FabricLinkBps: 100e9,
		PropDelay: 5 * eventsim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestClosNodeAndLinkCounts(t *testing.T) {
	topo := smallClos(t)
	wantNodes := 4 + 2 + 16 // tors + leaves + hosts
	if len(topo.Nodes) != wantNodes {
		t.Errorf("nodes = %d, want %d", len(topo.Nodes), wantNodes)
	}
	wantLinks := 16 + 4*2 // host links + fabric links
	if len(topo.Links) != wantLinks {
		t.Errorf("links = %d, want %d", len(topo.Links), wantLinks)
	}
	if len(topo.Hosts()) != 16 {
		t.Errorf("hosts = %d, want 16", len(topo.Hosts()))
	}
	if got := len(topo.ToRs()); got != 4 {
		t.Errorf("tors = %d, want 4", got)
	}
	if got := len(topo.SwitchIDs()); got != 6 {
		t.Errorf("switches = %d, want 6", got)
	}
}

func TestPaperClosConfig(t *testing.T) {
	cfg := PaperClosConfig()
	if cfg.Oversubscription() != 4 {
		t.Errorf("paper oversubscription = %v, want 4", cfg.Oversubscription())
	}
	topo, err := NewClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Hosts()) != 128 {
		t.Errorf("paper hosts = %d, want 128", len(topo.Hosts()))
	}
	if got := len(topo.SwitchIDs()); got != 12 {
		t.Errorf("paper switches = %d, want 12", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []ClosConfig{
		{NumToR: 0, NumLeaf: 1, HostsPerToR: 1, HostLinkBps: 1, FabricLinkBps: 1},
		{NumToR: 2, NumLeaf: 0, HostsPerToR: 1, HostLinkBps: 1, FabricLinkBps: 1},
		{NumToR: 1, NumLeaf: 1, HostsPerToR: 0, HostLinkBps: 1, FabricLinkBps: 1},
		{NumToR: 1, NumLeaf: 1, HostsPerToR: 1, HostLinkBps: 0, FabricLinkBps: 1},
		{NumToR: 1, NumLeaf: 1, HostsPerToR: 1, HostLinkBps: 1, FabricLinkBps: 1, PropDelay: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated, want error", i)
		}
	}
	single := ClosConfig{NumToR: 1, NumLeaf: 0, HostsPerToR: 4, HostLinkBps: 1e9}
	if err := single.Validate(); err != nil {
		t.Errorf("single-rack config rejected: %v", err)
	}
}

func TestIntraRackRouting(t *testing.T) {
	topo := smallClos(t)
	hosts := topo.Hosts()
	h0, h1 := hosts[0], hosts[1] // same rack
	if hops := topo.HopCount(h0, h1); hops != 2 {
		t.Errorf("intra-rack hop count = %d, want 2", hops)
	}
	tor := topo.ToROf(h0)
	nh := topo.NextHops(h0, h1)
	if len(nh) != 1 {
		t.Fatalf("host next hops = %v, want exactly 1", nh)
	}
	l := topo.LinkAt(h0, nh[0])
	peer, _ := l.Peer(h0)
	if peer != tor {
		t.Errorf("host next hop leads to %v, want its ToR %v", peer, tor)
	}
	// ToR must deliver directly to the destination host.
	nhTor := topo.NextHops(tor, h1)
	if len(nhTor) != 1 {
		t.Fatalf("tor next hops to local host = %v, want 1", nhTor)
	}
	lt := topo.LinkAt(tor, nhTor[0])
	if p, _ := lt.Peer(tor); p != h1 {
		t.Errorf("tor next hop leads to %v, want host %v", p, h1)
	}
}

func TestInterRackECMP(t *testing.T) {
	topo := smallClos(t)
	hosts := topo.Hosts()
	h0, h5 := hosts[0], hosts[5] // different racks (4 hosts per rack)
	if hops := topo.HopCount(h0, h5); hops != 4 {
		t.Errorf("inter-rack hop count = %d, want 4 (host-tor-leaf-tor-host)", hops)
	}
	tor := topo.ToROf(h0)
	nh := topo.NextHops(tor, h5)
	if len(nh) != 2 {
		t.Errorf("tor ECMP set = %v, want 2 uplinks (one per leaf)", nh)
	}
	for _, port := range nh {
		l := topo.LinkAt(tor, port)
		peer, _ := l.Peer(tor)
		if topo.Nodes[peer].Kind != LeafSwitch {
			t.Errorf("ECMP port %d leads to %v, want a leaf", port, topo.Nodes[peer].Kind)
		}
	}
}

func TestBasePathDelay(t *testing.T) {
	topo := smallClos(t)
	hosts := topo.Hosts()
	prop := 5 * eventsim.Microsecond
	if d := topo.BasePathDelay(hosts[0], hosts[1]); d != 2*prop {
		t.Errorf("intra-rack base delay = %v, want %v", d, 2*prop)
	}
	if d := topo.BasePathDelay(hosts[0], hosts[5]); d != 4*prop {
		t.Errorf("inter-rack base delay = %v, want %v", d, 4*prop)
	}
	if d := topo.BasePathDelay(hosts[0], hosts[0]); d != 0 {
		t.Errorf("self base delay = %v, want 0", d)
	}
}

func TestToROf(t *testing.T) {
	topo := smallClos(t)
	hosts := topo.Hosts()
	tors := topo.ToRs()
	for i, h := range hosts {
		want := tors[i/4]
		if got := topo.ToROf(h); got != want {
			t.Errorf("ToROf(host %d) = %v, want %v", i, got, want)
		}
	}
	if got := topo.ToROf(tors[0]); got != -1 {
		t.Errorf("ToROf(switch) = %v, want -1", got)
	}
}

func TestLinkPeer(t *testing.T) {
	topo := smallClos(t)
	l := &topo.Links[0]
	pa, _ := l.Peer(l.A)
	pb, _ := l.Peer(l.B)
	if pa != l.B || pb != l.A {
		t.Errorf("Peer mismatch: %v/%v for link %v-%v", pa, pb, l.A, l.B)
	}
	defer func() {
		if recover() == nil {
			t.Error("Peer with foreign node did not panic")
		}
	}()
	// A node certainly not on link 0 (the last leaf).
	l.Peer(topo.SwitchIDs()[5])
}

func TestRoutesInvalidatedByAddLink(t *testing.T) {
	topo := smallClos(t)
	topo.AddNode(Host, "extra")
	topo.AddLink(topo.Hosts()[len(topo.Hosts())-1], topo.ToRs()[0], 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("routing query after topology change did not panic")
		}
	}()
	topo.NextHops(0, 1)
}

// Property: in any valid CLOS, every host pair is mutually reachable with
// symmetric hop counts, and ECMP sets at a ToR toward a remote rack have
// exactly NumLeaf entries.
func TestQuickClosReachability(t *testing.T) {
	f := func(nt, nl, hp uint8) bool {
		cfg := ClosConfig{
			NumToR:      int(nt%4) + 1,
			NumLeaf:     int(nl%3) + 1,
			HostsPerToR: int(hp%4) + 1,
			HostLinkBps: 100e9, FabricLinkBps: 100e9,
			PropDelay: eventsim.Microsecond,
		}
		topo, err := NewClos(cfg)
		if err != nil {
			return false
		}
		hosts := topo.Hosts()
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				if topo.HopCount(a, b) <= 0 {
					return false
				}
				if topo.HopCount(a, b) != topo.HopCount(b, a) {
					return false
				}
				if len(topo.NextHops(a, b)) == 0 {
					return false
				}
			}
		}
		if cfg.NumToR > 1 {
			tors := topo.ToRs()
			// Last host is always in the last rack.
			remote := hosts[len(hosts)-1]
			if got := len(topo.NextHops(tors[0], remote)); got != cfg.NumLeaf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
