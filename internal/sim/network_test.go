package sim

import (
	"strings"
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/topology"
)

func build(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSingleFlowCompletesNearIdeal(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	size := int64(1 << 20) // 1 MB
	n.StartFlow(hosts[0], hosts[1], size)
	n.RunUntilIdle(eventsim.Second)
	if len(n.Completed) != 1 {
		t.Fatalf("completed %d flows, want 1", len(n.Completed))
	}
	rec := n.Completed[0]
	ideal := n.IdealFCT(hosts[0], hosts[1], size)
	if rec.FCT() < ideal {
		t.Errorf("FCT %v below ideal %v — physics violation", rec.FCT(), ideal)
	}
	// An uncontended flow should finish within a few percent of ideal.
	if float64(rec.FCT()) > 1.10*float64(ideal) {
		t.Errorf("uncontended FCT %v, want within 10%% of ideal %v", rec.FCT(), ideal)
	}
}

func TestCrossRackFlow(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	src, dst := hosts[0], hosts[7] // different racks (4 per rack)
	n.StartFlow(src, dst, 512<<10)
	n.RunUntilIdle(eventsim.Second)
	if len(n.Completed) != 1 {
		t.Fatalf("cross-rack flow did not complete")
	}
	if n.Completed[0].Src != src || n.Completed[0].Dst != dst {
		t.Errorf("record endpoints %v→%v, want %v→%v", n.Completed[0].Src, n.Completed[0].Dst, src, dst)
	}
}

func TestBidirectionalFlows(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[1], 256<<10)
	n.StartFlow(hosts[1], hosts[0], 256<<10)
	n.RunUntilIdle(eventsim.Second)
	if len(n.Completed) != 2 {
		t.Fatalf("completed %d flows, want 2", len(n.Completed))
	}
}

func TestIncastTriggersCongestionControl(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	// 3-to-1 incast within a rack onto hosts[0].
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 4<<20)
	}
	n.RunUntilIdle(2 * eventsim.Second)
	if len(n.Completed) != 3 {
		t.Fatalf("completed %d flows, want 3", len(n.Completed))
	}
	var cnps int64
	for _, h := range n.Hosts {
		cnps += h.Stats.CNPsSent
	}
	if cnps == 0 {
		t.Error("3:1 incast produced no CNPs — ECN/NP path broken")
	}
	var marked int64
	for _, sw := range n.Switches {
		for i := 0; i < sw.NumPorts(); i++ {
			marked += sw.Port(i).Stats.ECNMarked
		}
	}
	if marked == 0 {
		t.Error("no ECN marks at any switch under incast")
	}
}

func TestIncastFairness(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	for i := 1; i <= 3; i++ {
		n.StartFlow(hosts[i], hosts[0], 4<<20)
	}
	n.RunUntilIdle(2 * eventsim.Second)
	// DCQCN shares the bottleneck: the three same-size FCTs must be
	// within ~2.5x of each other (AIMD fairness is approximate).
	var min, max eventsim.Time
	for i, rec := range n.Completed {
		fct := rec.FCT()
		if i == 0 || fct < min {
			min = fct
		}
		if fct > max {
			max = fct
		}
	}
	if float64(max) > 2.5*float64(min) {
		t.Errorf("incast FCT spread too wide: min %v max %v", min, max)
	}
}

func TestNoDropsUnderIncast(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	for i := 1; i < 8; i++ {
		n.StartFlow(hosts[i], hosts[0], 2<<20)
	}
	n.RunUntilIdle(4 * eventsim.Second)
	for _, sw := range n.Switches {
		if sw.Stats.Drops != 0 {
			t.Errorf("switch %d dropped %d packets — PFC failed to keep fabric lossless", sw.NodeID(), sw.Stats.Drops)
		}
	}
	if len(n.Completed) != 7 {
		t.Errorf("completed %d flows, want 7", len(n.Completed))
	}
}

func TestSevereIncastTriggersPFC(t *testing.T) {
	cfg := DefaultConfig()
	// Small buffer and tall ECN thresholds force PFC before ECN bites.
	cfg.Switch.BufferBytes = 300 << 10
	cfg.Params.KminBytes = 200 << 10
	cfg.Params.KmaxBytes = 260 << 10
	n := build(t, cfg)
	hosts := n.Topo.Hosts()
	for i := 1; i < 8; i++ {
		n.StartFlow(hosts[i], hosts[0], 1<<20)
	}
	n.RunUntilIdle(4 * eventsim.Second)
	var pfc int64
	for _, sw := range n.Switches {
		pfc += sw.Stats.PFCTriggers
	}
	if pfc == 0 {
		t.Error("severe incast with small buffer triggered no PFC")
	}
	for _, sw := range n.Switches {
		if sw.Stats.Drops != 0 {
			t.Errorf("drops despite PFC: %d", sw.Stats.Drops)
		}
	}
}

func TestApplyParamsReachesAllDevices(t *testing.T) {
	n := build(t, DefaultConfig())
	p := dcqcn.ExpertParams()
	n.ApplyParams(p)
	if n.RNICParams().AIRateBps != p.AIRateBps {
		t.Error("RNIC params not applied")
	}
	for _, sn := range n.Topo.SwitchIDs() {
		if n.SwitchParams(sn).KminBytes != p.KminBytes {
			t.Errorf("switch %d params not applied", sn)
		}
	}
}

func TestApplySwitchECNIsLocal(t *testing.T) {
	n := build(t, DefaultConfig())
	sws := n.Topo.SwitchIDs()
	n.ApplySwitchECN(sws[0], 111, 222, 0.33)
	if p := n.SwitchParams(sws[0]); p.KminBytes != 111 || p.KmaxBytes != 222 || p.PMax != 0.33 {
		t.Error("target switch ECN not applied")
	}
	if p := n.SwitchParams(sws[1]); p.KminBytes == 111 {
		t.Error("ECN change leaked to another switch")
	}
}

func TestLiveRetuningChangesBehaviour(t *testing.T) {
	// The same incast under throughput-hostile retuning mid-flight must
	// produce more CNPs than an untouched run.
	run := func(retune bool) int64 {
		n := build(t, DefaultConfig())
		hosts := n.Topo.Hosts()
		for i := 1; i <= 3; i++ {
			n.StartFlow(hosts[i], hosts[0], 4<<20)
		}
		if retune {
			n.Eng.Schedule(eventsim.Millisecond, func() {
				p := *n.RNICParams()
				p.KminBytes = 5 << 10
				p.KmaxBytes = 20 << 10
				p.PMax = 1
				p.MinTimeBetweenCNPs = 0
				n.ApplyParams(p)
			})
		}
		n.RunUntilIdle(2 * eventsim.Second)
		var cnps int64
		for _, h := range n.Hosts {
			cnps += h.Stats.CNPsSent
		}
		return cnps
	}
	base, tuned := run(false), run(true)
	if tuned <= base {
		t.Errorf("aggressive marking mid-run gave %d CNPs vs %d baseline; live retuning ineffective", tuned, base)
	}
}

func TestStartFlowAt(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	n.StartFlowAt(5*eventsim.Millisecond, hosts[0], hosts[1], 100<<10)
	n.RunUntilIdle(eventsim.Second)
	if len(n.Completed) != 1 {
		t.Fatal("scheduled flow did not complete")
	}
	if n.Completed[0].Start != 5*eventsim.Millisecond {
		t.Errorf("flow started at %v, want 5ms", n.Completed[0].Start)
	}
}

func TestOnFlowCompleteHook(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	var hooked []uint64
	n.OnFlowComplete = func(r FlowRecord) { hooked = append(hooked, r.ID) }
	id := n.StartFlow(hosts[0], hosts[1], 64<<10)
	n.RunUntilIdle(eventsim.Second)
	if len(hooked) != 1 || hooked[0] != id {
		t.Errorf("hook saw %v, want [%d]", hooked, id)
	}
}

func TestRTTProbing(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	h := n.Host(hosts[0])
	n.StartFlow(hosts[0], hosts[5], 8<<20)
	h.StartProbing(200 * eventsim.Microsecond)
	n.Run(5 * eventsim.Millisecond)
	sum, count := h.TakeRTT()
	if count == 0 {
		t.Fatal("no RTT samples collected")
	}
	avg := sum / float64(count)
	if avg <= 0 || avg > 1 {
		t.Errorf("normalized RTT %g outside (0,1]", avg)
	}
	// Second take must be (near) empty after reset unless new samples came.
	h.StopProbing()
	sum2, count2 := h.TakeRTT()
	if count2 != 0 || sum2 != 0 {
		t.Errorf("TakeRTT did not reset: %g/%d", sum2, count2)
	}
}

func TestProbeRTTReflectsCongestion(t *testing.T) {
	// Normalized RTT (base/runtime) must degrade under incast vs idle.
	measure := func(congest bool) float64 {
		n := build(t, DefaultConfig())
		hosts := n.Topo.Hosts()
		n.StartFlow(hosts[1], hosts[0], 16<<20)
		if congest {
			for i := 2; i <= 5; i++ {
				n.StartFlow(hosts[i], hosts[0], 16<<20)
			}
		}
		h := n.Host(hosts[1])
		h.StartProbing(100 * eventsim.Microsecond)
		n.Run(10 * eventsim.Millisecond)
		sum, count := h.TakeRTT()
		if count == 0 {
			t.Fatal("no samples")
		}
		return sum / float64(count)
	}
	idle, congested := measure(false), measure(true)
	if congested >= idle {
		t.Errorf("normalized RTT under congestion %g >= idle %g; probes blind to queueing", congested, idle)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []eventsim.Time {
		n := build(t, DefaultConfig())
		hosts := n.Topo.Hosts()
		for i := 1; i <= 4; i++ {
			n.StartFlow(hosts[i], hosts[0], 1<<20)
		}
		n.RunUntilIdle(2 * eventsim.Second)
		var fcts []eventsim.Time
		for _, r := range n.Completed {
			fcts = append(fcts, r.FCT())
		}
		return fcts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different completion counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExpertVsDefaultOnAlltoall(t *testing.T) {
	// The Table II direction at small scale: the expert setting's higher
	// ECN thresholds and gentler cut cadence yield strictly less
	// congestion signaling with no loss of alltoall makespan.
	run := func(p dcqcn.Params) (makespan eventsim.Time, cnps int64) {
		cfg := DefaultConfig()
		// 4:1 over-subscribed fabric (paper's simulation ratio) so the
		// alltoall's cross-rack traffic actually contends.
		cfg.Clos.FabricLinkBps = 10e9
		cfg.Params = p
		n := build(t, cfg)
		hosts := n.Topo.Hosts()
		k := 6
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j {
					n.StartFlow(hosts[i], hosts[j], 1<<20)
				}
			}
		}
		n.RunUntilIdle(10 * eventsim.Second)
		if len(n.Completed) != k*(k-1) {
			t.Fatalf("only %d/%d flows completed", len(n.Completed), k*(k-1))
		}
		for _, rec := range n.Completed {
			if rec.End > makespan {
				makespan = rec.End
			}
		}
		for _, h := range n.Hosts {
			cnps += h.Stats.CNPsSent
		}
		return makespan, cnps
	}
	defaultTime, defaultCNPs := run(dcqcn.DefaultParams())
	expertTime, expertCNPs := run(dcqcn.ExpertParams())
	if expertCNPs >= defaultCNPs {
		t.Errorf("expert produced %d CNPs vs default %d; higher thresholds should mark less", expertCNPs, defaultCNPs)
	}
	if float64(expertTime) > 1.05*float64(defaultTime) {
		t.Errorf("expert makespan %v materially worse than default %v", expertTime, defaultTime)
	}
}

func TestIdealFCT(t *testing.T) {
	n := build(t, DefaultConfig())
	hosts := n.Topo.Hosts()
	got := n.IdealFCT(hosts[0], hosts[1], 1000)
	// 1 packet: 1048 bytes at 10 Gbps = 838.4 ns, plus 2×2 µs base delay.
	serNanos := float64(1048*8) / 10e9 * 1e9
	ser := eventsim.Time(serNanos)
	want := ser + 4*eventsim.Microsecond
	if got != want {
		t.Errorf("IdealFCT = %v, want %v", got, want)
	}
}

func TestFlowToSelfPanics(t *testing.T) {
	n := build(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("flow to self did not panic")
		}
	}()
	n.StartFlow(n.Topo.Hosts()[0], n.Topo.Hosts()[0], 1000)
}

func TestPaperScaleTopologyBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build skipped in -short")
	}
	cfg := DefaultConfig()
	cfg.Clos = topology.PaperClosConfig()
	n := build(t, cfg)
	if len(n.Hosts) != 128 || len(n.Switches) != 12 {
		t.Fatalf("paper fabric: %d hosts, %d switches", len(n.Hosts), len(n.Switches))
	}
	// A couple of flows across the big fabric still complete.
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[127], 1<<20)
	n.StartFlow(hosts[64], hosts[3], 1<<20)
	n.RunUntilIdle(eventsim.Second)
	if len(n.Completed) != 2 {
		t.Errorf("completed %d flows on paper fabric, want 2", len(n.Completed))
	}
}

func TestApplySwitchECNUnknownNodePanics(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	host := n.Topo.Hosts()[0]
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ApplySwitchECN on a host node did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "not a switch") {
			t.Fatalf("panic %v does not explain the bad node", r)
		}
	}()
	n.ApplySwitchECN(host, 1<<10, 1<<20, 0.5)
}

func TestApplySwitchECNUpdatesSwitch(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := n.Topo.SwitchIDs()[0]
	n.ApplySwitchECN(sw, 1<<10, 1<<20, 0.5)
	sp := n.SwitchParams(sw)
	if sp.KminBytes != 1<<10 || sp.KmaxBytes != 1<<20 || sp.PMax != 0.5 {
		t.Errorf("switch params not updated: %+v", sp)
	}
}
