package sim

import (
	"fmt"
	"sort"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/eventsim/shard"
	"repro/internal/netdev"
	"repro/internal/rnic"
	"repro/internal/topology"
)

// shardRuntime is the sharded execution state of a Network built with
// Config.Shards > 0: one engine and packet pool per ToR-pod shard, the
// cross-shard handoff queues, and the deferred flow-completion buffers.
// The coordinator (internal/eventsim/shard) drives the window loop; this
// type supplies the fabric-specific barrier work.
type shardRuntime struct {
	n       *Network
	coord   *shard.Coordinator
	engines []*eventsim.Engine
	pools   []*netdev.PacketPool
	part    []int
	nshards int

	// out[s] is shard s's outbox: packets that left a cross-shard port
	// during the current window. Appended only by shard s's worker,
	// drained only by the coordinator at the barrier — no lock needed.
	out     [][]handoff
	inboxes []*inbox
	sorted  []handoff // barrier merge scratch

	// deferred[s] buffers flow completions raised on shard s during a
	// window. Completion hooks are global (they may start flows on other
	// shards, append to Network.Completed, write traces), so they run on
	// the coordinator thread at the completion's exact virtual time.
	deferred [][]FlowRecord
}

// handoff is one packet crossing a shard boundary: where it is going
// (inbox), when it arrives, and its structural ordering key.
type handoff struct {
	pkt   *netdev.Packet
	at    eventsim.Time
	key   uint64
	inbox int32
}

// inbox is the receiving end of one cross-shard link direction. Its slot
// slab mirrors netdev's delivery slab: persistent closures so injecting a
// handoff costs one event and no allocation in steady state.
type inbox struct {
	eng   *eventsim.Engine
	dev   netdev.Device
	port  int
	slots []inboxSlot
	free  int32
}

type inboxSlot struct {
	pkt  *netdev.Packet
	next int32
	fn   eventsim.Handler
}

func (b *inbox) inject(pkt *netdev.Packet, at eventsim.Time, key uint64) {
	slot := b.free
	if slot >= 0 {
		b.free = b.slots[slot].next
	} else {
		slot = int32(len(b.slots))
		b.slots = append(b.slots, inboxSlot{})
		i := slot
		b.slots[i].fn = func() { b.deliver(i) }
	}
	b.slots[slot].pkt = pkt
	b.eng.ScheduleKeyed(at, key, b.slots[slot].fn)
}

func (b *inbox) deliver(i int32) {
	s := &b.slots[i]
	pkt := s.pkt
	s.pkt = nil
	s.next = b.free
	b.free = i
	b.dev.Receive(pkt, b.port)
}

// inFlight counts packets injected but not yet delivered (pool-leak
// accounting).
func (b *inbox) inFlight() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].pkt != nil {
			n++
		}
	}
	return n
}

// buildSharded constructs the sharded form of the network: called by New
// once the topology, parameter maps, and global engine (n.Eng) exist.
func (n *Network) buildSharded() error {
	topo, cfg := n.Topo, n.cfg
	w := topo.MinPropDelay()
	if w <= 0 {
		return fmt.Errorf("sim: sharded mode needs positive link propagation delay for lookahead, have %v", w)
	}
	part, nshards := topo.PodPartition(cfg.Shards)
	rt := &shardRuntime{
		n: n, part: part, nshards: nshards,
		engines:  make([]*eventsim.Engine, nshards),
		pools:    make([]*netdev.PacketPool, nshards),
		out:      make([][]handoff, nshards),
		deferred: make([][]FlowRecord, nshards),
	}
	for s := 0; s < nshards; s++ {
		// The shard engines' master rand streams are never drawn — every
		// device stream comes from the global engine — so these seeds only
		// need to exist, not to match anything.
		rt.engines[s] = eventsim.NewEngine(cfg.Seed + int64(s) + 1)
		if cfg.HeapOnlyTimers {
			rt.engines[s].SetWheelEnabled(false)
		}
		rt.pools[s] = netdev.NewPacketPool()
	}
	n.shard = rt

	// Build devices in the exact order the single-engine path does
	// (switches in SwitchIDs order, then hosts in Hosts order), drawing
	// their random streams from the global engine: the draw sequence — and
	// therefore every ECN coin flip — is identical for any shard count.
	for _, sn := range topo.SwitchIDs() {
		sp := cfg.Params
		spp := &sp
		n.switchParams[sn] = spp
		sw := netdev.NewSwitchSeeded(rt.engines[part[sn]], n.Eng, topo, sn, cfg.Switch, func() *dcqcn.Params { return spp })
		sw.SetPacketPool(rt.pools[part[sn]])
		n.Switches = append(n.Switches, sw)
		n.switchByNode[sn] = sw
	}
	for _, hn := range topo.Hosts() {
		hn := hn
		s := part[hn]
		h := rnic.NewHostSeeded(rt.engines[s], n.Eng, topo, hn, func() *dcqcn.Params {
			if p := n.hostParams[hn]; p != nil {
				return p
			}
			return n.rnicParams
		}, func(id uint64, src, dst topology.NodeID, size int64, start, end eventsim.Time) {
			rt.deferred[s] = append(rt.deferred[s], FlowRecord{ID: id, Src: src, Dst: dst, Size: size, Start: start, End: end})
		})
		if cfg.MTU > 0 {
			h.SetMTU(cfg.MTU)
		}
		h.SetTimerSuppression(cfg.SuppressQuiescentTimers)
		h.SetPacketPool(rt.pools[s])
		n.Hosts = append(n.Hosts, h)
		n.hostByNode[hn] = h
	}

	// Wire links. Every port gets keyed deliveries — same-timestamp
	// arrival order must be structural even within a shard, or shards=1
	// and shards=N would tie-break differently. Cross-shard ports
	// additionally divert deliveries into their shard's outbox.
	for i := range topo.Links {
		l := &topo.Links[i]
		devA, portA := n.devicePort(l.A, l.APort)
		devB, portB := n.devicePort(l.B, l.BPort)
		portA.SetPeer(devB, l.BPort)
		portB.SetPeer(devA, l.APort)
		portA.SetDeliveryKeying(l.A, l.APort)
		portB.SetDeliveryKeying(l.B, l.BPort)
		if part[l.A] != part[l.B] {
			rt.wireRemote(portA, part[l.A], part[l.B], devB, l.BPort)
			rt.wireRemote(portB, part[l.B], part[l.A], devA, l.APort)
		}
	}

	rt.coord = shard.New(n.Eng, rt.engines, w, rt.barrier)
	return nil
}

// wireRemote points a cross-shard egress port at its shard's outbox and
// registers the destination-side inbox.
func (rt *shardRuntime) wireRemote(src *netdev.EgressPort, srcShard, dstShard int, dev netdev.Device, port int) {
	b := &inbox{eng: rt.engines[dstShard], dev: dev, port: port, free: -1}
	idx := int32(len(rt.inboxes))
	rt.inboxes = append(rt.inboxes, b)
	src.SetRemoteHandoff(func(pkt *netdev.Packet, at eventsim.Time, key uint64) {
		rt.out[srcShard] = append(rt.out[srcShard], handoff{pkt: pkt, at: at, key: key, inbox: idx})
	})
}

// barrier runs at every window boundary with all shard workers parked:
// merge the window's cross-shard handoffs in structural order and inject
// them into their destination engines, then schedule the window's
// deferred flow completions onto the global engine at their exact end
// times (merged by (End, flow ID) so the order is shard-count-invariant).
func (rt *shardRuntime) barrier() {
	rt.sorted = rt.sorted[:0]
	for s := range rt.out {
		rt.sorted = append(rt.sorted, rt.out[s]...)
		rt.out[s] = rt.out[s][:0]
	}
	if len(rt.sorted) > 0 {
		sort.Slice(rt.sorted, func(i, j int) bool {
			a, b := &rt.sorted[i], &rt.sorted[j]
			if a.at != b.at {
				return a.at < b.at
			}
			return a.key < b.key
		})
		for i := range rt.sorted {
			h := &rt.sorted[i]
			rt.inboxes[h.inbox].inject(h.pkt, h.at, h.key)
			h.pkt = nil
		}
	}

	count := 0
	for s := range rt.deferred {
		count += len(rt.deferred[s])
	}
	if count == 0 {
		return
	}
	recs := make([]FlowRecord, 0, count)
	for s := range rt.deferred {
		recs = append(recs, rt.deferred[s]...)
		rt.deferred[s] = rt.deferred[s][:0]
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].End != recs[j].End {
			return recs[i].End < recs[j].End
		}
		return recs[i].ID < recs[j].ID
	})
	for _, rec := range recs {
		rec := rec
		rt.n.Eng.Schedule(rec.End, func() { rt.n.deliverCompletion(rec) })
	}
}

// outstanding counts packets held by the shard machinery itself: sitting
// in an outbox awaiting the barrier, or injected into an inbox slot but
// not yet delivered.
func (rt *shardRuntime) outstanding() int {
	total := 0
	for s := range rt.out {
		total += len(rt.out[s])
	}
	for _, b := range rt.inboxes {
		total += b.inFlight()
	}
	return total
}
