package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// shardTestConfig is a 4-pod fabric small enough to run in milliseconds
// but with real cross-shard traffic through the leaf tier.
func shardTestConfig(shards int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 4, NumLeaf: 2, HostsPerToR: 4,
		HostLinkBps: 10e9, FabricLinkBps: 40e9,
		PropDelay: 2 * eventsim.Microsecond,
	}
	cfg.Seed = 7
	cfg.Shards = shards
	return cfg
}

// installCrossShardWorkload pre-schedules a randomized workload from a
// fixed seed: bursts of flows whose endpoints land in different pods, so
// with 4 shards nearly every flow crosses a boundary. Pre-scheduled (no
// completion-hook chaining) so the same schedule replays exactly on the
// legacy single-engine path too.
func installCrossShardWorkload(n *sim.Network, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	hosts := n.Topo.Hosts()
	for i := 0; i < 120; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		at := eventsim.Time(rng.Int63n(int64(300 * eventsim.Microsecond)))
		size := int64(1000 + rng.Intn(200_000))
		n.StartFlowAt(at, src, dst, size)
	}
}

// runShardWorkload drives the workload to completion and returns the
// completion records.
func runShardWorkload(t *testing.T, shards int) []sim.FlowRecord {
	t.Helper()
	cfg := shardTestConfig(shards)
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	installCrossShardWorkload(n, 99)
	end := n.RunUntilIdle(50 * eventsim.Millisecond)
	if n.ActiveFlows() != 0 {
		t.Fatalf("shards=%d: %d flows still active at %v", shards, n.ActiveFlows(), end)
	}
	if len(n.Completed) != 120 {
		t.Fatalf("shards=%d: %d completions, want 120", shards, len(n.Completed))
	}
	if err := n.CheckPoolInvariant(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return n.Completed
}

func recordKey(r sim.FlowRecord) string {
	return fmt.Sprintf("id=%d src=%d dst=%d size=%d start=%d end=%d", r.ID, r.Src, r.Dst, r.Size, r.Start, r.End)
}

// TestShardedDeterminism is the A/B half of the determinism contract: the
// same seed and workload must yield identical flow records — same IDs,
// same start and end nanoseconds, same completion order — for every shard
// count.
func TestShardedDeterminism(t *testing.T) {
	ref := runShardWorkload(t, 1)
	for _, shards := range []int{2, 4} {
		got := runShardWorkload(t, shards)
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d records, want %d", shards, len(got), len(ref))
		}
		for i := range ref {
			if recordKey(got[i]) != recordKey(ref[i]) {
				t.Fatalf("shards=%d: record %d diverges:\n  shards=1: %s\n  shards=%d: %s",
					shards, i, recordKey(ref[i]), shards, recordKey(got[i]))
			}
		}
	}
}

// TestLargeCLOSShardedQuickRun is the scale smoke test: a 4096-host CLOS
// (64 ToR pods × 64 hosts, 16 leaves) builds in sharded mode and pushes a
// cross-pod workload to completion. It guards construction cost (per-pod
// engines, pools, handoff wiring for every fabric link) and the window
// protocol's liveness at a pod count far beyond the micro tests — not
// throughput, which BenchmarkShardedThroughput measures.
func TestLargeCLOSShardedQuickRun(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 64, NumLeaf: 16, HostsPerToR: 64,
		HostLinkBps: 10e9, FabricLinkBps: 100e9,
		PropDelay: 2 * eventsim.Microsecond,
	}
	cfg.Seed = 7
	cfg.Shards = 8
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	hosts := n.Topo.Hosts()
	if len(hosts) != 4096 {
		t.Fatalf("%d hosts, want 4096", len(hosts))
	}
	// One flow out of every 16th host into the next pod over: 256 flows,
	// all crossing shard boundaries through the leaf tier.
	flows := 0
	for h := 0; h < len(hosts); h += 16 {
		dst := (h + 64) % len(hosts)
		at := eventsim.Time(h) * eventsim.Microsecond / 16
		n.StartFlowAt(at, hosts[h], hosts[dst], 256<<10)
		flows++
	}
	n.RunUntilIdle(eventsim.Second)
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active", n.ActiveFlows())
	}
	if len(n.Completed) != flows {
		t.Fatalf("%d completions, want %d", len(n.Completed), flows)
	}
	if err := n.CheckPoolInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSingleEngine replays the same pre-scheduled workload
// on the legacy single-engine path and on the sharded runtime. With no
// completion-hook-driven scheduling the two paths perform identical
// per-flow work, so every flow's (start, end) must match exactly; only
// the append order of same-instant completions may differ (legacy orders
// by event sequence, sharded by flow ID), so records are compared by ID.
func TestShardedMatchesSingleEngine(t *testing.T) {
	legacyCfg := shardTestConfig(0)
	legacy, err := sim.New(legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	installCrossShardWorkload(legacy, 99)
	legacy.RunUntilIdle(50 * eventsim.Millisecond)
	if len(legacy.Completed) != 120 {
		t.Fatalf("legacy: %d completions, want 120", len(legacy.Completed))
	}
	byID := map[uint64]sim.FlowRecord{}
	for _, r := range legacy.Completed {
		byID[r.ID] = r
	}

	sharded := runShardWorkload(t, 4)
	for _, got := range sharded {
		want, ok := byID[got.ID]
		if !ok {
			t.Fatalf("flow %d completed sharded but not legacy", got.ID)
		}
		if recordKey(got) != recordKey(want) {
			t.Fatalf("flow %d diverges from single-engine reference:\n  legacy:  %s\n  sharded: %s",
				got.ID, recordKey(want), recordKey(got))
		}
	}
}
