package sim_test

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

// runSuppressionArm builds a network, drives a bursty workload with a
// long idle tail (so QPs re-quiesce and — with suppression on — park
// their timers), and returns the network for state comparison.
func runSuppressionArm(t *testing.T, suppress bool) *sim.Network {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.SuppressQuiescentTimers = suppress
	// Fast alpha decay so idle QPs actually reach the alpha snap floor
	// within the run; same value in both arms, so still a pure A/B.
	cfg.Params.G = 0.5
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	// Cross-ToR incast burst: enough congestion for real cuts, CNPs, and
	// ECN marks, then everything drains and the fabric goes idle.
	for i := 0; i < 3; i++ {
		n.StartFlow(hosts[i], hosts[5], 2<<20)
	}
	// Second wave mid-run: CNPs land on QPs in every phase — cut, fast
	// recovery, and (in the suppressed arm) parked.
	n.StartFlowAt(4*eventsim.Millisecond, hosts[1], hosts[6], 1<<20)
	n.StartFlowAt(4*eventsim.Millisecond, hosts[2], hosts[6], 1<<20)
	n.Run(30 * eventsim.Millisecond)
	return n
}

// TestSuppressionSimInvariant is the end-to-end form of the RP-level
// invariance tests: an identical fabric and workload must produce
// byte-identical flow records and packet/mark/CNP counts whether
// quiescent-timer suppression is on or off. Only timer-fire event counts
// may differ — that is the entire point of the optimization.
func TestSuppressionSimInvariant(t *testing.T) {
	off := runSuppressionArm(t, false)
	on := runSuppressionArm(t, true)

	if len(off.Completed) != len(on.Completed) {
		t.Fatalf("completed flows differ: %d without suppression, %d with", len(off.Completed), len(on.Completed))
	}
	if len(off.Completed) != 5 {
		t.Fatalf("completed %d flows, want all 5 (grow the deadline)", len(off.Completed))
	}
	for i := range off.Completed {
		if off.Completed[i] != on.Completed[i] {
			t.Errorf("flow record %d diverges:\n  off: %+v\n  on:  %+v", i, off.Completed[i], on.Completed[i])
		}
	}
	for i, h := range off.Hosts {
		a, b := h.Stats, on.Hosts[i].Stats
		if a != b {
			t.Errorf("host %d stats diverge:\n  off: %+v\n  on:  %+v", i, a, b)
		}
	}
	for i, sw := range off.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			a, b := sw.Port(p).Stats, on.Switches[i].Port(p).Stats
			if a != b {
				t.Errorf("switch %d port %d stats diverge:\n  off: %+v\n  on:  %+v", i, p, a, b)
			}
		}
	}

	// Suppression must have skipped work: by the idle tail every QP is
	// parked, so the suppressed run processed strictly fewer events.
	if on.EventsProcessed() >= off.EventsProcessed() {
		t.Errorf("suppressed run processed %d events, unsuppressed %d — suppression saved nothing",
			on.EventsProcessed(), off.EventsProcessed())
	}
}
