package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
	"repro/internal/netdev"
)

// Conservation: every payload byte a sender was asked to move arrives at
// the receiver exactly once, for arbitrary flow mixes, and the fabric's
// buffers drain to zero afterwards.
func TestQuickByteConservation(t *testing.T) {
	f := func(specs []uint32, seed int64) bool {
		if len(specs) > 24 {
			specs = specs[:24]
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		n, err := New(cfg)
		if err != nil {
			return false
		}
		hosts := n.Topo.Hosts()
		var want int64
		launched := 0
		for i, raw := range specs {
			src := hosts[int(raw)%len(hosts)]
			dst := hosts[(int(raw)+1+int(raw>>8)%(len(hosts)-1))%len(hosts)]
			if src == dst {
				continue
			}
			size := int64(raw%2_000_000) + 1
			at := eventsim.Time(i) * 100 * eventsim.Microsecond
			n.StartFlowAt(at, src, dst, size)
			want += size
			launched++
		}
		n.RunUntilIdle(20 * eventsim.Second)
		if len(n.Completed) != launched {
			return false
		}
		var got int64
		for _, rec := range n.Completed {
			got += rec.Size
		}
		if got != want {
			return false
		}
		for _, sw := range n.Switches {
			if sw.BufferUsed() != 0 {
				return false
			}
			if sw.Stats.Drops != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Losslessness under pressure: even with a small shared buffer and tall
// ECN thresholds (PFC forced to do the work), a hard incast completes
// with zero drops and all pauses eventually released.
func TestIncastLosslessUnderTinyBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Switch.BufferBytes = 200 << 10
	cfg.Params.KminBytes = 150 << 10
	cfg.Params.KmaxBytes = 180 << 10
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	for i := 1; i < len(hosts); i++ {
		n.StartFlow(hosts[i], hosts[0], 1<<20)
	}
	n.RunUntilIdle(20 * eventsim.Second)
	if len(n.Completed) != len(hosts)-1 {
		t.Fatalf("completed %d/%d — possible PFC deadlock", len(n.Completed), len(hosts)-1)
	}
	for _, sw := range n.Switches {
		if sw.Stats.Drops != 0 {
			t.Errorf("switch %d dropped %d", sw.NodeID(), sw.Stats.Drops)
		}
	}
	for _, h := range n.Hosts {
		if h.Port().Paused(netdev.ClassData) {
			t.Errorf("host %d still paused after drain", h.NodeID())
		}
	}
}

// Live retuning during a run must never corrupt delivery: randomly
// mutate parameters mid-flight and check conservation still holds.
func TestQuickRetuningPreservesConservation(t *testing.T) {
	f := func(seed int64, knobs []uint16) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		n, err := New(cfg)
		if err != nil {
			return false
		}
		hosts := n.Topo.Hosts()
		const flows = 6
		for i := 0; i < flows; i++ {
			n.StartFlow(hosts[1+i%(len(hosts)-1)], hosts[0], 2<<20)
		}
		for i, k := range knobs {
			if i > 16 {
				break
			}
			k := k
			n.Eng.Schedule(eventsim.Time(i+1)*200*eventsim.Microsecond, func() {
				p := *n.RNICParams()
				p.KminBytes = int64(k%3000)<<10 + (10 << 10)
				p.KmaxBytes = p.KminBytes * 4
				p.PMax = float64(k%90)/100 + 0.05
				p.AIRateBps = float64(k%500+1) * 1e6
				p.MinTimeBetweenCNPs = eventsim.Time(k%200) * eventsim.Microsecond
				n.ApplyParams(p)
			})
		}
		n.RunUntilIdle(30 * eventsim.Second)
		if len(n.Completed) != flows {
			return false
		}
		var got int64
		for _, rec := range n.Completed {
			got += rec.Size
		}
		return got == int64(flows)*(2<<20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
