// Package sim assembles a runnable RoCEv2 network: it instantiates host
// RNICs and switches from a topology description, wires every link, routes
// flows, and records flow completion times. It is the substrate on which
// all of the paper's experiments run — the Go stand-in for the authors'
// NS-3 setup.
package sim

import (
	"fmt"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/rnic"
	"repro/internal/topology"
)

// Config parameterizes a network build.
type Config struct {
	// Clos describes the fabric (see topology.ClosConfig).
	Clos topology.ClosConfig
	// Switch sets buffer and PFC behaviour for every switch.
	Switch netdev.SwitchConfig
	// Params is the initial DCQCN setting applied to all RNICs and
	// switches.
	Params dcqcn.Params
	// Seed drives all randomness (ECN coin flips, workload draws made
	// through Rand()).
	Seed int64
	// MTU overrides the data payload per packet when > 0.
	MTU int
	// Tuner names the search strategy a control loop attached to this
	// network should use when its own config leaves the choice open
	// (see internal/tuner; empty means "sa"). The network itself never
	// reads it — it rides here so harnesses and RPC servers that build
	// deployments from a sim.Config inherit the selection.
	Tuner string
	// Shards, when > 0, runs the fabric sharded: the topology is
	// partitioned by ToR pod into up to Shards shards, each driven by its
	// own engine on its own goroutine under conservative time windows
	// (see internal/eventsim/shard). For a fixed Seed the simulation is
	// byte-identical for every Shards ≥ 1 value. 0 (the default) is the
	// legacy single-engine path, unchanged bit for bit from before
	// sharding existed.
	Shards int
	// SuppressQuiescentTimers parks each QP's DCQCN timers while the QP
	// is provably quiescent (line rate, alpha fully decayed) and re-arms
	// them lazily on the next CNP — trace-invariant by construction (see
	// dcqcn.RP.SetSuppression), but off by default so the stock event
	// counts in overhead reports stay comparable across PRs.
	SuppressQuiescentTimers bool
	// HeapOnlyTimers disables the engines' timing-wheel timer path,
	// forcing every timer onto the binary-heap; behaviorally identical
	// (the wheel's ordering contract) and only useful as the baseline
	// arm of performance comparisons.
	HeapOnlyTimers bool
}

// DefaultConfig is a small, fast fabric useful for tests and examples:
// 2 ToRs × 4 hosts at 10 Gbps with one leaf.
func DefaultConfig() Config {
	return Config{
		Clos: topology.ClosConfig{
			NumToR: 2, NumLeaf: 1, HostsPerToR: 4,
			HostLinkBps: 10e9, FabricLinkBps: 40e9,
			PropDelay: 2 * eventsim.Microsecond,
		},
		Switch: netdev.DefaultSwitchConfig(),
		Params: dcqcn.DefaultParams(),
		Seed:   1,
	}
}

// FlowRecord is one completed flow.
type FlowRecord struct {
	ID       uint64
	Src, Dst topology.NodeID
	Size     int64
	Start    eventsim.Time
	End      eventsim.Time
}

// FCT returns the flow completion time.
func (r FlowRecord) FCT() eventsim.Time { return r.End - r.Start }

// Network is a fully wired simulation instance.
type Network struct {
	Eng  *eventsim.Engine
	Topo *topology.Topology

	Hosts    []*rnic.Host // indexed in topology host order
	Switches []*netdev.Switch

	// pool is the network-wide packet free-list: every host and switch
	// draws from and recycles into it. Safe because the engine is
	// single-threaded; parallel experiment arms each own a Network and
	// therefore a pool. In sharded mode this is nil and each shard owns a
	// pool instead (see shardRuntime).
	pool *netdev.PacketPool

	// shard is non-nil when the network runs sharded (Config.Shards > 0).
	shard *shardRuntime

	hostByNode   map[topology.NodeID]*rnic.Host
	switchByNode map[topology.NodeID]*netdev.Switch

	// rnicParams is shared by every host RNIC; switchParams is
	// per-switch so schemes like ACC can tune ECN thresholds locally.
	// hostParams overrides rnicParams for individual hosts (DCQCN+
	// adjusts per-endpoint CNP pacing and increase steps).
	rnicParams   *dcqcn.Params
	switchParams map[topology.NodeID]*dcqcn.Params
	hostParams   map[topology.NodeID]*dcqcn.Params

	cfg        Config
	nextFlowID uint64
	flowSizes  map[uint64]int64

	// Completed accumulates flow records in completion order.
	Completed []FlowRecord
	// OnFlowComplete, if set, fires per completion (workload round logic).
	OnFlowComplete func(FlowRecord)
	hooks          []func(FlowRecord)
	startHooks     []func(id uint64, src, dst topology.NodeID, size int64)
}

// AddFlowCompleteHook registers an additional completion observer;
// workload generators use this so several can coexist.
func (n *Network) AddFlowCompleteHook(fn func(FlowRecord)) {
	n.hooks = append(n.hooks, fn)
}

// AddFlowStartHook registers an observer called when a flow is admitted
// (trace recorders, live dashboards).
func (n *Network) AddFlowStartHook(fn func(id uint64, src, dst topology.NodeID, size int64)) {
	n.startHooks = append(n.startHooks, fn)
}

// New builds and wires a network from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.NewClos(cfg.Clos)
	if err != nil {
		return nil, err
	}
	eng := eventsim.NewEngine(cfg.Seed)
	if cfg.HeapOnlyTimers {
		eng.SetWheelEnabled(false)
	}
	n := &Network{
		Eng: eng, Topo: topo, cfg: cfg,
		hostByNode:   map[topology.NodeID]*rnic.Host{},
		switchByNode: map[topology.NodeID]*netdev.Switch{},
		switchParams: map[topology.NodeID]*dcqcn.Params{},
		hostParams:   map[topology.NodeID]*dcqcn.Params{},
		flowSizes:    map[uint64]int64{},
	}
	rp := cfg.Params
	n.rnicParams = &rp

	if cfg.Shards > 0 {
		if err := n.buildSharded(); err != nil {
			return nil, err
		}
		return n, nil
	}

	n.pool = netdev.NewPacketPool()
	for _, sn := range topo.SwitchIDs() {
		sp := cfg.Params
		spp := &sp
		n.switchParams[sn] = spp
		sw := netdev.NewSwitch(eng, topo, sn, cfg.Switch, func() *dcqcn.Params { return spp })
		sw.SetPacketPool(n.pool)
		n.Switches = append(n.Switches, sw)
		n.switchByNode[sn] = sw
	}
	for _, hn := range topo.Hosts() {
		hn := hn
		h := rnic.NewHost(eng, topo, hn, func() *dcqcn.Params {
			if p := n.hostParams[hn]; p != nil {
				return p
			}
			return n.rnicParams
		}, n.flowCompleted)
		if cfg.MTU > 0 {
			h.SetMTU(cfg.MTU)
		}
		h.SetTimerSuppression(cfg.SuppressQuiescentTimers)
		h.SetPacketPool(n.pool)
		n.Hosts = append(n.Hosts, h)
		n.hostByNode[hn] = h
	}

	// Wire every link in both directions.
	for i := range topo.Links {
		l := &topo.Links[i]
		devA, portA := n.devicePort(l.A, l.APort)
		devB, portB := n.devicePort(l.B, l.BPort)
		portA.SetPeer(devB, l.BPort)
		portB.SetPeer(devA, l.APort)
		_, _ = devA, devB
	}
	return n, nil
}

// devicePort resolves the Device and its EgressPort for a (node, port).
func (n *Network) devicePort(node topology.NodeID, port int) (netdev.Device, *netdev.EgressPort) {
	if h, ok := n.hostByNode[node]; ok {
		if port != 0 {
			panic(fmt.Sprintf("sim: host %d port %d, hosts have one port", node, port))
		}
		return h, h.Port()
	}
	sw := n.switchByNode[node]
	return sw, sw.Port(port)
}

// linkPorts resolves both directional egress ports of the a↔b link.
func (n *Network) linkPorts(a, b topology.NodeID) (*netdev.EgressPort, *netdev.EgressPort, error) {
	for i := range n.Topo.Links {
		l := &n.Topo.Links[i]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			_, pa := n.devicePort(l.A, l.APort)
			_, pb := n.devicePort(l.B, l.BPort)
			return pa, pb, nil
		}
	}
	return nil, nil, fmt.Errorf("sim: no link between nodes %d and %d", a, b)
}

// SetLinkUp raises or cuts both directions of the a↔b link (fault
// injection). While down, queued traffic is held and switches ECMP-route
// new traffic over surviving paths; see netdev.EgressPort.SetLinkUp.
func (n *Network) SetLinkUp(a, b topology.NodeID, up bool) error {
	pa, pb, err := n.linkPorts(a, b)
	if err != nil {
		return err
	}
	pa.SetLinkUp(up)
	pb.SetLinkUp(up)
	return nil
}

// DegradeLink applies a link-quality fault to both directions of the a↔b
// link: effective rate becomes rateFactor·line rate and every packet pays
// extraDelay. Pass (1, 0) to heal.
func (n *Network) DegradeLink(a, b topology.NodeID, rateFactor float64, extraDelay eventsim.Time) error {
	pa, pb, err := n.linkPorts(a, b)
	if err != nil {
		return err
	}
	pa.SetDegradation(rateFactor, extraDelay)
	pb.SetDegradation(rateFactor, extraDelay)
	return nil
}

// Host returns the RNIC for a host node.
func (n *Network) Host(node topology.NodeID) *rnic.Host { return n.hostByNode[node] }

// Switch returns the device for a switch node.
func (n *Network) Switch(node topology.NodeID) *netdev.Switch { return n.switchByNode[node] }

// RNICParams exposes the live, shared RNIC parameter struct.
func (n *Network) RNICParams() *dcqcn.Params { return n.rnicParams }

// SwitchParams exposes the live parameter struct of one switch.
func (n *Network) SwitchParams(node topology.NodeID) *dcqcn.Params { return n.switchParams[node] }

// ApplyParams dispatches a homogeneous DCQCN setting to every RNIC and
// switch — Paraleon's "dispatch P_m to RNICs and switches" step.
func (n *Network) ApplyParams(p dcqcn.Params) {
	*n.rnicParams = p
	for _, sp := range n.switchParams {
		*sp = p
	}
}

// ApplyParamsToCluster dispatches a DCQCN setting only to the given ToR
// switches and the hosts under them — the §V multi-cluster deployment
// where each cluster's controller maintains heterogeneous parameters.
// Host-side settings install as per-host overrides so other clusters'
// hosts are untouched.
func (n *Network) ApplyParamsToCluster(tors []topology.NodeID, p dcqcn.Params) {
	inScope := make(map[topology.NodeID]bool, len(tors))
	for _, tor := range tors {
		inScope[tor] = true
		if sp := n.switchParams[tor]; sp != nil {
			*sp = p
		}
	}
	for _, hn := range n.Topo.Hosts() {
		if !inScope[n.Topo.ToROf(hn)] {
			continue
		}
		if hp := n.hostParams[hn]; hp != nil {
			*hp = p
		} else {
			cp := p
			n.SetHostParams(hn, &cp)
		}
	}
}

// SetHostParams installs (or, with nil, clears) a per-host RNIC parameter
// override; the host's QPs observe it on their next timer or CNP.
func (n *Network) SetHostParams(node topology.NodeID, p *dcqcn.Params) {
	if p == nil {
		delete(n.hostParams, node)
		return
	}
	n.hostParams[node] = p
}

// HostParams returns the live override for a host, or nil if it follows
// the shared setting.
func (n *Network) HostParams(node topology.NodeID) *dcqcn.Params { return n.hostParams[node] }

// ApplySwitchECN retargets only the ECN thresholds of one switch (what an
// ACC agent actuates). Addressing a node that is not a switch of this
// network is a programming error and panics with the offending node
// rather than a bare nil dereference.
func (n *Network) ApplySwitchECN(node topology.NodeID, kmin, kmax int64, pmax float64) {
	sp := n.switchParams[node]
	if sp == nil {
		panic(fmt.Sprintf("sim: ApplySwitchECN: node %d is not a switch in this network", node))
	}
	sp.KminBytes, sp.KmaxBytes, sp.PMax = kmin, kmax, pmax
}

// StartFlow begins a size-byte flow src→dst now and returns its ID.
func (n *Network) StartFlow(src, dst topology.NodeID, size int64) uint64 {
	if src == dst {
		panic("sim: flow to self")
	}
	id := n.nextFlowID
	n.nextFlowID++
	n.flowSizes[id] = size
	for _, fn := range n.startHooks {
		fn(id, src, dst, size)
	}
	n.hostByNode[dst].ExpectFlow(id, src, size, n.Eng.Now())
	n.hostByNode[src].StartFlow(id, dst, size)
	return id
}

// FlowSize reports the declared total size of a flow (0 if unknown). The
// ground-truth oracle in internal/monitor classifies flows with it.
func (n *Network) FlowSize(id uint64) int64 { return n.flowSizes[id] }

// StartFlowAt schedules a flow to begin at absolute virtual time at.
func (n *Network) StartFlowAt(at eventsim.Time, src, dst topology.NodeID, size int64) {
	n.Eng.Schedule(at, func() { n.StartFlow(src, dst, size) })
}

func (n *Network) flowCompleted(id uint64, src, dst topology.NodeID, size int64, start, end eventsim.Time) {
	n.deliverCompletion(FlowRecord{ID: id, Src: src, Dst: dst, Size: size, Start: start, End: end})
}

// deliverCompletion records a finished flow and fires the completion
// hooks. In legacy mode it runs inline with the last byte's arrival; in
// sharded mode the shard runtime defers it to the coordinator thread at
// the completion's exact virtual time, because hooks are global (they may
// start flows on other shards or write to the trace).
func (n *Network) deliverCompletion(rec FlowRecord) {
	n.Completed = append(n.Completed, rec)
	if n.OnFlowComplete != nil {
		n.OnFlowComplete(rec)
	}
	for _, fn := range n.hooks {
		fn(rec)
	}
}

// ActiveFlows sums in-progress sender flows across hosts.
func (n *Network) ActiveFlows() int {
	total := 0
	for _, h := range n.Hosts {
		total += h.ActiveFlows()
	}
	return total
}

// Run advances the simulation to absolute virtual time deadline. In
// sharded mode the coordinator drives the window loop; between Run calls
// every engine is quiescent at the deadline and the caller's goroutine
// may freely read or mutate any device.
func (n *Network) Run(deadline eventsim.Time) {
	if n.shard != nil {
		n.shard.coord.RunUntil(deadline)
		return
	}
	n.Eng.RunUntil(deadline)
}

// Pending reports scheduled events across every engine of the network.
func (n *Network) Pending() int {
	if n.shard != nil {
		return n.shard.coord.Pending()
	}
	return n.Eng.Pending()
}

// EventsProcessed reports events executed across every engine of the
// network (throughput accounting for benchmarks).
func (n *Network) EventsProcessed() uint64 {
	if n.shard != nil {
		return n.shard.coord.Processed()
	}
	return n.Eng.Processed
}

// Shards reports the number of shards actually running (1+ in sharded
// mode — the partition clamps to the ToR count — and 0 in legacy mode).
func (n *Network) Shards() int {
	if n.shard == nil {
		return 0
	}
	return n.shard.nshards
}

// RunUntilIdle runs until no work remains or maxTime is reached, returning
// the stop time. Useful for draining a fixed workload.
func (n *Network) RunUntilIdle(maxTime eventsim.Time) eventsim.Time {
	step := 100 * eventsim.Microsecond
	for n.Eng.Now() < maxTime {
		if n.Pending() == 0 {
			break
		}
		next := n.Eng.Now() + step
		if next > maxTime {
			next = maxTime
		}
		n.Run(next)
		if n.ActiveFlows() == 0 && n.Pending() == 0 {
			break
		}
	}
	return n.Eng.Now()
}

// IdealFCT is the uncontended completion time of a flow: serialization of
// every packet at the bottleneck host link plus the one-way base path
// delay. FCT slowdowns (Fig 7) normalize against this.
func (n *Network) IdealFCT(src, dst topology.NodeID, size int64) eventsim.Time {
	mtu := n.cfg.MTU
	if mtu <= 0 {
		mtu = netdev.DefaultMTU
	}
	packets := (size + int64(mtu) - 1) / int64(mtu)
	wire := size + packets*netdev.HeaderBytes
	ser := eventsim.Time(float64(wire*8) / n.cfg.Clos.HostLinkBps * 1e9)
	return ser + n.Topo.BasePathDelay(src, dst)
}

// PacketPool exposes the network-wide packet free-list (pool hit-rate
// accounting in overhead reports and tests). In sharded mode it returns
// shard 0's pool; use PacketPools for all of them.
func (n *Network) PacketPool() *netdev.PacketPool {
	if n.shard != nil {
		return n.shard.pools[0]
	}
	return n.pool
}

// PacketPools lists every packet pool of the network: one in legacy mode,
// one per shard in sharded mode.
func (n *Network) PacketPools() []*netdev.PacketPool {
	if n.shard != nil {
		return n.shard.pools
	}
	return []*netdev.PacketPool{n.pool}
}

// PacketsInNetwork counts packets currently alive in the fabric: queued
// at a port, mid-serialization, crossing a wire, or held by the shard
// handoff machinery. Every such packet came from a pool Get and has not
// yet been Put.
func (n *Network) PacketsInNetwork() int {
	total := 0
	for _, sw := range n.Switches {
		total += sw.InFlightPackets()
	}
	for _, h := range n.Hosts {
		total += h.Port().InFlightPackets()
	}
	if n.shard != nil {
		total += n.shard.outstanding()
	}
	return total
}

// CheckPoolInvariant verifies the packet-pool leak invariant: every
// packet a pool handed out (Fresh + Recycled) is either back in a pool
// (Puts) or still visible somewhere in the fabric. A violation means some
// path sank a packet without returning it — the slab would grow without
// bound over a long chaos run. Call it while the network is quiescent
// (between Run calls).
func (n *Network) CheckPoolInvariant() error {
	var fresh, recycled, puts int64
	for _, p := range n.PacketPools() {
		fresh += p.Fresh
		recycled += p.Recycled
		puts += p.Puts
	}
	inFlight := int64(n.PacketsInNetwork())
	if fresh+recycled != puts+inFlight {
		return fmt.Errorf("sim: packet pool leak: Fresh(%d)+Recycled(%d) = %d gets, but Puts(%d)+inFlight(%d) = %d",
			fresh, recycled, fresh+recycled, puts, inFlight, puts+inFlight)
	}
	return nil
}

// HostLinkBps reports the configured host link rate.
func (n *Network) HostLinkBps() float64 { return n.cfg.Clos.HostLinkBps }

// Config returns the network's build configuration.
func (n *Network) Config() Config { return n.cfg }
