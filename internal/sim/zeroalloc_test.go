package sim_test

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestSteadyStateZeroAlloc drives a full network — cross-ToR incast with
// DCQCN reacting, sketch agents tapping every ToR, telemetry counting
// intervals — to a congested steady state, then requires that stepping the
// simulation allocates nothing. This is the end-to-end form of the
// per-component AllocsPerRun tests: it catches any path (CNP generation,
// PFC frames, probe replies, timer re-arms, sketch inserts) that still
// allocates per event.
func TestSteadyStateZeroAlloc(t *testing.T) {
	testSteadyStateZeroAlloc(t, sim.DefaultConfig())
}

// The suppressed variant additionally covers the park/unpark paths: CNPs
// landing on parked QPs re-arm timers through RearmAfter, which must hit
// the wheel's O(1) in-place path without allocating.
func TestSteadyStateZeroAllocSuppressed(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.SuppressQuiescentTimers = true
	testSteadyStateZeroAlloc(t, cfg)
}

func testSteadyStateZeroAlloc(t *testing.T, cfg sim.Config) {
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tm := telemetry.NewSketchMetrics(reg)
	for _, sw := range n.Switches {
		a := monitor.NewSwitchAgent(monitor.ParaleonAgentConfig(), 42)
		a.TM = tm
		a.Attach(sw)
	}
	// Cross-ToR incast: three senders on ToR 0 into one receiver on ToR 1,
	// with effectively infinite flows so no completions (and their record
	// appends) happen during the measured window.
	hosts := n.Topo.Hosts()
	for i := 0; i < 3; i++ {
		n.StartFlow(hosts[i], hosts[4], 1<<40)
	}
	// Warm up past slow start into the congested steady state: slabs,
	// queues, pool, and delivery slots all reach their high-water marks.
	n.Run(2 * eventsim.Millisecond)
	if n.ActiveFlows() != 3 {
		t.Fatalf("ActiveFlows=%d, want 3 (flows must outlive the test)", n.ActiveFlows())
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 5000; i++ {
			if !n.Eng.Step() {
				t.Fatal("engine drained during steady-state window")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("simulation allocates %.1f per 5000-event batch in steady state, want 0", allocs)
	}
	if n.PacketPool().Recycled == 0 {
		t.Fatal("packet pool never recycled")
	}
}
