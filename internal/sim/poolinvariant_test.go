package sim_test

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// driveFaultyRun pushes a network through the packet-life edge cases the
// pool must survive: congestion heavy enough for PFC exchange and ECN/CNP
// traffic, a shrunken shared buffer so headroom exhaustion really drops
// packets, and repeated link flaps so downed links hold queues mid-run.
func driveFaultyRun(t *testing.T, shards int) *sim.Network {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 2, NumLeaf: 1, HostsPerToR: 4,
		HostLinkBps: 10e9, FabricLinkBps: 10e9, // undersized fabric: guaranteed congestion
		PropDelay: 2 * eventsim.Microsecond,
	}
	// A buffer this small exhausts PFC headroom under incast, forcing the
	// drop path (Switch.Receive buffer overflow) to actually run.
	cfg.Switch.BufferBytes = 16 << 10
	cfg.Shards = shards
	n, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Topo.Hosts()
	tors := n.Topo.ToRs()
	// Cross-ToR incast: everything under ToR 0 blasts one receiver under
	// ToR 1 through the single leaf.
	for i := 0; i < 4; i++ {
		n.StartFlow(hosts[i], hosts[5], 2<<20)
	}
	// Reverse traffic so both directions carry data and PFC.
	n.StartFlow(hosts[6], hosts[1], 1<<20)

	// Flap the ToR0↔leaf link three times while traffic is in flight:
	// each down edge strands queued packets on held ports, each up edge
	// releases them.
	leaf := topology.NodeID(-1)
	for _, nd := range n.Topo.Nodes {
		if nd.Kind == topology.LeafSwitch {
			leaf = nd.ID
			break
		}
	}
	for k := 0; k < 3; k++ {
		down := eventsim.Time(200+400*k) * eventsim.Microsecond
		up := down + 150*eventsim.Microsecond
		k := k
		n.Eng.Schedule(down, func() { n.SetLinkUp(tors[0], leaf, false) })
		n.Eng.Schedule(up, func() { n.SetLinkUp(tors[0], leaf, true) })
		_ = k
	}
	n.RunUntilIdle(200 * eventsim.Millisecond)
	if n.ActiveFlows() != 0 {
		t.Fatalf("shards=%d: %d flows never drained", shards, n.ActiveFlows())
	}
	return n
}

// TestPoolInvariantUnderFaults checks the leak invariant
// Fresh+Recycled == Puts + in-flight after a run that exercised drops,
// PFC frames, and link flaps — every path where a packet's life can end
// away from the happy path. A leak here means long chaos runs grow the
// packet slab without bound.
func TestPoolInvariantUnderFaults(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		n := driveFaultyRun(t, shards)
		if err := n.CheckPoolInvariant(); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
		var drops int64
		for _, sw := range n.Switches {
			drops += sw.Stats.Drops
		}
		if drops == 0 {
			t.Errorf("shards=%d: no drops — the test no longer exercises the overflow path", shards)
		}
		var pfc int64
		for _, sw := range n.Switches {
			pfc += sw.Stats.PFCReceived
		}
		if pfc == 0 {
			t.Errorf("shards=%d: no PFC frames — the test no longer exercises the pause path", shards)
		}
		// Drained network: nothing should still hold a packet.
		if got := n.PacketsInNetwork(); got != 0 {
			t.Errorf("shards=%d: %d packets still in fabric after drain", shards, got)
		}
	}
}
