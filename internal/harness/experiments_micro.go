package harness

import (
	"fmt"
	"io"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Scale fixes the fabric and cadence an experiment runs at. The paper's
// NS-3 setup is PaperScale; QuickScale shrinks the fabric so every
// experiment runs in seconds on one core while preserving the 4:1
// over-subscription that creates the contention under study.
type Scale struct {
	Net      sim.Config
	Interval eventsim.Time
	// Workers bounds how many experiment arms a driver runs concurrently
	// through RunAll (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Progress, when non-nil, receives RunAll's per-arm completion
	// updates for every driver run at this scale.
	Progress func(ArmStatus)
}

// parallel bundles the scale's execution knobs for RunAll.
func (s Scale) parallel() ParallelOptions {
	return ParallelOptions{Workers: s.Workers, Progress: s.Progress}
}

// QuickScale is the default reproduction fabric: 2 racks × 4 hosts at
// 10 Gbps, 4:1 over-subscribed, λ_MI = 1 ms.
func QuickScale() Scale {
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 2, NumLeaf: 1, HostsPerToR: 4,
		HostLinkBps: 10e9, FabricLinkBps: 10e9,
		PropDelay: 2 * eventsim.Microsecond,
	}
	return Scale{Net: cfg, Interval: eventsim.Millisecond}
}

// MediumScale is a 4-rack fabric for the macro experiments.
func MediumScale() Scale {
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.ClosConfig{
		NumToR: 4, NumLeaf: 2, HostsPerToR: 4,
		HostLinkBps: 10e9, FabricLinkBps: 20e9,
		PropDelay: 2 * eventsim.Microsecond,
	}
	return Scale{Net: cfg, Interval: eventsim.Millisecond}
}

// PaperScale is the §IV-B topology: 8 ToRs, 4 leaves, 128 hosts, 100 Gbps.
func PaperScale() Scale {
	cfg := sim.DefaultConfig()
	cfg.Clos = topology.PaperClosConfig()
	return Scale{Net: cfg, Interval: eventsim.Millisecond}
}

// --- Table II: alltoall bandwidth, default vs expert ---

// Table2Row is one message-size column of Table II.
type Table2Row struct {
	TotalPerRankMB int
	// AlgBwGBs maps scheme name to per-rank algorithm bandwidth, the
	// NCCL-Tests "algbw" analogue: bytes-per-rank / round time.
	AlgBwGBs map[string]float64
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Workers int
	Rows    []Table2Row
}

// Table2 runs one alltoall round per (scheme, size) and reports algbw.
// Sizes are per-rank totals in MB; workers bounds the collective width.
func Table2(scale Scale, workers int, sizesMB []int) (*Table2Result, error) {
	schemes := []Scheme{DefaultScheme(), ExpertScheme()}
	res := &Table2Result{Workers: workers}
	for _, mb := range sizesMB {
		row := Table2Row{TotalPerRankMB: mb, AlgBwGBs: map[string]float64{}}
		for _, sc := range schemes {
			netCfg := scale.Net
			netCfg.Params = sc.Static
			n, err := sim.New(netCfg)
			if err != nil {
				return nil, err
			}
			ws := res.Workers
			if ws > len(n.Topo.Hosts()) {
				ws = len(n.Topo.Hosts())
			}
			perPair := int64(mb) << 20 / int64(ws-1)
			g, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      n.Topo.Hosts()[:ws],
				MessageBytes: perPair,
				Rounds:       1,
			})
			if err != nil {
				return nil, err
			}
			n.RunUntilIdle(60 * eventsim.Second)
			if g.RoundsDone != 1 {
				return nil, fmt.Errorf("table2: %s at %dMB: round incomplete", sc.Name, mb)
			}
			perRankBytes := float64(int64(ws-1) * perPair)
			row.AlgBwGBs[sc.Name] = perRankBytes / g.RoundDurations[0].Seconds() / 1e9
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint renders the table.
func (r *Table2Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Table II: %dx%d alltoall algbw (GB/s) per rank\n", r.Workers, r.Workers)
	fmt.Fprintf(w, "%-10s", "size(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d", row.TotalPerRankMB)
	}
	fmt.Fprintln(w)
	for _, name := range []string{"default", "expert"} {
		fmt.Fprintf(w, "%-10s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%10.2f", row.AlgBwGBs[name])
		}
		fmt.Fprintln(w)
	}
}

// --- Fig 5: single-parameter impacts ---

// SweepPoint is one setting of one parameter and its measured outcome.
type SweepPoint struct {
	Value float64
	// TP is mean link utilization; RTTNorm mean normalized RTT (higher
	// is lower delay).
	TP, RTTNorm float64
}

// Fig5Result maps parameter name → sweep curve.
type Fig5Result struct {
	Curves map[string][]SweepPoint
	Order  []string
}

// fig5Sweeps returns the paper's four representative parameters with
// sweep values sized for 10 Gbps fabrics.
func fig5Sweeps() (names []string, values map[string][]float64) {
	us := float64(eventsim.Microsecond)
	kb := float64(1 << 10)
	values = map[string][]float64{
		"hai_rate":                   {50e6, 150e6, 300e6, 600e6, 1200e6},
		"rate_reduce_monitor_period": {4 * us, 20 * us, 50 * us, 100 * us, 200 * us},
		"rpg_time_reset":             {50 * us, 100 * us, 300 * us, 600 * us, 1200 * us},
		"kmax":                       {400 * kb, 800 * kb, 1600 * kb, 3200 * kb, 6400 * kb},
	}
	names = []string{"hai_rate", "rate_reduce_monitor_period", "rpg_time_reset", "kmax"}
	return names, values
}

// probeCfg is the fixed-parameter alltoall arm the micro sweeps measure:
// mean runtime metrics under p over the horizon.
func probeCfg(scale Scale, p dcqcn.Params, workers int, msg int64, horizon eventsim.Time) RunConfig {
	return RunConfig{
		Net:      scale.Net,
		Scheme:   StaticScheme("probe", p),
		Interval: scale.Interval,
		Duration: horizon,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      n.Topo.Hosts()[:workers],
				MessageBytes: msg,
				OffTime:      eventsim.Millisecond,
			})
			return err
		},
	}
}

// Fig5 sweeps each representative parameter one at a time (others at
// defaults) under a sustained alltoall, reproducing the single-parameter
// impact study. All 20 sweep points run as one parallel batch.
func Fig5(scale Scale, horizon eventsim.Time) (*Fig5Result, error) {
	names, values := fig5Sweeps()
	res := &Fig5Result{Curves: map[string][]SweepPoint{}, Order: names}
	workers := 6
	msg := int64(2 << 20)
	type armKey struct {
		name  string
		value float64
	}
	var arms []armKey
	var cfgs []RunConfig
	for _, name := range names {
		spec := dcqcn.SpecByName(name)
		if spec == nil {
			return nil, fmt.Errorf("fig5: unknown parameter %q", name)
		}
		for _, v := range values[name] {
			p := dcqcn.DefaultParams()
			spec.Set(&p, spec.Clamp(v))
			if p.KmaxBytes <= p.KminBytes {
				p.KminBytes = p.KmaxBytes / 4
			}
			arms = append(arms, armKey{name: name, value: v})
			cfgs = append(cfgs, probeCfg(scale, p, workers, msg, horizon))
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.Curves[arms[i].name] = append(res.Curves[arms[i].name], SweepPoint{
			Value:   arms[i].value,
			TP:      metrics.Mean(r.TP.Values),
			RTTNorm: metrics.Mean(r.RTT.Values),
		})
	}
	return res, nil
}

// Fprint renders the sweep curves.
func (r *Fig5Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Fig 5: single-parameter impacts (mean link utilization / mean normalized RTT)")
	for _, name := range r.Order {
		fmt.Fprintf(w, "  %s:\n", name)
		for _, pt := range r.Curves[name] {
			fmt.Fprintf(w, "    value=%-14.4g TP=%.3f RTTnorm=%.3f\n", pt.Value, pt.TP, pt.RTTNorm)
		}
	}
}

// --- Fig 6: inter-parameter impacts ---

// Fig6Result is the 2-D (rpg_time_reset × kmax) response surface.
type Fig6Result struct {
	TimeResets []float64
	Kmaxes     []float64
	// TP[i][j] and RTT[i][j] index TimeResets[i] × Kmaxes[j].
	TP  [][]float64
	RTT [][]float64
}

// Fig6 sweeps rpg_time_reset and Kmax jointly, exposing the
// non-monotonic inter-parameter surface of §III-C.
func Fig6(scale Scale, horizon eventsim.Time) (*Fig6Result, error) {
	us := float64(eventsim.Microsecond)
	kb := float64(1 << 10)
	res := &Fig6Result{
		TimeResets: []float64{50 * us, 150 * us, 450 * us, 1350 * us},
		Kmaxes:     []float64{400 * kb, 1200 * kb, 3600 * kb, 7200 * kb},
	}
	workers := 6
	msg := int64(2 << 20)
	var cfgs []RunConfig
	for _, tr := range res.TimeResets {
		for _, km := range res.Kmaxes {
			p := dcqcn.DefaultParams()
			p.RPGTimeReset = eventsim.Time(tr)
			p.KmaxBytes = int64(km)
			if p.KminBytes >= p.KmaxBytes {
				p.KminBytes = p.KmaxBytes / 4
			}
			cfgs = append(cfgs, probeCfg(scale, p, workers, msg, horizon))
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	cols := len(res.Kmaxes)
	for i := range res.TimeResets {
		var tpRow, rttRow []float64
		for j := 0; j < cols; j++ {
			r := results[i*cols+j]
			tpRow = append(tpRow, metrics.Mean(r.TP.Values))
			rttRow = append(rttRow, metrics.Mean(r.RTT.Values))
		}
		res.TP = append(res.TP, tpRow)
		res.RTT = append(res.RTT, rttRow)
	}
	return res, nil
}

// Fprint renders both response surfaces.
func (r *Fig6Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Fig 6: inter-parameter impacts (rows: rpg_time_reset us, cols: Kmax KB)")
	header := func() {
		fmt.Fprintf(w, "%12s", "")
		for _, km := range r.Kmaxes {
			fmt.Fprintf(w, "%10.0f", km/1024)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, " throughput (mean utilization):")
	header()
	for i, tr := range r.TimeResets {
		fmt.Fprintf(w, "%12.0f", tr/float64(eventsim.Microsecond))
		for _, v := range r.TP[i] {
			fmt.Fprintf(w, "%10.3f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, " normalized RTT (higher = lower delay):")
	header()
	for i, tr := range r.TimeResets {
		fmt.Fprintf(w, "%12.0f", tr/float64(eventsim.Microsecond))
		for _, v := range r.RTT[i] {
			fmt.Fprintf(w, "%10.3f", v)
		}
		fmt.Fprintln(w)
	}
}
