package harness

import (
	"bytes"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/trace"
)

// TestChaosAgentCrashDeterministic runs the chaos-agentcrash experiment
// twice with the same seed and requires byte-identical traces: the whole
// fault schedule, every sample, and every dispatch must replay exactly.
func TestChaosAgentCrashDeterministic(t *testing.T) {
	run := func() (*ChaosResult, []byte) {
		var buf bytes.Buffer
		r, err := ChaosAgentCrash(QuickScale(), 40*eventsim.Millisecond, 7, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	r1, t1 := run()
	r2, t2 := run()
	if !bytes.Equal(t1, t2) {
		i := 0
		for i < len(t1) && i < len(t2) && t1[i] == t2[i] {
			i++
		}
		t.Fatalf("traces diverge at byte %d of %d/%d", i, len(t1), len(t2))
	}
	if r1.FrozenIntervals != r2.FrozenIntervals || r1.Dispatches != r2.Dispatches {
		t.Errorf("counters diverge: frozen %d/%d dispatches %d/%d",
			r1.FrozenIntervals, r2.FrozenIntervals, r1.Dispatches, r2.Dispatches)
	}
}

// TestChaosAgentCrashFreezeAndResume checks the degradation semantics:
// the quorum freeze spans exactly the crash window, and tuning resumes
// (dispatches happen) after the restart.
func TestChaosAgentCrashFreezeAndResume(t *testing.T) {
	horizon := 40 * eventsim.Millisecond
	var buf bytes.Buffer
	r, err := ChaosAgentCrash(QuickScale(), horizon, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Crash at 30%, restart at 60% of a 40-interval run: 12 intervals.
	if r.FrozenIntervals != 12 {
		t.Errorf("FrozenIntervals=%d, want 12", r.FrozenIntervals)
	}
	if r.Evictions != 0 {
		t.Errorf("Evictions=%d, want 0 (StaleAfter spans the outage)", r.Evictions)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byKindFault := func(kind, fault string) []trace.Event {
		var out []trace.Event
		for _, e := range trace.Filter(events, kind) {
			if e.Fault == fault {
				out = append(out, e)
			}
		}
		return out
	}
	crash := byKindFault(trace.KindFault, "agent_crash")
	restart := byKindFault(trace.KindRecover, "agent_crash")
	lost := byKindFault(trace.KindFault, "quorum_lost")
	ok := byKindFault(trace.KindRecover, "quorum_ok")
	if len(crash) != 1 || len(restart) != 1 || len(lost) != 1 || len(ok) != 1 {
		t.Fatalf("event counts crash=%d restart=%d lost=%d ok=%d, want 1 each",
			len(crash), len(restart), len(lost), len(ok))
	}
	if crash[0].T != int64(horizon*3/10) {
		t.Errorf("crash at %d, want %d", crash[0].T, int64(horizon*3/10))
	}
	if lost[0].T < crash[0].T || ok[0].T < restart[0].T {
		t.Error("quorum transitions precede their causes")
	}
	// Tuning resumes: dispatches exist after the restart time.
	var after int
	for _, e := range trace.Filter(events, trace.KindDispatch) {
		if e.T > restart[0].T {
			after++
		}
	}
	if after == 0 {
		t.Error("no dispatches after agent restart: tuning never resumed")
	}
	// And none during the frozen window.
	for _, e := range trace.Filter(events, trace.KindDispatch) {
		if e.T > lost[0].T && e.T < ok[0].T {
			t.Errorf("dispatch at %d inside frozen window [%d,%d]", e.T, lost[0].T, ok[0].T)
		}
	}
}

// TestChaosLinkFlapRollsBack checks the acceptance scenario: flapping a
// fabric uplink regresses utility enough that the system reverts to its
// last-known-good parameters, visible as trace events.
func TestChaosLinkFlapRollsBack(t *testing.T) {
	var buf bytes.Buffer
	r, err := ChaosLinkFlap(QuickScale(), 40*eventsim.Millisecond, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rollbacks == 0 {
		t.Fatal("no rollbacks under link flapping")
	}
	if r.Faults == 0 || r.Recovers == 0 {
		t.Errorf("faults=%d recovers=%d, want >0", r.Faults, r.Recovers)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rollbacks := trace.Filter(events, trace.KindRollback)
	if len(rollbacks) != r.Rollbacks {
		t.Errorf("trace has %d rollback events, result says %d", len(rollbacks), r.Rollbacks)
	}
	for _, e := range rollbacks {
		if e.Params == nil {
			t.Error("rollback event without restored params")
		}
	}
	downs := 0
	for _, e := range trace.Filter(events, trace.KindFault) {
		if e.Fault == "link_down" {
			downs++
		}
	}
	if downs != 3 {
		t.Errorf("saw %d link_down events, want 3", downs)
	}
}

// TestChaosCtrlPartitionSurvives runs the real-TCP control plane under
// frame faults plus a controller restart: every interval must complete
// and the clients must have reconnected rather than wedged.
func TestChaosCtrlPartitionSurvives(t *testing.T) {
	r, err := ChaosCtrlPartition(QuickScale(), 30*eventsim.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ticks != 30 {
		t.Errorf("Ticks=%d, want 30", r.Ticks)
	}
	if r.ServerRestarts != 1 {
		t.Errorf("ServerRestarts=%d, want 1", r.ServerRestarts)
	}
	if r.Reconnects == 0 {
		t.Error("no reconnects despite controller restart")
	}
	// Losses are tolerated but must stay a small minority of calls.
	calls := r.Ticks * 3 // 2 agents + 1 driver per interval at QuickScale
	if lost := r.ReportErrors + r.TickErrors; lost > calls/4 {
		t.Errorf("%d/%d calls lost", lost, calls)
	}
}
