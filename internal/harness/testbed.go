package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/ctrlrpc"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/netdev"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestbedConfig drives the §IV-C "real testbed" mode: the data plane is
// simulated, but the control plane is the real thing — per-ToR agents
// upload metrics to a ctrlrpc controller over TCP loopback and apply the
// parameters it returns, exactly as the prototype's switch/server agents
// talk to the Infrawaves controller.
type TestbedConfig struct {
	Scale    Scale
	Server   ctrlrpc.ServerConfig
	Duration eventsim.Time
	// Interval is λ_MI (the paper uses 30 ms on the testbed; the
	// reproduction default follows Scale.Interval).
	Interval eventsim.Time
	Workload func(n *sim.Network) error
	// DrainAfter keeps simulating (without control traffic) until flows
	// finish.
	DrainAfter bool
	MaxTime    eventsim.Time
	// ControllerAddr, when non-empty, connects to an already-running
	// controller (e.g. cmd/paraleon-controller) instead of starting one
	// in-process; Server is then ignored and Server stats are zero.
	ControllerAddr string
	// Telemetry selects the metrics registry the run instruments itself
	// against; nil means telemetry.Default().
	Telemetry *telemetry.Registry
}

// TestbedResult carries the run's series plus control-plane overheads.
type TestbedResult struct {
	Net     *sim.Network
	TP, RTT metrics.Series

	// Server is the controller's own accounting.
	Server ctrlrpc.ServerStats
	// ReportBytes / ParamsBytes are the observed wire sizes of one
	// report and one params frame (Table IV's data-transfer rows).
	ReportBytes, ParamsBytes int
	// AgentBytesOut sums all agent uploads.
	AgentBytesOut int64
	// Dispatches counts parameter applications to the fabric.
	Dispatches int
}

// rackView indexes the per-ToR scope an agent reports on.
type rackView struct {
	tor      topology.NodeID
	hosts    []topology.NodeID
	torPorts []int // host-facing ports on the ToR
}

func rackViews(n *sim.Network) []rackView {
	views := map[topology.NodeID]*rackView{}
	var order []topology.NodeID
	for _, tor := range n.Topo.ToRs() {
		views[tor] = &rackView{tor: tor}
		order = append(order, tor)
	}
	for i := range n.Topo.Links {
		l := &n.Topo.Links[i]
		a, b := n.Topo.Nodes[l.A], n.Topo.Nodes[l.B]
		switch {
		case a.Kind == topology.Host && b.Kind == topology.ToRSwitch:
			v := views[l.B]
			v.hosts = append(v.hosts, l.A)
			v.torPorts = append(v.torPorts, l.BPort)
		case b.Kind == topology.Host && a.Kind == topology.ToRSwitch:
			v := views[l.A]
			v.hosts = append(v.hosts, l.B)
			v.torPorts = append(v.torPorts, l.APort)
		}
	}
	out := make([]rackView, 0, len(order))
	for _, tor := range order {
		out = append(out, *views[tor])
	}
	return out
}

// sampleRack builds one agent's runtime-metric contribution.
func sampleRack(n *sim.Network, v rackView, interval eventsim.Time) (utilSum float64, links int32, rttSum float64, rttCount int64, pauseSum float64, devices int32) {
	seconds := interval.Seconds()
	sw := n.Switch(v.tor)
	for i, host := range v.hosts {
		hp := n.Host(host).Port()
		tp := sw.Port(v.torPorts[i])
		for _, p := range []*netdev.EgressPort{hp, tp} {
			bytes := p.TakeTxDataBytes()
			if bytes <= 0 {
				continue
			}
			u := float64(bytes*8) / (p.RateBps() * seconds)
			if u > 1 {
				u = 1
			}
			utilSum += u
			links++
		}
		s, c := n.Host(host).TakeRTT()
		rttSum += s
		rttCount += c
		hostPause := float64(hp.TakePausedTime()) / float64(interval)
		if hostPause > 1 {
			hostPause = 1
		}
		pauseSum += hostPause
		devices++
	}
	swPause := float64(sw.TakePausedTime()) / (float64(sw.NumPorts()) * float64(interval))
	if swPause > 1 {
		swPause = 1
	}
	pauseSum += swPause
	devices++
	return utilSum, links, rttSum, rttCount, pauseSum, devices
}

// RunTestbed executes one testbed-mode run against a live controller.
func RunTestbed(cfg TestbedConfig) (*TestbedResult, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Scale.Interval
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = cfg.Duration + 10*eventsim.Second
	}
	netCfg := cfg.Scale.Net
	netCfg.Params = cfg.Server.Base
	n, err := sim.New(netCfg)
	if err != nil {
		return nil, err
	}

	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	addr := cfg.ControllerAddr
	var srv *ctrlrpc.Server
	if addr == "" {
		srvCfg := cfg.Server
		if srvCfg.Telemetry == nil {
			srvCfg.Telemetry = reg
		}
		srv, err = ctrlrpc.Serve("127.0.0.1:0", srvCfg)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		addr = srv.Addr()
	}

	rpcTM := telemetry.NewRPCMetrics(reg)
	sketchTM := telemetry.NewSketchMetrics(reg)
	views := rackViews(n)
	agents := make([]*monitor.SwitchAgent, len(views))
	clients := make([]*ctrlrpc.Client, len(views))
	for i, v := range views {
		agents[i] = monitor.NewSwitchAgent(monitor.ParaleonAgentConfig(), uint64(i+1))
		agents[i].TM = sketchTM
		agents[i].Attach(n.Switch(v.tor))
		c, err := ctrlrpc.Dial(addr)
		if err != nil {
			return nil, err
		}
		c.TM = rpcTM
		defer c.Close()
		clients[i] = c
	}
	driver, err := ctrlrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	driver.TM = rpcTM
	defer driver.Close()

	for _, h := range n.Hosts {
		h.StartProbing(cfg.Interval / 4)
	}
	if err := cfg.Workload(n); err != nil {
		return nil, err
	}

	res := &TestbedResult{Net: n}
	ticks := int(cfg.Duration / cfg.Interval)
	for seq := 1; seq <= ticks; seq++ {
		n.Run(eventsim.Time(seq) * cfg.Interval)
		now := n.Eng.Now()
		var tpSum, rttSum float64
		var tpLinks int32
		var rttN int64
		for i, v := range views {
			mr := agents[i].EndInterval()
			r := ctrlrpc.Report{AgentID: uint32(i), Seq: uint64(seq), Flows: int32(mr.Flows)}
			r.Hist = mr.Hist
			r.ElephantBytes = mr.ElephantBytes
			r.MiceBytes = mr.MiceBytes
			r.ElephantFlowsW = mr.ElephantFlowsW
			r.MiceFlowsW = mr.MiceFlowsW
			us, links, rs, rc, ps, dev := sampleRack(n, v, cfg.Interval)
			r.UtilSum, r.ActiveLinks = us, links
			r.RTTNormSum, r.RTTCount = rs, rc
			r.PauseFracSum, r.Devices = ps, dev
			before := clients[i].BytesOut
			if err := clients[i].SendReport(r); err != nil {
				return nil, fmt.Errorf("testbed: report: %w", err)
			}
			res.ReportBytes = int(clients[i].BytesOut - before)
			res.AgentBytesOut += clients[i].BytesOut - before
			tpSum += us
			tpLinks += links
			rttSum += rs
			rttN += rc
		}
		beforeIn := driver.BytesIn
		tick, err := driver.Tick(uint64(seq), time.Duration(cfg.Interval))
		if err != nil {
			return nil, fmt.Errorf("testbed: tick: %w", err)
		}
		res.ParamsBytes = int(driver.BytesIn - beforeIn)
		if tick.Changed {
			n.ApplyParams(tick.Params)
			res.Dispatches++
			// Every agent confirms the applied (epoch, vector-hash) so the
			// controller's quorum view covers the whole fabric.
			hash := dispatch.VectorHash(&tick.Params)
			for i := range clients {
				ack := ctrlrpc.AckMsg{AgentID: uint32(i), Epoch: tick.Epoch, VectorHash: hash, Applied: true}
				if err := clients[i].SendApplyAck(ack); err != nil {
					return nil, fmt.Errorf("testbed: apply-ack: %w", err)
				}
			}
		}
		tp := 0.0
		if tpLinks > 0 {
			tp = tpSum / float64(tpLinks)
		}
		rtt := 1.0
		if rttN > 0 {
			rtt = rttSum / float64(rttN)
		}
		res.TP.Append(now, tp)
		res.RTT.Append(now, rtt)
	}
	if cfg.DrainAfter {
		n.RunUntilIdle(cfg.MaxTime)
	}
	if srv != nil {
		res.Server = srv.Stats()
	}
	return res, nil
}

// --- Fig 13: testbed alltoall bandwidth vs scale ---

// Fig13Result maps worker count × scheme to mean alltoall goodput (Gbps).
type Fig13Result struct {
	WorkerCounts []int
	GoodputGbps  map[int]map[string]float64
	Order        []string
}

// Fig13 compares default, expert, and TCP-control-plane Paraleon on a
// sustained alltoall at several scales. Every arm runs rounds
// continuously for duration; goodput is averaged over the rounds of the
// second half so the adaptive arm is measured after its tuning settles,
// the same way the paper reports steady-state testbed bandwidth.
func Fig13(scale Scale, workerCounts []int, msg int64, duration eventsim.Time) (*Fig13Result, error) {
	res := &Fig13Result{
		WorkerCounts: workerCounts,
		GoodputGbps:  map[int]map[string]float64{},
		Order:        []string{"default", "expert", "paraleon"},
	}
	half := duration / 2
	for _, wc := range workerCounts {
		res.GoodputGbps[wc] = map[string]float64{}
		wl := func(n *sim.Network) (*workload.AlltoallGen, error) {
			return workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      n.Topo.Hosts()[:wc],
				MessageBytes: msg,
				OffTime:      2 * eventsim.Millisecond,
			})
		}
		// Static arms run in plain simulation.
		for _, sc := range []Scheme{DefaultScheme(), ExpertScheme()} {
			netCfg := scale.Net
			netCfg.Params = sc.Static
			n, err := sim.New(netCfg)
			if err != nil {
				return nil, err
			}
			g, err := wl(n)
			if err != nil {
				return nil, err
			}
			n.Run(duration)
			g.Stop()
			n.RunUntilIdle(duration + eventsim.Second)
			res.GoodputGbps[wc][sc.Name] = lateGoodputGbps(g, half)
		}
		// Paraleon runs behind the real control plane. Drain manually so
		// the generator stops launching rounds first — DrainAfter would
		// keep the collective running until MaxTime.
		var gen *workload.AlltoallGen
		srvCfg := ctrlrpc.DefaultServerConfig()
		srvCfg.SA = core.ShortSAConfig()
		tb, err := RunTestbed(TestbedConfig{
			Scale:    scale,
			Server:   srvCfg,
			Duration: duration,
			Workload: func(n *sim.Network) error {
				var err error
				gen, err = wl(n)
				return err
			},
		})
		if err != nil {
			return nil, err
		}
		gen.Stop()
		tb.Net.RunUntilIdle(duration + eventsim.Second)
		res.GoodputGbps[wc]["paraleon"] = lateGoodputGbps(gen, half)
	}
	return res, nil
}

// lateGoodputGbps averages round goodput over rounds completing at or
// after the cutoff (all rounds if none qualify).
func lateGoodputGbps(g *workload.AlltoallGen, after eventsim.Time) float64 {
	if g.RoundsDone == 0 {
		return 0
	}
	var sum float64
	n := 0
	for r := 0; r < g.RoundsDone; r++ {
		if g.RoundEnds[r] >= after {
			sum += g.AggregateGoodputBps(r)
			n++
		}
	}
	if n == 0 {
		for r := 0; r < g.RoundsDone; r++ {
			sum += g.AggregateGoodputBps(r)
		}
		n = g.RoundsDone
	}
	return sum / float64(n) / 1e9
}

// Fprint renders the bandwidth table.
func (r *Fig13Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Fig 13: testbed alltoall mean aggregate goodput (Gbps)")
	fmt.Fprintf(w, "  %-10s", "scheme")
	for _, wc := range r.WorkerCounts {
		fmt.Fprintf(w, "%10d", wc)
	}
	fmt.Fprintln(w)
	for _, name := range r.Order {
		fmt.Fprintf(w, "  %-10s", name)
		for _, wc := range r.WorkerCounts {
			fmt.Fprintf(w, "%10.2f", r.GoodputGbps[wc][name])
		}
		fmt.Fprintln(w)
	}
}

// --- Fig 14: testbed influx (alltoall + SolarRPC) ---

// Fig14Result holds per-scheme series for the testbed influx scenario.
type Fig14Result struct {
	Spec    InfluxSpec
	Order   []string
	TP, RTT map[string]*metrics.Series
}

// TestbedInfluxSpec sizes the §IV-C influx: the SolarRPC burst arrives at
// a load the fabric can actually serve once retuned — an overloaded burst
// grows queues monotonically no matter the parameters, leaving nothing
// for any scheme to win.
func TestbedInfluxSpec() InfluxSpec {
	spec := DefaultInfluxSpec()
	spec.BurstLoad = 0.35
	return spec
}

// Fig14 runs alltoall background traffic with a SolarRPC burst: static
// arms in plain simulation, Paraleon behind the TCP control plane.
func Fig14(scale Scale, spec InfluxSpec) (*Fig14Result, error) {
	res := &Fig14Result{
		Spec: spec,
		TP:   map[string]*metrics.Series{},
		RTT:  map[string]*metrics.Series{},
	}
	install := func(n *sim.Network) error {
		hosts := n.Topo.Hosts()
		_, err := workload.InstallInflux(n, workload.InfluxConfig{
			Background: workload.AlltoallConfig{
				Workers:      hosts[:spec.Workers],
				MessageBytes: spec.Message,
				OffTime:      5 * eventsim.Millisecond,
			},
			Burst: workload.PoissonConfig{
				Hosts:    hosts,
				CDF:      workload.SolarRPC(),
				Load:     spec.BurstLoad,
				Start:    spec.BurstAt,
				Duration: spec.BurstLen,
			},
		})
		return err
	}
	statics := []Scheme{DefaultScheme(), ExpertScheme()}
	cfgs := make([]RunConfig, 0, len(statics))
	for _, sc := range statics {
		cfgs = append(cfgs, RunConfig{
			Net:      scale.Net,
			Scheme:   sc,
			Interval: scale.Interval,
			Duration: spec.Horizon,
			Workload: install,
		})
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		tp, rtt := r.TP, r.RTT
		res.TP[statics[i].Name], res.RTT[statics[i].Name] = &tp, &rtt
		res.Order = append(res.Order, statics[i].Name)
	}
	srvCfg := ctrlrpc.DefaultServerConfig()
	srvCfg.SA = core.ShortSAConfig()
	tb, err := RunTestbed(TestbedConfig{
		Scale:    scale,
		Server:   srvCfg,
		Duration: spec.Horizon,
		Workload: install,
	})
	if err != nil {
		return nil, err
	}
	res.TP["paraleon"], res.RTT["paraleon"] = &tb.TP, &tb.RTT
	res.Order = append(res.Order, "paraleon")
	return res, nil
}

// Fprint renders burst-phase means.
func (r *Fig14Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Fig 14: testbed influx (SolarRPC burst at %v for %v)\n", r.Spec.BurstAt, r.Spec.BurstLen)
	fmt.Fprintf(w, "  %-10s %22s %22s\n", "scheme", "TP during burst", "RTTnorm during burst")
	for _, name := range r.Order {
		from, to := r.Spec.BurstAt, r.Spec.BurstAt+r.Spec.BurstLen
		fmt.Fprintf(w, "  %-10s %22.3f %22.3f\n", name,
			r.TP[name].MeanOver(from, to), r.RTT[name].MeanOver(from, to))
	}
}

// --- Table IV: system overheads ---

// Table4Result reports the control plane's measured overheads.
type Table4Result struct {
	// Data transfer per monitor interval.
	SwitchToControllerBytes int
	ControllerToFabricBytes int
	AgentTotalBytes         int64
	// Controller compute per tick.
	ProcessingPerTick time.Duration
	// Agent memory: sketch + tracker footprint estimate.
	AgentMemoryBytes int
	Ticks            int64
}

// Table4 measures overheads from a testbed run.
func Table4(scale Scale, duration eventsim.Time) (*Table4Result, error) {
	srvCfg := ctrlrpc.DefaultServerConfig()
	srvCfg.SA = core.ShortSAConfig()
	tb, err := RunTestbed(TestbedConfig{
		Scale:    scale,
		Server:   srvCfg,
		Duration: duration,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallPoisson(n, workload.PoissonConfig{
				CDF: workload.FBHadoop(), Load: 0.3,
			})
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	st := tb.Server
	res := &Table4Result{
		SwitchToControllerBytes: tb.ReportBytes,
		ControllerToFabricBytes: tb.ParamsBytes,
		AgentTotalBytes:         tb.AgentBytesOut,
		Ticks:                   st.Ticks,
	}
	if st.Ticks > 0 {
		res.ProcessingPerTick = st.Processing / time.Duration(st.Ticks)
	}
	// Sketch: 512 heavy buckets (~32 B each) + 4×2048 light counters
	// (8 B each), plus tracker entries.
	res.AgentMemoryBytes = 512*32 + 4*2048*8
	return res, nil
}

// Fprint renders the overhead table.
func (r *Table4Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table IV: Paraleon system overheads (measured)")
	fmt.Fprintf(w, "  switch→controller per interval: %d B\n", r.SwitchToControllerBytes)
	fmt.Fprintf(w, "  controller→fabric per interval: %d B\n", r.ControllerToFabricBytes)
	fmt.Fprintf(w, "  controller compute per tick:    %v\n", r.ProcessingPerTick)
	fmt.Fprintf(w, "  agent memory (sketch+window):   %d B\n", r.AgentMemoryBytes)
	fmt.Fprintf(w, "  intervals processed:            %d\n", r.Ticks)
}
