package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventsim"
)

// The golden traces under testdata/ were captured from the pre-pool build
// (container/heap engine, per-packet allocation, per-row sketch hashing)
// at seed 7, QuickScale, 40 ms horizon. Replaying the same experiments on
// the pooled engine and comparing bytes proves the zero-allocation rewrite
// preserved simulation behavior exactly — not just "still passes tests"
// but bit-for-bit the same fault schedule, samples, and dispatches.
//
// Regenerate (only if an intentional semantic change lands) with:
//
//	go run ./cmd/paraleon-sim -exp chaos-linkflap -scale quick \
//	   -chaos-seed 7 -chaos-trace internal/harness/testdata/chaos_linkflap_seed7_quick.golden.jsonl
//
// and likewise for chaos-agentcrash.
func TestChaosTraceGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		run    func(traceTo *bytes.Buffer) error
	}{
		{
			name:   "linkflap",
			golden: "chaos_linkflap_seed7_quick.golden.jsonl",
			run: func(buf *bytes.Buffer) error {
				_, err := ChaosLinkFlap(QuickScale(), 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
		{
			name:   "agentcrash",
			golden: "chaos_agentcrash_seed7_quick.golden.jsonl",
			run: func(buf *bytes.Buffer) error {
				_, err := ChaosAgentCrash(QuickScale(), 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tc.run(&buf); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()
			if bytes.Equal(got, want) {
				return
			}
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			snip := func(b []byte) string {
				hi := i + 80
				if hi > len(b) {
					hi = len(b)
				}
				if lo > len(b) {
					return ""
				}
				return string(b[lo:hi])
			}
			t.Fatalf("trace diverges from pre-pool golden at byte %d (got %d bytes, want %d)\n got: …%s…\nwant: …%s…",
				i, len(got), len(want), snip(got), snip(want))
		})
	}
}
