package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventsim"
)

// diffTraces fails the test with a snippet around the first divergent byte
// of two traces that should have been identical.
func diffTraces(t *testing.T, what string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	snip := func(b []byte) string {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		if lo > len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	t.Fatalf("%s at byte %d (got %d bytes, want %d)\n got: …%s…\nwant: …%s…",
		what, i, len(got), len(want), snip(got), snip(want))
}

// The golden traces under testdata/ were captured from the pre-pool build
// (container/heap engine, per-packet allocation, per-row sketch hashing)
// at seed 7, QuickScale, 40 ms horizon. Replaying the same experiments on
// the pooled engine and comparing bytes proves the zero-allocation rewrite
// preserved simulation behavior exactly — not just "still passes tests"
// but bit-for-bit the same fault schedule, samples, and dispatches.
//
// Regenerate (only if an intentional semantic change lands) with:
//
//	go run ./cmd/paraleon-sim -exp chaos-linkflap -scale quick \
//	   -chaos-seed 7 -chaos-trace internal/harness/testdata/chaos_linkflap_seed7_quick.golden.jsonl
//
// and likewise for chaos-agentcrash.
func TestChaosTraceGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		run    func(traceTo *bytes.Buffer) error
	}{
		{
			name:   "linkflap",
			golden: "chaos_linkflap_seed7_quick.golden.jsonl",
			run: func(buf *bytes.Buffer) error {
				_, err := ChaosLinkFlap(QuickScale(), 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
		{
			name:   "agentcrash",
			golden: "chaos_agentcrash_seed7_quick.golden.jsonl",
			run: func(buf *bytes.Buffer) error {
				_, err := ChaosAgentCrash(QuickScale(), 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tc.run(&buf); err != nil {
				t.Fatal(err)
			}
			diffTraces(t, "trace diverges from pre-pool golden", buf.Bytes(), want)
		})
	}
}

// TestChaosTraceGoldenSuppressed replays the linkflap golden with
// quiescent-QP timer suppression enabled. Suppression elides timer fires
// that provably change no observable state (see dcqcn.RP.SetSuppression),
// so the trace — fault schedule, samples, dispatches — must stay
// byte-identical to the stock golden even though the engine processes
// fewer events. This pins the invariance argument against the full
// chaos stack, not just the RP unit tests.
func TestChaosTraceGoldenSuppressed(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "chaos_linkflap_seed7_quick.golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	scale := QuickScale()
	scale.Net.SuppressQuiescentTimers = true
	var buf bytes.Buffer
	if _, err := ChaosLinkFlap(scale, 40*eventsim.Millisecond, 7, &buf); err != nil {
		t.Fatal(err)
	}
	diffTraces(t, "suppressed trace diverges from stock golden", buf.Bytes(), want)
}

// TestChaosTraceGoldenSharded is the determinism contract applied to the
// full chaos stack: the same experiment at the same seed must emit a
// byte-identical trace whether the fabric runs on one engine shard or
// several. -shards=4 clamps to QuickScale's 2 ToR pods, so this exercises
// real cross-shard handoff on every leaf traversal while the control loop,
// fault injector, and trace recorder all ride the global engine.
//
// The sharded goldens differ from the single-engine ones: completion hooks
// (the alltoall round chaining) fire at window boundaries under sharding,
// which shifts when follow-on flows start. That shift is identical for
// every shard count — which is exactly what this test pins down.
//
// Regenerate alongside the legacy goldens with:
//
//	go run ./cmd/paraleon-sim -exp chaos-linkflap -scale quick -shards 4 \
//	   -chaos-seed 7 -chaos-trace internal/harness/testdata/chaos_linkflap_seed7_quick_sharded.golden.jsonl
//
// and likewise for chaos-agentcrash.
func TestChaosTraceGoldenSharded(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		run    func(shards int, traceTo *bytes.Buffer) error
	}{
		{
			name:   "linkflap",
			golden: "chaos_linkflap_seed7_quick_sharded.golden.jsonl",
			run: func(shards int, buf *bytes.Buffer) error {
				scale := QuickScale()
				scale.Net.Shards = shards
				_, err := ChaosLinkFlap(scale, 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
		{
			name:   "agentcrash",
			golden: "chaos_agentcrash_seed7_quick_sharded.golden.jsonl",
			run: func(shards int, buf *bytes.Buffer) error {
				scale := QuickScale()
				scale.Net.Shards = shards
				_, err := ChaosAgentCrash(scale, 40*eventsim.Millisecond, 7, buf)
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var one, four bytes.Buffer
			if err := tc.run(1, &one); err != nil {
				t.Fatal(err)
			}
			if err := tc.run(4, &four); err != nil {
				t.Fatal(err)
			}
			diffTraces(t, "-shards=4 trace diverges from -shards=1", four.Bytes(), one.Bytes())
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			diffTraces(t, "sharded trace diverges from golden", one.Bytes(), want)
		})
	}
}
