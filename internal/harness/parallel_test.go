package harness

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// sweepConfigs builds a small 2-scheme × 3-seed sweep, the shape the
// determinism contract is stated for.
func sweepConfigs(dur eventsim.Time) []RunConfig {
	scale := QuickScale()
	var cfgs []RunConfig
	for _, sc := range []Scheme{DefaultScheme(), ExpertScheme()} {
		for _, seed := range []int64{1, 2, 3} {
			net := scale.Net
			net.Seed = seed
			cfgs = append(cfgs, RunConfig{
				Net:        net,
				Scheme:     sc,
				Interval:   scale.Interval,
				Duration:   dur,
				DrainAfter: true,
				Workload:   fbWorkload(0.3, dur),
			})
		}
	}
	return cfgs
}

func seriesEqual(a, b metrics.Series) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		av, bv := a.Values[i], b.Values[i]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

// assertResultsEqual demands bit-identical outputs: every metric series,
// every completed-flow record, and the tuner counters.
func assertResultsEqual(t *testing.T, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if (g == nil) != (w == nil) {
			t.Fatalf("arm %d: nil mismatch", i)
		}
		if g == nil {
			continue
		}
		if g.SchemeName != w.SchemeName {
			t.Errorf("arm %d: scheme %q != %q", i, g.SchemeName, w.SchemeName)
		}
		for _, s := range []struct {
			name string
			g, w metrics.Series
		}{
			{"TP", g.TP, w.TP}, {"RTT", g.RTT, w.RTT},
			{"PFC", g.PFC, w.PFC}, {"Utility", g.Utility, w.Utility},
			{"Accuracy", g.Accuracy, w.Accuracy},
		} {
			if !seriesEqual(s.g, s.w) {
				t.Errorf("arm %d: %s series differs", i, s.name)
			}
		}
		if !reflect.DeepEqual(g.Net.Completed, w.Net.Completed) {
			t.Errorf("arm %d: completed flow records differ (%d vs %d flows)",
				i, len(g.Net.Completed), len(w.Net.Completed))
		}
		if g.Triggers != w.Triggers || g.Dispatches != w.Dispatches || g.Rounds != w.Rounds {
			t.Errorf("arm %d: tuner counters differ", i)
		}
		if !reflect.DeepEqual(g.UtilTrace, w.UtilTrace) {
			t.Errorf("arm %d: utility trace differs", i)
		}
	}
}

// TestRunAllMatchesSequential is the determinism contract: a parallel
// sweep must be bit-identical to the same sweep run one arm at a time.
func TestRunAllMatchesSequential(t *testing.T) {
	const dur = 10 * eventsim.Millisecond
	seq, err := RunAll(sweepConfigs(dur), ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(sweepConfigs(dur), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, par, seq)
}

func TestRunAllPanicRecovery(t *testing.T) {
	cfgs := sweepConfigs(5 * eventsim.Millisecond)[:3]
	cfgs[1].Workload = func(n *sim.Network) error {
		panic("rigged workload")
	}
	results, err := RunAll(cfgs, ParallelOptions{Workers: 2})
	if err == nil {
		t.Fatal("want error from panicking arm")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "rigged workload") {
		t.Errorf("error does not describe the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "arm 1") {
		t.Errorf("error does not name the failing arm: %v", err)
	}
	if results[1] != nil {
		t.Error("panicking arm produced a result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Errorf("healthy arm %d lost its result", i)
		}
	}
}

func TestRunAllErrorTagging(t *testing.T) {
	sentinel := errors.New("bad workload")
	cfgs := sweepConfigs(5 * eventsim.Millisecond)[:2]
	cfgs[0].Workload = func(n *sim.Network) error { return sentinel }
	results, err := RunAll(cfgs, ParallelOptions{Workers: 2})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
	if results[0] != nil || results[1] == nil {
		t.Error("result slots do not match per-arm outcomes")
	}
}

func TestRunAllProgress(t *testing.T) {
	cfgs := sweepConfigs(5 * eventsim.Millisecond)[:4]
	var mu sync.Mutex
	var dones []int
	seen := map[int]bool{}
	_, err := RunAll(cfgs, ParallelOptions{
		Workers: 2,
		Progress: func(st ArmStatus) {
			mu.Lock()
			defer mu.Unlock()
			dones = append(dones, st.Done)
			seen[st.Index] = true
			if st.Total != len(cfgs) {
				t.Errorf("Total = %d, want %d", st.Total, len(cfgs))
			}
			if st.Err != nil {
				t.Errorf("arm %d reported error: %v", st.Index, st.Err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(cfgs) || len(seen) != len(cfgs) {
		t.Fatalf("progress fired %d times for %d distinct arms, want %d", len(dones), len(seen), len(cfgs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("Done sequence %v not monotone 1..N", dones)
			break
		}
	}
}

func TestRunAllDeriveSeeds(t *testing.T) {
	base := sweepConfigs(5 * eventsim.Millisecond)[0]
	cfgs := []RunConfig{base, base} // identical arms
	derived, err := RunAll(cfgs, ParallelOptions{Workers: 2, DeriveSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(derived[0].Net.Completed, derived[1].Net.Completed) {
		t.Error("derived seeds produced identical arms; want independent draws")
	}
	again, err := RunAll(cfgs, ParallelOptions{Workers: 1, DeriveSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, derived, again)
}

func TestRunAllEmpty(t *testing.T) {
	results, err := RunAll(nil, ParallelOptions{})
	if err != nil || len(results) != 0 {
		t.Fatalf("RunAll(nil) = %v, %v", results, err)
	}
}

func TestDeriveArmSeed(t *testing.T) {
	seen := map[int64]bool{}
	for arm := 0; arm < 100; arm++ {
		s := DeriveArmSeed(1, arm)
		if s < 0 {
			t.Fatalf("arm %d: negative seed %d", arm, s)
		}
		if s2 := DeriveArmSeed(1, arm); s2 != s {
			t.Fatalf("arm %d: derivation not pure (%d vs %d)", arm, s, s2)
		}
		if seen[s] {
			t.Fatalf("arm %d: seed %d collides", arm, s)
		}
		seen[s] = true
	}
	if DeriveArmSeed(1, 0) == DeriveArmSeed(2, 0) {
		t.Error("different base seeds derived the same arm seed")
	}
}

// BenchmarkRunAll compares a 4-arm sweep run sequentially and with one
// worker per CPU. On a multicore machine (≥ 4 cores) the parallel
// variant should come out ≥ 2× faster; on a single core they tie.
func BenchmarkRunAll(b *testing.B) {
	const dur = 10 * eventsim.Millisecond
	cfgs := sweepConfigs(dur)[:4]
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunAll(cfgs, ParallelOptions{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
