package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// WriteCSVs exports each scheme's influx timeline (throughput and
// normalized RTT per monitor interval) as <dir>/<prefix>_<scheme>.csv.
func (r *InfluxResult) WriteCSVs(dir, prefix string) error {
	return writeSchemeSeries(dir, prefix, r.Order, r.TP, r.RTT)
}

// WriteCSVs exports the testbed influx timelines the same way.
func (r *Fig14Result) WriteCSVs(dir, prefix string) error {
	return writeSchemeSeries(dir, prefix, r.Order, r.TP, r.RTT)
}

func writeSchemeSeries(dir, prefix string, order []string, tp, rtt map[string]*metrics.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range order {
		t, rt := tp[name], rtt[name]
		t.Name, rt.Name = "tp", "rttnorm"
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", prefix, name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := metrics.WriteSeriesCSV(f, t, rt); err != nil {
			f.Close()
			return fmt.Errorf("harness: write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDFCSVs exports each (worker count, scheme) FCT CDF as
// <dir>/<prefix>_<workers>w_<scheme>.csv.
func (r *Fig7LLMResult) WriteCDFCSVs(dir, prefix string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, wc := range r.WorkerCounts {
		for _, name := range r.Order {
			path := filepath.Join(dir, fmt.Sprintf("%s_%dw_%s.csv", prefix, wc, name))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := metrics.WriteCDFCSV(f, r.CDFs[wc][name]); err != nil {
				f.Close()
				return fmt.Errorf("harness: write %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
