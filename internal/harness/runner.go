// Package harness runs the paper's experiments: it builds a network,
// installs a tuning scheme and a workload, drives the monitor-interval
// loop while recording time series, and returns everything the reporting
// layer needs to print each table and figure.
package harness

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/rnic"
	"repro/internal/sim"
)

// SchemeKind enumerates the tuning/monitoring schemes under comparison.
type SchemeKind int

const (
	// KindStatic applies fixed parameters (default, expert, pretrained).
	KindStatic SchemeKind = iota
	// KindParaleon is the full system; variants differ via SystemCfg.
	KindParaleon
	// KindACC is the per-switch RL ECN baseline.
	KindACC
	// KindDCQCNPlus is the incast-adaptive baseline.
	KindDCQCNPlus
)

// Scheme describes one arm of an experiment.
type Scheme struct {
	Kind SchemeKind
	Name string
	// Static is the fixed setting for KindStatic (and the initial
	// setting for every other kind).
	Static dcqcn.Params
	// SystemCfg configures KindParaleon.
	SystemCfg core.SystemConfig
	// FSDMode selects the Paraleon controller's FSD inputs.
	FSDMode FSDMode
	// ACCCfg / DPlusCfg configure the corresponding baselines.
	ACCCfg   baselines.ACCConfig
	DPlusCfg baselines.DCQCNPlusConfig
	// TriggerAtStart force-starts a tuning session on the first
	// interval (used when the FSD source cannot trigger, e.g. NoFSD).
	TriggerAtStart bool
}

// FSDMode selects what feeds the controller's flow-size distribution.
type FSDMode int

const (
	// FSDParaleon uses sketch agents with insert-once + ternary states.
	FSDParaleon FSDMode = iota
	// FSDNaiveElastic uses raw Elastic Sketch agents.
	FSDNaiveElastic
	// FSDNetFlow uses 1:100-sampled, second-granularity agents.
	FSDNetFlow
	// FSDNone gives the tuner no distribution (the No-FSD arm).
	FSDNone
	// FSDRNIC measures at host RNICs via per-QP counters (the §V
	// "no programmable switches" extension).
	FSDRNIC
)

// DefaultScheme is the NVIDIA static setting.
func DefaultScheme() Scheme {
	return Scheme{Kind: KindStatic, Name: "default", Static: dcqcn.DefaultParams()}
}

// ExpertScheme is the Table I static setting.
func ExpertScheme() Scheme {
	return Scheme{Kind: KindStatic, Name: "expert", Static: dcqcn.ExpertParams()}
}

// StaticScheme applies an arbitrary fixed setting (pretrained arms).
func StaticScheme(name string, p dcqcn.Params) Scheme {
	return Scheme{Kind: KindStatic, Name: name, Static: p}
}

// ParaleonScheme is the full system. It uses the compressed SA schedule
// (core.ShortSAConfig) so tuning settles within the short horizons of
// reproduction runs; ParaleonSchemePaper keeps the Table III schedule.
func ParaleonScheme() Scheme {
	sysCfg := core.DefaultSystemConfig()
	sysCfg.SA = core.ShortSAConfig()
	return Scheme{
		Kind:      KindParaleon,
		Name:      "paraleon",
		Static:    dcqcn.DefaultParams(),
		SystemCfg: sysCfg,
		FSDMode:   FSDParaleon,
	}
}

// ParaleonSchemePaper is the full system with the exact Table III SA
// schedule (a ~270-interval session).
func ParaleonSchemePaper() Scheme {
	sc := ParaleonScheme()
	sc.SystemCfg = core.DefaultSystemConfig()
	return sc
}

// ACCScheme is the RL ECN baseline.
func ACCScheme() Scheme {
	return Scheme{
		Kind:   KindACC,
		Name:   "acc",
		Static: dcqcn.DefaultParams(),
		ACCCfg: baselines.DefaultACCConfig(),
	}
}

// DCQCNPlusScheme is the incast-adaptive baseline.
func DCQCNPlusScheme() Scheme {
	return Scheme{
		Kind:     KindDCQCNPlus,
		Name:     "dcqcn+",
		Static:   dcqcn.DefaultParams(),
		DPlusCfg: baselines.DefaultDCQCNPlusConfig(),
	}
}

// RunConfig is one experiment arm's execution plan.
type RunConfig struct {
	Net    sim.Config
	Scheme Scheme
	// Interval is the sampling/monitor interval λ_MI.
	Interval eventsim.Time
	// Duration runs the simulation to this virtual time; with DrainFirst
	// the run continues (without sampling) until all flows finish or
	// MaxTime is hit.
	Duration   eventsim.Time
	DrainAfter bool
	MaxTime    eventsim.Time
	// Workload installs traffic on the fresh network.
	Workload func(n *sim.Network) error
	// TrackAccuracy attaches ground-truth oracles and scores the
	// scheme's FSD each interval (only meaningful when the scheme has an
	// FSD estimate).
	TrackAccuracy bool
}

// Result is everything one run produced.
type Result struct {
	SchemeName string
	Net        *sim.Network

	// TP/RTT/PFC are per-interval normalized runtime metrics; Utility is
	// Equation (1) under the scheme's weights (default weights for
	// schemes without a tuner).
	TP, RTT, PFC, Utility metrics.Series
	// Accuracy is the per-interval FSD accuracy vs ground truth.
	Accuracy metrics.Series

	// Triggers/Dispatches/Rounds summarize tuner activity (Paraleon
	// arms only).
	Triggers, Dispatches, Rounds int
	// UtilTrace is the tuner's best-so-far trace (Fig 12).
	UtilTrace []float64
}

// MeanAccuracy averages the accuracy series (NaN if empty).
func (r *Result) MeanAccuracy() float64 { return metrics.Mean(r.Accuracy.Values) }

// Summary computes the run's FCT summary.
func (r *Result) Summary() metrics.FCTSummary {
	return metrics.Summarize(r.Net, r.Net.Completed)
}

// Run executes one experiment arm.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = eventsim.Millisecond
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = cfg.Duration * 4
		if cfg.MaxTime < cfg.Duration+eventsim.Second {
			cfg.MaxTime = cfg.Duration + eventsim.Second
		}
	}
	netCfg := cfg.Net
	netCfg.Params = cfg.Scheme.Static
	n, err := sim.New(netCfg)
	if err != nil {
		return nil, err
	}
	res := &Result{SchemeName: cfg.Scheme.Name, Net: n}

	// Ground-truth oracles (optional).
	var truth *monitor.Controller
	var oracles []*monitor.Oracle
	if cfg.TrackAccuracy {
		var sources []monitor.ReportSource
		for _, tor := range n.Topo.ToRs() {
			o := monitor.NewOracle(n.Topo, tor, 1<<20, n.FlowSize)
			oracles = append(oracles, o)
			sources = append(sources, o)
		}
		truth = monitor.NewController(0.01, sources...)
	}

	// Scheme installation.
	var sys *core.System
	var collector *monitor.RuntimeCollector
	weights := core.DefaultWeights()
	switch cfg.Scheme.Kind {
	case KindParaleon:
		sysCfg := cfg.Scheme.SystemCfg
		sysCfg.Interval = cfg.Interval
		sysCfg.Sources = buildSources(n, cfg.Scheme, cfg.Interval, oracles)
		sys, err = core.Attach(n, sysCfg)
		if err != nil {
			return nil, err
		}
		weights = sysCfg.Weights
		if weights.Validate() != nil {
			weights = core.DefaultWeights()
		}
		sys.StartProbingOnly()
	case KindACC:
		acc := baselines.InstallACC(n, cfg.Scheme.ACCCfg)
		acc.Start()
		collector = monitor.NewRuntimeCollector(n)
		collector.StartProbing(cfg.Interval / 4)
	case KindDCQCNPlus:
		dp := baselines.InstallDCQCNPlus(n, cfg.Scheme.DPlusCfg)
		dp.Start()
		collector = monitor.NewRuntimeCollector(n)
		collector.StartProbing(cfg.Interval / 4)
	case KindStatic:
		collector = monitor.NewRuntimeCollector(n)
		collector.StartProbing(cfg.Interval / 4)
	default:
		return nil, fmt.Errorf("harness: unknown scheme kind %d", cfg.Scheme.Kind)
	}

	// For oracle taps on non-Paraleon schemes the oracle needs to see
	// packets: attach oracle taps where no agent tap exists.
	if cfg.TrackAccuracy && cfg.Scheme.Kind != KindParaleon {
		for i, tor := range n.Topo.ToRs() {
			monitor.TapAll(n.Switch(tor), oracles[i].OnPacket)
		}
	}

	if err := cfg.Workload(n); err != nil {
		return nil, err
	}

	if cfg.Scheme.TriggerAtStart && sys != nil {
		n.Eng.Schedule(cfg.Interval+1, func() { sys.TriggerNow() })
	}

	// The measurement loop.
	ticks := int(cfg.Duration / cfg.Interval)
	for i := 1; i <= ticks; i++ {
		n.Run(eventsim.Time(i) * cfg.Interval)
		now := n.Eng.Now()
		var sample monitor.RuntimeSample
		if sys != nil {
			sys.TickOnce()
			sample = sys.LastSample
		} else {
			sample = collector.Sample(cfg.Interval)
		}
		res.TP.Append(now, sample.OTP)
		res.RTT.Append(now, sample.ORTT)
		res.PFC.Append(now, sample.OPFC)
		res.Utility.Append(now, core.Utility(sample, weights))
		if truth != nil {
			tr := truth.Tick()
			if tr.TotalBytes > 0 {
				var est monitor.FSD
				if sys != nil {
					est = sys.Controller.Current
				}
				res.Accuracy.Append(now, monitor.Accuracy(est, tr))
			}
		}
	}
	if cfg.DrainAfter {
		// Keep the closed loop alive while the tail drains: as mice
		// finish and elephants take dominance the tuner must be able to
		// swing throughput-friendly (the §IV-B1 narrative).
		for n.Eng.Now() < cfg.MaxTime && n.ActiveFlows() > 0 {
			n.Run(n.Eng.Now() + cfg.Interval)
			if sys != nil {
				sys.TickOnce()
			} else if collector != nil {
				collector.Sample(cfg.Interval)
			}
			if truth != nil {
				truth.Tick()
			}
		}
		// Flush in-flight deliveries so receivers record completions.
		n.Run(n.Eng.Now() + 2*cfg.Interval)
	}

	if sys != nil {
		res.Triggers = sys.Controller.Triggers
		res.Dispatches = sys.Dispatches
		res.Rounds = sys.Tuner.Stats().Sessions
		res.UtilTrace = append(res.UtilTrace, sys.Tuner.BestTrace()...)
	}
	return res, nil
}

// buildSources wires the FSD inputs for a Paraleon-kind scheme, composing
// taps with the oracles when accuracy tracking is on.
func buildSources(n *sim.Network, s Scheme, interval eventsim.Time, oracles []*monitor.Oracle) []monitor.ReportSource {
	var sources []monitor.ReportSource
	tors := n.Topo.ToRs()
	for i, tor := range tors {
		switch s.FSDMode {
		case FSDParaleon, FSDNaiveElastic:
			cfg := monitor.ParaleonAgentConfig()
			if s.FSDMode == FSDNaiveElastic {
				cfg = monitor.NaiveElasticConfig()
			}
			a := monitor.NewSwitchAgent(cfg, uint64(i+1))
			if oracles != nil {
				monitor.TapAll(n.Switch(tor), oracles[i].OnPacket, a.OnPacket)
			} else {
				a.Attach(n.Switch(tor))
			}
			sources = append(sources, a)
		case FSDNetFlow:
			nf := baselines.DefaultNetFlowConfig()
			nf.MonitorInterval = interval
			a := baselines.NewNetFlowAgent(nf, n.Topo, tor)
			if oracles != nil {
				monitor.TapAll(n.Switch(tor), oracles[i].OnPacket, a.OnPacket)
			} else {
				a.Attach(n.Switch(tor))
			}
			sources = append(sources, a)
		case FSDRNIC:
			var hosts []*rnic.Host
			for _, hn := range n.Topo.Hosts() {
				if n.Topo.ToROf(hn) == tor {
					hosts = append(hosts, n.Host(hn))
				}
			}
			sources = append(sources, monitor.NewRNICAgent(monitor.DefaultTrackerConfig(), hosts))
			if oracles != nil {
				monitor.TapAll(n.Switch(tor), oracles[i].OnPacket)
			}
		case FSDNone:
			if oracles != nil {
				monitor.TapAll(n.Switch(tor), oracles[i].OnPacket)
			}
		}
	}
	if s.FSDMode == FSDNone {
		return []monitor.ReportSource{}
	}
	return sources
}
