package harness

import (
	"strings"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func fbWorkload(load float64, dur eventsim.Time) func(n *sim.Network) error {
	return func(n *sim.Network) error {
		_, err := workload.InstallPoisson(n, workload.PoissonConfig{
			CDF: workload.FBHadoop(), Load: load, Duration: dur,
		})
		return err
	}
}

func TestRunStaticScheme(t *testing.T) {
	scale := QuickScale()
	r, err := Run(RunConfig{
		Net:        scale.Net,
		Scheme:     DefaultScheme(),
		Interval:   scale.Interval,
		Duration:   20 * eventsim.Millisecond,
		DrainAfter: true,
		Workload:   fbWorkload(0.3, 20*eventsim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TP.Len() != 20 {
		t.Errorf("TP series has %d samples, want 20", r.TP.Len())
	}
	if len(r.Net.Completed) == 0 {
		t.Error("no flows completed")
	}
	if r.Triggers != 0 || r.Dispatches != 0 {
		t.Error("static scheme reported tuner activity")
	}
	sum := r.Summary()
	if sum.MeanSlowdown < 1 {
		t.Errorf("mean slowdown %g < 1", sum.MeanSlowdown)
	}
}

func TestRunParaleonScheme(t *testing.T) {
	scale := QuickScale()
	sc := ParaleonScheme()
	// Short SA session for test speed.
	sc.SystemCfg.SA.TotalIterNum = 5
	sc.SystemCfg.SA.InitialTemp = 30
	sc.SystemCfg.SA.CoolingRate = 0.5
	r, err := Run(RunConfig{
		Net:      scale.Net,
		Scheme:   sc,
		Interval: scale.Interval,
		Duration: 40 * eventsim.Millisecond,
		Workload: fbWorkload(0.4, 40*eventsim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Triggers == 0 {
		t.Error("Paraleon never triggered on workload onset")
	}
	if r.Dispatches == 0 {
		t.Error("no parameter dispatches")
	}
	if len(r.UtilTrace) == 0 {
		t.Error("empty utility trace")
	}
	for i := 1; i < len(r.UtilTrace); i++ {
		if r.UtilTrace[i] < r.UtilTrace[i-1]-1e-9 {
			t.Fatalf("best-so-far trace decreased at %d", i)
		}
	}
}

func TestRunEachBaselineKind(t *testing.T) {
	scale := QuickScale()
	for _, sc := range []Scheme{ACCScheme(), DCQCNPlusScheme()} {
		r, err := Run(RunConfig{
			Net:        scale.Net,
			Scheme:     sc,
			Interval:   scale.Interval,
			Duration:   15 * eventsim.Millisecond,
			DrainAfter: true,
			Workload:   fbWorkload(0.3, 15*eventsim.Millisecond),
		})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if r.TP.Len() == 0 || len(r.Net.Completed) == 0 {
			t.Errorf("%s: empty results", sc.Name)
		}
	}
}

func TestRunWithAccuracyTracking(t *testing.T) {
	scale := QuickScale()
	r, err := Run(RunConfig{
		Net:           scale.Net,
		Scheme:        ParaleonScheme(),
		Interval:      scale.Interval,
		Duration:      20 * eventsim.Millisecond,
		TrackAccuracy: true,
		Workload:      fbWorkload(0.3, 20*eventsim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy.Len() == 0 {
		t.Fatal("no accuracy samples")
	}
	acc := r.MeanAccuracy()
	if acc < 0.5 || acc > 1 {
		t.Errorf("mean accuracy %g implausible", acc)
	}
}

func TestTable2(t *testing.T) {
	res, err := Table2(QuickScale(), 6, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		d, e := row.AlgBwGBs["default"], row.AlgBwGBs["expert"]
		if d <= 0 || e <= 0 {
			t.Errorf("size %dMB: non-positive bandwidth %g/%g", row.TotalPerRankMB, d, e)
		}
		// The Table II direction: expert should not lose materially.
		if e < 0.85*d {
			t.Errorf("size %dMB: expert %g much worse than default %g", row.TotalPerRankMB, e, d)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("Fprint missing header")
	}
}

func TestFig5ShapeAndDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	res, err := Fig5(QuickScale(), 10*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 4 {
		t.Fatalf("%d curves", len(res.Order))
	}
	for _, name := range res.Order {
		pts := res.Curves[name]
		if len(pts) != 5 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		for _, pt := range pts {
			if pt.TP < 0 || pt.TP > 1 || pt.RTTNorm <= 0 || pt.RTTNorm > 1 {
				t.Errorf("%s value %g: out-of-range metrics %+v", name, pt.Value, pt)
			}
		}
	}
	// Directional check from §III-C: raising Kmax (throughput-friendly)
	// deepens standing queues, so normalized RTT must degrade.
	kmax := res.Curves["kmax"]
	if kmax[len(kmax)-1].RTTNorm >= kmax[0].RTTNorm {
		t.Errorf("kmax sweep: RTTnorm %g at 6400KB not worse than %g at 400KB",
			kmax[len(kmax)-1].RTTNorm, kmax[0].RTTNorm)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "hai_rate") {
		t.Error("Fprint missing curves")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	res, err := Fig6(QuickScale(), 8*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TP) != 4 || len(res.TP[0]) != 4 {
		t.Fatalf("TP surface %dx%d", len(res.TP), len(res.TP[0]))
	}
	for i := range res.TP {
		for j := range res.TP[i] {
			if res.TP[i][j] < 0 || res.TP[i][j] > 1 {
				t.Errorf("TP[%d][%d] = %g", i, j, res.TP[i][j])
			}
			if res.RTT[i][j] <= 0 || res.RTT[i][j] > 1 {
				t.Errorf("RTT[%d][%d] = %g", i, j, res.RTT[i][j])
			}
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "inter-parameter") {
		t.Error("Fprint missing header")
	}
}

func TestFig7FB(t *testing.T) {
	res, err := Fig7FB(QuickScale(), []Scheme{DefaultScheme(), ParaleonScheme()}, 0.3, 25*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Fatalf("%d schemes", len(res.Order))
	}
	for _, name := range res.Order {
		total := 0
		for _, b := range res.PerScheme[name] {
			total += b.Count
			if b.Count > 0 && b.Mean < 1 {
				t.Errorf("%s %s: mean slowdown %g < 1", name, b.Label, b.Mean)
			}
		}
		if total == 0 {
			t.Errorf("%s: no flows bucketed", name)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "p99.9") {
		t.Error("Fprint missing p99.9 section")
	}
}

func TestFig7LLM(t *testing.T) {
	res, err := Fig7LLM(QuickScale(), []Scheme{DefaultScheme(), ExpertScheme()}, []int{4, 6}, 512<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, wc := range res.WorkerCounts {
		for _, name := range res.Order {
			if res.Tails[wc][name] <= 0 {
				t.Errorf("workers %d scheme %s: p99 %g", wc, name, res.Tails[wc][name])
			}
			cdf := res.CDFs[wc][name]
			if len(cdf) == 0 {
				t.Errorf("workers %d scheme %s: empty CDF", wc, name)
			}
		}
	}
}

func TestRunInflux(t *testing.T) {
	spec := DefaultInfluxSpec()
	spec.Horizon = 60 * eventsim.Millisecond
	spec.BurstAt = 20 * eventsim.Millisecond
	spec.BurstLen = 15 * eventsim.Millisecond
	res, err := RunInflux(QuickScale(), []Scheme{DefaultScheme(), ParaleonScheme()}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Order {
		if res.TP[name].Len() != 60 {
			t.Errorf("%s: %d TP samples, want 60", name, res.TP[name].Len())
		}
		ph := res.TPPhases[name]
		for i, v := range ph {
			if v < 0 || v > 1 {
				t.Errorf("%s phase %d TP %g", name, i, v)
			}
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "influx") {
		t.Error("Fprint missing header")
	}
}

func TestPretrainedSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("pretraining skipped in -short")
	}
	spec := DefaultInfluxSpec()
	p1, p2, err := PretrainedSchemes(QuickScale(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Name != "pretrained1" || p2.Name != "pretrained2" {
		t.Errorf("names %q/%q", p1.Name, p2.Name)
	}
	if err := p1.Static.Validate(); err != nil {
		t.Errorf("pretrained1 invalid: %v", err)
	}
	if err := p2.Static.Validate(); err != nil {
		t.Errorf("pretrained2 invalid: %v", err)
	}
}

func TestFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("monitoring comparison skipped in -short")
	}
	res, err := Fig10(QuickScale(), []float64{0.3}, 25*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 4 {
		t.Fatalf("%d arms", len(res.Order))
	}
	// Paraleon's FSD accuracy must beat NetFlow's.
	pAcc := res.Accuracy["paraleon"][0.3]
	nfAcc := res.Accuracy["netflow"][0.3]
	if !(pAcc > nfAcc) {
		t.Errorf("paraleon accuracy %g not above netflow %g", pAcc, nfAcc)
	}
	for _, arm := range res.Order {
		if s := res.MeanSlowdown[arm][0.3]; s < 1 {
			t.Errorf("%s slowdown %g < 1", arm, s)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "FSD accuracy") {
		t.Error("Fprint missing accuracy section")
	}
}

func TestFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("interval sweep skipped in -short")
	}
	res, err := Fig11(QuickScale(), []float64{1, 4}, 0.3, 24*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []string{"elastic", "paraleon"} {
		for _, k := range res.Keys {
			if a := res.Accuracy[arm][k]; a <= 0 || a > 1 {
				t.Errorf("%s @%gms accuracy %g", arm, k, a)
			}
		}
	}
	// At the 1 ms interval the ternary design must not lose to naive
	// single-interval classification.
	if res.Accuracy["paraleon"][1] < res.Accuracy["elastic"][1] {
		t.Errorf("paraleon %g < elastic %g at 1ms", res.Accuracy["paraleon"][1], res.Accuracy["elastic"][1])
	}
}

func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("SA convergence skipped in -short")
	}
	res, err := Fig12(QuickScale(), 80*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Order {
		tr := res.Traces[arm]
		if len(tr) == 0 {
			t.Fatalf("%s: empty trace", arm)
		}
		for i, v := range tr {
			if v < 0 || v > 1 {
				t.Fatalf("%s: delivered utility %g at %d outside [0,1]", arm, v, i)
			}
		}
		if res.IterationsTo(arm, 0.9) < 0 {
			t.Errorf("%s: smoothed utility never reached 90%% of final", arm)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "naive_sa") {
		t.Error("Fprint missing naive arm")
	}
}
