package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AllSchemes returns the five arms of Fig 7/8: two statics, two automatic
// baselines, and Paraleon.
func AllSchemes() []Scheme {
	return []Scheme{
		DefaultScheme(),
		ExpertScheme(),
		ACCScheme(),
		DCQCNPlusScheme(),
		ParaleonScheme(),
	}
}

// --- Fig 7(a,b): FB_Hadoop FCT slowdowns ---

// Fig7FBResult holds per-scheme bucketed slowdowns.
type Fig7FBResult struct {
	Load    float64
	Buckets []int64
	// PerScheme maps scheme → size-bucketed stats.
	PerScheme map[string][]metrics.BucketStat
	Order     []string
}

// Fig7FB runs the FB_Hadoop workload under every scheme and buckets FCT
// slowdowns by flow size.
func Fig7FB(scale Scale, schemes []Scheme, load float64, horizon eventsim.Time) (*Fig7FBResult, error) {
	res := &Fig7FBResult{
		Load:      load,
		Buckets:   metrics.DefaultSizeBuckets(),
		PerScheme: map[string][]metrics.BucketStat{},
	}
	cfgs := make([]RunConfig, 0, len(schemes))
	for _, sc := range schemes {
		cfgs = append(cfgs, RunConfig{
			Net:        scale.Net,
			Scheme:     sc,
			Interval:   scale.Interval,
			Duration:   horizon,
			DrainAfter: true,
			MaxTime:    horizon * 10,
			Workload: func(n *sim.Network) error {
				_, err := workload.InstallPoisson(n, workload.PoissonConfig{
					CDF:      workload.FBHadoop(),
					Load:     load,
					Duration: horizon,
				})
				return err
			},
		})
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		sl := metrics.Slowdowns(r.Net, r.Net.Completed)
		res.PerScheme[schemes[i].Name] = metrics.BucketizeSlowdowns(sl, res.Buckets)
		res.Order = append(res.Order, schemes[i].Name)
	}
	return res, nil
}

// Fprint renders average and p99.9 slowdown tables.
func (r *Fig7FBResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Fig 7(a,b): FB_Hadoop FCT slowdown by flow size (load %.0f%%)\n", r.Load*100)
	print := func(title string, get func(metrics.BucketStat) float64) {
		fmt.Fprintf(w, " %s slowdown:\n", title)
		fmt.Fprintf(w, "  %-10s", "scheme")
		if len(r.Order) > 0 {
			for _, b := range r.PerScheme[r.Order[0]] {
				fmt.Fprintf(w, "%10s", b.Label)
			}
		}
		fmt.Fprintln(w)
		for _, name := range r.Order {
			fmt.Fprintf(w, "  %-10s", name)
			for _, b := range r.PerScheme[name] {
				v := get(b)
				if math.IsNaN(v) {
					fmt.Fprintf(w, "%10s", "-")
				} else {
					fmt.Fprintf(w, "%10.2f", v)
				}
			}
			fmt.Fprintln(w)
		}
	}
	print("average", func(b metrics.BucketStat) float64 { return b.Mean })
	print("p99.9", func(b metrics.BucketStat) float64 { return b.P999 })
}

// --- Fig 7(c,d): LLM training FCT CDFs ---

// Fig7LLMResult holds per-(scheme, worker-count) FCT CDFs.
type Fig7LLMResult struct {
	WorkerCounts []int
	// CDFs[workers][scheme] is the FCT CDF in milliseconds.
	CDFs  map[int]map[string][]metrics.CDFPoint
	Tails map[int]map[string]float64 // p99 FCT ms
	Order []string
}

// Fig7LLM runs the ON/OFF alltoall at several scales under every scheme.
func Fig7LLM(scale Scale, schemes []Scheme, workerCounts []int, msg int64, rounds int) (*Fig7LLMResult, error) {
	res := &Fig7LLMResult{
		WorkerCounts: workerCounts,
		CDFs:         map[int]map[string][]metrics.CDFPoint{},
		Tails:        map[int]map[string]float64{},
	}
	type armKey struct {
		wc     int
		scheme string
	}
	var arms []armKey
	var cfgs []RunConfig
	for _, wc := range workerCounts {
		res.CDFs[wc] = map[string][]metrics.CDFPoint{}
		res.Tails[wc] = map[string]float64{}
		for _, sc := range schemes {
			wc := wc
			arms = append(arms, armKey{wc: wc, scheme: sc.Name})
			cfgs = append(cfgs, RunConfig{
				Net:        scale.Net,
				Scheme:     sc,
				Interval:   scale.Interval,
				Duration:   200 * eventsim.Millisecond,
				DrainAfter: true,
				MaxTime:    10 * eventsim.Second,
				Workload: func(n *sim.Network) error {
					_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
						Workers:      n.Topo.Hosts()[:wc],
						MessageBytes: msg,
						OffTime:      5 * eventsim.Millisecond,
						Rounds:       rounds,
					})
					return err
				},
			})
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		arm := arms[i]
		fcts := make([]float64, 0, len(r.Net.Completed))
		for _, rec := range r.Net.Completed {
			fcts = append(fcts, rec.FCT().Millis())
		}
		res.CDFs[arm.wc][arm.scheme] = metrics.CDF(fcts, 20)
		res.Tails[arm.wc][arm.scheme] = metrics.Percentile(fcts, 0.99)
		if len(res.Order) < len(schemes) {
			res.Order = append(res.Order, arm.scheme)
		}
	}
	return res, nil
}

// Fprint renders tail FCTs per scale (the CDFs' decision-relevant edge).
func (r *Fig7LLMResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Fig 7(c,d): LLM training (alltoall) p99 FCT (ms)")
	fmt.Fprintf(w, "  %-10s", "scheme")
	for _, wc := range r.WorkerCounts {
		fmt.Fprintf(w, "%8dx%-3d", wc, wc)
	}
	fmt.Fprintln(w)
	for _, name := range r.Order {
		fmt.Fprintf(w, "  %-10s", name)
		for _, wc := range r.WorkerCounts {
			fmt.Fprintf(w, "%12.2f", r.Tails[wc][name])
		}
		fmt.Fprintln(w)
	}
}

// --- Fig 8 / Fig 9: workload influx ---

// InfluxSpec parameterizes the influx scenario.
type InfluxSpec struct {
	Workers   int
	Message   int64
	BurstAt   eventsim.Time
	BurstLen  eventsim.Time
	BurstLoad float64
	Horizon   eventsim.Time
}

// DefaultInfluxSpec sizes the scenario for QuickScale/MediumScale runs.
func DefaultInfluxSpec() InfluxSpec {
	return InfluxSpec{
		Workers:   4,
		Message:   2 << 20,
		BurstAt:   40 * eventsim.Millisecond,
		BurstLen:  50 * eventsim.Millisecond,
		BurstLoad: 0.5,
		Horizon:   150 * eventsim.Millisecond,
	}
}

// InfluxResult holds per-scheme time series plus phase means.
type InfluxResult struct {
	Spec  InfluxSpec
	Order []string
	// TP and RTT are the per-scheme series.
	TP, RTT map[string]*metrics.Series
	// Phase means: before, during, after the burst.
	TPPhases, RTTPhases map[string][3]float64
}

// RunInflux executes the Fig 8 scenario for each scheme.
func RunInflux(scale Scale, schemes []Scheme, spec InfluxSpec) (*InfluxResult, error) {
	res := &InfluxResult{
		Spec: spec,
		TP:   map[string]*metrics.Series{}, RTT: map[string]*metrics.Series{},
		TPPhases: map[string][3]float64{}, RTTPhases: map[string][3]float64{},
	}
	cfgs := make([]RunConfig, 0, len(schemes))
	for _, sc := range schemes {
		cfgs = append(cfgs, RunConfig{
			Net:      scale.Net,
			Scheme:   sc,
			Interval: scale.Interval,
			Duration: spec.Horizon,
			Workload: func(n *sim.Network) error {
				hosts := n.Topo.Hosts()
				if spec.Workers+2 > len(hosts) {
					return fmt.Errorf("influx: fabric too small")
				}
				_, err := workload.InstallInflux(n, workload.InfluxConfig{
					Background: workload.AlltoallConfig{
						Workers:      hosts[:spec.Workers],
						MessageBytes: spec.Message,
						OffTime:      5 * eventsim.Millisecond,
					},
					Burst: workload.PoissonConfig{
						Hosts:    hosts,
						CDF:      workload.FBHadoop(),
						Load:     spec.BurstLoad,
						Start:    spec.BurstAt,
						Duration: spec.BurstLen,
					},
				})
				return err
			},
		})
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		sc := schemes[i]
		res.Order = append(res.Order, sc.Name)
		tp, rtt := r.TP, r.RTT
		res.TP[sc.Name] = &tp
		res.RTT[sc.Name] = &rtt
		phases := func(s *metrics.Series) [3]float64 {
			return [3]float64{
				s.MeanOver(0, spec.BurstAt),
				s.MeanOver(spec.BurstAt, spec.BurstAt+spec.BurstLen),
				s.MeanOver(spec.BurstAt+spec.BurstLen, spec.Horizon),
			}
		}
		res.TPPhases[sc.Name] = phases(&tp)
		res.RTTPhases[sc.Name] = phases(&rtt)
	}
	return res, nil
}

// Fprint renders phase means.
func (r *InfluxResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Fig 8/9: influx at %v for %v (phase means: before/during/after)\n", r.Spec.BurstAt, r.Spec.BurstLen)
	fmt.Fprintf(w, "  %-14s %28s %34s\n", "scheme", "throughput (util)", "normalized RTT (higher=better)")
	for _, name := range r.Order {
		tp, rtt := r.TPPhases[name], r.RTTPhases[name]
		fmt.Fprintf(w, "  %-14s %8.3f %8.3f %8.3f    %8.3f %8.3f %8.3f\n",
			name, tp[0], tp[1], tp[2], rtt[0], rtt[1], rtt[2])
	}
}

// PretrainedSchemes produces the two Fig 9 static arms by running
// Paraleon offline: Pretrained 1 on the alltoall workload, Pretrained 2
// on FB_Hadoop.
func PretrainedSchemes(scale Scale, spec InfluxSpec) (Scheme, Scheme, error) {
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Interval = scale.Interval
	// Shorten the SA session so pretraining fits the training horizon.
	sysCfg.SA.TotalIterNum = 10
	sysCfg.SA.CoolingRate = 0.6

	// Pretrained 1: alltoall.
	n1, err := sim.New(scale.Net)
	if err != nil {
		return Scheme{}, Scheme{}, err
	}
	if _, err := workload.InstallAlltoall(n1, workload.AlltoallConfig{
		Workers:      n1.Topo.Hosts()[:spec.Workers],
		MessageBytes: spec.Message,
		OffTime:      5 * eventsim.Millisecond,
	}); err != nil {
		return Scheme{}, Scheme{}, err
	}
	p1, err := core.Pretrain(n1, sysCfg, 100*eventsim.Millisecond)
	if err != nil {
		return Scheme{}, Scheme{}, err
	}

	// Pretrained 2: FB_Hadoop.
	n2, err := sim.New(scale.Net)
	if err != nil {
		return Scheme{}, Scheme{}, err
	}
	if _, err := workload.InstallPoisson(n2, workload.PoissonConfig{
		CDF: workload.FBHadoop(), Load: spec.BurstLoad,
	}); err != nil {
		return Scheme{}, Scheme{}, err
	}
	p2, err := core.Pretrain(n2, sysCfg, 100*eventsim.Millisecond)
	if err != nil {
		return Scheme{}, Scheme{}, err
	}
	return StaticScheme("pretrained1", p1), StaticScheme("pretrained2", p2), nil
}

// --- Fig 10 / Fig 11: monitoring designs ---

// MonitoringArm names one FSD design under comparison.
type MonitoringArm struct {
	Name string
	Mode FSDMode
}

// MonitoringArms is the Fig 10 lineup.
func MonitoringArms() []MonitoringArm {
	return []MonitoringArm{
		{Name: "no-fsd", Mode: FSDNone},
		{Name: "netflow", Mode: FSDNetFlow},
		{Name: "elastic", Mode: FSDNaiveElastic},
		{Name: "paraleon", Mode: FSDParaleon},
	}
}

// MonitoringResult holds accuracy and FCT per arm (per load or per
// interval, depending on the experiment).
type MonitoringResult struct {
	// Keys are the x-axis values: loads (Fig 10) or intervals in ms
	// (Fig 11).
	Keys  []float64
	XName string
	// Accuracy[arm][key] and MeanSlowdown[arm][key].
	Accuracy     map[string]map[float64]float64
	MeanSlowdown map[string]map[float64]float64
	Order        []string
}

func newMonitoringResult(xName string, keys []float64) *MonitoringResult {
	return &MonitoringResult{
		Keys:         keys,
		XName:        xName,
		Accuracy:     map[string]map[float64]float64{},
		MeanSlowdown: map[string]map[float64]float64{},
	}
}

func (r *MonitoringResult) put(arm string, key, acc, slow float64) {
	if r.Accuracy[arm] == nil {
		r.Accuracy[arm] = map[float64]float64{}
		r.MeanSlowdown[arm] = map[float64]float64{}
		r.Order = append(r.Order, arm)
	}
	r.Accuracy[arm][key] = acc
	r.MeanSlowdown[arm][key] = slow
}

// monitoringScheme builds a Paraleon scheme wired to one FSD arm.
func monitoringScheme(arm MonitoringArm, interval eventsim.Time) Scheme {
	sc := ParaleonScheme()
	sc.Name = arm.Name
	sc.FSDMode = arm.Mode
	sc.SystemCfg.Interval = interval
	if arm.Mode == FSDNone {
		// No distribution: nothing can trigger tuning, and guidance is
		// meaningless — fall back to unguided search kicked off
		// manually (§IV-B3's No-FSD arm).
		sc.SystemCfg.SA.Guided = false
		sc.TriggerAtStart = true
	}
	return sc
}

// Fig10 compares the monitoring designs across loads.
func Fig10(scale Scale, loads []float64, horizon eventsim.Time) (*MonitoringResult, error) {
	res := newMonitoringResult("load", loads)
	type armKey struct {
		name string
		load float64
	}
	var arms []armKey
	var cfgs []RunConfig
	for _, arm := range MonitoringArms() {
		for _, load := range loads {
			load := load
			arms = append(arms, armKey{name: arm.Name, load: load})
			cfgs = append(cfgs, RunConfig{
				Net:           scale.Net,
				Scheme:        monitoringScheme(arm, scale.Interval),
				Interval:      scale.Interval,
				Duration:      horizon,
				DrainAfter:    true,
				MaxTime:       horizon * 10,
				TrackAccuracy: arm.Mode != FSDNone,
				Workload: func(n *sim.Network) error {
					_, err := workload.InstallPoisson(n, workload.PoissonConfig{
						CDF: workload.FBHadoop(), Load: load, Duration: horizon,
					})
					return err
				},
			})
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.put(arms[i].name, arms[i].load, r.MeanAccuracy(), r.Summary().MeanSlowdown)
	}
	return res, nil
}

// Fig11 compares naive Elastic vs Paraleon across monitor intervals.
func Fig11(scale Scale, intervalsMS []float64, load float64, horizon eventsim.Time) (*MonitoringResult, error) {
	res := newMonitoringResult("lambda_MI(ms)", intervalsMS)
	arms := []MonitoringArm{
		{Name: "elastic", Mode: FSDNaiveElastic},
		{Name: "paraleon", Mode: FSDParaleon},
	}
	type armKey struct {
		name string
		ms   float64
	}
	var keys []armKey
	var cfgs []RunConfig
	for _, arm := range arms {
		for _, ms := range intervalsMS {
			interval := eventsim.Time(ms * float64(eventsim.Millisecond))
			keys = append(keys, armKey{name: arm.Name, ms: ms})
			cfgs = append(cfgs, RunConfig{
				Net:           scale.Net,
				Scheme:        monitoringScheme(arm, interval),
				Interval:      interval,
				Duration:      horizon,
				DrainAfter:    true,
				MaxTime:       horizon * 10,
				TrackAccuracy: true,
				Workload: func(n *sim.Network) error {
					_, err := workload.InstallPoisson(n, workload.PoissonConfig{
						CDF: workload.FBHadoop(), Load: load, Duration: horizon,
					})
					return err
				},
			})
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.put(keys[i].name, keys[i].ms, r.MeanAccuracy(), r.Summary().MeanSlowdown)
	}
	return res, nil
}

// Fprint renders accuracy and FCT tables.
func (r *MonitoringResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Monitoring comparison over %s\n", r.XName)
	section := func(title string, data map[string]map[float64]float64) {
		fmt.Fprintf(w, " %s:\n", title)
		fmt.Fprintf(w, "  %-10s", "arm")
		for _, k := range r.Keys {
			fmt.Fprintf(w, "%10.3g", k)
		}
		fmt.Fprintln(w)
		for _, arm := range r.Order {
			fmt.Fprintf(w, "  %-10s", arm)
			for _, k := range r.Keys {
				v := data[arm][k]
				if math.IsNaN(v) {
					fmt.Fprintf(w, "%10s", "-")
				} else {
					fmt.Fprintf(w, "%10.3f", v)
				}
			}
			fmt.Fprintln(w)
		}
	}
	section("FSD accuracy", r.Accuracy)
	section("mean FCT slowdown", r.MeanSlowdown)
}

// --- Fig 12: SA ablation ---

// Fig12Result holds utility convergence traces.
type Fig12Result struct {
	// Traces maps arm → measured utility (Equation 1, 0–1) per monitor
	// interval — what the network actually delivered while each SA
	// variant searched.
	Traces map[string][]float64
	Order  []string
}

// Fig12 runs guided+relaxed SA vs naive SA on the same workload and
// captures their convergence traces.
func Fig12(scale Scale, horizon eventsim.Time) (*Fig12Result, error) {
	res := &Fig12Result{Traces: map[string][]float64{}}
	arms := []struct {
		name string
		sa   core.SAConfig
	}{
		{"paraleon", core.DefaultSAConfig()},
		{"naive_sa", core.NaiveSAConfig()},
	}
	cfgs := make([]RunConfig, 0, len(arms))
	for _, arm := range arms {
		sc := ParaleonScheme()
		sc.Name = arm.name
		sc.SystemCfg.SA = arm.sa
		cfgs = append(cfgs, RunConfig{
			Net:      scale.Net,
			Scheme:   sc,
			Interval: scale.Interval,
			Duration: horizon,
			Workload: func(n *sim.Network) error {
				_, err := workload.InstallPoisson(n, workload.PoissonConfig{
					CDF: workload.FBHadoop(), Load: 0.4,
				})
				return err
			},
		})
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.Traces[arms[i].name] = r.Utility.Values
		res.Order = append(res.Order, arms[i].name)
	}
	return res, nil
}

// smoothed returns a trailing moving average of the trace (window 10).
func smoothed(tr []float64) []float64 {
	const w = 10
	out := make([]float64, len(tr))
	var sum float64
	for i, v := range tr {
		sum += v
		if i >= w {
			sum -= tr[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// IterationsTo reports how many monitor intervals arm took for its
// smoothed delivered utility to reach frac of its final smoothed value
// (-1 if it never did or the trace is empty).
func (r *Fig12Result) IterationsTo(arm string, frac float64) int {
	tr := smoothed(r.Traces[arm])
	if len(tr) == 0 {
		return -1
	}
	target := frac * tr[len(tr)-1]
	for i, v := range tr {
		if v >= target {
			return i
		}
	}
	return -1
}

// FinalUtility reports the last smoothed delivered utility of arm.
func (r *Fig12Result) FinalUtility(arm string) float64 {
	tr := smoothed(r.Traces[arm])
	if len(tr) == 0 {
		return math.NaN()
	}
	return tr[len(tr)-1]
}

// SteadyUtility reports the mean delivered utility over the final third
// of arm's run — the settled quality each SA variant reached.
func (r *Fig12Result) SteadyUtility(arm string) float64 {
	tr := r.Traces[arm]
	if len(tr) == 0 {
		return math.NaN()
	}
	tail := tr[len(tr)*2/3:]
	var sum float64
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail))
}

// Fprint renders trace summaries.
func (r *Fig12Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Fig 12: SA convergence (smoothed delivered utility)")
	for _, arm := range r.Order {
		tr := smoothed(r.Traces[arm])
		if len(tr) == 0 {
			fmt.Fprintf(w, "  %-10s (no session ran)\n", arm)
			continue
		}
		fmt.Fprintf(w, "  %-10s intervals=%d first=%.3f final=%.3f steady=%.3f to-95%%=%d\n",
			arm, len(tr), tr[0], tr[len(tr)-1], r.SteadyUtility(arm), r.IterationsTo(arm, 0.95))
	}
}
