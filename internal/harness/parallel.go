package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/splitmix"
)

// ParallelOptions controls how RunAll spreads experiment arms over
// workers. The zero value is a sensible default: one worker per CPU, no
// seed derivation, no progress reporting.
type ParallelOptions struct {
	// Workers bounds the number of arms executing concurrently. Zero or
	// negative means GOMAXPROCS. One worker degenerates to a strictly
	// sequential, in-order sweep.
	Workers int
	// DeriveSeeds, when true, runs arm i with
	// Net.Seed = DeriveArmSeed(cfg.Net.Seed, i) so that arms sharing a
	// base configuration draw independent randomness. The derivation is a
	// pure function of (base seed, arm index) — never of scheduling — so
	// a parallel sweep reproduces a sequential one bit for bit. Leave it
	// off when arms must see the *same* workload draw (the figure
	// experiments compare schemes under identical traffic).
	DeriveSeeds bool
	// Progress, when non-nil, is invoked once per completed arm.
	// Invocations are serialized; the callback needs no locking of its
	// own but must not call back into RunAll.
	Progress func(ArmStatus)
}

// ArmStatus is one progress update: arm Index finished (successfully or
// not) after Wall of wall-clock time, the Done-th of Total to do so.
type ArmStatus struct {
	Index  int
	Scheme string
	Done   int
	Total  int
	Wall   time.Duration
	Err    error
}

// DeriveArmSeed maps a base seed and an arm index to the arm's engine
// seed via a SplitMix64 round (splitmix.Derive). It depends only on its
// arguments, so seeds are stable across runs, worker counts, and
// completion order.
func DeriveArmSeed(base int64, arm int) int64 {
	return splitmix.Derive(base, arm)
}

// RunAll executes every arm of a sweep, concurrently up to opts.Workers,
// and returns results in input order. Each arm owns its own network and
// event engine, so arms never share mutable state and the output is
// identical to running the same configs sequentially.
//
// A failing arm — an error from Run or a recovered panic — does not stop
// the sweep: its slot in the result slice stays nil and RunAll returns
// all failures joined into one error, each tagged with its arm index and
// scheme name.
func RunAll(cfgs []RunConfig, opts ParallelOptions) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	errs := make([]error, len(cfgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done and serializes Progress
	done := 0

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cfg := cfgs[i]
				if opts.DeriveSeeds {
					cfg.Net.Seed = DeriveArmSeed(cfg.Net.Seed, i)
				}
				start := time.Now()
				res, err := runArm(cfg)
				if err != nil {
					err = fmt.Errorf("harness: arm %d (%s): %w", i, cfg.Scheme.Name, err)
				}
				results[i], errs[i] = res, err
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(ArmStatus{
						Index:  i,
						Scheme: cfg.Scheme.Name,
						Done:   done,
						Total:  len(cfgs),
						Wall:   time.Since(start),
						Err:    err,
					})
				}
				mu.Unlock()
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}

// runArm executes one arm, converting a panic anywhere under Run into an
// ordinary error so a single bad arm cannot kill a long sweep.
func runArm(cfg RunConfig) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return Run(cfg)
}
