package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// ShootoutCell is one (strategy × workload) outcome of the tuner
// shootout.
type ShootoutCell struct {
	Tuner    string
	Workload string
	// FinalUtility is the last smoothed delivered utility; MeanUtility
	// averages the raw trace over the whole run.
	FinalUtility float64
	MeanUtility  float64
	// ConvergeIters is the number of monitor intervals until the
	// smoothed delivered utility reached 95% of its final value (-1 if
	// it never did).
	ConvergeIters int
	// PauseFrac is the mean PFC pause fraction (1 − O_PFC): the safety
	// dimension a tuner must not trade away for throughput.
	PauseFrac float64
	// Sessions, Dispatches, and Rollbacks summarize loop activity.
	Sessions   int
	Dispatches int
	Rollbacks  int
}

// TunerShootoutResult is the head-to-head comparison of every tuning
// strategy across the shootout workloads.
type TunerShootoutResult struct {
	Tuners    []string
	Workloads []string
	Cells     map[string]ShootoutCell // keyed tuner + "/" + workload
}

func (r *TunerShootoutResult) key(tun, wl string) string { return tun + "/" + wl }

// Cell returns the (tuner, workload) cell, zero if absent.
func (r *TunerShootoutResult) Cell(tun, wl string) ShootoutCell {
	return r.Cells[r.key(tun, wl)]
}

// ShootoutTuners is the strategy lineup: every in-tree registry entry,
// raced under identical workloads, seeds, and horizons.
func ShootoutTuners() []string { return tuner.Names() }

// shootoutSystemCfg compresses each strategy's session to the scale of
// core.ShortSAConfig so all three settle within reproduction horizons,
// keeping the race about search quality rather than budget.
func shootoutSystemCfg(name string) core.SystemConfig {
	cfg := core.DefaultSystemConfig()
	cfg.SA = core.ShortSAConfig()
	cfg.Tuner = name
	cfg.Bandit = tuner.BanditConfig{Budget: 20}
	cfg.MultiECN = tuner.MultiECNConfig{Budget: 20}
	return cfg
}

// shootoutScheme is one Paraleon arm running the named strategy.
func shootoutScheme(name string) Scheme {
	sc := ParaleonScheme()
	sc.Name = name
	sc.SystemCfg = shootoutSystemCfg(name)
	// Strategies that never trigger never race: the alltoall OFF gaps
	// can keep KL below θ for short horizons, so force the first
	// session like the pretraining runs do.
	sc.TriggerAtStart = true
	return sc
}

// TunerShootout races every registered strategy head-to-head across
// three workloads: a sustained cross-rack alltoall, a fan-in incast,
// and the chaos-linkflap scenario (alltoall with a flapping fabric
// uplink and rollback armed). Within a workload every arm sees the same
// fabric, seed, and horizon, so differences are attributable to the
// search strategy alone; with a fixed seed the whole table is
// deterministic across runs and shard counts.
func TunerShootout(scale Scale, horizon eventsim.Time, seed int64) (*TunerShootoutResult, error) {
	res := &TunerShootoutResult{
		Tuners:    ShootoutTuners(),
		Workloads: []string{"alltoall", "incast", "chaos-linkflap"},
		Cells:     map[string]ShootoutCell{},
	}

	workloads := []struct {
		name    string
		install func(n *sim.Network) error
	}{
		{"alltoall", func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			w := 6
			if w > len(hosts) {
				w = len(hosts)
			}
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      hosts[:w],
				MessageBytes: 1 << 20,
				OffTime:      eventsim.Millisecond,
			})
			return err
		}},
		{"incast", func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			fan := 6
			if fan > len(hosts)-1 {
				fan = len(hosts) - 1
			}
			_, err := workload.InstallIncast(n, workload.IncastConfig{
				Aggregator:   hosts[0],
				FanIn:        fan,
				MessageBytes: 256 << 10,
				Gap:          eventsim.Millisecond / 2,
			})
			return err
		}},
	}

	// The two fault-free workloads fan out as one RunAll batch: every
	// (strategy × workload) arm is independent.
	var cfgs []RunConfig
	var keys []struct{ tun, wl string }
	for _, wl := range workloads {
		for _, name := range res.Tuners {
			cfgs = append(cfgs, RunConfig{
				Net:      scale.Net,
				Scheme:   shootoutScheme(name),
				Interval: scale.Interval,
				Duration: horizon,
				Workload: wl.install,
			})
			keys = append(keys, struct{ tun, wl string }{name, wl.name})
		}
	}
	results, err := RunAll(cfgs, scale.parallel())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.Cells[res.key(keys[i].tun, keys[i].wl)] = shootoutCell(
			keys[i].tun, keys[i].wl, r.Utility.Values, r.PFC.Values,
			r.Rounds, r.Dispatches, 0)
	}

	// The chaos workload goes through the fault-injection runner: same
	// flapping-uplink scenario as chaos-linkflap, with rollback armed.
	for _, name := range res.Tuners {
		sysCfg := shootoutSystemCfg(name)
		sysCfg.Degrade = core.DegradeConfig{RollbackWindow: 3, RollbackMargin: 0.05}
		r, err := RunChaos(ChaosRunConfig{
			Scale:     scale,
			SystemCfg: sysCfg,
			Duration:  horizon,
			TraceTo:   io.Discard,
			ScenarioFn: func(n *sim.Network) chaos.Scenario {
				a, b, ferr := fabricLink(n)
				if ferr != nil {
					return chaos.Scenario{Seed: seed}
				}
				return chaos.Scenario{
					Seed: seed,
					Links: []chaos.LinkFault{{
						A: a, B: b,
						At:      horizon / 4,
						DownFor: 3 * eventsim.Millisecond,
						Flaps:   3,
						Every:   8 * eventsim.Millisecond,
					}},
				}
			},
			Workload: workloads[0].install,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: shootout %s under chaos: %w", name, err)
		}
		res.Cells[res.key(name, "chaos-linkflap")] = shootoutCell(
			name, "chaos-linkflap", r.Utility.Values, r.PFC.Values,
			0, r.Dispatches, r.Rollbacks)
	}
	return res, nil
}

// shootoutCell condenses one arm's series into its table cell.
func shootoutCell(tun, wl string, util, pfc []float64, sessions, dispatches, rollbacks int) ShootoutCell {
	c := ShootoutCell{
		Tuner: tun, Workload: wl,
		FinalUtility:  math.NaN(),
		MeanUtility:   metrics.Mean(util),
		ConvergeIters: -1,
		PauseFrac:     math.NaN(),
		Sessions:      sessions,
		Dispatches:    dispatches,
		Rollbacks:     rollbacks,
	}
	if sm := smoothed(util); len(sm) > 0 {
		c.FinalUtility = sm[len(sm)-1]
		target := 0.95 * c.FinalUtility
		for i, v := range sm {
			if v >= target {
				c.ConvergeIters = i
				break
			}
		}
	}
	if len(pfc) > 0 {
		c.PauseFrac = 1 - metrics.Mean(pfc)
	}
	return c
}

// Fprint renders the three-way comparison table.
func (r *TunerShootoutResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "tuner shootout: delivered utility, convergence, PFC safety")
	for _, wl := range r.Workloads {
		fmt.Fprintf(w, "  %s:\n", wl)
		fmt.Fprintf(w, "    %-10s %8s %8s %8s %8s %6s %6s %6s\n",
			"tuner", "final", "mean", "to95%", "pause%", "sess", "disp", "rollbk")
		for _, tun := range r.Tuners {
			c := r.Cell(tun, wl)
			fmt.Fprintf(w, "    %-10s %8.3f %8.3f %8d %7.2f%% %6d %6d %6d\n",
				tun, c.FinalUtility, c.MeanUtility, c.ConvergeIters,
				100*c.PauseFrac, c.Sessions, c.Dispatches, c.Rollbacks)
		}
	}
}
