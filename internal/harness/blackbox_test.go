package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
)

// runLinkFlapBlackbox executes chaos-linkflap with the flight recorder
// attached and returns the raw artifact bytes. Each run gets a fresh
// registry: the artifact embeds histogram snapshots, and the
// process-wide default registry would mix counts across runs.
func runLinkFlapBlackbox(t *testing.T, shards int, seed int64, traceTo *bytes.Buffer) []byte {
	t.Helper()
	scale := QuickScale()
	scale.Net.Shards = shards
	var traceW *bytes.Buffer
	if traceTo != nil {
		traceW = traceTo
	}
	cfg := ChaosLinkFlapConfig(scale, 40*eventsim.Millisecond, seed, nil)
	if traceW != nil {
		cfg.TraceTo = traceW
	}
	var bb bytes.Buffer
	cfg.Blackbox = &bb
	cfg.ScaleLabel = "quick"
	cfg.SystemCfg.Telemetry = telemetry.NewRegistry()
	if _, err := RunChaos(cfg); err != nil {
		t.Fatal(err)
	}
	return bb.Bytes()
}

// TestBlackboxArtifactDeterministic pins the flight recorder into the
// determinism contract: a fixed seed yields a byte-identical black-box
// artifact at any shard count, and the artifact actually contains the
// rollback postmortem — the anomaly, and the queue/PFC/utility
// trajectory around it.
func TestBlackboxArtifactDeterministic(t *testing.T) {
	one := runLinkFlapBlackbox(t, 1, 1, nil)
	four := runLinkFlapBlackbox(t, 4, 1, nil)
	diffTraces(t, "-shards=4 artifact diverges from -shards=1", four, one)

	a, err := series.Load(bytes.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta.Experiment != "chaos-linkflap" || a.Meta.Seed != 1 || a.Meta.Tuner == "" {
		t.Fatalf("artifact meta %+v", a.Meta)
	}

	// The linkflap scenario at seed 1 drives the loop into a rollback
	// (chaos_test.go pins that); the artifact must record it with a
	// snapshot of the trajectory at the moment it tripped.
	var rollback *series.Anomaly
	for i := range a.Anomalies {
		if a.Anomalies[i].Kind == "rollback" {
			rollback = &a.Anomalies[i]
			break
		}
	}
	if rollback == nil {
		t.Fatalf("no rollback anomaly in artifact; anomalies=%+v", a.Anomalies)
	}
	if rollback.Snapshot < 0 || rollback.Snapshot >= len(a.Snapshots) {
		t.Fatalf("rollback anomaly has no snapshot (index %d of %d)", rollback.Snapshot, len(a.Snapshots))
	}
	snap := a.Snapshots[rollback.Snapshot]

	// The postmortem trajectory: queue depth, PFC pause fraction, and
	// utility must be present both in the frozen window and end-of-run.
	for _, name := range []string{"utility", "queue_bytes_tor0", "pfc_pause_frac_tor0", "ecn_mark_rate_tor0", "monitor_kl"} {
		if a.FindSeries(name) == nil {
			t.Errorf("end-of-run series %q missing", name)
		}
		found := false
		for i := range snap.Series {
			if snap.Series[i].Name == name && len(snap.Series[i].V) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rollback snapshot lacks series %q with samples", name)
		}
	}
	// Samples exist on both sides of the trip: the window is trailing,
	// and the end-of-run series keeps going after the rollback.
	if u := a.FindSeries("utility"); u != nil && len(u.T) > 0 {
		if u.T[len(u.T)-1] <= rollback.T {
			t.Errorf("utility series ends at %d, before the rollback at %d — no post-abort trajectory", u.T[len(u.T)-1], rollback.T)
		}
	}
	if a.FindHistogram("paraleon_sim_fct_ms") == nil {
		t.Error("artifact lacks the FCT histogram")
	}

	// Different seeds must produce different artifacts — the determinism
	// contract is per-seed, not degenerate.
	other := runLinkFlapBlackbox(t, 1, 2, nil)
	if bytes.Equal(one, other) {
		t.Error("seed 1 and seed 2 artifacts are byte-identical; recorder is not capturing the run")
	}
}

// TestBlackboxLeavesGoldenTraceUntouched proves attaching the flight
// recorder is pure observation: the JSONL event trace emitted alongside
// the artifact stays byte-identical to the recorded golden.
func TestBlackboxLeavesGoldenTraceUntouched(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "chaos_linkflap_seed7_quick.golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	bb := runLinkFlapBlackbox(t, 0, 7, &trace)
	diffTraces(t, "trace with flight recorder attached diverges from golden", trace.Bytes(), want)
	if _, err := series.Load(bytes.NewReader(bb)); err != nil {
		t.Fatal(err)
	}
}

// TestBlackboxDiffSameConfigClean is the CI artifact probe in miniature:
// two seeds of the same experiment diffed with a generous tolerance must
// come out clean — seed noise is not a regression.
func TestBlackboxDiffSameConfigClean(t *testing.T) {
	a, err := series.Load(bytes.NewReader(runLinkFlapBlackbox(t, 0, 7, nil)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := series.Load(bytes.NewReader(runLinkFlapBlackbox(t, 0, 8, nil)))
	if err != nil {
		t.Fatal(err)
	}
	d := series.Diff(a, b, 0.5)
	if !d.Clean() {
		var sb bytes.Buffer
		series.WriteDiff(&sb, a, b, d)
		t.Fatalf("seed 7 vs seed 8 judged a regression:\n%s", sb.String())
	}
}
