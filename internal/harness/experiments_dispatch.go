package harness

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dcqcn"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ChaosDispatchResult summarizes the dispatch crash-recovery run.
type ChaosDispatchResult struct {
	// Faults / Recovers count injected faults and recoveries; Kills is
	// the controller kills among them.
	Faults, Recovers, Kills int
	// Plans / Commits / Aborts aggregate rollout-plan outcomes across
	// both controller incarnations.
	Plans, Commits, Aborts int
	// WALRecords is the journal length at the end of the run; Replayed
	// is how many records the restarted controller folded.
	WALRecords, Replayed int
	// GuardRejects counts admission refusals (including the forced
	// out-of-bounds probe at the end of the run).
	GuardRejects int
	// Epoch and CommittedEpoch are the final controller epochs;
	// Converged reports whether every fabric device ended on one
	// (epoch, vector-hash) — the experiment's reason to exist.
	Epoch, CommittedEpoch uint64
	Converged             bool
	// Dispatches sums parameter pushes across both incarnations.
	Dispatches int

	TP, Utility metrics.Series
	TraceEvents int
}

// Fprint renders the crash-recovery ledger.
func (r *ChaosDispatchResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "  mean TP=%.3f utility=%.3f\n",
		metrics.Mean(r.TP.Values), metrics.Mean(r.Utility.Values))
	fmt.Fprintf(w, "  faults=%d recoveries=%d controller kills=%d\n", r.Faults, r.Recovers, r.Kills)
	fmt.Fprintf(w, "  plans=%d commits=%d aborts=%d dispatches=%d guard rejects=%d\n",
		r.Plans, r.Commits, r.Aborts, r.Dispatches, r.GuardRejects)
	fmt.Fprintf(w, "  wal records=%d replayed=%d\n", r.WALRecords, r.Replayed)
	fmt.Fprintf(w, "  epoch=%d committed=%d fabric converged=%v\n",
		r.Epoch, r.CommittedEpoch, r.Converged)
	if r.TraceEvents > 0 {
		fmt.Fprintf(w, "  trace events=%d\n", r.TraceEvents)
	}
}

// ChaosDispatchCrash is the chaos-dispatch experiment: the staged
// rollout pipeline is driven into a canary plan, the controller is
// killed the moment the plan enters its settle window (after the canary
// epoch reached a subset of devices, before promotion), and a fresh
// controller is brought up two intervals later sharing only the intent
// WAL and the fabric. The restarted controller must replay the journal,
// abort the orphaned plan, and restore every touched device under one
// fresh epoch — the fabric converges to exactly one (epoch, hash)
// instead of forking between canary and stale vectors.
//
// The run ends with a deliberately out-of-bounds vector submitted to
// the recovered pipeline: the guard must reject it with the fabric
// untouched, visible in the dispatch telemetry family.
//
// Fully in-simulation (MemWAL, simulated ACK latency), so a fixed seed
// yields a byte-identical trace.
func ChaosDispatchCrash(scale Scale, horizon eventsim.Time, seed int64, traceTo io.Writer) (*ChaosDispatchResult, error) {
	return chaosDispatchCrash(scale, horizon, seed, traceTo, nil)
}

// ChaosDispatchCrashBlackbox is ChaosDispatchCrash with a flight
// recorder attached; blackbox receives the run's artifact, spanning
// both controller incarnations (the replay-driven plan abort trips an
// anomaly snapshot).
func ChaosDispatchCrashBlackbox(scale Scale, horizon eventsim.Time, seed int64, traceTo, blackbox io.Writer) (*ChaosDispatchResult, error) {
	return chaosDispatchCrash(scale, horizon, seed, traceTo, blackbox)
}

func chaosDispatchCrash(scale Scale, horizon eventsim.Time, seed int64, traceTo, blackbox io.Writer) (*ChaosDispatchResult, error) {
	interval := scale.Interval
	if interval <= 0 {
		interval = eventsim.Millisecond
	}
	netCfg := scale.Net
	netCfg.Params = dcqcn.DefaultParams()
	n, err := sim.New(netCfg)
	if err != nil {
		return nil, err
	}

	var rec *trace.Recorder
	if traceTo != nil {
		rec = trace.NewRecorder(n.Eng, traceTo)
	}
	reg := telemetry.NewRegistry()
	cm := telemetry.NewChaosMetrics(reg)
	sink := &chaosSink{rec: rec, tm: cm, now: n.Eng.Now}

	var flight *series.Recorder
	if blackbox != nil {
		flight = series.NewRecorder(series.Meta{
			Experiment: "chaos-dispatch",
			Seed:       seed,
			IntervalNs: int64(interval),
			HorizonNs:  int64(horizon),
		})
		sink.flight = flight
		fct := telemetry.NewSimMetrics(reg).FCTMs
		n.AddFlowCompleteHook(func(fr sim.FlowRecord) {
			fct.Observe(float64(fr.FCT()) / 1e6)
		})
	}

	// The WAL and fabric are the only state shared across the controller
	// kill: the journal because it is durable, the fabric because device
	// epochs are switch state and switches do not die with the
	// controller.
	wal := &dispatch.MemWAL{}
	fab := dispatch.NewFabric(len(n.Topo.ToRs()))

	sysCfg := DefaultChaosSystemConfig()
	sysCfg.Telemetry = reg
	sysCfg.Interval = interval
	sysCfg.Dispatch = dispatch.Config{
		Enabled:         true,
		Canary:          1,
		SettleIntervals: 3,
		WAL:             wal,
		Fabric:          fab,
	}
	if rec != nil {
		sysCfg.Dispatch.Trace = rec
	}
	// Both controller incarnations sample into the one flight recorder,
	// so the artifact spans the kill and the replay-driven recovery.
	sysCfg.Flight = flight

	var flaky []*chaos.FlakySource
	var sources []monitor.ReportSource
	sketchTM := telemetry.NewSketchMetrics(reg)
	for i, tor := range n.Topo.ToRs() {
		a := monitor.NewSwitchAgent(sysCfg.Agent, uint64(i+1))
		a.TM = sketchTM
		a.Attach(n.Switch(tor))
		f := chaos.NewFlakySource(a)
		flaky = append(flaky, f)
		sources = append(sources, f)
	}
	sysCfg.Sources = sources

	attach := func() (*core.System, error) {
		sys, err := core.Attach(n, sysCfg)
		if err != nil {
			return nil, err
		}
		sys.Controller.OnFault = func(fault string, agent int) { sink.Fault(fault, chaosTarget(agent)) }
		sys.Controller.OnRecover = func(fault string, agent int) { sink.Recover(fault, chaosTarget(agent)) }
		if rec != nil {
			sys.Trace = rec
		}
		return sys, nil
	}
	sys, err := attach()
	if err != nil {
		return nil, err
	}

	// The kill takes effect at the next interval boundary: the hook fires
	// mid-event-window (the pipeline enters settle when the canary ACK
	// quorum lands), and from then on the dead controller is never ticked
	// again until its replacement attaches.
	killed := false
	res := &ChaosDispatchResult{}
	inj := chaos.NewInjector(n, flaky, sink)
	inj.BindDispatch(sys.Dispatch, func() {
		killed = true
		res.Kills++
	})
	if err := inj.Install(chaos.Scenario{
		Seed:     seed,
		Dispatch: []chaos.DispatchFault{{KillAtPhase: "settle"}},
	}); err != nil {
		return nil, err
	}

	weights := sysCfg.Weights
	if weights.Validate() != nil {
		weights = core.DefaultWeights()
	}

	sys.StartProbingOnly()
	hosts := n.Topo.Hosts()
	w := 6
	if w > len(hosts) {
		w = len(hosts)
	}
	if _, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
		Workers:      hosts[:w],
		MessageBytes: 1 << 20,
		OffTime:      eventsim.Millisecond,
	}); err != nil {
		return nil, err
	}

	const deadIntervals = 2
	deadSince := -1
	var prevIncarnation *dispatch.Pipeline
	ticks := int(horizon / interval)
	for i := 1; i <= ticks; i++ {
		n.Run(eventsim.Time(i) * interval)
		if killed && deadSince < 0 {
			deadSince = i
			prevIncarnation = sys.Dispatch
			res.Plans += sys.Dispatch.Plans
			res.Commits += sys.Dispatch.Commits
			res.Aborts += sys.Dispatch.Aborts
			res.Dispatches += sys.Dispatches
		}
		if deadSince >= 0 && sys.Dispatch == prevIncarnation {
			if i-deadSince < deadIntervals {
				// Controller down: no ticks, stale sample in the series.
				res.TP.Append(n.Eng.Now(), sys.LastSample.OTP)
				res.Utility.Append(n.Eng.Now(), core.Utility(sys.LastSample, weights))
				continue
			}
			// Restart: a fresh System (new tuner, new monitor controller,
			// empty aggregation state) sharing only the WAL and fabric.
			// Attach replays the journal and launches the recovery
			// restore before the first tick.
			sys, err = attach()
			if err != nil {
				return nil, fmt.Errorf("chaos-dispatch: controller restart: %w", err)
			}
			sink.Recover("controller_kill", "phase settle")
		}
		sys.TickOnce()
		sample := sys.LastSample
		res.TP.Append(n.Eng.Now(), sample.OTP)
		res.Utility.Append(n.Eng.Now(), core.Utility(sample, weights))
		if rec != nil {
			rec.Sample(sample)
		}
	}
	// Let any in-flight recovery or promotion ACK waves finish.
	n.Run(eventsim.Time(ticks)*interval + 10*eventsim.Millisecond)

	// Guardrail probe: an out-of-bounds vector against the recovered
	// pipeline must bounce off admission with the fabric untouched.
	epochsBefore := fmt.Sprintf("%v", fab.Epochs())
	bad := *n.RNICParams()
	bad.PMax = 2.0
	if ok, reason := sys.Dispatch.SubmitFinal(bad, 0, n.Eng.Now()); ok {
		return nil, fmt.Errorf("chaos-dispatch: guard admitted PMax=2.0")
	} else if reason != dispatch.RejectBounds {
		return nil, fmt.Errorf("chaos-dispatch: PMax=2.0 rejected as %v, want bounds", reason)
	}
	if after := fmt.Sprintf("%v", fab.Epochs()); after != epochsBefore {
		return nil, fmt.Errorf("chaos-dispatch: rejected dispatch moved the fabric: %s -> %s", epochsBefore, after)
	}

	res.Faults = sink.faults
	res.Recovers = sink.recovers
	res.Plans += sys.Dispatch.Plans
	res.Commits += sys.Dispatch.Commits
	res.Aborts += sys.Dispatch.Aborts
	res.Dispatches += sys.Dispatches
	res.GuardRejects = sys.Dispatch.Guard().Rejects()
	res.WALRecords = wal.Len()
	res.Replayed = sys.Dispatch.WALReplayed()
	res.Epoch = sys.Dispatch.Epoch()
	res.CommittedEpoch = sys.Dispatch.CommittedEpoch()
	res.Converged = fab.Converged()
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("chaos-dispatch trace: %w", err)
		}
		res.TraceEvents = rec.Events
	}
	if flight != nil {
		m := flight.Meta()
		m.Tuner = sys.Tuner.Name()
		flight.SetMeta(m)
		if err := n.CheckPoolInvariant(); err != nil {
			flight.Trip(int64(n.Eng.Now()), "pool_invariant", err.Error())
		}
		if err := flight.WriteArtifact(blackbox, int64(n.Eng.Now()), reg); err != nil {
			return nil, fmt.Errorf("chaos-dispatch blackbox: %w", err)
		}
	}
	return res, nil
}
