package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ctrlrpc"
	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// linkFlapConfig mirrors ChaosLinkFlap but lets the test supply its own
// registry so assertions see exactly one run's activity.
func linkFlapConfig(horizon eventsim.Time, seed int64, reg *telemetry.Registry, traceTo *bytes.Buffer) ChaosRunConfig {
	sysCfg := DefaultChaosSystemConfig()
	sysCfg.Degrade = core.DegradeConfig{RollbackWindow: 3, RollbackMargin: 0.05}
	sysCfg.Telemetry = reg
	return ChaosRunConfig{
		Scale:     QuickScale(),
		SystemCfg: sysCfg,
		Duration:  horizon,
		TraceTo:   traceTo,
		ScenarioFn: func(n *sim.Network) chaos.Scenario {
			a, b, err := fabricLink(n)
			if err != nil {
				return chaos.Scenario{Seed: seed}
			}
			return chaos.Scenario{
				Seed: seed,
				Links: []chaos.LinkFault{{
					A: a, B: b,
					At:      horizon / 4,
					DownFor: 3 * eventsim.Millisecond,
					Flaps:   3,
					Every:   8 * eventsim.Millisecond,
				}},
			}
		},
		Workload: func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			w := 6
			if w > len(hosts) {
				w = len(hosts)
			}
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      hosts[:w],
				MessageBytes: 1 << 20,
				OffTime:      eventsim.Millisecond,
			})
			return err
		},
	}
}

// TestTelemetryEndToEnd is the PR's acceptance scenario: one chaos
// linkflap run plus one testbed run against a shared fresh registry must
// populate all five metric families, produce span-linked trace events,
// and yield a non-empty run report.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	r, err := RunChaos(linkFlapConfig(40*eventsim.Millisecond, 1, reg, &buf))
	if err != nil {
		t.Fatal(err)
	}
	// A small testbed run covers the ctrlrpc family the in-sim loop
	// never touches.
	srvCfg := ctrlrpc.DefaultServerConfig()
	srvCfg.SA = core.ShortSAConfig()
	if _, err := RunTestbed(TestbedConfig{
		Scale:     QuickScale(),
		Server:    srvCfg,
		Duration:  10 * eventsim.Millisecond,
		Telemetry: reg,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallPoisson(n, workload.PoissonConfig{
				CDF: workload.FBHadoop(), Load: 0.3,
			})
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}

	// 1. /metrics coverage: every subsystem family reports activity.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	for metric, wantActive := range map[string]bool{
		"paraleon_sketch_inserts_total":    true,
		"paraleon_sketch_reads_total":      true,
		"paraleon_monitor_ticks_total":     true,
		"paraleon_monitor_triggers_total":  true,
		"paraleon_tuner_iterations_total":  true,
		"paraleon_tuner_dispatches_total":  true,
		"paraleon_ctrlrpc_frames_in_total": true,
		"paraleon_ctrlrpc_reports_total":   true,
		"paraleon_chaos_faults_total":      true,
		"paraleon_chaos_rollbacks_total":   true,
		telemetry.VirtualTimeGauge:         true,
	} {
		if !strings.Contains(exposition, "\n"+metric+" ") && !strings.HasPrefix(exposition, metric+" ") {
			t.Errorf("exposition missing %s", metric)
			continue
		}
		if wantActive {
			for _, line := range strings.Split(exposition, "\n") {
				if strings.HasPrefix(line, metric+" ") && strings.HasSuffix(line, " 0") {
					t.Errorf("%s recorded no activity: %q", metric, line)
				}
			}
		}
	}
	if r.Rollbacks == 0 {
		t.Fatal("no rollbacks under link flapping; scenario lost its teeth")
	}
	rollbacks := reg.Counter("paraleon_tuner_rollbacks_total", "")
	if got := rollbacks.Value(); got != int64(r.Rollbacks) {
		t.Errorf("rollback counter = %d, result says %d", got, r.Rollbacks)
	}

	// 2. Span-linked trace: each sa_session span opens with a trigger,
	// links its dispatches, and closes on settle or abort.
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := trace.Spans(events)
	if len(spans) == 0 {
		t.Fatal("no spans in chaos trace")
	}
	linkedDispatches := 0
	for _, s := range spans {
		if s.Name != "sa_session" {
			t.Errorf("unexpected span %q", s.Name)
		}
		if len(s.Events) == 0 {
			t.Errorf("span %d has no linked events", s.ID)
			continue
		}
		if s.Events[0].Kind != trace.KindTrigger {
			t.Errorf("span %d first event %q, want trigger", s.ID, s.Events[0].Kind)
		}
		for _, e := range s.Events {
			if e.Kind == trace.KindDispatch {
				linkedDispatches++
			}
			if e.T < s.StartT {
				t.Errorf("span %d event at t=%d before span start %d", s.ID, e.T, s.StartT)
			}
			if s.EndT >= 0 && e.T > s.EndT {
				t.Errorf("span %d event at t=%d after span end %d", s.ID, e.T, s.EndT)
			}
		}
	}
	if linkedDispatches == 0 {
		t.Error("no dispatch events linked into any span")
	}
	// At least one span must have closed (settled or aborted by the
	// rollback) within the horizon.
	closed := 0
	for _, s := range spans {
		if s.EndT >= 0 {
			closed++
		}
	}
	if closed == 0 {
		t.Error("no span ever closed")
	}

	// 3. Run report: non-empty, and it carries the virtual clock.
	rep := reg.BuildReport()
	if rep.Empty() {
		t.Fatal("run report is empty")
	}
	if rep.VirtualTimeNs <= 0 {
		t.Errorf("report virtual time = %d, want > 0", rep.VirtualTimeNs)
	}
	if rep.Status["control_loop"] == nil {
		t.Error("report missing control_loop status section")
	}
	var out strings.Builder
	rep.Fprint(&out)
	if !strings.Contains(out.String(), "paraleon_tuner_dispatches_total") {
		t.Errorf("report text missing dispatch counter:\n%s", out.String())
	}
}

// TestLoopStatusPublished checks the push-based status snapshot the
// /debug/status endpoint serves.
func TestLoopStatusPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	if _, err := RunChaos(linkFlapConfig(20*eventsim.Millisecond, 1, reg, &buf)); err != nil {
		t.Fatal(err)
	}
	status := reg.Status()
	ls, ok := status["control_loop"].(core.LoopStatus)
	if !ok {
		t.Fatalf("control_loop section = %T, want core.LoopStatus", status["control_loop"])
	}
	if ls.VirtualTimeNs <= 0 {
		t.Errorf("status virtual time = %d, want > 0", ls.VirtualTimeNs)
	}
	if ls.Triggers == 0 {
		t.Error("status records no triggers")
	}
	if ls.Params.Validate() != nil {
		t.Errorf("status params invalid: %+v", ls.Params)
	}
}
