package harness

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ctrlrpc"
	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// chaosSink counts fault activity and forwards it to an optional trace
// recorder, the chaos telemetry family, and the flight recorder (where
// a fault trips an anomaly snapshot and a recovery lands in the event
// window).
type chaosSink struct {
	rec              *trace.Recorder
	tm               *telemetry.ChaosMetrics
	flight           *series.Recorder
	now              func() eventsim.Time
	faults, recovers int
}

func (s *chaosSink) Fault(fault, target string) {
	s.faults++
	if s.tm != nil {
		s.tm.Faults.Inc()
	}
	if s.rec != nil {
		s.rec.Fault(fault, target)
	}
	if s.flight != nil {
		s.flight.Trip(int64(s.now()), "chaos_fault", fault+" "+target)
	}
}

func (s *chaosSink) Recover(fault, target string) {
	s.recovers++
	if s.tm != nil {
		s.tm.Recovers.Inc()
	}
	if s.rec != nil {
		s.rec.Recover(fault, target)
	}
	if s.flight != nil {
		s.flight.Event(int64(s.now()), "chaos_recover", fault+" "+target)
	}
}

// chaosTarget renders a controller fault callback's agent index.
func chaosTarget(agent int) string {
	if agent < 0 {
		return "controller"
	}
	return fmt.Sprintf("agent %d", agent)
}

// DefaultChaosSystemConfig is the Paraleon deployment chaos runs use:
// the standard system with the compressed SA schedule.
func DefaultChaosSystemConfig() core.SystemConfig {
	cfg := core.DefaultSystemConfig()
	cfg.SA = core.ShortSAConfig()
	return cfg
}

// ChaosRunConfig executes a Paraleon arm with a fault scenario injected.
type ChaosRunConfig struct {
	Scale     Scale
	SystemCfg core.SystemConfig

	// Scenario is the fault plan; ScenarioFn, when set, builds it from
	// the freshly constructed network (experiments that need to name
	// concrete links) and takes precedence.
	Scenario   chaos.Scenario
	ScenarioFn func(n *sim.Network) chaos.Scenario

	Duration eventsim.Time
	Workload func(n *sim.Network) error

	// TraceTo, when non-nil, receives the run's JSON Lines event trace
	// (samples, dispatches, faults, recoveries, rollbacks). With a fixed
	// scenario seed the trace is byte-identical across runs.
	TraceTo io.Writer

	// Blackbox, when non-nil, attaches the flight recorder and receives
	// the run's black-box artifact (internal/telemetry/series) when the
	// run ends: the sampled trajectory, anomaly snapshots around every
	// rollback/fault/freeze, and registry histogram quantiles. With a
	// fixed scenario seed the artifact is byte-identical across runs and
	// shard counts (give SystemCfg.Telemetry a fresh registry if the
	// process-wide default would mix runs). Experiment names the run in
	// the artifact's meta.
	Blackbox   io.Writer
	Experiment string
	// ScaleLabel names the fabric scale in the artifact meta ("quick",
	// "medium", "paper"); optional.
	ScaleLabel string
}

// ChaosResult is a chaos run's outcome: the usual series plus the
// degradation ledger.
type ChaosResult struct {
	Net     *sim.Network
	Sources []*chaos.FlakySource

	TP, RTT, PFC, Utility metrics.Series

	// Faults / Recovers count injected-fault and recovery events
	// (including controller-detected ones like eviction and quorum loss).
	Faults, Recovers int
	// FrozenIntervals, Evictions, Readmits, Rollbacks, Dispatches, and
	// Triggers summarize how the control loop rode the faults out.
	FrozenIntervals, Evictions, Readmits int
	Rollbacks, Dispatches, Triggers      int
	// TraceEvents counts records written to TraceTo.
	TraceEvents int
}

// Fprint renders the degradation ledger.
func (r *ChaosResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "  mean TP=%.3f RTTnorm=%.3f utility=%.3f\n",
		metrics.Mean(r.TP.Values), metrics.Mean(r.RTT.Values), metrics.Mean(r.Utility.Values))
	fmt.Fprintf(w, "  faults=%d recoveries=%d\n", r.Faults, r.Recovers)
	fmt.Fprintf(w, "  frozen intervals=%d evictions=%d readmits=%d\n",
		r.FrozenIntervals, r.Evictions, r.Readmits)
	fmt.Fprintf(w, "  triggers=%d dispatches=%d rollbacks=%d\n",
		r.Triggers, r.Dispatches, r.Rollbacks)
	if r.TraceEvents > 0 {
		fmt.Fprintf(w, "  trace events=%d\n", r.TraceEvents)
	}
}

// RunChaos executes one Paraleon run under fault injection: agents are
// wrapped in chaos.FlakySources so the scenario can crash them, the
// injector schedules the data-plane faults, and the controller/system
// degradation hooks feed the same sink (and trace) as the injector.
func RunChaos(cfg ChaosRunConfig) (*ChaosResult, error) {
	if cfg.SystemCfg.Interval <= 0 && cfg.SystemCfg.Theta == 0 {
		deg := cfg.SystemCfg.Degrade
		cfg.SystemCfg = DefaultChaosSystemConfig()
		cfg.SystemCfg.Degrade = deg
	}
	interval := cfg.Scale.Interval
	if interval <= 0 {
		interval = eventsim.Millisecond
	}

	netCfg := cfg.Scale.Net
	netCfg.Params = dcqcn.DefaultParams()
	n, err := sim.New(netCfg)
	if err != nil {
		return nil, err
	}

	var rec *trace.Recorder
	if cfg.TraceTo != nil {
		rec = trace.NewRecorder(n.Eng, cfg.TraceTo)
	}
	reg := cfg.SystemCfg.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	cm := telemetry.NewChaosMetrics(reg)
	sink := &chaosSink{rec: rec, tm: cm, now: n.Eng.Now}

	// Every agent rides behind a FlakySource so scenarios can kill it.
	sysCfg := cfg.SystemCfg
	sysCfg.Telemetry = reg
	sysCfg.Interval = interval

	// Scenario construction (not installation — the injector schedules
	// engine events and must keep its position below core.Attach for the
	// recorded goldens) happens early so the flight recorder can stamp
	// the scenario seed into its artifact meta.
	scenario := cfg.Scenario
	if cfg.ScenarioFn != nil {
		scenario = cfg.ScenarioFn(n)
	}

	var flight *series.Recorder
	if cfg.Blackbox != nil {
		flight = series.NewRecorder(series.Meta{
			Experiment: cfg.Experiment,
			Seed:       scenario.Seed,
			Scale:      cfg.ScaleLabel,
			IntervalNs: int64(interval),
			HorizonNs:  int64(cfg.Duration),
		})
		sysCfg.Flight = flight
		sink.flight = flight
		// Flow completion times feed the registry histogram the artifact
		// embeds; the hook is composable observation only.
		fct := telemetry.NewSimMetrics(reg).FCTMs
		n.AddFlowCompleteHook(func(fr sim.FlowRecord) {
			fct.Observe(float64(fr.FCT()) / 1e6)
		})
	}
	var flaky []*chaos.FlakySource
	var sources []monitor.ReportSource
	sketchTM := telemetry.NewSketchMetrics(reg)
	for i, tor := range n.Topo.ToRs() {
		a := monitor.NewSwitchAgent(sysCfg.Agent, uint64(i+1))
		a.TM = sketchTM
		a.Attach(n.Switch(tor))
		f := chaos.NewFlakySource(a)
		flaky = append(flaky, f)
		sources = append(sources, f)
	}
	sysCfg.Sources = sources
	sys, err := core.Attach(n, sysCfg)
	if err != nil {
		return nil, err
	}
	sys.Controller.OnFault = func(fault string, agent int) { sink.Fault(fault, chaosTarget(agent)) }
	sys.Controller.OnRecover = func(fault string, agent int) { sink.Recover(fault, chaosTarget(agent)) }
	sys.OnRollback = func(dcqcn.Params) { cm.Rollbacks.Inc() }
	if rec != nil {
		// Span-linked trace: the System opens an sa_session span per
		// trigger and links its dispatches/rollbacks into it.
		sys.Trace = rec
	}
	if flight != nil {
		m := flight.Meta()
		m.Tuner = sys.Tuner.Name()
		flight.SetMeta(m)
	}

	inj := chaos.NewInjector(n, flaky, sink)
	if err := inj.Install(scenario); err != nil {
		return nil, err
	}

	weights := sysCfg.Weights
	if weights.Validate() != nil {
		weights = core.DefaultWeights()
	}

	sys.StartProbingOnly()
	if cfg.Workload != nil {
		if err := cfg.Workload(n); err != nil {
			return nil, err
		}
	}

	res := &ChaosResult{Net: n, Sources: flaky}
	ticks := int(cfg.Duration / interval)
	for i := 1; i <= ticks; i++ {
		n.Run(eventsim.Time(i) * interval)
		now := n.Eng.Now()
		sys.TickOnce()
		sample := sys.LastSample
		res.TP.Append(now, sample.OTP)
		res.RTT.Append(now, sample.ORTT)
		res.PFC.Append(now, sample.OPFC)
		res.Utility.Append(now, core.Utility(sample, weights))
		if rec != nil {
			rec.Sample(sample)
		}
	}

	res.Faults = sink.faults
	res.Recovers = sink.recovers
	res.FrozenIntervals = sys.FrozenIntervals
	res.Evictions = sys.Controller.Evictions
	res.Readmits = sys.Controller.Readmits
	res.Rollbacks = sys.Rollbacks
	res.Dispatches = sys.Dispatches
	res.Triggers = sys.Controller.Triggers
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("chaos trace: %w", err)
		}
		res.TraceEvents = rec.Events
	}
	if flight != nil {
		if err := n.CheckPoolInvariant(); err != nil {
			flight.Trip(int64(n.Eng.Now()), "pool_invariant", err.Error())
		}
		if err := flight.WriteArtifact(cfg.Blackbox, int64(n.Eng.Now()), reg); err != nil {
			return nil, fmt.Errorf("chaos blackbox: %w", err)
		}
	}
	return res, nil
}

// fabricLink returns one ToR↔Leaf link's endpoints (the first found).
func fabricLink(n *sim.Network) (a, b topology.NodeID, err error) {
	for i := range n.Topo.Links {
		l := &n.Topo.Links[i]
		ka, kb := n.Topo.Nodes[l.A].Kind, n.Topo.Nodes[l.B].Kind
		if (ka == topology.ToRSwitch && kb == topology.LeafSwitch) ||
			(ka == topology.LeafSwitch && kb == topology.ToRSwitch) {
			return l.A, l.B, nil
		}
	}
	return 0, 0, fmt.Errorf("chaos: topology has no ToR-leaf link")
}

// ChaosLinkFlap is the chaos-linkflap experiment: a sustained cross-rack
// alltoall while one fabric uplink flaps. The flap shifts the observed
// traffic pattern, (re)starting a tuning session whose candidate
// parameters are then measured through the outage — exactly the
// situation rollback exists for: utility regresses persistently, the
// system reverts to the last-known-good vector and aborts the search.
func ChaosLinkFlap(scale Scale, horizon eventsim.Time, seed int64, traceTo io.Writer) (*ChaosResult, error) {
	return RunChaos(ChaosLinkFlapConfig(scale, horizon, seed, traceTo))
}

// ChaosLinkFlapConfig builds the chaos-linkflap run configuration, so
// callers (the CLI's -blackbox flag, the determinism tests) can adjust
// the run — attach a flight recorder, swap the registry — before
// RunChaos executes it.
func ChaosLinkFlapConfig(scale Scale, horizon eventsim.Time, seed int64, traceTo io.Writer) ChaosRunConfig {
	sysCfg := DefaultChaosSystemConfig()
	sysCfg.Degrade = core.DegradeConfig{RollbackWindow: 3, RollbackMargin: 0.05}
	return ChaosRunConfig{
		Scale:      scale,
		SystemCfg:  sysCfg,
		Duration:   horizon,
		TraceTo:    traceTo,
		Experiment: "chaos-linkflap",
		ScenarioFn: func(n *sim.Network) chaos.Scenario {
			a, b, err := fabricLink(n)
			if err != nil {
				return chaos.Scenario{Seed: seed}
			}
			return chaos.Scenario{
				Seed: seed,
				Links: []chaos.LinkFault{{
					A: a, B: b,
					At:      horizon / 4,
					DownFor: 3 * eventsim.Millisecond,
					Flaps:   3,
					Every:   8 * eventsim.Millisecond,
				}},
			}
		},
		Workload: func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			w := 6
			if w > len(hosts) {
				w = len(hosts)
			}
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      hosts[:w],
				MessageBytes: 1 << 20,
				OffTime:      eventsim.Millisecond,
			})
			return err
		},
	}
}

// ChaosAgentCrash is the chaos-agentcrash experiment: one of the two
// rack agents crashes mid-run (losing its sketch state) and restarts
// later. StaleAfter is set beyond the outage so the membership holds and
// the sub-quorum freeze spans the entire outage; tuning resumes the
// interval the agent returns. Fully in-simulation, so a fixed seed
// yields a byte-identical trace.
func ChaosAgentCrash(scale Scale, horizon eventsim.Time, seed int64, traceTo io.Writer) (*ChaosResult, error) {
	return RunChaos(ChaosAgentCrashConfig(scale, horizon, seed, traceTo))
}

// ChaosAgentCrashConfig builds the chaos-agentcrash run configuration
// (see ChaosLinkFlapConfig for why it is exported separately).
func ChaosAgentCrashConfig(scale Scale, horizon eventsim.Time, seed int64, traceTo io.Writer) ChaosRunConfig {
	sysCfg := DefaultChaosSystemConfig()
	sysCfg.Degrade = core.DegradeConfig{
		// Hold membership across the outage: with 2 racks, 1/2 present
		// vs QuorumFrac 0.6 freezes; eviction would instead shrink the
		// membership to 1/1 and unfreeze half-blind.
		StaleAfter: 1 << 20,
		QuorumFrac: 0.6,
	}
	return ChaosRunConfig{
		Scale:      scale,
		SystemCfg:  sysCfg,
		Duration:   horizon,
		TraceTo:    traceTo,
		Experiment: "chaos-agentcrash",
		Scenario: chaos.Scenario{
			Seed: seed,
			Agents: []chaos.AgentFault{{
				Agent:     0,
				CrashAt:   horizon * 3 / 10,
				RestartAt: horizon * 6 / 10,
			}},
		},
		Workload: func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			w := 6
			if w > len(hosts) {
				w = len(hosts)
			}
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      hosts[:w],
				MessageBytes: 1 << 20,
				OffTime:      eventsim.Millisecond,
			})
			return err
		},
	}
}

// ChaosPartitionResult summarizes a control-plane partition run.
type ChaosPartitionResult struct {
	// Ticks is how many monitor intervals ran; TickErrors and
	// ReportErrors count calls that failed even after redial.
	Ticks, TickErrors, ReportErrors int
	// Reconnects sums agent and driver redials; ServerRestarts counts
	// controller kills.
	Reconnects     int
	ServerRestarts int
	// Drops, Dups, and Truncs count injected transport faults.
	Drops, Dups, Truncs int
	// Dispatches counts parameter applications that made it through.
	Dispatches int

	TP metrics.Series
}

// Fprint renders the partition ledger.
func (r *ChaosPartitionResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "  intervals=%d mean TP=%.3f dispatches=%d\n",
		r.Ticks, metrics.Mean(r.TP.Values), r.Dispatches)
	fmt.Fprintf(w, "  injected: drops=%d dups=%d truncs=%d server restarts=%d\n",
		r.Drops, r.Dups, r.Truncs, r.ServerRestarts)
	fmt.Fprintf(w, "  recovered: reconnects=%d; lost: report errors=%d tick errors=%d\n",
		r.Reconnects, r.ReportErrors, r.TickErrors)
}

// ChaosCtrlPartition is the chaos-ctrlpartition experiment: the testbed
// control plane (real TCP loopback) under transport faults and a
// controller kill+restart. Agents use reconnecting clients whose dialer
// wraps every connection in a FaultyConn; halfway through, the
// controller process is killed and a fresh one binds the same address,
// losing all aggregation state. The run demonstrates that the loop
// degrades (some intervals lose reports) but never wedges.
//
// The control plane runs on wall-clock TCP, so unlike the in-simulation
// experiments the fault *pattern* is seeded but the interleaving is not
// byte-deterministic.
func ChaosCtrlPartition(scale Scale, duration eventsim.Time, seed int64) (*ChaosPartitionResult, error) {
	interval := scale.Interval
	if interval <= 0 {
		interval = eventsim.Millisecond
	}
	srvCfg := ctrlrpc.DefaultServerConfig()
	srvCfg.SA = core.ShortSAConfig()

	netCfg := scale.Net
	netCfg.Params = srvCfg.Base
	n, err := sim.New(netCfg)
	if err != nil {
		return nil, err
	}
	srv, err := ctrlrpc.Serve("127.0.0.1:0", srvCfg)
	if err != nil {
		return nil, err
	}
	defer func() { srv.Close() }()
	addr := srv.Addr()

	faults := chaos.ConnFaults{
		DropProb:    0.05,
		DupProb:     0.02,
		TruncProb:   0.02,
		DropTimeout: 25 * time.Millisecond,
	}
	var dialSeq int64
	var conns []*chaos.FaultyConn
	faultyDial := func(addr string) (*ctrlrpc.Client, error) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		dialSeq++
		f := faults
		f.Seed = seed + dialSeq
		fc := f.Wrap(conn)
		conns = append(conns, fc)
		return ctrlrpc.NewClient(fc), nil
	}

	rpcTM := telemetry.NewRPCMetrics(telemetry.Default())
	sketchTM := telemetry.NewSketchMetrics(telemetry.Default())
	views := rackViews(n)
	agents := make([]*monitor.SwitchAgent, len(views))
	clients := make([]*ctrlrpc.ReconnClient, len(views))
	for i, v := range views {
		agents[i] = monitor.NewSwitchAgent(monitor.ParaleonAgentConfig(), uint64(i+1))
		agents[i].TM = sketchTM
		agents[i].Attach(n.Switch(v.tor))
		rc, err := ctrlrpc.DialReconnectingWith(addr, 10, 2*time.Millisecond, 20*time.Millisecond, faultyDial)
		if err != nil {
			return nil, err
		}
		rc.TM = rpcTM
		rc.SeedBackoff(seed + int64(i))
		defer rc.Close()
		clients[i] = rc
	}
	// The tick driver gets clean connections: its job is to show the
	// endpoint kill/restart recovery, not to fight frame faults too.
	driver, err := ctrlrpc.DialReconnectingWith(addr, 10, 2*time.Millisecond, 20*time.Millisecond, nil)
	if err != nil {
		return nil, err
	}
	driver.TM = rpcTM
	driver.SeedBackoff(seed - 1)
	defer driver.Close()

	for _, h := range n.Hosts {
		h.StartProbing(interval / 4)
	}
	if _, err := workload.InstallPoisson(n, workload.PoissonConfig{
		CDF: workload.FBHadoop(), Load: 0.3,
	}); err != nil {
		return nil, err
	}

	res := &ChaosPartitionResult{}
	ticks := int(duration / interval)
	restartAt := ticks / 2
	for seq := 1; seq <= ticks; seq++ {
		if seq == restartAt {
			// Kill the controller and bring a fresh one up on the same
			// address: established connections break, aggregation state
			// is lost, and every client must redial.
			srv.Close()
			s2, err := ctrlrpc.Serve(addr, srvCfg)
			if err != nil {
				return nil, fmt.Errorf("chaos: controller restart: %w", err)
			}
			srv = s2
			res.ServerRestarts++
		}
		n.Run(eventsim.Time(seq) * interval)
		now := n.Eng.Now()
		var tpSum float64
		var tpLinks int32
		for i, v := range views {
			mr := agents[i].EndInterval()
			r := ctrlrpc.Report{AgentID: uint32(i), Seq: uint64(seq), Flows: int32(mr.Flows)}
			r.Hist = mr.Hist
			r.ElephantBytes = mr.ElephantBytes
			r.MiceBytes = mr.MiceBytes
			r.ElephantFlowsW = mr.ElephantFlowsW
			r.MiceFlowsW = mr.MiceFlowsW
			us, links, rs, rc2, ps, dev := sampleRack(n, v, interval)
			r.UtilSum, r.ActiveLinks = us, links
			r.RTTNormSum, r.RTTCount = rs, rc2
			r.PauseFracSum, r.Devices = ps, dev
			if err := clients[i].SendReport(r); err != nil {
				res.ReportErrors++ // degraded interval, not fatal
			}
			tpSum += us
			tpLinks += links
		}
		tick, err := driver.Tick(uint64(seq), time.Duration(interval))
		if err != nil {
			res.TickErrors++
		} else if tick.Changed {
			n.ApplyParams(tick.Params)
			res.Dispatches++
		}
		tp := 0.0
		if tpLinks > 0 {
			tp = tpSum / float64(tpLinks)
		}
		res.TP.Append(now, tp)
		res.Ticks++
	}
	for _, c := range clients {
		res.Reconnects += c.Reconnects
	}
	res.Reconnects += driver.Reconnects
	for _, fc := range conns {
		res.Drops += fc.Drops
		res.Dups += fc.Dups
		res.Truncs += fc.Truncs
	}
	return res, nil
}
