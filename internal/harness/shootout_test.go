package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/eventsim"
)

func TestTunerShootoutRunsAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm simulation in -short mode")
	}
	r, err := TunerShootout(QuickScale(), 30*eventsim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuners) < 3 {
		t.Fatalf("shootout raced %v, want the three in-tree strategies", r.Tuners)
	}
	for _, wl := range r.Workloads {
		for _, tun := range r.Tuners {
			c := r.Cell(tun, wl)
			if c.Tuner != tun || c.Workload != wl {
				t.Fatalf("missing cell (%s, %s)", tun, wl)
			}
			if math.IsNaN(c.MeanUtility) || c.MeanUtility <= 0 {
				t.Errorf("(%s, %s): mean utility %g, want > 0", tun, wl, c.MeanUtility)
			}
			if math.IsNaN(c.PauseFrac) || c.PauseFrac < 0 || c.PauseFrac > 1 {
				t.Errorf("(%s, %s): pause fraction %g out of [0,1]", tun, wl, c.PauseFrac)
			}
			if wl != "chaos-linkflap" && c.Dispatches == 0 {
				t.Errorf("(%s, %s): no dispatches — strategy never ran", tun, wl)
			}
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, tun := range r.Tuners {
		if !strings.Contains(out, tun) {
			t.Errorf("report omits %s:\n%s", tun, out)
		}
	}
}

// TestTunerShootoutDeterministic pins the acceptance bar: identical
// (scale, horizon, seed) must reproduce the full table, and — per the
// sharding determinism contract (sim.Config.Shards) — any shard count
// ≥ 1 must produce the same table as any other. (Shards = 0 is the
// legacy single-engine path, which the contract allows to differ from
// the sharded schedule; reruns of it must still match themselves.)
func TestTunerShootoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm simulation in -short mode")
	}
	run := func(shards int) *TunerShootoutResult {
		sc := QuickScale()
		sc.Net.Shards = shards
		r, err := TunerShootout(sc, 20*eventsim.Millisecond, 7)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	legacyA, legacyB := run(0), run(0)
	for key, ca := range legacyA.Cells {
		if cb := legacyB.Cells[key]; ca != cb {
			t.Errorf("rerun diverged at %s:\n%+v\n%+v", key, ca, cb)
		}
	}
	one, four := run(1), run(4)
	for key, c1 := range one.Cells {
		if c4 := four.Cells[key]; c1 != c4 {
			t.Errorf("shard count changed %s:\n%+v\n%+v", key, c1, c4)
		}
	}
}
