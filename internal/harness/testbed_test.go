package harness

import (
	"strings"
	"testing"

	"repro/internal/ctrlrpc"
	"repro/internal/eventsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRunTestbedClosedLoop(t *testing.T) {
	scale := QuickScale()
	res, err := RunTestbed(TestbedConfig{
		Scale:    scale,
		Server:   ctrlrpc.DefaultServerConfig(),
		Duration: 30 * eventsim.Millisecond,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallPoisson(n, workload.PoissonConfig{
				CDF: workload.FBHadoop(), Load: 0.4,
			})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TP.Len() != 30 {
		t.Errorf("TP samples %d, want 30", res.TP.Len())
	}
	if res.Server.Reports == 0 || res.Server.Ticks != 30 {
		t.Errorf("server stats %+v", res.Server)
	}
	if res.Server.Triggers == 0 {
		t.Error("controller never triggered tuning")
	}
	if res.Dispatches == 0 {
		t.Error("no parameters applied to the fabric")
	}
	if res.ReportBytes <= 0 || res.ReportBytes > 1024 {
		t.Errorf("report frame %d B implausible", res.ReportBytes)
	}
	if res.ParamsBytes <= 0 || res.ParamsBytes > 512 {
		t.Errorf("params frame %d B implausible", res.ParamsBytes)
	}
	if len(res.Net.Completed) == 0 {
		t.Error("no flows completed")
	}
}

func TestTestbedParamsReachFabric(t *testing.T) {
	scale := QuickScale()
	var initial = ctrlrpc.DefaultServerConfig().Base
	res, err := RunTestbed(TestbedConfig{
		Scale:    scale,
		Server:   ctrlrpc.DefaultServerConfig(),
		Duration: 20 * eventsim.Millisecond,
		Workload: func(n *sim.Network) error {
			hosts := n.Topo.Hosts()
			for i := 1; i <= 5; i++ {
				n.StartFlow(hosts[i], hosts[0], 64<<20)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatches == 0 {
		t.Fatal("no dispatches")
	}
	got := *res.Net.RNICParams()
	if got == initial {
		t.Error("fabric still on initial params after dispatches")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("fabric params invalid: %v", err)
	}
}

func TestFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed sweep skipped in -short")
	}
	res, err := Fig13(QuickScale(), []int{4, 6}, 1<<20, 80*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, wc := range res.WorkerCounts {
		for _, name := range res.Order {
			bw := res.GoodputGbps[wc][name]
			if bw <= 0 {
				t.Errorf("workers %d scheme %s: goodput %g", wc, name, bw)
			}
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "paraleon") {
		t.Error("Fprint missing paraleon row")
	}
}

func TestFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed influx skipped in -short")
	}
	spec := DefaultInfluxSpec()
	spec.Horizon = 60 * eventsim.Millisecond
	spec.BurstAt = 20 * eventsim.Millisecond
	spec.BurstLen = 15 * eventsim.Millisecond
	res, err := Fig14(QuickScale(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 3 {
		t.Fatalf("%d arms", len(res.Order))
	}
	for _, name := range res.Order {
		if res.TP[name].Len() != 60 {
			t.Errorf("%s: %d samples", name, res.TP[name].Len())
		}
	}
}

func TestTable4(t *testing.T) {
	res, err := Table4(QuickScale(), 20*eventsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchToControllerBytes <= 0 {
		t.Error("no switch→controller bytes")
	}
	if res.ControllerToFabricBytes <= 0 {
		t.Error("no controller→fabric bytes")
	}
	if res.Ticks != 20 {
		t.Errorf("ticks %d, want 20", res.Ticks)
	}
	if res.ProcessingPerTick <= 0 {
		t.Error("no processing time recorded")
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "Table IV") {
		t.Error("Fprint missing header")
	}
}
