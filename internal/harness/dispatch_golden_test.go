package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventsim"
)

// TestChaosDispatchGolden pins the chaos-dispatch experiment — kill the
// controller between canary and promote, restart it from the WAL — to a
// byte-exact trace, and asserts the invariants the trace alone cannot:
// the fabric converged to exactly one epoch, the recovery restore
// committed, and the out-of-bounds probe bounced off the guard without
// touching the fabric.
//
// Regenerate (only if an intentional semantic change lands) with:
//
//	go run ./cmd/paraleon-sim -exp chaos-dispatch -scale quick \
//	   -chaos-seed 7 -chaos-trace internal/harness/testdata/chaos_dispatch_seed7_quick.golden.jsonl
func TestChaosDispatchGolden(t *testing.T) {
	run := func() (*ChaosDispatchResult, []byte) {
		var buf bytes.Buffer
		r, err := ChaosDispatchCrash(QuickScale(), 40*eventsim.Millisecond, 7, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	res, got := run()

	if res.Kills != 1 {
		t.Errorf("controller kills = %d, want 1", res.Kills)
	}
	if res.Plans == 0 {
		t.Error("no rollout plan started before the kill")
	}
	if res.Commits == 0 {
		t.Error("recovery restore never committed")
	}
	if res.Replayed == 0 {
		t.Error("restarted controller replayed nothing")
	}
	if !res.Converged {
		t.Error("fabric did not converge to one epoch after recovery")
	}
	if res.GuardRejects == 0 {
		t.Error("out-of-bounds probe not counted as a guard reject")
	}

	// Same seed, same bytes — twice in-process, and against the golden.
	_, again := run()
	diffTraces(t, "chaos-dispatch trace diverges between identical runs", again, got)
	want, err := os.ReadFile(filepath.Join("testdata", "chaos_dispatch_seed7_quick.golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	diffTraces(t, "chaos-dispatch trace diverges from golden", got, want)
}
