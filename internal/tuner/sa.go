// The simulated-annealing strategy implements Paraleon's primary
// contribution: the Performance-oriented Tuning module (§III-C). It
// defines the utility function over network-wide runtime metrics
// (Equation 1) and the improved simulated-annealing search of
// Algorithm 1, with the paper's two optimizations — guided randomness
// (drive each parameter toward the dominant flow type's friendly
// direction with probability min(μ, η), with bounded random steps
// s'_p = s_p·rand(0.5,1)) and a relaxed temperature schedule for timely
// convergence.
//
// The tuner is deliberately asynchronous: the centralized controller
// calls Step once per monitor interval with fresh metrics, and receives
// the next parameter vector to dispatch. This mirrors the paper's
// event-driven closed loop, where every SA iteration costs one λ_MI of
// measurement.

package tuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// Weights are the operator-assigned utility weights ω_TP, ω_RTT, ω_PFC of
// Equation (1); they must be nonnegative and sum to 1.
type Weights struct {
	TP, RTT, PFC float64
}

// DefaultWeights are the Table III settings (0.2, 0.5, 0.3).
func DefaultWeights() Weights { return Weights{TP: 0.2, RTT: 0.5, PFC: 0.3} }

// ThroughputWeights favor throughput-sensitive workloads such as LLM
// training (§III-C example: 0.5, 0.2, 0.3).
func ThroughputWeights() Weights { return Weights{TP: 0.5, RTT: 0.2, PFC: 0.3} }

// Validate checks the simplex constraint.
func (w Weights) Validate() error {
	if w.TP < 0 || w.RTT < 0 || w.PFC < 0 {
		return fmt.Errorf("tuner: negative utility weight %+v", w)
	}
	if s := w.TP + w.RTT + w.PFC; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("tuner: weights sum to %g, want 1", s)
	}
	return nil
}

// Utility evaluates Equation (1) on one interval's runtime metrics.
func Utility(s monitor.RuntimeSample, w Weights) float64 {
	return w.TP*s.OTP + w.RTT*s.ORTT + w.PFC*s.OPFC
}

// SAConfig parameterizes the annealing search.
type SAConfig struct {
	// TotalIterNum is the number of iterations per temperature level
	// (Table III: 20).
	TotalIterNum int
	// CoolingRate multiplies the temperature per level (0.85).
	CoolingRate float64
	// InitialTemp and FinalTemp bound the schedule (90 → 10). The
	// relaxed setting keeps the session short: ~13 levels.
	InitialTemp float64
	FinalTemp   float64
	// Eta (η) caps the exploitation probability so at least 1−η of the
	// mutations explore the anti-dominant direction (0.8).
	Eta float64
	// Guided enables Optimization 1; when false, mutation directions are
	// uniform random (the naive_SA ablation arm).
	Guided bool
	// Elitist re-centers the chain on the best-known setting at every
	// temperature level, bounding the drift that directional mutation
	// causes under permissive early temperatures. Part of the improved
	// search; the naive arm keeps the original chain behaviour.
	Elitist bool
}

// DefaultSAConfig is Table III with both optimizations on.
func DefaultSAConfig() SAConfig {
	return SAConfig{
		TotalIterNum: 20,
		CoolingRate:  0.85,
		InitialTemp:  90,
		FinalTemp:    10,
		Eta:          0.8,
		Guided:       true,
		Elitist:      true,
	}
}

// ShortSAConfig compresses the schedule to ~20 iterations (4 levels × 5).
// Table III's 270-interval session assumes sustained production traffic;
// reproduction runs of a few hundred milliseconds need the search to
// settle proportionally sooner. Both optimizations stay on.
func ShortSAConfig() SAConfig {
	return SAConfig{
		TotalIterNum: 5,
		CoolingRate:  0.5,
		InitialTemp:  90,
		FinalTemp:    10,
		Eta:          0.8,
		Guided:       true,
		Elitist:      true,
	}
}

// NaiveSAConfig is the §IV-B4 ablation baseline: indiscriminate random
// mutation, a classical (non-relaxed) temperature schedule that cools
// slowly over a wide range, and the original (non-elitist) chain.
func NaiveSAConfig() SAConfig {
	return SAConfig{
		TotalIterNum: 20,
		CoolingRate:  0.95,
		InitialTemp:  500,
		FinalTemp:    5,
		Eta:          0.8,
		Guided:       false,
		Elitist:      false,
	}
}

// Validate checks schedule sanity.
func (c SAConfig) Validate() error {
	switch {
	case c.TotalIterNum <= 0:
		return fmt.Errorf("tuner: total_iter_num = %d", c.TotalIterNum)
	case c.CoolingRate <= 0 || c.CoolingRate >= 1:
		return fmt.Errorf("tuner: cooling rate = %g, need in (0,1)", c.CoolingRate)
	case c.InitialTemp <= c.FinalTemp || c.FinalTemp <= 0:
		return fmt.Errorf("tuner: temperature schedule %g→%g invalid", c.InitialTemp, c.FinalTemp)
	case c.Eta <= 0 || c.Eta > 1:
		return fmt.Errorf("tuner: eta = %g, need in (0,1]", c.Eta)
	}
	return nil
}

// SessionIterations is the number of monitor intervals one full tuning
// session consumes: levels × iterations per level.
func (c SAConfig) SessionIterations() int {
	levels := 0
	for t := c.InitialTemp; t > c.FinalTemp; t *= c.CoolingRate {
		levels++
	}
	return levels * c.TotalIterNum
}

// SA is the simulated-annealing search state machine of Algorithm 1,
// the registry's "sa" strategy and the loop's default.
type SA struct {
	cfg     SAConfig
	weights Weights
	specs   []dcqcn.Spec
	rng     *rand.Rand

	active  bool
	temp    float64
	iter    int
	started bool // pending params have been dispatched at least once
	warmup  bool // discard the first post-trigger sample (ramp bias)

	current     dcqcn.Params
	currentUtil float64
	best        dcqcn.Params
	bestUtil    float64
	pending     dcqcn.Params

	// fsd guides mutation; refreshed every Step.
	dominantElephant bool
	mu               float64

	// vec is mutate's scratch vector: the hot path re-flattens the base
	// vector into it each call instead of allocating one per mutation.
	// mbase and mout hold the base and candidate vectors during a mutate
	// call: Spec.Get/Set take pointers through indirect calls, so local
	// copies would escape and allocate per Step.
	vec   []float64
	mbase dcqcn.Params
	mout  dcqcn.Params

	// Rounds counts completed tuning sessions; Steps counts SA
	// iterations consumed; Aborts counts sessions cancelled by Abort.
	// Accepts and Rejects split the Metropolis decisions over candidate
	// measurements (warmup and seeding intervals count toward neither).
	// Proposals counts vectors handed out for dispatch.
	Rounds    int
	Steps     int
	Aborts    int
	Accepts   int
	Rejects   int
	Proposals int
	// TM, when non-nil, mirrors search activity into the telemetry
	// registry (iterations, accept/reject, session lifecycle, best
	// utility and temperature gauges).
	TM *telemetry.TunerMetrics
	// Trace records best-so-far utility per iteration of the current or
	// last session, on the annealer's 0–100 scale (Fig 12's convergence
	// curves).
	Trace []float64
}

// NewSA builds an annealing tuner that searches from base. seed fixes
// mutation randomness.
func NewSA(cfg SAConfig, weights Weights, base dcqcn.Params, seed int64) (*SA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	specs := dcqcn.Specs()
	return &SA{
		cfg:     cfg,
		weights: weights,
		specs:   specs,
		rng:     rand.New(rand.NewSource(seed)),
		current: base,
		best:    base,
		vec:     make([]float64, len(specs)),
	}, nil
}

// Name is the registry name.
func (t *SA) Name() string { return "sa" }

// Active reports whether a tuning session is in progress.
func (t *SA) Active() bool { return t.active }

// Best returns the best parameter setting found so far.
func (t *SA) Best() dcqcn.Params { return t.best }

// BestUtility returns the utility of Best on the annealer's 0–100 scale.
func (t *SA) BestUtility() float64 { return t.bestUtil }

// BestTrace returns the best-so-far utility per session iteration.
func (t *SA) BestTrace() []float64 { return t.Trace }

// Temperature reports the current annealing temperature (the last
// session's floor when idle).
func (t *SA) Temperature() float64 { return t.temp }

// Stats returns the lifetime counters.
func (t *SA) Stats() Stats {
	return Stats{
		Sessions:  t.Rounds,
		Steps:     t.Steps,
		Aborts:    t.Aborts,
		Accepts:   t.Accepts,
		Rejects:   t.Rejects,
		Proposals: t.Proposals,
	}
}

// SetMetrics attaches a telemetry bundle.
func (t *SA) SetMetrics(tm *telemetry.TunerMetrics) { t.TM = tm }

// / Observe is a no-op: the annealer only learns from Step, so idle and
// frozen intervals leave the chain exactly where it was — this is what
// keeps the pre-refactor behaviour byte-identical.
func (t *SA) Observe(sample monitor.RuntimeSample, fsd monitor.FSD) {}

// / Commit is a no-op: the annealer's chain state already assumes its
// proposals land; the loop's guard/pipeline rejections surface as
// ordinary (bad) measurements instead.
func (t *SA) Commit(p dcqcn.Params) {}

// Trigger starts (or restarts) a tuning session in response to a
// significant traffic-pattern change.
func (t *SA) Trigger(fsd monitor.FSD) {
	t.active = true
	t.started = false
	t.warmup = true
	t.temp = t.cfg.InitialTemp
	t.iter = 0
	t.bestUtil = math.Inf(-1)
	t.currentUtil = math.Inf(-1)
	t.Trace = t.Trace[:0]
	t.observeFSD(fsd)
	if t.TM != nil {
		t.TM.Active.Set(1)
		t.TM.Temperature.Set(t.temp)
	}
}

func (t *SA) observeFSD(fsd monitor.FSD) {
	t.dominantElephant, t.mu = fsd.DominantElephant()
}

// Abort cancels an in-progress tuning session without settling on its
// best setting. The rollback path uses it: a session whose measurements
// straddle a fault was searching on corrupted feedback, so neither its
// chain nor its best are worth keeping. A later KL trigger starts fresh.
func (t *SA) Abort() {
	if !t.active {
		return
	}
	t.active = false
	t.Aborts++
	if t.TM != nil {
		t.TM.Aborts.Inc()
		t.TM.Active.Set(0)
	}
}

// propose counts a vector handed out for dispatch.
func (t *SA) propose() {
	t.Proposals++
	if t.TM != nil {
		t.TM.Proposals.Inc()
	}
}

// Step advances one SA iteration (lines 4–23 of Algorithm 1): the sample
// holds the metrics measured under the previously dispatched parameters.
// It returns the next parameter setting to dispatch and true, or false
// when no session is active (the final Step of a session returns the best
// setting found).
func (t *SA) Step(sample monitor.RuntimeSample, fsd monitor.FSD) (dcqcn.Params, bool) {
	if !t.active {
		return dcqcn.Params{}, false
	}
	t.observeFSD(fsd)
	// The annealer works on a 0–100 utility scale: Table III's
	// temperatures (90 → 10) are calibrated so that early in a session a
	// 20-point regression is accepted with p ≈ 0.8 while late it is
	// nearly always rejected. On a 0–1 scale those temperatures would
	// accept everything and the search would degenerate to a random walk.
	newUtil := 100 * Utility(sample, t.weights)
	t.Steps++
	if t.TM != nil {
		t.TM.Iterations.Inc()
	}

	if t.warmup {
		// The interval in which the trigger fired straddles the traffic
		// change (ramp-up, or the old pattern's tail); its measurement
		// would bias the incumbent's utility. Hold the incumbent for one
		// more interval and seed from the next, clean sample.
		t.warmup = false
		t.propose()
		return t.current, true
	}

	if !t.started {
		// First interval after the trigger measured the incumbent
		// setting; seed the search from it.
		t.started = true
		t.currentUtil = newUtil
		t.best, t.bestUtil = t.current, newUtil
		t.Trace = append(t.Trace, t.bestUtil)
		t.pending = t.mutate(t.current)
		t.propose()
		return t.pending, true
	}

	// Metropolis acceptance of the pending candidate.
	if newUtil > t.currentUtil || math.Exp((newUtil-t.currentUtil)/t.temp) > t.rng.Float64() {
		t.current = t.pending
		t.currentUtil = newUtil
		t.Accepts++
		if t.TM != nil {
			t.TM.Accepts.Inc()
		}
	} else {
		t.Rejects++
		if t.TM != nil {
			t.TM.Rejects.Inc()
		}
	}
	if t.currentUtil > t.bestUtil {
		t.best = t.current
		t.bestUtil = t.currentUtil
	}
	t.Trace = append(t.Trace, t.bestUtil)
	if t.TM != nil {
		t.TM.BestUtility.Set(t.bestUtil)
	}

	t.iter++
	if t.iter >= t.cfg.TotalIterNum {
		t.iter = 0
		t.temp *= t.cfg.CoolingRate
		if t.temp <= t.cfg.FinalTemp {
			// Session over: settle on the best setting found.
			t.active = false
			t.Rounds++
			if t.TM != nil {
				t.TM.Sessions.Inc()
				t.TM.Active.Set(0)
				t.TM.Temperature.Set(t.temp)
			}
			t.propose()
			return t.best, true
		}
		if t.TM != nil {
			t.TM.Temperature.Set(t.temp)
		}
		// Elitist re-centering at each temperature level: guided
		// mutation biases ~min(μ,η) of the parameters in one direction,
		// so a chain started from `current` under a permissive early
		// temperature drifts monotonically toward the bounds. Pulling
		// back to the best-known setting bounds the drift to one level's
		// worth of steps while keeping the paper's level structure.
		if t.cfg.Elitist {
			t.current = t.best
			t.currentUtil = t.bestUtil
		}
	}

	t.pending = t.mutate(t.current)
	t.propose()
	return t.pending, true
}

// mutate derives a new candidate from base per Optimization 1 (or uniform
// random directions when unguided). It works in the tuner's scratch
// vector and re-applies the clamp-and-repair of dcqcn.FromVector inline,
// so the per-interval hot path stays allocation-free while producing the
// same candidates (and consuming the same RNG draws) as the
// Vector/FromVector round trip it replaces.
func (t *SA) mutate(base dcqcn.Params) dcqcn.Params {
	t.mbase = base
	v := t.vec
	for i := range t.specs {
		v[i] = t.specs[i].Get(&t.mbase)
	}
	exploit := math.Min(t.mu, t.cfg.Eta)
	for i := range t.specs {
		spec := &t.specs[i]
		// Friendly direction for the dominant flow type: elephants want
		// throughput, mice want low delay.
		friendly := float64(spec.ThroughputDir)
		if !t.dominantElephant {
			friendly = -friendly
		}
		var dir float64
		if t.cfg.Guided {
			if t.rng.Float64() < exploit {
				dir = friendly
			} else {
				dir = -friendly
			}
		} else {
			// Naive: indiscriminate direction.
			if t.rng.Float64() < 0.5 {
				dir = 1
			} else {
				dir = -1
			}
		}
		r := 0.5 + 0.5*t.rng.Float64() // rand(0.5, 1)
		if spec.Log {
			// Order-of-magnitude parameters move multiplicatively.
			factor := 1 + 0.5*r
			if dir > 0 {
				v[i] *= factor
			} else {
				v[i] /= factor
			}
		} else {
			v[i] += dir * spec.Step * r
		}
		v[i] = spec.Clamp(v[i])
	}
	t.mout = base
	for i := range t.specs {
		t.specs[i].Set(&t.mout, t.specs[i].Clamp(v[i]))
	}
	if t.mout.KmaxBytes <= t.mout.KminBytes {
		t.mout.KmaxBytes = t.mout.KminBytes + (64 << 10)
	}
	return t.mout
}
