package tuner

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

// driveSession runs one full session, feeding a deterministic reward
// schedule, and returns the full proposal stream. Run under -race in CI,
// two identical drives also flush out any hidden shared state between
// instances.
func driveSession(t *testing.T, tu Tuner, seedStep int) []dcqcn.Params {
	t.Helper()
	tu.Trigger(elephantFSD())
	var stream []dcqcn.Params
	i := 0
	for tu.Active() {
		// Utility wobbles deterministically in [0.3, 0.7); FSD alternates
		// dominance so guided strategies exercise both directions.
		otp := 0.3 + 0.4*float64((i*37+seedStep)%100)/100
		fsd := elephantFSD()
		if i%3 == 2 {
			fsd = miceFSD()
		}
		if ps, ok := tu.(PerSwitch); ok {
			var r monitor.Report
			r.Hist[12] = float64(1000 + i)
			r.ElephantBytes, r.MiceBytes = 900, 100
			r.ElephantFlowsW, r.MiceFlowsW = 9, 1
			ps.ObserveLocals([]monitor.Report{r, r, r})
		}
		p, ok := tu.Step(monitor.RuntimeSample{OTP: otp, ORTT: 0.5, OPFC: 1}, fsd)
		if !ok {
			t.Fatal("active tuner refused to step")
		}
		stream = append(stream, p)
		i++
		if i > 5000 {
			t.Fatal("session never terminated")
		}
	}
	return stream
}

// TestAllTunersDeterministicProposalStream: equal (config, seed) must
// yield byte-identical proposal streams — the contract tuner.Factory
// documents, and what makes the shootout harness reproducible.
func TestAllTunersDeterministicProposalStream(t *testing.T) {
	for _, name := range Names() {
		a := driveSession(t, mustNew(t, name, quickConfig(), 42), 0)
		b := driveSession(t, mustNew(t, name, quickConfig(), 42), 0)
		if len(a) != len(b) {
			t.Fatalf("%s: stream lengths differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: proposal %d differs:\n%+v\n%+v", name, i, a[i], b[i])
			}
		}
		// A different seed must actually change the stream somewhere for
		// randomized strategies (guards against a swallowed seed).
		if name == "multiecn" || name == "sa" {
			c := driveSession(t, mustNew(t, name, quickConfig(), 43), 0)
			same := len(a) == len(c)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("%s: seed change did not alter the proposal stream", name)
			}
		}
	}
}

// TestMultiECNAgentStreamStableAcrossAgentCounts pins the DeriveArmSeed
// discipline: agent 0's RNG stream depends only on (seed, 0), so its
// local trajectory is identical whether it shares the fabric with 0 or 7
// other agents (given the same global rewards) — exactly how harness
// arm seeds stay stable across worker counts.
func TestMultiECNAgentStreamStableAcrossAgentCounts(t *testing.T) {
	run := func(agents int) []ECNProposal {
		cfg := quickConfig()
		cfg.MultiECN = MultiECNConfig{Agents: agents, Budget: 20}
		tu := mustNew(t, "multiecn", cfg, 7)
		ps := tu.(PerSwitch)
		tu.Trigger(elephantFSD())
		var got []ECNProposal
		i := 0
		for tu.Active() {
			otp := 0.3 + 0.4*float64((i*37)%100)/100
			tu.Step(monitor.RuntimeSample{OTP: otp, ORTT: 0.5, OPFC: 1}, elephantFSD())
			for _, pr := range ps.LocalProposals() {
				if pr.Agent == 0 {
					got = append(got, pr)
				}
			}
			i++
		}
		return got
	}
	one, eight := run(1), run(8)
	if len(one) != len(eight) {
		t.Fatalf("agent-0 stream lengths differ: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("agent-0 proposal %d differs across agent counts:\n%+v\n%+v", i, one[i], eight[i])
		}
	}
}
