package tuner

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/monitor"
)

// TestAllTunersProposalsGuardAdmissible drives a full session per
// strategy and pushes every proposal through the same dispatch.Guard the
// control loop uses: in-spec bounds and Kmin < Kmax ordering must hold
// for every vector a strategy emits, by construction, so the loop-level
// guard never fires on an in-tree tuner.
func TestAllTunersProposalsGuardAdmissible(t *testing.T) {
	for _, name := range Names() {
		g := dispatch.NewGuard(dispatch.GuardConfig{})
		tu := mustNew(t, name, quickConfig(), 3)
		live := dcqcn.DefaultParams()
		now := eventsim.Time(0)
		tu.Trigger(miceFSD())
		i := 0
		for tu.Active() {
			otp := 0.2 + 0.6*float64((i*53)%100)/100
			p, ok := tu.Step(monitor.RuntimeSample{OTP: otp, ORTT: 0.4, OPFC: 0.97}, miceFSD())
			if !ok {
				t.Fatalf("%s: active tuner refused to step", name)
			}
			if reason, spec := g.Admit(&p, &live, now); reason != dispatch.RejectNone {
				t.Fatalf("%s: proposal %d rejected (%s): %+v", name, i, g.Explain(reason, spec), p)
			}
			live = p
			now += eventsim.Millisecond
			i++
			if i > 5000 {
				t.Fatalf("%s: session never terminated", name)
			}
		}
		if g.Rejects() != 0 {
			t.Errorf("%s: guard rejected %d proposals", name, g.Rejects())
		}
	}
}

// TestPerSwitchProposalsGuardAdmissible does the same for multiecn's
// per-switch output: each agent's (Kmin, Kmax, Pmax) trio, substituted
// into the live vector exactly as the loop does before ApplySwitchECN,
// must pass the guard.
func TestPerSwitchProposalsGuardAdmissible(t *testing.T) {
	g := dispatch.NewGuard(dispatch.GuardConfig{})
	cfg := quickConfig()
	cfg.MultiECN = MultiECNConfig{Agents: 4, Budget: 40}
	tu := mustNew(t, "multiecn", cfg, 9)
	ps := tu.(PerSwitch)
	live := dcqcn.DefaultParams()
	now := eventsim.Time(0)
	tu.Trigger(elephantFSD())
	i := 0
	for tu.Active() {
		otp := 0.2 + 0.6*float64((i*53)%100)/100
		tu.Step(monitor.RuntimeSample{OTP: otp, ORTT: 0.4, OPFC: 0.97}, elephantFSD())
		for _, pr := range ps.LocalProposals() {
			cand := live
			cand.KminBytes, cand.KmaxBytes, cand.PMax = pr.KminBytes, pr.KmaxBytes, pr.PMax
			if reason, spec := g.Admit(&cand, &live, now); reason != dispatch.RejectNone {
				t.Fatalf("agent %d proposal rejected (%s): %+v", pr.Agent, g.Explain(reason, spec), pr)
			}
		}
		now += eventsim.Millisecond
		i++
	}
}

// TestGuardRejectsMalformedVector pins the rejection side: the guard the
// loop wraps around every strategy refuses misordered and out-of-spec
// vectors, whatever emitted them.
func TestGuardRejectsMalformedVector(t *testing.T) {
	g := dispatch.NewGuard(dispatch.GuardConfig{})
	live := dcqcn.DefaultParams()

	swapped := live
	swapped.KminBytes, swapped.KmaxBytes = swapped.KmaxBytes, swapped.KminBytes
	if reason, _ := g.Admit(&swapped, &live, 0); reason == dispatch.RejectNone {
		t.Error("Kmin >= Kmax admitted")
	}
	huge := live
	huge.KmaxBytes = 1 << 40
	if reason, _ := g.Admit(&huge, &live, 0); reason == dispatch.RejectNone {
		t.Error("out-of-spec Kmax admitted")
	}
	negp := live
	negp.PMax = -0.5
	if reason, _ := g.Admit(&negp, &live, 0); reason == dispatch.RejectNone {
		t.Error("negative Pmax admitted")
	}
}
