package tuner

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

// quickConfig compresses every strategy's session to tens of iterations
// so the table-driven contract tests run in milliseconds.
func quickConfig() Config {
	return Config{
		Weights:  DefaultWeights(),
		Base:     dcqcn.DefaultParams(),
		SA:       quickSA(),
		Bandit:   BanditConfig{Budget: 20},
		MultiECN: MultiECNConfig{Agents: 3, Budget: 20},
	}
}

func quickTPConfig() Config {
	c := quickConfig()
	c.Weights = Weights{TP: 1}
	return c
}

func mustNew(t *testing.T, name string, cfg Config, seed int64) Tuner {
	t.Helper()
	tu, err := New(name, cfg, seed)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return tu
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"bandit", "multiecn", "sa"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("strategy %q not registered", w)
		}
	}
	if tu, err := New("", quickConfig(), 1); err != nil || tu.Name() != "sa" {
		t.Errorf(`New("") = (%v, %v), want the "sa" default`, tu, err)
	}
	if _, err := New("nope", quickConfig(), 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// The contract every registered strategy must honor, table-driven over
// the registry.

func TestAllTunersIdleUntilTriggered(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickConfig(), 1)
		if tu.Active() {
			t.Errorf("%s: new tuner active", name)
		}
		if _, ok := tu.Step(monitor.RuntimeSample{}, elephantFSD()); ok {
			t.Errorf("%s: idle tuner produced params", name)
		}
	}
}

// TestAllTunersWarmupDiscardsFirstSample verifies the ramp-bias guard on
// every strategy: the first post-trigger Step must re-dispatch the
// incumbent and ignore its sample, so a lucky idle-ish measurement
// cannot become the unbeatable "best".
func TestAllTunersWarmupDiscardsFirstSample(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickTPConfig(), 5)
		tu.Trigger(elephantFSD())
		// A deceptively perfect first sample (idle network).
		p, ok := tu.Step(monitor.RuntimeSample{OTP: 1}, elephantFSD())
		if !ok {
			t.Fatalf("%s: warmup step refused", name)
		}
		if p != dcqcn.DefaultParams() {
			t.Errorf("%s: warmup step did not re-dispatch the incumbent", name)
		}
		// Seed with a realistic sample; the best must reflect it, not the
		// warmup's perfect reading.
		tu.Step(monitor.RuntimeSample{OTP: 0.4}, elephantFSD())
		if tu.BestUtility() != 40 {
			t.Errorf("%s: seed utility %g, want 40 (warmup sample leaked)", name, tu.BestUtility())
		}
	}
}

// TestAllTunersTriggerResetsSession documents the one-session rule at
// tuner level: Trigger during an active session resets it (which is why
// the System gates triggers on !Active()), without resetting lifetime
// counters.
func TestAllTunersTriggerResetsSession(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickConfig(), 1)
		tu.Trigger(elephantFSD())
		sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
		for i := 0; i < 3; i++ {
			tu.Step(sample, elephantFSD())
		}
		stepsBefore := tu.Stats().Steps
		tu.Trigger(miceFSD())
		if len(tu.BestTrace()) != 0 {
			t.Errorf("%s: re-trigger did not reset the trace", name)
		}
		if !tu.Active() {
			t.Errorf("%s: tuner inactive after re-trigger", name)
		}
		if tu.Stats().Steps != stepsBefore {
			t.Errorf("%s: Steps counter reset unexpectedly", name)
		}
	}
}

// TestAllTunersStepCountAdvancesOnlyOnStep pins the OFF-gap rule's tuner
// half: a Step-less interval leaves the state untouched.
func TestAllTunersStepCountAdvancesOnlyOnStep(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickConfig(), 1)
		tu.Trigger(elephantFSD())
		before := tu.Stats().Steps
		// (No Step call — the System simply does not call Step on idle
		// intervals.)
		if tu.Stats().Steps != before {
			t.Errorf("%s: steps advanced without Step", name)
		}
		tu.Step(monitor.RuntimeSample{}, elephantFSD())
		if tu.Stats().Steps != before+1 {
			t.Errorf("%s: Step did not advance the counter", name)
		}
	}
}

// TestAllTunersSessionTerminates runs each strategy's session to
// completion: it must deactivate within a bounded number of steps, settle
// on a valid vector, return that vector from the final Step, and count
// one session and at least one proposal.
func TestAllTunersSessionTerminates(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickConfig(), 1)
		tu.Trigger(elephantFSD())
		sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
		var last dcqcn.Params
		steps := 0
		for tu.Active() {
			p, ok := tu.Step(sample, elephantFSD())
			if !ok {
				t.Fatalf("%s: active tuner refused to step", name)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: dispatched invalid params at step %d: %v", name, steps, err)
			}
			last = p
			steps++
			if steps > 5000 {
				t.Fatalf("%s: session never terminated", name)
			}
		}
		best := tu.Best()
		if err := best.Validate(); err != nil {
			t.Errorf("%s: settled params invalid: %v", name, err)
		}
		if last != best {
			t.Errorf("%s: final dispatch is not the best setting", name)
		}
		st := tu.Stats()
		if st.Sessions != 1 {
			t.Errorf("%s: Sessions = %d, want 1", name, st.Sessions)
		}
		if st.Proposals == 0 {
			t.Errorf("%s: no proposals counted", name)
		}
		if st.Steps != steps {
			t.Errorf("%s: Steps = %d, drove %d", name, st.Steps, steps)
		}
	}
}

// TestAllTunersAbort cancels mid-session: the tuner must deactivate,
// count the abort, and not count a completed session.
func TestAllTunersAbort(t *testing.T) {
	for _, name := range Names() {
		tu := mustNew(t, name, quickConfig(), 1)
		tu.Trigger(elephantFSD())
		sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
		for i := 0; i < 3; i++ {
			tu.Step(sample, elephantFSD())
		}
		tu.Abort()
		if tu.Active() {
			t.Errorf("%s: active after Abort", name)
		}
		st := tu.Stats()
		if st.Aborts != 1 || st.Sessions != 0 {
			t.Errorf("%s: Aborts=%d Sessions=%d after mid-session abort", name, st.Aborts, st.Sessions)
		}
		// Abort on an idle tuner is a no-op.
		tu.Abort()
		if tu.Stats().Aborts != 1 {
			t.Errorf("%s: idle Abort counted", name)
		}
	}
}

// TestMultiECNPerSwitchCapability exercises the PerSwitch surface: local
// reports steer agents independently, proposals align with agents, and
// commits are tallied per agent.
func TestMultiECNPerSwitchCapability(t *testing.T) {
	tu := mustNew(t, "multiecn", quickConfig(), 1)
	ps, ok := tu.(PerSwitch)
	if !ok {
		t.Fatal("multiecn does not implement PerSwitch")
	}
	m := tu.(*MultiECN)
	tu.Trigger(elephantFSD())
	sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
	var elephant, mice monitor.Report
	elephant.Hist[12] = 1000
	elephant.ElephantBytes, elephant.MiceBytes = 900, 100
	elephant.ElephantFlowsW, elephant.MiceFlowsW = 9, 1
	mice.Hist[0] = 1000
	mice.ElephantBytes, mice.MiceBytes = 100, 900
	mice.ElephantFlowsW, mice.MiceFlowsW = 1, 29
	for tu.Active() {
		ps.ObserveLocals([]monitor.Report{elephant, mice, elephant})
		tu.Step(sample, elephantFSD())
		for _, pr := range ps.LocalProposals() {
			if pr.KminBytes >= pr.KmaxBytes {
				t.Fatalf("agent %d proposed Kmin %d >= Kmax %d", pr.Agent, pr.KminBytes, pr.KmaxBytes)
			}
			ps.AgentCommitted(pr.Agent)
		}
	}
	if got := len(ps.LocalProposals()); got != 3 {
		t.Errorf("LocalProposals has %d entries, want 3 (one per agent)", got)
	}
	counts := m.AgentCommitCounts()
	for i, c := range counts {
		if c == 0 {
			t.Errorf("agent %d never committed", i)
		}
	}
	if tu.Stats().AgentCommits == 0 {
		t.Error("AgentCommits stat not tallied")
	}
	// Out-of-range confirmations are ignored, not panics.
	ps.AgentCommitted(-1)
	ps.AgentCommitted(99)
}

// TestBanditRegretAccounting: regret accumulates only when a measured
// reward falls short of the best seen.
func TestBanditRegretAccounting(t *testing.T) {
	tu := mustNew(t, "bandit", quickTPConfig(), 1)
	b := tu.(*Bandit)
	tu.Trigger(elephantFSD())
	// Warmup + seed at 0.8, then alternate worse rewards.
	tu.Step(monitor.RuntimeSample{OTP: 0.8}, elephantFSD())
	tu.Step(monitor.RuntimeSample{OTP: 0.8}, elephantFSD())
	if b.Regret() != 0 {
		t.Fatalf("regret %g before any shortfall", b.Regret())
	}
	tu.Step(monitor.RuntimeSample{OTP: 0.5}, elephantFSD())
	if b.Regret() <= 0 {
		t.Error("shortfall vs best-seen did not accumulate regret")
	}
}
