package tuner

import (
	"testing"
	"testing/quick"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

// Shared fixtures: an elephant-dominant and a mice-dominant FSD, plus a
// compressed annealing schedule for fast sessions.

func elephantFSD() monitor.FSD {
	var r monitor.Report
	r.Hist[12] = 1000
	r.ElephantBytes = 900
	r.MiceBytes = 100
	r.ElephantFlowsW = 9
	r.MiceFlowsW = 1
	r.Flows = 10
	return monitor.Aggregate(r)
}

func miceFSD() monitor.FSD {
	var r monitor.Report
	r.Hist[0] = 1000
	r.ElephantBytes = 100
	r.MiceBytes = 900
	r.ElephantFlowsW = 1
	r.MiceFlowsW = 29
	r.Flows = 30
	return monitor.Aggregate(r)
}

func quickSA() SAConfig {
	return SAConfig{
		TotalIterNum: 3,
		CoolingRate:  0.5,
		InitialTemp:  30,
		FinalTemp:    10,
		Eta:          0.8,
		Guided:       true,
	}
}

// --- Mutation operator (moved here with the operator from core) ---

func TestGuidedMutationFollowsDominantType(t *testing.T) {
	// With elephant-dominant traffic (μ=0.9 → exploit 0.8), hai_rate
	// (throughput direction: increment) must increase in ~80% of
	// mutations; with mice dominance it must decrease similarly.
	count := func(fsd monitor.FSD) (up, down int) {
		tu, _ := NewSA(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 7)
		tu.Trigger(fsd)
		base := dcqcn.DefaultParams()
		for i := 0; i < 400; i++ {
			m := tu.mutate(base)
			if m.HAIRateBps > base.HAIRateBps {
				up++
			} else if m.HAIRateBps < base.HAIRateBps {
				down++
			}
		}
		return up, down
	}
	up, down := count(elephantFSD())
	if up <= down*2 {
		t.Errorf("elephant-dominant: hai_rate up %d vs down %d, want strong up bias", up, down)
	}
	up, down = count(miceFSD())
	if down <= up*2 {
		t.Errorf("mice-dominant: hai_rate up %d vs down %d, want strong down bias", up, down)
	}
}

func TestNaiveMutationUnbiased(t *testing.T) {
	cfg := quickSA()
	cfg.Guided = false
	tu, _ := NewSA(cfg, DefaultWeights(), dcqcn.DefaultParams(), 7)
	tu.Trigger(elephantFSD())
	base := dcqcn.DefaultParams()
	up, down := 0, 0
	for i := 0; i < 600; i++ {
		m := tu.mutate(base)
		if m.HAIRateBps > base.HAIRateBps {
			up++
		} else if m.HAIRateBps < base.HAIRateBps {
			down++
		}
	}
	ratio := float64(up) / float64(up+down)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("naive mutation bias %g, want ≈0.5", ratio)
	}
}

func TestMutationRespectsEta(t *testing.T) {
	// Even with μ=1.0 (pure elephants), η=0.8 forces ≥20% anti-dominant
	// exploration.
	var r monitor.Report
	r.Hist[12] = 1000
	r.ElephantBytes = 1000
	r.ElephantFlowsW = 5
	fsd := monitor.Aggregate(r)
	tu, _ := NewSA(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 9)
	tu.Trigger(fsd)
	base := dcqcn.DefaultParams()
	down := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if m := tu.mutate(base); m.HAIRateBps < base.HAIRateBps {
			down++
		}
	}
	frac := float64(down) / n
	if frac < 0.12 || frac > 0.30 {
		t.Errorf("anti-dominant fraction %g, want ≈0.2 (1−η)", frac)
	}
}

func TestQuickMutationAlwaysValid(t *testing.T) {
	tu, _ := NewSA(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 11)
	f := func(elephant bool, seed int64) bool {
		if elephant {
			tu.Trigger(elephantFSD())
		} else {
			tu.Trigger(miceFSD())
		}
		p := dcqcn.DefaultParams()
		for i := 0; i < 50; i++ {
			p = tu.mutate(p)
			if p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// --- Annealer-specific session behaviour ---

// TestElitistRecentering verifies the drift guard: with Elitist on, the
// chain returns to the best-known setting at each temperature level.
func TestElitistRecentering(t *testing.T) {
	run := func(elitist bool) float64 {
		cfg := SAConfig{
			TotalIterNum: 4, CoolingRate: 0.5,
			InitialTemp: 80, FinalTemp: 10,
			Eta: 0.8, Guided: true, Elitist: elitist,
		}
		tu, err := NewSA(cfg, Weights{TP: 1}, dcqcn.DefaultParams(), 3)
		if err != nil {
			t.Fatal(err)
		}
		tu.Trigger(elephantFSD())
		// Utility that punishes drift: best at the incumbent's hai_rate,
		// decaying as the setting moves away.
		base := dcqcn.DefaultParams()
		score := func(p dcqcn.Params) float64 {
			d := p.HAIRateBps / base.HAIRateBps
			if d < 1 {
				d = 1 / d
			}
			return 1.0 / d
		}
		lastDispatched := base
		for tu.Active() {
			p, ok := tu.Step(monitor.RuntimeSample{OTP: score(lastDispatched)}, elephantFSD())
			if !ok {
				break
			}
			lastDispatched = p
		}
		return score(tu.Best())
	}
	withElitist := run(true)
	withoutElitist := run(false)
	// Elitist must settle at least as close to the optimum; typically
	// much closer because guided mutation drifts hai_rate upward.
	if withElitist < withoutElitist-1e-9 {
		t.Errorf("elitist settled worse: %g vs %g", withElitist, withoutElitist)
	}
	if withElitist < 0.5 {
		t.Errorf("elitist final score %g, want near the incumbent's 1.0", withElitist)
	}
}

// TestSALegacySurface pins the exported concrete fields core's callers
// historically read (Rounds, Steps, Trace) to the interface counterparts.
func TestSALegacySurface(t *testing.T) {
	tu, _ := NewSA(quickSA(), DefaultWeights(), dcqcn.DefaultParams(), 1)
	tu.Trigger(elephantFSD())
	sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.5, OPFC: 1}
	for tu.Active() {
		tu.Step(sample, elephantFSD())
	}
	st := tu.Stats()
	if tu.Rounds != st.Sessions || tu.Steps != st.Steps || tu.Aborts != st.Aborts {
		t.Errorf("legacy counters (%d,%d,%d) diverge from Stats %+v",
			tu.Rounds, tu.Steps, tu.Aborts, st)
	}
	if len(tu.Trace) == 0 || &tu.Trace[0] != &tu.BestTrace()[0] {
		t.Error("BestTrace is not the legacy Trace slice")
	}
}
