package tuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
	"repro/internal/splitmix"
	"repro/internal/telemetry"
)

// MultiECNConfig parameterizes the "multiecn" strategy, a PET-style
// multi-agent ECN tuner: one agent per ToR independently walks its
// local switch's marking ramp (Kmin, Kmax, Pmax) from its own flow size
// distribution slice, instead of one global search over the full
// 15-parameter vector. Per-switch heterogeneity is the point — a rack
// full of mice wants early aggressive marking while an elephant rack
// wants deep thresholds, and no single fabric-wide vector serves both.
type MultiECNConfig struct {
	// Agents is the number of per-ToR agents (the deployment sets this
	// to its scope size; default 1).
	Agents int
	// StepFrac bounds one adjustment's relative move (default 0.15);
	// the realized step is scaled by rand(0.5,1) from the agent's own
	// stream and by the dominance µ of its local traffic.
	StepFrac float64
	// Budget is the number of search iterations per session (default 60).
	Budget int
	// PFCFloor and RTTFloor classify an interval as congested when the
	// corresponding objective falls below them (defaults 0.995, 0.6):
	// congestion flips every agent toward earlier, harder marking
	// regardless of local dominance.
	PFCFloor float64
	RTTFloor float64
}

// DefaultMultiECNConfig returns the defaults above.
func DefaultMultiECNConfig() MultiECNConfig {
	return MultiECNConfig{Agents: 1, StepFrac: 0.15, Budget: 60, PFCFloor: 0.995, RTTFloor: 0.6}
}

func (c MultiECNConfig) withDefaults() MultiECNConfig {
	d := DefaultMultiECNConfig()
	if c.Agents == 0 {
		c.Agents = d.Agents
	}
	if c.StepFrac == 0 {
		c.StepFrac = d.StepFrac
	}
	if c.Budget == 0 {
		c.Budget = d.Budget
	}
	if c.PFCFloor == 0 {
		c.PFCFloor = d.PFCFloor
	}
	if c.RTTFloor == 0 {
		c.RTTFloor = d.RTTFloor
	}
	return c
}

// Validate checks the (defaulted) configuration.
func (c MultiECNConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Agents < 1:
		return fmt.Errorf("tuner: multiecn agents = %d", c.Agents)
	case c.StepFrac <= 0 || c.StepFrac >= 1:
		return fmt.Errorf("tuner: multiecn step fraction = %g, need in (0,1)", c.StepFrac)
	case c.Budget < 1:
		return fmt.Errorf("tuner: multiecn budget = %d", c.Budget)
	case c.PFCFloor <= 0 || c.PFCFloor > 1 || c.RTTFloor <= 0 || c.RTTFloor > 1:
		return fmt.Errorf("tuner: multiecn floors (%g, %g), need in (0,1]", c.PFCFloor, c.RTTFloor)
	}
	return nil
}

// ecnAgent is one ToR's local search state: a continuous (kmin, kmax,
// pmax) point plus the previous point for hill-climb reverts, walked by
// the agent's own deterministic RNG stream.
type ecnAgent struct {
	kmin, kmax, pmax             float64
	prevKmin, prevKmax, prevPmax float64
	rng                          *rand.Rand
	commits                      int
	// haveLocal marks that ObserveLocals delivered a report this
	// interval; without one the agent falls back to the global FSD.
	local     monitor.Report
	haveLocal bool
}

// MultiECN is the registry's "multiecn" strategy. Each Step every agent
// takes one bounded move guided by its local traffic mix and the global
// congestion signals; the moves are kept when the fabric-wide utility
// improved and reverted otherwise (a coordinated multi-agent
// hill-climb). Step's returned vector carries the mean marking ramp for
// the plumbing that wants one fabric setting; the true per-switch
// output is LocalProposals, applied switch-by-switch by the loop.
type MultiECN struct {
	cfg     MultiECNConfig
	weights Weights

	kminSpec, kmaxSpec, pmaxSpec *dcqcn.Spec
	specs                        []dcqcn.Spec

	active  bool
	warmup  bool
	started bool
	iter    int

	agents    []ecnAgent
	proposals []ECNProposal

	current     dcqcn.Params // composite (mean-ramp) vector
	currentUtil float64
	best        dcqcn.Params
	bestUtil    float64
	globalFSD   monitor.FSD

	trace []float64

	sessions, steps, aborts, accepts, rejects, nproposals, agentCommits int

	tm *telemetry.TunerMetrics
}

// NewMultiECN builds a multi-agent ECN tuner with cfg.Agents agents,
// every agent starting from base's marking ramp on an RNG stream
// derived from seed via splitmix.Derive — the same discipline harness
// arms use, so agent i's stream is stable across runs and agent counts.
func NewMultiECN(cfg MultiECNConfig, weights Weights, base dcqcn.Params, seed int64) (*MultiECN, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	specs := dcqcn.Specs()
	m := &MultiECN{
		cfg:       cfg,
		weights:   weights,
		specs:     specs,
		agents:    make([]ecnAgent, cfg.Agents),
		proposals: make([]ECNProposal, 0, cfg.Agents),
		current:   base,
		best:      base,
	}
	for i := range specs {
		switch specs[i].Name {
		case "kmin":
			m.kminSpec = &specs[i]
		case "kmax":
			m.kmaxSpec = &specs[i]
		case "pmax":
			m.pmaxSpec = &specs[i]
		}
	}
	if m.kminSpec == nil || m.kmaxSpec == nil || m.pmaxSpec == nil {
		return nil, fmt.Errorf("tuner: dcqcn specs missing ECN entries")
	}
	for i := range m.agents {
		a := &m.agents[i]
		a.kmin, a.kmax, a.pmax = float64(base.KminBytes), float64(base.KmaxBytes), base.PMax
		a.rng = rand.New(rand.NewSource(splitmix.Derive(seed, i)))
	}
	return m, nil
}

// Name is the registry name.
func (m *MultiECN) Name() string { return "multiecn" }

// Active reports whether a session is in progress.
func (m *MultiECN) Active() bool { return m.active }

// Best returns the best composite vector found so far.
func (m *MultiECN) Best() dcqcn.Params { return m.best }

// BestUtility returns Best's utility on the 0–100 scale.
func (m *MultiECN) BestUtility() float64 { return m.bestUtil }

// BestTrace returns the best-so-far utility per session iteration.
func (m *MultiECN) BestTrace() []float64 { return m.trace }

// Stats returns the lifetime counters.
func (m *MultiECN) Stats() Stats {
	return Stats{
		Sessions:     m.sessions,
		Steps:        m.steps,
		Aborts:       m.aborts,
		Accepts:      m.accepts,
		Rejects:      m.rejects,
		Proposals:    m.nproposals,
		AgentCommits: m.agentCommits,
	}
}

// SetMetrics attaches a telemetry bundle.
func (m *MultiECN) SetMetrics(tm *telemetry.TunerMetrics) { m.tm = tm }

// Observe is a no-op beyond what Step already consumes.
func (m *MultiECN) Observe(sample monitor.RuntimeSample, fsd monitor.FSD) {}

// Commit is a no-op; per-agent confirmations arrive via AgentCommitted.
func (m *MultiECN) Commit(p dcqcn.Params) {}

// ObserveLocals hands the tuner this interval's per-agent reports,
// aligned with the deployment's agent order. Extra reports are ignored;
// agents beyond the slice fall back to the global FSD.
func (m *MultiECN) ObserveLocals(locals []monitor.Report) {
	for i := range m.agents {
		if i < len(locals) {
			m.agents[i].local = locals[i]
			m.agents[i].haveLocal = true
		} else {
			m.agents[i].haveLocal = false
		}
	}
}

// LocalProposals returns the per-switch proposals from the last Step.
func (m *MultiECN) LocalProposals() []ECNProposal { return m.proposals }

// AgentCommitted confirms agent's proposal was applied to its switch.
func (m *MultiECN) AgentCommitted(agent int) {
	if agent < 0 || agent >= len(m.agents) {
		return
	}
	m.agents[agent].commits++
	m.agentCommits++
	if m.tm != nil {
		m.tm.AgentCommits.Inc()
	}
}

// AgentCommitCounts returns per-agent applied-proposal counts.
func (m *MultiECN) AgentCommitCounts() []int {
	counts := make([]int, len(m.agents))
	for i := range m.agents {
		counts[i] = m.agents[i].commits
	}
	return counts
}

// Trigger opens a session.
func (m *MultiECN) Trigger(fsd monitor.FSD) {
	m.active = true
	m.warmup = true
	m.started = false
	m.iter = 0
	m.bestUtil = math.Inf(-1)
	m.currentUtil = math.Inf(-1)
	m.trace = m.trace[:0]
	m.globalFSD = fsd
	if m.tm != nil {
		m.tm.Active.Set(1)
	}
}

// Abort cancels the session without settling.
func (m *MultiECN) Abort() {
	if !m.active {
		return
	}
	m.active = false
	m.aborts++
	if m.tm != nil {
		m.tm.Aborts.Inc()
		m.tm.Active.Set(0)
	}
}

func (m *MultiECN) propose() {
	m.nproposals++
	if m.tm != nil {
		m.tm.Proposals.Inc()
	}
}

// Step advances every agent one bounded move and composes the next
// fabric vector.
func (m *MultiECN) Step(sample monitor.RuntimeSample, fsd monitor.FSD) (dcqcn.Params, bool) {
	if !m.active {
		return dcqcn.Params{}, false
	}
	m.globalFSD = fsd
	reward := 100 * Utility(sample, m.weights)
	m.steps++
	if m.tm != nil {
		m.tm.Iterations.Inc()
	}

	if m.warmup {
		// Same ramp-bias guard as the annealer.
		m.warmup = false
		m.rebuildProposals()
		m.propose()
		return m.current, true
	}

	if !m.started {
		m.started = true
		m.currentUtil = reward
		m.best, m.bestUtil = m.current, reward
		m.trace = append(m.trace, m.bestUtil)
	} else {
		// Judge the agents' previous coordinated move.
		if reward > m.currentUtil {
			m.currentUtil = reward
			m.accepts++
			if m.tm != nil {
				m.tm.Accepts.Inc()
			}
		} else {
			// Fabric-wide utility regressed: revert every agent to its
			// pre-move point. Agents whose local signal was right will
			// re-derive the same direction next interval with a fresh
			// step draw, so a majority-good move is retried rather than
			// abandoned.
			for i := range m.agents {
				a := &m.agents[i]
				a.kmin, a.kmax, a.pmax = a.prevKmin, a.prevKmax, a.prevPmax
			}
			m.rejects++
			if m.tm != nil {
				m.tm.Rejects.Inc()
			}
		}
		if m.currentUtil > m.bestUtil {
			m.best = m.composite()
			m.bestUtil = m.currentUtil
		}
		m.trace = append(m.trace, m.bestUtil)
		if m.tm != nil {
			m.tm.BestUtility.Set(m.bestUtil)
		}
	}

	m.iter++
	if m.iter >= m.cfg.Budget {
		m.active = false
		m.sessions++
		if m.tm != nil {
			m.tm.Sessions.Inc()
			m.tm.Active.Set(0)
		}
		m.rebuildProposals()
		m.propose()
		return m.best, true
	}

	congested := sample.OPFC < m.cfg.PFCFloor || sample.ORTT < m.cfg.RTTFloor
	for i := range m.agents {
		m.adjustAgent(&m.agents[i], congested)
	}
	m.current = m.composite()
	m.rebuildProposals()
	m.propose()
	return m.current, true
}

// adjustAgent takes one bounded move on an agent's local marking ramp.
// Direction comes from the agent's own traffic mix: an uncongested
// elephant-dominant rack raises its thresholds (mark later, favor
// throughput); congestion or mice dominance lowers them and raises Pmax
// (mark earlier and harder, favor latency and PFC headroom). The move
// size is StepFrac · rand(0.5,1) · µ — scaled by how decisively the
// local mix leans.
func (m *MultiECN) adjustAgent(a *ecnAgent, congested bool) {
	a.prevKmin, a.prevKmax, a.prevPmax = a.kmin, a.kmax, a.pmax
	fsd := m.globalFSD
	if a.haveLocal {
		fsd = aggregateOne(&a.local)
	}
	elephant, mu := fsd.DominantElephant()
	r := 0.5 + 0.5*a.rng.Float64()
	step := 1 + m.cfg.StepFrac*r*mu
	if elephant && !congested {
		a.kmin *= step
		a.kmax *= step
		a.pmax /= step
	} else {
		a.kmin /= step
		a.kmax /= step
		a.pmax *= step
	}
	a.kmin = m.kminSpec.Clamp(a.kmin)
	a.kmax = m.kmaxSpec.Clamp(a.kmax)
	a.pmax = m.pmaxSpec.Clamp(a.pmax)
	if a.kmax <= a.kmin {
		a.kmax = a.kmin + float64(64<<10)
	}
}

// composite is the fabric-wide view of the agents' state: the current
// vector with the mean marking ramp, clamped and order-repaired so it
// is always guard-admissible.
func (m *MultiECN) composite() dcqcn.Params {
	var kmin, kmax, pmax float64
	for i := range m.agents {
		a := &m.agents[i]
		kmin += a.kmin
		kmax += a.kmax
		pmax += a.pmax
	}
	n := float64(len(m.agents))
	p := m.current
	p.KminBytes = int64(m.kminSpec.Clamp(kmin / n))
	p.KmaxBytes = int64(m.kmaxSpec.Clamp(kmax / n))
	p.PMax = m.pmaxSpec.Clamp(pmax / n)
	if p.KmaxBytes <= p.KminBytes {
		p.KmaxBytes = p.KminBytes + (64 << 10)
	}
	return p
}

// rebuildProposals refreshes the per-switch proposal view of the
// agents' state, reusing the backing array.
func (m *MultiECN) rebuildProposals() {
	m.proposals = m.proposals[:0]
	for i := range m.agents {
		a := &m.agents[i]
		m.proposals = append(m.proposals, ECNProposal{
			Agent:     i,
			KminBytes: int64(a.kmin),
			KmaxBytes: int64(a.kmax),
			PMax:      a.pmax,
		})
	}
}

// aggregateOne is monitor.Aggregate for a single report without the
// variadic slice allocation (the per-interval hot path calls it once
// per agent).
func aggregateOne(r *monitor.Report) monitor.FSD {
	var f monitor.FSD
	f.Flows = r.Flows
	var total float64
	for _, v := range r.Hist {
		total += v
	}
	f.TotalBytes = total
	if total > 0 {
		for i, v := range r.Hist {
			f.Hist[i] = v / total
		}
	}
	if eb, mb := r.ElephantBytes, r.MiceBytes; eb+mb > 0 {
		f.ElephantShare = eb / (eb + mb)
	}
	if ef, mf := r.ElephantFlowsW, r.MiceFlowsW; ef+mf > 0 {
		f.ElephantFlowShare = ef / (ef + mf)
	}
	return f
}
