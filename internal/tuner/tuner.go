// Package tuner is the pluggable parameter-search subsystem: every
// strategy that proposes DCQCN vectors to the control loop lives behind
// one Tuner interface, created through a registry keyed by name.
//
// Three strategies ship in-tree:
//
//   - "sa" — the paper's improved simulated annealing (Algorithm 1 with
//     guided randomness and the relaxed temperature schedule), moved
//     here verbatim from the former core.Tuner. It is the default and
//     its behaviour is byte-identical to the pre-refactor code.
//   - "multiecn" — a PET-style multi-agent ECN tuner: each ToR agent
//     independently adjusts its local Kmin/Kmax/Pmax from its own flow
//     size distribution slice, on a deterministic per-agent RNG stream
//     (splitmix.Derive, the harness arm-seed discipline).
//   - "bandit" — an ε-greedy / UCB hill-climber over the discretized
//     one-step neighborhood of the current vector, using the utility
//     function as the arm reward.
//
// The control loop (core.System, ctrlrpc.Server) drives whichever
// strategy is selected through the same Trigger/Step cycle, and every
// proposal — regardless of strategy — passes a dispatch.Guard bounds
// check before it touches the fabric.
package tuner

import (
	"fmt"
	"sort"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// Tuner is one parameter-search strategy driven by the monitor loop.
// The cycle mirrors the paper's event-driven design: a KL trigger opens
// a session, then each monitor interval calls Step with the metrics
// measured under the previously proposed vector, and receives the next
// vector to dispatch. The final Step of a session returns the best
// setting found and deactivates the tuner.
type Tuner interface {
	// Name is the registry name the tuner was created under.
	Name() string
	// Trigger starts (or restarts) a tuning session in response to a
	// significant traffic-pattern change.
	Trigger(fsd monitor.FSD)
	// Step advances one search iteration: sample holds the metrics
	// measured under the previously proposed parameters. It returns the
	// next vector to propose and true, or false when no session is
	// active. The final Step of a session returns the session's best.
	Step(sample monitor.RuntimeSample, fsd monitor.FSD) (dcqcn.Params, bool)
	// Observe feeds an interval's metrics without advancing the search
	// (idle and frozen intervals). Strategies that keep running
	// statistics may use it; "sa" ignores it.
	Observe(sample monitor.RuntimeSample, fsd monitor.FSD)
	// Commit tells the tuner a proposed vector was actually applied to
	// the fabric (the dispatch pipeline may reject or abort proposals).
	Commit(p dcqcn.Params)
	// Abort cancels an in-progress session without settling on its best
	// (rollback path: the session's feedback straddled a fault).
	Abort()
	// Active reports whether a session is in progress.
	Active() bool
	// Best returns the best parameter setting found so far.
	Best() dcqcn.Params
	// BestUtility returns Best's utility on the 0–100 scale.
	BestUtility() float64
	// BestTrace returns the best-so-far utility per iteration of the
	// current or last session (Fig 12-style convergence curves).
	BestTrace() []float64
	// Stats returns the strategy's lifetime counters.
	Stats() Stats
	// SetMetrics mirrors search activity into a telemetry bundle
	// (nil detaches).
	SetMetrics(tm *telemetry.TunerMetrics)
}

// Stats are the lifetime counters every strategy maintains.
type Stats struct {
	// Sessions counts completed tuning sessions; Steps counts search
	// iterations consumed; Aborts counts sessions cancelled by Abort.
	Sessions int
	Steps    int
	Aborts   int
	// Accepts and Rejects split the strategy's own accept decisions over
	// candidate measurements (Metropolis for "sa", hill-climb for
	// "bandit" and "multiecn"); warmup and seeding intervals count
	// toward neither.
	Accepts int
	Rejects int
	// Proposals counts vectors handed to the loop for dispatch.
	Proposals int
	// AgentCommits counts per-switch local commits ("multiecn" only).
	AgentCommits int
}

// Temperatured is the optional capability of schedule-driven strategies
// (simulated annealing) to expose their current temperature.
type Temperatured interface {
	Temperature() float64
}

// ECNProposal is one per-switch ECN adjustment from a multi-agent
// strategy: agent Agent wants its local switch marking ramp moved to
// (KminBytes, KmaxBytes, PMax).
type ECNProposal struct {
	Agent     int
	KminBytes int64
	KmaxBytes int64
	PMax      float64
}

// PerSwitch is the optional capability of multi-agent strategies that
// tune each switch independently. The loop feeds per-agent reports
// before Step and collects per-switch proposals after it; each proposal
// it admits and applies is confirmed via AgentCommitted.
type PerSwitch interface {
	// ObserveLocals hands the tuner this interval's per-agent reports,
	// aligned with the deployment's agent order. The slice is only
	// valid during the call.
	ObserveLocals(locals []monitor.Report)
	// LocalProposals returns the per-switch proposals produced by the
	// last Step (valid until the next Step; may be empty).
	LocalProposals() []ECNProposal
	// AgentCommitted confirms agent's proposal was applied.
	AgentCommitted(agent int)
}

// Config carries everything a factory might need; each strategy reads
// its own section and ignores the rest. Zero-valued strategy sections
// fall back to that strategy's defaults.
type Config struct {
	// Weights parameterize the utility function (all strategies).
	Weights Weights
	// Base is the vector the search starts from (all strategies).
	Base dcqcn.Params
	// SA parameterizes the annealing schedule ("sa").
	SA SAConfig
	// Bandit parameterizes the hill-climber ("bandit").
	Bandit BanditConfig
	// MultiECN parameterizes the multi-agent ECN tuner ("multiecn").
	MultiECN MultiECNConfig
}

// Factory builds a strategy instance. seed fixes all of the strategy's
// randomness; equal (cfg, seed) must yield identical proposal streams.
type Factory func(cfg Config, seed int64) (Tuner, error)

var registry = map[string]Factory{}

// Register adds a strategy under name. It panics on empty or duplicate
// names — registration is an init-time programming act, not a runtime
// condition.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("tuner: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("tuner: duplicate Register of " + name)
	}
	registry[name] = f
}

// New builds the named strategy. An empty name selects "sa", the
// default.
func New(name string, cfg Config, seed int64) (Tuner, error) {
	if name == "" {
		name = "sa"
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tuner: unknown strategy %q (have %v)", name, Names())
	}
	return f(cfg, seed)
}

// Names lists the registered strategies, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("sa", func(cfg Config, seed int64) (Tuner, error) {
		return NewSA(cfg.SA, cfg.Weights, cfg.Base, seed)
	})
	Register("bandit", func(cfg Config, seed int64) (Tuner, error) {
		return NewBandit(cfg.Bandit, cfg.Weights, cfg.Base, seed)
	})
	Register("multiecn", func(cfg Config, seed int64) (Tuner, error) {
		return NewMultiECN(cfg.MultiECN, cfg.Weights, cfg.Base, seed)
	})
}
