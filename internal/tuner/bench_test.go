package tuner

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
)

// BenchmarkTunerStep measures one search iteration per strategy. The CI
// perf gate (scripts/benchjson.py) requires 0 allocs/op: Step sits on
// the per-interval control path, and the strategies keep scratch
// buffers (SA/Bandit mutation vectors, MultiECN's proposal slice) so the
// steady state allocates nothing.
func BenchmarkTunerStep(b *testing.B) {
	for _, name := range []string{"sa", "bandit", "multiecn"} {
		b.Run(name, func(b *testing.B) {
			cfg := Config{
				Weights:  DefaultWeights(),
				Base:     dcqcn.DefaultParams(),
				SA:       ShortSAConfig(),
				Bandit:   BanditConfig{Budget: 60},
				MultiECN: MultiECNConfig{Agents: 8, Budget: 60},
			}
			tu, err := New(name, cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			fsd := elephantFSD()
			sample := monitor.RuntimeSample{OTP: 0.5, ORTT: 0.6, OPFC: 0.99}
			// One full warmup session lets trace/proposal slices reach
			// their steady-state capacity.
			tu.Trigger(fsd)
			for tu.Active() {
				tu.Step(sample, fsd)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !tu.Active() {
					tu.Trigger(fsd)
				}
				tu.Step(sample, fsd)
			}
		})
	}
}
