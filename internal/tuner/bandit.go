package tuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dcqcn"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// BanditConfig parameterizes the "bandit" strategy: an ε-greedy or UCB1
// hill-climber over the discretized one-step neighborhood of the current
// vector, in the spirit of the lightweight learning baselines the
// DRL-for-congestion-control literature measures against. Each arm is
// "move one parameter one spec step up/down" (plus a hold arm); the
// reward is the measured utility, and an arm whose measurement beats the
// incumbent commits the move.
type BanditConfig struct {
	// Epsilon is the exploration probability of ε-greedy selection
	// (default 0.1). Ignored when UCB is set.
	Epsilon float64
	// UCB switches arm selection to UCB1 with exploration constant UCBC
	// (default 2.0).
	UCB  bool
	UCBC float64
	// Budget is the number of search iterations per session
	// (default 120 — comparable to ShortSAConfig sessions, far under
	// Table III's 270).
	Budget int
	// StepScale scales each arm's move as a fraction of the parameter's
	// spec step (default 1.0).
	StepScale float64
}

// DefaultBanditConfig returns the defaults above.
func DefaultBanditConfig() BanditConfig {
	return BanditConfig{Epsilon: 0.1, UCBC: 2.0, Budget: 120, StepScale: 1.0}
}

func (c BanditConfig) withDefaults() BanditConfig {
	d := DefaultBanditConfig()
	if c.Epsilon == 0 {
		c.Epsilon = d.Epsilon
	}
	if c.UCBC == 0 {
		c.UCBC = d.UCBC
	}
	if c.Budget == 0 {
		c.Budget = d.Budget
	}
	if c.StepScale == 0 {
		c.StepScale = d.StepScale
	}
	return c
}

// Validate checks the (defaulted) configuration.
func (c BanditConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Epsilon < 0 || c.Epsilon > 1:
		return fmt.Errorf("tuner: bandit epsilon = %g, need in [0,1]", c.Epsilon)
	case c.UCBC < 0:
		return fmt.Errorf("tuner: bandit UCB constant = %g", c.UCBC)
	case c.Budget < 1:
		return fmt.Errorf("tuner: bandit budget = %d", c.Budget)
	case c.StepScale <= 0:
		return fmt.Errorf("tuner: bandit step scale = %g", c.StepScale)
	}
	return nil
}

// Bandit is the ε-greedy/UCB hill-climber. Arm 0 holds the vector; arm
// 2i+1 moves spec i one step up, arm 2i+2 one step down. Per-arm means
// are reset at each Trigger — a session answers "which local move helps
// *this* workload".
type Bandit struct {
	cfg     BanditConfig
	weights Weights
	specs   []dcqcn.Spec
	rng     *rand.Rand

	active  bool
	warmup  bool
	started bool
	iter    int // iterations consumed this session

	current     dcqcn.Params
	currentUtil float64
	best        dcqcn.Params
	bestUtil    float64
	pending     dcqcn.Params
	lastArm     int

	counts []int
	means  []float64
	vec    []float64 // scratch for applyArm
	trace  []float64
	// mbase and mout hold the base and candidate vectors during an
	// applyArm call: Spec.Get/Set take pointers through indirect calls,
	// so local copies would escape and allocate per Step.
	mbase  dcqcn.Params
	mout   dcqcn.Params
	regret float64 // cumulative shortfall vs best-seen reward

	sessions, steps, aborts, accepts, rejects, proposals int

	tm *telemetry.TunerMetrics
}

// NewBandit builds a bandit hill-climber searching from base.
func NewBandit(cfg BanditConfig, weights Weights, base dcqcn.Params, seed int64) (*Bandit, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	specs := dcqcn.Specs()
	arms := 1 + 2*len(specs)
	return &Bandit{
		cfg:     cfg,
		weights: weights,
		specs:   specs,
		rng:     rand.New(rand.NewSource(seed)),
		current: base,
		best:    base,
		counts:  make([]int, arms),
		means:   make([]float64, arms),
		vec:     make([]float64, len(specs)),
	}, nil
}

// Name is the registry name.
func (b *Bandit) Name() string { return "bandit" }

// Active reports whether a session is in progress.
func (b *Bandit) Active() bool { return b.active }

// Best returns the best vector found so far.
func (b *Bandit) Best() dcqcn.Params { return b.best }

// BestUtility returns Best's utility on the 0–100 scale.
func (b *Bandit) BestUtility() float64 { return b.bestUtil }

// BestTrace returns the best-so-far utility per session iteration.
func (b *Bandit) BestTrace() []float64 { return b.trace }

// Regret returns the cumulative shortfall of measured rewards against
// the best reward seen so far, summed over all sessions.
func (b *Bandit) Regret() float64 { return b.regret }

// Stats returns the lifetime counters.
func (b *Bandit) Stats() Stats {
	return Stats{
		Sessions:  b.sessions,
		Steps:     b.steps,
		Aborts:    b.aborts,
		Accepts:   b.accepts,
		Rejects:   b.rejects,
		Proposals: b.proposals,
	}
}

// SetMetrics attaches a telemetry bundle.
func (b *Bandit) SetMetrics(tm *telemetry.TunerMetrics) { b.tm = tm }

// Observe is a no-op; the bandit learns only from rewards on its own
// proposals.
func (b *Bandit) Observe(sample monitor.RuntimeSample, fsd monitor.FSD) {}

// Commit is a no-op; an admitted proposal needs no extra bookkeeping.
func (b *Bandit) Commit(p dcqcn.Params) {}

// Trigger opens a session: arm statistics reset (the workload changed,
// so stale per-arm rewards would mislead selection) and the first
// sample is discarded exactly as the annealer's warmup does.
func (b *Bandit) Trigger(fsd monitor.FSD) {
	b.active = true
	b.warmup = true
	b.started = false
	b.iter = 0
	b.bestUtil = math.Inf(-1)
	b.currentUtil = math.Inf(-1)
	b.trace = b.trace[:0]
	for i := range b.counts {
		b.counts[i] = 0
		b.means[i] = 0
	}
	if b.tm != nil {
		b.tm.Active.Set(1)
	}
}

// Abort cancels the session without settling.
func (b *Bandit) Abort() {
	if !b.active {
		return
	}
	b.active = false
	b.aborts++
	if b.tm != nil {
		b.tm.Aborts.Inc()
		b.tm.Active.Set(0)
	}
}

func (b *Bandit) propose() {
	b.proposals++
	if b.tm != nil {
		b.tm.Proposals.Inc()
	}
}

// Step consumes the reward measured under the previously proposed
// vector, credits the arm that produced it, hill-climbs, and proposes
// the next arm's vector.
func (b *Bandit) Step(sample monitor.RuntimeSample, fsd monitor.FSD) (dcqcn.Params, bool) {
	if !b.active {
		return dcqcn.Params{}, false
	}
	reward := 100 * Utility(sample, b.weights)
	b.steps++
	if b.tm != nil {
		b.tm.Iterations.Inc()
	}

	if b.warmup {
		// Same ramp-bias guard as the annealer: the trigger interval's
		// measurement straddles the traffic change.
		b.warmup = false
		b.propose()
		return b.current, true
	}

	if !b.started {
		// Clean measurement of the incumbent: baseline for hill-climbing.
		b.started = true
		b.currentUtil = reward
		b.best, b.bestUtil = b.current, reward
		b.trace = append(b.trace, b.bestUtil)
		b.lastArm = b.selectArm()
		b.pending = b.applyArm(b.lastArm, b.current)
		b.propose()
		return b.pending, true
	}

	// Credit the arm whose vector this reward measured.
	b.counts[b.lastArm]++
	n := float64(b.counts[b.lastArm])
	b.means[b.lastArm] += (reward - b.means[b.lastArm]) / n
	if gap := b.bestUtil - reward; gap > 0 {
		b.regret += gap
		if b.tm != nil {
			b.tm.Regret.Set(b.regret)
		}
	}
	// Hill-climb: commit the move only when it measured strictly better.
	if reward > b.currentUtil {
		b.current = b.pending
		b.currentUtil = reward
		b.accepts++
		if b.tm != nil {
			b.tm.Accepts.Inc()
		}
	} else {
		b.rejects++
		if b.tm != nil {
			b.tm.Rejects.Inc()
		}
	}
	if b.currentUtil > b.bestUtil {
		b.best = b.current
		b.bestUtil = b.currentUtil
	}
	b.trace = append(b.trace, b.bestUtil)
	if b.tm != nil {
		b.tm.BestUtility.Set(b.bestUtil)
	}

	b.iter++
	if b.iter >= b.cfg.Budget {
		b.active = false
		b.sessions++
		if b.tm != nil {
			b.tm.Sessions.Inc()
			b.tm.Active.Set(0)
		}
		b.propose()
		return b.best, true
	}

	b.lastArm = b.selectArm()
	b.pending = b.applyArm(b.lastArm, b.current)
	b.propose()
	return b.pending, true
}

// selectArm picks the next arm. Untried arms are preferred in index
// order (optimistic initialization) under both policies; ties elsewhere
// break toward the lowest index, keeping selection deterministic for a
// fixed RNG stream.
func (b *Bandit) selectArm() int {
	for i, c := range b.counts {
		if c == 0 {
			return i
		}
	}
	if b.cfg.UCB {
		total := 0
		for _, c := range b.counts {
			total += c
		}
		bestArm, bestVal := 0, math.Inf(-1)
		for i := range b.counts {
			v := b.means[i] + b.cfg.UCBC*math.Sqrt(math.Log(float64(total))/float64(b.counts[i]))
			if v > bestVal {
				bestArm, bestVal = i, v
			}
		}
		return bestArm
	}
	if b.rng.Float64() < b.cfg.Epsilon {
		return b.rng.Intn(len(b.counts))
	}
	bestArm, bestVal := 0, math.Inf(-1)
	for i, m := range b.means {
		if m > bestVal {
			bestArm, bestVal = i, m
		}
	}
	return bestArm
}

// applyArm realizes an arm on base: arm 0 holds, arm 2i+1 moves spec i
// up one (scaled) step, arm 2i+2 down one. Log-scaled parameters move
// multiplicatively, mirroring the annealer's mutation geometry. The
// result is clamped and ECN-order-repaired, so every proposal is
// guard-admissible by construction.
func (b *Bandit) applyArm(arm int, base dcqcn.Params) dcqcn.Params {
	if arm == 0 {
		return base
	}
	i := (arm - 1) / 2
	up := (arm-1)%2 == 0
	spec := &b.specs[i]
	b.mbase = base
	v := spec.Get(&b.mbase)
	if spec.Log {
		factor := 1 + 0.5*b.cfg.StepScale
		if up {
			v *= factor
		} else {
			v /= factor
		}
	} else {
		delta := spec.Step * b.cfg.StepScale
		if up {
			v += delta
		} else {
			v -= delta
		}
	}
	b.mout = base
	spec.Set(&b.mout, spec.Clamp(v))
	if b.mout.KmaxBytes <= b.mout.KminBytes {
		b.mout.KmaxBytes = b.mout.KminBytes + (64 << 10)
	}
	return b.mout
}
