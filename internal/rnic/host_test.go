package rnic

import (
	"testing"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/topology"
)

// pipe is a stand-in ToR that relays every non-PFC packet to the other
// host instantly, recording what it saw.
type pipe struct {
	hosts [2]*Host
	seen  []*netdev.Packet
}

func (p *pipe) Receive(pkt *netdev.Packet, inPort int) {
	p.seen = append(p.seen, pkt)
	if pkt.Kind == netdev.KindPFC {
		return
	}
	for i := range p.hosts {
		if p.hosts[i].NodeID() == pkt.Dst {
			p.hosts[i].Receive(pkt, 0)
			return
		}
	}
}

type rig struct {
	eng    *eventsim.Engine
	topo   *topology.Topology
	params *dcqcn.Params
	hosts  [2]*Host
	relay  *pipe
	done   []uint64
}

func newRig(t *testing.T, p dcqcn.Params) *rig {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		NumToR: 1, NumLeaf: 0, HostsPerToR: 2,
		HostLinkBps: 1e9, PropDelay: eventsim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{eng: eventsim.NewEngine(11), topo: topo, params: &p, relay: &pipe{}}
	onDone := func(id uint64, src, dst topology.NodeID, size int64, start, end eventsim.Time) {
		r.done = append(r.done, id)
	}
	for i, hn := range topo.Hosts() {
		h := NewHost(r.eng, topo, hn, func() *dcqcn.Params { return r.params }, onDone)
		h.Port().SetPeer(r.relay, i)
		r.hosts[i] = h
		r.relay.hosts[i] = h
	}
	return r
}

func TestSegmentationAndCompletion(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	size := int64(2500) // 3 packets at MTU 1000
	b.ExpectFlow(1, a.NodeID(), size, 0)
	a.StartFlow(1, b.NodeID(), size)
	r.eng.RunUntil(eventsim.Second)
	var data []*netdev.Packet
	for _, pkt := range r.relay.seen {
		if pkt.Kind == netdev.KindData {
			data = append(data, pkt)
		}
	}
	if len(data) != 3 {
		t.Fatalf("saw %d data packets, want 3", len(data))
	}
	wantPayloads := []int{1000, 1000, 500}
	wantSeqs := []int64{0, 1000, 2000}
	for i, pkt := range data {
		if pkt.PayloadBytes != wantPayloads[i] || pkt.Seq != wantSeqs[i] {
			t.Errorf("packet %d: payload %d seq %d, want %d/%d", i, pkt.PayloadBytes, pkt.Seq, wantPayloads[i], wantSeqs[i])
		}
		if pkt.WireBytes != pkt.PayloadBytes+netdev.HeaderBytes {
			t.Errorf("packet %d wire %d, want payload+header", i, pkt.WireBytes)
		}
	}
	if !data[2].Last || data[0].Last || data[1].Last {
		t.Error("Last flag misplaced")
	}
	if len(r.done) != 1 || r.done[0] != 1 {
		t.Errorf("completions %v, want [1]", r.done)
	}
	if a.ActiveFlows() != 0 {
		t.Errorf("sender still has %d active flows", a.ActiveFlows())
	}
}

func TestCustomMTU(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	a.SetMTU(500)
	b.ExpectFlow(1, a.NodeID(), 1500, 0)
	a.StartFlow(1, b.NodeID(), 1500)
	r.eng.RunUntil(eventsim.Second)
	var data int
	for _, pkt := range r.relay.seen {
		if pkt.Kind == netdev.KindData {
			data++
			if pkt.PayloadBytes != 500 {
				t.Errorf("payload %d, want 500", pkt.PayloadBytes)
			}
		}
	}
	if data != 3 {
		t.Errorf("%d packets at MTU 500 for 1500B, want 3", data)
	}
}

func TestDuplicateFlowIDPanics(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	a.StartFlow(1, b.NodeID(), 1<<20)
	defer func() {
		if recover() == nil {
			t.Error("duplicate flow id did not panic")
		}
	}()
	a.StartFlow(1, b.NodeID(), 1<<20)
}

func TestZeroSizeFlowPanics(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("zero-size flow did not panic")
		}
	}()
	r.hosts[0].StartFlow(1, r.hosts[1].NodeID(), 0)
}

func TestPacingFollowsRPRate(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	f := a.StartFlow(1, b.NodeID(), 1<<20)
	// Knock the RP down to ~minimum rate with repeated CNPs.
	for i := 0; i < 60; i++ {
		r.eng.RunUntil(r.eng.Now() + 10*eventsim.Microsecond)
		f.RP().OnCNP()
	}
	rate := f.RP().Rate()
	txBefore := a.Stats.TxPackets
	window := 20 * eventsim.Millisecond
	r.eng.RunUntil(r.eng.Now() + window)
	sent := a.Stats.TxPackets - txBefore
	wire := int64(netdev.DefaultMTU + netdev.HeaderBytes)
	// Expected packets ≈ rate·window/bits-per-packet. The RP keeps
	// recovering during the window, so allow generous slack upward but
	// require at least the floor rate's worth.
	floorPkts := float64(rate) * window.Seconds() / float64(wire*8)
	if float64(sent) < 0.5*floorPkts {
		t.Errorf("sent %d packets in %v at rate %g, want >= %g", sent, window, rate, 0.5*floorPkts)
	}
}

func TestCNPReducesRate(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	f := a.StartFlow(7, b.NodeID(), 8<<20)
	r.eng.RunUntil(eventsim.Millisecond)
	before := f.RP().Rate()
	// Deliver a CNP for the flow through the host's receive path.
	a.Receive(netdev.NewCNP(7, b.NodeID(), a.NodeID()), 0)
	if f.RP().Rate() >= before {
		t.Errorf("rate %g did not fall after CNP (was %g)", f.RP().Rate(), before)
	}
	if a.Stats.CNPsReceived != 1 {
		t.Errorf("CNPsReceived = %d, want 1", a.Stats.CNPsReceived)
	}
}

func TestCNPForFinishedFlowIgnored(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	b.ExpectFlow(3, a.NodeID(), 1000, 0)
	a.StartFlow(3, b.NodeID(), 1000)
	r.eng.RunUntil(eventsim.Second)
	// Must not panic or corrupt state.
	a.Receive(netdev.NewCNP(3, b.NodeID(), a.NodeID()), 0)
	if a.Stats.CNPsReceived != 1 {
		t.Errorf("CNPsReceived = %d, want 1", a.Stats.CNPsReceived)
	}
}

func TestECNMarkedDataTriggersCNP(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	b.ExpectFlow(9, a.NodeID(), 1<<20, 0)
	pkt := netdev.NewDataPacket(9, a.NodeID(), b.NodeID(), 0, 1000, false)
	pkt.ECNMarked = true
	b.Receive(pkt, 0)
	r.eng.RunUntil(10 * eventsim.Millisecond)
	if b.Stats.CNPsSent != 1 {
		t.Fatalf("CNPsSent = %d, want 1", b.Stats.CNPsSent)
	}
	// The CNP must arrive back at the sender.
	if a.Stats.CNPsReceived != 1 {
		t.Errorf("sender CNPsReceived = %d, want 1", a.Stats.CNPsReceived)
	}
}

func TestCNPPacingAtReceiver(t *testing.T) {
	p := dcqcn.DefaultParams()
	p.MinTimeBetweenCNPs = 100 * eventsim.Microsecond
	r := newRig(t, p)
	a, b := r.hosts[0], r.hosts[1]
	b.ExpectFlow(9, a.NodeID(), 1<<20, 0)
	// Three marked packets in quick succession: only one CNP.
	for i := 0; i < 3; i++ {
		pkt := netdev.NewDataPacket(9, a.NodeID(), b.NodeID(), int64(i)*1000, 1000, false)
		pkt.ECNMarked = true
		b.Receive(pkt, 0)
	}
	if b.Stats.CNPsSent != 1 {
		t.Errorf("CNPsSent = %d, want 1 (paced)", b.Stats.CNPsSent)
	}
}

func TestPFCPausesHostUplink(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	a.StartFlow(1, b.NodeID(), 1<<20)
	r.eng.RunUntil(100 * eventsim.Microsecond)
	txAtPause := a.Stats.TxPackets
	a.Receive(&netdev.Packet{Kind: netdev.KindPFC, Pause: true, PauseClass: netdev.ClassData}, 0)
	r.eng.RunUntil(r.eng.Now() + eventsim.Millisecond)
	// At most the in-flight packet may still depart.
	if a.Stats.TxPackets > txAtPause+1 {
		t.Errorf("host sent %d packets while paused", a.Stats.TxPackets-txAtPause)
	}
	a.Receive(&netdev.Packet{Kind: netdev.KindPFC, Pause: false, PauseClass: netdev.ClassData}, 0)
	r.eng.RunUntil(r.eng.Now() + eventsim.Millisecond)
	if a.Stats.TxPackets <= txAtPause+1 {
		t.Error("host did not resume after PFC RESUME")
	}
}

func TestProbeReplyAndNormalizedRTT(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	a.StartFlow(1, b.NodeID(), 4<<20)
	a.StartProbing(100 * eventsim.Microsecond)
	r.eng.RunUntil(2 * eventsim.Millisecond)
	if a.Stats.ProbesSent == 0 {
		t.Fatal("no probes sent despite active flow")
	}
	sum, count := a.TakeRTT()
	if count == 0 {
		t.Fatal("no RTT samples")
	}
	avg := sum / float64(count)
	if avg <= 0 || avg > 1 {
		t.Errorf("normalized RTT %g outside (0,1]", avg)
	}
}

func TestProbingStopsWithStopProbing(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	a.StartFlow(1, b.NodeID(), 4<<20)
	a.StartProbing(100 * eventsim.Microsecond)
	r.eng.RunUntil(eventsim.Millisecond)
	a.StopProbing()
	sent := a.Stats.ProbesSent
	r.eng.RunUntil(2 * eventsim.Millisecond)
	if a.Stats.ProbesSent != sent {
		t.Errorf("probes kept flowing after StopProbing: %d -> %d", sent, a.Stats.ProbesSent)
	}
}

func TestNoProbesWithoutFlows(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a := r.hosts[0]
	a.StartProbing(100 * eventsim.Microsecond)
	r.eng.RunUntil(eventsim.Millisecond)
	if a.Stats.ProbesSent != 0 {
		t.Errorf("idle host sent %d probes", a.Stats.ProbesSent)
	}
}

func TestUnregisteredFlowNeverCompletes(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	a, b := r.hosts[0], r.hosts[1]
	pkt := netdev.NewDataPacket(99, a.NodeID(), b.NodeID(), 0, 1000, true)
	b.Receive(pkt, 0)
	if len(r.done) != 0 {
		t.Error("unregistered flow completed")
	}
	if b.Stats.FlowsCompleted != 0 {
		t.Error("FlowsCompleted incremented for unregistered flow")
	}
}

func TestHostRequiresHostNode(t *testing.T) {
	r := newRig(t, dcqcn.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("NewHost on a switch node did not panic")
		}
	}()
	p := dcqcn.DefaultParams()
	NewHost(r.eng, r.topo, r.topo.ToRs()[0], func() *dcqcn.Params { return &p }, nil)
}
