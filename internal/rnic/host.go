// Package rnic models the host side of the RoCEv2 fabric: an RNIC with
// per-QP DCQCN reaction points, a flow scheduler that arbitrates QPs onto
// the uplink at line rate, the notification point that echoes ECN marks as
// CNPs, and the RTT probing that feeds Paraleon's O_RTT utility term.
package rnic

import (
	"fmt"
	"sort"

	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/netdev"
	"repro/internal/topology"
)

// FlowCompleteFunc is called at the receiving host when a flow's last byte
// arrives.
type FlowCompleteFunc func(flowID uint64, src, dst topology.NodeID, size int64, start, end eventsim.Time)

// SendFlow is the sender-side state of one message on one QP.
type SendFlow struct {
	ID    uint64
	Dst   topology.NodeID
	Size  int64
	Sent  int64
	Start eventsim.Time

	rp       *dcqcn.RP
	nextSend eventsim.Time
}

// RP exposes the flow's reaction point (for tests and instrumentation).
func (f *SendFlow) RP() *dcqcn.RP { return f.rp }

// recvFlow is the receiver-side state of one inbound message.
type recvFlow struct {
	src      topology.NodeID
	expected int64
	got      int64
	start    eventsim.Time
	np       *dcqcn.NP
}

// HostStats are cumulative RNIC counters.
type HostStats struct {
	FlowsStarted   int64
	FlowsCompleted int64 // completed as receiver
	TxPackets      int64
	CNPsSent       int64
	CNPsReceived   int64
	ProbesSent     int64
	RTTSamples     int64
}

// Host is one server's RNIC attached to the fabric by a single uplink.
type Host struct {
	eng    *eventsim.Engine
	topo   *topology.Topology
	node   topology.NodeID
	params func() *dcqcn.Params

	port *netdev.EgressPort
	mtu  int

	// pool recycles packets this RNIC sinks and supplies the ones it
	// originates. May be nil (tests wiring hosts by hand).
	pool *netdev.PacketPool

	sendFlows []*SendFlow // active senders, deterministic order
	byID      map[uint64]*SendFlow
	rx        map[uint64]*recvFlow

	// timerFn and probeFn are the persistent pacing-wakeup and probe-tick
	// handlers: built once so re-arming a timer allocates nothing. The
	// pacing wakeup moves constantly (every arbiter pass can retarget
	// it), so it rides the timing wheel via RearmAt.
	timerFn eventsim.Handler
	timerEv eventsim.EventID

	onComplete FlowCompleteFunc

	probeFn      eventsim.Handler
	probeEv      eventsim.EventID
	probeArmed   bool
	probeEvery   eventsim.Time
	rttNormSum   float64
	rttNormCount int64

	// suppressRPTimers, when set, starts every new QP's reaction point
	// with quiescent-timer suppression on (see dcqcn.RP.SetSuppression).
	suppressRPTimers bool

	// markedInbound collects inbound flows that saw ECN marks since the
	// last TakeCongestedInbound (DCQCN+ uses this as its incast-scale
	// signal).
	markedInbound map[uint64]bool

	// reportedSent tracks how many bytes of each flow TakeFlowBytes has
	// already reported; finishedUnreported holds residue of flows that
	// completed between takes. Together they realize the §V "per-QP
	// counters in future RNICs" monitoring mode.
	reportedSent       map[uint64]int64
	finishedUnreported map[uint64]int64

	Stats HostStats
}

// NewHost builds the RNIC for node. The single uplink egress port is
// created from the node's first topology port; wire it to the ToR with
// Port().SetPeer. onComplete may be nil.
func NewHost(eng *eventsim.Engine, topo *topology.Topology, node topology.NodeID, params func() *dcqcn.Params, onComplete FlowCompleteFunc) *Host {
	return NewHostSeeded(eng, eng, topo, node, params, onComplete)
}

// NewHostSeeded is NewHost with the RNIC's random streams drawn from
// seedSrc instead of the scheduling engine; the sharded runtime passes
// its global engine so device streams are identical across shard counts.
func NewHostSeeded(eng, seedSrc *eventsim.Engine, topo *topology.Topology, node topology.NodeID, params func() *dcqcn.Params, onComplete FlowCompleteFunc) *Host {
	n := &topo.Nodes[node]
	if n.Kind != topology.Host {
		panic(fmt.Sprintf("rnic: node %d is a %v, not a host", node, n.Kind))
	}
	if len(n.Ports) != 1 {
		panic(fmt.Sprintf("rnic: host %d has %d ports, want 1", node, len(n.Ports)))
	}
	l := &topo.Links[n.Ports[0]]
	h := &Host{
		eng: eng, topo: topo, node: node, params: params,
		mtu:                netdev.DefaultMTU,
		byID:               map[uint64]*SendFlow{},
		rx:                 map[uint64]*recvFlow{},
		onComplete:         onComplete,
		markedInbound:      map[uint64]bool{},
		reportedSent:       map[uint64]int64{},
		finishedUnreported: map[uint64]int64{},
	}
	h.port = netdev.NewEgressPort(eng, l.RateBps, l.PropDelay, seedSrc.Rand())
	h.port.SetOnDeparted(func(pkt *netdev.Packet, inPort int) { h.schedule() })
	h.port.SetOnResume(func(class int) { h.schedule() })
	h.timerFn = func() { h.schedule() }
	h.probeFn = func() {
		h.sendProbes()
		h.armProbe()
	}
	return h
}

// SetPacketPool installs the free-list this RNIC draws packets from and
// returns sunk packets to; it also covers the uplink port's PFC frames.
func (h *Host) SetPacketPool(pool *netdev.PacketPool) {
	h.pool = pool
	h.port.SetPacketPool(pool)
}

// NodeID reports the topology node this RNIC serves.
func (h *Host) NodeID() topology.NodeID { return h.node }

// Port returns the uplink egress port for wiring and counter sampling.
func (h *Host) Port() *netdev.EgressPort { return h.port }

// SetMTU overrides the per-packet payload size (default netdev.DefaultMTU).
func (h *Host) SetMTU(mtu int) {
	if mtu <= 0 {
		panic("rnic: non-positive MTU")
	}
	h.mtu = mtu
}

// SetTimerSuppression controls whether new QPs park their DCQCN timers
// while provably quiescent (dcqcn.RP.SetSuppression). Applies to flows
// started after the call; existing flows keep their setting.
func (h *Host) SetTimerSuppression(on bool) { h.suppressRPTimers = on }

// ActiveFlows reports the number of in-progress sending flows.
func (h *Host) ActiveFlows() int { return len(h.sendFlows) }

// StartFlow begins transmitting size bytes to dst as flow id. The caller
// (normally sim.Network) must also register the expectation at the
// destination with ExpectFlow.
func (h *Host) StartFlow(id uint64, dst topology.NodeID, size int64) *SendFlow {
	if size <= 0 {
		panic(fmt.Sprintf("rnic: flow %d has size %d", id, size))
	}
	if _, dup := h.byID[id]; dup {
		panic(fmt.Sprintf("rnic: duplicate flow id %d", id))
	}
	f := &SendFlow{
		ID: id, Dst: dst, Size: size, Start: h.eng.Now(),
		rp:       dcqcn.NewRP(h.eng, h.params, h.port.RateBps()),
		nextSend: h.eng.Now(),
	}
	if h.suppressRPTimers {
		f.rp.SetSuppression(true)
	}
	f.rp.Start()
	h.sendFlows = append(h.sendFlows, f)
	h.byID[id] = f
	h.Stats.FlowsStarted++
	h.schedule()
	return f
}

// ExpectFlow registers an inbound flow at the receiver so completion can
// be detected and timed from its true start.
func (h *Host) ExpectFlow(id uint64, src topology.NodeID, size int64, start eventsim.Time) {
	h.rx[id] = &recvFlow{src: src, expected: size, start: start, np: dcqcn.NewNP(h.params)}
}

// schedule is the QP arbiter: when the uplink is idle and unpaused, the
// active flow with the earliest pacing deadline transmits one packet;
// otherwise a wakeup is armed for the earliest deadline.
func (h *Host) schedule() {
	if h.port.Busy() || h.port.Paused(netdev.ClassData) {
		return
	}
	var best *SendFlow
	for _, f := range h.sendFlows {
		if best == nil || f.nextSend < best.nextSend {
			best = f
		}
	}
	if best == nil {
		return
	}
	now := h.eng.Now()
	if best.nextSend <= now {
		h.sendPacket(best)
		return
	}
	// Retarget the pacing wakeup in place: when a wakeup is still armed
	// this replaces the historical Cancel+Schedule pair with one O(1)
	// wheel reschedule; when the wakeup just fired (its id is stale) it
	// arms afresh. Both consume one sequence number, exactly like before.
	h.timerEv = h.eng.RearmAt(h.timerEv, best.nextSend, h.timerFn)
}

func (h *Host) sendPacket(f *SendFlow) {
	payload := h.mtu
	if remaining := f.Size - f.Sent; int64(payload) > remaining {
		payload = int(remaining)
	}
	last := f.Sent+int64(payload) == f.Size
	pkt := h.pool.NewDataPacket(f.ID, h.node, f.Dst, f.Sent, payload, last)
	f.Sent += int64(payload)
	wire := int64(pkt.WireBytes)
	f.rp.OnBytesSent(wire)
	// Pace the next packet of this QP by the RP's current rate.
	f.nextSend = h.eng.Now() + eventsim.Time(float64(wire*8)/f.rp.Rate()*1e9)
	h.Stats.TxPackets++
	h.port.Enqueue(pkt, -1)
	if f.Sent >= f.Size {
		h.finishSendFlow(f)
	}
}

func (h *Host) finishSendFlow(f *SendFlow) {
	f.rp.Stop()
	if residue := f.Sent - h.reportedSent[f.ID]; residue > 0 {
		h.finishedUnreported[f.ID] += residue
	}
	delete(h.reportedSent, f.ID)
	delete(h.byID, f.ID)
	for i, g := range h.sendFlows {
		if g == f {
			h.sendFlows = append(h.sendFlows[:i], h.sendFlows[i+1:]...)
			break
		}
	}
}

// Receive implements netdev.Device. Every packet terminates here, so each
// branch returns the packet to the pool once its fields have been read.
func (h *Host) Receive(pkt *netdev.Packet, inPort int) {
	switch pkt.Kind {
	case netdev.KindPFC:
		h.port.SetPaused(pkt.PauseClass, pkt.Pause)

	case netdev.KindData:
		rf := h.rx[pkt.FlowID]
		if rf == nil {
			// Unregistered flow (e.g. raw injection in tests): track it
			// so NP behaviour still applies, but never complete it.
			rf = &recvFlow{src: pkt.Src, expected: -1, np: dcqcn.NewNP(h.params)}
			h.rx[pkt.FlowID] = rf
		}
		rf.got += int64(pkt.PayloadBytes)
		if pkt.ECNMarked {
			h.markedInbound[pkt.FlowID] = true
		}
		if pkt.ECNMarked && rf.np.OnECNMarked(h.eng.Now()) {
			h.Stats.CNPsSent++
			h.port.Enqueue(h.pool.NewCNP(pkt.FlowID, h.node, pkt.Src), -1)
		}
		if rf.expected >= 0 && rf.got >= rf.expected {
			h.Stats.FlowsCompleted++
			if h.onComplete != nil {
				h.onComplete(pkt.FlowID, rf.src, h.node, rf.expected, rf.start, h.eng.Now())
			}
			delete(h.rx, pkt.FlowID)
		}

	case netdev.KindCNP:
		h.Stats.CNPsReceived++
		if f := h.byID[pkt.FlowID]; f != nil {
			f.rp.OnCNP()
		}

	case netdev.KindProbe:
		reply := h.pool.Get()
		reply.Kind, reply.Class = netdev.KindProbeReply, netdev.ClassCtrl
		reply.WireBytes = netdev.CtrlFrameBytes
		reply.FlowID, reply.Src, reply.Dst = pkt.FlowID, h.node, pkt.Src
		reply.SentAt = pkt.SentAt
		h.port.Enqueue(reply, -1)

	case netdev.KindProbeReply:
		rtt := h.eng.Now() - pkt.SentAt
		if rtt <= 0 {
			break
		}
		base := 2 * h.topo.BasePathDelay(h.node, pkt.Src)
		norm := float64(base) / float64(rtt)
		if norm > 1 {
			norm = 1
		}
		h.rttNormSum += norm
		h.rttNormCount++
		h.Stats.RTTSamples++
	}
	h.pool.Put(pkt)
}

// StartProbing arms periodic RTT probes toward the destinations of the
// host's active flows; every is typically a fraction of the monitor
// interval. Probes ride the data class so they observe real queueing.
func (h *Host) StartProbing(every eventsim.Time) {
	if every <= 0 {
		panic("rnic: non-positive probe interval")
	}
	h.StopProbing()
	h.probeEvery = every
	h.armProbe()
}

// StopProbing cancels periodic probing.
func (h *Host) StopProbing() {
	if h.probeArmed {
		h.eng.Cancel(h.probeEv)
		h.probeArmed = false
	}
}

func (h *Host) armProbe() {
	h.probeArmed = true
	h.probeEv = h.eng.RearmAfter(h.probeEv, h.probeEvery, h.probeFn)
}

func (h *Host) sendProbes() {
	seen := map[topology.NodeID]bool{}
	for _, f := range h.sendFlows {
		if seen[f.Dst] {
			continue
		}
		seen[f.Dst] = true
		probe := h.pool.Get()
		probe.Kind, probe.Class = netdev.KindProbe, netdev.ClassData
		probe.WireBytes = netdev.CtrlFrameBytes
		probe.FlowID, probe.Src, probe.Dst = f.ID, h.node, f.Dst
		probe.SentAt = h.eng.Now()
		h.Stats.ProbesSent++
		h.port.Enqueue(probe, -1)
	}
}

// TakeRTT returns the sum of normalized RTT samples (base path delay over
// measured RTT, per Swift) and their count since the previous call, then
// resets both.
func (h *Host) TakeRTT() (sumNorm float64, count int64) {
	sumNorm, count = h.rttNormSum, h.rttNormCount
	h.rttNormSum, h.rttNormCount = 0, 0
	return sumNorm, count
}

// TakeCongestedInbound reports how many distinct inbound flows received
// ECN-marked packets since the previous call, then resets the set. This
// is the NP-side incast-scale estimate DCQCN+ keys its CNP interval on.
func (h *Host) TakeCongestedInbound() int {
	n := len(h.markedInbound)
	if n > 0 {
		h.markedInbound = map[uint64]bool{}
	}
	return n
}

// TakeFlowBytes reports, per flow this RNIC sent on since the previous
// call, the payload bytes transmitted in that window — exact per-QP
// counters, the §V alternative to switch sketches. Output is sorted by
// flow ID; flows that completed between takes contribute their residue.
func (h *Host) TakeFlowBytes() []FlowBytes {
	out := make([]FlowBytes, 0, len(h.sendFlows)+len(h.finishedUnreported))
	for _, f := range h.sendFlows {
		delta := f.Sent - h.reportedSent[f.ID]
		if delta <= 0 {
			continue
		}
		h.reportedSent[f.ID] = f.Sent
		out = append(out, FlowBytes{Flow: f.ID, Bytes: delta})
	}
	for id, b := range h.finishedUnreported {
		out = append(out, FlowBytes{Flow: id, Bytes: b})
	}
	if len(h.finishedUnreported) > 0 {
		h.finishedUnreported = map[uint64]int64{}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// FlowBytes pairs a flow with bytes it moved in a window.
type FlowBytes struct {
	Flow  uint64
	Bytes int64
}

// ActiveDestinations lists the distinct destinations of in-progress
// sending flows, in first-flow order.
func (h *Host) ActiveDestinations() []topology.NodeID {
	seen := map[topology.NodeID]bool{}
	var out []topology.NodeID
	for _, f := range h.sendFlows {
		if !seen[f.Dst] {
			seen[f.Dst] = true
			out = append(out, f.Dst)
		}
	}
	return out
}
